// Climate playback: the dashboard's time dimension.
//
// The paper's dashboard walkthrough highlights "the playback
// functionality allows for automated data walkthroughs, offering a
// comprehensive view of climate evolution" with a time slider and speed
// control. This example builds a 12-step synthetic soil-moisture series
// (seasonal cycle + weather noise over terrain), stores every step as a
// timestep of one IDX dataset, and then replays it the way the dashboard
// does: fetching each frame at a preview resolution, printing a
// state-of-the-field summary per month, and measuring how the block cache
// turns a second playback pass nearly free.
//
// Run with:
//
//	go run ./examples/climate_playback
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"nsdfgo/internal/dem"
	"nsdfgo/internal/geotiled"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/query"
	"nsdfgo/internal/somospie"
	"nsdfgo/internal/storage"
)

func main() {
	const w, h = 256, 128
	const months = 12
	const seed = 20240624

	// A moisture climatology over synthetic terrain, evolved monthly.
	fmt.Println("building 12-month synthetic soil-moisture series...")
	elevation := dem.Scale(dem.FBM(w, h, seed, dem.DefaultFBM()), 100, 1500)
	slope, err := geotiled.ComputeTiled(elevation, geotiled.Slope, geotiled.Options{})
	if err != nil {
		log.Fatal(err)
	}
	aspect, err := geotiled.ComputeTiled(elevation, geotiled.Aspect, geotiled.Options{})
	if err != nil {
		log.Fatal(err)
	}
	base, err := somospie.SyntheticTruth(elevation, slope, aspect, seed)
	if err != nil {
		log.Fatal(err)
	}
	series := dem.TimeSeries(base, seed, dem.SeriesOptions{
		Steps: months, SeasonalAmp: 0.18, NoiseAmp: 0.04, Period: months,
	})

	// Store the whole year as one multiresolution dataset on a simulated
	// regional object store.
	meta, err := idx.NewMeta([]int{w, h}, []idx.Field{{Name: "soil_moisture", Type: idx.Float32}})
	if err != nil {
		log.Fatal(err)
	}
	meta.Timesteps = months
	meta.BitsPerBlock = 12
	remote := storage.NewConditioned(storage.NewMemStore(), storage.ProfileRegional, seed)
	ds, err := idx.Create(context.Background(), storage.NewIDXBackend(remote, "moisture_2016"), meta)
	if err != nil {
		log.Fatal(err)
	}
	for t, g := range series {
		if err := ds.WriteGrid(context.Background(), "soil_moisture", t, g); err != nil {
			log.Fatal(err)
		}
	}
	engine := query.New(ds, 64<<20)
	engine.SetFetchParallelism(8)

	// Playback pass 1: cold, over the wire.
	monthNames := []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}
	playback := func(label string) time.Duration {
		start := time.Now()
		fmt.Printf("\n== playback (%s): monthly mean moisture, preview level ==\n", label)
		for t := 0; t < months; t++ {
			res, err := engine.Read(context.Background(), query.Request{Field: "soil_moisture", Time: t, Level: 10})
			if err != nil {
				log.Fatal(err)
			}
			st := res.Grid.ComputeStats()
			bar := strings.Repeat("#", int(st.Mean*120))
			fmt.Printf("  %s  mean %.3f  %s\n", monthNames[t], st.Mean, bar)
		}
		return time.Since(start)
	}
	cold := playback("cold cache")
	warm := playback("warm cache")
	fmt.Printf("\nplayback timing: cold %.1fms, warm %.1fms (%.0fx)\n",
		float64(cold)/1e6, float64(warm)/1e6, float64(cold)/float64(warm))

	// Seasonal verdict: wettest and driest months must be half a year apart.
	wettest, driest := 0, 0
	var wetMean, dryMean float64 = -1, 2
	for t := 0; t < months; t++ {
		res, err := engine.Read(context.Background(), query.Request{Field: "soil_moisture", Time: t, Level: 10})
		if err != nil {
			log.Fatal(err)
		}
		m := res.Grid.ComputeStats().Mean
		if m > wetMean {
			wetMean, wettest = m, t
		}
		if m < dryMean {
			dryMean, driest = m, t
		}
	}
	fmt.Printf("wettest month %s (%.3f), driest %s (%.3f)\n",
		monthNames[wettest], wetMean, monthNames[driest], dryMean)
}
