// Volume: n-dimensional IDX beyond rasters.
//
// The advanced session of the tutorial covers "handling and visualizing
// massive datasets requiring high-resolution data management" — in
// OpenVisus deployments those are usually 3D simulation volumes. This
// example builds a synthetic 3D scalar field (a subsurface soil-moisture
// column model: terrain-driven surface moisture decaying with depth,
// with wet anomalies), stores it as a 3D IDX dataset, and explores it the
// dashboard way: coarse 3D preview, Z slices at full resolution, and a
// sub-volume crop around the wettest anomaly.
//
// Run with:
//
//	go run ./examples/volume
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"nsdfgo/internal/dem"
	"nsdfgo/internal/idx"
)

func main() {
	const w, h, depth = 128, 64, 32
	const seed = 20240624

	// Build the field: surface moisture from terrain, exponential decay
	// with depth, plus three buried wet anomalies.
	fmt.Println("synthesising 128x64x32 subsurface moisture volume...")
	surface := dem.Scale(dem.FBM(w, h, seed, dem.DefaultFBM()), 0.15, 0.45)
	anomalies := [][4]float64{ // x, y, z, strength
		{30, 20, 10, 0.25},
		{90, 40, 22, 0.30},
		{64, 12, 16, 0.20},
	}
	data := make([]float32, w*h*depth)
	for z := 0; z < depth; z++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				v := float64(surface.At(x, y)) * math.Exp(-float64(z)/12)
				for _, a := range anomalies {
					dx, dy, dz := float64(x)-a[0], float64(y)-a[1], float64(z)-a[2]
					d2 := dx*dx + dy*dy + dz*dz*4
					v += a[3] * math.Exp(-d2/60)
				}
				data[(z*h+y)*w+x] = float32(v)
			}
		}
	}

	// Store as a 3D IDX dataset.
	meta, err := idx.NewMeta([]int{w, h, depth}, []idx.Field{{Name: "moisture", Type: idx.Float32}})
	if err != nil {
		log.Fatal(err)
	}
	meta.BitsPerBlock = 12
	be := idx.NewMemBackend()
	ds, err := idx.Create(context.Background(), be, meta)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.WriteVolume(context.Background(), "moisture", 0, data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored: %d voxels in %d blocks, %d bytes, %d resolution levels\n\n",
		w*h*depth, ds.Meta.NumBlocks(), be.TotalBytes(), ds.Meta.MaxLevel())

	// 1. Coarse 3D preview: the whole volume at a fraction of the cost.
	preview, stats, err := ds.ReadBox3D(context.Background(), "moisture", 0, ds.FullBox3(), 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coarse preview: %dx%dx%d voxels from %d bytes (%0.1f%% of the data)\n",
		preview.Dims[0], preview.Dims[1], preview.Dims[2], stats.BytesRead,
		100*float64(stats.BytesRead)/float64(be.TotalBytes()))

	// 2. Depth profile: mean moisture per Z slice (full resolution).
	fmt.Println("\ndepth profile (mean moisture per slice):")
	for z := 0; z < depth; z += 4 {
		slice, _, err := ds.ReadSliceZ(context.Background(), "moisture", 0, z)
		if err != nil {
			log.Fatal(err)
		}
		var sum float64
		for _, v := range slice.Data {
			sum += float64(v)
		}
		mean := sum / float64(len(slice.Data))
		fmt.Printf("  z=%2d  mean %.3f  %s\n", z, mean, bar(mean*150))
	}

	// 3. Find the wettest voxel in the preview and crop around it at full
	// resolution — snipping, in 3D.
	best, bi := float32(-1), 0
	for i, v := range preview.Data {
		if v > best {
			best, bi = v, i
		}
	}
	px := preview.Offset[0] + (bi%preview.Dims[0])*preview.Stride[0]
	py := preview.Offset[1] + (bi/preview.Dims[0]%preview.Dims[1])*preview.Stride[1]
	pz := preview.Offset[2] + (bi/(preview.Dims[0]*preview.Dims[1]))*preview.Stride[2]
	fmt.Printf("\nwettest preview voxel near (%d,%d,%d): %.3f\n", px, py, pz, best)

	crop := idx.Box3{X0: px - 8, Y0: py - 8, Z0: pz - 4, X1: px + 8, Y1: py + 8, Z1: pz + 4}
	vol, cropStats, err := ds.ReadBox3D(context.Background(), "moisture", 0, ds.Clip3(crop), ds.Meta.MaxLevel())
	if err != nil {
		log.Fatal(err)
	}
	peak := float32(-1)
	for _, v := range vol.Data {
		if v > peak {
			peak = v
		}
	}
	fmt.Printf("full-resolution crop %dx%dx%d: peak moisture %.3f (%d of %d blocks fetched)\n",
		vol.Dims[0], vol.Dims[1], vol.Dims[2], peak, cropStats.BlocksRead, ds.Meta.NumBlocks())
}

func bar(n float64) string {
	if n < 0 {
		n = 0
	}
	out := make([]byte, int(n))
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
