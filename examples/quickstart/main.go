// Quickstart: the smallest end-to-end use of the NSDF-Go stack.
//
// It synthesises a small DEM, stores it as a multiresolution IDX dataset,
// and streams it back progressively — first a coarse preview, then full
// resolution — printing how little data each preview needs. This is the
// core NSDF idea in ~60 lines: you never fetch more than the resolution
// you are looking at.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"nsdfgo/internal/dem"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/query"
)

func main() {
	// 1. Generate a 256x256 synthetic elevation model (deterministic).
	elevation := dem.Scale(dem.FBM(256, 256, 42, dem.DefaultFBM()), 0, 2000)
	fmt.Println("generated 256x256 synthetic DEM")

	// 2. Create an IDX dataset in memory and write the grid. The samples
	// are reordered along the hierarchical Z-order curve and stored as
	// independently compressed blocks.
	meta, err := idx.NewMeta([]int{256, 256}, []idx.Field{{Name: "elevation", Type: idx.Float32}})
	if err != nil {
		log.Fatal(err)
	}
	meta.BitsPerBlock = 12 // 4096 samples per block
	backend := idx.NewMemBackend()
	ds, err := idx.Create(context.Background(), backend, meta)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.WriteGrid(context.Background(), "elevation", 0, elevation); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored as IDX: %d blocks, %d bytes total\n", backend.NumObjects()-1, backend.TotalBytes())

	// 3. Stream it back progressively through the storage-oblivious query
	// API: coarse levels arrive from a tiny prefix of the data.
	engine := query.New(ds, 16<<20)
	err = engine.Progressive(
		context.Background(),
		query.Request{Field: "elevation", Level: query.LevelFull},
		4, 4,
		func(r query.Result) error {
			fmt.Printf("  level %2d: %4dx%-4d grid from %6d compressed bytes\n",
				r.Level, r.Grid.W, r.Grid.H, r.Stats.BytesRead)
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Ad-hoc analysis of a subregion, dashboard-style.
	res, err := engine.Read(context.Background(), query.Request{
		Field: "elevation",
		Box:   idx.Box{X0: 64, Y0: 64, X1: 192, Y1: 192},
		Level: query.LevelFull,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := res.Grid.ComputeStats()
	fmt.Printf("central 128x128 region: min=%.1f m, max=%.1f m, mean=%.1f m\n", st.Min, st.Max, st.Mean)
}
