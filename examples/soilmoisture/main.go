// Soil moisture: the SOMOSPIE scenario that motivates the tutorial.
//
// SOMOSPIE downscales sparse satellite soil-moisture observations to fine
// resolution using terrain parameters as covariates. This example builds
// the full chain on synthetic data: GEOtiled terrain parameters → a
// synthetic "satellite" truth field → sparse observations → three
// competing inference models (terrain-aware kNN, spatial IDW, OLS) →
// held-out evaluation → a gridded prediction published as an IDX dataset
// ready for the dashboard.
//
// Run with:
//
//	go run ./examples/soilmoisture
package main

import (
	"context"
	"fmt"
	"log"

	"nsdfgo/internal/dem"
	"nsdfgo/internal/geotiled"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/metrics"
	"nsdfgo/internal/raster"
	"nsdfgo/internal/somospie"
)

func main() {
	const w, h = 192, 128
	const seed = 20240624

	// Terrain covariates from GEOtiled.
	fmt.Println("computing terrain covariates (elevation, slope, aspect)...")
	elevation := dem.Scale(dem.FBM(w, h, seed, dem.DefaultFBM()), 100, 1800)
	slope, err := geotiled.ComputeTiled(elevation, geotiled.Slope, geotiled.Options{})
	if err != nil {
		log.Fatal(err)
	}
	aspect, err := geotiled.ComputeTiled(elevation, geotiled.Aspect, geotiled.Options{})
	if err != nil {
		log.Fatal(err)
	}
	covs := []*raster.Grid{elevation, slope, aspect}

	// Synthetic ground truth standing in for the gap-filled ESA-CCI
	// product, and a sparse observation network drawn from it.
	truth, err := somospie.SyntheticTruth(elevation, slope, aspect, seed)
	if err != nil {
		log.Fatal(err)
	}
	samples, err := somospie.DrawSamples(truth, covs, 1200, seed)
	if err != nil {
		log.Fatal(err)
	}
	train, test, err := somospie.Split(samples, 0.25, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("drew %d observations (%d train / %d held out)\n\n", len(samples), len(train), len(test))

	// Compare the modular models, SOMOSPIE-style.
	fmt.Println("== model comparison on held-out observations ==")
	models := []somospie.Model{&somospie.KNN{K: 5}, &somospie.IDW{Power: 2}, &somospie.Linear{}}
	var best somospie.Model
	bestRMSE := 1e9
	for _, m := range models {
		if err := m.Fit(train); err != nil {
			log.Fatal(err)
		}
		rep, err := somospie.Evaluate(m, test)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", rep)
		if rep.RMSE < bestRMSE {
			bestRMSE = rep.RMSE
			best = m
		}
	}
	fmt.Printf("best model: %s\n\n", best.Name())

	// Gridded prediction with the winner, compared against the truth.
	pred, err := somospie.PredictGrid(best, covs)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := metrics.Compare(truth.Data, pred.Data, w, h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== gridded prediction vs truth ==\n  %s\n\n", rep)

	// Publish the product as an IDX dataset: two fields (prediction and
	// truth) ready for side-by-side dashboard inspection.
	meta, err := idx.NewMeta([]int{w, h}, []idx.Field{
		{Name: "soil_moisture_pred", Type: idx.Float32},
		{Name: "soil_moisture_truth", Type: idx.Float32},
	})
	if err != nil {
		log.Fatal(err)
	}
	be := idx.NewMemBackend()
	ds, err := idx.Create(context.Background(), be, meta)
	if err != nil {
		log.Fatal(err)
	}
	if err := ds.WriteGrid(context.Background(), "soil_moisture_pred", 0, pred); err != nil {
		log.Fatal(err)
	}
	if err := ds.WriteGrid(context.Background(), "soil_moisture_truth", 0, truth); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published IDX dataset: 2 fields, %d levels, %d bytes\n",
		ds.Meta.MaxLevel(), be.TotalBytes())
	fmt.Println("(serve it with the dashboard to inspect prediction vs truth interactively)")
}
