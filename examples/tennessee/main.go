// Tennessee: the tutorial's primary walkthrough as a program.
//
// This example reproduces the four-step modular workflow of the paper's
// Fig. 4 on the State-of-Tennessee scene: GEOtiled terrain generation,
// publication of GeoTIFFs to a (simulated) Dataverse, conversion to a
// multiresolution IDX dataset on (simulated) Seal Storage, bit-for-bit
// validation, and an interactive-visualization session that snips a
// subregion into a NumPy download — then prints the provenance trail.
//
// Run with:
//
//	go run ./examples/tennessee
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"nsdfgo/internal/catalog"
	"nsdfgo/internal/core"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/metrics"
	"nsdfgo/internal/query"
)

func main() {
	fabric := core.NewFabric()
	wf, err := fabric.TutorialWorkflow(core.TutorialConfig{
		Region: "tennessee",
		Width:  512, Height: 256,
		Seed: 20240624,
	})
	if err != nil {
		log.Fatal(err)
	}
	bb, trail, err := wf.Run(context.Background())
	if err != nil {
		fmt.Fprint(os.Stderr, trail.String())
		log.Fatal(err)
	}

	fmt.Println("== provenance trail ==")
	fmt.Print(trail.String())

	doi, _ := core.Fetch[string](bb, core.KeyDOI)
	info, err := fabric.Dataverse.Info(doi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== step 1: published %q (v%d) with files %v ==\n", info.Meta.Title, info.Version, info.Files)

	reports, _ := core.Fetch[map[string]metrics.Report](bb, core.KeyValidation)
	fmt.Println("\n== step 3: validation metrics (TIFF-derived vs IDX-derived) ==")
	for name, rep := range reports {
		fmt.Printf("  %-10s %s\n", name, rep)
	}

	// Step 4 interactively: zoom into the eastern mountains at increasing
	// resolution, like dragging the dashboard's resolution slider.
	engine, _ := core.Fetch[*query.Engine](bb, core.KeyEngine)
	ds := engine.Dataset()
	east := idx.Box{X0: ds.Meta.Dims[0] * 3 / 4, Y0: 0, X1: ds.Meta.Dims[0], Y1: ds.Meta.Dims[1]}
	fmt.Println("\n== step 4: progressive zoom into the eastern mountains ==")
	err = engine.Progressive(context.Background(), query.Request{Field: "elevation", Box: east, Level: query.LevelFull}, 6, 3,
		func(r query.Result) error {
			st := r.Grid.ComputeStats()
			fmt.Printf("  level %2d: %3dx%-3d  mean elevation %.0f m  (%d bytes fetched)\n",
				r.Level, r.Grid.W, r.Grid.H, st.Mean, r.Stats.BytesRead)
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}

	// What the fabric's catalog now knows.
	fmt.Println("\n== catalog: artifacts indexed by the workflow ==")
	for _, r := range fabric.Catalog.Search(catalog.Query{Terms: "tennessee", Limit: 20}) {
		fmt.Printf("  %-28s %-12s %9d B  %s\n", r.Name, r.Source, r.Size, r.Location)
	}

	snip, _ := core.Fetch[[]byte](bb, core.KeySnip)
	fmt.Printf("\nsnipping-tool download ready: %d-byte .npy array\n", len(snip))
}
