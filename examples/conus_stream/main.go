// CONUS streaming: remote progressive access at scale.
//
// The tutorial's advanced session visualises the Contiguous United States
// at 30 m — far too large to download. This example builds a CONUS-like
// scene, stores it as IDX on a *cross-country conditioned* object store
// (7 ms RTT, bandwidth-limited, jittered), and then shows what makes the
// dashboard usable over that link: a coarse national overview costs a few
// round trips, zooming into one state fetches only that state's blocks,
// and the block cache makes revisits nearly free.
//
// Run with:
//
//	go run ./examples/conus_stream
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"nsdfgo/internal/dem"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/query"
	"nsdfgo/internal/storage"
)

func main() {
	const w, h = 1024, 512

	// Build the CONUS scene and upload it to the "remote" store. The
	// conditioner delays every operation like a coast-to-coast link.
	fmt.Println("synthesising CONUS-like scene (1024x512)...")
	scene := dem.CONUS(w, h, 20240624)

	remoteStore := storage.NewConditioned(storage.NewMemStore(), storage.ProfileCrossCountry, 1)
	meta, err := idx.NewMeta([]int{w, h}, []idx.Field{{Name: "elevation", Type: idx.Float32}})
	if err != nil {
		log.Fatal(err)
	}
	meta.BitsPerBlock = 13
	meta.Geo = scene.Geo
	ds, err := idx.Create(context.Background(), storage.NewIDXBackend(remoteStore, "conus_30m"), meta)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	if err := ds.WriteGrid(context.Background(), "elevation", 0, scene); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uploaded to remote store in %.1fs (%d blocks)\n\n",
		time.Since(start).Seconds(), ds.Meta.NumBlocks())

	engine := query.New(ds, 128<<20)

	// 1. National overview: progressive refinement of the full extent.
	fmt.Println("== national overview, refining progressively over the WAN ==")
	err = engine.Progressive(context.Background(), query.Request{Field: "elevation", Level: 16}, 6, 2,
		func(r query.Result) error {
			fmt.Printf("  level %2d: %4dx%-3d  %7d bytes  %3d blocks fetched\n",
				r.Level, r.Grid.W, r.Grid.H, r.Stats.BytesRead, r.Stats.BlocksRead)
			return nil
		})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Zoom into a "state": a 128x96 window over the Rockies at full
	// resolution. Only the blocks under the window cross the wire.
	rockies := idx.Box{X0: 160, Y0: 120, X1: 288, Y1: 216}
	start = time.Now()
	res, err := engine.Read(context.Background(), query.Request{Field: "elevation", Box: rockies, Level: query.LevelFull})
	if err != nil {
		log.Fatal(err)
	}
	st := res.Grid.ComputeStats()
	fmt.Printf("\n== zoom into the Rockies window ==\n")
	fmt.Printf("  %dx%d at full resolution in %.2fs: %d of %d blocks, mean elevation %.0f m\n",
		res.Grid.W, res.Grid.H, time.Since(start).Seconds(),
		res.Stats.BlocksRead, ds.Meta.NumBlocks(), st.Mean)
	if res.Grid.Geo != nil {
		lon, lat := res.Grid.Geo.PixelToGeo(0, 0)
		fmt.Printf("  window NW corner: %.2f°E %.2f°N\n", lon, lat)
	}

	// 3. Revisit: the cache absorbs the WAN.
	start = time.Now()
	if _, err := engine.Read(context.Background(), query.Request{Field: "elevation", Box: rockies, Level: query.LevelFull}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n== revisit the same window ==\n  served from cache in %v (hit rate %.2f)\n",
		time.Since(start).Round(time.Microsecond), engine.CacheStats().HitRate())

	net := remoteStore.Stats()
	fmt.Printf("\nWAN totals: %d operations, %.1f MiB down, %.1fs simulated network time\n",
		net.Ops, float64(net.BytesDownloaded)/(1<<20), net.TotalWait.Seconds())
}
