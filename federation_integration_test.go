package nsdfgo_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nsdfgo/internal/dashboard"
	"nsdfgo/internal/dem"
	"nsdfgo/internal/geotiled"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/query"
	"nsdfgo/internal/shard"
	"nsdfgo/internal/storage"
	"nsdfgo/internal/telemetry"
	"nsdfgo/internal/telemetry/trace"
)

// traceStore is one simulated nsdf-store process: an HTTP object server
// with its own trace collector, plus a gate that slows requests for one
// chosen block key so a hedge fires deterministically.
type traceStore struct {
	url     string
	slowKey atomic.Value // string: object key to delay, "" for none
}

func newTraceStore(t *testing.T, name string) *traceStore {
	t.Helper()
	ts := &traceStore{}
	ts.slowKey.Store("")
	col := trace.NewCollector(16)
	col.SetNode(name)
	inner := storage.NewServer(storage.NewMemStore(), "")
	slowed := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if key := ts.slowKey.Load().(string); key != "" && strings.Contains(r.URL.Path, key) {
			time.Sleep(150 * time.Millisecond)
		}
		inner.ServeHTTP(w, r)
	})
	mux := http.NewServeMux()
	mux.Handle("/debug/traces", col.Handler())
	mux.Handle("/", telemetry.WithTracing(slowed, col, telemetry.TracingOptions{Service: name}))
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	ts.url = srv.URL
	return ts
}

// TestFederatedTraceEndToEnd is the tentpole acceptance path: a client
// trace ID supplied on a dashboard read that fans out over the sharded
// block tier must be retrievable from the dashboard as ONE federated
// tree containing spans from the dashboard and the store processes,
// with hedge-loser attempts marked cancelled and a dead peer degrading
// the assembly instead of failing it.
func TestFederatedTraceEndToEnd(t *testing.T) {
	ctx := context.Background()

	// Two store processes and a shard router over storage HTTP clients —
	// the same topology `nsdf-dashboard -peers` builds.
	stores := map[string]*traceStore{
		"store-a": newTraceStore(t, "store-a"),
		"store-b": newTraceStore(t, "store-b"),
	}
	r, err := shard.NewRouter([]shard.Node{
		{Name: "store-a", Store: storage.NewClient(stores["store-a"].url, "")},
		{Name: "store-b", Store: storage.NewClient(stores["store-b"].url, "")},
	}, shard.Options{Replicas: 2, HedgeAfter: 15 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	// A small dataset written through the router, so block reads travel
	// dashboard -> router -> store over real HTTP.
	scene := dem.Tennessee(128, 64, 77)
	g, err := geotiled.ComputeTiled(scene, geotiled.Elevation, geotiled.Options{})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := idx.NewMeta([]int{128, 64}, []idx.Field{{Name: "elevation", Type: idx.Float32}})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := idx.Create(ctx, storage.NewIDXBackend(r, "ds"), meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteGrid(ctx, "elevation", 0, g); err != nil {
		t.Fatal(err)
	}

	// Slow block 0's PRIMARY replica: its read will hedge to the other
	// store, the hedge wins, and the primary attempt must be booked as a
	// cancelled span.
	block := ds.BlockKey("elevation", 0, 0)
	primary := r.Ring().Replicas("ds/"+block, 2)[0]
	stores[primary].slowKey.Store(block)
	hedgeWinner := "store-a"
	if primary == "store-a" {
		hedgeWinner = "store-b"
	}

	// The dashboard process, federated over both stores plus one dead
	// peer (a closed server) to exercise degradation.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	dashCol := trace.NewCollector(32)
	dashCol.SetNode("dashboard")
	dash := dashboard.NewServer()
	dash.EnableTracing(dashCol)
	dash.Register("tennessee", query.New(ds, 16<<20))
	dash.EnableFederation(map[string]string{
		"store-a":    stores["store-a"].url,
		"store-b":    stores["store-b"].url,
		"store-down": deadURL,
	}, 500*time.Millisecond)
	dashSrv := httptest.NewServer(telemetry.WithTracing(dash, dashCol,
		telemetry.TracingOptions{Service: "dashboard"}))
	defer dashSrv.Close()

	// A cold full-region read with a client-supplied trace ID.
	traceID := "fedcba9876543210fedcba9876543210"
	req, err := http.NewRequest("GET",
		dashSrv.URL+"/api/data?dataset=tennessee&field=elevation&x0=0&y0=0&x1=128&y1=64", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(telemetry.TraceIDHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("data read status %s", resp.Status)
	}
	if got := resp.Header.Get(telemetry.TraceIDHeader); got != traceID {
		t.Fatalf("response trace header %q, want %q", got, traceID)
	}

	// Federated assembly. The hedge loser's trace publishes only after
	// its delayed handler finishes, so poll until all three live nodes
	// contributed.
	fed := pollFederated(t, dashSrv.URL, traceID,
		[]string{"dashboard", "store-a", "store-b"})

	if fed.Trace == nil || fed.Trace.TraceID != traceID {
		t.Fatalf("federated trace = %+v, want id %s", fed.Trace, traceID)
	}
	if reason := fed.Failed["store-down"]; reason == "" {
		t.Fatalf("dead peer missing from failed map: %v", fed.Failed)
	}

	// Spans from all three processes, namespaced per node.
	spansPerNode := map[string]int{}
	for _, sp := range fed.Trace.Spans {
		spansPerNode[sp.Attrs["node"]]++
	}
	for _, node := range []string{"dashboard", "store-a", "store-b"} {
		if spansPerNode[node] == 0 {
			t.Errorf("no spans attributed to %s (have %v)", node, spansPerNode)
		}
	}

	// Each store's request root grafts under a dashboard span, so the
	// tree really is stitched across the process boundary.
	grafted := 0
	for _, sp := range fed.Trace.Spans {
		if strings.HasPrefix(sp.ID, "store-") && strings.HasPrefix(sp.Name, "http ") {
			if !strings.HasPrefix(sp.Parent, "dashboard/") {
				t.Errorf("store request span %s parent %q, want a dashboard/ span", sp.ID, sp.Parent)
			}
			grafted++
		}
	}
	if grafted == 0 {
		t.Error("no store request spans found in the federated trace")
	}

	// The hedge on the slowed block: the loser (its primary) is booked
	// as cancelled, the winner as a successful hedge on the other store.
	var loser, winner bool
	for _, sp := range fed.Trace.Spans {
		if sp.Name != "shard.get" {
			continue
		}
		switch sp.Attrs["outcome"] {
		case "cancelled":
			if sp.Attrs["node"] == primary {
				loser = true
			}
		case "ok":
			if sp.Attrs["hedge"] == "true" && sp.Attrs["node"] == hedgeWinner {
				winner = true
			}
		}
	}
	if !loser {
		t.Errorf("no cancelled shard.get span on the hedge loser %s", primary)
	}
	if !winner {
		t.Errorf("no winning hedged shard.get span on %s", hedgeWinner)
	}

	// The text rendering names the assembly's provenance, dead peer
	// included.
	resp, err = http.Get(dashSrv.URL + "/debug/traces?federate=1&trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"assembled from 3 node(s)",
		"peer store-down failed",
		"http /api/data",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("federated text missing %q:\n%s", want, text)
		}
	}
}

// pollFederated fetches the federated trace until every node in want
// has contributed (hedge losers publish late) or the deadline passes.
func pollFederated(t *testing.T, baseURL, traceID string, want []string) *dashboard.FederatedTrace {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var last string
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/debug/traces?federate=1&format=json&trace=" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var fed dashboard.FederatedTrace
			if err := json.Unmarshal(body, &fed); err != nil {
				t.Fatalf("decode federated trace: %v\n%s", err, body)
			}
			have := map[string]bool{}
			for _, n := range fed.Nodes {
				have[n] = true
			}
			missing := false
			for _, n := range want {
				if !have[n] {
					missing = true
				}
			}
			if !missing {
				return &fed
			}
			last = fmt.Sprintf("nodes %v", fed.Nodes)
		} else {
			last = fmt.Sprintf("status %s: %s", resp.Status, body)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("federated trace never assembled all of %v; last: %s", want, last)
	return nil
}
