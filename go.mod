module nsdfgo

go 1.22
