// bench_test.go regenerates every table and figure of the paper as a
// testing.B benchmark (experiment ids follow DESIGN.md §4), plus the
// ablation benches for the design choices DESIGN.md §5 calls out. Run
// with:
//
//	go test -bench=. -benchmem
package nsdfgo_test

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"testing"

	"nsdfgo/internal/cache"
	"nsdfgo/internal/compress"
	"nsdfgo/internal/dem"
	"nsdfgo/internal/experiments"
	"nsdfgo/internal/fusefs"
	"nsdfgo/internal/geotiled"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/query"
	"nsdfgo/internal/storage"
	"nsdfgo/internal/tiff"

	"context"
)

// --- One benchmark per paper artifact -----------------------------------

func BenchmarkTableIAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTableI(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1GoalsSelfTest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2ProbeMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig2(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3Conversion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig3(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4Workflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig4(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5GeotiledSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6Validation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7DashboardSession(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig7(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8SurveyCharts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig8(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClaimSizeReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunClaim20(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheColdWarm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunClaimCache(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClaimCloudAcquisition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunClaimCloud(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Supporting micro-benches behind the claims -------------------------

// benchDataset builds a 512x512 elevation dataset once per benchmark.
func benchDataset(b *testing.B, bitsPerBlock int) *idx.Dataset {
	b.Helper()
	meta, err := idx.NewMeta([]int{512, 512}, []idx.Field{{Name: "elevation", Type: idx.Float32}})
	if err != nil {
		b.Fatal(err)
	}
	meta.BitsPerBlock = bitsPerBlock
	ds, err := idx.Create(context.Background(), idx.NewMemBackend(), meta)
	if err != nil {
		b.Fatal(err)
	}
	g := dem.Scale(dem.FBM(512, 512, 1, dem.DefaultFBM()), 0, 2500)
	if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		b.Fatal(err)
	}
	return ds
}

// BenchmarkProgressiveLevels measures claim C2: box queries at coarse
// levels cost a fraction of full resolution.
func BenchmarkProgressiveLevels(b *testing.B) {
	ds := benchDataset(b, 12)
	for _, level := range []int{6, 10, 14, 18} {
		b.Run(fmt.Sprintf("level%d", level), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := ds.ReadBox(context.Background(), "elevation", 0, ds.FullBox(), level); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCatalogIndex and BenchmarkCatalogSearch cover claim C4; they
// live in internal/catalog's own bench suite and are re-exported here as
// a single representative workload over 100k records.
func BenchmarkCatalogScaleModel(b *testing.B) {
	// Covered in depth by internal/catalog benches; keep the top-level
	// entry point so `-bench=Catalog` at the root measures the C4 shape.
	b.Run("ingest+search", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := catalogScaleModelOnce(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func catalogScaleModelOnce() error {
	// A miniature of the 1.59B-record catalog: ingest 20k, run 100 queries.
	cat := newBenchCatalog(20000)
	for q := 0; q < 100; q++ {
		if res := cat.Search(benchQuery(q)); res == nil && q%50 == 0 {
			// Some queries legitimately return nothing.
			continue
		}
	}
	return nil
}

// BenchmarkFuseMappings covers claim C5: mapping package comparison.
func BenchmarkFuseMappings(b *testing.B) {
	ctx := context.Background()
	payloadSmall := make([]byte, 8<<10)
	payloadLarge := make([]byte, 4<<20)
	mappings := map[string]fusefs.Mapping{
		"one-to-one": fusefs.OneToOne{},
		"chunked1M":  fusefs.Chunked{ChunkSize: 1 << 20},
		"compressed": fusefs.Compressed{},
	}
	for name, m := range mappings {
		b.Run(name+"/many-small", func(b *testing.B) {
			store := storage.NewMemStore()
			b.SetBytes(int64(len(payloadSmall)))
			for i := 0; i < b.N; i++ {
				path := fmt.Sprintf("f%d.bin", i%64)
				if err := m.Write(ctx, store, path, payloadSmall); err != nil {
					b.Fatal(err)
				}
				if _, err := m.Read(ctx, store, path); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/few-large", func(b *testing.B) {
			store := storage.NewMemStore()
			b.SetBytes(int64(len(payloadLarge)))
			for i := 0; i < b.N; i++ {
				if err := m.Write(ctx, store, "big.bin", payloadLarge); err != nil {
					b.Fatal(err)
				}
				if _, err := m.Read(ctx, store, "big.bin"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNetmonProbe covers claim C6.
func BenchmarkNetmonProbe(b *testing.B) {
	net := newBenchNetwork(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := net.ProbeLatency("sdsc", "mghpcc"); err != nil {
			b.Fatal(err)
		}
		if _, err := net.ProbeThroughput("sdsc", "mghpcc"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md §5) -------------------------------------

// BenchmarkLayoutHZvsRowMajor ablates the HZ block layout: a 64x64 box
// query against the HZ-ordered dataset versus scanning the equivalent
// row-major TIFF (which must decode whole strips covering the rows).
func BenchmarkLayoutHZvsRowMajor(b *testing.B) {
	g := dem.Scale(dem.FBM(512, 512, 1, dem.DefaultFBM()), 0, 2500)
	box := idx.Box{X0: 224, Y0: 224, X1: 288, Y1: 288}

	b.Run("hz-idx", func(b *testing.B) {
		ds := benchDataset(b, 12)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := ds.ReadBox(context.Background(), "elevation", 0, box, ds.Meta.MaxLevel()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rowmajor-tiff", func(b *testing.B) {
		var buf bytes.Buffer
		if err := tiff.Encode(&buf, tiff.FromGrid(g), tiff.EncodeOptions{Compression: tiff.CompressionDeflate}); err != nil {
			b.Fatal(err)
		}
		data := buf.Bytes()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			im, err := tiff.DecodeBytes(data)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := im.Grid().Crop(box.X0, box.Y0, box.X1-box.X0, box.Y1-box.Y0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGeotiledHaloWidth ablates the halo width (redundant compute vs
// seam correctness is tested elsewhere; here we measure cost).
func BenchmarkGeotiledHaloWidth(b *testing.B) {
	d := dem.Scale(dem.FBM(512, 512, 1, dem.DefaultFBM()), 0, 2500)
	for _, halo := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("halo%d", halo), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := geotiled.ComputeTiled(d, geotiled.Slope, geotiled.Options{TileSize: 128, Halo: halo}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCacheSizes ablates the block-cache budget for a pan workload
// revisiting 4 quadrants.
func BenchmarkCacheSizes(b *testing.B) {
	ds := benchDataset(b, 12)
	quadrants := []idx.Box{
		{X0: 0, Y0: 0, X1: 256, Y1: 256},
		{X0: 256, Y0: 0, X1: 512, Y1: 256},
		{X0: 0, Y0: 256, X1: 256, Y1: 512},
		{X0: 256, Y0: 256, X1: 512, Y1: 512},
	}
	for _, mb := range []int64{0, 1, 4, 64} {
		b.Run(fmt.Sprintf("cache%dMiB", mb), func(b *testing.B) {
			engine := query.New(ds, mb<<20)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := quadrants[i%len(quadrants)]
				if _, err := engine.Read(context.Background(), query.Request{Field: "elevation", Box: q, Level: 16}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFieldCodecs ablates the per-field codec choice on terrain data.
func BenchmarkFieldCodecs(b *testing.B) {
	g := dem.Scale(dem.FBM(256, 256, 1, dem.DefaultFBM()), 0, 2500)
	raw := make([]byte, 4*len(g.Data))
	for i, v := range g.Data {
		u := uint32(int32(v * 100))
		raw[4*i] = byte(u)
		raw[4*i+1] = byte(u >> 8)
		raw[4*i+2] = byte(u >> 16)
		raw[4*i+3] = byte(u >> 24)
	}
	for _, name := range []string{"raw", "zlib", "lz4", "shuffle4-zlib"} {
		codec, err := compress.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(raw)))
			var encLen int
			for i := 0; i < b.N; i++ {
				enc, err := codec.Encode(raw)
				if err != nil {
					b.Fatal(err)
				}
				encLen = len(enc)
			}
			b.ReportMetric(float64(len(raw))/float64(encLen), "ratio")
		})
	}
}

// BenchmarkParallelFetchWAN ablates fetch parallelism against a
// cross-country conditioned store: with ~7ms RTT per object, overlapping
// fetches is the difference between an unusable and a fluid dashboard.
func BenchmarkParallelFetchWAN(b *testing.B) {
	meta, err := idx.NewMeta([]int{256, 256}, []idx.Field{{Name: "elevation", Type: idx.Float32}})
	if err != nil {
		b.Fatal(err)
	}
	meta.BitsPerBlock = 10 // 64 blocks
	remote := storage.NewConditioned(storage.NewMemStore(), storage.ProfileCrossCountry, 1)
	ds, err := idx.Create(context.Background(), storage.NewIDXBackend(remote, "wan"), meta)
	if err != nil {
		b.Fatal(err)
	}
	g := dem.Scale(dem.FBM(256, 256, 1, dem.DefaultFBM()), 0, 1000)
	if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		b.Fatal(err)
	}
	for _, par := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("parallel%d", par), func(b *testing.B) {
			ds.SetFetchParallelism(par)
			for i := 0; i < b.N; i++ {
				if _, _, err := ds.ReadFull(context.Background(), "elevation", 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPrefetchAblation compares a revisit-heavy session against a
// cross-country store with and without access-pattern prefetching: the
// tracker learns the hot quadrant from cheap coarse reads, Prefetch warms
// its blocks, and the subsequent full-resolution read is cache-only.
func BenchmarkPrefetchAblation(b *testing.B) {
	// The dataset lives on the conditioned store once; each iteration only
	// rebuilds the engine (fresh empty cache), so per-iteration setup is
	// cheap and the measured quantity stays the interactive zoom latency.
	meta, err := idx.NewMeta([]int{256, 256}, []idx.Field{{Name: "elevation", Type: idx.Float32}})
	if err != nil {
		b.Fatal(err)
	}
	meta.BitsPerBlock = 10
	remote := storage.NewConditioned(storage.NewMemStore(), storage.ProfileCrossCountry, 1)
	ds, err := idx.Create(context.Background(), storage.NewIDXBackend(remote, "pf"), meta)
	if err != nil {
		b.Fatal(err)
	}
	if err := ds.WriteGrid(context.Background(), "elevation", 0, dem.Scale(dem.FBM(256, 256, 1, dem.DefaultFBM()), 0, 1000)); err != nil {
		b.Fatal(err)
	}
	hot := idx.Box{X0: 128, Y0: 128, X1: 256, Y1: 256}
	// Only the interactive moment — the full-resolution zoom the user is
	// waiting on — is timed. Browsing and prefetch happen while the user
	// reads the screen (StopTimer), which is exactly when a dashboard
	// issues prefetches.
	session := func(b *testing.B, prefetch bool) {
		b.StopTimer()
		e := query.New(ds, 64<<20) // fresh cache per session
		e.SetFetchParallelism(8)
		if prefetch {
			e.EnableTracking(32)
		}
		for i := 0; i < 4; i++ {
			if _, err := e.Read(context.Background(), query.Request{Field: "elevation", Box: hot, Level: 8}); err != nil {
				b.Fatal(err)
			}
		}
		if prefetch {
			if _, _, err := e.Prefetch(context.Background(), "elevation", 0, e.Dataset().Meta.MaxLevel()); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := e.Read(context.Background(), query.Request{Field: "elevation", Box: hot, Level: query.LevelFull}); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("no-prefetch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			session(b, false)
		}
	})
	b.Run("prefetch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			session(b, true)
		}
	})
}

// BenchmarkZFPToleranceSweep ablates the lossy-codec tolerance on a real
// terrain field: tighter bounds cost more bytes. The "ratio" metric is
// raw-bytes / stored-bytes.
func BenchmarkZFPToleranceSweep(b *testing.B) {
	g := dem.Scale(dem.FBM(256, 256, 1, dem.DefaultFBM()), 0, 2500)
	raw := make([]byte, 4*len(g.Data))
	for i, v := range g.Data {
		u := math.Float32bits(v)
		raw[4*i] = byte(u)
		raw[4*i+1] = byte(u >> 8)
		raw[4*i+2] = byte(u >> 16)
		raw[4*i+3] = byte(u >> 24)
	}
	for _, name := range []string{"zfp-1", "zfp-0.1", "zfp-0.01", "zfp-0.001", "shuffle4-zlib"} {
		codec, err := compress.Lookup(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(raw)))
			var encLen int
			for i := 0; i < b.N; i++ {
				enc, err := codec.Encode(raw)
				if err != nil {
					b.Fatal(err)
				}
				encLen = len(enc)
			}
			b.ReportMetric(float64(len(raw))/float64(encLen), "ratio")
		})
	}
}

// BenchmarkCacheLRU exercises the cache under a zipf-ish key mix, the
// hot-path cost behind every warm dashboard interaction.
func BenchmarkCacheLRU(b *testing.B) {
	c := cache.NewLRU(1 << 22)
	for i := 0; i < 128; i++ {
		// Put adopts the buffer, so each entry needs its own backing array.
		c.Put(fmt.Sprintf("blk%d", i), make([]byte, 16<<10)).Release()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if blk, ok := c.Get(fmt.Sprintf("blk%d", i%160)); ok { // ~80% hits
			blk.Release()
		}
	}
}
