# Developer entry points. `make check` is the full gate: tier-1
# (build + test, matching ROADMAP.md) plus vet, the race detector, and a
# 1-iteration smoke of the read-path benchmark harness.

GO ?= go

.PHONY: build test vet race check bench-readpath bench-readpath-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Measure the run-based HZ kernels against the per-sample reference path
# and refresh BENCH_readpath.json (see README.md for how to read it),
# then print the standard Go benchmark tables.
bench-readpath:
	NSDF_BENCH_READPATH_ITERS=5 NSDF_BENCH_READPATH_OUT=$(CURDIR)/BENCH_readpath.json \
		$(GO) test ./internal/idx -run '^TestBenchReadpathEmit$$' -count=1 -v
	$(GO) test ./internal/idx -run '^$$' -bench 'BenchmarkReadBoxKernel|BenchmarkWriteGridKernel' -benchmem -count=1

# One-iteration smoke of the same harness, writing to a temp file: keeps
# the benchmark code compiling and running under `make check` without
# touching the committed BENCH_readpath.json.
bench-readpath-smoke:
	NSDF_BENCH_READPATH_ITERS=1 $(GO) test ./internal/idx -run '^TestBenchReadpathEmit$$' -count=1

check: build test vet race bench-readpath-smoke
	@echo "check: all gates passed"
