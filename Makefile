# Developer entry points. `make check` is the full gate: tier-1
# (build + test, matching ROADMAP.md) plus vet, the race detector, the
# nsdf-lint analyzer suite, a 5-second smoke of each fuzz target, and a
# reduced-size smoke of every benchmark harness (read path, trace
# overhead, block cache, sharded tier, compression, lint, serving).

GO ?= go

.PHONY: build test vet race lint fuzz-smoke check bench-readpath bench-readpath-smoke bench-trace bench-trace-smoke bench-cache bench-cache-smoke bench-shard bench-shard-smoke bench-compression bench-compression-smoke bench-lint bench-lint-smoke bench-serving bench-serving-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# Run the in-repo analyzer suite (internal/lint) over every package.
# Exit 1 means findings; fix them or annotate with //lint:allow <name>.
lint:
	$(GO) run ./cmd/nsdf-lint ./...

# Briefly run each native fuzz target so the fuzz harnesses stay
# compiling and the properties hold on fresh coverage-guided inputs.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzSniff$$' -fuzztime=5s ./internal/convert
	$(GO) test -run '^$$' -fuzz '^FuzzHZRuns$$' -fuzztime=5s ./internal/hz

# Measure the run-based HZ kernels against the per-sample reference path
# and refresh BENCH_readpath.json (see README.md for how to read it),
# then print the standard Go benchmark tables.
bench-readpath:
	NSDF_BENCH_READPATH_ITERS=5 NSDF_BENCH_READPATH_OUT=$(CURDIR)/BENCH_readpath.json \
		$(GO) test ./internal/idx -run '^TestBenchReadpathEmit$$' -count=1 -v
	$(GO) test ./internal/idx -run '^$$' -bench 'BenchmarkReadBoxKernel|BenchmarkWriteGridKernel' -benchmem -count=1

# One-iteration smoke of the same harness, writing to a temp file: keeps
# the benchmark code compiling and running under `make check` without
# touching the committed BENCH_readpath.json.
bench-readpath-smoke:
	NSDF_BENCH_READPATH_ITERS=1 $(GO) test ./internal/idx -run '^TestBenchReadpathEmit$$' -count=1

# Measure what an active trace costs the warm-cache ReadBox path AND a
# sharded read across HTTP store processes (header propagation, remote
# span records), refreshing both sections of BENCH_trace_overhead.json.
# Fails if either overhead exceeds the 5% budget.
bench-trace:
	NSDF_BENCH_TRACE_ITERS=20 NSDF_BENCH_TRACE_OUT=$(CURDIR)/BENCH_trace_overhead.json \
		$(GO) test ./internal/idx -run '^TestBenchTraceOverheadEmit$$' -count=1 -v
	NSDF_BENCH_TRACE_ITERS=50 NSDF_BENCH_TRACE_OUT=$(CURDIR)/BENCH_trace_overhead.json \
		$(GO) test . -run '^TestBenchTraceDistributedEmit$$' -count=1 -v

# One-iteration smoke of both trace-overhead harnesses (temp output, no
# gating): keeps them compiling and running under `make check`.
bench-trace-smoke:
	NSDF_BENCH_TRACE_ITERS=1 $(GO) test ./internal/idx -run '^TestBenchTraceOverheadEmit$$' -count=1
	NSDF_BENCH_TRACE_ITERS=1 $(GO) test . -run '^TestBenchTraceDistributedEmit$$' -count=1

# Measure the tiered block cache — zero-copy hit path (gated at 0
# allocs/op), fetch coalescing under concurrent readers, TinyLFU
# admission vs plain LRU — and refresh BENCH_cache.json, then print the
# stock benchmark tables.
bench-cache:
	NSDF_BENCH_CACHE_ITERS=5 NSDF_BENCH_CACHE_OUT=$(CURDIR)/BENCH_cache.json \
		$(GO) test ./internal/cache -run '^TestBenchCacheEmit$$' -count=1 -v
	$(GO) test ./internal/cache -run '^$$' -bench 'BenchmarkGetHit|BenchmarkPutEvict' -benchmem -count=1

# One-iteration smoke of the cache harness (temp output): keeps it
# compiling, running, and allocation-free under `make check`.
bench-cache-smoke:
	NSDF_BENCH_CACHE_ITERS=1 $(GO) test ./internal/cache -run '^TestBenchCacheEmit$$' -count=1

# Measure the sharded block tier — aggregate cold-read throughput at
# N=1/2/4 nodes, hedged-read p99 under a heavy-tail network profile,
# failover under node loss — and refresh BENCH_shard.json. Fails if the
# acceptance gates slip (>=2x scaling at N=4, >=30% p99 cut at <5%
# extra backend gets).
bench-shard:
	NSDF_BENCH_SHARD_ITERS=5 NSDF_BENCH_SHARD_OUT=$(CURDIR)/BENCH_shard.json \
		$(GO) test ./internal/shard -run '^TestBenchShardEmit$$' -count=1 -v -timeout 20m

# Reduced-size smoke of the shard harness (temp output, no gating):
# keeps it compiling and running under `make check`.
bench-shard-smoke:
	NSDF_BENCH_SHARD_ITERS=1 $(GO) test ./internal/shard -run '^TestBenchShardEmit$$' -count=1

# Measure the block codecs on a synthetic float32 terrain raster —
# encoded size, decode latency, max abs error — and refresh
# BENCH_compression.json. Fails if shuffle4-zlib stops beating plain
# zlib by >=15% (the paper's TIFF-to-IDX shrink was ~20%).
bench-compression:
	NSDF_BENCH_COMPRESSION_ITERS=20 NSDF_BENCH_COMPRESSION_OUT=$(CURDIR)/BENCH_compression.json \
		$(GO) test ./internal/compress -run '^TestBenchCompressionEmit$$' -count=1 -v

# One-iteration smoke of the compression harness (temp output, no
# ratio gate): keeps it compiling and running under `make check`.
bench-compression-smoke:
	NSDF_BENCH_COMPRESSION_ITERS=1 $(GO) test ./internal/compress -run '^TestBenchCompressionEmit$$' -count=1

# Measure serving under load — uncontended vs sustainable vs 2x-overload
# latency and goodput with and without admission control, plus loadgen
# completion against a killed backend node — and refresh
# BENCH_serving.json. Fails if admission stops holding admitted p99
# within 2x uncontended p99 and goodput within 90% of sustainable at 2x
# offered load, or if the load generator hangs against a dead backend.
bench-serving:
	NSDF_BENCH_SERVING_ITERS=4 NSDF_BENCH_SERVING_OUT=$(CURDIR)/BENCH_serving.json \
		$(GO) test ./internal/loadgen -run '^TestBenchServingEmit$$' -count=1 -v -timeout 20m

# Reduced-size smoke of the serving harness (temp output, no gating):
# keeps it compiling and running under `make check`.
bench-serving-smoke:
	NSDF_BENCH_SERVING_ITERS=1 $(GO) test ./internal/loadgen -run '^TestBenchServingEmit$$' -count=1

# Measure the analyzer suite itself — module load/type-check cost and
# per-analyzer wall time over every package, with the CFG-based
# flow-sensitive analyzers broken out — and refresh BENCH_lint.json.
bench-lint:
	NSDF_BENCH_LINT_ITERS=5 NSDF_BENCH_LINT_OUT=$(CURDIR)/BENCH_lint.json \
		$(GO) test ./internal/lint -run '^TestBenchLintEmit$$' -count=1 -v

# One-iteration smoke of the lint harness (temp output): keeps it
# compiling and running under `make check`.
bench-lint-smoke:
	NSDF_BENCH_LINT_ITERS=1 $(GO) test ./internal/lint -run '^TestBenchLintEmit$$' -count=1

check: build test vet race lint fuzz-smoke bench-readpath-smoke bench-trace-smoke bench-cache-smoke bench-shard-smoke bench-compression-smoke bench-lint-smoke bench-serving-smoke
	@echo "check: all gates passed"
