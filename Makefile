# Developer entry points. `make check` is the full gate: tier-1
# (build + test, matching ROADMAP.md) plus vet and the race detector.

GO ?= go

.PHONY: build test vet race check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

check: build test vet race
	@echo "check: all gates passed"
