package nsdfgo_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"image/png"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nsdfgo/internal/catalog"
	"nsdfgo/internal/convert"
	"nsdfgo/internal/dashboard"
	"nsdfgo/internal/dem"
	"nsdfgo/internal/geotiled"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/netcdf"
	"nsdfgo/internal/query"
	"nsdfgo/internal/raster"
	"nsdfgo/internal/storage"
	"nsdfgo/internal/tiff"
)

// TestFullStackOverHTTP drives the complete tutorial scenario with every
// service behind a real HTTP boundary: a private Seal-style object store,
// a catalog service, and the dashboard, exercising step 1 through step 4
// exactly as a distributed deployment would.
func TestFullStackOverHTTP(t *testing.T) {
	ctx := context.Background()

	// --- Services: private store with auth, catalog. ---
	sealBackend := storage.NewMemStore()
	sealSrv := httptest.NewServer(storage.NewServer(sealBackend, "tutorial-token"))
	defer sealSrv.Close()
	seal := storage.NewClient(sealSrv.URL, "tutorial-token")

	cat := catalog.New()
	catSrv := httptest.NewServer(catalog.NewServer(cat))
	defer catSrv.Close()

	// --- Step 1: generate terrain, write TIFFs to the remote store. ---
	scene := dem.Tennessee(128, 64, 77)
	grids := map[string]*raster.Grid{}
	for _, p := range []geotiled.Param{geotiled.Elevation, geotiled.Hillshade} {
		g, err := geotiled.ComputeTiled(scene, p, geotiled.Options{})
		if err != nil {
			t.Fatal(err)
		}
		grids[p.String()] = g
		var buf bytes.Buffer
		if err := tiff.Encode(&buf, tiff.FromGrid(g), tiff.EncodeOptions{Compression: tiff.CompressionDeflate}); err != nil {
			t.Fatal(err)
		}
		if err := seal.Put(ctx, "raw/"+p.String()+".tif", buf.Bytes()); err != nil {
			t.Fatal(err)
		}
	}

	// --- Step 2: fetch back over HTTP, convert to IDX on the same store. ---
	var inputs []convert.Input
	for name := range grids {
		data, err := seal.Get(ctx, "raw/"+name+".tif")
		if err != nil {
			t.Fatal(err)
		}
		g, err := convert.LoadRaster(name+".tif", data, convert.Options{})
		if err != nil {
			t.Fatal(err)
		}
		inputs = append(inputs, convert.Input{FieldName: name, Grid: g})
	}
	ds, err := convert.ToIDX(context.Background(), storage.NewIDXBackend(seal, "datasets/tn"), inputs, 10, "")
	if err != nil {
		t.Fatal(err)
	}

	// Register the dataset's fields in the catalog over its HTTP API.
	var records []catalog.Record
	for name := range grids {
		size, err := ds.StoredBytes(context.Background(), name, 0)
		if err != nil {
			t.Fatal(err)
		}
		records = append(records, catalog.Record{
			Name: "tn_" + name + ".idx", Source: "sealstorage", Type: "idx",
			Size: size, Location: sealSrv.URL + "/datasets/tn",
			Keywords: []string{"terrain", name, "tennessee"},
		})
	}
	body, _ := json.Marshal(records)
	resp, err := http.Post(catSrv.URL+"/records", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("catalog ingest status %s", resp.Status)
	}

	// --- Step 3: validate through a fresh dataset handle (reopen). ---
	ds2, err := idx.Open(context.Background(), storage.NewIDXBackend(seal, "datasets/tn"))
	if err != nil {
		t.Fatal(err)
	}
	for name, orig := range grids {
		back, _, err := ds2.ReadFull(context.Background(), name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !raster.Equal(orig, back) {
			t.Fatalf("%s: HTTP round trip not identical", name)
		}
	}

	// --- Step 4: dashboard over the store-backed dataset. ---
	dash := dashboard.NewServer()
	dash.Register("tennessee", query.New(ds2, 16<<20))
	dashSrv := httptest.NewServer(dash)
	defer dashSrv.Close()

	resp, err = http.Get(dashSrv.URL + "/api/render?dataset=tennessee&field=elevation&palette=terrain")
	if err != nil {
		t.Fatal(err)
	}
	pngBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("render status %s", resp.Status)
	}
	if _, err := png.Decode(bytes.NewReader(pngBody)); err != nil {
		t.Fatalf("render not a PNG: %v", err)
	}

	// Snip -> .npy -> decode -> values match the source exactly.
	resp, err = http.Get(dashSrv.URL + "/api/data?dataset=tennessee&field=elevation&x0=16&y0=16&x1=48&y1=40")
	if err != nil {
		t.Fatal(err)
	}
	npyBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	snip, err := dashboard.DecodeNPY(npyBody)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := grids["elevation"].Crop(16, 16, 32, 24)
	if !raster.Equal(want, snip) {
		t.Fatal("snipped region differs from source data")
	}

	// Discovery: the catalog finds what the workflow published.
	resp, err = http.Get(catSrv.URL + "/search?q=terrain+tennessee")
	if err != nil {
		t.Fatal(err)
	}
	var found []catalog.Record
	json.NewDecoder(resp.Body).Decode(&found)
	resp.Body.Close()
	if len(found) != 2 {
		t.Fatalf("catalog found %d records, want 2", len(found))
	}

	// Unauthorized access to the private store must fail.
	anon := storage.NewClient(sealSrv.URL, "")
	if _, err := anon.Get(ctx, "datasets/tn/dataset.idx"); err == nil {
		t.Fatal("anonymous read of private store succeeded")
	}
}

// TestNetCDFPipelineIntegration covers the multi-format path: a NetCDF
// product converted to IDX and served by the dashboard.
func TestNetCDFPipelineIntegration(t *testing.T) {
	g := dem.Scale(dem.FBM(48, 32, 3, dem.DefaultFBM()), 0.1, 0.5)
	g.Geo = &raster.Georef{OriginX: -90, OriginY: 37, PixelW: 0.01, PixelH: 0.01}
	nc, err := netcdf.FromGrid("soil_moisture", g, "m3 m-3")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := convert.LoadRaster("sm.nc", buf.Bytes(), convert.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := convert.ToIDX(context.Background(), idx.NewMemBackend(), []convert.Input{{FieldName: "soil_moisture", Grid: loaded}}, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Meta.Geo == nil {
		t.Fatal("georeferencing lost through NetCDF -> IDX")
	}
	dash := dashboard.NewServer()
	dash.Register("moisture", query.New(ds, 1<<20))
	srv := httptest.NewServer(dash)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/stats?dataset=moisture")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]float64
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if stats["min"] < 0.09 || stats["max"] > 0.51 {
		t.Errorf("moisture stats out of band: %+v", stats)
	}
}

// TestWorkflowSurvivesFlakyStorage runs the step-2/3 conversion against a
// flaky store behind retries — failure injection at the integration level.
func TestWorkflowSurvivesFlakyStorage(t *testing.T) {
	flaky := storage.NewRetry(storage.NewFlaky(storage.NewMemStore(), 0.15, 5), 12, 0)
	scene := dem.Tennessee(96, 48, 9)
	ds, err := convert.ToIDX(context.Background(), storage.NewIDXBackend(flaky, "ds"),
		[]convert.Input{{FieldName: "elevation", Grid: scene}}, 8, "")
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := ds.ReadFull(context.Background(), "elevation", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(scene, back) {
		t.Fatal("data corrupted through flaky storage")
	}
}

// TestDashboardMultiDataset checks the dropdown with several datasets of
// different shapes registered at once.
func TestDashboardMultiDataset(t *testing.T) {
	dash := dashboard.NewServer()
	for i, name := range []string{"alpha", "beta", "gamma"} {
		w := 32 << i
		meta, err := idx.NewMeta([]int{w, 32}, []idx.Field{{Name: "f", Type: idx.Float32}})
		if err != nil {
			t.Fatal(err)
		}
		ds, err := idx.Create(context.Background(), idx.NewMemBackend(), meta)
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.WriteGrid(context.Background(), "f", 0, dem.FBM(w, 32, uint64(i), dem.DefaultFBM())); err != nil {
			t.Fatal(err)
		}
		dash.Register(name, query.New(ds, 1<<20))
	}
	srv := httptest.NewServer(dash)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/datasets")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var infos []dashboard.DatasetInfo
	if err := json.Unmarshal(raw, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("%d datasets", len(infos))
	}
	names := make([]string, len(infos))
	for i, d := range infos {
		names[i] = d.Name
	}
	if strings.Join(names, ",") != "alpha,beta,gamma" {
		t.Errorf("dropdown order %v", names)
	}
	for _, d := range infos {
		resp, err := http.Get(srv.URL + fmt.Sprintf("/api/render?dataset=%s", d.Name))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s render status %s", d.Name, resp.Status)
		}
	}
}
