// Package nsdfgo is a from-scratch Go reproduction of the software stack
// behind "Leveraging National Science Data Fabric Services to Train Data
// Scientists" (Taufer et al., SC 2024): the IDX multiresolution data
// format with hierarchical Z-order indexing, the GEOtiled terrain engine,
// the SOMOSPIE soil-moisture inference engine, the NSDF storage, catalog,
// FUSE-mapping, and network-monitoring services, and the interactive
// dashboard — wired together by the tutorial's four-step modular
// workflow.
//
// The implementation lives under internal/; runnable entry points are the
// commands under cmd/ and the programs under examples/. bench_test.go in
// this directory regenerates every table and figure of the paper as a
// benchmark; see DESIGN.md and EXPERIMENTS.md.
package nsdfgo
