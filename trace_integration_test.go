package nsdfgo_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"nsdfgo/internal/dashboard"
	"nsdfgo/internal/dem"
	"nsdfgo/internal/geotiled"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/query"
	"nsdfgo/internal/telemetry"
	"nsdfgo/internal/telemetry/trace"
)

// TestTraceEndToEnd is the acceptance path for the tracing subsystem: a
// dashboard box read issued with a client-supplied X-NSDF-Trace-Id must
// be findable at /debug/traces as one trace containing the query, IDX
// pipeline (plan, fetch, decode, assemble), and storage spans, each with
// a non-zero duration and the right dataset attribution.
func TestTraceEndToEnd(t *testing.T) {
	ctx := context.Background()

	scene := dem.Tennessee(128, 64, 77)
	g, err := geotiled.ComputeTiled(scene, geotiled.Elevation, geotiled.Options{})
	if err != nil {
		t.Fatal(err)
	}
	meta, err := idx.NewMeta([]int{128, 64}, []idx.Field{{Name: "elevation", Type: idx.Float32}})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := idx.Create(ctx, idx.NewMemBackend(), meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteGrid(ctx, "elevation", 0, g); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	col := trace.NewCollector(16)
	dash := dashboard.NewServer()
	dash.EnableTelemetry(reg)
	dash.EnableTracing(col)
	// A fresh engine: the first read hits a cold cache, so the fetch and
	// decode stages do real work and their spans get non-zero durations.
	dash.Register("tennessee", query.New(ds, 16<<20))

	srv := httptest.NewServer(telemetry.WithTracing(dash, col,
		telemetry.TracingOptions{Service: "dashboard", SlowRequest: time.Hour}))
	defer srv.Close()

	traceID := "0123456789abcdef0123456789abcdef"
	req, err := http.NewRequest("GET",
		srv.URL+"/api/data?dataset=tennessee&field=elevation&x0=16&y0=16&x1=48&y1=40", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(telemetry.TraceIDHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("data read status %s", resp.Status)
	}
	if got := resp.Header.Get(telemetry.TraceIDHeader); got != traceID {
		t.Fatalf("response trace header %q, want the client-supplied %q", got, traceID)
	}

	// The completed trace must be retrievable from the dashboard's own
	// /debug/traces endpoint by the client-supplied ID.
	resp, err = http.Get(srv.URL + "/debug/traces?format=json&trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	var traces []*trace.TraceData
	err = json.NewDecoder(resp.Body).Decode(&traces)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("found %d traces for id %s, want 1", len(traces), traceID)
	}
	data := traces[0]
	if data.TraceID != traceID {
		t.Fatalf("trace id %q, want %q", data.TraceID, traceID)
	}
	if data.Duration <= 0 {
		t.Fatalf("trace duration %v, want > 0", data.Duration)
	}

	// Every layer of the serving path must appear, with real time booked
	// and the dataset attributed.
	for _, name := range []string{
		"http /api/data", "query.read",
		"idx.read", "idx.plan", "idx.fetch", "idx.decode", "idx.assemble",
		"storage.get",
	} {
		sp := data.Span(name)
		if sp == nil {
			t.Errorf("span %q missing from trace (got %d spans)", name, len(data.Spans))
			continue
		}
		if sp.Duration <= 0 {
			t.Errorf("span %q duration %v, want > 0", name, sp.Duration)
		}
		switch name {
		case "query.read", "idx.read", "idx.fetch", "idx.decode", "idx.assemble", "storage.get":
			if sp.Attrs["dataset"] != "tennessee" {
				t.Errorf("span %q dataset attr %q, want tennessee", name, sp.Attrs["dataset"])
			}
		}
	}

	// The per-stage histograms must have absorbed the same request.
	series := scrape(t, srv.URL)
	for _, stage := range []string{"plan", "fetch", "decode", "assemble"} {
		key := `nsdf_idx_stage_seconds_count{dataset="tennessee",stage="` + stage + `"}`
		if series[key] == "" || series[key] == "0" {
			t.Errorf("stage histogram %s count = %q, want >= 1", key, series[key])
		}
	}
}

// scrape fetches /metrics and returns a map of "name{labels}" -> value.
func scrape(t *testing.T, base string) map[string]string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, line := range splitLines(string(body)) {
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		for i := len(line) - 1; i >= 0; i-- {
			if line[i] == ' ' {
				out[line[:i]] = line[i+1:]
				break
			}
		}
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
