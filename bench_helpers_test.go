package nsdfgo_test

import (
	"fmt"
	"testing"

	"nsdfgo/internal/catalog"
	"nsdfgo/internal/netmon"
)

// newBenchCatalog builds a synthetic catalog of n records spanning three
// sources and fifty region keywords.
func newBenchCatalog(n int) *catalog.Catalog {
	cat := catalog.New()
	sources := []string{"dataverse", "sealstorage", "materialscommons"}
	for i := 0; i < n; i++ {
		cat.Add(catalog.Record{
			Name:     fmt.Sprintf("object_%06d.tif", i),
			Source:   sources[i%3],
			Type:     "tiff",
			Size:     1 << 20,
			Keywords: []string{"terrain", fmt.Sprintf("region%d", i%50)},
		})
	}
	return cat
}

// benchQuery rotates through region-keyword queries.
func benchQuery(i int) catalog.Query {
	return catalog.Query{Terms: fmt.Sprintf("terrain region%d", i%50), Limit: 20}
}

// newBenchNetwork builds the 8-site testbed network.
func newBenchNetwork(b *testing.B) *netmon.Network {
	b.Helper()
	net, err := netmon.NewNetwork(netmon.Testbed(), 1)
	if err != nil {
		b.Fatal(err)
	}
	return net
}
