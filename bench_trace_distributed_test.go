package nsdfgo_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"nsdfgo/internal/shard"
	"nsdfgo/internal/storage"
	"nsdfgo/internal/telemetry"
	"nsdfgo/internal/telemetry/trace"
)

// This file measures what CROSS-PROCESS tracing costs a sharded read:
// the same router-over-HTTP-stores topology as production, run once
// with a plain context and once under an active trace — where every
// peer request additionally injects the propagation headers and every
// store adopts the inbound ID, records its own spans, and retains the
// trace. The distributed section of BENCH_trace_overhead.json comes
// from here; the budget is the same 5% the in-process path promises.

// distTraceSample is one measured variant of the distributed section.
type distTraceSample struct {
	NsPerOp float64 `json:"ns_per_op"`
	UsPerOp float64 `json:"us_per_op"`
}

// measureDistPair times the two variants in ALTERNATING repetitions and
// keeps the fastest repetition of each. Localhost HTTP latency drifts
// on the order of the effect being measured, so timing the variants in
// separate blocks (as the in-process emitter safely does for pure CPU
// work) would gate on scheduler weather; interleaving cancels the
// drift.
func measureDistPair(iters, reps int, a, b func()) (bestA, bestB distTraceSample) {
	bestA, bestB = distTraceSample{NsPerOp: -1}, distTraceSample{NsPerOp: -1}
	once := func(fn func()) float64 {
		fn() // warm-up
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters)
	}
	for r := 0; r < reps; r++ {
		if ns := once(a); bestA.NsPerOp < 0 || ns < bestA.NsPerOp {
			bestA = distTraceSample{NsPerOp: ns, UsPerOp: ns / 1e3}
		}
		if ns := once(b); bestB.NsPerOp < 0 || ns < bestB.NsPerOp {
			bestB = distTraceSample{NsPerOp: ns, UsPerOp: ns / 1e3}
		}
	}
	return bestA, bestB
}

// TestBenchTraceDistributedEmit measures traced vs untraced sharded
// reads across two HTTP store processes and merges a "distributed"
// section into BENCH_trace_overhead.json. Gated on
// NSDF_BENCH_TRACE_ITERS like the in-process emitter; with
// NSDF_BENCH_TRACE_OUT set it amends that file in place (run the idx
// emitter first — `make bench-trace` sequences both), otherwise it
// writes a throwaway temp file.
func TestBenchTraceDistributedEmit(t *testing.T) {
	iters, _ := strconv.Atoi(os.Getenv("NSDF_BENCH_TRACE_ITERS"))
	if iters <= 0 {
		t.Skip("set NSDF_BENCH_TRACE_ITERS>=1 to run the distributed trace overhead emitter")
	}
	// Each op is a full sweep over the key set; scale the raw iteration
	// count down accordingly but keep at least the smoke's single pass.
	reps := 5
	if iters == 1 {
		reps = 1 // smoke mode: just prove the harness runs
	}
	outPath := os.Getenv("NSDF_BENCH_TRACE_OUT")
	if outPath == "" {
		outPath = t.TempDir() + "/BENCH_trace_overhead.json"
	}

	// Two store processes with per-node collectors, exactly the serving
	// topology: the traced variant pays for header injection, remote
	// parent adoption, span records, and trace retention on every hop.
	newStore := func(name string) string {
		col := trace.NewCollector(8)
		col.SetNode(name)
		srv := httptest.NewServer(telemetry.WithTracing(
			storage.NewServer(storage.NewMemStore(), ""), col,
			telemetry.TracingOptions{Service: name}))
		t.Cleanup(srv.Close)
		return srv.URL
	}
	r, err := shard.NewRouter([]shard.Node{
		{Name: "store-a", Store: storage.NewClient(newStore("store-a"), "")},
		{Name: "store-b", Store: storage.NewClient(newStore("store-b"), "")},
	}, shard.Options{Replicas: 2}) // no hedging: measure the straight path
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	keys := make([]string, 8)
	payload := make([]byte, 256<<10) // a 2^16-sample float32 block, the IDX tier's unit
	for i := range keys {
		keys[i] = "bench/block-" + strconv.Itoa(i)
		if err := r.Put(ctx, keys[i], payload); err != nil {
			t.Fatal(err)
		}
	}
	sweep := func(ctx context.Context) {
		for _, k := range keys {
			if _, err := r.Get(ctx, k); err != nil {
				t.Fatal(err)
			}
		}
	}

	col := trace.NewCollector(8)
	col.SetNode("dashboard")
	untraced, traced := measureDistPair(iters, reps,
		func() { sweep(ctx) },
		func() {
			root := col.StartTrace("", "bench.sweep")
			sweep(trace.NewContext(ctx, root))
			root.End()
		})

	overheadPct := 0.0
	if untraced.NsPerOp > 0 {
		overheadPct = (traced.NsPerOp - untraced.NsPerOp) / untraced.NsPerOp * 100
	}
	dist := map[string]any{
		"description": "8-key sweep through a 2-node sharded tier over HTTP (replicas=2), with vs without an active trace: the traced run injects propagation headers and every store records + retains its spans. Regenerate with `make bench-trace`.",
		"topology":    "router -> 2 HTTP stores, 256KiB blocks, no hedging",
		"iterations":  iters,
		"gomaxprocs":  runtime.GOMAXPROCS(0),
		"sweep_untraced": distTraceSample{
			NsPerOp: untraced.NsPerOp, UsPerOp: untraced.UsPerOp,
		},
		"sweep_traced": distTraceSample{
			NsPerOp: traced.NsPerOp, UsPerOp: traced.UsPerOp,
		},
		"overhead_pct": overheadPct,
		"budget_pct":   5,
	}

	// Amend the in-process emitter's document rather than clobbering it.
	doc := map[string]any{}
	if data, err := os.ReadFile(outPath); err == nil {
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("existing %s does not parse: %v", outPath, err)
		}
	}
	doc["distributed"] = dist
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("sharded sweep untraced %.1fus, traced %.1fus: %.2f%% overhead (budget 5%%)",
		untraced.UsPerOp, traced.UsPerOp, overheadPct)
	t.Logf("wrote %s", outPath)
	if reps > 1 && overheadPct > 5 {
		t.Fatalf("distributed tracing overhead %.2f%% exceeds the 5%% budget", overheadPct)
	}
}
