package fusefs

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path"
	"sort"
	"strings"
	"time"

	"nsdfgo/internal/storage"
)

// FS is an io/fs.FS view of an object store through a mapping package.
// Directories are synthesized from path prefixes, as in S3-style stores.
// FS also offers write operations (WriteFile, Remove), which io/fs does
// not model.
type FS struct {
	store   storage.Store
	mapping Mapping
	ctx     context.Context
}

// New builds a file system over store using the given mapping. ctx bounds
// every store operation issued through the FS; pass context.Background()
// for unbounded use.
func New(ctx context.Context, store storage.Store, mapping Mapping) *FS {
	return &FS{store: store, mapping: mapping, ctx: ctx}
}

// Mapping returns the FS's mapping package.
func (f *FS) Mapping() Mapping { return f.mapping }

// WithContext returns a view of the same store and mapping whose
// operations are bounded by ctx instead of the FS's base context — the
// per-request derivation a server uses to make each client's FS calls
// cancellable with that client's request.
func (f *FS) WithContext(ctx context.Context) *FS {
	return &FS{store: f.store, mapping: f.mapping, ctx: ctx}
}

// WriteFile stores data at name.
func (f *FS) WriteFile(name string, data []byte) error {
	if !fs.ValidPath(name) || name == "." {
		return &fs.PathError{Op: "write", Path: name, Err: fs.ErrInvalid}
	}
	return f.mapping.Write(f.ctx, f.store, name, data)
}

// Remove deletes the file at name. Removing a missing file is not an
// error, matching object-store semantics.
func (f *FS) Remove(name string) error {
	if !fs.ValidPath(name) || name == "." {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrInvalid}
	}
	return f.mapping.Remove(f.ctx, f.store, name)
}

// ReadFile implements fs.ReadFileFS.
func (f *FS) ReadFile(name string) ([]byte, error) {
	if !fs.ValidPath(name) || name == "." {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrInvalid}
	}
	data, err := f.mapping.Read(f.ctx, f.store, name)
	if errors.Is(err, storage.ErrNotExist) {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return data, err
}

// Open implements fs.FS. Opening a directory yields a fs.ReadDirFile.
func (f *FS) Open(name string) (fs.File, error) {
	if !fs.ValidPath(name) {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrInvalid}
	}
	if name == "." {
		return f.openDir(".")
	}
	data, err := f.mapping.Read(f.ctx, f.store, name)
	if err == nil {
		return &memFile{name: path.Base(name), data: bytes.NewReader(data), size: int64(len(data))}, nil
	}
	if !errors.Is(err, storage.ErrNotExist) {
		return nil, &fs.PathError{Op: "open", Path: name, Err: err}
	}
	// Not a file: maybe a directory.
	if ok, derr := f.dirExists(name); derr == nil && ok {
		return f.openDir(name)
	}
	return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
}

// Stat implements fs.StatFS.
func (f *FS) Stat(name string) (fs.FileInfo, error) {
	file, err := f.Open(name)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return file.Stat()
}

// dirExists reports whether any file lives under name/.
func (f *FS) dirExists(name string) (bool, error) {
	files, err := f.mapping.Files(f.ctx, f.store, name+"/")
	if err != nil {
		return false, err
	}
	return len(files) > 0, nil
}

// ReadDir implements fs.ReadDirFS.
func (f *FS) ReadDir(name string) ([]fs.DirEntry, error) {
	if !fs.ValidPath(name) {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: fs.ErrInvalid}
	}
	prefix := ""
	if name != "." {
		prefix = name + "/"
	}
	files, err := f.mapping.Files(f.ctx, f.store, prefix)
	if err != nil {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: err}
	}
	if name != "." && len(files) == 0 {
		// Distinguish an empty prefix from a missing directory.
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: fs.ErrNotExist}
	}
	type entry struct {
		isDir bool
		size  int64
	}
	entries := map[string]entry{}
	for _, info := range files {
		rest := strings.TrimPrefix(info.Path, prefix)
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			entries[rest[:i]] = entry{isDir: true}
		} else if rest != "" {
			entries[rest] = entry{size: info.Size}
		}
	}
	names := make([]string, 0, len(entries))
	for n := range entries {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]fs.DirEntry, 0, len(names))
	for _, n := range names {
		e := entries[n]
		out = append(out, &dirEntry{name: n, isDir: e.isDir, size: e.size})
	}
	return out, nil
}

// openDir builds a fs.ReadDirFile for name.
func (f *FS) openDir(name string) (fs.File, error) {
	entries, err := f.ReadDir(name)
	if err != nil {
		return nil, err
	}
	return &dirFile{name: path.Base(name), entries: entries}, nil
}

// memFile is an opened file backed by a byte slice.
type memFile struct {
	name string
	data *bytes.Reader
	size int64
}

// Stat implements fs.File.
func (m *memFile) Stat() (fs.FileInfo, error) {
	return &fileInfo{name: m.name, size: m.size}, nil
}

// Read implements fs.File.
func (m *memFile) Read(p []byte) (int, error) { return m.data.Read(p) }

// Seek lets callers use the file with io.ReadSeeker consumers.
func (m *memFile) Seek(offset int64, whence int) (int64, error) { return m.data.Seek(offset, whence) }

// Close implements fs.File.
func (m *memFile) Close() error { return nil }

// dirFile is an opened directory.
type dirFile struct {
	name    string
	entries []fs.DirEntry
	offset  int
}

// Stat implements fs.File.
func (d *dirFile) Stat() (fs.FileInfo, error) {
	return &fileInfo{name: d.name, dir: true}, nil
}

// Read implements fs.File; directories are not readable.
func (d *dirFile) Read([]byte) (int, error) {
	return 0, &fs.PathError{Op: "read", Path: d.name, Err: fmt.Errorf("is a directory")}
}

// Close implements fs.File.
func (d *dirFile) Close() error { return nil }

// ReadDir implements fs.ReadDirFile.
func (d *dirFile) ReadDir(n int) ([]fs.DirEntry, error) {
	if n <= 0 {
		out := d.entries[d.offset:]
		d.offset = len(d.entries)
		return out, nil
	}
	if d.offset >= len(d.entries) {
		return nil, io.EOF
	}
	hi := d.offset + n
	if hi > len(d.entries) {
		hi = len(d.entries)
	}
	out := d.entries[d.offset:hi]
	d.offset = hi
	return out, nil
}

// fileInfo implements fs.FileInfo for synthesized entries.
type fileInfo struct {
	name string
	size int64
	dir  bool
}

func (i *fileInfo) Name() string { return i.name }
func (i *fileInfo) Size() int64  { return i.size }
func (i *fileInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o555
	}
	return 0o444
}
func (i *fileInfo) ModTime() time.Time { return time.Time{} }
func (i *fileInfo) IsDir() bool        { return i.dir }
func (i *fileInfo) Sys() any           { return nil }

// dirEntry implements fs.DirEntry.
type dirEntry struct {
	name  string
	isDir bool
	size  int64
}

func (e *dirEntry) Name() string { return e.name }
func (e *dirEntry) IsDir() bool  { return e.isDir }
func (e *dirEntry) Type() fs.FileMode {
	if e.isDir {
		return fs.ModeDir
	}
	return 0
}
func (e *dirEntry) Info() (fs.FileInfo, error) {
	return &fileInfo{name: e.name, size: e.size, dir: e.isDir}, nil
}
