package fusefs

import (
	"bytes"
	"context"
	"io/fs"
	"math/rand"
	"testing"
	"testing/fstest"
	"testing/quick"

	"nsdfgo/internal/storage"
)

func mappings() map[string]Mapping {
	return map[string]Mapping{
		"one-to-one": OneToOne{},
		"chunked":    Chunked{ChunkSize: 64},
		"compressed": Compressed{},
	}
}

func TestMappingRoundTrip(t *testing.T) {
	ctx := context.Background()
	payloads := map[string][]byte{
		"empty":      {},
		"small":      []byte("hello"),
		"one-chunk":  bytes.Repeat([]byte{1}, 64),
		"two-chunks": bytes.Repeat([]byte{2}, 65),
		"many":       bytes.Repeat([]byte("terrain"), 1000),
	}
	for mname, m := range mappings() {
		store := storage.NewMemStore()
		for pname, data := range payloads {
			path := "dir/" + pname + ".bin"
			if err := m.Write(ctx, store, path, data); err != nil {
				t.Fatalf("%s/%s: Write: %v", mname, pname, err)
			}
			got, err := m.Read(ctx, store, path)
			if err != nil {
				t.Fatalf("%s/%s: Read: %v", mname, pname, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("%s/%s: round trip mismatch (%d -> %d bytes)", mname, pname, len(data), len(got))
			}
		}
		files, err := m.Files(ctx, store, "dir/")
		if err != nil {
			t.Fatal(err)
		}
		if len(files) != len(payloads) {
			t.Fatalf("%s: listed %d files, want %d", mname, len(files), len(payloads))
		}
	}
}

func TestMappingRemove(t *testing.T) {
	ctx := context.Background()
	for mname, m := range mappings() {
		store := storage.NewMemStore()
		if err := m.Write(ctx, store, "f.bin", []byte("data")); err != nil {
			t.Fatal(err)
		}
		if err := m.Remove(ctx, store, "f.bin"); err != nil {
			t.Fatalf("%s: Remove: %v", mname, err)
		}
		if _, err := m.Read(ctx, store, "f.bin"); err == nil {
			t.Errorf("%s: file readable after remove", mname)
		}
		// All objects gone: no leaked chunks or manifests.
		infos, _ := store.List(ctx, "")
		if len(infos) != 0 {
			t.Errorf("%s: %d objects leaked after remove: %+v", mname, len(infos), infos)
		}
		// Removing again is fine.
		if err := m.Remove(ctx, store, "f.bin"); err != nil {
			t.Errorf("%s: double remove: %v", mname, err)
		}
	}
}

func TestChunkedSplitsObjects(t *testing.T) {
	ctx := context.Background()
	store := storage.NewMemStore()
	m := Chunked{ChunkSize: 100}
	data := make([]byte, 350)
	if err := m.Write(ctx, store, "big.bin", data); err != nil {
		t.Fatal(err)
	}
	infos, _ := store.List(ctx, "")
	// 4 chunks + 1 manifest.
	if len(infos) != 5 {
		t.Fatalf("%d objects, want 5", len(infos))
	}
}

func TestChunkedReportsLogicalSize(t *testing.T) {
	ctx := context.Background()
	store := storage.NewMemStore()
	m := Chunked{ChunkSize: 100}
	if err := m.Write(ctx, store, "f.bin", make([]byte, 250)); err != nil {
		t.Fatal(err)
	}
	files, err := m.Files(ctx, store, "")
	if err != nil || len(files) != 1 {
		t.Fatalf("Files: %+v, %v", files, err)
	}
	if files[0].Size != 250 {
		t.Errorf("Size = %d, want 250", files[0].Size)
	}
}

func TestCompressedShrinksRepetitiveData(t *testing.T) {
	ctx := context.Background()
	store := storage.NewMemStore()
	m := Compressed{}
	data := bytes.Repeat([]byte("abcdefgh"), 4096)
	if err := m.Write(ctx, store, "f.bin", data); err != nil {
		t.Fatal(err)
	}
	if stored := store.TotalBytes(); stored > int64(len(data))/4 {
		t.Errorf("stored %d bytes for %d input", stored, len(data))
	}
}

func TestFSConformance(t *testing.T) {
	// fstest.TestFS exercises Open/ReadDir/Stat semantics exhaustively.
	ctx := context.Background()
	for mname, m := range mappings() {
		fsys := New(ctx, storage.NewMemStore(), m)
		files := map[string][]byte{
			"top.txt":               []byte("top"),
			"data/elevation.tif":    bytes.Repeat([]byte{9}, 200),
			"data/slope.tif":        []byte("slope"),
			"data/deep/nested.bin":  {1, 2, 3},
			"data/deep/nested2.bin": {},
		}
		for name, data := range files {
			if err := fsys.WriteFile(name, data); err != nil {
				t.Fatalf("%s: WriteFile(%s): %v", mname, name, err)
			}
		}
		expected := make([]string, 0, len(files))
		for name := range files {
			expected = append(expected, name)
		}
		if err := fstest.TestFS(fsys, expected...); err != nil {
			t.Errorf("%s: %v", mname, err)
		}
	}
}

func TestFSReadFile(t *testing.T) {
	fsys := New(context.Background(), storage.NewMemStore(), OneToOne{})
	if err := fsys.WriteFile("a/b.txt", []byte("content")); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile(fsys, "a/b.txt")
	if err != nil || string(data) != "content" {
		t.Fatalf("ReadFile: %q, %v", data, err)
	}
	if _, err := fs.ReadFile(fsys, "missing.txt"); err == nil {
		t.Error("missing file read succeeded")
	}
}

func TestFSInvalidPaths(t *testing.T) {
	fsys := New(context.Background(), storage.NewMemStore(), OneToOne{})
	for _, bad := range []string{"/abs", "a//b", "../up", ""} {
		if err := fsys.WriteFile(bad, []byte("x")); err == nil {
			t.Errorf("WriteFile(%q) accepted", bad)
		}
		if _, err := fsys.Open(bad); err == nil {
			t.Errorf("Open(%q) accepted", bad)
		}
	}
	if err := fsys.WriteFile(".", []byte("x")); err == nil {
		t.Error("WriteFile(.) accepted")
	}
}

func TestFSRemove(t *testing.T) {
	fsys := New(context.Background(), storage.NewMemStore(), Chunked{ChunkSize: 4})
	fsys.WriteFile("f.bin", []byte("0123456789"))
	if err := fsys.Remove("f.bin"); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Open("f.bin"); err == nil {
		t.Error("removed file opens")
	}
}

func TestFSWalk(t *testing.T) {
	fsys := New(context.Background(), storage.NewMemStore(), OneToOne{})
	fsys.WriteFile("a/1.bin", []byte("1"))
	fsys.WriteFile("a/b/2.bin", []byte("2"))
	fsys.WriteFile("c/3.bin", []byte("3"))
	var visited []string
	err := fs.WalkDir(fsys, ".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			visited = append(visited, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(visited) != 3 {
		t.Errorf("walk found %v", visited)
	}
}

func TestFSGlob(t *testing.T) {
	fsys := New(context.Background(), storage.NewMemStore(), OneToOne{})
	fsys.WriteFile("data/elevation.tif", []byte("e"))
	fsys.WriteFile("data/slope.tif", []byte("s"))
	fsys.WriteFile("data/readme.md", []byte("r"))
	matches, err := fs.Glob(fsys, "data/*.tif")
	if err != nil || len(matches) != 2 {
		t.Errorf("Glob: %v, %v", matches, err)
	}
}

func TestMappingRoundTripProperty(t *testing.T) {
	ctx := context.Background()
	for mname, m := range mappings() {
		store := storage.NewMemStore()
		f := func(seed int64, n uint16) bool {
			r := rand.New(rand.NewSource(seed))
			data := make([]byte, int(n)%2000)
			r.Read(data)
			if err := m.Write(ctx, store, "prop.bin", data); err != nil {
				return false
			}
			got, err := m.Read(ctx, store, "prop.bin")
			return err == nil && bytes.Equal(got, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%s: %v", mname, err)
		}
	}
}

func BenchmarkMappingWrite1MiB(b *testing.B) {
	ctx := context.Background()
	data := make([]byte, 1<<20)
	for mname, m := range mappings() {
		b.Run(mname, func(b *testing.B) {
			store := storage.NewMemStore()
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := m.Write(ctx, store, "bench.bin", data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMappingRead1MiB(b *testing.B) {
	ctx := context.Background()
	data := make([]byte, 1<<20)
	for mname, m := range mappings() {
		b.Run(mname, func(b *testing.B) {
			store := storage.NewMemStore()
			if err := m.Write(ctx, store, "bench.bin", data); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.Read(ctx, store, "bench.bin"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
