// Package fusefs reimplements the NSDF-FUSE service (Olaya et al., HPDC
// 2022): a file-system facade over S3-compatible object storage, with
// pluggable "mapping packages" that decide how files map to objects. The
// original service mounts through the Linux kernel's FUSE layer — a
// hardware/OS gate for a portable reproduction — so this package exposes
// the same mapping logic as an in-process io/fs.FS, which exercises the
// identical name↔key and split/join code paths the NSDF-FUSE paper
// benchmarks.
//
// Three mapping packages are provided, mirroring the design space the
// paper studies:
//
//   - OneToOne: each file is one object under the same key. Minimal
//     metadata, but large files become large single PUT/GETs.
//   - Chunked: files are split into fixed-size chunk objects plus a
//     manifest, enabling ranged and parallel access patterns.
//   - Compressed: each file is one zlib-compressed object, trading CPU
//     for transfer volume.
package fusefs

import (
	"bytes"
	"compress/zlib"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"nsdfgo/internal/storage"
)

// Mapping is a strategy for representing files as objects in a Store.
type Mapping interface {
	// Name identifies the mapping package.
	Name() string
	// Write stores the file's data under path.
	Write(ctx context.Context, store storage.Store, path string, data []byte) error
	// Read fetches the file stored under path.
	Read(ctx context.Context, store storage.Store, path string) ([]byte, error)
	// Remove deletes the file stored under path.
	Remove(ctx context.Context, store storage.Store, path string) error
	// Files lists the file paths (not raw object keys) under prefix,
	// sorted.
	Files(ctx context.Context, store storage.Store, prefix string) ([]FileInfo, error)
}

// FileInfo describes one mapped file.
type FileInfo struct {
	// Path is the file's path within the FS.
	Path string
	// Size is the file's logical (uncompressed, unsplit) size when the
	// mapping can report it cheaply; -1 when unknown without a read.
	Size int64
}

// OneToOne maps each file to a single object with the identical key.
type OneToOne struct{}

// Name implements Mapping.
func (OneToOne) Name() string { return "one-to-one" }

// Write implements Mapping.
func (OneToOne) Write(ctx context.Context, store storage.Store, path string, data []byte) error {
	return store.Put(ctx, path, data)
}

// Read implements Mapping.
func (OneToOne) Read(ctx context.Context, store storage.Store, path string) ([]byte, error) {
	return store.Get(ctx, path)
}

// Remove implements Mapping.
func (OneToOne) Remove(ctx context.Context, store storage.Store, path string) error {
	return store.Delete(ctx, path)
}

// Files implements Mapping.
func (OneToOne) Files(ctx context.Context, store storage.Store, prefix string) ([]FileInfo, error) {
	infos, err := store.List(ctx, prefix)
	if err != nil {
		return nil, err
	}
	out := make([]FileInfo, 0, len(infos))
	for _, info := range infos {
		out = append(out, FileInfo{Path: info.Key, Size: info.Size})
	}
	return out, nil
}

// Chunked splits files into fixed-size chunks plus a JSON manifest. Object
// layout for file "a/b.tif" with 2 chunks:
//
//	a/b.tif.nsdfmanifest   {"size":N,"chunk_size":C,"chunks":2}
//	a/b.tif.nsdfchunk.00000000
//	a/b.tif.nsdfchunk.00000001
type Chunked struct {
	// ChunkSize is the chunk payload size; zero defaults to 1 MiB.
	ChunkSize int
}

const (
	manifestSuffix = ".nsdfmanifest"
	chunkSuffix    = ".nsdfchunk."
)

type chunkManifest struct {
	Size      int64 `json:"size"`
	ChunkSize int   `json:"chunk_size"`
	Chunks    int   `json:"chunks"`
}

// Name implements Mapping.
func (c Chunked) Name() string { return fmt.Sprintf("chunked(%d)", c.chunkSize()) }

func (c Chunked) chunkSize() int {
	if c.ChunkSize <= 0 {
		return 1 << 20
	}
	return c.ChunkSize
}

// Write implements Mapping.
func (c Chunked) Write(ctx context.Context, store storage.Store, path string, data []byte) error {
	cs := c.chunkSize()
	chunks := (len(data) + cs - 1) / cs
	if chunks == 0 {
		chunks = 1 // empty file still gets one empty chunk
	}
	for i := 0; i < chunks; i++ {
		lo := i * cs
		hi := lo + cs
		if hi > len(data) {
			hi = len(data)
		}
		if err := store.Put(ctx, fmt.Sprintf("%s%s%08d", path, chunkSuffix, i), data[lo:hi]); err != nil {
			return fmt.Errorf("fusefs: chunk %d: %w", i, err)
		}
	}
	man, err := json.Marshal(chunkManifest{Size: int64(len(data)), ChunkSize: cs, Chunks: chunks})
	if err != nil {
		return fmt.Errorf("fusefs: manifest: %w", err)
	}
	return store.Put(ctx, path+manifestSuffix, man)
}

// Read implements Mapping.
func (c Chunked) Read(ctx context.Context, store storage.Store, path string) ([]byte, error) {
	manData, err := store.Get(ctx, path+manifestSuffix)
	if err != nil {
		return nil, err
	}
	var man chunkManifest
	if err := json.Unmarshal(manData, &man); err != nil {
		return nil, fmt.Errorf("fusefs: manifest for %q: %w", path, err)
	}
	out := make([]byte, 0, man.Size)
	for i := 0; i < man.Chunks; i++ {
		chunk, err := store.Get(ctx, fmt.Sprintf("%s%s%08d", path, chunkSuffix, i))
		if err != nil {
			return nil, fmt.Errorf("fusefs: chunk %d of %q: %w", i, path, err)
		}
		out = append(out, chunk...)
	}
	if int64(len(out)) != man.Size {
		return nil, fmt.Errorf("fusefs: %q reassembled to %d bytes, manifest says %d", path, len(out), man.Size)
	}
	return out, nil
}

// Remove implements Mapping.
func (c Chunked) Remove(ctx context.Context, store storage.Store, path string) error {
	manData, err := store.Get(ctx, path+manifestSuffix)
	if errors.Is(err, storage.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var man chunkManifest
	if err := json.Unmarshal(manData, &man); err != nil {
		return fmt.Errorf("fusefs: manifest for %q: %w", path, err)
	}
	for i := 0; i < man.Chunks; i++ {
		if err := store.Delete(ctx, fmt.Sprintf("%s%s%08d", path, chunkSuffix, i)); err != nil {
			return err
		}
	}
	return store.Delete(ctx, path+manifestSuffix)
}

// Files implements Mapping.
func (c Chunked) Files(ctx context.Context, store storage.Store, prefix string) ([]FileInfo, error) {
	infos, err := store.List(ctx, prefix)
	if err != nil {
		return nil, err
	}
	var out []FileInfo
	for _, info := range infos {
		path, ok := strings.CutSuffix(info.Key, manifestSuffix)
		if !ok {
			continue
		}
		var man chunkManifest
		size := int64(-1)
		if manData, err := store.Get(ctx, info.Key); err == nil && json.Unmarshal(manData, &man) == nil {
			size = man.Size
		}
		out = append(out, FileInfo{Path: path, Size: size})
	}
	return out, nil
}

// Compressed maps each file to one zlib-compressed object under the same
// key with a ".nsdfz" suffix. The object starts with an 8-byte
// little-endian header recording the uncompressed size, so listings can
// report logical sizes without decompressing.
type Compressed struct{}

const compressedSuffix = ".nsdfz"

// Name implements Mapping.
func (Compressed) Name() string { return "compressed" }

// Write implements Mapping.
func (Compressed) Write(ctx context.Context, store storage.Store, path string, data []byte) error {
	var buf bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(data)))
	buf.Write(hdr[:])
	zw := zlib.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		return fmt.Errorf("fusefs: compress %q: %w", path, err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("fusefs: compress %q: %w", path, err)
	}
	return store.Put(ctx, path+compressedSuffix, buf.Bytes())
}

// Read implements Mapping.
func (Compressed) Read(ctx context.Context, store storage.Store, path string) ([]byte, error) {
	enc, err := store.Get(ctx, path+compressedSuffix)
	if err != nil {
		return nil, err
	}
	if len(enc) < 8 {
		return nil, fmt.Errorf("fusefs: %q: truncated compressed object", path)
	}
	size := binary.LittleEndian.Uint64(enc)
	zr, err := zlib.NewReader(bytes.NewReader(enc[8:]))
	if err != nil {
		return nil, fmt.Errorf("fusefs: decompress %q: %w", path, err)
	}
	defer zr.Close()
	data, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("fusefs: decompress %q: %w", path, err)
	}
	if uint64(len(data)) != size {
		return nil, fmt.Errorf("fusefs: %q: decompressed to %d bytes, header says %d", path, len(data), size)
	}
	return data, nil
}

// Remove implements Mapping.
func (Compressed) Remove(ctx context.Context, store storage.Store, path string) error {
	return store.Delete(ctx, path+compressedSuffix)
}

// Files implements Mapping.
func (Compressed) Files(ctx context.Context, store storage.Store, prefix string) ([]FileInfo, error) {
	infos, err := store.List(ctx, prefix)
	if err != nil {
		return nil, err
	}
	var out []FileInfo
	for _, info := range infos {
		path, ok := strings.CutSuffix(info.Key, compressedSuffix)
		if !ok {
			continue
		}
		size := int64(-1)
		// Fetch just the object to read the 8-byte header. The Store API
		// has no ranged reads; on a real S3 endpoint this would be a
		// Range: bytes=0-7 request.
		if enc, err := store.Get(ctx, info.Key); err == nil && len(enc) >= 8 {
			size = int64(binary.LittleEndian.Uint64(enc))
		}
		out = append(out, FileInfo{Path: path, Size: size})
	}
	return out, nil
}
