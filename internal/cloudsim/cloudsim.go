// Package cloudsim reimplements NSDF-Cloud (Luettgau et al., HPDC 2022:
// "NSDF-Cloud: Enabling Ad-Hoc Compute Clusters Across Academic and
// Commercial Clouds"): a single API for provisioning ad-hoc compute
// clusters across heterogeneous academic (Jetstream, Chameleon, CloudLab)
// and commercial (AWS-like) providers, running task bundles on them, and
// accounting cost.
//
// Real cloud allocations are a resource gate, so provisioning and
// execution are simulated under a virtual clock: boot times are drawn
// from seeded per-provider distributions, task bundles are scheduled with
// a longest-processing-time greedy policy over the acquired slots, and
// commercial cost accrues per node-hour. Everything is deterministic in
// the seed, so scheduling experiments are reproducible.
package cloudsim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Flavor is a VM shape offered by a provider.
type Flavor struct {
	// Name identifies the flavor (e.g. "m1.large").
	Name string
	// VCPUs is the virtual CPU count.
	VCPUs int
	// MemGB is the memory in GiB.
	MemGB int
	// PricePerHour is the cost per node-hour in USD (0 for allocations
	// on academic clouds).
	PricePerHour float64
}

// Provider is one cloud endpoint the unified API can target.
type Provider struct {
	// Name identifies the provider.
	Name string
	// Academic providers bill no money (allocation-based); commercial
	// ones accrue PricePerHour.
	Academic bool
	// Flavors lists the provisionable shapes.
	Flavors []Flavor
	// BootMean and BootJitter parameterise instance boot time.
	BootMean, BootJitter time.Duration
	// Capacity is the maximum concurrently provisioned node count.
	Capacity int
}

// Flavor returns the named flavor.
func (p *Provider) Flavor(name string) (Flavor, error) {
	for _, f := range p.Flavors {
		if f.Name == name {
			return f, nil
		}
	}
	return Flavor{}, fmt.Errorf("cloudsim: provider %s has no flavor %q", p.Name, name)
}

// DefaultProviders returns the four providers the NSDF-Cloud paper
// targets, with plausible flavor tables.
func DefaultProviders() []Provider {
	return []Provider{
		{
			Name: "jetstream", Academic: true,
			Flavors: []Flavor{
				{Name: "m1.medium", VCPUs: 6, MemGB: 16},
				{Name: "m1.large", VCPUs: 10, MemGB: 30},
			},
			BootMean: 95 * time.Second, BootJitter: 40 * time.Second, Capacity: 32,
		},
		{
			Name: "chameleon", Academic: true,
			Flavors: []Flavor{
				{Name: "compute.haswell", VCPUs: 24, MemGB: 128},
			},
			BootMean: 600 * time.Second, BootJitter: 180 * time.Second, Capacity: 12,
		},
		{
			Name: "cloudlab", Academic: true,
			Flavors: []Flavor{
				{Name: "c6525-25g", VCPUs: 16, MemGB: 128},
			},
			BootMean: 420 * time.Second, BootJitter: 150 * time.Second, Capacity: 16,
		},
		{
			Name: "aws", Academic: false,
			Flavors: []Flavor{
				{Name: "c5.2xlarge", VCPUs: 8, MemGB: 16, PricePerHour: 0.34},
				{Name: "c5.4xlarge", VCPUs: 16, MemGB: 32, PricePerHour: 0.68},
			},
			BootMean: 45 * time.Second, BootJitter: 15 * time.Second, Capacity: 64,
		},
	}
}

// Sim is the unified multi-cloud provisioning endpoint.
type Sim struct {
	mu        sync.Mutex
	providers map[string]*Provider
	order     []string
	inUse     map[string]int
	rng       *rand.Rand
	nextID    int
}

// NewSim builds a simulator over the given providers with a fixed seed.
func NewSim(providers []Provider, seed int64) (*Sim, error) {
	if len(providers) == 0 {
		return nil, fmt.Errorf("cloudsim: no providers")
	}
	s := &Sim{
		providers: make(map[string]*Provider, len(providers)),
		inUse:     make(map[string]int, len(providers)),
		rng:       rand.New(rand.NewSource(seed)),
	}
	for i := range providers {
		p := providers[i]
		if _, dup := s.providers[p.Name]; dup {
			return nil, fmt.Errorf("cloudsim: duplicate provider %q", p.Name)
		}
		if p.Capacity <= 0 || len(p.Flavors) == 0 {
			return nil, fmt.Errorf("cloudsim: provider %q has no capacity or flavors", p.Name)
		}
		s.providers[p.Name] = &p
		s.order = append(s.order, p.Name)
	}
	sort.Strings(s.order)
	return s, nil
}

// Cluster is a provisioned node group.
type Cluster struct {
	// ID identifies the cluster.
	ID string
	// Provider and Flavor describe what was provisioned.
	Provider string
	Flavor   Flavor
	// Nodes is the node count.
	Nodes int
	// BootTime is the simulated time until the slowest node was ready
	// (ad-hoc clusters are usable only when complete).
	BootTime time.Duration
	// Academic mirrors the provider's billing model.
	Academic bool

	released bool
	sim      *Sim
}

// Provision acquires n nodes of the named flavor from one provider.
func (s *Sim) Provision(provider, flavor string, n int) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cloudsim: node count %d", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.providers[provider]
	if !ok {
		return nil, fmt.Errorf("cloudsim: unknown provider %q", provider)
	}
	f, err := p.Flavor(flavor)
	if err != nil {
		return nil, err
	}
	if s.inUse[provider]+n > p.Capacity {
		return nil, fmt.Errorf("cloudsim: provider %s has %d of %d nodes free; requested %d",
			provider, p.Capacity-s.inUse[provider], p.Capacity, n)
	}
	s.inUse[provider] += n
	// Cluster readiness = slowest node boot.
	var slowest time.Duration
	for i := 0; i < n; i++ {
		boot := p.BootMean
		if p.BootJitter > 0 {
			boot += time.Duration(s.rng.Int63n(int64(p.BootJitter)))
		}
		if boot > slowest {
			slowest = boot
		}
	}
	s.nextID++
	return &Cluster{
		ID:       fmt.Sprintf("%s-%04d", provider, s.nextID),
		Provider: provider,
		Flavor:   f,
		Nodes:    n,
		BootTime: slowest,
		Academic: p.Academic,
		sim:      s,
	}, nil
}

// Release returns the cluster's nodes to the provider. Releasing twice is
// an error.
func (s *Sim) Release(c *Cluster) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.released {
		return fmt.Errorf("cloudsim: cluster %s already released", c.ID)
	}
	c.released = true
	s.inUse[c.Provider] -= c.Nodes
	return nil
}

// Available returns how many nodes a provider can still provision.
func (s *Sim) Available(provider string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.providers[provider]
	if !ok {
		return 0, fmt.Errorf("cloudsim: unknown provider %q", provider)
	}
	return p.Capacity - s.inUse[provider], nil
}

// Task is one unit of a bundle: Work is its single-core compute demand in
// core-hours.
type Task struct {
	// ID labels the task.
	ID string
	// Work is the task's demand in core-hours.
	Work float64
}

// RunReport summarises a bundle execution on a cluster.
type RunReport struct {
	// Cluster identifies where the bundle ran.
	Cluster string
	// Tasks is the bundle size.
	Tasks int
	// Slots is the parallel capacity used (nodes × vcpus).
	Slots int
	// Makespan is the simulated execution span (excluding boot).
	Makespan time.Duration
	// Elapsed includes cluster boot.
	Elapsed time.Duration
	// CostUSD is the accrued commercial cost (0 on academic clouds).
	CostUSD float64
}

// Run schedules the bundle over the cluster's slots with the greedy
// longest-processing-time heuristic and returns the simulated outcome.
func (c *Cluster) Run(tasks []Task) (RunReport, error) {
	if c.released {
		return RunReport{}, fmt.Errorf("cloudsim: cluster %s was released", c.ID)
	}
	if len(tasks) == 0 {
		return RunReport{}, fmt.Errorf("cloudsim: empty task bundle")
	}
	for _, t := range tasks {
		if t.Work < 0 {
			return RunReport{}, fmt.Errorf("cloudsim: task %s has negative work", t.ID)
		}
	}
	slots := c.Nodes * c.Flavor.VCPUs
	loads := make([]float64, slots)
	sorted := append([]Task(nil), tasks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Work > sorted[j].Work })
	for _, t := range sorted {
		// Assign to the least-loaded slot.
		best := 0
		for s := 1; s < slots; s++ {
			if loads[s] < loads[best] {
				best = s
			}
		}
		loads[best] += t.Work
	}
	var makespanHours float64
	for _, l := range loads {
		if l > makespanHours {
			makespanHours = l
		}
	}
	makespan := time.Duration(makespanHours * float64(time.Hour))
	elapsed := c.BootTime + makespan
	cost := 0.0
	if !c.Academic {
		cost = elapsed.Hours() * c.Flavor.PricePerHour * float64(c.Nodes)
	}
	return RunReport{
		Cluster:  c.ID,
		Tasks:    len(tasks),
		Slots:    slots,
		Makespan: makespan,
		Elapsed:  elapsed,
		CostUSD:  cost,
	}, nil
}

// Policy selects how AcquireBundle picks providers.
type Policy int

// Acquisition policies.
const (
	// Cheapest prefers academic (free) capacity, then the cheapest
	// commercial flavor.
	Cheapest Policy = iota
	// Fastest prefers the providers with the lowest mean boot time.
	Fastest
)

// AcquireBundle provisions a total of n nodes across providers according
// to the policy, spilling over when one provider's capacity runs out —
// the ad-hoc multi-cloud acquisition NSDF-Cloud automates. Each returned
// cluster uses the provider's first (Cheapest) or largest-vCPU (Fastest)
// flavor.
func (s *Sim) AcquireBundle(n int, policy Policy) ([]*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cloudsim: node count %d", n)
	}
	type cand struct {
		name   string
		flavor string
		key    float64
	}
	var cands []cand
	s.mu.Lock()
	for _, name := range s.order {
		p := s.providers[name]
		switch policy {
		case Cheapest:
			// Academic first (key 0), then by price.
			f := p.Flavors[0]
			key := f.PricePerHour
			if p.Academic {
				key = 0
			}
			cands = append(cands, cand{name: name, flavor: f.Name, key: key})
		case Fastest:
			// Largest flavor, ordered by boot time.
			best := p.Flavors[0]
			for _, f := range p.Flavors[1:] {
				if f.VCPUs > best.VCPUs {
					best = f
				}
			}
			cands = append(cands, cand{name: name, flavor: best.Name, key: p.BootMean.Seconds()})
		default:
			s.mu.Unlock()
			return nil, fmt.Errorf("cloudsim: unknown policy %d", policy)
		}
	}
	s.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].key != cands[j].key {
			return cands[i].key < cands[j].key
		}
		return cands[i].name < cands[j].name
	})

	var out []*Cluster
	remaining := n
	for _, c := range cands {
		if remaining == 0 {
			break
		}
		free, err := s.Available(c.name)
		if err != nil {
			return nil, err
		}
		if free == 0 {
			continue
		}
		take := remaining
		if take > free {
			take = free
		}
		cluster, err := s.Provision(c.name, c.flavor, take)
		if err != nil {
			// Roll back partial acquisitions.
			for _, done := range out {
				s.Release(done)
			}
			return nil, err
		}
		out = append(out, cluster)
		remaining -= take
	}
	if remaining > 0 {
		for _, done := range out {
			s.Release(done)
		}
		return nil, fmt.Errorf("cloudsim: only %d of %d nodes available across providers", n-remaining, n)
	}
	return out, nil
}
