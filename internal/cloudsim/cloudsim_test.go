package cloudsim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func newSim(t *testing.T) *Sim {
	t.Helper()
	s, err := NewSim(DefaultProviders(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDefaultProviders(t *testing.T) {
	ps := DefaultProviders()
	if len(ps) != 4 {
		t.Fatalf("%d providers, want 4 (NSDF-Cloud targets)", len(ps))
	}
	academic, commercial := 0, 0
	for _, p := range ps {
		if p.Academic {
			academic++
		} else {
			commercial++
		}
		if p.Capacity <= 0 || len(p.Flavors) == 0 {
			t.Errorf("%s: empty", p.Name)
		}
	}
	if academic != 3 || commercial != 1 {
		t.Errorf("academic=%d commercial=%d", academic, commercial)
	}
}

func TestNewSimValidation(t *testing.T) {
	if _, err := NewSim(nil, 1); err == nil {
		t.Error("no providers accepted")
	}
	dup := []Provider{
		{Name: "x", Capacity: 1, Flavors: []Flavor{{Name: "f", VCPUs: 1}}},
		{Name: "x", Capacity: 1, Flavors: []Flavor{{Name: "f", VCPUs: 1}}},
	}
	if _, err := NewSim(dup, 1); err == nil {
		t.Error("duplicate providers accepted")
	}
	if _, err := NewSim([]Provider{{Name: "x", Capacity: 0}}, 1); err == nil {
		t.Error("zero-capacity provider accepted")
	}
}

func TestProvisionAndRelease(t *testing.T) {
	s := newSim(t)
	c, err := s.Provision("jetstream", "m1.large", 4)
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes != 4 || c.Flavor.VCPUs != 10 || !c.Academic {
		t.Errorf("cluster %+v", c)
	}
	if c.BootTime < 95*time.Second || c.BootTime > 135*time.Second {
		t.Errorf("boot time %v outside jetstream envelope", c.BootTime)
	}
	free, _ := s.Available("jetstream")
	if free != 28 {
		t.Errorf("available = %d, want 28", free)
	}
	if err := s.Release(c); err != nil {
		t.Fatal(err)
	}
	free, _ = s.Available("jetstream")
	if free != 32 {
		t.Errorf("available after release = %d", free)
	}
	if err := s.Release(c); err == nil {
		t.Error("double release accepted")
	}
}

func TestProvisionValidation(t *testing.T) {
	s := newSim(t)
	if _, err := s.Provision("nimbus", "x", 1); err == nil {
		t.Error("unknown provider accepted")
	}
	if _, err := s.Provision("aws", "t2.nano", 1); err == nil {
		t.Error("unknown flavor accepted")
	}
	if _, err := s.Provision("aws", "c5.2xlarge", 0); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := s.Provision("chameleon", "compute.haswell", 13); err == nil {
		t.Error("over-capacity request accepted")
	}
}

func TestCapacityEnforcedAcrossClusters(t *testing.T) {
	s := newSim(t)
	if _, err := s.Provision("chameleon", "compute.haswell", 8); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Provision("chameleon", "compute.haswell", 8); err == nil {
		t.Error("second allocation exceeded capacity")
	}
	if _, err := s.Provision("chameleon", "compute.haswell", 4); err != nil {
		t.Errorf("within-capacity allocation rejected: %v", err)
	}
}

func TestBootDeterministicBySeed(t *testing.T) {
	s1, _ := NewSim(DefaultProviders(), 7)
	s2, _ := NewSim(DefaultProviders(), 7)
	c1, _ := s1.Provision("aws", "c5.2xlarge", 3)
	c2, _ := s2.Provision("aws", "c5.2xlarge", 3)
	if c1.BootTime != c2.BootTime {
		t.Errorf("same seed boot times differ: %v vs %v", c1.BootTime, c2.BootTime)
	}
}

func TestRunBundle(t *testing.T) {
	s := newSim(t)
	c, err := s.Provision("aws", "c5.2xlarge", 2) // 16 slots
	if err != nil {
		t.Fatal(err)
	}
	tasks := make([]Task, 32)
	for i := range tasks {
		tasks[i] = Task{ID: fmt.Sprintf("t%d", i), Work: 0.5} // 16 core-hours total
	}
	rep, err := c.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Slots != 16 || rep.Tasks != 32 {
		t.Errorf("report %+v", rep)
	}
	// 32 equal tasks over 16 slots: exactly 2 rounds of 0.5h = 1h makespan.
	if rep.Makespan != time.Hour {
		t.Errorf("makespan = %v, want 1h", rep.Makespan)
	}
	// Commercial cost: elapsed ≈ 1h + boot, 2 nodes at $0.34/h.
	wantMin := 1.0 * 0.34 * 2
	if rep.CostUSD < wantMin || rep.CostUSD > wantMin*1.1 {
		t.Errorf("cost = %v, want ~%v", rep.CostUSD, wantMin)
	}
}

func TestRunOnAcademicIsFree(t *testing.T) {
	s := newSim(t)
	c, _ := s.Provision("cloudlab", "c6525-25g", 2)
	rep, err := c.Run([]Task{{ID: "t", Work: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CostUSD != 0 {
		t.Errorf("academic cost = %v", rep.CostUSD)
	}
}

func TestRunValidation(t *testing.T) {
	s := newSim(t)
	c, _ := s.Provision("aws", "c5.2xlarge", 1)
	if _, err := c.Run(nil); err == nil {
		t.Error("empty bundle accepted")
	}
	if _, err := c.Run([]Task{{Work: -1}}); err == nil {
		t.Error("negative work accepted")
	}
	s.Release(c)
	if _, err := c.Run([]Task{{Work: 1}}); err == nil {
		t.Error("run on released cluster accepted")
	}
}

func TestLPTMakespanNeverBelowBounds(t *testing.T) {
	// Property: makespan >= total/slots and >= max task; LPT guarantees
	// <= (4/3) * optimal, so also <= total/slots + max task.
	s := newSim(t)
	c, _ := s.Provision("aws", "c5.4xlarge", 1) // 16 slots
	f := func(seed int64) bool {
		rng := newRand(seed)
		n := rng.Intn(40) + 1
		tasks := make([]Task, n)
		total := 0.0
		maxW := 0.0
		for i := range tasks {
			w := rng.Float64() * 2
			tasks[i] = Task{ID: fmt.Sprintf("t%d", i), Work: w}
			total += w
			if w > maxW {
				maxW = w
			}
		}
		rep, err := c.Run(tasks)
		if err != nil {
			return false
		}
		hours := rep.Makespan.Hours()
		lower := total / float64(rep.Slots)
		if hours < lower-1e-9 || hours < maxW-1e-9 {
			return false
		}
		return hours <= lower+maxW+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMoreNodesShrinkMakespan(t *testing.T) {
	s := newSim(t)
	tasks := make([]Task, 64)
	for i := range tasks {
		tasks[i] = Task{ID: fmt.Sprintf("t%d", i), Work: 0.25}
	}
	small, _ := s.Provision("aws", "c5.2xlarge", 1)
	big, _ := s.Provision("aws", "c5.2xlarge", 4)
	repS, _ := small.Run(tasks)
	repB, _ := big.Run(tasks)
	if repB.Makespan >= repS.Makespan {
		t.Errorf("4 nodes (%v) not faster than 1 (%v)", repB.Makespan, repS.Makespan)
	}
}

func TestAcquireBundleCheapestPrefersAcademic(t *testing.T) {
	s := newSim(t)
	clusters, err := s.AcquireBundle(20, Cheapest)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range clusters {
		total += c.Nodes
		if !c.Academic {
			t.Errorf("cheapest policy provisioned commercial %s while academic capacity remained", c.Provider)
		}
	}
	if total != 20 {
		t.Errorf("acquired %d nodes", total)
	}
}

func TestAcquireBundleSpillsToCommercial(t *testing.T) {
	s := newSim(t)
	// Academic total capacity = 32+12+16 = 60; ask for 70.
	clusters, err := s.AcquireBundle(70, Cheapest)
	if err != nil {
		t.Fatal(err)
	}
	sawCommercial := false
	total := 0
	for _, c := range clusters {
		total += c.Nodes
		if !c.Academic {
			sawCommercial = true
		}
	}
	if total != 70 || !sawCommercial {
		t.Errorf("total=%d commercial=%v", total, sawCommercial)
	}
}

func TestAcquireBundleFastestPrefersQuickBoot(t *testing.T) {
	s := newSim(t)
	clusters, err := s.AcquireBundle(10, Fastest)
	if err != nil {
		t.Fatal(err)
	}
	if clusters[0].Provider != "aws" {
		t.Errorf("fastest policy started with %s; aws boots quickest", clusters[0].Provider)
	}
}

func TestAcquireBundleTooLargeRollsBack(t *testing.T) {
	s := newSim(t)
	if _, err := s.AcquireBundle(1000, Cheapest); err == nil {
		t.Fatal("impossible acquisition succeeded")
	}
	// All capacity must have been rolled back.
	for _, p := range []string{"jetstream", "chameleon", "cloudlab", "aws"} {
		free, _ := s.Available(p)
		var capacity int
		for _, dp := range DefaultProviders() {
			if dp.Name == p {
				capacity = dp.Capacity
			}
		}
		if free != capacity {
			t.Errorf("%s: %d of %d free after rollback", p, free, capacity)
		}
	}
}

// newRand isolates the rand import for the property test.
func newRand(seed int64) *randSource {
	return &randSource{state: uint64(seed)*2862933555777941757 + 3037000493}
}

type randSource struct{ state uint64 }

func (r *randSource) next() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state
}

func (r *randSource) Intn(n int) int { return int(r.next()>>33) % n }

func (r *randSource) Float64() float64 { return float64(r.next()>>11) / float64(1<<53) }

func BenchmarkProvisionRelease(b *testing.B) {
	s, _ := NewSim(DefaultProviders(), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := s.Provision("aws", "c5.2xlarge", 4)
		if err != nil {
			b.Fatal(err)
		}
		s.Release(c)
	}
}

func BenchmarkRunBundle1000(b *testing.B) {
	s, _ := NewSim(DefaultProviders(), 1)
	c, _ := s.Provision("aws", "c5.4xlarge", 8)
	tasks := make([]Task, 1000)
	for i := range tasks {
		tasks[i] = Task{ID: fmt.Sprintf("t%d", i), Work: float64(i%7) * 0.1}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(tasks); err != nil {
			b.Fatal(err)
		}
	}
}
