package survey

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// ParseResponsesCSV ingests a survey export in the common one-row-per-
// respondent layout: a header row naming the questions (matched against
// qs by ID, e.g. "a" or "Q-a", or by exact text), then one Likert answer
// per cell. Answers may be the level labels ("Strongly agree", case- and
// whitespace-insensitive) or the numeric codes 1..5. Empty cells are
// skipped (partial responses are kept).
//
// This is the ingestion path a real tutorial session uses: export the
// response sheet, feed it here, render Fig. 8 from the distributions.
func ParseResponsesCSV(r io.Reader, qs []Question) ([]Distribution, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // ragged rows tolerated; validated below
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("survey: csv header: %w", err)
	}
	// Map CSV columns to question indices.
	colToQ := make([]int, len(header))
	for i := range colToQ {
		colToQ[i] = -1
	}
	matched := 0
	for col, name := range header {
		key := strings.TrimSpace(name)
		for qi, q := range qs {
			if matchesQuestion(key, q) {
				colToQ[col] = qi
				matched++
				break
			}
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("survey: no CSV columns match the %d questions", len(qs))
	}

	dists := make([]Distribution, len(qs))
	for qi, q := range qs {
		dists[qi].Question = q
	}
	row := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("survey: csv row %d: %w", row+1, err)
		}
		row++
		for col, cell := range rec {
			if col >= len(colToQ) || colToQ[col] < 0 {
				continue
			}
			cell = strings.TrimSpace(cell)
			if cell == "" {
				continue
			}
			level, err := ParseLevel(cell)
			if err != nil {
				return nil, fmt.Errorf("survey: csv row %d column %q: %w", row, header[col], err)
			}
			dists[colToQ[col]].Counts[level]++
		}
	}
	return dists, nil
}

// matchesQuestion reports whether a CSV header cell refers to q: by ID
// ("a"), by a conventional prefix ("Q-a", "q_a", "(a)"), or by the full
// statement text.
func matchesQuestion(header string, q Question) bool {
	h := strings.ToLower(strings.TrimSpace(header))
	id := strings.ToLower(q.ID)
	switch h {
	case id, "q-" + id, "q_" + id, "q" + id, "(" + id + ")":
		return true
	}
	return strings.EqualFold(strings.TrimSpace(header), q.Text)
}

// ParseLevel converts a CSV cell to a Likert level: the label ("Agree"),
// a compact form ("strongly_agree"), or the numeric code 1..5.
func ParseLevel(s string) (Level, error) {
	t := strings.ToLower(strings.TrimSpace(s))
	t = strings.NewReplacer("_", " ", "-", " ").Replace(t)
	switch t {
	case "1", "strongly disagree":
		return StronglyDisagree, nil
	case "2", "disagree":
		return Disagree, nil
	case "3", "neutral", "neither agree nor disagree":
		return Neutral, nil
	case "4", "agree":
		return Agree, nil
	case "5", "strongly agree":
		return StronglyAgree, nil
	}
	return 0, fmt.Errorf("survey: unrecognised response %q", s)
}

// RenderAllCharts renders every distribution, Fig. 8 style.
func RenderAllCharts(dists []Distribution, width int) string {
	var sb strings.Builder
	for i := range dists {
		sb.WriteString(RenderChart(&dists[i], width))
	}
	return sb.String()
}
