// Package survey models the evaluation instruments of the NSDF tutorial
// paper: the participant roster across the four delivery venues (Table I)
// and the Likert-scale exit survey whose distributions appear in Fig. 8.
// The roster encodes the published counts verbatim; the survey responses
// are synthesised from a seeded generator calibrated to the paper's
// qualitative summary ("the feedback from the tutorial sessions was
// overwhelmingly positive"), so the harness can regenerate the table and
// charts deterministically.
package survey

import (
	"fmt"
	"math/rand"
	"strings"
)

// Session is one delivery of the tutorial (a row of Table I).
type Session struct {
	// Venue names where the tutorial ran.
	Venue string
	// Modality is "In-person" or "Virtual".
	Modality string
	// Audience describes the participant background.
	Audience string
	// Participants is the attendee count.
	Participants int
}

// PaperSessions returns the four sessions of Table I with the published
// participant counts (total 108).
func PaperSessions() []Session {
	return []Session{
		{Venue: "National Science Data Fabric All Hands Meeting, San Diego Supercomputer Center", Modality: "In-person", Audience: "Computer science experts", Participants: 25},
		{Venue: "Research group, University of Delaware", Modality: "Virtual", Audience: "Domain science experts", Participants: 15},
		{Venue: "National Science Data Fabric Webinar", Modality: "Virtual", Audience: "General public", Participants: 36},
		{Venue: "Class at the University of Tennessee Knoxville (undergraduate and graduate students)", Modality: "In-person", Audience: "Undergraduate and graduate students", Participants: 32},
	}
}

// Total sums participants across sessions.
func Total(sessions []Session) int {
	total := 0
	for _, s := range sessions {
		total += s.Participants
	}
	return total
}

// RenderTable formats sessions as the fixed-width Table I used by the
// experiment harness.
func RenderTable(sessions []Session) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-88s | %-9s | %-35s | %s\n", "Tutorial", "Modality", "Audience", "Participants")
	sb.WriteString(strings.Repeat("-", 160) + "\n")
	for _, s := range sessions {
		fmt.Fprintf(&sb, "%-88s | %-9s | %-35s | %d\n", s.Venue, s.Modality, s.Audience, s.Participants)
	}
	fmt.Fprintf(&sb, "%-88s | %-9s | %-35s | %d\n", "Total Participants", "", "", Total(sessions))
	return sb.String()
}

// Level is a 5-point Likert response.
type Level int

// Likert levels, ordered from most negative to most positive.
const (
	StronglyDisagree Level = iota
	Disagree
	Neutral
	Agree
	StronglyAgree
	numLevels
)

// String returns the level's survey label.
func (l Level) String() string {
	switch l {
	case StronglyDisagree:
		return "Strongly disagree"
	case Disagree:
		return "Disagree"
	case Neutral:
		return "Neutral"
	case Agree:
		return "Agree"
	case StronglyAgree:
		return "Strongly agree"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// Question is one survey item of Fig. 8.
type Question struct {
	// ID is the subfigure label ("a".."d").
	ID string
	// Text is the statement participants rated.
	Text string
	// Category groups the question ("user experience" or
	// "technology exposure").
	Category string
}

// Fig8Questions returns the four survey statements charted in Fig. 8.
func Fig8Questions() []Question {
	return []Question{
		{ID: "a", Text: "The study case demonstrated the visualization and analysis capabilities of NSDF.", Category: "technology exposure"},
		{ID: "b", Text: "The tutorial methodology can be generalized for other datasets and study cases.", Category: "technology exposure"},
		{ID: "c", Text: "The dashboard enabled meaningful visualization and analysis.", Category: "technology exposure"},
		{ID: "d", Text: "The workflow was easy to follow and understand.", Category: "user experience"},
	}
}

// Distribution is the response histogram of one question.
type Distribution struct {
	// Question is the rated statement.
	Question Question
	// Counts holds responses per level, indexed by Level.
	Counts [int(numLevels)]int
}

// N returns the respondent count.
func (d *Distribution) N() int {
	total := 0
	for _, c := range d.Counts {
		total += c
	}
	return total
}

// MeanScore returns the mean response on the 1..5 scale.
func (d *Distribution) MeanScore() float64 {
	n := d.N()
	if n == 0 {
		return 0
	}
	sum := 0
	for l, c := range d.Counts {
		sum += (l + 1) * c
	}
	return float64(sum) / float64(n)
}

// PercentPositive returns the fraction of Agree/StronglyAgree responses.
func (d *Distribution) PercentPositive() float64 {
	n := d.N()
	if n == 0 {
		return 0
	}
	return float64(d.Counts[Agree]+d.Counts[StronglyAgree]) / float64(n)
}

// Add records one response.
func (d *Distribution) Add(l Level) error {
	if l < 0 || l >= numLevels {
		return fmt.Errorf("survey: invalid level %d", int(l))
	}
	d.Counts[l]++
	return nil
}

// SynthesizeResponses generates the Fig. 8 response distributions for n
// respondents under the paper's qualitative calibration: responses are
// drawn with ~60% strongly agree, ~30% agree, ~7% neutral, ~3% negative.
// The draw is deterministic in seed.
func SynthesizeResponses(questions []Question, n int, seed int64) []Distribution {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Distribution, len(questions))
	for qi, q := range questions {
		out[qi].Question = q
		for i := 0; i < n; i++ {
			r := rng.Float64()
			var l Level
			switch {
			case r < 0.60:
				l = StronglyAgree
			case r < 0.90:
				l = Agree
			case r < 0.97:
				l = Neutral
			case r < 0.99:
				l = Disagree
			default:
				l = StronglyDisagree
			}
			out[qi].Counts[l]++
		}
	}
	return out
}

// RenderChart draws one distribution as a horizontal ASCII bar chart, the
// text analogue of a Fig. 8 panel. width sets the maximum bar length.
func RenderChart(d *Distribution, width int) string {
	if width <= 0 {
		width = 40
	}
	maxCount := 0
	for _, c := range d.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "(%s) %s  [n=%d, mean=%.2f, positive=%.0f%%]\n",
		d.Question.ID, d.Question.Text, d.N(), d.MeanScore(), 100*d.PercentPositive())
	for l := int(numLevels) - 1; l >= 0; l-- {
		bar := 0
		if maxCount > 0 {
			bar = d.Counts[l] * width / maxCount
		}
		fmt.Fprintf(&sb, "  %-18s |%s %d\n", Level(l).String(), strings.Repeat("#", bar), d.Counts[l])
	}
	return sb.String()
}
