package survey

import (
	"strings"
	"testing"
)

func TestPaperSessionsMatchTableI(t *testing.T) {
	sessions := PaperSessions()
	if len(sessions) != 4 {
		t.Fatalf("%d sessions, want 4", len(sessions))
	}
	wantCounts := []int{25, 15, 36, 32}
	for i, s := range sessions {
		if s.Participants != wantCounts[i] {
			t.Errorf("session %d: %d participants, want %d", i, s.Participants, wantCounts[i])
		}
	}
	if Total(sessions) != 108 {
		t.Errorf("total = %d, want 108 (Table I)", Total(sessions))
	}
}

func TestPaperSessionsModalities(t *testing.T) {
	inPerson, virtual := 0, 0
	for _, s := range PaperSessions() {
		switch s.Modality {
		case "In-person":
			inPerson++
		case "Virtual":
			virtual++
		default:
			t.Errorf("unknown modality %q", s.Modality)
		}
	}
	if inPerson != 2 || virtual != 2 {
		t.Errorf("modalities %d/%d, want 2/2", inPerson, virtual)
	}
}

func TestRenderTable(t *testing.T) {
	out := RenderTable(PaperSessions())
	for _, want := range []string{
		"San Diego Supercomputer Center", "University of Delaware", "Webinar",
		"University of Tennessee Knoxville", "Total Participants", "108",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 7 {
		t.Errorf("table has %d lines, want 7", len(lines))
	}
}

func TestLevelString(t *testing.T) {
	cases := map[Level]string{
		StronglyDisagree: "Strongly disagree",
		Neutral:          "Neutral",
		StronglyAgree:    "Strongly agree",
	}
	for l, want := range cases {
		if l.String() != want {
			t.Errorf("%d: %q", int(l), l.String())
		}
	}
}

func TestFig8QuestionsCoverBothCategories(t *testing.T) {
	qs := Fig8Questions()
	if len(qs) != 4 {
		t.Fatalf("%d questions, want 4", len(qs))
	}
	cats := map[string]int{}
	ids := map[string]bool{}
	for _, q := range qs {
		cats[q.Category]++
		if ids[q.ID] {
			t.Errorf("duplicate question id %s", q.ID)
		}
		ids[q.ID] = true
	}
	if cats["user experience"] == 0 || cats["technology exposure"] == 0 {
		t.Errorf("categories %v", cats)
	}
}

func TestDistributionMath(t *testing.T) {
	var d Distribution
	d.Counts = [5]int{1, 1, 2, 3, 3} // n=10
	if d.N() != 10 {
		t.Errorf("N = %d", d.N())
	}
	// mean = (1*1+2*1+3*2+4*3+5*3)/10 = (1+2+6+12+15)/10 = 3.6
	if got := d.MeanScore(); got != 3.6 {
		t.Errorf("mean = %v", got)
	}
	if got := d.PercentPositive(); got != 0.6 {
		t.Errorf("positive = %v", got)
	}
}

func TestDistributionEmpty(t *testing.T) {
	var d Distribution
	if d.MeanScore() != 0 || d.PercentPositive() != 0 || d.N() != 0 {
		t.Error("empty distribution not all-zero")
	}
}

func TestDistributionAdd(t *testing.T) {
	var d Distribution
	if err := d.Add(Agree); err != nil {
		t.Fatal(err)
	}
	if d.Counts[Agree] != 1 {
		t.Error("Add did not count")
	}
	if err := d.Add(Level(9)); err == nil {
		t.Error("invalid level accepted")
	}
}

func TestSynthesizeResponsesDeterministicAndPositive(t *testing.T) {
	qs := Fig8Questions()
	a := SynthesizeResponses(qs, 108, 7)
	b := SynthesizeResponses(qs, 108, 7)
	for i := range a {
		if a[i].Counts != b[i].Counts {
			t.Errorf("question %s: same-seed distributions differ", a[i].Question.ID)
		}
		if a[i].N() != 108 {
			t.Errorf("question %s: n = %d", a[i].Question.ID, a[i].N())
		}
		// "Overwhelmingly positive": >= 75% positive with this calibration.
		if a[i].PercentPositive() < 0.75 {
			t.Errorf("question %s: positive = %v", a[i].Question.ID, a[i].PercentPositive())
		}
		if a[i].MeanScore() < 4.0 {
			t.Errorf("question %s: mean = %v", a[i].Question.ID, a[i].MeanScore())
		}
	}
	c := SynthesizeResponses(qs, 108, 8)
	same := true
	for i := range a {
		if a[i].Counts != c[i].Counts {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical distributions")
	}
}

func TestRenderChart(t *testing.T) {
	d := SynthesizeResponses(Fig8Questions()[:1], 50, 1)[0]
	out := RenderChart(&d, 30)
	for _, want := range []string{"(a)", "Strongly agree", "Strongly disagree", "n=50"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Split(strings.TrimSpace(out), "\n"); len(lines) != 6 {
		t.Errorf("chart has %d lines, want 6", len(lines))
	}
	// Bars scale: the longest bar equals the requested width.
	if !strings.Contains(out, strings.Repeat("#", 30)) {
		t.Error("no full-width bar for the modal level")
	}
}

func TestRenderChartZeroWidthDefaults(t *testing.T) {
	var d Distribution
	d.Question = Fig8Questions()[0]
	d.Counts[Agree] = 1
	if out := RenderChart(&d, 0); !strings.Contains(out, "#") {
		t.Error("default width chart empty")
	}
}
