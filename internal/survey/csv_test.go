package survey

import (
	"strings"
	"testing"
)

const sampleCSV = `respondent,Q-a,Q-b,Q-c,Q-d
r1,Strongly agree,Agree,5,4
r2,agree,Agree,Neutral,Strongly agree
r3,STRONGLY AGREE,strongly_agree,4,
r4,2,Neutral,Strongly disagree,5
`

func TestParseResponsesCSV(t *testing.T) {
	dists, err := ParseResponsesCSV(strings.NewReader(sampleCSV), Fig8Questions())
	if err != nil {
		t.Fatal(err)
	}
	if len(dists) != 4 {
		t.Fatalf("%d distributions", len(dists))
	}
	a := dists[0] // Q-a: SA, A, SA, D
	if a.Counts[StronglyAgree] != 2 || a.Counts[Agree] != 1 || a.Counts[Disagree] != 1 {
		t.Errorf("Q-a counts %v", a.Counts)
	}
	if a.N() != 4 {
		t.Errorf("Q-a n=%d", a.N())
	}
	d := dists[3] // Q-d: 4, SA, <empty>, 5
	if d.N() != 3 {
		t.Errorf("Q-d n=%d (empty cell must be skipped)", d.N())
	}
	if d.Counts[StronglyAgree] != 2 || d.Counts[Agree] != 1 {
		t.Errorf("Q-d counts %v", d.Counts)
	}
}

func TestParseResponsesCSVByFullText(t *testing.T) {
	qs := Fig8Questions()
	csvData := "\"" + qs[0].Text + "\"\nAgree\nNeutral\n"
	dists, err := ParseResponsesCSV(strings.NewReader(csvData), qs)
	if err != nil {
		t.Fatal(err)
	}
	if dists[0].N() != 2 {
		t.Errorf("n=%d", dists[0].N())
	}
}

func TestParseResponsesCSVErrors(t *testing.T) {
	qs := Fig8Questions()
	cases := map[string]string{
		"no header match": "who,what\nx,y\n",
		"bad level":       "Q-a\nmaybe\n",
		"empty":           "",
	}
	for name, data := range cases {
		if _, err := ParseResponsesCSV(strings.NewReader(data), qs); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"1": StronglyDisagree, "5": StronglyAgree,
		"Strongly Agree": StronglyAgree, "strongly_agree": StronglyAgree,
		" neutral ": Neutral, "neither agree nor disagree": Neutral,
		"strongly-disagree": StronglyDisagree,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "6", "0", "yes"} {
		if _, err := ParseLevel(bad); err == nil {
			t.Errorf("ParseLevel(%q) accepted", bad)
		}
	}
}

func TestCSVRoundTripThroughCharts(t *testing.T) {
	dists, err := ParseResponsesCSV(strings.NewReader(sampleCSV), Fig8Questions())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderAllCharts(dists, 20)
	for _, want := range []string{"(a)", "(b)", "(c)", "(d)"} {
		if !strings.Contains(out, want) {
			t.Errorf("charts missing %s", want)
		}
	}
}
