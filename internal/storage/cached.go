package storage

import (
	"context"

	"nsdfgo/internal/cache"
)

// Cached wraps a Store with a read-through cache.Tiered: Get misses fall
// through to the inner store with concurrent fetches for the same key
// coalesced onto one flight, and writes (Put/Delete) invalidate the
// cached entry so readers never see stale payloads. Because the Store
// contract hands ownership of returned slices to the caller, Get copies
// the cached block's payload out; the zero-copy fast path is reserved for
// the idx read pipeline, which consumes cache.Blocks directly.
//
// Layer it between the instrumentation and the backend so cache hits skip
// the (possibly remote, retried, WAN-conditioned) inner store entirely:
//
//	store := storage.NewInstrumented(storage.NewCached(inner, tiered), reg, "seal")
type Cached struct {
	inner Store
	cache *cache.Tiered
}

// NewCached wraps inner with the given tiered cache.
func NewCached(inner Store, c *cache.Tiered) *Cached {
	return &Cached{inner: inner, cache: c}
}

// Get implements Store. Errors (including ErrNotExist) are never cached:
// the next Get for the key retries the inner store.
func (c *Cached) Get(ctx context.Context, key string) ([]byte, error) {
	blk, _, err := c.cache.GetOrFill(ctx, key, func(ctx context.Context) ([]byte, error) {
		return c.inner.Get(ctx, key)
	})
	if err != nil {
		return nil, err
	}
	out := make([]byte, blk.Len())
	copy(out, blk.Bytes())
	blk.Release()
	return out, nil
}

// Put implements Store, invalidating any cached payload for key.
func (c *Cached) Put(ctx context.Context, key string, data []byte) error {
	if err := c.inner.Put(ctx, key, data); err != nil {
		return err
	}
	c.cache.Remove(key)
	return nil
}

// Delete implements Store, invalidating any cached payload for key.
func (c *Cached) Delete(ctx context.Context, key string) error {
	if err := c.inner.Delete(ctx, key); err != nil {
		return err
	}
	c.cache.Remove(key)
	return nil
}

// Stat implements Store; metadata probes pass through uncached.
func (c *Cached) Stat(ctx context.Context, key string) (ObjectInfo, error) {
	return c.inner.Stat(ctx, key)
}

// List implements Store; listings pass through uncached.
func (c *Cached) List(ctx context.Context, prefix string) ([]ObjectInfo, error) {
	return c.inner.List(ctx, prefix)
}
