package storage

import (
	"context"
	"testing"
	"time"
)

// TestConditionedTailDistribution pins the heavy-tail latency model:
// spikes fire at roughly TailProb, spiked draws carry the full TailSpike
// on top of the base delay, and non-spiked draws stay inside
// [RTT, RTT+Jitter]. The rng is seeded, so the assertions are tight
// ranges rather than exact counts to stay robust across rand versions.
func TestConditionedTailDistribution(t *testing.T) {
	profile := NetworkProfile{
		RTT:       1 * time.Millisecond,
		Jitter:    200 * time.Microsecond,
		TailProb:  0.02,
		TailSpike: 20 * time.Millisecond,
	}
	c := NewConditioned(NewMemStore(), profile, 42)

	const n = 100000
	spikeFloor := profile.RTT + profile.TailSpike
	baseCeil := profile.RTT + profile.Jitter
	spikes := 0
	for i := 0; i < n; i++ {
		d := c.sampleDelay(0)
		switch {
		case d >= spikeFloor:
			spikes++
			if d > spikeFloor+profile.Jitter {
				t.Fatalf("spiked delay %v above RTT+Jitter+TailSpike %v", d, spikeFloor+profile.Jitter)
			}
		case d >= profile.RTT && d <= baseCeil:
			// normal draw
		default:
			t.Fatalf("delay %v outside both the base band [%v,%v] and the spike band [%v,...]",
				d, profile.RTT, baseCeil, spikeFloor)
		}
	}
	got := float64(spikes) / n
	if got < 0.015 || got > 0.025 {
		t.Fatalf("spike frequency %.4f, want within [0.015, 0.025] of TailProb %.3f", got, profile.TailProb)
	}
}

// TestConditionedTailDisabled verifies a zero TailProb (every pre-existing
// profile) never spikes: the delay stays within the jitter band.
func TestConditionedTailDisabled(t *testing.T) {
	profile := NetworkProfile{RTT: time.Millisecond, Jitter: 100 * time.Microsecond}
	c := NewConditioned(NewMemStore(), profile, 7)
	for i := 0; i < 10000; i++ {
		if d := c.sampleDelay(0); d < profile.RTT || d > profile.RTT+profile.Jitter {
			t.Fatalf("delay %v escaped [RTT, RTT+Jitter] with no tail configured", d)
		}
	}
}

// TestConditionedTailAddsToTransfer checks the spike rides on top of the
// bandwidth term rather than replacing it, so large payloads keep their
// transfer cost even on spiked operations.
func TestConditionedTailAddsToTransfer(t *testing.T) {
	profile := NetworkProfile{
		RTT:          time.Millisecond,
		BandwidthBps: 1 << 20, // 1 MiB/s: 64KiB costs 62.5ms
		TailProb:     1,       // every draw spikes
		TailSpike:    20 * time.Millisecond,
	}
	c := NewConditioned(NewMemStore(), profile, 1)
	payload := 64 << 10
	transfer := time.Duration(float64(payload) / float64(profile.BandwidthBps) * float64(time.Second))
	want := profile.RTT + profile.TailSpike + transfer
	if d := c.sampleDelay(payload); d != want {
		t.Fatalf("spiked delay with payload = %v, want RTT+TailSpike+transfer = %v", d, want)
	}
}

// TestConditionedTailOps exercises the full op path under a scaled-down
// tail profile so the spike branch runs inside delay(), not just in
// sampleDelay.
func TestConditionedTailOps(t *testing.T) {
	profile := NetworkProfile{RTT: 10 * time.Microsecond, TailProb: 0.5, TailSpike: 50 * time.Microsecond}
	c := NewConditioned(NewMemStore(), profile, 3)
	ctx := context.Background()
	if err := c.Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.Get(ctx, "k"); err != nil {
			t.Fatal(err)
		}
	}
	if s := c.Stats(); s.TotalWait < 20*profile.RTT {
		t.Fatalf("TotalWait %v implausibly small for 21 conditioned ops", s.TotalWait)
	}
}
