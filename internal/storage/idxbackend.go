package storage

import (
	"context"
	"errors"
	"strings"

	"nsdfgo/internal/idx"
)

// IDXBackend adapts a Store to the idx.Backend interface, optionally
// rooting the dataset at a key prefix so many datasets can share one
// store (e.g. "datasets/tennessee_30m/"). This is how the conversion and
// dashboard services place IDX data on Seal Storage or Dataverse-backed
// object stores.
type IDXBackend struct {
	store  Store
	prefix string
}

// NewIDXBackend roots an idx backend at prefix within store. A non-empty
// prefix is normalised to end with "/".
func NewIDXBackend(store Store, prefix string) *IDXBackend {
	if prefix != "" && !strings.HasSuffix(prefix, "/") {
		prefix += "/"
	}
	return &IDXBackend{store: store, prefix: prefix}
}

// Get implements idx.Backend: the caller's context reaches the store
// unmodified, so a cancelled dashboard request aborts the wide-area
// fetch instead of letting it run to completion against a hung link.
func (b *IDXBackend) Get(ctx context.Context, name string) ([]byte, error) {
	data, err := b.store.Get(ctx, b.prefix+name)
	if errors.Is(err, ErrNotExist) {
		return nil, &idx.NotExistError{Name: name}
	}
	return data, err
}

// Put implements idx.Backend.
func (b *IDXBackend) Put(ctx context.Context, name string, data []byte) error {
	return b.store.Put(ctx, b.prefix+name, data)
}

// Delete implements idx.Deleter, letting idx.Create clear stale blocks
// on store-backed datasets.
func (b *IDXBackend) Delete(ctx context.Context, name string) error {
	return b.store.Delete(ctx, b.prefix+name)
}

// List implements idx.Backend.
func (b *IDXBackend) List(ctx context.Context, prefix string) ([]string, error) {
	infos, err := b.store.List(ctx, b.prefix+prefix)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(infos))
	for _, info := range infos {
		names = append(names, strings.TrimPrefix(info.Key, b.prefix))
	}
	return names, nil
}
