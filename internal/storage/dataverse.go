package storage

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Dataverse models the public research-data repository the tutorial's
// step 1 pulls from ("data is accessed from Dataverse public commons,
// which provides a secure and accessible environment for sharing
// scientific information publicly"): datasets carry citation metadata and
// a DOI-like persistent identifier, files live in a draft version until
// published, and published versions are immutable and anonymously
// readable.
type Dataverse struct {
	store Store

	mu       sync.Mutex
	datasets map[string]*dvDataset
	nextID   int
	// Authority is the DOI prefix used for persistent IDs.
	Authority string
}

// DatasetMeta is the citation metadata of a Dataverse dataset.
type DatasetMeta struct {
	// Title is the dataset's display title.
	Title string
	// Authors lists the creators.
	Authors []string
	// Description summarises the dataset.
	Description string
	// Subject is the discipline keyword (e.g. "Earth and Environmental Sciences").
	Subject string
}

// DatasetInfo is the public view of a dataset.
type DatasetInfo struct {
	// DOI is the persistent identifier, e.g. "doi:10.70122/NSDF/000001".
	DOI string
	// Meta is the citation metadata.
	Meta DatasetMeta
	// Version is the latest published version (0 = only a draft exists).
	Version int
	// Published is the publication time of the latest version.
	Published time.Time
	// Files lists the file names of the latest published version.
	Files []string
}

type dvDataset struct {
	meta      DatasetMeta
	version   int
	published time.Time
	// draft holds file names added since the last publish.
	draft map[string]bool
	// versions[v] lists the file names frozen in version v (1-based).
	versions map[int][]string
}

// NewDataverse creates a repository persisting file payloads to store.
func NewDataverse(store Store) *Dataverse {
	return &Dataverse{store: store, datasets: make(map[string]*dvDataset), Authority: "doi:10.70122/NSDF"}
}

// CreateDataset registers a new draft dataset and returns its DOI.
func (d *Dataverse) CreateDataset(meta DatasetMeta) (string, error) {
	if strings.TrimSpace(meta.Title) == "" {
		return "", fmt.Errorf("dataverse: dataset needs a title")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextID++
	doi := fmt.Sprintf("%s/%06d", d.Authority, d.nextID)
	d.datasets[doi] = &dvDataset{meta: meta, draft: make(map[string]bool), versions: make(map[int][]string)}
	return doi, nil
}

func (d *Dataverse) dataset(doi string) (*dvDataset, error) {
	ds, ok := d.datasets[doi]
	if !ok {
		return nil, fmt.Errorf("dataverse: unknown persistent id %q", doi)
	}
	return ds, nil
}

// fileKey maps a dataset file to its object-store key. Version v=0 means
// the draft area.
func (d *Dataverse) fileKey(doi string, version int, name string) string {
	clean := strings.ReplaceAll(strings.TrimPrefix(doi, "doi:"), "/", "_")
	return fmt.Sprintf("dataverse/%s/v%d/%s", clean, version, name)
}

// AddFile uploads a file into the dataset's draft version.
func (d *Dataverse) AddFile(ctx context.Context, doi, name string, data []byte) error {
	if !ValidKey(name) {
		return fmt.Errorf("dataverse: invalid file name %q", name)
	}
	d.mu.Lock()
	ds, err := d.dataset(doi)
	if err != nil {
		d.mu.Unlock()
		return err
	}
	ds.draft[name] = true
	d.mu.Unlock()
	return d.store.Put(ctx, d.fileKey(doi, 0, name), data)
}

// Publish freezes the draft as the next version: draft files are copied
// to an immutable version area and the draft is carried forward (next
// version starts from the published file set, like Dataverse's
// draft-on-top-of-release model). Returns the new version number.
func (d *Dataverse) Publish(ctx context.Context, doi string) (int, error) {
	d.mu.Lock()
	ds, err := d.dataset(doi)
	if err != nil {
		d.mu.Unlock()
		return 0, err
	}
	if len(ds.draft) == 0 {
		d.mu.Unlock()
		return 0, fmt.Errorf("dataverse: %s has no draft files to publish", doi)
	}
	version := ds.version + 1
	names := make([]string, 0, len(ds.draft))
	for n := range ds.draft {
		names = append(names, n)
	}
	sort.Strings(names)
	d.mu.Unlock()

	// Copy draft payloads into the frozen version area.
	for _, n := range names {
		data, err := d.store.Get(ctx, d.fileKey(doi, 0, n))
		if err != nil {
			return 0, fmt.Errorf("dataverse: publish %s: %w", n, err)
		}
		if err := d.store.Put(ctx, d.fileKey(doi, version, n), data); err != nil {
			return 0, fmt.Errorf("dataverse: publish %s: %w", n, err)
		}
	}

	d.mu.Lock()
	ds.version = version
	ds.published = time.Now()
	ds.versions[version] = names
	d.mu.Unlock()
	return version, nil
}

// GetFile fetches a file from the latest published version. Anonymous
// (public) access: no credential is involved.
func (d *Dataverse) GetFile(ctx context.Context, doi, name string) ([]byte, error) {
	d.mu.Lock()
	ds, err := d.dataset(doi)
	if err != nil {
		d.mu.Unlock()
		return nil, err
	}
	version := ds.version
	d.mu.Unlock()
	if version == 0 {
		return nil, fmt.Errorf("dataverse: %s has no published version", doi)
	}
	return d.store.Get(ctx, d.fileKey(doi, version, name))
}

// GetFileVersion fetches a file from a specific published version.
func (d *Dataverse) GetFileVersion(ctx context.Context, doi string, version int, name string) ([]byte, error) {
	d.mu.Lock()
	ds, err := d.dataset(doi)
	if err == nil {
		if _, ok := ds.versions[version]; !ok {
			err = fmt.Errorf("dataverse: %s has no version %d", doi, version)
		}
	}
	d.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return d.store.Get(ctx, d.fileKey(doi, version, name))
}

// Info returns the public view of a dataset.
func (d *Dataverse) Info(doi string) (DatasetInfo, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ds, err := d.dataset(doi)
	if err != nil {
		return DatasetInfo{}, err
	}
	info := DatasetInfo{DOI: doi, Meta: ds.meta, Version: ds.version, Published: ds.published}
	if ds.version > 0 {
		info.Files = append([]string(nil), ds.versions[ds.version]...)
	}
	return info, nil
}

// Search returns datasets whose title, description, or subject contains
// the query (case-insensitive), sorted by DOI. Only published datasets
// are visible, matching Dataverse's public search.
func (d *Dataverse) Search(query string) []DatasetInfo {
	q := strings.ToLower(query)
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []DatasetInfo
	for doi, ds := range d.datasets {
		if ds.version == 0 {
			continue
		}
		hay := strings.ToLower(ds.meta.Title + " " + ds.meta.Description + " " + ds.meta.Subject)
		if q == "" || strings.Contains(hay, q) {
			info := DatasetInfo{DOI: doi, Meta: ds.meta, Version: ds.version, Published: ds.published}
			info.Files = append([]string(nil), ds.versions[ds.version]...)
			out = append(out, info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].DOI < out[j].DOI })
	return out
}
