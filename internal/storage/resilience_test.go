package storage

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"nsdfgo/internal/idx"
	"nsdfgo/internal/raster"
	"nsdfgo/internal/telemetry"
)

func TestFlakyInjectsAtRate(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	inner.Put(ctx, "k", []byte("v"))
	f := NewFlaky(inner, 0.5, 1)
	failures := 0
	const n = 1000
	for i := 0; i < n; i++ {
		if _, err := f.Get(ctx, "k"); err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("unexpected error type: %v", err)
			}
			failures++
		}
	}
	if failures < n/3 || failures > 2*n/3 {
		t.Errorf("injected %d of %d at rate 0.5", failures, n)
	}
	if f.Injected() != int64(failures) {
		t.Errorf("Injected() = %d, observed %d", f.Injected(), failures)
	}
}

func TestFlakyRateZeroAndOne(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	inner.Put(ctx, "k", []byte("v"))
	never := NewFlaky(inner, 0, 1)
	for i := 0; i < 50; i++ {
		if _, err := never.Get(ctx, "k"); err != nil {
			t.Fatalf("rate 0 failed: %v", err)
		}
	}
	always := NewFlaky(inner, 1, 1)
	if _, err := always.Get(ctx, "k"); err == nil {
		t.Error("rate 1 succeeded")
	}
	// Rates are clamped.
	if NewFlaky(inner, -5, 1).rate != 0 || NewFlaky(inner, 9, 1).rate != 1 {
		t.Error("rate not clamped")
	}
}

func TestFlakyDeterministicBySeed(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	inner.Put(ctx, "k", []byte("v"))
	pattern := func(seed int64) []bool {
		f := NewFlaky(inner, 0.5, seed)
		var out []bool
		for i := 0; i < 50; i++ {
			_, err := f.Get(ctx, "k")
			out = append(out, err != nil)
		}
		return out
	}
	a, b := pattern(9), pattern(9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRetryRecoversFromTransients(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	inner.Put(ctx, "k", []byte("payload"))
	flaky := NewFlaky(inner, 0.5, 3)
	r := NewRetry(flaky, 15, 0)
	for i := 0; i < 200; i++ {
		data, err := r.Get(ctx, "k")
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if string(data) != "payload" {
			t.Fatal("wrong payload")
		}
	}
	if r.Retries() == 0 {
		t.Error("no retries recorded despite 50% failure rate")
	}
}

func TestRetryGivesUpEventually(t *testing.T) {
	ctx := context.Background()
	r := NewRetry(NewFlaky(NewMemStore(), 1, 1), 3, 0)
	err := r.Put(ctx, "k", []byte("v"))
	if err == nil {
		t.Fatal("always-failing store succeeded")
	}
	if !errors.Is(err, ErrTransient) {
		t.Errorf("error lost its cause: %v", err)
	}
}

func TestRetryDoesNotRetryPermanentErrors(t *testing.T) {
	ctx := context.Background()
	r := NewRetry(NewMemStore(), 5, 0)
	if _, err := r.Get(ctx, "missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
	if r.Retries() != 0 {
		t.Errorf("retried a permanent error %d times", r.Retries())
	}
}

func TestRetryHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRetry(NewFlaky(NewMemStore(), 1, 1), 5, 1)
	if err := r.Put(ctx, "k", []byte("v")); err == nil {
		t.Error("cancelled retry succeeded")
	}
}

func TestIDXOverFlakyStoreWithRetry(t *testing.T) {
	// End-to-end resilience: an IDX dataset on a 20%-flaky store behind
	// retries must read back perfectly.
	ctx := context.Background()
	_ = ctx
	inner := NewMemStore()
	resilient := NewRetry(NewFlaky(inner, 0.2, 11), 10, 0)
	be := NewIDXBackend(resilient, "flaky-ds")
	meta, err := idx.NewMeta([]int{64, 64}, []idx.Field{{Name: "elevation", Type: idx.Float32}})
	if err != nil {
		t.Fatal(err)
	}
	meta.BitsPerBlock = 8
	ds, err := idx.Create(context.Background(), be, meta)
	if err != nil {
		t.Fatal(err)
	}
	g := raster.New(64, 64)
	for i := range g.Data {
		g.Data[i] = float32(i)
	}
	if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		out, _, err := ds.ReadFull(context.Background(), "elevation", 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !raster.Equal(g, out) {
			t.Fatalf("trial %d: data corrupted", trial)
		}
	}
}

func TestRetryStoreConformance(t *testing.T) {
	// The Retry wrapper must behave like a plain store when nothing fails.
	ctx := context.Background()
	s := NewRetry(NewMemStore(), 3, 0)
	if err := s.Put(ctx, "a/b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	infos, err := s.List(ctx, "a/")
	if err != nil || len(infos) != 1 {
		t.Fatalf("List: %v, %v", infos, err)
	}
	info, err := s.Stat(ctx, "a/b")
	if err != nil || info.Size != 1 {
		t.Fatalf("Stat: %+v, %v", info, err)
	}
	if err := s.Delete(ctx, "a/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "a/b"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("Get after delete: %v", err)
	}
}

func BenchmarkRetryOverhead(b *testing.B) {
	ctx := context.Background()
	inner := NewMemStore()
	inner.Put(ctx, "k", make([]byte, 4096))
	r := NewRetry(inner, 3, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Get(ctx, "k"); err != nil {
			b.Fatal(err)
		}
	}
}

// callCountingStore counts every operation that reaches the inner store.
type callCountingStore struct {
	Store
	mu    sync.Mutex
	calls int
}

func (s *callCountingStore) count() {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
}

func (s *callCountingStore) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func (s *callCountingStore) Get(ctx context.Context, key string) ([]byte, error) {
	s.count()
	return s.Store.Get(ctx, key)
}

func (s *callCountingStore) Put(ctx context.Context, key string, data []byte) error {
	s.count()
	return s.Store.Put(ctx, key, data)
}

// TestRetryPreCancelledMakesZeroCalls is the regression test for the
// zero-BaseDelay hole: with no backoff sleeps there was no point at
// which ctx was consulted, so a cancelled caller still burned every
// attempt against the inner store. Now the context is checked before
// each attempt, so a pre-cancelled retry must make zero inner calls.
func TestRetryPreCancelledMakesZeroCalls(t *testing.T) {
	inner := &callCountingStore{Store: NewMemStore()}
	r := NewRetry(inner, 5, 0) // BaseDelay 0: no backoff sleep to hide in
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.Put(ctx, "k", []byte("v")); !errors.Is(err, context.Canceled) {
		t.Fatalf("Put returned %v, want context.Canceled", err)
	}
	if _, err := r.Get(ctx, "k"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Get returned %v, want context.Canceled", err)
	}
	if n := inner.Calls(); n != 0 {
		t.Fatalf("cancelled retry reached the inner store %d times, want 0", n)
	}
}

// TestRetryBackoffFullJitterBounds pins the backoff distribution: the
// sleep before retry k is uniform in [0, BaseDelay<<(k-1)), so delays
// stay inside the doubling envelope, actually spread out (no
// deterministic lockstep), and average near half the ceiling — the
// "full jitter" scheme that decorrelates retry storms after a shared
// transient.
func TestRetryBackoffFullJitterBounds(t *testing.T) {
	base := 8 * time.Millisecond
	r := NewRetry(NewMemStore(), 5, base)
	r.SeedJitter(42)
	for attempt := 1; attempt <= 4; attempt++ {
		ceiling := base << (attempt - 1)
		const samples = 2000
		var sum time.Duration
		distinct := map[time.Duration]bool{}
		for i := 0; i < samples; i++ {
			d := r.backoffDelay(attempt)
			if d < 0 || d >= ceiling {
				t.Fatalf("attempt %d: delay %v outside [0,%v)", attempt, d, ceiling)
			}
			sum += d
			distinct[d] = true
		}
		mean := sum / samples
		if mean < ceiling/4 || mean > 3*ceiling/4 {
			t.Errorf("attempt %d: mean delay %v, want within [%v,%v] of a uniform draw over [0,%v)",
				attempt, mean, ceiling/4, 3*ceiling/4, ceiling)
		}
		if len(distinct) < samples/10 {
			t.Errorf("attempt %d: only %d distinct delays in %d draws — backoff is not jittered", attempt, len(distinct), samples)
		}
	}
	// Determinism under an injected seed: two identically seeded sources
	// draw identical streams (the testability contract).
	a, b := NewRetry(NewMemStore(), 5, base), NewRetry(NewMemStore(), 5, base)
	a.SeedJitter(7)
	b.SeedJitter(7)
	for i := 0; i < 100; i++ {
		if da, db := a.backoffDelay(2), b.backoffDelay(2); da != db {
			t.Fatalf("draw %d: same seed diverged (%v vs %v)", i, da, db)
		}
	}
	// Zero BaseDelay never sleeps.
	z := NewRetry(NewMemStore(), 5, 0)
	if d := z.backoffDelay(3); d != 0 {
		t.Errorf("zero-BaseDelay backoff = %v, want 0", d)
	}
}

// TestRetryCountersConcurrent exercises the lock-free retry counter and
// telemetry mirror from many goroutines (run under -race via `make
// race`): counts must neither tear nor drop.
func TestRetryCountersConcurrent(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	inner.Put(ctx, "k", []byte("v"))
	r := NewRetry(NewFlaky(inner, 0.5, 77), 50, 0)
	reg := telemetry.NewRegistry()
	r.InstrumentRetries(reg, "flaky")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := r.Get(ctx, "k"); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if r.Retries() == 0 {
		t.Fatal("no retries recorded at 50% failure rate")
	}
	got := reg.Counter("nsdf_storage_retries_total", "backend", "flaky").Value()
	if got != r.Retries() {
		t.Errorf("telemetry mirror %d != Retries() %d", got, r.Retries())
	}
}

// TestConditionedCancelBooksElapsedWaitOnly pins the stats fix: a
// cancelled operation must book only the wait actually served, not the
// full simulated delay it never sat through.
func TestConditionedCancelBooksElapsedWaitOnly(t *testing.T) {
	c := NewConditioned(NewMemStore(), NetworkProfile{RTT: time.Hour}, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := c.Get(ctx, "k"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Get returned %v, want context.DeadlineExceeded", err)
	}
	if wait := c.Stats().TotalWait; wait >= time.Minute {
		t.Fatalf("TotalWait = %v: cancelled op booked the full simulated delay", wait)
	}
}
