package storage

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"nsdfgo/internal/telemetry"
	"nsdfgo/internal/telemetry/trace"
)

// Server exposes a Store over HTTP with an S3-flavoured REST layout:
//
//	PUT    /obj/<key>            store an object
//	GET    /obj/<key>            fetch an object
//	HEAD   /obj/<key>            object metadata (ETag, Content-Length)
//	DELETE /obj/<key>            remove an object
//	GET    /list?prefix=<p>      JSON array of ObjectInfo
//	GET    /healthz              liveness probe
//
// When AuthToken is non-empty the server requires
// "Authorization: Bearer <token>" on every request — this is the private
// Seal-Storage-style deployment of the tutorial; with an empty token the
// service is public, like Dataverse's anonymous download path.
type Server struct {
	store Store
	// AuthToken, when non-empty, gates every request.
	AuthToken string
}

// NewServer wraps a Store for HTTP serving. token may be empty for a
// public service.
func NewServer(store Store, token string) *Server {
	return &Server{store: store, AuthToken: token}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.AuthToken != "" {
		got := r.Header.Get("Authorization")
		if got != "Bearer "+s.AuthToken {
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
	}
	switch {
	case r.URL.Path == "/healthz":
		telemetry.WriteHealth(w, "store")
	case r.URL.Path == "/list":
		s.handleList(w, r)
	case strings.HasPrefix(r.URL.Path, "/obj/"):
		s.handleObject(w, r, strings.TrimPrefix(r.URL.Path, "/obj/"))
	default:
		http.NotFound(w, r)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	infos, err := s.store.List(r.Context(), r.URL.Query().Get("prefix"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(infos); err != nil {
		// Too late for a status change; the client sees a truncated body.
		return
	}
}

func (s *Server) handleObject(w http.ResponseWriter, r *http.Request, key string) {
	if !ValidKey(key) {
		http.Error(w, "invalid key", http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	switch r.Method {
	case http.MethodPut:
		data, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.store.Put(ctx, key, data); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case http.MethodGet:
		data, err := s.store.Get(ctx, key)
		if errors.Is(err, ErrNotExist) {
			http.NotFound(w, r)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("ETag", `"`+etag(data)+`"`)
		w.Write(data)
	case http.MethodHead:
		info, err := s.store.Stat(ctx, key)
		if errors.Is(err, ErrNotExist) {
			http.NotFound(w, r)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("ETag", `"`+info.ETag+`"`)
		w.Header().Set("Content-Length", fmt.Sprint(info.Size))
		w.WriteHeader(http.StatusOK)
	case http.MethodDelete:
		if err := s.store.Delete(ctx, key); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// Client is a Store implementation backed by a remote Server.
type Client struct {
	base  string
	token string
	http  *http.Client
}

// NewClient connects to a Server at baseURL (e.g. "http://host:port").
// token must match the server's AuthToken; pass "" for public services.
func NewClient(baseURL, token string) *Client {
	return &Client{
		base:  strings.TrimRight(baseURL, "/"),
		token: token,
		http:  &http.Client{Timeout: 30 * time.Second},
	}
}

func (c *Client) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, fmt.Errorf("storage: build request: %w", err)
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	// Propagate the active trace across the peer hop — every request,
	// including replication writes and hedged duplicates, so one user
	// request keeps one trace ID across the whole fleet and the remote
	// server can graft its spans under the calling span.
	trace.Inject(ctx, req.Header)
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("storage: %s %s: %w", method, path, err)
	}
	if resp.StatusCode == http.StatusUnauthorized {
		err := fmt.Errorf("%w: %s %s", ErrUnauthorized, method, path)
		if cerr := resp.Body.Close(); cerr != nil {
			err = errors.Join(err, cerr)
		}
		return nil, err
	}
	return resp, nil
}

// Put implements Store.
func (c *Client) Put(ctx context.Context, key string, data []byte) error {
	resp, err := c.do(ctx, http.MethodPut, "/obj/"+key, data)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("storage: put %q: status %s", key, resp.Status)
	}
	return nil
}

// Get implements Store.
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/obj/"+key, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, key)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("storage: get %q: status %s", key, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// Delete implements Store.
func (c *Client) Delete(ctx context.Context, key string) error {
	resp, err := c.do(ctx, http.MethodDelete, "/obj/"+key, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("storage: delete %q: status %s", key, resp.Status)
	}
	return nil
}

// Stat implements Store.
func (c *Client) Stat(ctx context.Context, key string) (ObjectInfo, error) {
	resp, err := c.do(ctx, http.MethodHead, "/obj/"+key, nil)
	if err != nil {
		return ObjectInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return ObjectInfo{}, fmt.Errorf("%w: %q", ErrNotExist, key)
	}
	if resp.StatusCode != http.StatusOK {
		return ObjectInfo{}, fmt.Errorf("storage: stat %q: status %s", key, resp.Status)
	}
	return ObjectInfo{
		Key:  key,
		Size: resp.ContentLength,
		ETag: strings.Trim(resp.Header.Get("ETag"), `"`),
	}, nil
}

// List implements Store.
func (c *Client) List(ctx context.Context, prefix string) ([]ObjectInfo, error) {
	resp, err := c.do(ctx, http.MethodGet, "/list?prefix="+url.QueryEscape(prefix), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("storage: list %q: status %s", prefix, resp.Status)
	}
	var infos []ObjectInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, fmt.Errorf("storage: list decode: %w", err)
	}
	return infos, nil
}
