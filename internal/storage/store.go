// Package storage implements the data storage services the NSDF tutorial
// workflow uploads to, downloads from, and streams from: a generic object
// Store interface with in-memory and on-disk implementations, an HTTP
// object service and client (the shape of an S3-compatible endpoint), a
// private bearer-token-protected deployment standing in for Seal Storage,
// a public repository with persistent identifiers and metadata standing in
// for Dataverse, and a wide-area network conditioner that injects latency
// and bandwidth limits so streaming experiments behave like remote access.
package storage

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrNotExist reports a missing object.
var ErrNotExist = errors.New("storage: object does not exist")

// ErrUnauthorized reports a rejected credential.
var ErrUnauthorized = errors.New("storage: unauthorized")

// ObjectInfo describes a stored object.
type ObjectInfo struct {
	// Key is the object's name.
	Key string
	// Size is the payload length in bytes.
	Size int64
	// ETag is a content hash usable for validation.
	ETag string
	// ModTime is the last write time.
	ModTime time.Time
}

// Store is the object-storage abstraction shared by every NSDF storage
// service. Implementations must be safe for concurrent use.
type Store interface {
	// Put stores data under key, replacing any existing object.
	Put(ctx context.Context, key string, data []byte) error
	// Get returns the object under key, or ErrNotExist.
	Get(ctx context.Context, key string) ([]byte, error)
	// Delete removes the object under key; deleting a missing object is
	// not an error.
	Delete(ctx context.Context, key string) error
	// Stat returns metadata for the object under key, or ErrNotExist.
	Stat(ctx context.Context, key string) (ObjectInfo, error)
	// List returns metadata for all objects whose key begins with prefix,
	// sorted by key.
	List(ctx context.Context, prefix string) ([]ObjectInfo, error)
}

// etag computes the content hash used for ETags.
func etag(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}

// ValidKey reports whether key is acceptable: non-empty, slash-separated
// segments, no empty or dot-dot segments, no leading slash.
func ValidKey(key string) bool {
	if key == "" || strings.HasPrefix(key, "/") || strings.Contains(key, "//") {
		return false
	}
	for _, seg := range strings.Split(key, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return false
		}
	}
	return true
}

// MemStore is an in-memory Store.
type MemStore struct {
	mu      sync.RWMutex
	objects map[string]memObject
}

type memObject struct {
	data    []byte
	modTime time.Time
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{objects: make(map[string]memObject)}
}

// Put implements Store.
func (s *MemStore) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if !ValidKey(key) {
		return fmt.Errorf("storage: invalid key %q", key)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[key] = memObject{data: cp, modTime: time.Now()}
	return nil
}

// Get implements Store.
func (s *MemStore) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	obj, ok := s.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, key)
	}
	out := make([]byte, len(obj.data))
	copy(out, obj.data)
	return out, nil
}

// Delete implements Store.
func (s *MemStore) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, key)
	return nil
}

// Stat implements Store.
func (s *MemStore) Stat(ctx context.Context, key string) (ObjectInfo, error) {
	if err := ctx.Err(); err != nil {
		return ObjectInfo{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	obj, ok := s.objects[key]
	if !ok {
		return ObjectInfo{}, fmt.Errorf("%w: %q", ErrNotExist, key)
	}
	return ObjectInfo{Key: key, Size: int64(len(obj.data)), ETag: etag(obj.data), ModTime: obj.modTime}, nil
}

// List implements Store.
func (s *MemStore) List(ctx context.Context, prefix string) ([]ObjectInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []ObjectInfo
	for key, obj := range s.objects {
		if strings.HasPrefix(key, prefix) {
			out = append(out, ObjectInfo{Key: key, Size: int64(len(obj.data)), ETag: etag(obj.data), ModTime: obj.modTime})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// TotalBytes returns the sum of stored payload sizes.
func (s *MemStore) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, obj := range s.objects {
		total += int64(len(obj.data))
	}
	return total
}

// FileStore is a Store rooted at a directory.
type FileStore struct {
	root string
}

// NewFileStore creates (if needed) and wraps the directory root.
func NewFileStore(root string) (*FileStore, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create root: %w", err)
	}
	return &FileStore{root: root}, nil
}

func (s *FileStore) path(key string) (string, error) {
	if !ValidKey(key) {
		return "", fmt.Errorf("storage: invalid key %q", key)
	}
	return filepath.Join(s.root, filepath.FromSlash(key)), nil
}

// Put implements Store.
func (s *FileStore) Put(ctx context.Context, key string, data []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("storage: mkdir: %w", err)
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("storage: write: %w", err)
	}
	if err := os.Rename(tmp, p); err != nil {
		return fmt.Errorf("storage: rename: %w", err)
	}
	return nil
}

// Get implements Store.
func (s *FileStore) Get(ctx context.Context, key string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := s.path(key)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, key)
	}
	if err != nil {
		return nil, fmt.Errorf("storage: read: %w", err)
	}
	return data, nil
}

// Delete implements Store.
func (s *FileStore) Delete(ctx context.Context, key string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storage: delete: %w", err)
	}
	return nil
}

// Stat implements Store.
func (s *FileStore) Stat(ctx context.Context, key string) (ObjectInfo, error) {
	if err := ctx.Err(); err != nil {
		return ObjectInfo{}, err
	}
	p, err := s.path(key)
	if err != nil {
		return ObjectInfo{}, err
	}
	fi, err := os.Stat(p)
	if os.IsNotExist(err) {
		return ObjectInfo{}, fmt.Errorf("%w: %q", ErrNotExist, key)
	}
	if err != nil {
		return ObjectInfo{}, fmt.Errorf("storage: stat: %w", err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return ObjectInfo{}, fmt.Errorf("storage: stat read: %w", err)
	}
	return ObjectInfo{Key: key, Size: fi.Size(), ETag: etag(data), ModTime: fi.ModTime()}, nil
}

// List implements Store.
func (s *FileStore) List(ctx context.Context, prefix string) ([]ObjectInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []ObjectInfo
	err := filepath.WalkDir(s.root, func(p string, de os.DirEntry, err error) error {
		if err != nil || de.IsDir() {
			return err
		}
		rel, err := filepath.Rel(s.root, p)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if !strings.HasPrefix(key, prefix) || strings.HasSuffix(key, ".tmp") {
			return nil
		}
		fi, err := de.Info()
		if err != nil {
			return err
		}
		out = append(out, ObjectInfo{Key: key, Size: fi.Size(), ModTime: fi.ModTime()})
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("storage: list: %w", err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}
