package storage

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"nsdfgo/internal/telemetry"
	"nsdfgo/internal/telemetry/flight"
	"nsdfgo/internal/telemetry/trace"
)

// ErrTransient marks an injected or retryable failure.
var ErrTransient = errors.New("storage: transient failure")

// Flaky wraps a Store and injects transient failures at a configured
// rate, for testing the resilience of the services layered above
// (wide-area object stores fail routinely; the NSDF services must shrug
// it off). Failures are deterministic in the seed.
type Flaky struct {
	inner Store
	rate  float64
	mu    sync.Mutex
	rng   *rand.Rand

	injected int64
}

// NewFlaky wraps inner, failing roughly rate (0..1) of operations with
// ErrTransient.
func NewFlaky(inner Store, rate float64, seed int64) *Flaky {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &Flaky{inner: inner, rate: rate, rng: rand.New(rand.NewSource(seed))}
}

// Injected reports how many failures were injected.
func (f *Flaky) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

func (f *Flaky) trip(op, key string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.rng.Float64() < f.rate {
		f.injected++
		return fmt.Errorf("%w: injected on %s %q", ErrTransient, op, key)
	}
	return nil
}

// Put implements Store.
func (f *Flaky) Put(ctx context.Context, key string, data []byte) error {
	if err := f.trip("put", key); err != nil {
		return err
	}
	return f.inner.Put(ctx, key, data)
}

// Get implements Store.
func (f *Flaky) Get(ctx context.Context, key string) ([]byte, error) {
	if err := f.trip("get", key); err != nil {
		return nil, err
	}
	return f.inner.Get(ctx, key)
}

// Delete implements Store.
func (f *Flaky) Delete(ctx context.Context, key string) error {
	if err := f.trip("delete", key); err != nil {
		return err
	}
	return f.inner.Delete(ctx, key)
}

// Stat implements Store.
func (f *Flaky) Stat(ctx context.Context, key string) (ObjectInfo, error) {
	if err := f.trip("stat", key); err != nil {
		return ObjectInfo{}, err
	}
	return f.inner.Stat(ctx, key)
}

// List implements Store.
func (f *Flaky) List(ctx context.Context, prefix string) ([]ObjectInfo, error) {
	if err := f.trip("list", prefix); err != nil {
		return nil, err
	}
	return f.inner.List(ctx, prefix)
}

// Retry wraps a Store with bounded exponential-backoff retries on
// transient failures. Permanent errors (ErrNotExist, ErrUnauthorized,
// context cancellation) are returned immediately.
//
// Backoff is exponential with full jitter: the ceiling doubles per
// retry (BaseDelay, 2*BaseDelay, 4*BaseDelay, ...) and each sleep is
// drawn uniformly from [0, ceiling). Deterministic doubling would make
// every client that hit one shared transient — a store blip, a shed
// burst — retry again in lockstep, re-creating the overload each wave;
// jitter decorrelates the herd.
type Retry struct {
	inner Store
	// Attempts is the maximum number of tries per operation (>= 1).
	Attempts int
	// BaseDelay is the first backoff ceiling; it doubles per retry. Zero
	// disables sleeping (pure retry), which keeps tests fast.
	BaseDelay time.Duration

	// retries and counter are lock-free: do() runs on every operation of
	// every client, and a shared mutex here serialises exactly the
	// flood-recovery path where throughput matters most.
	retries atomic.Int64
	counter atomic.Pointer[telemetry.Counter]

	// fl receives a retry_exhausted flight event when an operation fails
	// through its whole attempt budget; nil disables (SetFlight).
	fl atomic.Pointer[flight.Recorder]

	// rngMu guards rng, the injected jitter source (math/rand.Rand is
	// not concurrency-safe). nil rng uses the global locked source.
	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewRetry wraps inner with up to attempts tries per operation.
func NewRetry(inner Store, attempts int, baseDelay time.Duration) *Retry {
	if attempts < 1 {
		attempts = 1
	}
	return &Retry{inner: inner, Attempts: attempts, BaseDelay: baseDelay}
}

// SeedJitter fixes the jitter source to a deterministic seeded stream,
// for tests that pin the backoff distribution. Call before use.
func (r *Retry) SeedJitter(seed int64) {
	r.rngMu.Lock()
	r.rng = rand.New(rand.NewSource(seed))
	r.rngMu.Unlock()
}

// Retries reports how many retries were performed.
func (r *Retry) Retries() int64 { return r.retries.Load() }

// InstrumentRetries mirrors the retry count into a telemetry registry as
// nsdf_storage_retries_total{backend}.
func (r *Retry) InstrumentRetries(reg *telemetry.Registry, backend string) {
	r.counter.Store(reg.Counter("nsdf_storage_retries_total", "backend", backend))
}

// SetFlight wires the flight recorder that receives retry_exhausted
// events. Safe to call concurrently with operations.
func (r *Retry) SetFlight(fl *flight.Recorder) {
	if fl != nil {
		r.fl.Store(fl)
	}
}

// backoffDelay draws the sleep before retry attempt (attempt >= 1):
// uniform in [0, BaseDelay<<(attempt-1)), the "full jitter" scheme.
// A zero BaseDelay disables sleeping entirely.
func (r *Retry) backoffDelay(attempt int) time.Duration {
	if r.BaseDelay <= 0 {
		return 0
	}
	ceiling := r.BaseDelay << (attempt - 1)
	if ceiling <= 0 { // shift overflow on absurd attempt counts
		ceiling = r.BaseDelay
	}
	r.rngMu.Lock()
	defer r.rngMu.Unlock()
	if r.rng != nil {
		return time.Duration(r.rng.Int63n(int64(ceiling)))
	}
	return time.Duration(rand.Int63n(int64(ceiling)))
}

// permanent reports whether err must not be retried.
func permanent(err error) bool {
	return errors.Is(err, ErrNotExist) ||
		errors.Is(err, ErrUnauthorized) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// do runs op with retries. ctx is consulted before every attempt — not
// only inside the backoff sleep — so a cancelled caller never burns
// remaining attempts against the inner store, even with BaseDelay == 0.
// When the context carries an active trace, every retry attempt (not the
// first try, which the layers above already span) records a
// storage.retry span carrying the operation name, attempt number, and
// outcome — the trace-level view of a flaky wide-area store.
func (r *Retry) do(ctx context.Context, op string, fn func() error) error {
	var err error
	traced := trace.Active(ctx)
	for attempt := 0; attempt < r.Attempts; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if attempt > 0 {
			r.retries.Add(1)
			if c := r.counter.Load(); c != nil {
				c.Inc()
			}
			if delay := r.backoffDelay(attempt); delay > 0 {
				t := time.NewTimer(delay)
				select {
				case <-ctx.Done():
					t.Stop()
					return ctx.Err()
				case <-t.C:
				}
			}
		}
		var attemptStart time.Time
		if traced && attempt > 0 {
			attemptStart = time.Now()
		}
		err = fn()
		if traced && attempt > 0 {
			outcome := "error"
			if err == nil {
				outcome = "ok"
			}
			trace.Record(ctx, "storage.retry", attemptStart, time.Now(),
				trace.Str("op", op),
				trace.Int("attempt", int64(attempt+1)),
				trace.Str("outcome", outcome))
		}
		if err == nil || permanent(err) {
			return err
		}
	}
	r.fl.Load().Record(flight.KindRetryExhausted, trace.ID(ctx),
		"op=%s attempts=%d err=%v", op, r.Attempts, err)
	return fmt.Errorf("storage: giving up after %d attempts: %w", r.Attempts, err)
}

// Put implements Store.
func (r *Retry) Put(ctx context.Context, key string, data []byte) error {
	return r.do(ctx, "put", func() error { return r.inner.Put(ctx, key, data) })
}

// Get implements Store.
func (r *Retry) Get(ctx context.Context, key string) ([]byte, error) {
	var out []byte
	err := r.do(ctx, "get", func() error {
		var err error
		out, err = r.inner.Get(ctx, key)
		return err
	})
	return out, err
}

// Delete implements Store.
func (r *Retry) Delete(ctx context.Context, key string) error {
	return r.do(ctx, "delete", func() error { return r.inner.Delete(ctx, key) })
}

// Stat implements Store.
func (r *Retry) Stat(ctx context.Context, key string) (ObjectInfo, error) {
	var out ObjectInfo
	err := r.do(ctx, "stat", func() error {
		var err error
		out, err = r.inner.Stat(ctx, key)
		return err
	})
	return out, err
}

// List implements Store.
func (r *Retry) List(ctx context.Context, prefix string) ([]ObjectInfo, error) {
	var out []ObjectInfo
	err := r.do(ctx, "list", func() error {
		var err error
		out, err = r.inner.List(ctx, prefix)
		return err
	})
	return out, err
}
