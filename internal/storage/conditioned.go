package storage

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// NetworkProfile models a wide-area link between the client and a remote
// storage service: one round trip of latency per operation plus transfer
// time proportional to payload size. The NSDF-Plugin measurements
// (Luettgau et al., HPDC 2023) motivate the default profiles.
type NetworkProfile struct {
	// RTT is the request round-trip time added to every operation.
	RTT time.Duration
	// BandwidthBps is the payload transfer rate in bytes per second; 0
	// means unlimited.
	BandwidthBps int64
	// Jitter is the maximum extra random delay added per operation.
	Jitter time.Duration
	// TailProb is the per-operation probability (0..1) of a heavy-tail
	// latency spike — the p99-and-beyond stragglers real object stores
	// exhibit (GC pauses, slow disks, congested links). 0 disables the
	// tail.
	TailProb float64
	// TailSpike is the extra delay added when a spike fires. The spike is
	// added on top of RTT, jitter, and transfer time, so the tail stays
	// heavy regardless of payload size.
	TailSpike time.Duration
}

// Common profiles for experiments. Values are scaled down ~10x from
// realistic WAN numbers so test suites stay fast while preserving the
// relative ordering (local ≪ regional ≪ cross-country).
var (
	// ProfileLocal approximates same-site access.
	ProfileLocal = NetworkProfile{RTT: 200 * time.Microsecond, BandwidthBps: 1 << 30}
	// ProfileRegional approximates a same-region cloud store.
	ProfileRegional = NetworkProfile{RTT: 2 * time.Millisecond, BandwidthBps: 1 << 28, Jitter: 500 * time.Microsecond}
	// ProfileCrossCountry approximates a coast-to-coast object store.
	ProfileCrossCountry = NetworkProfile{RTT: 7 * time.Millisecond, BandwidthBps: 1 << 26, Jitter: 2 * time.Millisecond}
	// ProfileHeavyTail is ProfileRegional with a 2% chance of a 20x
	// latency spike per operation: the profile hedged reads are designed
	// to defeat. The 40ms spike dominates every other delay term, so p99
	// sits an order of magnitude above p50 — the shape (if not the scale)
	// of real wide-area tail latency.
	ProfileHeavyTail = NetworkProfile{RTT: 2 * time.Millisecond, BandwidthBps: 1 << 28, Jitter: 500 * time.Microsecond, TailProb: 0.02, TailSpike: 40 * time.Millisecond}
)

// Conditioned wraps a Store, delaying every operation according to a
// NetworkProfile so local experiments exhibit remote-access behaviour.
type Conditioned struct {
	inner   Store
	profile NetworkProfile

	mu  sync.Mutex
	rng *rand.Rand

	statsMu   sync.Mutex
	ops       int64
	bytesIn   int64
	bytesOut  int64
	totalWait time.Duration
}

// NewConditioned wraps inner with the given profile. seed fixes the jitter
// stream for reproducibility.
func NewConditioned(inner Store, profile NetworkProfile, seed int64) *Conditioned {
	return &Conditioned{inner: inner, profile: profile, rng: rand.New(rand.NewSource(seed))}
}

// sampleDelay draws one operation's simulated network time from the
// profile: RTT, plus uniform jitter, plus (with probability TailProb) a
// heavy-tail spike, plus bandwidth-proportional transfer time.
func (c *Conditioned) sampleDelay(payloadBytes int) time.Duration {
	d := c.profile.RTT
	if c.profile.Jitter > 0 || (c.profile.TailProb > 0 && c.profile.TailSpike > 0) {
		c.mu.Lock()
		if c.profile.Jitter > 0 {
			d += time.Duration(c.rng.Int63n(int64(c.profile.Jitter) + 1))
		}
		if c.profile.TailProb > 0 && c.profile.TailSpike > 0 && c.rng.Float64() < c.profile.TailProb {
			d += c.profile.TailSpike
		}
		c.mu.Unlock()
	}
	if c.profile.BandwidthBps > 0 && payloadBytes > 0 {
		d += time.Duration(float64(payloadBytes) / float64(c.profile.BandwidthBps) * float64(time.Second))
	}
	return d
}

// delay sleeps for the operation's simulated network time, honouring ctx.
func (c *Conditioned) delay(ctx context.Context, payloadBytes int) error {
	d := c.sampleDelay(payloadBytes)
	c.statsMu.Lock()
	c.ops++
	c.statsMu.Unlock()
	if d <= 0 {
		return ctx.Err()
	}
	// TotalWait records only the wait actually served: when ctx cancels
	// the sleep early, the elapsed portion is booked, not the full d.
	begin := time.Now()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		c.statsMu.Lock()
		c.totalWait += time.Since(begin)
		c.statsMu.Unlock()
		return ctx.Err()
	case <-t.C:
		c.statsMu.Lock()
		c.totalWait += d
		c.statsMu.Unlock()
		return nil
	}
}

// NetStats summarises the traffic a Conditioned store has carried.
type NetStats struct {
	// Ops is the operation count.
	Ops int64
	// BytesUploaded and BytesDownloaded count payload volume.
	BytesUploaded, BytesDownloaded int64
	// TotalWait is the accumulated simulated network time.
	TotalWait time.Duration
}

// Stats returns a snapshot of the traffic counters.
func (c *Conditioned) Stats() NetStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	return NetStats{Ops: c.ops, BytesUploaded: c.bytesIn, BytesDownloaded: c.bytesOut, TotalWait: c.totalWait}
}

// Put implements Store.
func (c *Conditioned) Put(ctx context.Context, key string, data []byte) error {
	if err := c.delay(ctx, len(data)); err != nil {
		return err
	}
	c.statsMu.Lock()
	c.bytesIn += int64(len(data))
	c.statsMu.Unlock()
	return c.inner.Put(ctx, key, data)
}

// Get implements Store.
func (c *Conditioned) Get(ctx context.Context, key string) ([]byte, error) {
	data, err := c.inner.Get(ctx, key)
	if err != nil {
		// Even a miss costs a round trip.
		if derr := c.delay(ctx, 0); derr != nil {
			return nil, derr
		}
		return nil, err
	}
	if err := c.delay(ctx, len(data)); err != nil {
		return nil, err
	}
	c.statsMu.Lock()
	c.bytesOut += int64(len(data))
	c.statsMu.Unlock()
	return data, nil
}

// Delete implements Store.
func (c *Conditioned) Delete(ctx context.Context, key string) error {
	if err := c.delay(ctx, 0); err != nil {
		return err
	}
	return c.inner.Delete(ctx, key)
}

// Stat implements Store.
func (c *Conditioned) Stat(ctx context.Context, key string) (ObjectInfo, error) {
	if err := c.delay(ctx, 0); err != nil {
		return ObjectInfo{}, err
	}
	return c.inner.Stat(ctx, key)
}

// List implements Store.
func (c *Conditioned) List(ctx context.Context, prefix string) ([]ObjectInfo, error) {
	if err := c.delay(ctx, 0); err != nil {
		return nil, err
	}
	return c.inner.List(ctx, prefix)
}
