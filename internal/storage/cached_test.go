package storage

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"nsdfgo/internal/cache"
)

// countingStore wraps a Store and counts Gets.
type countingStore struct {
	Store
	gets atomic.Int64
}

func (s *countingStore) Get(ctx context.Context, key string) ([]byte, error) {
	s.gets.Add(1)
	return s.Store.Get(ctx, key)
}

func TestCachedGetReadThroughAndInvalidate(t *testing.T) {
	ctx := context.Background()
	inner := &countingStore{Store: NewMemStore()}
	c := NewCached(inner, cache.NewMemTiered(1<<20))
	if err := c.Put(ctx, "obj/a", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := c.Get(ctx, "obj/a")
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != "v1" {
			t.Fatalf("Get = %q", got)
		}
	}
	if n := inner.gets.Load(); n != 1 {
		t.Errorf("inner Gets = %d, want 1 (read-through not caching)", n)
	}
	// Callers own the returned slice: mutating it must not corrupt the
	// cached payload.
	got, _ := c.Get(ctx, "obj/a")
	got[0] = 'X'
	again, _ := c.Get(ctx, "obj/a")
	if string(again) != "v1" {
		t.Error("caller mutation leaked into the cache")
	}

	// Put invalidates.
	if err := c.Put(ctx, "obj/a", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(ctx, "obj/a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Errorf("stale read after Put: %q", got)
	}

	// Delete invalidates; misses are not cached.
	if err := c.Delete(ctx, "obj/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "obj/a"); !errors.Is(err, ErrNotExist) {
		t.Errorf("Get after Delete = %v", err)
	}
	if err := c.Put(ctx, "obj/a", []byte("v3")); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Get(ctx, "obj/a"); err != nil || string(got) != "v3" {
		t.Errorf("Get after miss+Put = %q, %v (error cached?)", got, err)
	}
}

func TestCachedCoalescesConcurrentGets(t *testing.T) {
	ctx := context.Background()
	inner := &countingStore{Store: NewMemStore()}
	if err := inner.Put(ctx, "obj/b", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	tc := cache.NewMemTiered(1 << 20)
	c := NewCached(inner, tc)
	const readers = 8
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got, err := c.Get(ctx, "obj/b"); err != nil || string(got) != "payload" {
				t.Errorf("Get = %q, %v", got, err)
			}
		}()
	}
	wg.Wait()
	if n := inner.gets.Load(); n != 1 {
		t.Errorf("inner Gets = %d, want 1", n)
	}
}
