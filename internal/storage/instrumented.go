package storage

import (
	"context"
	"errors"
	"time"

	"nsdfgo/internal/telemetry"
	"nsdfgo/internal/telemetry/trace"
)

// Instrumented wraps a Store and records per-operation telemetry: op and
// error counts, payload bytes by direction, and an operation latency
// histogram, all labelled with a backend name. When the request context
// carries an active trace, each operation additionally records a
// storage.<op> span annotated with the backend label, so /debug/traces
// shows exactly which store the time went to. Layer it outermost so the
// histogram captures the full cost (retries, simulated WAN delay, the
// store itself):
//
//	store := storage.NewInstrumented(
//	    storage.NewRetry(storage.NewConditioned(inner, profile, seed), 3, 0),
//	    reg, "seal")
type Instrumented struct {
	inner   Store
	backend string

	ops  map[string]*telemetry.Counter
	errs map[string]*telemetry.Counter
	up   *telemetry.Counter
	down *telemetry.Counter
	lat  *telemetry.Histogram
}

// instrumentedSpanNames maps each op to a constant span name, so the
// per-op trace records allocate no strings.
var instrumentedSpanNames = map[string]string{
	"get":    "storage.get",
	"put":    "storage.put",
	"delete": "storage.delete",
	"stat":   "storage.stat",
	"list":   "storage.list",
}

// instrumentedOps are the Store operations tracked per backend.
var instrumentedOps = []string{"get", "put", "delete", "stat", "list"}

// NewInstrumented wraps inner, registering its metrics under the given
// backend label in reg.
func NewInstrumented(inner Store, reg *telemetry.Registry, backend string) *Instrumented {
	in := &Instrumented{
		inner:   inner,
		backend: backend,
		ops:   make(map[string]*telemetry.Counter, len(instrumentedOps)),
		errs:  make(map[string]*telemetry.Counter, len(instrumentedOps)),
		up:    reg.Counter("nsdf_storage_bytes_total", "backend", backend, "direction", "up"),
		down:  reg.Counter("nsdf_storage_bytes_total", "backend", backend, "direction", "down"),
		lat:   reg.Histogram("nsdf_storage_op_seconds", "backend", backend),
	}
	for _, op := range instrumentedOps {
		in.ops[op] = reg.Counter("nsdf_storage_ops_total", "backend", backend, "op", op)
		in.errs[op] = reg.Counter("nsdf_storage_errors_total", "backend", backend, "op", op)
	}
	return in
}

// record books one finished operation. Missing objects are an expected
// outcome of Get/Stat probes, not a backend failure, so ErrNotExist does
// not count as an error.
func (in *Instrumented) record(ctx context.Context, op string, start time.Time, err error) {
	in.ops[op].Inc()
	if err != nil && !errors.Is(err, ErrNotExist) {
		in.errs[op].Inc()
	}
	if trace.Active(ctx) {
		end := time.Now()
		in.lat.ObserveExemplar(end.Sub(start).Seconds(), trace.ID(ctx))
		trace.Record(ctx, instrumentedSpanNames[op], start, end,
			trace.Str("backend", in.backend))
		return
	}
	in.lat.ObserveSince(start)
}

// Put implements Store.
func (in *Instrumented) Put(ctx context.Context, key string, data []byte) error {
	start := time.Now()
	err := in.inner.Put(ctx, key, data)
	in.record(ctx, "put", start, err)
	if err == nil {
		in.up.Add(int64(len(data)))
	}
	return err
}

// Get implements Store.
func (in *Instrumented) Get(ctx context.Context, key string) ([]byte, error) {
	start := time.Now()
	data, err := in.inner.Get(ctx, key)
	in.record(ctx, "get", start, err)
	if err == nil {
		in.down.Add(int64(len(data)))
	}
	return data, err
}

// Delete implements Store.
func (in *Instrumented) Delete(ctx context.Context, key string) error {
	start := time.Now()
	err := in.inner.Delete(ctx, key)
	in.record(ctx, "delete", start, err)
	return err
}

// Stat implements Store.
func (in *Instrumented) Stat(ctx context.Context, key string) (ObjectInfo, error) {
	start := time.Now()
	info, err := in.inner.Stat(ctx, key)
	in.record(ctx, "stat", start, err)
	return info, err
}

// List implements Store.
func (in *Instrumented) List(ctx context.Context, prefix string) ([]ObjectInfo, error) {
	start := time.Now()
	infos, err := in.inner.List(ctx, prefix)
	in.record(ctx, "list", start, err)
	return infos, err
}
