package storage

import (
	"context"
	"testing"

	"nsdfgo/internal/telemetry"
)

func TestInstrumentedCountsOpsAndBytes(t *testing.T) {
	ctx := context.Background()
	reg := telemetry.NewRegistry()
	in := NewInstrumented(NewMemStore(), reg, "mem")

	if err := in.Put(ctx, "a", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := in.Put(ctx, "b", []byte("world!!")); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Get(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := in.Stat(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := in.List(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if err := in.Delete(ctx, "b"); err != nil {
		t.Fatal(err)
	}

	for op, want := range map[string]int64{"put": 2, "get": 1, "stat": 1, "list": 1, "delete": 1} {
		if got := reg.Counter("nsdf_storage_ops_total", "backend", "mem", "op", op).Value(); got != want {
			t.Errorf("ops[%s] = %d, want %d", op, got, want)
		}
	}
	if got := reg.Counter("nsdf_storage_bytes_total", "backend", "mem", "direction", "up").Value(); got != 12 {
		t.Errorf("bytes up = %d, want 12", got)
	}
	if got := reg.Counter("nsdf_storage_bytes_total", "backend", "mem", "direction", "down").Value(); got != 5 {
		t.Errorf("bytes down = %d, want 5", got)
	}
	if snap := reg.Histogram("nsdf_storage_op_seconds", "backend", "mem").Snapshot(); snap.Count != 6 {
		t.Errorf("latency observations = %d, want 6", snap.Count)
	}
}

func TestInstrumentedErrorAccounting(t *testing.T) {
	ctx := context.Background()
	reg := telemetry.NewRegistry()
	in := NewInstrumented(NewMemStore(), reg, "mem")

	// A missing object is an expected probe outcome, not a backend error.
	if _, err := in.Get(ctx, "absent"); err == nil {
		t.Fatal("expected ErrNotExist")
	}
	if got := reg.Counter("nsdf_storage_errors_total", "backend", "mem", "op", "get").Value(); got != 0 {
		t.Errorf("errors[get] after ErrNotExist = %d, want 0", got)
	}
	// A genuinely failing store does count.
	flaky := NewInstrumented(NewFlaky(NewMemStore(), 1, 1), reg, "flaky")
	if _, err := flaky.Get(ctx, "k"); err == nil {
		t.Fatal("flaky store with rate 1 succeeded")
	}
	if got := reg.Counter("nsdf_storage_errors_total", "backend", "flaky", "op", "get").Value(); got != 1 {
		t.Errorf("errors[get] on flaky = %d, want 1", got)
	}
	// Failed transfers must not count payload bytes.
	if got := reg.Counter("nsdf_storage_bytes_total", "backend", "flaky", "direction", "down").Value(); got != 0 {
		t.Errorf("bytes down on failed get = %d, want 0", got)
	}
}

func TestRetryCounterCountsRetriesOnly(t *testing.T) {
	ctx := context.Background()
	reg := telemetry.NewRegistry()
	inner := NewMemStore()
	inner.Put(ctx, "k", []byte("v"))

	// rate 0.5 with a fixed seed: some Gets succeed first try, some need
	// retries. The counter must equal attempts minus calls.
	r := NewRetry(NewFlaky(inner, 0.5, 7), 5, 0)
	r.InstrumentRetries(reg, "flaky")
	// At rate 0.5 a call can still exhaust all 5 attempts (~3% of calls);
	// those are fine here — the subject is the retry counter.
	const calls = 200
	for i := 0; i < calls; i++ {
		r.Get(ctx, "k")
	}
	retries := reg.Counter("nsdf_storage_retries_total", "backend", "flaky").Value()
	if retries == 0 {
		t.Error("no retries recorded at failure rate 0.5")
	}
	if retries >= calls*5 {
		t.Errorf("retries = %d, impossibly high for %d calls x 5 attempts", retries, calls)
	}

	// A reliable store never retries.
	ok := NewRetry(inner, 3, 0)
	ok.InstrumentRetries(reg, "ok")
	if _, err := ok.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("nsdf_storage_retries_total", "backend", "ok").Value(); got != 0 {
		t.Errorf("retries on reliable store = %d, want 0", got)
	}
}
