package storage

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// storeImpls builds one instance of every Store implementation for
// table-driven conformance tests.
func storeImpls(t *testing.T) map[string]Store {
	t.Helper()
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	public := httptest.NewServer(NewServer(NewMemStore(), ""))
	t.Cleanup(public.Close)
	private := httptest.NewServer(NewServer(NewMemStore(), "secret-token"))
	t.Cleanup(private.Close)
	return map[string]Store{
		"mem":         NewMemStore(),
		"file":        fs,
		"http-public": NewClient(public.URL, ""),
		"http-auth":   NewClient(private.URL, "secret-token"),
		"conditioned": NewConditioned(NewMemStore(), NetworkProfile{RTT: 10 * time.Microsecond}, 1),
	}
}

func TestStoreConformance(t *testing.T) {
	ctx := context.Background()
	for name, s := range storeImpls(t) {
		t.Run(name, func(t *testing.T) {
			// Missing object.
			if _, err := s.Get(ctx, "missing/key"); !errors.Is(err, ErrNotExist) {
				t.Errorf("Get missing: %v", err)
			}
			if _, err := s.Stat(ctx, "missing/key"); !errors.Is(err, ErrNotExist) {
				t.Errorf("Stat missing: %v", err)
			}
			// Round trip.
			payload := []byte("terrain block payload")
			if err := s.Put(ctx, "a/b/c.bin", payload); err != nil {
				t.Fatalf("Put: %v", err)
			}
			got, err := s.Get(ctx, "a/b/c.bin")
			if err != nil || string(got) != string(payload) {
				t.Fatalf("Get: %q, %v", got, err)
			}
			// Stat.
			info, err := s.Stat(ctx, "a/b/c.bin")
			if err != nil || info.Size != int64(len(payload)) {
				t.Fatalf("Stat: %+v, %v", info, err)
			}
			// Overwrite.
			if err := s.Put(ctx, "a/b/c.bin", []byte("v2")); err != nil {
				t.Fatal(err)
			}
			got, _ = s.Get(ctx, "a/b/c.bin")
			if string(got) != "v2" {
				t.Fatalf("overwrite: %q", got)
			}
			// List with prefix.
			if err := s.Put(ctx, "a/d.bin", []byte("x")); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(ctx, "z/e.bin", []byte("y")); err != nil {
				t.Fatal(err)
			}
			infos, err := s.List(ctx, "a/")
			if err != nil {
				t.Fatal(err)
			}
			if len(infos) != 2 || infos[0].Key != "a/b/c.bin" || infos[1].Key != "a/d.bin" {
				t.Fatalf("List: %+v", infos)
			}
			// Delete; deleting twice is fine.
			if err := s.Delete(ctx, "a/d.bin"); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(ctx, "a/d.bin"); err != nil {
				t.Fatalf("double delete: %v", err)
			}
			if _, err := s.Get(ctx, "a/d.bin"); !errors.Is(err, ErrNotExist) {
				t.Errorf("Get after delete: %v", err)
			}
			// Empty payload.
			if err := s.Put(ctx, "empty.bin", nil); err != nil {
				t.Fatal(err)
			}
			got, err = s.Get(ctx, "empty.bin")
			if err != nil || len(got) != 0 {
				t.Errorf("empty payload: %q, %v", got, err)
			}
		})
	}
}

func TestValidKey(t *testing.T) {
	good := []string{"a", "a/b", "a.b/c-d_e", "0/1/2"}
	bad := []string{"", "/a", "a//b", "a/", "../x", "a/../b", "a/.", "."}
	for _, k := range good {
		if !ValidKey(k) {
			t.Errorf("ValidKey(%q) = false", k)
		}
	}
	for _, k := range bad {
		if ValidKey(k) {
			t.Errorf("ValidKey(%q) = true", k)
		}
	}
}

func TestInvalidKeysRejected(t *testing.T) {
	ctx := context.Background()
	for name, s := range map[string]Store{"mem": NewMemStore()} {
		if err := s.Put(ctx, "../escape", []byte("x")); err == nil {
			t.Errorf("%s: path escape accepted", name)
		}
	}
	fs, _ := NewFileStore(t.TempDir())
	if err := fs.Put(ctx, "../escape", []byte("x")); err == nil {
		t.Error("file store path escape accepted")
	}
}

func TestAuthRejectsBadToken(t *testing.T) {
	srv := httptest.NewServer(NewServer(NewMemStore(), "good"))
	defer srv.Close()
	ctx := context.Background()

	wrong := NewClient(srv.URL, "bad")
	if err := wrong.Put(ctx, "k", []byte("v")); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("wrong token Put: %v", err)
	}
	if _, err := wrong.Get(ctx, "k"); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("wrong token Get: %v", err)
	}
	none := NewClient(srv.URL, "")
	if _, err := none.List(ctx, ""); !errors.Is(err, ErrUnauthorized) {
		t.Errorf("missing token List: %v", err)
	}
	right := NewClient(srv.URL, "good")
	if err := right.Put(ctx, "k", []byte("v")); err != nil {
		t.Errorf("right token Put: %v", err)
	}
}

func TestMemStoreIsolation(t *testing.T) {
	ctx := context.Background()
	s := NewMemStore()
	data := []byte{1, 2, 3}
	s.Put(ctx, "k", data)
	data[0] = 9
	got, _ := s.Get(ctx, "k")
	if got[0] != 1 {
		t.Error("Put aliases caller buffer")
	}
	got[1] = 9
	got2, _ := s.Get(ctx, "k")
	if got2[1] != 2 {
		t.Error("Get aliases stored buffer")
	}
}

func TestMemStoreTotalBytes(t *testing.T) {
	ctx := context.Background()
	s := NewMemStore()
	s.Put(ctx, "a", make([]byte, 10))
	s.Put(ctx, "b", make([]byte, 5))
	if s.TotalBytes() != 15 {
		t.Errorf("TotalBytes = %d", s.TotalBytes())
	}
}

func TestConditionedAddsLatency(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	inner.Put(ctx, "k", make([]byte, 1000))
	slow := NewConditioned(inner, NetworkProfile{RTT: 5 * time.Millisecond}, 1)
	start := time.Now()
	if _, err := slow.Get(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Errorf("conditioned Get took %v, want >= 5ms", elapsed)
	}
	st := slow.Stats()
	if st.Ops != 1 || st.BytesDownloaded != 1000 {
		t.Errorf("stats: %+v", st)
	}
}

func TestConditionedBandwidthScalesWithSize(t *testing.T) {
	ctx := context.Background()
	inner := NewMemStore()
	inner.Put(ctx, "small", make([]byte, 1<<10))
	inner.Put(ctx, "large", make([]byte, 1<<20))
	// 64 MiB/s, no RTT: 1KiB ~ 15us, 1MiB ~ 16ms.
	slow := NewConditioned(inner, NetworkProfile{BandwidthBps: 64 << 20}, 1)
	t0 := time.Now()
	slow.Get(ctx, "small")
	smallTime := time.Since(t0)
	t1 := time.Now()
	slow.Get(ctx, "large")
	largeTime := time.Since(t1)
	if largeTime < smallTime*4 {
		t.Errorf("large transfer %v not clearly slower than small %v", largeTime, smallTime)
	}
}

func TestConditionedHonoursContext(t *testing.T) {
	inner := NewMemStore()
	inner.Put(context.Background(), "k", make([]byte, 10))
	slow := NewConditioned(inner, NetworkProfile{RTT: time.Second}, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := slow.Get(ctx, "k"); err == nil {
		t.Error("cancelled Get succeeded")
	}
}

func TestDataverseLifecycle(t *testing.T) {
	ctx := context.Background()
	dv := NewDataverse(NewMemStore())
	doi, err := dv.CreateDataset(DatasetMeta{
		Title:       "CONUS Terrain Parameters 30m",
		Authors:     []string{"Taufer, M.", "Pascucci, V."},
		Description: "GEOtiled-derived terrain parameters",
		Subject:     "Earth and Environmental Sciences",
	})
	if err != nil {
		t.Fatal(err)
	}
	// Unpublished: not downloadable, not searchable.
	if _, err := dv.GetFile(ctx, doi, "elevation.tif"); err == nil {
		t.Error("draft file downloadable before publish")
	}
	if res := dv.Search("CONUS"); len(res) != 0 {
		t.Errorf("draft visible in search: %+v", res)
	}
	if err := dv.AddFile(ctx, doi, "elevation.tif", []byte("tif-bytes-v1")); err != nil {
		t.Fatal(err)
	}
	v, err := dv.Publish(ctx, doi)
	if err != nil || v != 1 {
		t.Fatalf("Publish: %d, %v", v, err)
	}
	data, err := dv.GetFile(ctx, doi, "elevation.tif")
	if err != nil || string(data) != "tif-bytes-v1" {
		t.Fatalf("GetFile: %q, %v", data, err)
	}
	// New draft on top: update file, publish v2, v1 stays immutable.
	if err := dv.AddFile(ctx, doi, "elevation.tif", []byte("tif-bytes-v2")); err != nil {
		t.Fatal(err)
	}
	if v, err := dv.Publish(ctx, doi); err != nil || v != 2 {
		t.Fatalf("Publish v2: %d, %v", v, err)
	}
	old, err := dv.GetFileVersion(ctx, doi, 1, "elevation.tif")
	if err != nil || string(old) != "tif-bytes-v1" {
		t.Fatalf("v1 immutability: %q, %v", old, err)
	}
	cur, _ := dv.GetFile(ctx, doi, "elevation.tif")
	if string(cur) != "tif-bytes-v2" {
		t.Fatalf("latest: %q", cur)
	}
	// Search finds it now.
	res := dv.Search("conus")
	if len(res) != 1 || res[0].DOI != doi {
		t.Errorf("Search: %+v", res)
	}
	info, err := dv.Info(doi)
	if err != nil || info.Version != 2 || len(info.Files) != 1 {
		t.Errorf("Info: %+v, %v", info, err)
	}
}

func TestDataverseValidation(t *testing.T) {
	ctx := context.Background()
	dv := NewDataverse(NewMemStore())
	if _, err := dv.CreateDataset(DatasetMeta{}); err == nil {
		t.Error("untitled dataset accepted")
	}
	if err := dv.AddFile(ctx, "doi:nope", "f", []byte("x")); err == nil {
		t.Error("unknown DOI accepted")
	}
	doi, _ := dv.CreateDataset(DatasetMeta{Title: "t"})
	if err := dv.AddFile(ctx, doi, "../bad", []byte("x")); err == nil {
		t.Error("invalid file name accepted")
	}
	if _, err := dv.Publish(ctx, doi); err == nil {
		t.Error("publishing empty draft accepted")
	}
	if _, err := dv.GetFileVersion(ctx, doi, 3, "f"); err == nil {
		t.Error("unknown version accepted")
	}
}

func TestDataverseDOIsUnique(t *testing.T) {
	dv := NewDataverse(NewMemStore())
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		doi, err := dv.CreateDataset(DatasetMeta{Title: fmt.Sprintf("d%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if seen[doi] {
			t.Fatalf("duplicate DOI %s", doi)
		}
		seen[doi] = true
	}
}

func TestConcurrentStoreAccess(t *testing.T) {
	ctx := context.Background()
	s := NewMemStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("w%d/k%d", w, i%10)
				s.Put(ctx, key, []byte{byte(i)})
				s.Get(ctx, key)
				s.List(ctx, fmt.Sprintf("w%d/", w))
			}
		}(w)
	}
	wg.Wait()
}

func TestMemStorePutGetProperty(t *testing.T) {
	ctx := context.Background()
	s := NewMemStore()
	f := func(suffix uint16, payload []byte) bool {
		key := fmt.Sprintf("p/%d", suffix)
		if err := s.Put(ctx, key, payload); err != nil {
			return false
		}
		got, err := s.Get(ctx, key)
		if err != nil || len(got) != len(payload) {
			return false
		}
		for i := range got {
			if got[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMemStorePut(b *testing.B) {
	ctx := context.Background()
	s := NewMemStore()
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Put(ctx, fmt.Sprintf("k%d", i%256), payload)
	}
}

func BenchmarkHTTPRoundTrip(b *testing.B) {
	srv := httptest.NewServer(NewServer(NewMemStore(), ""))
	defer srv.Close()
	c := NewClient(srv.URL, "")
	ctx := context.Background()
	payload := make([]byte, 64<<10)
	if err := c.Put(ctx, "bench", payload); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get(ctx, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}
