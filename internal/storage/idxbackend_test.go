package storage

import (
	"context"
	"testing"

	"nsdfgo/internal/idx"
	"nsdfgo/internal/raster"
)

func TestIDXBackendRoundTrip(t *testing.T) {
	store := NewMemStore()
	be := NewIDXBackend(store, "datasets/tn")
	meta, err := idx.NewMeta([]int{32, 32}, []idx.Field{{Name: "elevation", Type: idx.Float32, Codec: "zlib"}})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := idx.Create(context.Background(), be, meta)
	if err != nil {
		t.Fatal(err)
	}
	g := raster.New(32, 32)
	for i := range g.Data {
		g.Data[i] = float32(i)
	}
	if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		t.Fatal(err)
	}
	// Reopen through a second backend instance.
	ds2, err := idx.Open(context.Background(), NewIDXBackend(store, "datasets/tn/"))
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := ds2.ReadFull(context.Background(), "elevation", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(g, out) {
		t.Error("round trip through store-backed dataset failed")
	}
}

func TestIDXBackendMissingMapsToNotExist(t *testing.T) {
	be := NewIDXBackend(NewMemStore(), "p")
	if _, err := be.Get(context.Background(), "nope"); !idx.IsNotExist(err) {
		t.Errorf("missing object error = %v", err)
	}
}

func TestIDXBackendListStripsPrefix(t *testing.T) {
	store := NewMemStore()
	be := NewIDXBackend(store, "root")
	if err := be.Put(context.Background(), "fields/a/b1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	names, err := be.List(context.Background(), "fields/")
	if err != nil || len(names) != 1 || names[0] != "fields/a/b1" {
		t.Fatalf("List = %v, %v", names, err)
	}
	// Underlying store key carries the prefix.
	infos, _ := store.List(context.Background(), "root/")
	if len(infos) != 1 {
		t.Fatalf("store keys: %+v", infos)
	}
}
