package cache

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"nsdfgo/internal/telemetry"
)

// fillConst returns a fill function serving a fixed payload and
// counting its invocations.
func fillConst(payload []byte, calls *atomic.Int64) func(context.Context) ([]byte, error) {
	return func(context.Context) ([]byte, error) {
		if calls != nil {
			calls.Add(1)
		}
		cp := make([]byte, len(payload))
		copy(cp, payload)
		return cp, nil
	}
}

// TestGetOrFillCoalesces is the coalescing acceptance test: N
// concurrent misses on one key run the fill exactly once, and the
// nsdf_cache_coalesced_total series increments.
func TestGetOrFillCoalesces(t *testing.T) {
	c := NewMemTiered(1 << 20)
	reg := telemetry.NewRegistry()
	c.Instrument(reg, "test")

	const readers = 8
	var calls atomic.Int64
	release := make(chan struct{})
	fill := func(context.Context) ([]byte, error) {
		calls.Add(1)
		<-release // hold the flight open so the others pile in
		return []byte("payload"), nil
	}
	var started, wg sync.WaitGroup
	started.Add(readers)
	wg.Add(readers)
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		go func() {
			defer wg.Done()
			started.Done()
			blk, _, err := c.GetOrFill(context.Background(), "k", fill)
			if err != nil {
				errs <- err
				return
			}
			if string(blk.Bytes()) != "payload" {
				errs <- fmt.Errorf("wrong payload %q", blk.Bytes())
			}
			blk.Release()
		}()
	}
	started.Wait()
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("fill ran %d times, want exactly 1", got)
	}
	s := c.Stats()
	// Every reader that did not run the fill was either coalesced into
	// the flight or (if it arrived after completion) served from cache.
	if s.Coalesced+s.Hits != readers-1 {
		t.Errorf("coalesced=%d hits=%d, want %d combined", s.Coalesced, s.Hits, readers-1)
	}
	if s.Misses != 1 {
		t.Errorf("misses = %d, want 1", s.Misses)
	}
	if s.Coalesced > 0 {
		if got := reg.SumFamily("nsdf_cache_coalesced_total"); got != float64(s.Coalesced) {
			t.Errorf("nsdf_cache_coalesced_total = %v, want %d", got, s.Coalesced)
		}
	}
}

func TestGetOrFillErrorPropagatesAndRetries(t *testing.T) {
	c := NewMemTiered(1 << 20)
	boom := errors.New("backend down")
	var calls atomic.Int64
	_, _, err := c.GetOrFill(context.Background(), "k", func(context.Context) ([]byte, error) {
		calls.Add(1)
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// A failed flight must not be cached: the next call retries.
	blk, _, err := c.GetOrFill(context.Background(), "k", fillConst([]byte("ok"), &calls))
	if err != nil {
		t.Fatal(err)
	}
	blk.Release()
	if calls.Load() != 2 {
		t.Errorf("fill calls = %d, want 2", calls.Load())
	}
}

func TestGetOrFillWaiterCtxCancel(t *testing.T) {
	c := NewMemTiered(1 << 20)
	release := make(chan struct{})
	leaderIn := make(chan struct{})
	var leaderBlk *Block
	var leaderErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		leaderBlk, _, leaderErr = c.GetOrFill(context.Background(), "k", func(context.Context) ([]byte, error) {
			close(leaderIn)
			<-release
			return []byte("v"), nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.GetOrFill(ctx, "k", fillConst([]byte("v"), nil)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v", err)
	}
	close(release)
	<-done
	if leaderErr != nil {
		t.Fatal(leaderErr)
	}
	leaderBlk.Release()
	// Only the cache's own reference may remain on the resident block.
	blk, ok := c.Get("k")
	if !ok {
		t.Fatal("k missing after flight")
	}
	if blk.refCount() != 2 { // cache + this Get
		t.Errorf("refcount = %d, want 2 (abandoned waiter leaked a reference?)", blk.refCount())
	}
	blk.Release()
}

func TestTieredDisabledFillsWithoutCountingOrCoalescing(t *testing.T) {
	c := NewMemTiered(0)
	var calls atomic.Int64
	for i := 0; i < 3; i++ {
		blk, outcome, err := c.GetOrFill(context.Background(), "k", fillConst([]byte("v"), &calls))
		if err != nil {
			t.Fatal(err)
		}
		if outcome != OutcomeFilled {
			t.Errorf("outcome = %v", outcome)
		}
		blk.Release()
	}
	if calls.Load() != 3 {
		t.Errorf("disabled cache coalesced or cached: %d fills", calls.Load())
	}
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 0 || s.Coalesced != 0 {
		t.Errorf("disabled cache counted traffic: %+v", s)
	}
}

// TestAdmissionProtectsHotSet: after the hot set has been referenced
// repeatedly, a one-pass scan of cold keys must not displace it.
func TestAdmissionProtectsHotSet(t *testing.T) {
	c := NewMemTiered(4 * 1024)
	hot := []string{"h0", "h1", "h2", "h3"}
	for _, k := range hot {
		c.Put(k, make([]byte, 1024)).Release()
	}
	for i := 0; i < 10; i++ {
		for _, k := range hot {
			blk, ok := c.Get(k)
			if !ok {
				t.Fatalf("hot key %s missing during warm-up", k)
			}
			blk.Release()
		}
	}
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("scan%d", i), make([]byte, 1024)).Release()
	}
	for _, k := range hot {
		if blk, ok := c.Get(k); !ok {
			t.Errorf("scan evicted hot key %s", k)
		} else {
			blk.Release()
		}
	}
	if s := c.Stats(); s.AdmissionRejects == 0 {
		t.Error("no admission rejects recorded for the scan")
	}

	// Control: without admission the same scan flushes the hot set.
	nc, err := NewTiered(Options{MemBytes: 4 * 1024, NoAdmission: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range hot {
		nc.Put(k, make([]byte, 1024)).Release()
	}
	for i := 0; i < 10; i++ {
		nc.Put(fmt.Sprintf("scan%d", i), make([]byte, 1024)).Release()
	}
	survived := 0
	for _, k := range hot {
		if blk, ok := nc.Get(k); ok {
			survived++
			blk.Release()
		}
	}
	if survived != 0 {
		t.Errorf("NoAdmission control: %d hot keys survived a full scan", survived)
	}
}

func TestDiskTierSpillPromoteInvalidate(t *testing.T) {
	dir := t.TempDir()
	// NoAdmission makes eviction (and so disk spill) deterministic for a
	// cold Put sequence.
	c, err := NewTiered(Options{MemBytes: 2048, DiskDir: dir, DiskBytes: 1 << 20, NoAdmission: true})
	if err != nil {
		t.Fatal(err)
	}
	payload := func(b byte) []byte {
		data := make([]byte, 1024)
		for i := range data {
			data[i] = b
		}
		return data
	}
	c.Put("a", payload(1)).Release()
	c.Put("b", payload(2)).Release()
	c.Put("c", payload(3)).Release() // evicts a -> spills to disk
	s := c.Stats()
	if s.DiskEntries != 1 || s.DiskBytes != 1024 {
		t.Fatalf("disk tier after spill: %+v", s)
	}
	blk, ok := c.Get("a")
	if !ok {
		t.Fatal("a lost from both tiers")
	}
	if blk.Bytes()[0] != 1 || blk.Len() != 1024 {
		t.Fatalf("disk hit served wrong payload")
	}
	blk.Release()
	if s := c.Stats(); s.DiskHits != 1 {
		t.Errorf("disk hits = %d", s.DiskHits)
	}
	// Invalidation purges both tiers.
	c.Put("a", payload(9)).Release()
	c.Remove("a")
	if _, ok := c.Get("a"); ok {
		t.Error("removed key still served")
	}
	if files := diskFiles(t, dir); len(files) > 2 {
		t.Errorf("disk tier holds %d files for 2 live entries", len(files))
	}

	// A new cache on the same directory wipes leftovers.
	c2, err := NewTiered(Options{MemBytes: 2048, DiskDir: dir, DiskBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if s := c2.Stats(); s.DiskEntries != 0 {
		t.Errorf("fresh cache inherited %d disk entries", s.DiskEntries)
	}
	if files := diskFiles(t, dir); len(files) != 0 {
		t.Errorf("startup wipe left %d files", len(files))
	}
}

func diskFiles(t *testing.T, dir string) []string {
	t.Helper()
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, de := range des {
		if strings.HasSuffix(de.Name(), ".blk") {
			out = append(out, filepath.Join(dir, de.Name()))
		}
	}
	return out
}

// TestTieredStressRace mixes Get/Put/Remove/Clear/GetOrFill across
// goroutines on a tiny two-tier cache (run under -race by `make race`).
// Payload verification catches buffers recycled while referenced.
func TestTieredStressRace(t *testing.T) {
	c, err := NewTiered(Options{MemBytes: 4 << 10, DiskDir: t.TempDir(), DiskBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1500; i++ {
				k := (w*17 + i) % 24
				key := fmt.Sprintf("k%d", k)
				check := func(blk *Block) {
					for _, b := range blk.Bytes() {
						if b != byte(k) {
							t.Errorf("key %s served foreign payload %d", key, b)
							break
						}
					}
					blk.Release()
				}
				mk := func() []byte {
					data := make([]byte, 128+k)
					for j := range data {
						data[j] = byte(k)
					}
					return data
				}
				switch i % 8 {
				case 0, 1, 2:
					if blk, ok := c.Get(key); ok {
						check(blk)
					}
				case 3, 4:
					blk, _, err := c.GetOrFill(context.Background(), key, func(context.Context) ([]byte, error) {
						return mk(), nil
					})
					if err != nil {
						t.Error(err)
						return
					}
					check(blk)
				case 5, 6:
					c.Put(key, mk()).Release()
				case 7:
					if i%56 == 7 {
						c.Clear()
					} else {
						c.Remove(key)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.Bytes < 0 || s.Entries < 0 || s.DiskBytes < 0 {
		t.Errorf("corrupt stats: %+v", s)
	}
}
