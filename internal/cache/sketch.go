package cache

// freqSketch is a TinyLFU-style frequency estimator: a doorkeeper bloom
// filter absorbs one-hit-wonders, and a 4-row count-min sketch of 4-bit
// saturating counters (stored in uint8 for simplicity) estimates the
// access frequency of everything that got past the doorkeeper. All
// counters halve when the sample window fills, so estimates age out and
// yesterday's hot set cannot pin the cache forever.
//
// It is not safe for concurrent use; callers serialize access (the LRU
// touches it under its own mutex).
type freqSketch struct {
	rows    [4][]uint8
	door    []uint64 // doorkeeper bloom bitset
	mask    uint64   // row length - 1 (power of two)
	samples int      // touches since last reset
	limit   int      // reset threshold
}

// newFreqSketch sizes the sketch for roughly entries live keys. Width is
// rounded up to a power of two, floor 1024.
func newFreqSketch(entries int) *freqSketch {
	width := 1024
	for width < entries {
		width <<= 1
	}
	s := &freqSketch{mask: uint64(width - 1), limit: width * 8}
	for i := range s.rows {
		s.rows[i] = make([]uint8, width)
	}
	s.door = make([]uint64, width/64)
	return s
}

// hashes derives the two base hashes for double hashing from FNV-1a 64,
// computed inline: the sketch is touched on every cache lookup, and the
// hash/fnv digest object would put one allocation on the zero-alloc hit
// path.
func (s *freqSketch) hashes(key string) (uint64, uint64) {
	h1 := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h1 ^= uint64(key[i])
		h1 *= 1099511628211
	}
	h2 := h1>>32 | h1<<32
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	return h1, h2
}

// touch records one access to key.
func (s *freqSketch) touch(key string) {
	h1, h2 := s.hashes(key)
	bit := h1 & s.mask
	if s.door[bit/64]&(1<<(bit%64)) == 0 {
		s.door[bit/64] |= 1 << (bit % 64)
		return // first sighting stops at the doorkeeper
	}
	for i := range s.rows {
		idx := (h1 + uint64(i)*h2) & s.mask
		if s.rows[i][idx] < 15 {
			s.rows[i][idx]++
		}
	}
	s.samples++
	if s.samples >= s.limit {
		s.reset()
	}
}

// estimate returns the sketch's frequency estimate for key, including
// the doorkeeper bit.
func (s *freqSketch) estimate(key string) int {
	h1, h2 := s.hashes(key)
	min := 255
	for i := range s.rows {
		idx := (h1 + uint64(i)*h2) & s.mask
		if v := int(s.rows[i][idx]); v < min {
			min = v
		}
	}
	bit := h1 & s.mask
	if s.door[bit/64]&(1<<(bit%64)) != 0 {
		min++
	}
	return min
}

// reset halves every counter and clears the doorkeeper, aging the
// estimates.
func (s *freqSketch) reset() {
	for i := range s.rows {
		row := s.rows[i]
		for j := range row {
			row[j] >>= 1
		}
	}
	for i := range s.door {
		s.door[i] = 0
	}
	s.samples = 0
}
