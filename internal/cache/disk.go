package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// diskTier is the optional second cache level below the in-memory LRU:
// memory evictions spill here, and misses that hit on disk are promoted
// back. Entries are flat files named by the SHA-256 of the block key,
// holding the raw payload. The directory is a cache, not a store: it is
// wiped at startup, and every write is best-effort (an I/O error just
// forgets the entry; correctness never depends on the tier).
type diskTier struct {
	dir      string
	maxBytes int64
	pool     *bufPool

	mu      sync.Mutex
	ll      *list.List // front = most recent
	items   map[string]*list.Element
	entries atomic.Int64
	bytes   atomic.Int64
}

type diskEntry struct {
	key  string
	size int64
}

// newDiskTier creates (or reuses) dir as a disk cache bounded to
// maxBytes, wiping any leftover entries from a previous run.
func newDiskTier(dir string, maxBytes int64, pool *bufPool) (*diskTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: create disk tier dir: %w", err)
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("cache: read disk tier dir: %w", err)
	}
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".blk") {
			continue
		}
		if err := os.Remove(filepath.Join(dir, de.Name())); err != nil {
			return nil, fmt.Errorf("cache: wipe disk tier: %w", err)
		}
	}
	return &diskTier{
		dir:      dir,
		maxBytes: maxBytes,
		pool:     pool,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}, nil
}

// path maps a block key to its file, hashing so arbitrary key bytes
// cannot escape the directory.
func (d *diskTier) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(d.dir, hex.EncodeToString(sum[:])+".blk")
}

// put spills a payload to disk, best-effort. Oversized payloads and I/O
// failures are silently skipped; a failed write leaves no index entry.
func (d *diskTier) put(key string, data []byte) {
	size := int64(len(data))
	if size > d.maxBytes {
		return
	}
	p := d.path(key)
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		d.discard(tmp)
		return
	}
	if err := os.Rename(tmp, p); err != nil {
		d.discard(tmp)
		return
	}
	drop := make([]string, 0, 4) // eviction rarely displaces more than a few entries
	d.mu.Lock()
	if el, ok := d.items[key]; ok {
		e := el.Value.(*diskEntry)
		d.bytes.Add(size - e.size)
		e.size = size
		d.ll.MoveToFront(el)
	} else {
		d.items[key] = d.ll.PushFront(&diskEntry{key: key, size: size})
		d.entries.Add(1)
		d.bytes.Add(size)
	}
	for d.bytes.Load() > d.maxBytes {
		el := d.ll.Back()
		if el == nil {
			break
		}
		e := el.Value.(*diskEntry)
		d.ll.Remove(el)
		delete(d.items, e.key)
		d.entries.Add(-1)
		d.bytes.Add(-e.size)
		drop = append(drop, d.path(e.key))
	}
	d.mu.Unlock()
	for _, p := range drop {
		d.discard(p)
	}
}

// get reads the payload for key into a pooled buffer. A read failure
// (file vanished, truncated) demotes to a miss and forgets the entry.
func (d *diskTier) get(key string) ([]byte, bool) {
	d.mu.Lock()
	el, ok := d.items[key]
	if !ok {
		d.mu.Unlock()
		return nil, false
	}
	size := el.Value.(*diskEntry).size
	d.ll.MoveToFront(el)
	d.mu.Unlock()

	f, err := os.Open(d.path(key))
	if err != nil {
		d.forget(key)
		return nil, false
	}
	buf := d.pool.get(int(size))
	if buf == nil || int64(len(buf)) != size {
		buf = make([]byte, size)
	}
	_, err = io.ReadFull(f, buf)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		d.pool.put(buf)
		d.forget(key)
		return nil, false
	}
	return buf, true
}

// remove invalidates key (writes through from WriteRegion / store Put).
func (d *diskTier) remove(key string) {
	d.forget(key)
	d.discard(d.path(key))
}

// forget drops key from the index without touching the file.
func (d *diskTier) forget(key string) {
	d.mu.Lock()
	if el, ok := d.items[key]; ok {
		e := el.Value.(*diskEntry)
		d.ll.Remove(el)
		delete(d.items, key)
		d.entries.Add(-1)
		d.bytes.Add(-e.size)
	}
	d.mu.Unlock()
}

// clear empties the tier.
func (d *diskTier) clear() {
	d.mu.Lock()
	keys := make([]string, 0, d.ll.Len())
	for el := d.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*diskEntry).key)
	}
	d.ll.Init()
	d.items = make(map[string]*list.Element)
	d.entries.Store(0)
	d.bytes.Store(0)
	d.mu.Unlock()
	for _, key := range keys {
		d.discard(d.path(key))
	}
}

// discard removes a cache file, tolerating its absence. Any other
// removal error only costs disk space until the next startup wipe: the
// index no longer references the file, so nothing can read it.
func (d *diskTier) discard(p string) {
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		return
	}
}
