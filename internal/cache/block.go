package cache

import (
	"sync"
	"sync/atomic"
)

// Block is an immutable, reference-counted block payload. The cache
// hands the same Block to every concurrent reader of a key, so a cache
// hit copies nothing; the reference count keeps the underlying buffer
// alive until the last holder releases it, even if the cache evicts the
// entry in the meantime.
//
// Ownership rules (see DESIGN.md §11):
//   - Every Block returned by Get, Put, or GetOrFill carries one
//     reference owned by the caller, who must call Release exactly once,
//     promptly (within the request that obtained it).
//   - Bytes returns the cache's storage and must be treated as
//     read-only; it is valid only until Release.
//   - The cache holds its own reference while the entry is resident, so
//     readers and eviction never race on the buffer's lifetime.
type Block struct {
	data []byte
	refs atomic.Int64
	pool *bufPool
}

// NewBlock wraps data in a Block with one reference, owned by the
// caller. The Block adopts data: the caller must not write to it
// afterwards.
func NewBlock(data []byte) *Block {
	b := &Block{data: data}
	b.refs.Store(1)
	return b
}

// newPooledBlock is NewBlock for buffers that should return to pool on
// final release.
func newPooledBlock(data []byte, pool *bufPool) *Block {
	b := &Block{data: data, pool: pool}
	b.refs.Store(1)
	return b
}

// Bytes returns the payload. It is read-only shared memory, valid until
// the holder's Release.
func (b *Block) Bytes() []byte { return b.data }

// Len returns the payload length.
func (b *Block) Len() int { return len(b.data) }

// Acquire adds a reference. Only a goroutine that already holds a live
// reference (directly, or under the lock of a cache tier that does) may
// call it.
func (b *Block) Acquire() {
	if b.refs.Add(1) <= 1 {
		panic("cache: Acquire on a released Block")
	}
}

// Release drops one reference. When the last reference goes, the buffer
// is recycled into the owning cache's pool; using Bytes' result after
// Release is a use-after-free against that pool.
func (b *Block) Release() {
	n := b.refs.Add(-1)
	if n < 0 {
		panic("cache: Block over-released")
	}
	if n == 0 {
		data := b.data
		b.data = nil
		if b.pool != nil {
			b.pool.put(data)
		}
	}
}

// refCount reports the live reference count (tests and invariants).
func (b *Block) refCount() int64 { return b.refs.Load() }

// bufPool recycles fully released block buffers, bucketed by capacity.
// IDX block payloads are uniform per dataset, so exact-capacity reuse
// covers the common case; the disk tier draws its read buffers from
// here instead of allocating per promotion.
type bufPool struct {
	mu      sync.Mutex
	free    map[int][][]byte
	perSize int
}

// newBufPool bounds each capacity bucket to perSize retained buffers.
func newBufPool(perSize int) *bufPool {
	return &bufPool{free: make(map[int][][]byte), perSize: perSize}
}

// get returns a recycled buffer of length n, or nil when none is
// available.
func (p *bufPool) get(n int) []byte {
	p.mu.Lock()
	defer p.mu.Unlock()
	bufs := p.free[n]
	if len(bufs) == 0 {
		return nil
	}
	buf := bufs[len(bufs)-1]
	p.free[n] = bufs[:len(bufs)-1]
	return buf
}

// put offers a buffer back for reuse; buckets at capacity drop it for
// the garbage collector.
func (p *bufPool) put(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	buf = buf[:cap(buf)]
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free[cap(buf)]) < p.perSize {
		p.free[cap(buf)] = append(p.free[cap(buf)], buf)
	}
}
