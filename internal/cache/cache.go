// Package cache provides the size-bounded, concurrency-safe block cache
// behind the IDX streaming stack ("the caching-enabled framework also
// allows users to extract any rectangular subsets of the input data
// progressively"). Keys are block object names; values are immutable,
// reference-counted block payloads (Block) shared by all readers, so a
// cache hit copies nothing. A Tiered cache layers request coalescing, a
// TinyLFU admission filter, and an optional disk tier on top of the
// in-memory LRU.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"nsdfgo/internal/telemetry"
)

// Stats reports cache effectiveness counters.
type Stats struct {
	// Hits and Misses count lookup outcomes. For a Tiered cache, Hits
	// counts memory-tier hits and Misses counts keys absent from every
	// tier.
	Hits, Misses int64
	// Evictions counts entries displaced by the size bound.
	Evictions int64
	// AdmissionRejects counts candidates the TinyLFU filter refused to
	// admit because a resident victim was hotter.
	AdmissionRejects int64
	// Coalesced counts fills that piggybacked on another caller's
	// in-flight fetch of the same key instead of issuing their own.
	Coalesced int64
	// DiskHits counts lookups served from the disk tier.
	DiskHits int64
	// Entries is the current memory-tier entry count.
	Entries int
	// Bytes is the current memory-tier payload footprint.
	Bytes int64
	// DiskEntries and DiskBytes describe the disk tier, when enabled.
	DiskEntries int
	DiskBytes   int64
}

// HitRate returns the fraction of lookups served by any tier, or 0
// before any traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.DiskHits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.DiskHits) / float64(total)
}

// LRU is a least-recently-used block cache with a maximum total payload
// size. It is safe for concurrent use and satisfies idx.BlockCache.
// Payloads are held as ref-counted Blocks: Get returns the resident
// Block (shared, read-only) and Put adopts the caller's buffer instead
// of copying it.
type LRU struct {
	mu       sync.Mutex
	maxBytes int64
	ll       *list.List // front = most recent
	items    map[string]*list.Element
	pool     *bufPool
	sketch   *freqSketch // nil = no admission filter
	// onEvict observes size-bound evictions (disk spill). It is called
	// outside the cache lock while the cache still holds its reference;
	// a hook that needs the block past the call must Acquire it.
	onEvict func(key string, blk *Block)

	hits    atomic.Int64
	misses  atomic.Int64
	evicts  atomic.Int64
	rejects atomic.Int64
	entries atomic.Int64
	bytes   atomic.Int64
}

type entry struct {
	key string
	blk *Block
}

// NewLRU constructs a cache bounded to maxBytes of payload, with no
// admission filter. A bound <= 0 disables caching (all Gets miss without
// touching the counters, Puts are dropped), which keeps "no cache"
// configurations uniform in sweeps.
func NewLRU(maxBytes int64) *LRU {
	return newLRU(maxBytes, newBufPool(poolBuffersPerSize), false)
}

// poolBuffersPerSize bounds how many released buffers of each size the
// recycle pool retains.
const poolBuffersPerSize = 64

// newLRU is the internal constructor: Tiered shares one buffer pool
// across tiers and opts into TinyLFU admission.
func newLRU(maxBytes int64, pool *bufPool, admit bool) *LRU {
	c := &LRU{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		pool:     pool,
	}
	if admit && maxBytes > 0 {
		// Size the sketch for the plausible entry count assuming 64 KiB
		// blocks; newFreqSketch rounds up and floors the width.
		c.sketch = newFreqSketch(int(maxBytes / (64 << 10)))
	}
	return c
}

// Get returns the cached Block for key and marks it recently used. The
// Block is shared read-only memory carrying one reference for the
// caller, who must Release it when done. A disabled cache returns
// (nil, false) without counting a miss.
func (c *LRU) Get(key string) (*Block, bool) {
	if c.maxBytes <= 0 {
		return nil, false
	}
	blk, ok := c.lookup(key)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return blk, ok
}

// lookup is Get without the hit/miss accounting; Tiered layers its own
// counters on top.
func (c *LRU) lookup(key string) (*Block, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sketch != nil {
		c.sketch.touch(key)
	}
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	blk := el.Value.(*entry).blk
	blk.Acquire()
	return blk, true
}

// Put adopts data as an immutable Block, stores it under key, and
// returns the Block with one reference owned by the caller. Adoption is
// the zero-copy contract: the caller must not write to data after Put.
// The returned Block is valid even when insertion is skipped (disabled
// cache, oversized payload, admission reject), so callers can always
// read through it.
func (c *LRU) Put(key string, data []byte) *Block {
	blk := newPooledBlock(data, c.pool)
	c.PutBlock(key, blk)
	return blk
}

// PutBlock inserts an existing Block under key, acquiring its own
// reference on success. It reports false when the cache is disabled,
// the payload is oversized, or the admission filter refuses the key.
func (c *LRU) PutBlock(key string, blk *Block) bool {
	size := int64(blk.Len())
	if c.maxBytes <= 0 || size > c.maxBytes {
		return false
	}
	var old *Block
	var evicted []*entry
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		if e.blk != blk {
			old = e.blk
			blk.Acquire()
			c.bytes.Add(size - int64(old.Len()))
			e.blk = blk
		}
		c.ll.MoveToFront(el)
		c.trim(&evicted)
	} else {
		if !c.makeRoom(key, size, &evicted) {
			c.rejects.Add(1)
			c.mu.Unlock()
			c.finishEvictions(evicted)
			return false
		}
		blk.Acquire()
		c.items[key] = c.ll.PushFront(&entry{key: key, blk: blk})
		c.entries.Add(1)
		c.bytes.Add(size)
	}
	c.mu.Unlock()
	if old != nil {
		old.Release()
	}
	c.finishEvictions(evicted)
	return true
}

// makeRoom frees space for a size-byte insertion. With an admission
// sketch, the candidate must be estimated strictly hotter than every
// victim it would displace, else the insertion is rejected (scan
// resistance: a one-pass scan cannot flush the resident hot set).
// Admission is only consulted when the insertion would actually evict.
// Caller holds mu; evicted entries are appended for post-unlock
// handling.
func (c *LRU) makeRoom(key string, size int64, evicted *[]*entry) bool {
	need := c.bytes.Load() + size - c.maxBytes
	if need <= 0 {
		return true
	}
	if c.sketch != nil {
		cand := c.sketch.estimate(key)
		freed := int64(0)
		for el := c.ll.Back(); el != nil && freed < need; el = el.Prev() {
			e := el.Value.(*entry)
			if cand <= c.sketch.estimate(e.key) {
				return false
			}
			freed += int64(e.blk.Len())
		}
	}
	for c.bytes.Load()+size > c.maxBytes {
		if !c.evictOldest(evicted) {
			break
		}
	}
	return true
}

// trim evicts until the size bound holds (replacement grew an entry).
// Caller holds mu.
func (c *LRU) trim(evicted *[]*entry) {
	for c.bytes.Load() > c.maxBytes {
		if !c.evictOldest(evicted) {
			break
		}
	}
}

// evictOldest removes the least recently used entry. Caller holds mu.
func (c *LRU) evictOldest(evicted *[]*entry) bool {
	el := c.ll.Back()
	if el == nil {
		return false
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.entries.Add(-1)
	c.bytes.Add(-int64(e.blk.Len()))
	c.evicts.Add(1)
	*evicted = append(*evicted, e)
	return true
}

// finishEvictions runs the eviction hook and drops the cache's
// references, outside the lock so the hook (disk spill) cannot stall
// readers.
func (c *LRU) finishEvictions(evicted []*entry) {
	for _, e := range evicted {
		if c.onEvict != nil {
			c.onEvict(e.key, e.blk)
		}
		e.blk.Release()
	}
}

// Remove drops key from the cache if present (invalidation). The
// eviction hook is not called: invalidated data must not be spilled.
func (c *LRU) Remove(key string) {
	var blk *Block
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.ll.Remove(el)
		delete(c.items, key)
		c.entries.Add(-1)
		c.bytes.Add(-int64(e.blk.Len()))
		blk = e.blk
	}
	c.mu.Unlock()
	if blk != nil {
		blk.Release()
	}
}

// Clear empties the cache, keeping counters. Blocks still held by
// readers stay valid until those readers release them.
func (c *LRU) Clear() {
	c.mu.Lock()
	dropped := make([]*Block, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		dropped = append(dropped, el.Value.(*entry).blk)
	}
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.entries.Store(0)
	c.bytes.Store(0)
	c.mu.Unlock()
	for _, blk := range dropped {
		blk.Release()
	}
}

// Instrument registers the cache's counters with a telemetry registry,
// labelled with a cache name. Every series reads a lock-free atomic
// snapshot, so a scrape costs no mutex acquisitions and cannot contend
// with the read path:
//
//	nsdf_cache_hits_total{cache}       Get hits
//	nsdf_cache_misses_total{cache}     Get misses
//	nsdf_cache_evictions_total{cache}  size-bound evictions
//	nsdf_cache_entries{cache}          current entry count
//	nsdf_cache_bytes{cache}            current payload footprint
func (c *LRU) Instrument(reg *telemetry.Registry, name string) {
	reg.CounterFunc("nsdf_cache_hits_total",
		func() float64 { return float64(c.hits.Load()) }, "cache", name)
	reg.CounterFunc("nsdf_cache_misses_total",
		func() float64 { return float64(c.misses.Load()) }, "cache", name)
	reg.CounterFunc("nsdf_cache_evictions_total",
		func() float64 { return float64(c.evicts.Load()) }, "cache", name)
	reg.GaugeFunc("nsdf_cache_entries",
		func() float64 { return float64(c.entries.Load()) }, "cache", name)
	reg.GaugeFunc("nsdf_cache_bytes",
		func() float64 { return float64(c.bytes.Load()) }, "cache", name)
}

// Stats returns a snapshot of the cache counters. It reads atomics
// only, so it is safe to call from telemetry exposition at any rate.
func (c *LRU) Stats() Stats {
	return Stats{
		Hits:             c.hits.Load(),
		Misses:           c.misses.Load(),
		Evictions:        c.evicts.Load(),
		AdmissionRejects: c.rejects.Load(),
		Entries:          int(c.entries.Load()),
		Bytes:            c.bytes.Load(),
	}
}
