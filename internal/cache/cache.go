// Package cache provides the size-bounded, concurrency-safe LRU block
// cache behind the IDX streaming stack ("the caching-enabled framework
// also allows users to extract any rectangular subsets of the input data
// progressively"). Keys are block object names; values are decompressed
// block payloads.
package cache

import (
	"container/list"
	"sync"

	"nsdfgo/internal/telemetry"
)

// Stats reports cache effectiveness counters.
type Stats struct {
	// Hits and Misses count Get outcomes.
	Hits, Misses int64
	// Evictions counts entries displaced by the size bound.
	Evictions int64
	// Entries is the current entry count.
	Entries int
	// Bytes is the current payload footprint.
	Bytes int64
}

// HitRate returns Hits / (Hits+Misses), or 0 before any traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// LRU is a least-recently-used byte cache with a maximum total payload
// size. It is safe for concurrent use. It satisfies idx.BlockCache.
type LRU struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	ll       *list.List // front = most recent
	items    map[string]*list.Element
	hits     int64
	misses   int64
	evicts   int64
}

type entry struct {
	key  string
	data []byte
}

// NewLRU constructs a cache bounded to maxBytes of payload. A bound <= 0
// disables caching (all Gets miss, Puts are dropped), which keeps "no
// cache" configurations uniform in sweeps.
func NewLRU(maxBytes int64) *LRU {
	return &LRU{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Get returns the cached payload for key and marks it recently used.
// The returned slice is the cache's own storage and must be treated as
// read-only; Put copies, Get does not.
func (c *LRU) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).data, true
}

// Put stores a copy of the payload under key. Payloads larger than the
// whole cache are ignored. Copying decouples the cache from the caller:
// a writer that keeps scribbling on its buffer after Put (block
// read-modify-write paths do) cannot corrupt cached contents. Get still
// returns the stored slice by reference, so Get callers must treat the
// payload as read-only.
func (c *LRU) Put(key string, data []byte) {
	if c.maxBytes <= 0 || int64(len(data)) > c.maxBytes {
		return
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		old := el.Value.(*entry)
		c.curBytes += int64(len(cp)) - int64(len(old.data))
		old.data = cp
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&entry{key: key, data: cp})
		c.items[key] = el
		c.curBytes += int64(len(cp))
	}
	for c.curBytes > c.maxBytes {
		c.evictOldest()
	}
}

// evictOldest removes the least recently used entry. Caller holds mu.
func (c *LRU) evictOldest() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.curBytes -= int64(len(e.data))
	c.evicts++
}

// Remove drops key from the cache if present.
func (c *LRU) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.ll.Remove(el)
		delete(c.items, key)
		c.curBytes -= int64(len(e.data))
	}
}

// Clear empties the cache, keeping counters.
func (c *LRU) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.curBytes = 0
}

// Instrument registers the cache's counters with a telemetry registry,
// labelled with a cache name. The series are read live at exposition
// time, so there is no per-operation overhead beyond the existing
// counters:
//
//	nsdf_cache_hits_total{cache}       Get hits
//	nsdf_cache_misses_total{cache}     Get misses
//	nsdf_cache_evictions_total{cache}  size-bound evictions
//	nsdf_cache_entries{cache}          current entry count
//	nsdf_cache_bytes{cache}            current payload footprint
func (c *LRU) Instrument(reg *telemetry.Registry, name string) {
	reg.CounterFunc("nsdf_cache_hits_total",
		func() float64 { return float64(c.Stats().Hits) }, "cache", name)
	reg.CounterFunc("nsdf_cache_misses_total",
		func() float64 { return float64(c.Stats().Misses) }, "cache", name)
	reg.CounterFunc("nsdf_cache_evictions_total",
		func() float64 { return float64(c.Stats().Evictions) }, "cache", name)
	reg.GaugeFunc("nsdf_cache_entries",
		func() float64 { return float64(c.Stats().Entries) }, "cache", name)
	reg.GaugeFunc("nsdf_cache_bytes",
		func() float64 { return float64(c.Stats().Bytes) }, "cache", name)
}

// Stats returns a snapshot of the cache counters.
func (c *LRU) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evicts,
		Entries:   len(c.items),
		Bytes:     c.curBytes,
	}
}
