package cache_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nsdfgo/internal/cache"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/raster"
)

// This file is the cache acceptance harness: it measures the zero-copy
// hit path (must be allocation-free), fetch coalescing under concurrent
// readers (the duplicate-fetch bug this PR fixes), and TinyLFU admission
// under a zipfian+scan mix, then writes BENCH_cache.json. The baseline_*
// numbers embedded below were recorded on this machine against the
// pre-change copying LRU with no coalescing, using byte-identical
// workload shapes, so the JSON is a self-contained before/after record.

// Pre-change baselines (copying LRU, no flight coalescing), recorded
// with the exact harness shapes below: 1024x1024 float32 dataset,
// 2^14-sample blocks (64 blocks), MemBackend with 2ms Get latency,
// GOMAXPROCS=4, fetch parallelism 8.
const (
	baselineColdNsPerOp       = 142669651.0 // 4 readers x 3 full reads, cold cache
	baselineColdBackendGets   = 81          // 64 unique blocks: 17 duplicate fetches
	baselineWarmNsPerOp       = 32027811.0  // same readers, warm cache
	baselineStormNsPerOp      = 2248672.0   // 8 readers x coarse preview, cleared between rounds
	baselineStormGetsPerRound = 23.3        // 4 unique blocks: 5.8x fetch amplification
)

const (
	benchSide       = 1024
	benchBlockBits  = 14
	benchUniqueBlks = 64
)

// delayBackend wraps MemBackend with fixed per-Get latency and an atomic
// Get counter, both armed only after dataset setup so writes stay fast.
type delayBackend struct {
	*idx.MemBackend
	delay time.Duration
	armed atomic.Bool
	gets  atomic.Int64
}

func (d *delayBackend) Get(ctx context.Context, name string) ([]byte, error) {
	if d.armed.Load() {
		d.gets.Add(1)
		time.Sleep(d.delay)
	}
	return d.MemBackend.Get(ctx, name)
}

func newCacheBenchDataset(t *testing.T) (*idx.Dataset, *delayBackend) {
	t.Helper()
	meta, err := idx.NewMeta([]int{benchSide, benchSide}, []idx.Field{{Name: "v", Type: idx.Float32}})
	if err != nil {
		t.Fatal(err)
	}
	meta.BitsPerBlock = benchBlockBits
	be := &delayBackend{MemBackend: idx.NewMemBackend(), delay: 2 * time.Millisecond}
	ds, err := idx.Create(context.Background(), be, meta)
	if err != nil {
		t.Fatal(err)
	}
	g := raster.New(benchSide, benchSide)
	for i := range g.Data {
		g.Data[i] = float32(i)
	}
	if err := ds.WriteGrid(context.Background(), "v", 0, g); err != nil {
		t.Fatal(err)
	}
	ds.SetFetchParallelism(8)
	be.armed.Store(true)
	return ds, be
}

// readFull runs one full-resolution ReadBox and fails the test on error.
func readFull(t *testing.T, ds *idx.Dataset, level int) {
	t.Helper()
	if _, _, err := ds.ReadBox(context.Background(), "v", 0, ds.FullBox(), level); err != nil {
		t.Fatal(err)
	}
}

// concurrently runs fn from n goroutines with a start barrier and waits.
func concurrently(n int, fn func(i int)) time.Duration {
	var start, wg sync.WaitGroup
	start.Add(1)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			start.Wait()
			fn(i)
		}(i)
	}
	t0 := time.Now()
	start.Done()
	wg.Wait()
	return time.Since(t0)
}

func TestBenchCacheEmit(t *testing.T) {
	iters, _ := strconv.Atoi(os.Getenv("NSDF_BENCH_CACHE_ITERS"))
	if iters <= 0 {
		t.Skip("set NSDF_BENCH_CACHE_ITERS>=1 to run the cache benchmark emitter")
	}
	smoke := iters == 1
	outPath := os.Getenv("NSDF_BENCH_CACHE_OUT")
	if outPath == "" {
		outPath = t.TempDir() + "/BENCH_cache.json"
	}
	prev := runtime.GOMAXPROCS(4) // concurrency results must not depend on the host's core count
	defer runtime.GOMAXPROCS(prev)

	// --- Hit path: Get on a resident block must not allocate or copy. ---
	hc := cache.NewMemTiered(1 << 20)
	hc.Put("key", make([]byte, 64<<10)).Release()
	hitN := 200000
	if smoke {
		hitN = 1000
	}
	for i := 0; i < 1000; i++ { // warm-up
		blk, _ := hc.Get("key")
		blk.Release()
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	for i := 0; i < hitN; i++ {
		blk, _ := hc.Get("key")
		blk.Release()
	}
	hitNs := float64(time.Since(t0).Nanoseconds()) / float64(hitN)
	runtime.ReadMemStats(&after)
	hitAllocs := float64(after.Mallocs-before.Mallocs) / float64(hitN)

	parElapsed := concurrently(4, func(int) {
		for i := 0; i < hitN/4; i++ {
			blk, _ := hc.Get("key")
			blk.Release()
		}
	})
	parHitNs := float64(parElapsed.Nanoseconds()) / float64(hitN)

	// --- Concurrent full reads: cold then warm, 4 readers. ---
	ds, be := newCacheBenchDataset(t)
	c := cache.NewMemTiered(256 << 20)
	ds.SetCache(c)
	level := ds.Meta.MaxLevel()
	coldIters, warmIters := 3, 10
	if smoke {
		coldIters, warmIters = 1, 1
	}
	be.gets.Store(0)
	coldElapsed := concurrently(4, func(int) {
		for i := 0; i < coldIters; i++ {
			readFull(t, ds, level)
		}
	})
	coldNs := float64(coldElapsed.Nanoseconds()) / float64(4*coldIters)
	coldGets := be.gets.Load()

	be.gets.Store(0)
	warmElapsed := concurrently(4, func(int) {
		for i := 0; i < warmIters; i++ {
			readFull(t, ds, level)
		}
	})
	warmNs := float64(warmElapsed.Nanoseconds()) / float64(4*warmIters)
	warmGets := be.gets.Load()

	// --- Preview storm: 8 readers racing a coarse preview on a cold
	// cache, repeated with the cache cleared between rounds. This is the
	// duplicate-fetch reproduction: pre-change, 8 readers fetched the 4
	// coarse blocks 23.3 times per round. ---
	rounds := 10 * iters
	if smoke {
		rounds = 2
	}
	coarse := level - 4
	statsBefore := c.Stats()
	be.gets.Store(0)
	var stormElapsed time.Duration
	for r := 0; r < rounds; r++ {
		c.Clear()
		stormElapsed += concurrently(8, func(int) {
			readFull(t, ds, coarse)
		})
	}
	stormNs := float64(stormElapsed.Nanoseconds()) / float64(8*rounds)
	stormGetsPerRound := float64(be.gets.Load()) / float64(rounds)
	stormCoalesced := c.Stats().Coalesced - statsBefore.Coalesced

	// --- Admission A/B: zipfian working set plus a cold sequential scan,
	// on a cache holding ~25% of the hot keys. TinyLFU admission should
	// keep the scan from flushing the hot set. ---
	admSteps := 40000
	if smoke {
		admSteps = 2000
	}
	runAdmission := func(opts cache.Options) cache.Stats {
		ac, err := cache.NewTiered(opts)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(1))
		zipf := rand.NewZipf(rng, 1.2, 1, 1023)
		payload := func() []byte { return make([]byte, 4096) }
		scanNext := 0
		for i := 0; i < admSteps; i++ {
			var key string
			if i%10 == 9 { // every 10th access is a cold scan key
				key = "scan" + strconv.Itoa(scanNext)
				scanNext++
			} else {
				key = "hot" + strconv.FormatUint(zipf.Uint64(), 10)
			}
			blk, _, err := ac.GetOrFill(context.Background(), key, func(context.Context) ([]byte, error) {
				return payload(), nil
			})
			if err != nil {
				t.Fatal(err)
			}
			blk.Release()
		}
		return ac.Stats()
	}
	admStats := runAdmission(cache.Options{MemBytes: 1 << 20}) // 256 x 4KiB entries
	noAdmStats := runAdmission(cache.Options{MemBytes: 1 << 20, NoAdmission: true})

	doc := struct {
		Description string `json:"description"`
		Dataset     string `json:"dataset"`
		GOMAXPROCS  int    `json:"gomaxprocs"`
		Iters       int    `json:"iterations"`
		HitPath     struct {
			NsPerOp          float64 `json:"ns_per_op"`
			AllocsPerOp      float64 `json:"allocs_per_op"`
			Parallel4NsPerOp float64 `json:"parallel4_ns_per_op"`
		} `json:"hit_path"`
		ConcurrentRead struct {
			ColdNsPerOp         float64 `json:"cold_ns_per_op"`
			BaselineColdNsPerOp float64 `json:"baseline_cold_ns_per_op"`
			ColdBackendGets     int64   `json:"cold_backend_gets"`
			BaselineColdGets    int64   `json:"baseline_cold_backend_gets"`
			UniqueBlocks        int     `json:"unique_blocks"`
			WarmNsPerOp         float64 `json:"warm_ns_per_op"`
			BaselineWarmNsPerOp float64 `json:"baseline_warm_ns_per_op"`
			WarmBackendGets     int64   `json:"warm_backend_gets"`
		} `json:"concurrent_read"`
		PreviewStorm struct {
			NsPerOp              float64 `json:"ns_per_op"`
			BaselineNsPerOp      float64 `json:"baseline_ns_per_op"`
			GetsPerRound         float64 `json:"gets_per_round"`
			BaselineGetsPerRound float64 `json:"baseline_gets_per_round"`
			CoalescedFetches     int64   `json:"coalesced_fetches"`
			Readers              int     `json:"readers"`
			Rounds               int     `json:"rounds"`
		} `json:"preview_storm"`
		Admission struct {
			HitRate          float64 `json:"zipf_scan_hit_rate"`
			NoAdmissionRate  float64 `json:"zipf_scan_hit_rate_no_admission"`
			AdmissionRejects int64   `json:"admission_rejects"`
			Steps            int     `json:"steps"`
		} `json:"admission"`
	}{
		Description: "Tiered block cache: zero-copy hit path, fetch coalescing under concurrent readers, and TinyLFU admission vs plain LRU. baseline_* fields were recorded pre-change (copying LRU, no coalescing) with identical workload shapes. Regenerate with `make bench-cache`.",
		Dataset:     "1024x1024 float32, 2^14-sample blocks (64 blocks), MemBackend with 2ms Get latency, fetch parallelism 8",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Iters:       iters,
	}
	doc.HitPath.NsPerOp = hitNs
	doc.HitPath.AllocsPerOp = hitAllocs
	doc.HitPath.Parallel4NsPerOp = parHitNs
	doc.ConcurrentRead.ColdNsPerOp = coldNs
	doc.ConcurrentRead.BaselineColdNsPerOp = baselineColdNsPerOp
	doc.ConcurrentRead.ColdBackendGets = coldGets
	doc.ConcurrentRead.BaselineColdGets = baselineColdBackendGets
	doc.ConcurrentRead.UniqueBlocks = benchUniqueBlks
	doc.ConcurrentRead.WarmNsPerOp = warmNs
	doc.ConcurrentRead.BaselineWarmNsPerOp = baselineWarmNsPerOp
	doc.ConcurrentRead.WarmBackendGets = warmGets
	doc.PreviewStorm.NsPerOp = stormNs
	doc.PreviewStorm.BaselineNsPerOp = baselineStormNsPerOp
	doc.PreviewStorm.GetsPerRound = stormGetsPerRound
	doc.PreviewStorm.BaselineGetsPerRound = baselineStormGetsPerRound
	doc.PreviewStorm.CoalescedFetches = stormCoalesced
	doc.PreviewStorm.Readers = 8
	doc.PreviewStorm.Rounds = rounds
	doc.Admission.HitRate = admStats.HitRate()
	doc.Admission.NoAdmissionRate = noAdmStats.HitRate()
	doc.Admission.AdmissionRejects = admStats.AdmissionRejects
	doc.Admission.Steps = admSteps

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("hit path %.1fns/op (%.2f allocs), cold %d gets for %d blocks, storm %.1f gets/round (baseline %.1f), admission hit rate %.3f vs %.3f without",
		hitNs, hitAllocs, coldGets, benchUniqueBlks, stormGetsPerRound, baselineStormGetsPerRound,
		admStats.HitRate(), noAdmStats.HitRate())
	t.Logf("wrote %s", outPath)

	// Acceptance gates (skipped in smoke mode, where shapes are truncated).
	if hitAllocs != 0 {
		t.Errorf("cache-hit path allocates %.2f per op, want 0", hitAllocs)
	}
	if !smoke {
		if warmGets != 0 {
			t.Errorf("warm phase hit the backend %d times, want 0", warmGets)
		}
		if stormGetsPerRound >= baselineStormGetsPerRound {
			t.Errorf("preview storm still amplifies fetches: %.1f gets/round (pre-change %.1f)",
				stormGetsPerRound, baselineStormGetsPerRound)
		}
	}
}
