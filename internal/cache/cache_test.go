package cache

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestGetPut(t *testing.T) {
	c := NewLRU(1024)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache hit")
	}
	c.Put("a", []byte("hello"))
	got, ok := c.Get("a")
	if !ok || string(got) != "hello" {
		t.Errorf("Get = %q, %v", got, ok)
	}
}

func TestEvictionBySize(t *testing.T) {
	c := NewLRU(10)
	c.Put("a", []byte("12345"))
	c.Put("b", []byte("12345"))
	c.Put("c", []byte("1")) // evicts a (oldest)
	if _, ok := c.Get("a"); ok {
		t.Error("a not evicted")
	}
	if _, ok := c.Get("b"); !ok {
		t.Error("b evicted prematurely")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("c missing")
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Errorf("evictions = %d", s.Evictions)
	}
	if s.Bytes != 6 {
		t.Errorf("bytes = %d", s.Bytes)
	}
}

func TestLRUOrderRefreshedByGet(t *testing.T) {
	c := NewLRU(10)
	c.Put("a", []byte("12345"))
	c.Put("b", []byte("12345"))
	c.Get("a")                // a becomes most recent
	c.Put("c", []byte("1id")) // evicts b
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used a evicted")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
}

func TestUpdateExistingKey(t *testing.T) {
	c := NewLRU(100)
	c.Put("k", []byte("aaaa"))
	c.Put("k", []byte("bb"))
	got, ok := c.Get("k")
	if !ok || string(got) != "bb" {
		t.Errorf("updated value = %q", got)
	}
	if s := c.Stats(); s.Bytes != 2 || s.Entries != 1 {
		t.Errorf("stats after update: %+v", s)
	}
}

func TestOversizePayloadIgnored(t *testing.T) {
	c := NewLRU(4)
	c.Put("big", []byte("123456789"))
	if _, ok := c.Get("big"); ok {
		t.Error("oversize payload cached")
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := NewLRU(0)
	c.Put("a", []byte("x"))
	if _, ok := c.Get("a"); ok {
		t.Error("zero-capacity cache stored data")
	}
}

func TestRemoveAndClear(t *testing.T) {
	c := NewLRU(100)
	c.Put("a", []byte("1"))
	c.Put("b", []byte("2"))
	c.Remove("a")
	if _, ok := c.Get("a"); ok {
		t.Error("removed key present")
	}
	c.Remove("missing") // no-op
	c.Clear()
	if _, ok := c.Get("b"); ok {
		t.Error("cleared key present")
	}
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Errorf("stats after clear: %+v", s)
	}
}

func TestStatsCounters(t *testing.T) {
	c := NewLRU(100)
	c.Put("a", []byte("1"))
	c.Get("a")
	c.Get("a")
	c.Get("x")
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Errorf("hits=%d misses=%d", s.Hits, s.Misses)
	}
	if r := s.HitRate(); r < 0.66 || r > 0.67 {
		t.Errorf("hit rate %v", r)
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty hit rate not 0")
	}
}

func TestBytesInvariantProperty(t *testing.T) {
	// After any sequence of puts, tracked bytes equals the sum of live
	// entries and never exceeds the bound.
	f := func(ops []uint16) bool {
		c := NewLRU(64)
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%16)
			size := int(op % 20)
			c.Put(key, make([]byte, size))
		}
		s := c.Stats()
		if s.Bytes > 64 {
			return false
		}
		var total int64
		c.mu.Lock()
		for _, el := range c.items {
			total += int64(len(el.Value.(*entry).data))
		}
		c.mu.Unlock()
		return total == s.Bytes && len(c.items) == s.Entries
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := NewLRU(1 << 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%64)
				if i%3 == 0 {
					c.Put(key, make([]byte, 32))
				} else {
					c.Get(key)
				}
			}
		}(w)
	}
	wg.Wait()
	if s := c.Stats(); s.Bytes < 0 {
		t.Errorf("negative bytes: %+v", s)
	}
}

func BenchmarkGetHit(b *testing.B) {
	c := NewLRU(1 << 20)
	c.Put("key", make([]byte, 4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Get("key")
	}
}

func BenchmarkPutEvict(b *testing.B) {
	c := NewLRU(1 << 16)
	payload := make([]byte, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Put(fmt.Sprintf("k%d", i), payload)
	}
}

// TestPutCopiesPayload guards the block-aliasing contract: a caller that
// keeps mutating its buffer after Put (read-modify-write paths do) must
// not be able to alter cached contents.
func TestPutCopiesPayload(t *testing.T) {
	c := NewLRU(1 << 20)
	buf := []byte{1, 2, 3, 4}
	c.Put("k", buf)
	buf[0] = 99
	got, ok := c.Get("k")
	if !ok {
		t.Fatal("entry missing")
	}
	if got[0] != 1 {
		t.Fatalf("cached payload mutated through caller's slice: got %v", got)
	}

	// Replacing an existing key must also decouple from the new buffer.
	buf2 := []byte{5, 6, 7, 8}
	c.Put("k", buf2)
	buf2[3] = 0
	got, _ = c.Get("k")
	if got[3] != 8 {
		t.Fatalf("replacement payload mutated through caller's slice: got %v", got)
	}
}
