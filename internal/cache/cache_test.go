package cache

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

// getString is a test helper: Get, copy the payload out, Release.
func getString(t testing.TB, c *LRU, key string) (string, bool) {
	t.Helper()
	blk, ok := c.Get(key)
	if !ok {
		return "", false
	}
	s := string(blk.Bytes())
	blk.Release()
	return s, true
}

// put is a test helper: Put and immediately drop the caller reference.
func put(c *LRU, key string, data []byte) {
	c.Put(key, data).Release()
}

func TestGetPut(t *testing.T) {
	c := NewLRU(1024)
	if _, ok := c.Get("a"); ok {
		t.Error("empty cache hit")
	}
	put(c, "a", []byte("hello"))
	got, ok := getString(t, c, "a")
	if !ok || got != "hello" {
		t.Errorf("Get = %q, %v", got, ok)
	}
}

func TestEvictionBySize(t *testing.T) {
	c := NewLRU(10)
	put(c, "a", []byte("12345"))
	put(c, "b", []byte("12345"))
	put(c, "c", []byte("1")) // evicts a (oldest)
	if _, ok := c.Get("a"); ok {
		t.Error("a not evicted")
	}
	if blk, ok := c.Get("b"); !ok {
		t.Error("b evicted prematurely")
	} else {
		blk.Release()
	}
	if blk, ok := c.Get("c"); !ok {
		t.Error("c missing")
	} else {
		blk.Release()
	}
	s := c.Stats()
	if s.Evictions != 1 {
		t.Errorf("evictions = %d", s.Evictions)
	}
	if s.Bytes != 6 {
		t.Errorf("bytes = %d", s.Bytes)
	}
}

func TestLRUOrderRefreshedByGet(t *testing.T) {
	c := NewLRU(10)
	put(c, "a", []byte("12345"))
	put(c, "b", []byte("12345"))
	if blk, ok := c.Get("a"); ok { // a becomes most recent
		blk.Release()
	}
	put(c, "c", []byte("1id")) // evicts b
	if _, ok := getString(t, c, "a"); !ok {
		t.Error("recently used a evicted")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
}

func TestUpdateExistingKey(t *testing.T) {
	c := NewLRU(100)
	put(c, "k", []byte("aaaa"))
	put(c, "k", []byte("bb"))
	got, ok := getString(t, c, "k")
	if !ok || got != "bb" {
		t.Errorf("updated value = %q", got)
	}
	if s := c.Stats(); s.Bytes != 2 || s.Entries != 1 {
		t.Errorf("stats after update: %+v", s)
	}
}

func TestOversizePayloadIgnored(t *testing.T) {
	c := NewLRU(4)
	blk := c.Put("big", []byte("123456789"))
	// The caller can still read through the returned block even though
	// the cache declined the entry.
	if string(blk.Bytes()) != "123456789" {
		t.Errorf("declined Put returned wrong payload %q", blk.Bytes())
	}
	blk.Release()
	if _, ok := c.Get("big"); ok {
		t.Error("oversize payload cached")
	}
}

// TestDisabledCacheCountsNothing is the regression test for the
// disabled-cache telemetry bug: a NewLRU(0) cache used to count a miss
// on every Get, so nsdf_cache_misses_total reported traffic for a cache
// that is off.
func TestDisabledCacheCountsNothing(t *testing.T) {
	c := NewLRU(0)
	put(c, "a", []byte("x"))
	if _, ok := c.Get("a"); ok {
		t.Error("zero-capacity cache stored data")
	}
	for i := 0; i < 5; i++ {
		c.Get("a")
	}
	s := c.Stats()
	if s.Hits != 0 || s.Misses != 0 {
		t.Errorf("disabled cache counted traffic: hits=%d misses=%d", s.Hits, s.Misses)
	}
	if s.HitRate() != 0 {
		t.Errorf("disabled cache hit rate = %v", s.HitRate())
	}
}

func TestRemoveAndClear(t *testing.T) {
	c := NewLRU(100)
	put(c, "a", []byte("1"))
	put(c, "b", []byte("2"))
	c.Remove("a")
	if _, ok := c.Get("a"); ok {
		t.Error("removed key present")
	}
	c.Remove("missing") // no-op
	c.Clear()
	if _, ok := c.Get("b"); ok {
		t.Error("cleared key present")
	}
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Errorf("stats after clear: %+v", s)
	}
}

func TestStatsCounters(t *testing.T) {
	c := NewLRU(100)
	put(c, "a", []byte("1"))
	getString(t, c, "a")
	getString(t, c, "a")
	c.Get("x")
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Errorf("hits=%d misses=%d", s.Hits, s.Misses)
	}
	if r := s.HitRate(); r < 0.66 || r > 0.67 {
		t.Errorf("hit rate %v", r)
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty hit rate not 0")
	}
}

func TestBytesInvariantProperty(t *testing.T) {
	// After any sequence of puts, tracked bytes equals the sum of live
	// entries and never exceeds the bound.
	f := func(ops []uint16) bool {
		c := NewLRU(64)
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%16)
			size := int(op % 20)
			put(c, key, make([]byte, size))
		}
		s := c.Stats()
		if s.Bytes > 64 {
			return false
		}
		var total int64
		c.mu.Lock()
		for _, el := range c.items {
			total += int64(el.Value.(*entry).blk.Len())
		}
		c.mu.Unlock()
		return total == s.Bytes && len(c.items) == s.Entries
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGetHit(b *testing.B) {
	c := NewLRU(1 << 20)
	put(c, "key", make([]byte, 4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk, _ := c.Get("key")
		blk.Release()
	}
}

func BenchmarkPutEvict(b *testing.B) {
	c := NewLRU(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		put(c, fmt.Sprintf("k%d", i), make([]byte, 1024))
	}
}

// TestPutAdoptsBuffer guards the zero-copy contract: Put adopts the
// caller's buffer (no copy), and Get returns the same backing storage.
func TestPutAdoptsBuffer(t *testing.T) {
	c := NewLRU(1 << 20)
	buf := []byte{1, 2, 3, 4}
	blk := c.Put("k", buf)
	if &blk.Bytes()[0] != &buf[0] {
		t.Fatal("Put copied the payload instead of adopting it")
	}
	blk.Release()
	got, ok := c.Get("k")
	if !ok {
		t.Fatal("entry missing")
	}
	if &got.Bytes()[0] != &buf[0] {
		t.Fatal("Get returned a copy instead of the shared buffer")
	}
	got.Release()
}

// TestEvictedBlockSurvivesWhileHeld is the refcount safety property: a
// reader holding a Block keeps its buffer alive across eviction, and
// the buffer is recycled only after the last reference drops.
func TestEvictedBlockSurvivesWhileHeld(t *testing.T) {
	c := NewLRU(8)
	payload := []byte{10, 20, 30, 40}
	c.Put("a", payload).Release()
	held, ok := c.Get("a")
	if !ok {
		t.Fatal("a missing")
	}
	// Evict a while the reader still holds it.
	put(c, "b", make([]byte, 8))
	if _, ok := c.Get("a"); ok {
		t.Fatal("a not evicted")
	}
	if held.refCount() != 1 {
		t.Fatalf("held block refcount = %d, want 1 (reader only)", held.refCount())
	}
	// The buffer must not have been recycled into the pool while the
	// reader still holds it.
	if got := c.pool.get(4); got != nil {
		t.Fatal("evicted buffer recycled while a reader still held it")
	}
	for i, want := range []byte{10, 20, 30, 40} {
		if held.Bytes()[i] != want {
			t.Fatalf("held data corrupted at %d: %d", i, held.Bytes()[i])
		}
	}
	held.Release()
	// Now fully released, the buffer goes back to the pool and the next
	// same-size request reuses it.
	if got := c.pool.get(4); got == nil || &got[0] != &payload[0] {
		t.Fatal("released buffer not recycled into the pool")
	}
}

func TestBlockOverReleasePanics(t *testing.T) {
	blk := NewBlock([]byte{1})
	blk.Release()
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	blk.Release()
}

func TestBlockAcquireAfterReleasePanics(t *testing.T) {
	blk := NewBlock([]byte{1})
	blk.Release()
	defer func() {
		if recover() == nil {
			t.Error("acquire-after-release did not panic")
		}
	}()
	blk.Acquire()
}

func TestFreqSketch(t *testing.T) {
	s := newFreqSketch(1024)
	if got := s.estimate("cold"); got != 0 {
		t.Errorf("untouched estimate = %d", got)
	}
	s.touch("hot") // doorkeeper only
	if got := s.estimate("hot"); got != 1 {
		t.Errorf("after 1 touch estimate = %d", got)
	}
	for i := 0; i < 10; i++ {
		s.touch("hot")
	}
	if got := s.estimate("hot"); got < 5 {
		t.Errorf("after 11 touches estimate = %d", got)
	}
	hot := s.estimate("hot")
	s.reset()
	if got := s.estimate("hot"); got >= hot {
		t.Errorf("reset did not age: %d -> %d", hot, got)
	}
}

// TestLRUStressRace exercises concurrent mixed Get/Put/Remove/Clear
// under -race, with payload verification to catch any buffer recycled
// while still referenced.
func TestLRUStressRace(t *testing.T) {
	c := NewLRU(4 << 10) // small: constant eviction + pool churn
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := (w*31 + i) % 32
				key := fmt.Sprintf("k%d", k)
				switch i % 7 {
				case 0, 1, 2:
					if blk, ok := c.Get(key); ok {
						for _, b := range blk.Bytes() {
							if b != byte(k) {
								t.Errorf("key %s served foreign payload %d", key, b)
								break
							}
						}
						blk.Release()
					}
				case 3, 4, 5:
					data := make([]byte, 64+k)
					for j := range data {
						data[j] = byte(k)
					}
					c.Put(key, data).Release()
				case 6:
					if i%35 == 6 {
						c.Clear()
					} else {
						c.Remove(key)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if s := c.Stats(); s.Bytes < 0 || s.Entries < 0 {
		t.Errorf("corrupt stats: %+v", s)
	}
}
