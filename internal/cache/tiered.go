package cache

import (
	"context"
	"sync/atomic"

	"nsdfgo/internal/telemetry"
)

// Options configures a Tiered cache.
type Options struct {
	// MemBytes bounds the in-memory tier's payload footprint; <= 0
	// disables the memory tier.
	MemBytes int64
	// DiskDir, when non-empty, enables a disk tier rooted at that
	// directory (wiped at startup). Memory evictions spill there and
	// disk hits are promoted back into memory.
	DiskDir string
	// DiskBytes bounds the disk tier's payload footprint.
	DiskBytes int64
	// NoAdmission disables the TinyLFU admission filter on the memory
	// tier (admit everything, plain LRU replacement). Used for A/B
	// benchmarking; production configurations keep admission on.
	NoAdmission bool
}

// Outcome reports how GetOrFill satisfied a request.
type Outcome int

const (
	// OutcomeFilled means this caller ran the fill (backend fetch).
	OutcomeFilled Outcome = iota
	// OutcomeHit means the memory tier had the block.
	OutcomeHit
	// OutcomeDiskHit means the disk tier had the block.
	OutcomeDiskHit
	// OutcomeCoalesced means the caller piggybacked on another caller's
	// in-flight fill of the same key.
	OutcomeCoalesced
)

// String names the outcome for traces and logs.
func (o Outcome) String() string {
	switch o {
	case OutcomeFilled:
		return "filled"
	case OutcomeHit:
		return "hit"
	case OutcomeDiskHit:
		return "disk_hit"
	case OutcomeCoalesced:
		return "coalesced"
	}
	return "unknown"
}

// Tiered is the full block cache: an in-memory LRU with TinyLFU
// admission, an optional disk tier below it, and singleflight request
// coalescing so N concurrent misses on one key cost one backend fetch.
// It satisfies idx.BlockCache and idx.FillerCache. A Tiered with no
// memory bound and no disk dir is fully disabled: lookups miss without
// counting and fills run uncoalesced, keeping "no cache" sweep
// configurations uniform.
type Tiered struct {
	mem     *LRU
	disk    *diskTier
	flights *flightGroup
	pool    *bufPool

	hits      atomic.Int64
	misses    atomic.Int64
	diskHits  atomic.Int64
	coalesced atomic.Int64
}

// NewMemTiered builds a memory-only tiered cache (coalescing and
// admission, no disk tier); unlike NewTiered it cannot fail. memBytes
// <= 0 disables caching.
func NewMemTiered(memBytes int64) *Tiered {
	pool := newBufPool(poolBuffersPerSize)
	return &Tiered{
		mem:     newLRU(memBytes, pool, true),
		flights: newFlightGroup(),
		pool:    pool,
	}
}

// NewTiered builds a tiered cache from opts. It fails only when the
// disk tier directory cannot be prepared.
func NewTiered(opts Options) (*Tiered, error) {
	pool := newBufPool(poolBuffersPerSize)
	t := &Tiered{
		mem:     newLRU(opts.MemBytes, pool, !opts.NoAdmission),
		flights: newFlightGroup(),
		pool:    pool,
	}
	if opts.DiskDir != "" && opts.DiskBytes > 0 {
		disk, err := newDiskTier(opts.DiskDir, opts.DiskBytes, pool)
		if err != nil {
			return nil, err
		}
		t.disk = disk
		t.mem.onEvict = func(key string, blk *Block) {
			disk.put(key, blk.Bytes())
		}
	}
	return t, nil
}

// enabled reports whether any tier can hold data.
func (t *Tiered) enabled() bool {
	return t.mem.maxBytes > 0 || t.disk != nil
}

// lookupTiers checks memory then disk, counting the hit and promoting
// disk hits into memory (subject to admission). The returned Block
// carries one caller reference.
func (t *Tiered) lookupTiers(key string) (*Block, Outcome, bool) {
	if blk, ok := t.mem.lookup(key); ok {
		t.hits.Add(1)
		return blk, OutcomeHit, true
	}
	if t.disk != nil {
		if data, ok := t.disk.get(key); ok {
			t.diskHits.Add(1)
			blk := newPooledBlock(data, t.pool)
			t.mem.PutBlock(key, blk)
			return blk, OutcomeDiskHit, true
		}
	}
	return nil, OutcomeFilled, false
}

// Get returns the cached Block for key from any tier. The Block carries
// one reference owned by the caller. A fully disabled cache returns
// (nil, false) without counting a miss.
func (t *Tiered) Get(key string) (*Block, bool) {
	if !t.enabled() {
		return nil, false
	}
	blk, _, ok := t.lookupTiers(key)
	if !ok {
		t.misses.Add(1)
	}
	return blk, ok
}

// Peek is Get without the miss accounting. The idx read paths probe
// every block in an assembly pre-pass and then route the misses through
// GetOrFill, which books the authoritative miss when a fill actually
// runs; a counted Get in the pre-pass would double-count every cold
// block. Hits (memory or disk) still count — they are real serves.
func (t *Tiered) Peek(key string) (*Block, bool) {
	if !t.enabled() {
		return nil, false
	}
	blk, _, ok := t.lookupTiers(key)
	return blk, ok
}

// Put adopts data as an immutable Block, offers it to the memory tier,
// and returns the Block with one caller reference (valid even when the
// cache declines it). The caller must not write to data after Put.
func (t *Tiered) Put(key string, data []byte) *Block {
	blk := newPooledBlock(data, t.pool)
	t.mem.PutBlock(key, blk)
	return blk
}

// GetOrFill returns the Block for key, running fill at most once across
// all concurrent callers of the same key: the first caller fetches,
// everyone else waits for that result (request coalescing). On success
// the Block carries one reference owned by the caller. fill receives
// the leader's ctx; a waiter whose own ctx expires mid-flight returns
// its ctx error without cancelling the shared fetch.
func (t *Tiered) GetOrFill(ctx context.Context, key string, fill func(ctx context.Context) ([]byte, error)) (*Block, Outcome, error) {
	if !t.enabled() {
		// Disabled caches do not coalesce either, so "no cache" sweep
		// runs measure the raw backend.
		data, err := fill(ctx)
		if err != nil {
			return nil, OutcomeFilled, err
		}
		return newPooledBlock(data, t.pool), OutcomeFilled, nil
	}
	if blk, outcome, ok := t.lookupTiers(key); ok {
		return blk, outcome, nil
	}
	blk, shared, err := t.flights.do(ctx, key, func() (*Block, error) {
		// Double-check under the flight: a previous flight or a writer
		// may have populated the key after our miss.
		if blk, _, ok := t.lookupTiers(key); ok {
			return blk, nil
		}
		t.misses.Add(1)
		data, err := fill(ctx)
		if err != nil {
			return nil, err
		}
		blk := newPooledBlock(data, t.pool)
		t.mem.PutBlock(key, blk)
		return blk, nil
	})
	if err != nil {
		return nil, OutcomeFilled, err
	}
	if shared {
		t.coalesced.Add(1)
		return blk, OutcomeCoalesced, nil
	}
	return blk, OutcomeFilled, nil
}

// Remove invalidates key in every tier.
func (t *Tiered) Remove(key string) {
	t.mem.Remove(key)
	if t.disk != nil {
		t.disk.remove(key)
	}
}

// Clear empties every tier, keeping counters.
func (t *Tiered) Clear() {
	t.mem.Clear()
	if t.disk != nil {
		t.disk.clear()
	}
}

// Stats merges the tiers' counters: Hits/Misses/DiskHits/Coalesced are
// tiered-level, the rest come from the tiers themselves. Reads atomics
// only.
func (t *Tiered) Stats() Stats {
	s := t.mem.Stats()
	s.Hits = t.hits.Load()
	s.Misses = t.misses.Load()
	s.DiskHits = t.diskHits.Load()
	s.Coalesced = t.coalesced.Load()
	if t.disk != nil {
		s.DiskEntries = int(t.disk.entries.Load())
		s.DiskBytes = t.disk.bytes.Load()
	}
	return s
}

// Instrument registers the cache's counters with a telemetry registry,
// labelled with a cache name. Every series reads lock-free atomics, so
// scrapes never contend with the read path:
//
//	nsdf_cache_hits_total{cache}              memory-tier hits
//	nsdf_cache_misses_total{cache}            misses in every tier
//	nsdf_cache_evictions_total{cache}         memory-tier evictions
//	nsdf_cache_coalesced_total{cache}         fills shared via singleflight
//	nsdf_cache_admission_rejects_total{cache} TinyLFU admission rejects
//	nsdf_cache_disk_hits_total{cache}         disk-tier hits
//	nsdf_cache_entries{cache}                 memory-tier entry count
//	nsdf_cache_bytes{cache}                   memory-tier payload bytes
//	nsdf_cache_disk_bytes{cache}              disk-tier payload bytes
func (t *Tiered) Instrument(reg *telemetry.Registry, name string) {
	reg.CounterFunc("nsdf_cache_hits_total",
		func() float64 { return float64(t.hits.Load()) }, "cache", name)
	reg.CounterFunc("nsdf_cache_misses_total",
		func() float64 { return float64(t.misses.Load()) }, "cache", name)
	reg.CounterFunc("nsdf_cache_evictions_total",
		func() float64 { return float64(t.mem.evicts.Load()) }, "cache", name)
	reg.CounterFunc("nsdf_cache_coalesced_total",
		func() float64 { return float64(t.coalesced.Load()) }, "cache", name)
	reg.CounterFunc("nsdf_cache_admission_rejects_total",
		func() float64 { return float64(t.mem.rejects.Load()) }, "cache", name)
	reg.CounterFunc("nsdf_cache_disk_hits_total",
		func() float64 { return float64(t.diskHits.Load()) }, "cache", name)
	reg.GaugeFunc("nsdf_cache_entries",
		func() float64 { return float64(t.mem.entries.Load()) }, "cache", name)
	reg.GaugeFunc("nsdf_cache_bytes",
		func() float64 { return float64(t.mem.bytes.Load()) }, "cache", name)
	reg.GaugeFunc("nsdf_cache_disk_bytes",
		func() float64 {
			if t.disk == nil {
				return 0
			}
			return float64(t.disk.bytes.Load())
		}, "cache", name)
}
