package cache

import (
	"context"
	"sync"
)

// flightGroup deduplicates concurrent fills of the same key
// (singleflight): the first caller becomes the leader and runs the fill;
// callers that arrive while it is in flight wait for the leader's result
// instead of issuing their own backend fetch. Hand-rolled on the stdlib
// because the module vendors no dependencies.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done     chan struct{}
	blk      *Block // carries one reference per registered waiter
	err      error
	finished bool
	nwait    int // waiters registered before completion
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn once per key across concurrent callers. The leader's Block
// (one reference) is returned to the leader; each waiter gets its own
// acquired reference to the same Block, so every non-error return hands
// the caller exactly one reference to release. shared reports whether
// this caller piggybacked on another's fill. A waiter whose ctx expires
// before the fill completes returns the ctx error without waiting.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*Block, error)) (blk *Block, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.nwait++
		g.mu.Unlock()
		select {
		case <-c.done:
			// The leader acquired nwait references on completion; claim
			// ours. No lock needed: blk/err are immutable after done.
			return c.blk, true, c.err
		case <-ctx.Done():
			// Abandon the flight; return the reference the leader set
			// aside for us (it counted nwait under the lock, so either it
			// has not completed yet and will see our decrement, or it has
			// and our reference is already acquired).
			g.mu.Lock()
			if c.finished {
				g.mu.Unlock()
				if c.err == nil {
					c.blk.Release()
				}
			} else {
				c.nwait--
				g.mu.Unlock()
			}
			return nil, false, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	blk, err = fn()

	g.mu.Lock()
	c.blk, c.err = blk, err
	c.finished = true
	if err == nil {
		for i := 0; i < c.nwait; i++ {
			blk.Acquire()
		}
	}
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return blk, false, err
}
