// Package tiff implements a from-scratch baseline TIFF 6.0 reader and
// writer for the single-band scientific rasters handled in steps 1-3 of
// the NSDF tutorial workflow, including the GeoTIFF georeferencing tags
// (ModelPixelScale, ModelTiepoint) written by GEOtiled.
//
// Supported images are single-sample-per-pixel, strip-organised, with
// 8/16/32-bit unsigned, 16-bit signed, or 32/64-bit IEEE floating point
// samples, uncompressed or Deflate-compressed (compression tag 8). Both
// little- and big-endian files can be read; the writer emits little-endian.
package tiff

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"nsdfgo/internal/raster"
)

// DType enumerates the sample types this package supports.
type DType int

// Supported sample types.
const (
	Uint8 DType = iota
	Uint16
	Uint32
	Int16
	Float32
	Float64
)

// Size returns the sample size in bytes.
func (d DType) Size() int {
	switch d {
	case Uint8:
		return 1
	case Uint16, Int16:
		return 2
	case Uint32, Float32:
		return 4
	case Float64:
		return 8
	}
	panic(fmt.Sprintf("tiff: invalid DType %d", int(d)))
}

// String returns the conventional name of the sample type.
func (d DType) String() string {
	switch d {
	case Uint8:
		return "uint8"
	case Uint16:
		return "uint16"
	case Uint32:
		return "uint32"
	case Int16:
		return "int16"
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	}
	return fmt.Sprintf("DType(%d)", int(d))
}

// sampleFormat returns the TIFF SampleFormat value for the type.
func (d DType) sampleFormat() uint16 {
	switch d {
	case Uint8, Uint16, Uint32:
		return 1 // unsigned integer
	case Int16:
		return 2 // signed integer
	case Float32, Float64:
		return 3 // IEEE float
	}
	panic("tiff: invalid DType")
}

// Image is a decoded single-band TIFF raster. Pix holds samples in native
// little-endian byte order, row-major.
type Image struct {
	// Width and Height are the raster dimensions.
	Width, Height int
	// Type is the sample type.
	Type DType
	// Pix holds Width*Height samples of Type, little-endian, row-major.
	Pix []byte
	// Geo carries GeoTIFF georeferencing when present.
	Geo *raster.Georef
}

// TIFF tag ids used by this package.
const (
	tagImageWidth      = 256
	tagImageLength     = 257
	tagBitsPerSample   = 258
	tagCompression     = 259
	tagPhotometric     = 262
	tagStripOffsets    = 273
	tagSamplesPerPixel = 277
	tagRowsPerStrip    = 278
	tagStripByteCounts = 279
	tagSampleFormat    = 339
	tagModelPixelScale = 33550
	tagModelTiepoint   = 33922
)

// TIFF field types.
const (
	typeByte     = 1
	typeASCII    = 2
	typeShort    = 3
	typeLong     = 4
	typeRational = 5
	typeDouble   = 12
)

// Compression values.
const (
	// CompressionNone stores strips raw.
	CompressionNone = 1
	// CompressionDeflate stores strips as zlib streams (Adobe deflate, tag 8).
	CompressionDeflate = 8
)

// EncodeOptions controls Encode.
type EncodeOptions struct {
	// Compression is CompressionNone (default when zero... the zero value
	// 0 is normalised to CompressionNone) or CompressionDeflate.
	Compression int
	// RowsPerStrip bounds strip height; <= 0 selects a strip size of about
	// 64 KiB, matching common GeoTIFF writers.
	RowsPerStrip int
}

// FromGrid converts a raster grid to a Float32 image, carrying its
// georeferencing.
func FromGrid(g *raster.Grid) *Image {
	pix := make([]byte, 4*len(g.Data))
	for i, v := range g.Data {
		binary.LittleEndian.PutUint32(pix[4*i:], math.Float32bits(v))
	}
	im := &Image{Width: g.W, Height: g.H, Type: Float32, Pix: pix}
	if g.Geo != nil {
		geo := *g.Geo
		im.Geo = &geo
	}
	return im
}

// Grid converts the image's samples to a float32 raster grid.
func (im *Image) Grid() *raster.Grid {
	g := raster.New(im.Width, im.Height)
	n := im.Width * im.Height
	sz := im.Type.Size()
	for i := 0; i < n; i++ {
		off := i * sz
		switch im.Type {
		case Uint8:
			g.Data[i] = float32(im.Pix[off])
		case Uint16:
			g.Data[i] = float32(binary.LittleEndian.Uint16(im.Pix[off:]))
		case Uint32:
			g.Data[i] = float32(binary.LittleEndian.Uint32(im.Pix[off:]))
		case Int16:
			g.Data[i] = float32(int16(binary.LittleEndian.Uint16(im.Pix[off:])))
		case Float32:
			g.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(im.Pix[off:]))
		case Float64:
			g.Data[i] = float32(math.Float64frombits(binary.LittleEndian.Uint64(im.Pix[off:])))
		}
	}
	if im.Geo != nil {
		geo := *im.Geo
		g.Geo = &geo
	}
	return g
}

// Validate checks the structural invariants of the image.
func (im *Image) Validate() error {
	if im.Width <= 0 || im.Height <= 0 {
		return fmt.Errorf("tiff: invalid dimensions %dx%d", im.Width, im.Height)
	}
	want := im.Width * im.Height * im.Type.Size()
	if len(im.Pix) != want {
		return fmt.Errorf("tiff: pixel buffer is %d bytes, want %d for %dx%d %s", len(im.Pix), want, im.Width, im.Height, im.Type)
	}
	return nil
}

// ifdEntry is one directory entry of the written IFD.
type ifdEntry struct {
	tag   uint16
	typ   uint16
	count uint32
	// value holds the raw little-endian value bytes (may exceed 4 bytes;
	// the encoder relocates long values to an offset area).
	value []byte
}

// Encode writes the image as a little-endian TIFF stream.
func Encode(w io.Writer, im *Image, opts EncodeOptions) error {
	if err := im.Validate(); err != nil {
		return err
	}
	compression := opts.Compression
	if compression == 0 {
		compression = CompressionNone
	}
	if compression != CompressionNone && compression != CompressionDeflate {
		return fmt.Errorf("tiff: unsupported compression %d", compression)
	}
	bytesPerRow := im.Width * im.Type.Size()
	rowsPerStrip := opts.RowsPerStrip
	if rowsPerStrip <= 0 {
		rowsPerStrip = (64 << 10) / bytesPerRow
		if rowsPerStrip < 1 {
			rowsPerStrip = 1
		}
	}
	if rowsPerStrip > im.Height {
		rowsPerStrip = im.Height
	}
	if rowsPerStrip > math.MaxUint16 {
		rowsPerStrip = math.MaxUint16 // RowsPerStrip is written as a SHORT
	}
	numStrips := (im.Height + rowsPerStrip - 1) / rowsPerStrip

	// Compress strips.
	strips := make([][]byte, numStrips)
	for s := 0; s < numStrips; s++ {
		y0 := s * rowsPerStrip
		y1 := y0 + rowsPerStrip
		if y1 > im.Height {
			y1 = im.Height
		}
		raw := im.Pix[y0*bytesPerRow : y1*bytesPerRow]
		if compression == CompressionNone {
			strips[s] = raw
		} else {
			var buf bytes.Buffer
			zw := zlib.NewWriter(&buf)
			if _, err := zw.Write(raw); err != nil {
				return fmt.Errorf("tiff: deflate strip %d: %w", s, err)
			}
			if err := zw.Close(); err != nil {
				return fmt.Errorf("tiff: deflate strip %d: %w", s, err)
			}
			strips[s] = buf.Bytes()
		}
	}

	// Layout: header (8) | strip data | IFD | overflow values.
	const headerLen = 8
	stripOffsets := make([]uint32, numStrips)
	stripCounts := make([]uint32, numStrips)
	off := uint32(headerLen)
	for s, data := range strips {
		stripOffsets[s] = off
		stripCounts[s] = uint32(len(data))
		off += uint32(len(data))
	}
	if off%2 == 1 { // IFD must be word-aligned
		off++
	}
	ifdOffset := off

	entries := []ifdEntry{
		shortEntry(tagImageWidth, uint16(im.Width)),
		shortEntry(tagImageLength, uint16(im.Height)),
		shortEntry(tagBitsPerSample, uint16(8*im.Type.Size())),
		shortEntry(tagCompression, uint16(compression)),
		shortEntry(tagPhotometric, 1), // BlackIsZero
		longArrayEntry(tagStripOffsets, stripOffsets),
		shortEntry(tagSamplesPerPixel, 1),
		shortEntry(tagRowsPerStrip, uint16(rowsPerStrip)),
		longArrayEntry(tagStripByteCounts, stripCounts),
		shortEntry(tagSampleFormat, im.Type.sampleFormat()),
	}
	if im.Width > math.MaxUint16 {
		entries[0] = longEntry(tagImageWidth, uint32(im.Width))
	}
	if im.Height > math.MaxUint16 {
		entries[1] = longEntry(tagImageLength, uint32(im.Height))
	}
	if im.Geo != nil {
		entries = append(entries,
			doubleArrayEntry(tagModelPixelScale, []float64{im.Geo.PixelW, im.Geo.PixelH, 0}),
			doubleArrayEntry(tagModelTiepoint, []float64{0, 0, 0, im.Geo.OriginX, im.Geo.OriginY, 0}),
		)
	}
	// Entries must be sorted by tag; ours are constructed sorted except the
	// geo tags, which have the highest ids, so order already holds.

	ifdLen := 2 + 12*len(entries) + 4
	overflowOffset := ifdOffset + uint32(ifdLen)

	var ifd bytes.Buffer
	var overflow bytes.Buffer
	binary.Write(&ifd, binary.LittleEndian, uint16(len(entries)))
	for _, e := range entries {
		binary.Write(&ifd, binary.LittleEndian, e.tag)
		binary.Write(&ifd, binary.LittleEndian, e.typ)
		binary.Write(&ifd, binary.LittleEndian, e.count)
		if len(e.value) <= 4 {
			var v [4]byte
			copy(v[:], e.value)
			ifd.Write(v[:])
		} else {
			binary.Write(&ifd, binary.LittleEndian, overflowOffset+uint32(overflow.Len()))
			overflow.Write(e.value)
		}
	}
	binary.Write(&ifd, binary.LittleEndian, uint32(0)) // next IFD

	// Emit everything.
	var header [headerLen]byte
	header[0], header[1] = 'I', 'I'
	binary.LittleEndian.PutUint16(header[2:], 42)
	binary.LittleEndian.PutUint32(header[4:], ifdOffset)
	if _, err := w.Write(header[:]); err != nil {
		return fmt.Errorf("tiff: write header: %w", err)
	}
	written := uint32(headerLen)
	for _, data := range strips {
		if _, err := w.Write(data); err != nil {
			return fmt.Errorf("tiff: write strip: %w", err)
		}
		written += uint32(len(data))
	}
	if written < ifdOffset { // alignment pad
		if _, err := w.Write([]byte{0}); err != nil {
			return fmt.Errorf("tiff: write pad: %w", err)
		}
	}
	if _, err := w.Write(ifd.Bytes()); err != nil {
		return fmt.Errorf("tiff: write IFD: %w", err)
	}
	if _, err := w.Write(overflow.Bytes()); err != nil {
		return fmt.Errorf("tiff: write values: %w", err)
	}
	return nil
}

func shortEntry(tag uint16, v uint16) ifdEntry {
	b := make([]byte, 2)
	binary.LittleEndian.PutUint16(b, v)
	return ifdEntry{tag: tag, typ: typeShort, count: 1, value: b}
}

func longEntry(tag uint16, v uint32) ifdEntry {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return ifdEntry{tag: tag, typ: typeLong, count: 1, value: b}
}

func longArrayEntry(tag uint16, vs []uint32) ifdEntry {
	b := make([]byte, 4*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint32(b[4*i:], v)
	}
	return ifdEntry{tag: tag, typ: typeLong, count: uint32(len(vs)), value: b}
}

func doubleArrayEntry(tag uint16, vs []float64) ifdEntry {
	b := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return ifdEntry{tag: tag, typ: typeDouble, count: uint32(len(vs)), value: b}
}
