package tiff

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"nsdfgo/internal/raster"
)

// Decode parses a TIFF stream produced by this package or any writer of
// baseline single-band strip TIFFs (uncompressed or Deflate). Both byte
// orders are accepted. Only the first IFD is read.
func Decode(r io.Reader) (*Image, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("tiff: read: %w", err)
	}
	return DecodeBytes(data)
}

// DecodeBytes parses an in-memory TIFF file.
func DecodeBytes(data []byte) (*Image, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("tiff: file of %d bytes is too short for a header", len(data))
	}
	var bo binary.ByteOrder
	switch {
	case data[0] == 'I' && data[1] == 'I':
		bo = binary.LittleEndian
	case data[0] == 'M' && data[1] == 'M':
		bo = binary.BigEndian
	default:
		return nil, fmt.Errorf("tiff: bad byte-order mark %q", data[:2])
	}
	if bo.Uint16(data[2:]) != 42 {
		return nil, fmt.Errorf("tiff: bad magic %d, want 42", bo.Uint16(data[2:]))
	}
	ifdOffset := bo.Uint32(data[4:])
	d := &decoder{data: data, bo: bo}
	return d.readIFD(ifdOffset)
}

type decoder struct {
	data []byte
	bo   binary.ByteOrder
}

// field is a parsed IFD entry.
type field struct {
	typ   uint16
	count uint32
	raw   []byte // value bytes, already dereferenced if stored at an offset
}

func typeSize(t uint16) int {
	switch t {
	case typeByte, typeASCII:
		return 1
	case typeShort:
		return 2
	case typeLong:
		return 4
	case typeRational, typeDouble:
		return 8
	}
	return 0
}

func (d *decoder) readIFD(off uint32) (*Image, error) {
	if int(off)+2 > len(d.data) {
		return nil, fmt.Errorf("tiff: IFD offset %d beyond file of %d bytes", off, len(d.data))
	}
	n := int(d.bo.Uint16(d.data[off:]))
	fields := make(map[uint16]field, n)
	pos := int(off) + 2
	for i := 0; i < n; i++ {
		if pos+12 > len(d.data) {
			return nil, fmt.Errorf("tiff: IFD entry %d truncated", i)
		}
		tag := d.bo.Uint16(d.data[pos:])
		typ := d.bo.Uint16(d.data[pos+2:])
		count := d.bo.Uint32(d.data[pos+4:])
		size := typeSize(typ)
		if size == 0 {
			pos += 12
			continue // unknown field type: skip, per the TIFF spec
		}
		total := size * int(count)
		var raw []byte
		if total <= 4 {
			raw = d.data[pos+8 : pos+8+total]
		} else {
			voff := d.bo.Uint32(d.data[pos+8:])
			if int(voff)+total > len(d.data) {
				return nil, fmt.Errorf("tiff: tag %d values at %d..%d beyond file", tag, voff, int(voff)+total)
			}
			raw = d.data[voff : int(voff)+total]
		}
		fields[tag] = field{typ: typ, count: count, raw: raw}
		pos += 12
	}

	width, err := d.uintField(fields, tagImageWidth)
	if err != nil {
		return nil, err
	}
	height, err := d.uintField(fields, tagImageLength)
	if err != nil {
		return nil, err
	}
	if width <= 0 || height <= 0 || width > 1<<28 || height > 1<<28 {
		return nil, fmt.Errorf("tiff: implausible dimensions %dx%d", width, height)
	}
	bits := 8
	if f, ok := fields[tagBitsPerSample]; ok {
		bits = int(d.uintAt(f, 0))
	}
	sampleFormat := uint16(1)
	if f, ok := fields[tagSampleFormat]; ok {
		sampleFormat = uint16(d.uintAt(f, 0))
	}
	samplesPerPixel := 1
	if f, ok := fields[tagSamplesPerPixel]; ok {
		samplesPerPixel = int(d.uintAt(f, 0))
	}
	if samplesPerPixel != 1 {
		return nil, fmt.Errorf("tiff: %d samples per pixel; only single-band rasters are supported", samplesPerPixel)
	}
	var dtype DType
	switch {
	case sampleFormat == 1 && bits == 8:
		dtype = Uint8
	case sampleFormat == 1 && bits == 16:
		dtype = Uint16
	case sampleFormat == 1 && bits == 32:
		dtype = Uint32
	case sampleFormat == 2 && bits == 16:
		dtype = Int16
	case sampleFormat == 3 && bits == 32:
		dtype = Float32
	case sampleFormat == 3 && bits == 64:
		dtype = Float64
	default:
		return nil, fmt.Errorf("tiff: unsupported sample format %d with %d bits", sampleFormat, bits)
	}
	compression := CompressionNone
	if f, ok := fields[tagCompression]; ok {
		compression = int(d.uintAt(f, 0))
	}
	if compression != CompressionNone && compression != CompressionDeflate {
		return nil, fmt.Errorf("tiff: unsupported compression %d", compression)
	}

	offF, ok := fields[tagStripOffsets]
	if !ok {
		return nil, fmt.Errorf("tiff: missing StripOffsets")
	}
	cntF, ok := fields[tagStripByteCounts]
	if !ok {
		return nil, fmt.Errorf("tiff: missing StripByteCounts")
	}
	if offF.count != cntF.count {
		return nil, fmt.Errorf("tiff: %d strip offsets but %d byte counts", offF.count, cntF.count)
	}
	rowsPerStrip := height
	if f, ok := fields[tagRowsPerStrip]; ok {
		rowsPerStrip = int(d.uintAt(f, 0))
		if rowsPerStrip <= 0 {
			rowsPerStrip = height
		}
	}

	sz := dtype.Size()
	bytesPerRow := width * sz
	pix := make([]byte, width*height*sz)
	wrote := 0
	for s := 0; s < int(offF.count); s++ {
		soff := int(d.uintAt(offF, s))
		scnt := int(d.uintAt(cntF, s))
		if soff+scnt > len(d.data) {
			return nil, fmt.Errorf("tiff: strip %d at %d..%d beyond file", s, soff, soff+scnt)
		}
		raw := d.data[soff : soff+scnt]
		if compression == CompressionDeflate {
			zr, err := zlib.NewReader(bytes.NewReader(raw))
			if err != nil {
				return nil, fmt.Errorf("tiff: strip %d: %w", s, err)
			}
			raw, err = io.ReadAll(zr)
			if cerr := zr.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				return nil, fmt.Errorf("tiff: strip %d: %w", s, err)
			}
		}
		y0 := s * rowsPerStrip
		rows := rowsPerStrip
		if y0+rows > height {
			rows = height - y0
		}
		want := rows * bytesPerRow
		if len(raw) < want {
			return nil, fmt.Errorf("tiff: strip %d holds %d bytes, want %d", s, len(raw), want)
		}
		copy(pix[y0*bytesPerRow:], raw[:want])
		wrote += want
	}
	if wrote != len(pix) {
		return nil, fmt.Errorf("tiff: strips supplied %d bytes of %d", wrote, len(pix))
	}
	// Byte-swap multi-byte samples from big-endian files to native LE.
	if d.bo == binary.BigEndian && sz > 1 {
		for i := 0; i < len(pix); i += sz {
			for a, b := i, i+sz-1; a < b; a, b = a+1, b-1 {
				pix[a], pix[b] = pix[b], pix[a]
			}
		}
	}

	im := &Image{Width: width, Height: height, Type: dtype, Pix: pix}
	if ps, ok := fields[tagModelPixelScale]; ok {
		if tp, ok2 := fields[tagModelTiepoint]; ok2 && ps.count >= 2 && tp.count >= 6 {
			im.Geo = &raster.Georef{
				PixelW:  d.doubleAt(ps, 0),
				PixelH:  d.doubleAt(ps, 1),
				OriginX: d.doubleAt(tp, 3),
				OriginY: d.doubleAt(tp, 4),
			}
		}
	}
	return im, nil
}

// uintField fetches a required scalar unsigned field.
func (d *decoder) uintField(fields map[uint16]field, tag uint16) (int, error) {
	f, ok := fields[tag]
	if !ok {
		return 0, fmt.Errorf("tiff: missing required tag %d", tag)
	}
	return int(d.uintAt(f, 0)), nil
}

// uintAt reads element i of a BYTE/SHORT/LONG field.
func (d *decoder) uintAt(f field, i int) uint32 {
	switch f.typ {
	case typeByte:
		return uint32(f.raw[i])
	case typeShort:
		return uint32(d.bo.Uint16(f.raw[2*i:]))
	case typeLong:
		return d.bo.Uint32(f.raw[4*i:])
	}
	return 0
}

// doubleAt reads element i of a DOUBLE field.
func (d *decoder) doubleAt(f field, i int) float64 {
	if f.typ != typeDouble {
		return 0
	}
	return math.Float64frombits(d.bo.Uint64(f.raw[8*i:]))
}
