package tiff

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"nsdfgo/internal/raster"
)

// makeFloat32Image builds a deterministic float32 test image.
func makeFloat32Image(w, h int) *Image {
	pix := make([]byte, 4*w*h)
	for i := 0; i < w*h; i++ {
		v := float32(math.Sin(float64(i)/17) * 1000)
		binary.LittleEndian.PutUint32(pix[4*i:], math.Float32bits(v))
	}
	return &Image{Width: w, Height: h, Type: Float32, Pix: pix}
}

func roundTrip(t *testing.T, im *Image, opts EncodeOptions) *Image {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, im, opts); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return out
}

func TestRoundTripFloat32Uncompressed(t *testing.T) {
	im := makeFloat32Image(37, 23)
	out := roundTrip(t, im, EncodeOptions{})
	if out.Width != 37 || out.Height != 23 || out.Type != Float32 {
		t.Fatalf("got %dx%d %v", out.Width, out.Height, out.Type)
	}
	if !bytes.Equal(out.Pix, im.Pix) {
		t.Error("pixel data mismatch")
	}
}

func TestRoundTripFloat32Deflate(t *testing.T) {
	im := makeFloat32Image(64, 64)
	var buf bytes.Buffer
	if err := Encode(&buf, im, EncodeOptions{Compression: CompressionDeflate}); err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	if err := Encode(&raw, im, EncodeOptions{}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= raw.Len() {
		t.Errorf("deflate (%d bytes) not smaller than raw (%d bytes) on smooth data", buf.Len(), raw.Len())
	}
	out, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Pix, im.Pix) {
		t.Error("pixel data mismatch after deflate round trip")
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	const w, h = 9, 5
	for _, dt := range []DType{Uint8, Uint16, Uint32, Int16, Float32, Float64} {
		pix := make([]byte, w*h*dt.Size())
		r := rand.New(rand.NewSource(int64(dt)))
		r.Read(pix)
		if dt == Float32 || dt == Float64 {
			// Avoid random NaN payload bit patterns comparing unequal after
			// a float trip: raw bytes are preserved anyway, so keep as-is.
			_ = pix
		}
		im := &Image{Width: w, Height: h, Type: dt, Pix: pix}
		for _, comp := range []int{CompressionNone, CompressionDeflate} {
			out := roundTrip(t, im, EncodeOptions{Compression: comp})
			if out.Type != dt {
				t.Errorf("%v/comp=%d: type became %v", dt, comp, out.Type)
			}
			if !bytes.Equal(out.Pix, pix) {
				t.Errorf("%v/comp=%d: pixel mismatch", dt, comp)
			}
		}
	}
}

func TestRoundTripMultipleStrips(t *testing.T) {
	im := makeFloat32Image(16, 100)
	out := roundTrip(t, im, EncodeOptions{RowsPerStrip: 7})
	if !bytes.Equal(out.Pix, im.Pix) {
		t.Error("pixel mismatch with 7-row strips")
	}
}

func TestRoundTripSinglePixel(t *testing.T) {
	im := &Image{Width: 1, Height: 1, Type: Uint8, Pix: []byte{200}}
	out := roundTrip(t, im, EncodeOptions{})
	if out.Pix[0] != 200 {
		t.Errorf("pixel = %d", out.Pix[0])
	}
}

func TestGeoTIFFTags(t *testing.T) {
	im := makeFloat32Image(8, 8)
	im.Geo = &raster.Georef{OriginX: -90.25, OriginY: 36.5, PixelW: 0.000277, PixelH: 0.000277}
	out := roundTrip(t, im, EncodeOptions{})
	if out.Geo == nil {
		t.Fatal("georeferencing lost")
	}
	if out.Geo.OriginX != im.Geo.OriginX || out.Geo.OriginY != im.Geo.OriginY {
		t.Errorf("origin %v,%v", out.Geo.OriginX, out.Geo.OriginY)
	}
	if out.Geo.PixelW != im.Geo.PixelW || out.Geo.PixelH != im.Geo.PixelH {
		t.Errorf("pixel scale %v,%v", out.Geo.PixelW, out.Geo.PixelH)
	}
}

func TestEncodeValidates(t *testing.T) {
	bad := &Image{Width: 4, Height: 4, Type: Float32, Pix: make([]byte, 10)}
	if err := Encode(&bytes.Buffer{}, bad, EncodeOptions{}); err == nil {
		t.Error("short pixel buffer accepted")
	}
	bad2 := &Image{Width: 0, Height: 4, Type: Float32, Pix: nil}
	if err := Encode(&bytes.Buffer{}, bad2, EncodeOptions{}); err == nil {
		t.Error("zero width accepted")
	}
	im := makeFloat32Image(2, 2)
	if err := Encode(&bytes.Buffer{}, im, EncodeOptions{Compression: 5}); err == nil {
		t.Error("LZW compression accepted (unsupported)")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"short":     {'I', 'I', 42},
		"bad order": {'X', 'X', 42, 0, 8, 0, 0, 0},
		"bad magic": {'I', 'I', 43, 0, 8, 0, 0, 0},
		"bad ifd":   {'I', 'I', 42, 0, 255, 255, 255, 255},
	}
	for name, data := range cases {
		if _, err := DecodeBytes(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestDecodeBigEndian(t *testing.T) {
	// Hand-build a minimal big-endian 2x1 uint16 TIFF.
	var buf bytes.Buffer
	be := binary.BigEndian
	w16 := func(v uint16) { binary.Write(&buf, be, v) }
	w32 := func(v uint32) { binary.Write(&buf, be, v) }
	buf.WriteString("MM")
	w16(42)
	w32(8) // IFD at 8... but we put pixel data after IFD.
	// IFD with 8 entries.
	w16(8)
	entry := func(tag, typ uint16, count, value uint32) {
		w16(tag)
		w16(typ)
		w32(count)
		w32(value)
	}
	// Values for SHORT type live in the high bytes of the value word in BE.
	shortVal := func(v uint16) uint32 { return uint32(v) << 16 }
	entry(tagImageWidth, typeShort, 1, shortVal(2))
	entry(tagImageLength, typeShort, 1, shortVal(1))
	entry(tagBitsPerSample, typeShort, 1, shortVal(16))
	entry(tagCompression, typeShort, 1, shortVal(1))
	entry(tagStripOffsets, typeLong, 1, 110)
	entry(tagRowsPerStrip, typeShort, 1, shortVal(1))
	entry(tagStripByteCounts, typeLong, 1, 4)
	entry(tagSampleFormat, typeShort, 1, shortVal(1))
	w32(0) // next IFD
	for buf.Len() < 110 {
		buf.WriteByte(0)
	}
	// Samples 0x0102=258 and 0x0304=772, big-endian.
	buf.Write([]byte{1, 2, 3, 4})

	im, err := DecodeBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if im.Width != 2 || im.Height != 1 || im.Type != Uint16 {
		t.Fatalf("got %dx%d %v", im.Width, im.Height, im.Type)
	}
	if v := binary.LittleEndian.Uint16(im.Pix); v != 258 {
		t.Errorf("sample 0 = %d, want 258", v)
	}
	if v := binary.LittleEndian.Uint16(im.Pix[2:]); v != 772 {
		t.Errorf("sample 1 = %d, want 772", v)
	}
}

func TestGridRoundTrip(t *testing.T) {
	g := raster.New(10, 6)
	for i := range g.Data {
		g.Data[i] = float32(i) * 1.5
	}
	g.Geo = &raster.Georef{OriginX: 1, OriginY: 2, PixelW: 3, PixelH: 4}
	im := FromGrid(g)
	back := im.Grid()
	if !raster.Equal(g, back) {
		t.Error("FromGrid/Grid round trip mismatch")
	}
	if back.Geo == nil || back.Geo.OriginX != 1 {
		t.Error("georef lost in grid round trip")
	}
}

func TestGridConversionWidensIntegers(t *testing.T) {
	im := &Image{Width: 2, Height: 1, Type: Int16, Pix: make([]byte, 4)}
	neg5 := int16(-5)
	binary.LittleEndian.PutUint16(im.Pix, uint16(neg5))
	binary.LittleEndian.PutUint16(im.Pix[2:], 300)
	g := im.Grid()
	if g.Data[0] != -5 || g.Data[1] != 300 {
		t.Errorf("int16 widening: %v", g.Data)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, wRaw, hRaw uint8) bool {
		w := int(wRaw%40) + 1
		h := int(hRaw%40) + 1
		r := rand.New(rand.NewSource(seed))
		g := raster.New(w, h)
		for i := range g.Data {
			g.Data[i] = float32(r.NormFloat64() * 100)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, FromGrid(g), EncodeOptions{Compression: CompressionDeflate, RowsPerStrip: int(hRaw%5) + 1}); err != nil {
			return false
		}
		out, err := Decode(&buf)
		if err != nil {
			return false
		}
		return raster.Equal(g, out.Grid())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDTypeStringAndSize(t *testing.T) {
	cases := []struct {
		d    DType
		s    string
		size int
	}{
		{Uint8, "uint8", 1}, {Uint16, "uint16", 2}, {Uint32, "uint32", 4},
		{Int16, "int16", 2}, {Float32, "float32", 4}, {Float64, "float64", 8},
	}
	for _, c := range cases {
		if c.d.String() != c.s || c.d.Size() != c.size {
			t.Errorf("%v: %q/%d", c.d, c.d.String(), c.d.Size())
		}
	}
}

func BenchmarkEncodeFloat32Deflate(b *testing.B) {
	im := makeFloat32Image(512, 512)
	b.SetBytes(int64(len(im.Pix)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := Encode(&buf, im, EncodeOptions{Compression: CompressionDeflate}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFloat32(b *testing.B) {
	im := makeFloat32Image(512, 512)
	var buf bytes.Buffer
	if err := Encode(&buf, im, EncodeOptions{}); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(im.Pix)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBytes(data); err != nil {
			b.Fatal(err)
		}
	}
}
