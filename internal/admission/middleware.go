package admission

import (
	"errors"
	"net"
	"net/http"
	"strconv"
	"strings"

	"nsdfgo/internal/telemetry/flight"
	"nsdfgo/internal/telemetry/trace"
)

// TenantHeader names the request header carrying the tenant key. The
// tutorial cohorts set it per student/notebook; absent, the client IP
// is the tenant, so an unconfigured classroom still gets per-machine
// fairness.
const TenantHeader = "X-NSDF-Tenant"

// TenantKey resolves the rate-limiting tenant of a request.
func TenantKey(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// defaultExempt are the path prefixes admission never gates: operators
// must be able to scrape metrics and inspect traces precisely when the
// server is saturated, health checks must not flap under load, and the
// sharded tier's internal replication plane ("/internal/") is peer
// traffic that was already admitted at its public entry point.
var defaultExempt = []string{"/metrics", "/healthz", "/debug/", "/internal/"}

// Exempt reports whether path bypasses admission control.
func Exempt(path string) bool {
	for _, p := range defaultExempt {
		if strings.HasPrefix(path, p) {
			return true
		}
	}
	return false
}

// Middleware gates next behind the controller: shed requests get 429
// with a Retry-After hint (in whole seconds, rounded up) and a generic
// body; requests whose client vanished while queued get nothing. A nil
// controller passes everything through, so servers can wire the wrap
// unconditionally.
func (c *Controller) Middleware(next http.Handler) http.Handler {
	if c == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if Exempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		release, err := c.Acquire(r.Context(), TenantKey(r))
		if err != nil {
			var shed *ShedError
			if errors.As(err, &shed) {
				c.fl.Load().Record(flight.KindShed, trace.ID(r.Context()),
					"%s %s tenant=%s reason=%s", r.Method, r.URL.Path, TenantKey(r), shed.Reason)
				secs := int64(shed.RetryAfter.Seconds() + 0.999)
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
				http.Error(w, "server over capacity; retry later", http.StatusTooManyRequests)
				return
			}
			// Context error: the client is gone; nobody to answer.
			return
		}
		defer release()
		next.ServeHTTP(w, r)
	})
}
