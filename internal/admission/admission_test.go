package admission

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nsdfgo/internal/telemetry"
)

func TestDisabledControllerAdmitsEverything(t *testing.T) {
	c := NewController(Options{})
	for i := 0; i < 100; i++ {
		release, err := c.Acquire(context.Background(), "t")
		if err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		release()
	}
	if p := c.Pressure(); p != 0 {
		t.Errorf("disabled controller pressure = %v, want 0", p)
	}
}

func TestConcurrencyBoundAndQueueShed(t *testing.T) {
	c := NewController(Options{MaxConcurrent: 2, MaxQueue: 1})
	ctx := context.Background()
	r1, err := c.Acquire(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Acquire(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	// Third acquire queues; do it from a goroutine.
	granted := make(chan error, 1)
	go func() { // queued behind the two in flight
		release, err := c.Acquire(ctx, "a")
		if err == nil {
			defer release()
		}
		granted <- err
	}()
	// Wait until it is actually queued.
	deadline := time.Now().Add(2 * time.Second)
	for c.Pressure() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("third acquire never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Fourth overflows the queue: shed, immediately.
	_, err = c.Acquire(ctx, "a")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonQueueFull {
		t.Fatalf("overflow acquire: %v, want queue_full shed", err)
	}
	if shed.RetryAfter <= 0 {
		t.Errorf("shed retry-after %v, want > 0", shed.RetryAfter)
	}
	// Releasing a slot grants the queued waiter.
	r1()
	if err := <-granted; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	r2()
}

func TestQueueIsFIFO(t *testing.T) {
	c := NewController(Options{MaxConcurrent: 1, MaxQueue: 8})
	ctx := context.Background()
	first, err := c.Acquire(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	const waiters = 4
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	started := make(chan struct{})
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-started // serialized below: goroutine i enqueues before i+1 starts
			release, err := c.Acquire(ctx, "t")
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			release()
		}(i)
		// Enqueue one at a time so arrival order is deterministic.
		if i == 0 {
			close(started)
		}
		deadline := time.Now().Add(2 * time.Second)
		for {
			c.mu.Lock()
			n := len(c.queue)
			c.mu.Unlock()
			if n == i+1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiter %d never enqueued", i)
			}
			time.Sleep(time.Millisecond)
		}
	}
	first()
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v, want FIFO 0..%d", order, waiters-1)
		}
	}
}

func TestQueueTimeoutSheds(t *testing.T) {
	c := NewController(Options{MaxConcurrent: 1, MaxQueue: 4, QueueTimeout: 20 * time.Millisecond})
	release, err := c.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	start := time.Now()
	_, err = c.Acquire(context.Background(), "t")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonQueueTimeout {
		t.Fatalf("got %v, want queue_timeout shed", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timed-out acquire took %v", elapsed)
	}
	// The abandoned waiter must not linger in the queue.
	c.mu.Lock()
	depth := len(c.queue)
	c.mu.Unlock()
	if depth != 0 {
		t.Errorf("queue depth %d after timeout, want 0", depth)
	}
}

func TestCancelledWaiterLeavesQueue(t *testing.T) {
	c := NewController(Options{MaxConcurrent: 1, MaxQueue: 4})
	release, err := c.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, "t")
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		c.mu.Lock()
		n := len(c.queue)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("waiter never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled acquire: %v", err)
	}
	release()
	// The slot must be grantable again (the cancelled waiter did not eat it).
	r2, err := c.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatalf("acquire after cancel: %v", err)
	}
	r2()
}

func TestTenantRateLimitIsolatesTenants(t *testing.T) {
	base := time.Unix(0, 0)
	now := base
	c := NewController(Options{TenantRate: 1, TenantBurst: 2, now: func() time.Time { return now }})
	// Tenant a burns its burst.
	for i := 0; i < 2; i++ {
		if _, err := c.Acquire(context.Background(), "a"); err != nil {
			t.Fatalf("a burst %d: %v", i, err)
		}
	}
	_, err := c.Acquire(context.Background(), "a")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonRateLimit {
		t.Fatalf("a over burst: %v, want ratelimit shed", err)
	}
	if shed.RetryAfter <= 0 || shed.RetryAfter > 2*time.Second {
		t.Errorf("retry-after %v, want (0,2s]", shed.RetryAfter)
	}
	// Tenant b is unaffected.
	if _, err := c.Acquire(context.Background(), "b"); err != nil {
		t.Fatalf("b: %v", err)
	}
	// After 1.5s tenant a has ~1.5 tokens: one more admit, then shed again.
	now = base.Add(1500 * time.Millisecond)
	if _, err := c.Acquire(context.Background(), "a"); err != nil {
		t.Fatalf("a after refill: %v", err)
	}
	if _, err := c.Acquire(context.Background(), "a"); err == nil {
		t.Fatal("a admitted beyond refill")
	}
}

func TestPressureTracksLoad(t *testing.T) {
	c := NewController(Options{MaxConcurrent: 2, MaxQueue: 2})
	ctx := context.Background()
	if p := c.Pressure(); p != 0 {
		t.Fatalf("idle pressure %v", p)
	}
	r1, _ := c.Acquire(ctx, "t")
	if p := c.Pressure(); p != 0.25 {
		t.Fatalf("pressure with 1/4 used = %v, want 0.25", p)
	}
	r2, _ := c.Acquire(ctx, "t")
	if p := c.Pressure(); p != 0.5 {
		t.Fatalf("pressure with 2/4 used = %v, want 0.5", p)
	}
	r1()
	r2()
	if p := c.Pressure(); p != 0 {
		t.Fatalf("pressure after release = %v, want 0", p)
	}
}

func TestTelemetrySeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewController(Options{MaxConcurrent: 1, MaxQueue: 0, TenantRate: 1000, TenantBurst: 1000})
	c.Instrument(reg, "test")
	release, err := c.Acquire(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Acquire(context.Background(), "t"); err == nil {
		t.Fatal("second acquire admitted past MaxConcurrent=1, MaxQueue=0")
	}
	release()
	if got := reg.Counter("nsdf_admission_admitted_total", "service", "test").Value(); got != 1 {
		t.Errorf("admitted = %d, want 1", got)
	}
	if got := reg.Counter("nsdf_admission_shed_total", "service", "test", "reason", ReasonQueueFull).Value(); got != 1 {
		t.Errorf("shed{queue_full} = %d, want 1", got)
	}
}

func TestMiddlewareShedsWith429AndRetryAfter(t *testing.T) {
	c := NewController(Options{MaxConcurrent: 1, MaxQueue: 0})
	var handled atomic.Int64
	blocker := make(chan struct{})
	h := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handled.Add(1)
		if r.URL.Path == "/slow" {
			<-blocker
		}
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	// Occupy the single slot.
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		resp, err := http.Get(srv.URL + "/slow")
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(2 * time.Second)
	for handled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never started")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Get(srv.URL + "/fast")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive seconds hint", ra)
	}
	if handled.Load() != 1 {
		t.Errorf("shed request reached the handler")
	}
	close(blocker)
	<-slowDone
}

func TestMiddlewareExemptsOperationalPaths(t *testing.T) {
	c := NewController(Options{MaxConcurrent: 1, MaxQueue: 0, TenantRate: 0.0001, TenantBurst: 0.0001})
	h := c.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "ok")
	}))
	for _, path := range []string{"/metrics", "/healthz", "/debug/traces", "/internal/o/x"} {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("%s: status %d, want 200 (exempt)", path, rec.Code)
		}
	}
	// A data path with the same starved bucket is shed.
	req := httptest.NewRequest("GET", "/api/render", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Errorf("data path: status %d, want 429", rec.Code)
	}
}

func TestTenantKeyPrefersHeader(t *testing.T) {
	r := httptest.NewRequest("GET", "/", nil)
	r.RemoteAddr = "10.1.2.3:5555"
	if k := TenantKey(r); k != "10.1.2.3" {
		t.Errorf("addr tenant = %q", k)
	}
	r.Header.Set(TenantHeader, "cohort-7")
	if k := TenantKey(r); k != "cohort-7" {
		t.Errorf("header tenant = %q", k)
	}
}

// TestAcquireReleaseRace hammers the limiter from many goroutines under
// -race, asserting the in-flight bound is never exceeded and all slots
// come back.
func TestAcquireReleaseRace(t *testing.T) {
	const maxC = 4
	c := NewController(Options{MaxConcurrent: maxC, MaxQueue: 8, QueueTimeout: 50 * time.Millisecond})
	var inflight, peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < 50; i++ {
				release, err := c.Acquire(ctx, "t")
				if err != nil {
					continue // shed under load: expected
				}
				n := inflight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				if n > maxC {
					t.Errorf("inflight %d exceeds bound %d", n, maxC)
				}
				inflight.Add(-1)
				release()
			}
		}(g)
	}
	wg.Wait()
	if c.Pressure() != 0 {
		t.Errorf("pressure %v after drain, want 0", c.Pressure())
	}
	if peak.Load() == 0 {
		t.Error("nothing ran")
	}
}
