// Package admission keeps the NSDF serving tier standing under heavy
// traffic. The paper's services exist to serve large training cohorts
// concurrently; community data ecosystems at that scale stay usable
// because their serving tiers shed and bound load instead of
// collapsing. This package provides the two mechanisms the servers
// wire in front of every data endpoint:
//
//   - per-tenant token-bucket rate limiting (tenant resolved from the
//     X-NSDF-Tenant header, falling back to the client address), so one
//     greedy notebook cannot starve a classroom, and
//   - a global concurrency limiter with a bounded FIFO wait queue:
//     requests beyond the in-flight bound wait their turn, and requests
//     beyond the queue bound are shed immediately as 429 with a
//     Retry-After hint, keeping admitted-request latency bounded no
//     matter the offered load.
//
// The controller also exposes its instantaneous Pressure, which the
// idx fetch pool inherits (idx.Dataset.SetFetchPressure): under load,
// each admitted read fans out fewer concurrent block fetches, so
// backend concurrency contracts instead of queueing unboundedly.
package admission

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"nsdfgo/internal/telemetry"
	"nsdfgo/internal/telemetry/flight"
)

// Shed reasons, used both as error details and telemetry label values.
const (
	ReasonRateLimit    = "ratelimit"
	ReasonQueueFull    = "queue_full"
	ReasonQueueTimeout = "queue_timeout"
)

// ShedError reports a request the controller refused to admit.
// RetryAfter is the hint a client (or the HTTP middleware's Retry-After
// header) should wait before trying again.
type ShedError struct {
	Reason     string
	RetryAfter time.Duration
}

// Error implements error.
func (e *ShedError) Error() string {
	return fmt.Sprintf("admission: shed (%s), retry after %s", e.Reason, e.RetryAfter)
}

// Options configures a Controller. The zero value disables everything
// (every request admitted immediately).
type Options struct {
	// MaxConcurrent bounds globally how many admitted requests run at
	// once. <= 0 disables concurrency limiting.
	MaxConcurrent int
	// MaxQueue bounds the FIFO wait queue behind the concurrency
	// limiter. Requests arriving with the queue full are shed. <= 0
	// means no queue: everything beyond MaxConcurrent is shed.
	MaxQueue int
	// QueueTimeout bounds how long a queued request waits for a slot
	// before being shed. <= 0 waits until the request context expires.
	QueueTimeout time.Duration
	// TenantRate is the per-tenant steady admission rate in requests
	// per second. <= 0 disables rate limiting.
	TenantRate float64
	// TenantBurst is the token-bucket capacity per tenant; it defaults
	// to max(1, TenantRate).
	TenantBurst float64
	// RetryAfter is the hint attached to queue sheds (rate-limit sheds
	// compute theirs from the bucket's refill time). Defaults to 1s.
	RetryAfter time.Duration

	// now is a test hook; nil uses time.Now.
	now func() time.Time
}

// maxTenants bounds the tenant-bucket map; beyond it, buckets idle past
// their own refill horizon are swept on the next insert.
const maxTenants = 4096

// bucket is one tenant's token bucket. Refill happens lazily at take
// time, so an idle tenant costs nothing.
type bucket struct {
	tokens float64
	last   time.Time
}

// waiter is one queued request. ch has capacity 1 so the releaser's
// grant never blocks; granted/abandoned are written under Controller.mu
// to resolve the grant-vs-give-up race.
type waiter struct {
	ch        chan struct{}
	granted   bool
	abandoned bool
}

// Controller applies admission policy. The zero value is unusable; use
// NewController. All methods are safe for concurrent use.
type Controller struct {
	opts Options

	mu       sync.Mutex
	inflight int
	queue    []*waiter
	tenants  map[string]*bucket

	admitted    *telemetry.Counter
	queued      *telemetry.Counter
	shed        map[string]*telemetry.Counter
	queueDepth  *telemetry.Gauge
	inflightG   *telemetry.Gauge
	waitSeconds *telemetry.Histogram

	// fl receives a shed flight event for every rejected request; nil
	// disables (SetFlight).
	fl atomic.Pointer[flight.Recorder]
}

// SetFlight wires the flight recorder that receives one shed event per
// rejected request, stamped with the tenant, reason, and active trace
// ID. Safe to call concurrently with admission decisions.
func (c *Controller) SetFlight(fl *flight.Recorder) {
	if fl != nil {
		c.fl.Store(fl)
	}
}

// NewController builds a controller from opts.
func NewController(opts Options) *Controller {
	if opts.TenantRate > 0 && opts.TenantBurst <= 0 {
		opts.TenantBurst = opts.TenantRate
		if opts.TenantBurst < 1 {
			opts.TenantBurst = 1
		}
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	if opts.now == nil {
		opts.now = time.Now
	}
	return &Controller{opts: opts, tenants: make(map[string]*bucket)}
}

// Instrument registers the controller's telemetry series:
//
//	nsdf_admission_admitted_total{service}       requests admitted
//	nsdf_admission_queued_total{service}         requests that waited in the queue
//	nsdf_admission_shed_total{service,reason}    requests refused (ratelimit, queue_full, queue_timeout)
//	nsdf_admission_queue_depth{service}          current wait-queue depth
//	nsdf_admission_inflight{service}             currently admitted requests
//	nsdf_admission_wait_seconds{service}         queue wait time of admitted requests
func (c *Controller) Instrument(reg *telemetry.Registry, service string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.admitted = reg.Counter("nsdf_admission_admitted_total", "service", service)
	c.queued = reg.Counter("nsdf_admission_queued_total", "service", service)
	c.shed = map[string]*telemetry.Counter{
		ReasonRateLimit:    reg.Counter("nsdf_admission_shed_total", "service", service, "reason", ReasonRateLimit),
		ReasonQueueFull:    reg.Counter("nsdf_admission_shed_total", "service", service, "reason", ReasonQueueFull),
		ReasonQueueTimeout: reg.Counter("nsdf_admission_shed_total", "service", service, "reason", ReasonQueueTimeout),
	}
	c.queueDepth = reg.Gauge("nsdf_admission_queue_depth", "service", service)
	c.inflightG = reg.Gauge("nsdf_admission_inflight", "service", service)
	c.waitSeconds = reg.Histogram("nsdf_admission_wait_seconds", "service", service)
}

// bookShed increments the shed counter for reason, if instrumented.
func (c *Controller) bookShed(reason string) {
	c.mu.Lock()
	ctr := c.shed[reason]
	c.mu.Unlock()
	if ctr != nil {
		ctr.Inc()
	}
}

// Pressure reports how loaded the limiter is as a fraction in [0,1]:
// 0 when idle, 1 when every concurrency slot and queue position is
// taken. Disabled limiters report 0. The idx fetch pool consults this
// to shrink per-request fetch parallelism under load.
func (c *Controller) Pressure() float64 {
	if c.opts.MaxConcurrent <= 0 {
		return 0
	}
	c.mu.Lock()
	used := c.inflight + len(c.queue)
	c.mu.Unlock()
	capacity := c.opts.MaxConcurrent + c.opts.MaxQueue
	p := float64(used) / float64(capacity)
	if p > 1 {
		p = 1
	}
	return p
}

// takeToken consumes one token from tenant's bucket, reporting the wait
// until the next token when the bucket is empty.
func (c *Controller) takeToken(tenant string) (ok bool, retryAfter time.Duration) {
	now := c.opts.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.tenants[tenant]
	if b == nil {
		if len(c.tenants) >= maxTenants {
			c.sweepTenantsLocked(now)
		}
		b = &bucket{tokens: c.opts.TenantBurst, last: now}
		c.tenants[tenant] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * c.opts.TenantRate
		if b.tokens > c.opts.TenantBurst {
			b.tokens = c.opts.TenantBurst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / c.opts.TenantRate * float64(time.Second))
}

// sweepTenantsLocked drops buckets that have been idle long enough to
// have refilled completely — forgetting them loses no state.
func (c *Controller) sweepTenantsLocked(now time.Time) {
	horizon := time.Duration(c.opts.TenantBurst / c.opts.TenantRate * float64(time.Second))
	for k, b := range c.tenants {
		if now.Sub(b.last) > horizon {
			delete(c.tenants, k)
		}
	}
}

// Acquire admits one request for tenant, blocking in the FIFO queue if
// the concurrency limit is reached. On success it returns a release
// function the caller MUST invoke exactly once when the request
// finishes. On refusal it returns a *ShedError (or the context error,
// when the caller gave up while queued).
func (c *Controller) Acquire(ctx context.Context, tenant string) (release func(), err error) {
	if c.opts.TenantRate > 0 {
		if ok, retry := c.takeToken(tenant); !ok {
			c.bookShed(ReasonRateLimit)
			return nil, &ShedError{Reason: ReasonRateLimit, RetryAfter: retry}
		}
	}
	if c.opts.MaxConcurrent <= 0 {
		if c.admitted != nil {
			c.admitted.Inc()
		}
		return func() {}, nil
	}

	c.mu.Lock()
	if c.inflight < c.opts.MaxConcurrent {
		c.inflight++
		c.setGaugesLocked()
		admitted := c.admitted
		c.mu.Unlock()
		if admitted != nil {
			admitted.Inc()
		}
		if c.waitSeconds != nil {
			c.waitSeconds.Observe(0)
		}
		return c.releaseFunc(), nil
	}
	if len(c.queue) >= c.opts.MaxQueue {
		c.mu.Unlock()
		c.bookShed(ReasonQueueFull)
		return nil, &ShedError{Reason: ReasonQueueFull, RetryAfter: c.opts.RetryAfter}
	}
	w := &waiter{ch: make(chan struct{}, 1)}
	c.queue = append(c.queue, w)
	c.setGaugesLocked()
	queuedCtr := c.queued
	c.mu.Unlock()
	if queuedCtr != nil {
		queuedCtr.Inc()
	}

	start := c.opts.now()
	var timeout <-chan time.Time
	if c.opts.QueueTimeout > 0 {
		t := time.NewTimer(c.opts.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-w.ch:
		if c.waitSeconds != nil {
			c.waitSeconds.Observe(c.opts.now().Sub(start).Seconds())
		}
		if c.admitted != nil {
			c.admitted.Inc()
		}
		return c.releaseFunc(), nil
	case <-ctx.Done():
		if c.abandon(w) {
			return nil, ctx.Err()
		}
		// Granted concurrently with the cancellation: we hold a slot
		// nobody will use — pass it on.
		c.releaseSlot()
		return nil, ctx.Err()
	case <-timeout:
		if !c.abandon(w) {
			// Granted concurrently with the timeout; pass the slot on.
			c.releaseSlot()
		}
		c.bookShed(ReasonQueueTimeout)
		return nil, &ShedError{Reason: ReasonQueueTimeout, RetryAfter: c.opts.RetryAfter}
	}
}

// abandon removes w from the queue, reporting false when w was already
// granted a slot (in which case the caller owns that slot and must
// release it).
func (c *Controller) abandon(w *waiter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w.granted {
		return false
	}
	w.abandoned = true
	for i, q := range c.queue {
		if q == w {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			break
		}
	}
	c.setGaugesLocked()
	return true
}

// releaseFunc builds the idempotence-guarded release closure handed to
// admitted requests.
func (c *Controller) releaseFunc() func() {
	var once sync.Once
	return func() { once.Do(c.releaseSlot) }
}

// releaseSlot hands the freed slot to the head of the wait queue, or
// decrements inflight when nobody is waiting. FIFO order is the point:
// the queue is a fairness guarantee, not just a buffer.
func (c *Controller) releaseSlot() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.queue) > 0 {
		head := c.queue[0]
		c.queue = c.queue[1:]
		if head.abandoned {
			continue
		}
		head.granted = true
		head.ch <- struct{}{}
		c.setGaugesLocked()
		return
	}
	c.inflight--
	c.setGaugesLocked()
}

// setGaugesLocked refreshes the depth/inflight gauges; caller holds mu.
func (c *Controller) setGaugesLocked() {
	if c.queueDepth != nil {
		c.queueDepth.Set(float64(len(c.queue)))
		c.inflightG.Set(float64(c.inflight))
	}
}
