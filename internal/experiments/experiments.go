// Package experiments regenerates every table and figure of the tutorial
// paper (see DESIGN.md §4 for the experiment index). Each Run* function
// drives the relevant modules end to end, prints the artifact in the
// paper's shape to the supplied writer, and returns the measured numbers
// so tests and benchmarks can assert on them. cmd/nsdf-experiments is the
// CLI wrapper; bench_test.go at the repository root wraps each run in a
// testing.B benchmark.
package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"nsdfgo/internal/cache"
	"nsdfgo/internal/cloudsim"
	"nsdfgo/internal/core"
	"nsdfgo/internal/dem"
	"nsdfgo/internal/geotiled"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/metrics"
	"nsdfgo/internal/netmon"
	"nsdfgo/internal/query"
	"nsdfgo/internal/raster"
	"nsdfgo/internal/storage"
	"nsdfgo/internal/survey"
	"nsdfgo/internal/tiff"
)

// Seed fixes every synthetic input so reruns are identical.
const Seed = 20240624

// TableIResult carries the regenerated participant table.
type TableIResult struct {
	// Sessions are the four tutorial deliveries.
	Sessions []survey.Session
	// Total is the participant sum (paper: 108).
	Total int
}

// RunTableI regenerates Table I (participants per session).
func RunTableI(w io.Writer) (TableIResult, error) {
	sessions := survey.PaperSessions()
	fmt.Fprintln(w, "== Table I: participants and professional backgrounds across tutorial presentations ==")
	fmt.Fprint(w, survey.RenderTable(sessions))
	return TableIResult{Sessions: sessions, Total: survey.Total(sessions)}, nil
}

// Fig1Result reports the capability self-test behind the goals figure.
type Fig1Result struct {
	// Goals maps each tutorial goal to whether the stack demonstrates it.
	Goals map[string]bool
}

// RunFig1 regenerates Fig. 1 as a capability checklist: each tutorial
// goal is exercised against the library and reported.
func RunFig1(w io.Writer) (Fig1Result, error) {
	fmt.Fprintln(w, "== Fig. 1: tutorial goals, demonstrated against the library ==")
	res := Fig1Result{Goals: map[string]bool{}}

	// Goal 1: construct a modular workflow on top of NSDF.
	fabric := core.NewFabric()
	wf, err := fabric.TutorialWorkflow(core.TutorialConfig{Width: 64, Height: 32, Seed: Seed})
	if err != nil {
		return res, err
	}
	//lint:allow ctxbackground experiment harness runs standalone from the CLI
	_, trail, err := wf.Run(context.Background())
	res.Goals["construct a modular workflow on top of NSDF"] = err == nil && !trail.Failed()

	// Goal 2: upload, download, and stream data (public + private).
	//lint:allow ctxbackground experiment harness runs standalone from the CLI
	ctx := context.Background()
	priv := storage.NewMemStore()
	upErr := priv.Put(ctx, "probe/object", []byte("payload"))
	_, downErr := priv.Get(ctx, "probe/object")
	res.Goals["upload, download, and stream data"] = upErr == nil && downErr == nil

	// Goal 3: deploy NSDF services such as the NSDF-dashboard.
	dashboardOK := false
	if bbEngine, err2 := func() (*query.Engine, error) {
		//lint:allow ctxbackground experiment harness runs standalone from the CLI
		bb, _, err := wf.Run(context.Background())
		if err != nil {
			return nil, err
		}
		return core.Fetch[*query.Engine](bb, core.KeyEngine)
	}(); err2 == nil && bbEngine != nil {
		dashboardOK = true
	}
	res.Goals["deploy NSDF services such as the NSDF-dashboard"] = dashboardOK

	for _, goal := range sortedKeys(res.Goals) {
		status := "FAIL"
		if res.Goals[goal] {
			status = "ok"
		}
		fmt.Fprintf(w, "  [%-4s] %s\n", status, goal)
	}
	return res, nil
}

// Fig2Result carries the testbed measurement campaign.
type Fig2Result struct {
	// Report is the full-mesh probe aggregation.
	Report *netmon.Report
	// Constraints are the flagged pairs under the paper-era requirements.
	Constraints []netmon.Constraint
}

// RunFig2 regenerates Fig. 2: the NSDF testbed structure with its
// computing/networking/storage services, reported as the NSDF-Plugin's
// latency and throughput matrices plus the flagged constraints.
func RunFig2(w io.Writer) (Fig2Result, error) {
	net, err := netmon.NewNetwork(netmon.Testbed(), Seed)
	if err != nil {
		return Fig2Result{}, err
	}
	rep, err := net.Measure(20)
	if err != nil {
		return Fig2Result{}, err
	}
	fmt.Fprintln(w, "== Fig. 2: NSDF testbed structure (8 entry points, full-mesh probes) ==")
	fmt.Fprint(w, rep.LatencyMatrix())
	fmt.Fprintln(w)
	fmt.Fprint(w, rep.ThroughputMatrix())
	cons := rep.Constraints(60*time.Millisecond, 15e9)
	fmt.Fprintf(w, "\nconstraints (RTT > 60ms or throughput < 15 Gbps): %d pairs\n", len(cons))
	for _, c := range cons {
		fmt.Fprintf(w, "  %-16s %s\n", c.Pair, c.Reason)
	}
	return Fig2Result{Report: rep, Constraints: cons}, nil
}

// Fig3Result carries the cross-environment conversion measurements.
type Fig3Result struct {
	// Sources maps each source environment to its fetch+convert time.
	Sources map[string]time.Duration
	// Bytes is the TIFF payload size converted from each source.
	Bytes int64
}

// RunFig3 regenerates Fig. 3: the data conversion process across
// environments — the same TIFF is fetched from three differently
// conditioned stores (local, regional cloud, cross-country cloud) and
// converted to IDX, timing each path.
func RunFig3(w io.Writer) (Fig3Result, error) {
	fmt.Fprintln(w, "== Fig. 3: data conversion across storage environments ==")
	g := dem.Scale(dem.FBM(256, 256, Seed, dem.DefaultFBM()), 0, 2000)
	var tiffBuf bytes.Buffer
	if err := tiff.Encode(&tiffBuf, tiff.FromGrid(g), tiff.EncodeOptions{Compression: tiff.CompressionDeflate}); err != nil {
		return Fig3Result{}, err
	}
	payload := tiffBuf.Bytes()
	//lint:allow ctxbackground experiment harness runs standalone from the CLI
	ctx := context.Background()

	profiles := map[string]storage.NetworkProfile{
		"local":         storage.ProfileLocal,
		"regional":      storage.ProfileRegional,
		"cross-country": storage.ProfileCrossCountry,
	}
	res := Fig3Result{Sources: map[string]time.Duration{}, Bytes: int64(len(payload))}
	for _, name := range sortedKeys(profiles) {
		src := storage.NewConditioned(storage.NewMemStore(), profiles[name], Seed)
		if err := src.Put(ctx, "terrain/elevation.tif", payload); err != nil {
			return res, err
		}
		start := time.Now()
		data, err := src.Get(ctx, "terrain/elevation.tif")
		if err != nil {
			return res, err
		}
		im, err := tiff.DecodeBytes(data)
		if err != nil {
			return res, err
		}
		meta, err := idx.NewMeta([]int{im.Width, im.Height}, []idx.Field{{Name: "elevation", Type: idx.Float32}})
		if err != nil {
			return res, err
		}
		ds, err := idx.Create(ctx, idx.NewMemBackend(), meta)
		if err != nil {
			return res, err
		}
		if err := ds.WriteGrid(ctx, "elevation", 0, im.Grid()); err != nil {
			return res, err
		}
		res.Sources[name] = time.Since(start)
		fmt.Fprintf(w, "  %-14s fetch+convert %8.1fms  (%d TIFF bytes)\n", name, float64(res.Sources[name])/1e6, len(payload))
	}
	return res, nil
}

// Fig4Result carries the four-step workflow run.
type Fig4Result struct {
	// Trail is the provenance record.
	Trail *core.Trail
	// StepElapsed maps step name to duration.
	StepElapsed map[string]time.Duration
}

// RunFig4 regenerates Fig. 4: the four sequential workflow steps, timed
// and recorded in a provenance trail.
func RunFig4(w io.Writer) (Fig4Result, error) {
	fabric := core.NewFabric()
	wf, err := fabric.TutorialWorkflow(core.TutorialConfig{Width: 256, Height: 128, Seed: Seed})
	if err != nil {
		return Fig4Result{}, err
	}
	//lint:allow ctxbackground experiment harness runs standalone from the CLI
	_, trail, err := wf.Run(context.Background())
	if err != nil {
		return Fig4Result{}, err
	}
	fmt.Fprintln(w, "== Fig. 4: four-step modular workflow (generate -> convert -> validate -> visualize) ==")
	fmt.Fprint(w, trail.String())
	res := Fig4Result{Trail: trail, StepElapsed: map[string]time.Duration{}}
	for _, r := range trail.Records {
		res.StepElapsed[r.Step] = r.Elapsed
	}
	return res, nil
}

// Fig5Result carries the GEOtiled scaling measurements.
type Fig5Result struct {
	// UntiledElapsed is the single-pass baseline.
	UntiledElapsed time.Duration
	// TiledElapsed maps worker count to the tiled runtime.
	TiledElapsed map[int]time.Duration
	// Identical reports that every tiled output matched the baseline.
	Identical bool
	// Cores is GOMAXPROCS at run time; wall-clock speedup is only
	// expected when it exceeds 1.
	Cores int
}

// RunFig5 regenerates Fig. 5: GEOtiled terrain-parameter generation —
// tiled computation across worker counts versus the untiled baseline,
// with bit-for-bit accuracy preservation checked.
func RunFig5(w io.Writer) (Fig5Result, error) {
	fmt.Fprintln(w, "== Fig. 5: GEOtiled terrain generation (tiled vs untiled, accuracy preserved) ==")
	d := dem.Scale(dem.FBM(1024, 1024, Seed, dem.DefaultFBM()), 0, 2500)
	res := Fig5Result{TiledElapsed: map[int]time.Duration{}, Identical: true, Cores: runtime.GOMAXPROCS(0)}
	fmt.Fprintf(w, "  available cores: %d\n", res.Cores)

	start := time.Now()
	base, err := geotiled.Compute(d, geotiled.Slope, geotiled.Options{})
	if err != nil {
		return res, err
	}
	res.UntiledElapsed = time.Since(start)
	fmt.Fprintf(w, "  untiled baseline: %8.1fms\n", float64(res.UntiledElapsed)/1e6)

	for _, workers := range []int{1, 2, 4, 8} {
		start = time.Now()
		tiled, err := geotiled.ComputeTiled(d, geotiled.Slope, geotiled.Options{TileSize: 256, Workers: workers})
		if err != nil {
			return res, err
		}
		elapsed := time.Since(start)
		res.TiledElapsed[workers] = elapsed
		same := raster.Equal(base, tiled)
		if !same {
			res.Identical = false
		}
		fmt.Fprintf(w, "  tiled %d workers: %8.1fms  speedup %.2fx  identical=%v\n",
			workers, float64(elapsed)/1e6, float64(res.UntiledElapsed)/float64(elapsed), same)
	}
	return res, nil
}

// Fig6Result carries the static-validation metrics.
type Fig6Result struct {
	// Reports maps each terrain parameter to its TIFF-vs-IDX comparison.
	Reports map[string]metrics.Report
}

// RunFig6 regenerates Fig. 6: static visualization validation — the
// original TIFF-based rasters compared to the IDX round trip with
// scientific metrics. The lossless path must be identical.
func RunFig6(w io.Writer) (Fig6Result, error) {
	fmt.Fprintln(w, "== Fig. 6: static validation of TIFF-derived vs IDX-derived rasters ==")
	ctx := context.Background() //lint:allow ctxbackground experiment harness runs standalone from the CLI
	d := dem.Tennessee(512, 256, Seed)
	res := Fig6Result{Reports: map[string]metrics.Report{}}
	for _, p := range geotiled.TutorialParams {
		g, err := geotiled.ComputeTiled(d, p, geotiled.Options{})
		if err != nil {
			return res, err
		}
		// TIFF round trip.
		var buf bytes.Buffer
		if err := tiff.Encode(&buf, tiff.FromGrid(g), tiff.EncodeOptions{Compression: tiff.CompressionDeflate}); err != nil {
			return res, err
		}
		im, err := tiff.DecodeBytes(buf.Bytes())
		if err != nil {
			return res, err
		}
		// IDX round trip.
		meta, err := idx.NewMeta([]int{g.W, g.H}, []idx.Field{{Name: p.String(), Type: idx.Float32}})
		if err != nil {
			return res, err
		}
		ds, err := idx.Create(ctx, idx.NewMemBackend(), meta)
		if err != nil {
			return res, err
		}
		if err := ds.WriteGrid(ctx, p.String(), 0, im.Grid()); err != nil {
			return res, err
		}
		back, _, err := ds.ReadFull(ctx, p.String(), 0)
		if err != nil {
			return res, err
		}
		rep, err := metrics.Compare(g.Data, back.Data, g.W, g.H)
		if err != nil {
			return res, err
		}
		res.Reports[p.String()] = rep
		fmt.Fprintf(w, "  %-10s %s\n", p, rep)
	}
	return res, nil
}

// Fig7Result carries the dashboard interaction measurements.
type Fig7Result struct {
	// LevelBytes maps resolution level to bytes fetched for a pan/zoom mix.
	LevelBytes map[int]int64
	// ColdElapsed and WarmElapsed time the same interaction mix against a
	// cross-country store with a cold and a warm cache.
	ColdElapsed, WarmElapsed time.Duration
}

// RunFig7 regenerates Fig. 7: the interactive dashboard session — a
// zoom/pan/snip interaction mix against a remote (conditioned) store,
// showing progressive refinement costs and the effect of the cache.
func RunFig7(w io.Writer) (Fig7Result, error) {
	fmt.Fprintln(w, "== Fig. 7: interactive dashboard session against a remote store ==")
	ctx := context.Background() //lint:allow ctxbackground experiment harness runs standalone from the CLI
	meta, err := idx.NewMeta([]int{512, 512}, []idx.Field{{Name: "elevation", Type: idx.Float32}})
	if err != nil {
		return Fig7Result{}, err
	}
	meta.BitsPerBlock = 12
	remote := storage.NewConditioned(storage.NewMemStore(), storage.ProfileCrossCountry, Seed)
	ds, err := idx.Create(ctx, storage.NewIDXBackend(remote, "conus"), meta)
	if err != nil {
		return Fig7Result{}, err
	}
	g := dem.Scale(dem.FBM(512, 512, Seed, dem.DefaultFBM()), 0, 3000)
	if err := ds.WriteGrid(ctx, "elevation", 0, g); err != nil {
		return Fig7Result{}, err
	}
	engine := query.New(ds, 64<<20)

	res := Fig7Result{LevelBytes: map[int]int64{}}
	interact := func(recordLevels bool) (time.Duration, error) {
		start := time.Now()
		// Zoomed-out overview, progressively refined. Only the cold pass
		// reflects real transfers, so only it records the (cumulative)
		// fetch volume per refinement level.
		var fetched int64
		err := engine.Progressive(ctx, query.Request{Field: "elevation", Level: query.LevelFull}, 6, 4, func(r query.Result) error {
			fetched += r.Stats.BytesRead
			if recordLevels {
				res.LevelBytes[r.Level] = fetched
			}
			return nil
		})
		if err != nil {
			return 0, err
		}
		// Pan: four quadrant reads at a medium level.
		quadrants := []idx.Box{
			{X0: 0, Y0: 0, X1: 256, Y1: 256},
			{X0: 256, Y0: 0, X1: 512, Y1: 256},
			{X0: 0, Y0: 256, X1: 256, Y1: 512},
			{X0: 256, Y0: 256, X1: 512, Y1: 512},
		}
		for _, b := range quadrants {
			if _, err := engine.Read(ctx, query.Request{Field: "elevation", Box: b, Level: 14}); err != nil {
				return 0, err
			}
		}
		// Snip: full-resolution crop of the centre.
		if _, err := engine.Read(ctx, query.Request{Field: "elevation", Box: idx.Box{X0: 192, Y0: 192, X1: 320, Y1: 320}, Level: query.LevelFull}); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	if res.ColdElapsed, err = interact(true); err != nil {
		return res, err
	}
	if res.WarmElapsed, err = interact(false); err != nil {
		return res, err
	}
	for _, level := range sortedIntKeys(res.LevelBytes) {
		fmt.Fprintf(w, "  refine to level %2d: %8d compressed bytes fetched (cumulative)\n", level, res.LevelBytes[level])
	}
	fmt.Fprintf(w, "  interaction mix: cold cache %8.1fms, warm cache %8.1fms (%.0fx)\n",
		float64(res.ColdElapsed)/1e6, float64(res.WarmElapsed)/1e6,
		float64(res.ColdElapsed)/float64(max64(1, int64(res.WarmElapsed))))
	return res, nil
}

// Fig8Result carries the survey distributions.
type Fig8Result struct {
	// Distributions are the four question histograms.
	Distributions []survey.Distribution
}

// RunFig8 regenerates Fig. 8: the four survey charts, synthesised for the
// 108 participants of Table I under the paper's "overwhelmingly positive"
// calibration.
func RunFig8(w io.Writer) (Fig8Result, error) {
	n := survey.Total(survey.PaperSessions())
	dists := survey.SynthesizeResponses(survey.Fig8Questions(), n, Seed)
	fmt.Fprintln(w, "== Fig. 8: tutorial survey responses (user experience & technology exposure) ==")
	for i := range dists {
		fmt.Fprint(w, survey.RenderChart(&dists[i], 40))
	}
	return Fig8Result{Distributions: dists}, nil
}

// Claim20Result carries the size-reduction measurements.
type Claim20Result struct {
	// TIFFBytes and IDXBytes map parameter name to stored size.
	TIFFBytes, IDXBytes map[string]int64
	// MeanReduction is 1 - sum(idx)/sum(tiff).
	MeanReduction float64
	// AllIdentical confirms accuracy preservation.
	AllIdentical bool
}

// RunClaim20 measures the paper's §IV-B claim: "converting files from
// TIFF to IDX reduces file size by approximately 20% while preserving
// data accuracy". Both containers hold the same float32 samples with
// DEFLATE compression; IDX's HZ reordering groups spatially-coherent
// samples, which is where the additional reduction comes from.
func RunClaim20(w io.Writer) (Claim20Result, error) {
	fmt.Fprintln(w, "== Claim §IV-B: TIFF -> IDX size reduction with accuracy preserved ==")
	ctx := context.Background() //lint:allow ctxbackground experiment harness runs standalone from the CLI
	d := dem.Tennessee(1024, 512, Seed)
	res := Claim20Result{TIFFBytes: map[string]int64{}, IDXBytes: map[string]int64{}, AllIdentical: true}
	var tiffTotal, idxTotal int64
	for _, p := range geotiled.TutorialParams {
		g, err := geotiled.ComputeTiled(d, p, geotiled.Options{})
		if err != nil {
			return res, err
		}
		var buf bytes.Buffer
		if err := tiff.Encode(&buf, tiff.FromGrid(g), tiff.EncodeOptions{Compression: tiff.CompressionDeflate}); err != nil {
			return res, err
		}
		res.TIFFBytes[p.String()] = int64(buf.Len())
		tiffTotal += int64(buf.Len())

		meta, err := idx.NewMeta([]int{g.W, g.H}, []idx.Field{{Name: p.String(), Type: idx.Float32}})
		if err != nil {
			return res, err
		}
		ds, err := idx.Create(ctx, idx.NewMemBackend(), meta)
		if err != nil {
			return res, err
		}
		if err := ds.WriteGrid(ctx, p.String(), 0, g); err != nil {
			return res, err
		}
		n, err := ds.StoredBytes(ctx, p.String(), 0)
		if err != nil {
			return res, err
		}
		res.IDXBytes[p.String()] = n
		idxTotal += n

		back, _, err := ds.ReadFull(ctx, p.String(), 0)
		if err != nil {
			return res, err
		}
		if !raster.Equal(g, back) {
			res.AllIdentical = false
		}
		fmt.Fprintf(w, "  %-10s TIFF %9d B   IDX %9d B   reduction %5.1f%%\n",
			p, buf.Len(), n, 100*(1-float64(n)/float64(buf.Len())))
	}
	res.MeanReduction = 1 - float64(idxTotal)/float64(tiffTotal)
	fmt.Fprintf(w, "  overall: %5.1f%% size reduction, accuracy preserved=%v (paper: ~20%%)\n",
		100*res.MeanReduction, res.AllIdentical)
	return res, nil
}

// ClaimCacheResult carries the cold/warm remote-read comparison.
type ClaimCacheResult struct {
	// Cold and Warm time a full coarse-to-fine read against a
	// cross-country store.
	Cold, Warm time.Duration
	// HitRate is the block-cache hit rate after the warm pass.
	HitRate float64
}

// RunClaimCache measures §III-A's caching claim: warm-cache access must
// be far faster than cold remote access.
func RunClaimCache(w io.Writer) (ClaimCacheResult, error) {
	fmt.Fprintln(w, "== Claim §III-A: caching-enabled streaming (cold vs warm) ==")
	ctx := context.Background() //lint:allow ctxbackground experiment harness runs standalone from the CLI
	meta, err := idx.NewMeta([]int{256, 256}, []idx.Field{{Name: "elevation", Type: idx.Float32}})
	if err != nil {
		return ClaimCacheResult{}, err
	}
	meta.BitsPerBlock = 12
	remote := storage.NewConditioned(storage.NewMemStore(), storage.ProfileCrossCountry, Seed)
	ds, err := idx.Create(ctx, storage.NewIDXBackend(remote, "ds"), meta)
	if err != nil {
		return ClaimCacheResult{}, err
	}
	if err := ds.WriteGrid(ctx, "elevation", 0, dem.Scale(dem.FBM(256, 256, Seed, dem.DefaultFBM()), 0, 1000)); err != nil {
		return ClaimCacheResult{}, err
	}
	lru := cache.NewLRU(64 << 20)
	ds.SetCache(lru)
	var res ClaimCacheResult
	start := time.Now()
	if _, _, err := ds.ReadFull(ctx, "elevation", 0); err != nil {
		return res, err
	}
	res.Cold = time.Since(start)
	start = time.Now()
	if _, _, err := ds.ReadFull(ctx, "elevation", 0); err != nil {
		return res, err
	}
	res.Warm = time.Since(start)
	res.HitRate = lru.Stats().HitRate()
	fmt.Fprintf(w, "  cold %8.1fms   warm %8.3fms   speedup %.0fx   hit rate %.2f\n",
		float64(res.Cold)/1e6, float64(res.Warm)/1e6,
		float64(res.Cold)/float64(max64(1, int64(res.Warm))), res.HitRate)
	return res, nil
}

// ClaimCloudResult carries the multi-cloud acquisition comparison.
type ClaimCloudResult struct {
	// PerPolicy maps policy name to its outcome.
	PerPolicy map[string]CloudOutcome
}

// CloudOutcome summarises one acquisition policy's run.
type CloudOutcome struct {
	// Clusters is the number of provider allocations used.
	Clusters int
	// Nodes is the total node count.
	Nodes int
	// Makespan is the slowest cluster's boot+compute span.
	Makespan time.Duration
	// CostUSD is the total commercial spend.
	CostUSD float64
}

// RunClaimCloud exercises the NSDF-Cloud service (cited as the fabric's
// ad-hoc compute layer): a GEOtiled-scale bundle of 400 tile tasks is
// scheduled on 24 nodes acquired across academic and commercial clouds
// under both policies. Expected shape: Cheapest spends (near) zero
// dollars; Fastest finishes sooner thanks to quick-booting commercial
// capacity.
func RunClaimCloud(w io.Writer) (ClaimCloudResult, error) {
	fmt.Fprintln(w, "== NSDF-Cloud: ad-hoc clusters across academic and commercial clouds ==")
	tasks := make([]cloudsim.Task, 400)
	for i := range tasks {
		tasks[i] = cloudsim.Task{ID: fmt.Sprintf("tile-%03d", i), Work: 0.02} // 8 core-hours total
	}
	res := ClaimCloudResult{PerPolicy: map[string]CloudOutcome{}}
	for _, pol := range []struct {
		name   string
		policy cloudsim.Policy
	}{{"cheapest", cloudsim.Cheapest}, {"fastest", cloudsim.Fastest}} {
		sim, err := cloudsim.NewSim(cloudsim.DefaultProviders(), Seed)
		if err != nil {
			return res, err
		}
		clusters, err := sim.AcquireBundle(24, pol.policy)
		if err != nil {
			return res, err
		}
		// Split the bundle proportionally to each cluster's slots and run.
		totalSlots := 0
		for _, c := range clusters {
			totalSlots += c.Nodes * c.Flavor.VCPUs
		}
		outcome := CloudOutcome{Clusters: len(clusters)}
		offset := 0
		for i, c := range clusters {
			outcome.Nodes += c.Nodes
			share := len(tasks) * c.Nodes * c.Flavor.VCPUs / totalSlots
			if i == len(clusters)-1 {
				share = len(tasks) - offset
			}
			if share == 0 {
				continue
			}
			rep, err := c.Run(tasks[offset : offset+share])
			if err != nil {
				return res, err
			}
			offset += share
			if rep.Elapsed > outcome.Makespan {
				outcome.Makespan = rep.Elapsed
			}
			outcome.CostUSD += rep.CostUSD
		}
		res.PerPolicy[pol.name] = outcome
		fmt.Fprintf(w, "  %-9s %d clusters, %2d nodes: makespan %7.1fmin, cost $%.2f\n",
			pol.name, outcome.Clusters, outcome.Nodes, outcome.Makespan.Minutes(), outcome.CostUSD)
	}
	return res, nil
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedIntKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// discard drops the typed result so every Run* fits one signature.
func discard[T any](f func(io.Writer) (T, error)) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := f(w)
		return err
	}
}

// Runners maps experiment ids (DESIGN.md §4) to their runners, in paper
// order. The CLI's -run flag and the -run all loop both draw from it.
func Runners() []struct {
	ID  string
	Run func(io.Writer) error
} {
	return []struct {
		ID  string
		Run func(io.Writer) error
	}{
		{"fig1", discard(RunFig1)},
		{"fig2", discard(RunFig2)},
		{"fig3", discard(RunFig3)},
		{"fig4", discard(RunFig4)},
		{"fig5", discard(RunFig5)},
		{"fig6", discard(RunFig6)},
		{"fig7", discard(RunFig7)},
		{"fig8", discard(RunFig8)},
		{"tableI", discard(RunTableI)},
		{"claim20", discard(RunClaim20)},
		{"claimcache", discard(RunClaimCache)},
		{"claimcloud", discard(RunClaimCloud)},
	}
}

// All runs every experiment in paper order.
func All(w io.Writer) error {
	for _, r := range Runners() {
		if err := r.Run(w); err != nil {
			return fmt.Errorf("experiments: %s: %w", r.ID, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
