//go:build !race

package experiments

// raceEnabled reports whether the race detector is compiled in. Timing-
// shape assertions (simulated WAN latency dominating CPU time) are
// skipped under -race, whose instrumentation slows CPU-bound code enough
// to invert the expected orderings.
const raceEnabled = false
