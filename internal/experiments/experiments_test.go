package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"
)

func TestTableIMatchesPaper(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunTableI(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 108 {
		t.Errorf("total = %d, want 108", res.Total)
	}
	if len(res.Sessions) != 4 {
		t.Errorf("%d sessions", len(res.Sessions))
	}
	if !strings.Contains(buf.String(), "108") {
		t.Error("rendered table missing the total")
	}
}

func TestFig1AllGoalsDemonstrated(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunFig1(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Goals) != 3 {
		t.Fatalf("%d goals, want 3 (Fig. 1)", len(res.Goals))
	}
	for goal, ok := range res.Goals {
		if !ok {
			t.Errorf("goal not demonstrated: %s", goal)
		}
	}
}

func TestFig2ShapeHolds(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunFig2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Sites) != 8 {
		t.Errorf("%d sites, want 8", len(res.Report.Sites))
	}
	// Cross-country pairs must exceed regional pairs in RTT: the paper's
	// geo-distribution shape.
	far := res.Report.Pairs["sdsc->mghpcc"]
	near := res.Report.Pairs["sdsc->utah"]
	if far.MeanRTT <= near.MeanRTT {
		t.Errorf("RTT shape inverted: far %v <= near %v", far.MeanRTT, near.MeanRTT)
	}
	// The commercial 10 Gbps site must be the throughput constraint.
	foundCloud := false
	for _, c := range res.Constraints {
		if strings.Contains(c.Pair, "cloud") {
			foundCloud = true
		}
	}
	if !foundCloud {
		t.Error("cloud uplink not flagged as a constraint")
	}
}

func TestFig3ShapeHolds(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunFig3(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if raceEnabled {
		t.Skip("timing-shape assertion unreliable under the race detector's slowdown")
	}
	local := res.Sources["local"]
	regional := res.Sources["regional"]
	cross := res.Sources["cross-country"]
	if !(local < regional && regional < cross) {
		t.Errorf("conversion-time ordering broken: local=%v regional=%v cross=%v", local, regional, cross)
	}
}

func TestFig4WorkflowCompletes(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunFig4(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trail.Failed() {
		t.Fatalf("workflow failed:\n%s", res.Trail)
	}
	for _, step := range []string{"generate", "convert", "validate", "visualize"} {
		if _, ok := res.StepElapsed[step]; !ok {
			t.Errorf("step %s missing from trail", step)
		}
	}
}

func TestFig5TiledCorrectAndScales(t *testing.T) {
	if testing.Short() {
		t.Skip("1024x1024 terrain sweep")
	}
	var buf bytes.Buffer
	res, err := RunFig5(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Identical {
		t.Error("tiled output diverged from untiled baseline")
	}
	// Shape: with >1 cores, 8 workers must beat 1 worker. On a single
	// core, wall-clock parallel speedup is physically unavailable, so we
	// only require that tiling overhead stays bounded.
	if res.Cores > 1 {
		if res.TiledElapsed[8] >= res.TiledElapsed[1] {
			t.Errorf("no scaling on %d cores: 1w=%v 8w=%v", res.Cores, res.TiledElapsed[1], res.TiledElapsed[8])
		}
	} else if res.TiledElapsed[1] > res.UntiledElapsed*3 {
		t.Errorf("tiling overhead too high: untiled=%v tiled(1w)=%v", res.UntiledElapsed, res.TiledElapsed[1])
	}
}

func TestFig6AllIdentical(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunFig6(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 4 {
		t.Fatalf("%d reports", len(res.Reports))
	}
	for name, rep := range res.Reports {
		if !rep.Identical {
			t.Errorf("%s: lossless path not identical: %s", name, rep)
		}
		if rep.SSIM < 0.999 {
			t.Errorf("%s: SSIM %v", name, rep.SSIM)
		}
	}
}

func TestFig7ProgressiveAndCacheShape(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunFig7(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Bytes fetched must grow with refinement level.
	levels := sortedIntKeys(res.LevelBytes)
	if len(levels) < 3 {
		t.Fatalf("only %d refinement levels", len(levels))
	}
	for i := 1; i < len(levels); i++ {
		if res.LevelBytes[levels[i]] < res.LevelBytes[levels[i-1]] {
			t.Errorf("bytes not monotone across levels: %v", res.LevelBytes)
		}
	}
	// Warm cache must beat the cold remote pass by a wide margin.
	if res.WarmElapsed*5 > res.ColdElapsed {
		t.Errorf("cache ineffective: cold=%v warm=%v", res.ColdElapsed, res.WarmElapsed)
	}
}

func TestFig8OverwhelminglyPositive(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunFig8(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Distributions) != 4 {
		t.Fatalf("%d charts, want 4", len(res.Distributions))
	}
	for _, d := range res.Distributions {
		if d.N() != 108 {
			t.Errorf("question %s: n=%d", d.Question.ID, d.N())
		}
		if d.PercentPositive() < 0.75 {
			t.Errorf("question %s: positive=%v", d.Question.ID, d.PercentPositive())
		}
	}
}

func TestClaim20ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("1024x512 four-parameter conversion")
	}
	var buf bytes.Buffer
	res, err := RunClaim20(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllIdentical {
		t.Error("accuracy not preserved")
	}
	// The paper reports ~20%; accept a generous band around it since our
	// codec stack differs, but the direction (IDX smaller) must hold.
	if res.MeanReduction <= 0.05 {
		t.Errorf("mean reduction %.1f%%, want clearly positive (~20%% in the paper)", 100*res.MeanReduction)
	}
	if res.MeanReduction >= 0.6 {
		t.Errorf("mean reduction %.1f%% implausibly high", 100*res.MeanReduction)
	}
}

func TestClaimCacheShapeHolds(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunClaimCache(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !raceEnabled && res.Warm*10 > res.Cold {
		t.Errorf("warm %v not >=10x faster than cold %v", res.Warm, res.Cold)
	}
	if res.HitRate < 0.4 {
		t.Errorf("hit rate %v", res.HitRate)
	}
}

func TestClaimCloudShapeHolds(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunClaimCloud(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cheap, okC := res.PerPolicy["cheapest"]
	fast, okF := res.PerPolicy["fastest"]
	if !okC || !okF {
		t.Fatalf("policies missing: %+v", res.PerPolicy)
	}
	if cheap.CostUSD != 0 {
		t.Errorf("cheapest policy spent $%.2f; academic capacity should cover 24 nodes", cheap.CostUSD)
	}
	if fast.CostUSD <= 0 {
		t.Errorf("fastest policy spent nothing; expected commercial nodes")
	}
	if fast.Makespan >= cheap.Makespan {
		t.Errorf("fastest (%v) not quicker than cheapest (%v)", fast.Makespan, cheap.Makespan)
	}
	if cheap.Nodes != 24 || fast.Nodes != 24 {
		t.Errorf("node counts: %d / %d", cheap.Nodes, fast.Nodes)
	}
}

func TestAllRunsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	start := time.Now()
	if err := All(io.Discard); err != nil {
		t.Fatal(err)
	}
	t.Logf("full sweep in %v", time.Since(start))
}

func TestRunnersCoverEveryExperimentID(t *testing.T) {
	want := []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "tableI", "claim20", "claimcache", "claimcloud"}
	got := Runners()
	if len(got) != len(want) {
		t.Fatalf("%d runners, want %d", len(got), len(want))
	}
	for i, r := range got {
		if r.ID != want[i] {
			t.Errorf("runner %d = %s, want %s", i, r.ID, want[i])
		}
	}
}
