// Package raster defines the in-memory grid type shared by the data
// generation (GEOtiled), conversion (TIFF/IDX), analysis (SOMOSPIE), and
// visualization (dashboard) stages of the NSDF tutorial workflow: a
// row-major float32 raster with optional georeferencing.
package raster

import (
	"fmt"
	"math"
)

// Georef describes the affine mapping from pixel space to a geographic
// coordinate system, mirroring the GeoTIFF ModelTiepoint + ModelPixelScale
// convention used by the USGS DEMs in the tutorial.
type Georef struct {
	// OriginX and OriginY are the geographic coordinates of the outer
	// corner of pixel (0,0): typically west longitude and north latitude.
	OriginX, OriginY float64
	// PixelW and PixelH are the geographic extent of one pixel. PixelH is
	// positive; rows advance southward (decreasing Y), as in GeoTIFF.
	PixelW, PixelH float64
}

// PixelToGeo returns the geographic coordinates of the center of pixel (x,y).
func (g Georef) PixelToGeo(x, y int) (gx, gy float64) {
	return g.OriginX + (float64(x)+0.5)*g.PixelW, g.OriginY - (float64(y)+0.5)*g.PixelH
}

// GeoToPixel returns the pixel containing geographic point (gx,gy).
func (g Georef) GeoToPixel(gx, gy float64) (x, y int) {
	return int(math.Floor((gx - g.OriginX) / g.PixelW)), int(math.Floor((g.OriginY - gy) / g.PixelH))
}

// Grid is a row-major float32 raster. NaN samples denote nodata.
type Grid struct {
	// W and H are the raster dimensions in pixels.
	W, H int
	// Data holds W*H samples, row-major, row 0 northmost.
	Data []float32
	// Geo optionally georeferences the grid.
	Geo *Georef
}

// New allocates a zero-filled W x H grid.
func New(w, h int) *Grid {
	return &Grid{W: w, H: h, Data: make([]float32, w*h)}
}

// At returns the sample at (x,y). Out-of-bounds access panics, like slice
// indexing.
func (g *Grid) At(x, y int) float32 { return g.Data[y*g.W+x] }

// Set stores v at (x,y).
func (g *Grid) Set(x, y int, v float32) { g.Data[y*g.W+x] = v }

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	out := &Grid{W: g.W, H: g.H, Data: make([]float32, len(g.Data))}
	copy(out.Data, g.Data)
	if g.Geo != nil {
		geo := *g.Geo
		out.Geo = &geo
	}
	return out
}

// Crop returns a copy of the w x h subregion anchored at (x0,y0). The
// region must lie within the grid. Georeferencing is shifted accordingly.
func (g *Grid) Crop(x0, y0, w, h int) (*Grid, error) {
	if x0 < 0 || y0 < 0 || w <= 0 || h <= 0 || x0+w > g.W || y0+h > g.H {
		return nil, fmt.Errorf("raster: crop %dx%d at (%d,%d) outside %dx%d grid", w, h, x0, y0, g.W, g.H)
	}
	out := New(w, h)
	for y := 0; y < h; y++ {
		copy(out.Data[y*w:(y+1)*w], g.Data[(y0+y)*g.W+x0:(y0+y)*g.W+x0+w])
	}
	if g.Geo != nil {
		out.Geo = &Georef{
			OriginX: g.Geo.OriginX + float64(x0)*g.Geo.PixelW,
			OriginY: g.Geo.OriginY - float64(y0)*g.Geo.PixelH,
			PixelW:  g.Geo.PixelW,
			PixelH:  g.Geo.PixelH,
		}
	}
	return out, nil
}

// MinMax returns the smallest and largest finite samples. ok is false when
// the grid holds no finite samples.
func (g *Grid) MinMax() (lo, hi float32, ok bool) {
	lo, hi = float32(math.Inf(1)), float32(math.Inf(-1))
	for _, v := range g.Data {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		ok = true
	}
	if !ok {
		return 0, 0, false
	}
	return lo, hi, true
}

// Stats summarises the finite samples of the grid.
type Stats struct {
	// N is the number of finite samples.
	N int
	// Min, Max, Mean, and Std summarise the finite samples.
	Min, Max, Mean, Std float64
	// Nodata counts non-finite samples.
	Nodata int
}

// ComputeStats scans the grid once and returns its summary statistics.
func (g *Grid) ComputeStats() Stats {
	var s Stats
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	var sum, sumSq float64
	for _, v := range g.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			s.Nodata++
			continue
		}
		s.N++
		sum += f
		sumSq += f * f
		if f < s.Min {
			s.Min = f
		}
		if f > s.Max {
			s.Max = f
		}
	}
	if s.N == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	s.Mean = sum / float64(s.N)
	variance := sumSq/float64(s.N) - s.Mean*s.Mean
	if variance < 0 {
		variance = 0
	}
	s.Std = math.Sqrt(variance)
	return s
}

// Equal reports whether two grids have identical dimensions and bitwise
// identical samples (NaN == NaN for this purpose).
func Equal(a, b *Grid) bool {
	if a.W != b.W || a.H != b.H || len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}
