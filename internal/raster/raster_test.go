package raster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewAndAccess(t *testing.T) {
	g := New(4, 3)
	if g.W != 4 || g.H != 3 || len(g.Data) != 12 {
		t.Fatalf("New(4,3) = %dx%d with %d samples", g.W, g.H, len(g.Data))
	}
	g.Set(2, 1, 7.5)
	if g.At(2, 1) != 7.5 {
		t.Errorf("At(2,1) = %v, want 7.5", g.At(2, 1))
	}
	if g.Data[1*4+2] != 7.5 {
		t.Error("Set did not write row-major")
	}
}

func TestClone(t *testing.T) {
	g := New(2, 2)
	g.Set(0, 0, 1)
	g.Geo = &Georef{OriginX: -85, OriginY: 36, PixelW: 0.01, PixelH: 0.01}
	c := g.Clone()
	c.Set(0, 0, 99)
	c.Geo.OriginX = 0
	if g.At(0, 0) != 1 {
		t.Error("Clone shares data")
	}
	if g.Geo.OriginX != -85 {
		t.Error("Clone shares georef")
	}
}

func TestCrop(t *testing.T) {
	g := New(8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			g.Set(x, y, float32(y*8+x))
		}
	}
	g.Geo = &Georef{OriginX: 10, OriginY: 50, PixelW: 1, PixelH: 1}
	c, err := g.Crop(2, 3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.W != 4 || c.H != 2 {
		t.Fatalf("crop dims %dx%d", c.W, c.H)
	}
	if c.At(0, 0) != float32(3*8+2) {
		t.Errorf("crop(0,0) = %v", c.At(0, 0))
	}
	if c.At(3, 1) != float32(4*8+5) {
		t.Errorf("crop(3,1) = %v", c.At(3, 1))
	}
	if c.Geo.OriginX != 12 || c.Geo.OriginY != 47 {
		t.Errorf("crop georef = %+v", c.Geo)
	}
}

func TestCropBounds(t *testing.T) {
	g := New(4, 4)
	bad := [][4]int{{-1, 0, 2, 2}, {0, -1, 2, 2}, {3, 0, 2, 2}, {0, 3, 2, 2}, {0, 0, 0, 1}, {0, 0, 5, 1}}
	for _, c := range bad {
		if _, err := g.Crop(c[0], c[1], c[2], c[3]); err == nil {
			t.Errorf("Crop(%v) accepted", c)
		}
	}
	if _, err := g.Crop(0, 0, 4, 4); err != nil {
		t.Errorf("full-extent crop rejected: %v", err)
	}
}

func TestMinMax(t *testing.T) {
	g := New(2, 2)
	g.Data = []float32{3, float32(math.NaN()), -1, 7}
	lo, hi, ok := g.MinMax()
	if !ok || lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v,%v,%v", lo, hi, ok)
	}
	empty := New(1, 1)
	empty.Data[0] = float32(math.NaN())
	if _, _, ok := empty.MinMax(); ok {
		t.Error("all-NaN grid reported ok")
	}
}

func TestComputeStats(t *testing.T) {
	g := New(2, 2)
	g.Data = []float32{1, 2, 3, float32(math.NaN())}
	s := g.ComputeStats()
	if s.N != 3 || s.Nodata != 1 {
		t.Errorf("N=%d Nodata=%d", s.N, s.Nodata)
	}
	if s.Min != 1 || s.Max != 3 {
		t.Errorf("Min=%v Max=%v", s.Min, s.Max)
	}
	if math.Abs(s.Mean-2) > 1e-12 {
		t.Errorf("Mean=%v", s.Mean)
	}
	wantStd := math.Sqrt(2.0 / 3.0)
	if math.Abs(s.Std-wantStd) > 1e-9 {
		t.Errorf("Std=%v want %v", s.Std, wantStd)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	g := New(1, 1)
	g.Data[0] = float32(math.Inf(1))
	s := g.ComputeStats()
	if s.N != 0 || s.Nodata != 1 || s.Min != 0 || s.Max != 0 {
		t.Errorf("stats of all-nodata grid: %+v", s)
	}
}

func TestGeorefRoundTrip(t *testing.T) {
	geo := Georef{OriginX: -90.5, OriginY: 36.7, PixelW: 0.0003, PixelH: 0.0003}
	f := func(px, py uint8) bool {
		x, y := int(px), int(py)
		gx, gy := geo.PixelToGeo(x, y)
		rx, ry := geo.GeoToPixel(gx, gy)
		return rx == x && ry == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGeorefKnown(t *testing.T) {
	geo := Georef{OriginX: 0, OriginY: 10, PixelW: 1, PixelH: 1}
	gx, gy := geo.PixelToGeo(0, 0)
	if gx != 0.5 || gy != 9.5 {
		t.Errorf("PixelToGeo(0,0) = %v,%v", gx, gy)
	}
	x, y := geo.GeoToPixel(2.3, 7.2)
	if x != 2 || y != 2 {
		t.Errorf("GeoToPixel = %d,%d, want 2,2", x, y)
	}
}

func TestEqual(t *testing.T) {
	a := New(2, 2)
	b := New(2, 2)
	if !Equal(a, b) {
		t.Error("zero grids not equal")
	}
	nan := float32(math.NaN())
	a.Data[0], b.Data[0] = nan, nan
	if !Equal(a, b) {
		t.Error("NaN-matched grids not equal")
	}
	b.Data[3] = 1
	if Equal(a, b) {
		t.Error("different grids equal")
	}
	if Equal(a, New(2, 3)) {
		t.Error("different shapes equal")
	}
}
