package telemetry

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// formatValue renders a sample like the Prometheus text format: integers
// without a decimal point, everything else in shortest form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// withLabel splices an extra label into a rendered label signature, e.g.
// withLabel(`{a="b"}`, "le", "0.5") -> `{a="b",le="0.5"}`.
func withLabel(sig, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if sig == "" {
		return "{" + extra + "}"
	}
	return sig[:len(sig)-1] + "," + extra + "}"
}

// WriteExposition renders the registry in the Prometheus text exposition
// format: families sorted by name, series sorted by label signature,
// histograms as cumulative le-buckets plus _sum and _count plus estimated
// p50/p95/p99 quantile series (so a curl of /metrics shows percentiles
// without a query engine).
func (r *Registry) WriteExposition(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.names {
		f := r.families[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.kind); err != nil {
			return err
		}
		for _, sig := range f.order {
			s := f.series[sig]
			if err := writeSeries(w, name, s, f.kind); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, name string, s *series, kind Kind) error {
	switch {
	case s.fn != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatValue(s.fn()))
		return err
	case kind == KindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", name, s.labels, s.c.Value())
		return err
	case kind == KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatValue(s.g.Value()))
		return err
	case kind == KindHistogram:
		h := s.h
		var cum int64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			le := strconv.FormatFloat(bound, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(s.labels, "le", le), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, withLabel(s.labels, "le", "+Inf"), cum); err != nil {
			return err
		}
		snap := h.Snapshot()
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatValue(snap.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, snap.Count); err != nil {
			return err
		}
		for _, q := range [...]struct {
			q string
			v float64
		}{{"0.5", snap.P50}, {"0.95", snap.P95}, {"0.99", snap.P99}} {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", name, withLabel(s.labels, "quantile", q.q), formatValue(q.v)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteExemplars renders the exemplar view: one line per histogram
// bucket that has one, in the shape
//
//	nsdf_http_request_seconds{service="store",le="0.25"} 0.21 # trace=<id>
//
// so a suspicious bucket on /metrics links straight to a trace ID a
// student can paste into /debug/traces?federate=1 on the dashboard.
func (r *Registry) WriteExemplars(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.names {
		f := r.families[name]
		if f.kind != KindHistogram {
			continue
		}
		for _, sig := range f.order {
			s := f.series[sig]
			if s.h == nil {
				continue
			}
			for _, be := range s.h.Exemplars() {
				_, err := fmt.Fprintf(w, "%s%s %s # trace=%s\n",
					name, withLabel(s.labels, "le", be.LE),
					formatValue(be.Exemplar.Value), be.Exemplar.TraceID)
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Handler returns an http.Handler serving the text exposition — mount it
// at /metrics. With ?format=exemplars it serves the exemplar view
// (WriteExemplars) instead: per-bucket trace IDs linking latency
// outliers to /debug/traces.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.URL.Query().Get("format") == "exemplars" {
			r.WriteExemplars(w)
			return
		}
		r.WriteExposition(w)
	})
}

// StatusRecorder wraps a ResponseWriter to capture the status code for
// request accounting. A handler that never calls WriteHeader is a 200.
// The wrapper forwards the optional ResponseWriter capabilities the
// serving stack relies on: Flush reaches the inner http.Flusher (so
// wrapping middleware does not break streamed/progressive responses),
// ReadFrom reaches the inner io.ReaderFrom (preserving sendfile-style
// copies), and Unwrap lets http.ResponseController find both.
type StatusRecorder struct {
	http.ResponseWriter
	// Code is the first status code written, defaulting to 200.
	Code int
}

// NewStatusRecorder wraps w with Code preset to 200.
func NewStatusRecorder(w http.ResponseWriter) *StatusRecorder {
	return &StatusRecorder{ResponseWriter: w, Code: http.StatusOK}
}

// WriteHeader implements http.ResponseWriter.
func (r *StatusRecorder) WriteHeader(code int) {
	r.Code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush implements http.Flusher by delegating to the wrapped writer.
// When the inner writer cannot flush, this is a no-op — matching the
// behaviour of an unwrapped non-flushing writer.
func (r *StatusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ReadFrom implements io.ReaderFrom: it delegates to the inner writer
// when it supports the fast path, and falls back to a plain copy
// otherwise. The fallback deliberately hides this method from io.Copy
// (via the anonymous-struct wrapper) to avoid recursing into ReadFrom.
func (r *StatusRecorder) ReadFrom(src io.Reader) (int64, error) {
	if rf, ok := r.ResponseWriter.(io.ReaderFrom); ok {
		return rf.ReadFrom(src)
	}
	return io.Copy(struct{ io.Writer }{r.ResponseWriter}, src)
}

// Unwrap exposes the inner writer to http.ResponseController, which
// probes the whole wrapper chain for Flusher/Hijacker support.
func (r *StatusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// HTTPMetrics records per-route request counts (by status class) and a
// service-wide latency histogram — the shared middleware state for the
// catalog and dashboard servers.
type HTTPMetrics struct {
	reg      *Registry
	service  string
	lat      *Histogram
	inFlight *Gauge
}

// NewHTTPMetrics registers the nsdf_http_* families for one service.
func NewHTTPMetrics(reg *Registry, service string) *HTTPMetrics {
	return &HTTPMetrics{
		reg:      reg,
		service:  service,
		lat:      reg.Histogram("nsdf_http_request_seconds", "service", service),
		inFlight: reg.Gauge("nsdf_http_in_flight", "service", service),
	}
}

// statusClass buckets a status code as "2xx", "3xx", "4xx", or "5xx".
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// Observe records one completed request. route should be a bounded set
// of normalised route names, not raw URLs.
func (m *HTTPMetrics) Observe(route string, code int, elapsed time.Duration) {
	m.ObserveTraced(route, code, elapsed, "")
}

// ObserveTraced is Observe plus an exemplar: when traceID is non-empty
// the latency bucket the request lands in keeps it as its most recent
// exemplar (see Registry.WriteExemplars).
func (m *HTTPMetrics) ObserveTraced(route string, code int, elapsed time.Duration, traceID string) {
	m.reg.Counter("nsdf_http_requests_total",
		"service", m.service, "route", route, "class", statusClass(code)).Inc()
	m.lat.ObserveExemplar(elapsed.Seconds(), traceID)
}

// Wrap times handler and records it under route.
func (m *HTTPMetrics) Wrap(route string, handler func(http.ResponseWriter, *http.Request)) func(http.ResponseWriter, *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := NewStatusRecorder(w)
		m.inFlight.Add(1)
		start := time.Now()
		handler(rec, r)
		m.inFlight.Add(-1)
		m.Observe(route, rec.Code, time.Since(start))
	}
}

// WithRequestTimeout bounds every request's context with a deadline of d
// before handing it to next — the server-side backstop that keeps a hung
// backend from pinning a handler forever even when the client never
// disconnects. d <= 0 returns next unchanged (timeouts disabled). The
// handler itself must propagate r.Context() for the deadline to bite;
// this repository's dashboard, catalog, and storage handlers all do.
func WithRequestTimeout(next http.Handler, d time.Duration) http.Handler {
	if d <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
