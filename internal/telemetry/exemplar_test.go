package telemetry

import (
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestObserveExemplarPerBucket(t *testing.T) {
	reg := newLenientRegistry()
	h := reg.Histogram("req_seconds", "service", "dash")

	h.ObserveExemplar(0.2, "trace-mid")   // le="0.25" bucket
	h.ObserveExemplar(3, "trace-slow")    // le="5" bucket
	h.ObserveExemplar(0.21, "trace-mid2") // same bucket: last writer wins
	h.ObserveExemplar(0.0002, "")         // no trace: counted, no exemplar
	h.ObserveExemplar(math.NaN(), "x")    // NaN: dropped entirely

	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("got %d exemplars, want 2: %+v", len(ex), ex)
	}
	if ex[0].LE != "0.25" || ex[0].Exemplar.TraceID != "trace-mid2" || ex[0].Exemplar.Value != 0.21 {
		t.Fatalf("first exemplar = %+v, want le=0.25 trace-mid2 0.21", ex[0])
	}
	if ex[1].LE != "5" || ex[1].Exemplar.TraceID != "trace-slow" {
		t.Fatalf("second exemplar = %+v, want le=5 trace-slow", ex[1])
	}

	// The plain observation still landed in the counts.
	if got := h.Snapshot().Count; got != 4 {
		t.Fatalf("count %d, want 4 (NaN dropped)", got)
	}
}

func TestWriteExemplarsAndHandler(t *testing.T) {
	reg := newLenientRegistry()
	reg.Counter("ops_total").Add(3) // non-histogram families are skipped
	h := reg.Histogram("req_seconds", "service", "store")
	h.ObserveExemplar(0.2, "0123456789abcdef0123456789abcdef")

	var sb strings.Builder
	if err := reg.WriteExemplars(&sb); err != nil {
		t.Fatal(err)
	}
	want := `req_seconds{service="store",le="0.25"} 0.2 # trace=0123456789abcdef0123456789abcdef`
	if got := strings.TrimSpace(sb.String()); got != want {
		t.Fatalf("WriteExemplars:\n got %q\nwant %q", got, want)
	}

	// /metrics?format=exemplars serves the same view; the default view
	// stays the full exposition.
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=exemplars", nil))
	if got := strings.TrimSpace(rec.Body.String()); got != want {
		t.Fatalf("format=exemplars body:\n got %q\nwant %q", got, want)
	}
	rec = httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if body := rec.Body.String(); !strings.Contains(body, "req_seconds_bucket") || strings.Contains(body, "# trace=") {
		t.Fatalf("default exposition changed:\n%s", body)
	}
}

func TestHistogramExemplarConcurrent(t *testing.T) {
	reg := newLenientRegistry()
	h := reg.Histogram("req_seconds")
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				h.ObserveExemplar(0.2, "t")
				h.Exemplars()
			}
		}()
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	if got := h.Snapshot().Count; got != 4000 {
		t.Fatalf("count %d, want 4000", got)
	}
}
