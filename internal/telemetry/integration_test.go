package telemetry_test

import (
	"context"
	"testing"

	"nsdfgo/internal/dem"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/query"
	"nsdfgo/internal/telemetry"
)

// TestCacheCountersMatchReadStats reads a region cold, then re-reads it
// warm, and checks that the registry's idx block counters agree with the
// per-call ReadStats the dataset itself reports: the cold read is all
// backend fetches, the warm re-read is all cache hits.
func TestCacheCountersMatchReadStats(t *testing.T) {
	meta, err := idx.NewMeta([]int{64, 64}, []idx.Field{{Name: "elevation", Type: idx.Float32, Codec: "zlib"}})
	if err != nil {
		t.Fatal(err)
	}
	meta.BitsPerBlock = 8
	ds, err := idx.Create(context.Background(), idx.NewMemBackend(), meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteGrid(context.Background(), "elevation", 0, dem.Scale(dem.FBM(64, 64, 3, dem.DefaultFBM()), 0, 2000)); err != nil {
		t.Fatal(err)
	}

	eng := query.New(ds, 1<<20)
	reg := telemetry.NewRegistry()
	eng.Instrument(reg, "test")

	blocksRead := reg.Counter("nsdf_idx_blocks_read_total", "dataset", "test")
	blocksCached := reg.Counter("nsdf_idx_blocks_cached_total", "dataset", "test")
	bytesRead := reg.Counter("nsdf_idx_bytes_read_total", "dataset", "test")

	level := ds.Meta.MaxLevel()
	_, cold, err := ds.ReadBox(context.Background(), "elevation", 0, ds.FullBox(), level)
	if err != nil {
		t.Fatal(err)
	}
	if cold.BlocksRead == 0 {
		t.Fatal("cold read fetched no blocks; test needs a multi-block dataset")
	}
	if cold.BlocksCached != 0 {
		t.Fatalf("cold read had %d cache hits, want 0", cold.BlocksCached)
	}
	if got := blocksRead.Value(); got != int64(cold.BlocksRead) {
		t.Errorf("after cold read: blocks_read counter = %d, ReadStats.BlocksRead = %d", got, cold.BlocksRead)
	}
	if got := bytesRead.Value(); got != cold.BytesRead {
		t.Errorf("after cold read: bytes_read counter = %d, ReadStats.BytesRead = %d", got, cold.BytesRead)
	}

	_, warm, err := ds.ReadBox(context.Background(), "elevation", 0, ds.FullBox(), level)
	if err != nil {
		t.Fatal(err)
	}
	if warm.BlocksRead != 0 {
		t.Errorf("warm re-read fetched %d blocks from the backend, want 0", warm.BlocksRead)
	}
	if warm.BlocksCached != cold.BlocksRead {
		t.Errorf("warm re-read served %d blocks from cache, want %d", warm.BlocksCached, cold.BlocksRead)
	}
	if got := blocksRead.Value(); got != int64(cold.BlocksRead) {
		t.Errorf("after warm read: blocks_read counter = %d, want unchanged %d", got, cold.BlocksRead)
	}
	if got := blocksCached.Value(); got != int64(warm.BlocksCached) {
		t.Errorf("blocks_cached counter = %d, ReadStats.BlocksCached = %d", got, warm.BlocksCached)
	}

	// The cache's own fn-backed series must agree too: one miss per
	// cold-read block, one hit per warm-read block.
	hits := reg.SumFamily("nsdf_cache_hits_total")
	misses := reg.SumFamily("nsdf_cache_misses_total")
	if int64(misses) != int64(cold.BlocksRead) {
		t.Errorf("cache misses = %.0f, want %d", misses, cold.BlocksRead)
	}
	if int64(hits) != int64(warm.BlocksCached) {
		t.Errorf("cache hits = %.0f, want %d", hits, warm.BlocksCached)
	}

	// Latency histogram saw both reads.
	if snap := reg.Histogram("nsdf_idx_read_seconds", "dataset", "test").Snapshot(); snap.Count != 2 {
		t.Errorf("read latency observations = %d, want 2", snap.Count)
	}
}
