package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestRegisterBuildInfo(t *testing.T) {
	reg := NewRegistry()
	RegisterBuildInfo(reg)
	var sb strings.Builder
	if err := reg.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	var info string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "nsdf_build_info{") {
			info = line
		}
	}
	if info == "" {
		t.Fatalf("nsdf_build_info missing:\n%s", out)
	}
	if !strings.Contains(info, `go_version="`+runtime.Version()+`"`) || !strings.Contains(info, `os="`+runtime.GOOS+`"`) {
		t.Fatalf("nsdf_build_info unlabelled: %s", info)
	}
	if !strings.HasSuffix(info, "} 1") {
		t.Fatalf("nsdf_build_info is not a constant-1 gauge: %s", info)
	}
	if !strings.Contains(out, "nsdf_process_uptime_seconds") {
		t.Fatalf("nsdf_process_uptime_seconds missing:\n%s", out)
	}
}

func TestWriteHealth(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteHealth(rec, "dashboard")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var h Health
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Service != "dashboard" || h.GoVersion != runtime.Version() {
		t.Fatalf("health = %+v", h)
	}
	if h.Start.IsZero() || h.UptimeSeconds < 0 || time.Since(h.Start) < 0 {
		t.Fatalf("health timing fields = %+v", h)
	}
}
