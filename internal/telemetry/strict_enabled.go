//go:build nsdfstrict

package telemetry

// strictDefault under -tags nsdfstrict makes every new registry panic
// on a metric name that violates MetricNamePattern — the runtime
// counterpart of the metricname analyzer, for test builds.
const strictDefault = true
