package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// flushCounter is a ResponseWriter that counts Flush calls.
type flushCounter struct {
	*httptest.ResponseRecorder
	flushes int
}

func (f *flushCounter) Flush() { f.flushes++ }

// TestStatusRecorderFlushPassesThrough: wrapping a flushable writer must
// not sever the streaming path — Flush reaches the inner Flusher, both
// directly and via http.ResponseController's Unwrap probing.
func TestStatusRecorderFlushPassesThrough(t *testing.T) {
	inner := &flushCounter{ResponseRecorder: httptest.NewRecorder()}
	rec := NewStatusRecorder(inner)

	var w http.ResponseWriter = rec
	f, ok := w.(http.Flusher)
	if !ok {
		t.Fatal("StatusRecorder does not implement http.Flusher")
	}
	f.Flush()
	if inner.flushes != 1 {
		t.Fatalf("inner Flush called %d times, want 1", inner.flushes)
	}
	if err := http.NewResponseController(rec).Flush(); err != nil {
		t.Fatalf("ResponseController.Flush: %v", err)
	}
	if inner.flushes != 2 {
		t.Fatalf("inner Flush called %d times via controller, want 2", inner.flushes)
	}
}

// TestStatusRecorderFlushOnPlainWriter: flushing a non-flushable inner
// writer is a safe no-op, not a panic.
func TestStatusRecorderFlushOnPlainWriter(t *testing.T) {
	rec := NewStatusRecorder(plainWriter{httptest.NewRecorder()})
	rec.Flush()
}

// plainWriter hides ResponseRecorder's Flusher and ReaderFrom.
type plainWriter struct{ inner *httptest.ResponseRecorder }

func (p plainWriter) Header() http.Header       { return p.inner.Header() }
func (p plainWriter) WriteHeader(code int)      { p.inner.WriteHeader(code) }
func (p plainWriter) Write(b []byte) (int, error) { return p.inner.Write(b) }

// readerFromWriter records whether the ReadFrom fast path was taken.
type readerFromWriter struct {
	plainWriter
	fastPath bool
}

func (r *readerFromWriter) ReadFrom(src io.Reader) (int64, error) {
	r.fastPath = true
	return io.Copy(struct{ io.Writer }{r.plainWriter}, src)
}

// TestStatusRecorderReadFrom: the fast path is delegated when the inner
// writer supports it, and the fallback copy still works when it does
// not — with identical bytes either way.
func TestStatusRecorderReadFrom(t *testing.T) {
	payload := strings.Repeat("block-data ", 100)

	fast := &readerFromWriter{plainWriter: plainWriter{httptest.NewRecorder()}}
	n, err := NewStatusRecorder(fast).ReadFrom(strings.NewReader(payload))
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("fast ReadFrom = (%d, %v), want (%d, nil)", n, err, len(payload))
	}
	if !fast.fastPath {
		t.Error("inner io.ReaderFrom was not used")
	}
	if got := fast.plainWriter.inner.Body.String(); got != payload {
		t.Error("fast-path payload mismatch")
	}

	slow := plainWriter{httptest.NewRecorder()}
	n, err = NewStatusRecorder(slow).ReadFrom(strings.NewReader(payload))
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("fallback ReadFrom = (%d, %v), want (%d, nil)", n, err, len(payload))
	}
	if got := slow.inner.Body.String(); got != payload {
		t.Error("fallback payload mismatch")
	}
}
