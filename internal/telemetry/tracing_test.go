package telemetry

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"nsdfgo/internal/telemetry/trace"
)

// traceClock is a race-free fake clock advancing by step per reading.
func traceClock(base time.Time, step time.Duration) func() time.Time {
	var mu sync.Mutex
	t := base
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		out := t
		t = t.Add(step)
		return out
	}
}

// TestTracingAdoptsInboundID: a well-formed client-supplied trace ID is
// reused for the whole request — planted in the handler's context,
// echoed on the response, and findable in the collector afterwards.
func TestTracingAdoptsInboundID(t *testing.T) {
	col := trace.NewCollector(4)
	id := "0123456789abcdef0123456789abcdef"
	var seen string
	h := WithTracing(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = trace.ID(r.Context())
	}), col, TracingOptions{Service: "test"})

	req := httptest.NewRequest("GET", "/api/data", nil)
	req.Header.Set(TraceIDHeader, id)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)

	if seen != id {
		t.Fatalf("handler context carried trace %q, want %q", seen, id)
	}
	if got := rec.Header().Get(TraceIDHeader); got != id {
		t.Fatalf("response header = %q, want %q", got, id)
	}
	data := col.Find(id)
	if data == nil {
		t.Fatalf("trace %s not in collector", id)
	}
	root := data.Span("http /api/data")
	if root == nil {
		t.Fatalf("root span missing: %+v", data.Spans)
	}
	if root.Attrs["service"] != "test" || root.Attrs["method"] != "GET" || root.Attrs["status"] != "200" {
		t.Fatalf("root attrs wrong: %+v", root.Attrs)
	}
}

// TestTracingRejectsMalformedID: malformed inbound IDs must be replaced
// with a fresh valid one, never adopted verbatim.
func TestTracingRejectsMalformedID(t *testing.T) {
	col := trace.NewCollector(4)
	h := WithTracing(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
		col, TracingOptions{Service: "test"})
	for _, bad := range []string{"", "short", strings.Repeat("Z", 32), strings.Repeat("a", 33)} {
		req := httptest.NewRequest("GET", "/x", nil)
		if bad != "" {
			req.Header.Set(TraceIDHeader, bad)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		got := rec.Header().Get(TraceIDHeader)
		if got == bad {
			t.Errorf("malformed inbound ID %q was adopted", bad)
		}
		if !trace.ValidID(got) {
			t.Errorf("response ID %q (for inbound %q) is not valid", got, bad)
		}
	}
}

// TestSlowRequestLog drives the middleware with a fake clock so the
// request appears to take 4s against a 1s threshold, and checks the
// structured warning names the trace and its worst span.
func TestSlowRequestLog(t *testing.T) {
	col := trace.NewCollector(4)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	// Clock readings: StartTrace start, root End → 2 reads 4s apart.
	col.SetClock(traceClock(base, 4*time.Second))

	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	id := strings.Repeat("d", 32)
	h := WithTracing(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace.Record(r.Context(), "idx.fetch", base, base.Add(3*time.Second),
			trace.Str("dataset", "tn"))
	}), col, TracingOptions{Service: "test", SlowRequest: time.Second, Logger: logger})

	req := httptest.NewRequest("GET", "/api/data", nil)
	req.Header.Set(TraceIDHeader, id)
	h.ServeHTTP(httptest.NewRecorder(), req)

	out := buf.String()
	if !strings.Contains(out, "slow request") {
		t.Fatalf("no slow-request warning logged:\n%s", out)
	}
	for _, want := range []string{"trace=" + id, "path=/api/data", "worst=", "idx.fetch=3s"} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-request log missing %q:\n%s", want, out)
		}
	}

	// Below threshold: same setup but a fast clock must stay silent.
	buf.Reset()
	col2 := trace.NewCollector(4)
	col2.SetClock(traceClock(base, time.Millisecond))
	h2 := WithTracing(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
		col2, TracingOptions{Service: "test", SlowRequest: time.Second, Logger: logger})
	h2.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/fast", nil))
	if buf.Len() != 0 {
		t.Fatalf("fast request logged a slow-request warning:\n%s", buf.String())
	}
}

// TestWorstSpans: non-root spans sorted by duration, capped at n, root
// excluded.
func TestWorstSpans(t *testing.T) {
	data := &trace.TraceData{Spans: []trace.SpanData{
		{Name: "a", ID: "2", Parent: "1", Duration: time.Second},
		{Name: "b", ID: "3", Parent: "1", Duration: 3 * time.Second},
		{Name: "c", ID: "4", Parent: "1", Duration: 2 * time.Second},
		{Name: "root", ID: "1", Duration: 10 * time.Second},
	}}
	if got := WorstSpans(data, 2); got != "b=3s c=2s" {
		t.Fatalf("WorstSpans = %q, want %q", got, "b=3s c=2s")
	}
}
