package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
)

// This file is the serving stack's structured-logging seam: every
// operational line the cmd/ servers emit — startup, periodic summaries,
// slow-request warnings, shutdown errors — goes through a *slog.Logger
// built here, selectable between human text and machine JSON with the
// -log-format flag. Attributes (trace ID, dataset, duration) ride as
// structured fields instead of being baked into format strings.

// LogFormats lists the accepted -log-format values.
const (
	LogFormatText = "text"
	LogFormatJSON = "json"
)

// NewLogger builds a slog logger writing to w in the given format
// ("text" or "json"). An unknown format is an error so a typo in
// -log-format fails startup instead of silently switching encodings.
func NewLogger(w io.Writer, format string) (*slog.Logger, error) {
	switch format {
	case LogFormatText, "":
		return slog.New(slog.NewTextHandler(w, nil)), nil
	case LogFormatJSON:
		return slog.New(slog.NewJSONHandler(w, nil)), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want %s or %s)", format, LogFormatText, LogFormatJSON)
	}
}

// pkgLogger is the logger the telemetry package itself warns through
// (misnamed metrics, exposition failures). Defaults to slog.Default().
var pkgLogger atomic.Pointer[slog.Logger]

// SetLogger routes the telemetry package's own warnings to l. The cmd/
// servers call this with their -log-format logger so in-package warnings
// match the process's log encoding.
func SetLogger(l *slog.Logger) {
	if l != nil {
		pkgLogger.Store(l)
	}
}

// logWarn emits one package-internal warning through the configured
// logger.
func logWarn(msg string, args ...any) {
	l := pkgLogger.Load()
	if l == nil {
		l = slog.Default()
	}
	l.Warn(msg, args...)
}
