package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefaultCapacity is the ring size used when NewCollector is given a
// non-positive capacity: enough history to inspect a burst of slow
// requests, small enough (≤ DefaultCapacity × MaxSpans spans) to be an
// afterthought next to the block cache.
const DefaultCapacity = 256

// Collector retains the most recent completed traces in a bounded ring
// buffer and serves them at /debug/traces. Safe for concurrent use.
type Collector struct {
	mu    sync.Mutex
	buf   []*TraceData
	added uint64
	now   func() time.Time
	node  string
}

// NewCollector returns a collector retaining up to capacity traces
// (DefaultCapacity when capacity <= 0). Once full, each new trace
// overwrites the oldest one.
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Collector{buf: make([]*TraceData, capacity), now: time.Now}
}

// SetClock replaces the collector's time source — tests drive traces
// with a fake clock through this. Call it before starting traces.
func (c *Collector) SetClock(now func() time.Time) {
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}

// clock returns the collector's current time source.
func (c *Collector) clock() func() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// SetNode names the process this collector runs in (e.g. the store's
// -node-name). Subsequent traces carry it in TraceData.Node and as a
// "node" attribute on their root spans, so spans pulled from several
// collectors stay attributable after federated assembly.
func (c *Collector) SetNode(name string) {
	c.mu.Lock()
	c.node = name
	c.mu.Unlock()
}

// Node returns the collector's configured node name.
func (c *Collector) Node() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.node
}

// StartTrace begins a new trace with the given ID (minting a fresh one
// when id is empty or malformed) and returns its root span. Ending the
// root span publishes the completed trace into the ring. The name is the
// root span's operation name — the tracing middleware uses the HTTP
// route.
func (c *Collector) StartTrace(id, name string, attrs ...Attr) *Span {
	if !ValidID(id) {
		id = NewID()
	}
	tr := &Trace{id: id, col: c, now: c.clock(), node: c.Node()}
	tr.start = tr.now()
	tr.lastSpan = 1
	if tr.node != "" {
		attrs = append(attrs, Str("node", tr.node))
	}
	return &Span{tr: tr, name: name, id: "1", start: tr.start, root: true, attrs: attrs}
}

// publish inserts a completed trace, evicting the oldest when full.
func (c *Collector) publish(t *TraceData) {
	c.mu.Lock()
	t.seq = c.added
	c.buf[c.added%uint64(len(c.buf))] = t
	c.added++
	c.mu.Unlock()
}

// Total reports how many traces have ever been published (including
// evicted ones).
func (c *Collector) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.added
}

// Capacity reports the ring size.
func (c *Collector) Capacity() int { return len(c.buf) }

// Snapshot returns the retained traces, newest first. The returned
// slice and its TraceData are immutable snapshots safe to read without
// locks.
func (c *Collector) Snapshot() []*TraceData {
	c.mu.Lock()
	out := make([]*TraceData, 0, len(c.buf))
	for _, t := range c.buf {
		if t != nil {
			out = append(out, t)
		}
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	return out
}

// Find returns the retained trace with the given ID, or nil.
func (c *Collector) Find(id string) *TraceData {
	for _, t := range c.Snapshot() {
		if t.TraceID == id {
			return t
		}
	}
	return nil
}

// Filter narrows a Snapshot: traces shorter than minDur, or (when
// dataset is non-empty) without a span attributed to that dataset, are
// dropped.
func Filter(traces []*TraceData, minDur time.Duration, dataset string) []*TraceData {
	out := make([]*TraceData, 0, len(traces))
	for _, t := range traces {
		if t.Duration < minDur {
			continue
		}
		if dataset != "" && !t.HasAttr("dataset", dataset) {
			continue
		}
		out = append(out, t)
	}
	return out
}

// Handler serves the collector at /debug/traces.
//
// Query parameters:
//
//	format=json|text  response encoding (default text)
//	trace=<id>        exact trace lookup (id= is an accepted alias)
//	min=<duration>    keep traces at least this long (e.g. min=250ms)
//	dataset=<name>    keep traces touching this dataset
//	limit=<n>         at most n traces, newest first (default 50)
func (c *Collector) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		var traces []*TraceData
		id := q.Get("trace")
		if id == "" {
			id = q.Get("id")
		}
		if id != "" {
			if t := c.Find(id); t != nil {
				traces = []*TraceData{t}
			}
		} else {
			minDur := time.Duration(0)
			if ms := q.Get("min"); ms != "" {
				d, err := time.ParseDuration(ms)
				if err != nil {
					http.Error(w, "trace: bad min duration: "+err.Error(), http.StatusBadRequest)
					return
				}
				minDur = d
			}
			traces = Filter(c.Snapshot(), minDur, q.Get("dataset"))
			limit := 50
			if ls := q.Get("limit"); ls != "" {
				n, err := strconv.Atoi(ls)
				if err != nil || n < 1 {
					http.Error(w, "trace: bad limit", http.StatusBadRequest)
					return
				}
				limit = n
			}
			if len(traces) > limit {
				traces = traces[:limit]
			}
		}
		if q.Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(traces)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, t := range traces {
			WriteText(w, t)
		}
		if len(traces) == 0 {
			fmt.Fprintln(w, "no traces match")
		}
	})
}

// WriteText renders one trace human-readably: a header line followed by
// the span tree, children indented under parents in start order. Spans
// whose parent is not in the snapshot (a federated merge with a gap, or
// a caller whose span was dropped at the per-trace cap) render as extra
// roots rather than disappearing.
func WriteText(w io.Writer, t *TraceData) {
	fmt.Fprintf(w, "trace %s ", t.TraceID)
	if t.Node != "" {
		fmt.Fprintf(w, " node=%s", t.Node)
	}
	fmt.Fprintf(w, " start=%s  duration=%s  spans=%d",
		t.Start.Format(time.RFC3339Nano), t.Duration, len(t.Spans))
	if t.DroppedSpans > 0 {
		fmt.Fprintf(w, "  dropped=%d", t.DroppedSpans)
	}
	fmt.Fprintln(w)

	known := make(map[string]bool, len(t.Spans))
	for i := range t.Spans {
		known[t.Spans[i].ID] = true
	}
	children := make(map[string][]*SpanData, len(t.Spans))
	for i := range t.Spans {
		sp := &t.Spans[i]
		parent := sp.Parent
		if parent != "" && (!known[parent] || parent == sp.ID) {
			parent = "" // orphan: surface it as a root
		}
		children[parent] = append(children[parent], sp)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool { return kids[i].Start.Before(kids[j].Start) })
	}
	var emit func(parent string, depth int)
	emit = func(parent string, depth int) {
		for _, sp := range children[parent] {
			fmt.Fprintf(w, "%s%-14s %12s", strings.Repeat("  ", depth+1), sp.Name, sp.Duration)
			if len(sp.Attrs) > 0 {
				keys := make([]string, 0, len(sp.Attrs))
				for k := range sp.Attrs {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(w, "  %s=%s", k, sp.Attrs[k])
				}
			}
			fmt.Fprintln(w)
			emit(sp.ID, depth+1)
		}
	}
	emit("", 0)
}
