package trace

import (
	"sort"
	"strconv"
	"time"
)

// NodeTrace pairs a node name with the trace snapshot that node
// reported for one trace ID. Node is the name the fetcher dialled the
// peer under; when the snapshot itself carries a Node (the peer's
// collector was named), the snapshot's name wins, so a mislabelled
// peer map cannot detach the remote spans from their remote_parent
// references.
type NodeTrace struct {
	Node string
	Data *TraceData
}

// Merge assembles per-node snapshots of one trace into a single
// cluster-wide TraceData. Span IDs are trace-local sequential counters,
// so the same ID occurs on every node; Merge namespaces each span as
// "node/id" (and its parent likewise) to keep them distinct, then
// grafts each remote snapshot under its caller: a snapshot's root span
// (empty Parent) adopts the node-namespaced reference its process
// recorded in the root's remote_parent attribute (see SetRemoteParent).
// The snapshot with no remote_parent — the process that minted the
// trace — stays the cluster-wide root. Every span gains a "node"
// attribute if it lacks one. Missing intermediate snapshots degrade
// gracefully: an unresolvable parent renders as an extra root (see
// WriteText) instead of hiding the subtree.
//
// Merge never fails; with zero parts it returns an empty TraceData so
// partial federation still renders.
func Merge(id string, parts []NodeTrace) *TraceData {
	out := &TraceData{TraceID: id, Node: "federated"}
	var (
		haveStart bool
		end       int64 // latest span end, unix nanos
	)
	for i, part := range parts {
		if part.Data == nil {
			continue
		}
		node := part.Data.Node
		if node == "" {
			node = part.Node
		}
		if node == "" {
			node = "node" + strconv.Itoa(i)
		}
		for _, sp := range part.Data.Spans {
			sp.Attrs = cloneAttrs(sp.Attrs)
			if sp.Attrs["node"] == "" {
				if sp.Attrs == nil {
					sp.Attrs = map[string]string{}
				}
				sp.Attrs["node"] = node
			}
			switch {
			case sp.Parent != "":
				sp.Parent = node + "/" + sp.Parent
			case sp.Attrs["remote_parent"] != "":
				// Remote root: graft it under the span that called it.
				sp.Parent = sp.Attrs["remote_parent"]
			}
			sp.ID = node + "/" + sp.ID
			out.Spans = append(out.Spans, sp)
			if !haveStart || sp.Start.Before(out.Start) {
				out.Start = sp.Start
				haveStart = true
			}
			if e := sp.Start.Add(sp.Duration).UnixNano(); e > end {
				end = e
			}
		}
		out.DroppedSpans += part.Data.DroppedSpans
	}
	if haveStart {
		out.Duration = 0
		if d := end - out.Start.UnixNano(); d > 0 {
			out.Duration = time.Duration(d)
		}
	}
	sort.SliceStable(out.Spans, func(i, j int) bool {
		return out.Spans[i].Start.Before(out.Spans[j].Start)
	})
	return out
}

// cloneAttrs copies a span's attribute map so merging never mutates the
// collector-owned snapshots it was fed.
func cloneAttrs(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
