package trace

import (
	"context"
	"net/http"
	"testing"
)

func TestParentRoundTrip(t *testing.T) {
	p := Parent{Node: "store-a", SpanID: "2f", Depth: 3}
	got, ok := ParseParent(p.String())
	if !ok {
		t.Fatalf("ParseParent(%q) not ok", p.String())
	}
	if got != p {
		t.Fatalf("round trip = %+v, want %+v", got, p)
	}
	if got.Ref() != "store-a/2f" {
		t.Fatalf("Ref() = %q, want store-a/2f", got.Ref())
	}
}

func TestParseParentRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"",            // empty
		"store-a",     // no @ or /
		"store-a/2f",  // no depth
		"store-a@3",   // no span
		"/2f@1",       // empty node
		"store-a/@1",  // empty span
		"store-a/2f@", // empty depth
		"store-a/2f@-1",
		"store-a/2f@x",
	} {
		if _, ok := ParseParent(s); ok {
			t.Errorf("ParseParent(%q) ok, want rejection", s)
		}
	}
}

func TestInjectSetsPropagationHeaders(t *testing.T) {
	col := NewCollector(4)
	col.SetNode("dashboard")
	root := col.StartTrace("", "http /api/data")
	ctx := NewContext(context.Background(), root)

	h := make(http.Header)
	Inject(ctx, h)
	if got := h.Get(TraceIDHeader); got != root.TraceID() {
		t.Fatalf("trace header %q, want %q", got, root.TraceID())
	}
	parent, ok := ParseParent(h.Get(ParentHeader))
	if !ok {
		t.Fatalf("parent header %q does not parse", h.Get(ParentHeader))
	}
	if parent.Node != "dashboard" || parent.SpanID != root.ID() || parent.Depth != 0 {
		t.Fatalf("parent = %+v, want node=dashboard span=%s depth=0", parent, root.ID())
	}
	root.End()
}

func TestInjectNoActiveSpanIsNoop(t *testing.T) {
	h := make(http.Header)
	Inject(context.Background(), h)
	if len(h) != 0 {
		t.Fatalf("Inject without a span set headers: %v", h)
	}
}

func TestSetRemoteParentRaisesDepthAndAttrs(t *testing.T) {
	col := NewCollector(4)
	col.SetNode("store-b")
	root := col.StartTrace("abcdefabcdefabcdefabcdefabcdefab", "http /o/key")
	root.SetRemoteParent(Parent{Node: "dashboard", SpanID: "4", Depth: 1})
	if got := root.Depth(); got != 2 {
		t.Fatalf("depth after SetRemoteParent = %d, want 2", got)
	}

	// A second hop injected from this process must carry the raised
	// depth, so federation can order the processes.
	ctx := NewContext(context.Background(), root)
	h := make(http.Header)
	Inject(ctx, h)
	parent, ok := ParseParent(h.Get(ParentHeader))
	if !ok || parent.Depth != 2 {
		t.Fatalf("re-injected parent = %+v ok=%v, want depth 2", parent, ok)
	}

	root.End()
	data := col.Find("abcdefabcdefabcdefabcdefabcdefab")
	if data == nil {
		t.Fatal("trace not retained")
	}
	sp := &data.Spans[0]
	if sp.Attrs["remote_parent"] != "dashboard/4" {
		t.Fatalf("remote_parent attr %q, want dashboard/4", sp.Attrs["remote_parent"])
	}
	if sp.Attrs["node"] != "store-b" {
		t.Fatalf("node attr %q, want store-b", sp.Attrs["node"])
	}
}

func TestSpanAccessorsNilSafe(t *testing.T) {
	var s *Span
	if s.ID() != "" || s.Node() != "" || s.Depth() != 0 {
		t.Fatal("nil span accessors must return zero values")
	}
	s.SetRemoteParent(Parent{Node: "x", SpanID: "1", Depth: 0}) // must not panic
}
