package trace

import (
	"context"
	"net/http"
	"strconv"
	"strings"
)

// TraceIDHeader is the HTTP header carrying a request's trace ID, both
// inbound (a client or upstream service propagating its own ID) and
// outbound (the serving stack echoing the ID it used, so a student can
// paste it straight into /debug/traces?trace=). Every peer hop in the
// sharded tier forwards it, so one user request keeps one ID across the
// whole fleet.
const TraceIDHeader = "X-NSDF-Trace-Id"

// ParentHeader is the HTTP header carrying the calling span's identity
// across a peer hop, rendered by Parent.String as "node/spanID@depth".
// The receiving server's tracing middleware parses it (see
// Span.SetRemoteParent) so federated assembly can graft the remote
// trace under the exact span that issued the request, and the depth
// bounds runaway forwarding chains in debug output.
const ParentHeader = "X-NSDF-Trace-Parent"

// Parent identifies the remote span on whose behalf a request is being
// made: which node it ran on, its trace-local span ID, and how many
// peer hops deep that node already was.
type Parent struct {
	// Node is the caller's fleet-wide node name (Collector.SetNode).
	Node string
	// SpanID is the caller's trace-local span identifier.
	SpanID string
	// Depth is the caller's hop depth: 0 at the process that minted the
	// trace, +1 per peer hop.
	Depth int
}

// Ref renders the parent's span reference in the node-namespaced form
// federated assembly uses ("node/spanID").
func (p Parent) Ref() string { return p.Node + "/" + p.SpanID }

// String renders the header value: "node/spanID@depth".
func (p Parent) String() string { return p.Ref() + "@" + strconv.Itoa(p.Depth) }

// ParseParent parses a ParentHeader value. ok is false on malformed
// input — callers treat that as "no remote parent" rather than erroring,
// so a bad header degrades to a local-looking trace.
func ParseParent(s string) (Parent, bool) {
	ref, depthS, found := strings.Cut(s, "@")
	if !found {
		return Parent{}, false
	}
	node, span, found := strings.Cut(ref, "/")
	if !found || node == "" || span == "" {
		return Parent{}, false
	}
	depth, err := strconv.Atoi(depthS)
	if err != nil || depth < 0 {
		return Parent{}, false
	}
	return Parent{Node: node, SpanID: span, Depth: depth}, true
}

// Inject stamps the current trace onto an outbound request's headers:
// the trace ID plus the calling span's node/span/depth identity. Without
// an active trace it sets nothing, so untraced internal traffic stays
// header-free. The storage HTTP client calls this on every peer request
// — replication, hedged duplicates, and failover retries included.
func Inject(ctx context.Context, h http.Header) {
	s := FromContext(ctx)
	if s == nil {
		return
	}
	h.Set(TraceIDHeader, s.TraceID())
	h.Set(ParentHeader, Parent{Node: s.Node(), SpanID: s.ID(), Depth: s.Depth()}.String())
}
