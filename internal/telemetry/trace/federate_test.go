package trace

import (
	"strings"
	"testing"
	"time"
)

// federateFixture builds the canonical two-process shape: a dashboard
// trace whose child span 2 called a store, and the store's snapshot of
// the same trace ID whose root recorded remote_parent=dashboard/2.
func federateFixture(base time.Time) []NodeTrace {
	dash := &TraceData{
		TraceID: "11111111111111111111111111111111",
		Node:    "dashboard",
		Start:   base,
		Spans: []SpanData{
			{Name: "storage.get", ID: "2", Parent: "1", Start: base.Add(time.Millisecond), Duration: 40 * time.Millisecond},
			{Name: "http /o/key", ID: "1", Start: base, Duration: 50 * time.Millisecond},
		},
	}
	store := &TraceData{
		TraceID: "11111111111111111111111111111111",
		Node:    "store-a",
		Start:   base.Add(2 * time.Millisecond),
		Spans: []SpanData{
			{Name: "disk.read", ID: "2", Parent: "1", Start: base.Add(3 * time.Millisecond), Duration: 10 * time.Millisecond},
			{Name: "http /o/key", ID: "1", Start: base.Add(2 * time.Millisecond), Duration: 30 * time.Millisecond,
				Attrs: map[string]string{"remote_parent": "dashboard/2", "depth": "1"}},
		},
	}
	return []NodeTrace{{Node: "dashboard", Data: dash}, {Node: "store-a", Data: store}}
}

func TestMergeNamespacesAndGrafts(t *testing.T) {
	base := time.Unix(1700000000, 0)
	merged := Merge("11111111111111111111111111111111", federateFixture(base))

	if merged.Node != "federated" {
		t.Fatalf("merged node %q, want federated", merged.Node)
	}
	if len(merged.Spans) != 4 {
		t.Fatalf("merged %d spans, want 4", len(merged.Spans))
	}

	byID := map[string]SpanData{}
	for _, sp := range merged.Spans {
		byID[sp.ID] = sp
	}
	// Same-ID spans from different processes must not collide.
	for _, id := range []string{"dashboard/1", "dashboard/2", "store-a/1", "store-a/2"} {
		if _, ok := byID[id]; !ok {
			t.Fatalf("span %s missing; have %v", id, keys(byID))
		}
	}
	// The store's root grafts under the dashboard span that called it.
	if got := byID["store-a/1"].Parent; got != "dashboard/2" {
		t.Fatalf("store root parent %q, want dashboard/2", got)
	}
	// In-process parents are namespaced within their node.
	if got := byID["store-a/2"].Parent; got != "store-a/1" {
		t.Fatalf("store child parent %q, want store-a/1", got)
	}
	// The minting process's root stays the cluster-wide root.
	if got := byID["dashboard/1"].Parent; got != "" {
		t.Fatalf("dashboard root parent %q, want empty", got)
	}
	// Every span carries node attribution.
	for id, sp := range byID {
		if sp.Attrs["node"] == "" {
			t.Fatalf("span %s has no node attr", id)
		}
	}
	// Start is the earliest span start; duration spans to the latest end.
	if !merged.Start.Equal(base) {
		t.Fatalf("merged start %v, want %v", merged.Start, base)
	}
	if merged.Duration != 50*time.Millisecond {
		t.Fatalf("merged duration %v, want 50ms", merged.Duration)
	}
}

func keys(m map[string]SpanData) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestMergeDoesNotMutateInputs(t *testing.T) {
	base := time.Unix(1700000000, 0)
	parts := federateFixture(base)
	Merge("11111111111111111111111111111111", parts)
	if parts[1].Data.Spans[1].Attrs["node"] != "" {
		t.Fatal("Merge mutated an input snapshot's attrs")
	}
	if parts[0].Data.Spans[0].ID != "2" {
		t.Fatal("Merge mutated an input snapshot's span ID")
	}
}

func TestMergePartialDegradesToExtraRoots(t *testing.T) {
	// Only the store part arrived (the dashboard's trace was evicted):
	// the store root's remote_parent cannot resolve, and WriteText must
	// surface it as a root rather than dropping the subtree.
	base := time.Unix(1700000000, 0)
	parts := federateFixture(base)[1:]
	merged := Merge("11111111111111111111111111111111", parts)
	if len(merged.Spans) != 2 {
		t.Fatalf("merged %d spans, want 2", len(merged.Spans))
	}
	var sb strings.Builder
	WriteText(&sb, merged)
	out := sb.String()
	for _, want := range []string{"http /o/key", "disk.read"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestMergeEmptyAndNilParts(t *testing.T) {
	merged := Merge("22222222222222222222222222222222", nil)
	if merged == nil || len(merged.Spans) != 0 {
		t.Fatalf("Merge(nil) = %+v, want empty TraceData", merged)
	}
	merged = Merge("22222222222222222222222222222222", []NodeTrace{{Node: "x", Data: nil}})
	if len(merged.Spans) != 0 {
		t.Fatal("nil part contributed spans")
	}
}

func TestMergeUnnamedNodesFallBack(t *testing.T) {
	base := time.Unix(1700000000, 0)
	part := NodeTrace{Data: &TraceData{
		TraceID: "33333333333333333333333333333333",
		Spans:   []SpanData{{Name: "op", ID: "1", Start: base, Duration: time.Millisecond}},
	}}
	merged := Merge("33333333333333333333333333333333", []NodeTrace{part})
	if merged.Spans[0].ID != "node0/1" {
		t.Fatalf("unnamed node span ID %q, want node0/1", merged.Spans[0].ID)
	}
}
