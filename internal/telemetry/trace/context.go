package trace

import (
	"context"
	"time"
)

// ctxKey is the private context key carrying the current *Span.
type ctxKey struct{}

// NewContext returns ctx with s as the current span. Library code never
// calls this directly — the tracing middleware plants the root span and
// Start derives children.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the current span, or nil when the request is not
// being traced.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// Active reports whether ctx carries a live trace. Hot paths consult it
// once to gate per-block timing work.
func Active(ctx context.Context) bool { return FromContext(ctx) != nil }

// ID returns the trace ID carried by ctx, or "" — the hook structured
// log lines use to stamp every record with its request.
func ID(ctx context.Context) string { return FromContext(ctx).TraceID() }

// Start begins a child span of the current span and returns a context
// carrying it. Without an active trace it returns ctx unchanged and a
// nil span (whose End is a no-op), so instrumentation is branch-free at
// call sites. Every Start must be paired with End on all paths — the
// spanend analyzer in internal/lint enforces this at `make lint` time.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	tr := parent.tr
	s := &Span{
		tr:     tr,
		name:   name,
		id:     tr.nextSpanID(),
		parent: parent.id,
		start:  tr.now(),
		attrs:  attrs,
	}
	return NewContext(ctx, s), s
}

// Record adds an already-measured span under the current span — the
// shape used by the IDX pipeline stages, whose decode and assemble times
// are accumulated per block and booked once per request, and by the
// storage layer's per-operation spans. A nil current span drops the
// record.
func Record(ctx context.Context, name string, start, end time.Time, attrs ...Attr) {
	parent := FromContext(ctx)
	if parent == nil {
		return
	}
	tr := parent.tr
	tr.record(SpanData{
		Name:     name,
		ID:       tr.nextSpanID(),
		Parent:   parent.id,
		Start:    start,
		Duration: end.Sub(start),
		Attrs:    attrMap(attrs),
	})
}

// RecordDuration books a pre-accumulated duration d ending at end as a
// span — used for pipeline stages whose busy time is summed across
// worker goroutines and therefore has no single wall-clock start.
func RecordDuration(ctx context.Context, name string, end time.Time, d time.Duration, attrs ...Attr) {
	Record(ctx, name, end.Add(-d), end, attrs...)
}
