package trace

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a race-free clock that advances by step on every
// reading, starting at base.
func fakeClock(base time.Time, step time.Duration) func() time.Time {
	var mu sync.Mutex
	t := base
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		out := t
		t = t.Add(step)
		return out
	}
}

func TestNewIDIsValid(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewID()
		if !ValidID(id) {
			t.Fatalf("NewID() = %q, not a valid trace ID", id)
		}
		if seen[id] {
			t.Fatalf("NewID() repeated %q", id)
		}
		seen[id] = true
	}
}

func TestValidIDRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"short",
		strings.Repeat("a", 31),
		strings.Repeat("a", 33),
		strings.Repeat("A", 32), // uppercase hex is rejected
		strings.Repeat("g", 32), // not hex
		strings.Repeat("a", 16) + " " + strings.Repeat("a", 15),
	}
	for _, id := range bad {
		if ValidID(id) {
			t.Errorf("ValidID(%q) = true, want false", id)
		}
	}
	if !ValidID("0123456789abcdef0123456789abcdef") {
		t.Error("ValidID rejected a well-formed ID")
	}
}

// TestNilSpanSafety: every method of a nil *Span must no-op, and Start
// on an untraced context must return the context unchanged with a nil
// span — the branch-free contract instrumented code relies on.
func TestNilSpanSafety(t *testing.T) {
	var s *Span
	s.SetAttr(Str("k", "v"))
	s.End()
	if s.TraceID() != "" {
		t.Error("nil span TraceID() != \"\"")
	}
	if s.Finished() != nil {
		t.Error("nil span Finished() != nil")
	}

	ctx := context.Background()
	ctx2, sp := Start(ctx, "op")
	if sp != nil {
		t.Error("Start on untraced context returned a non-nil span")
	}
	if ctx2 != ctx {
		t.Error("Start on untraced context returned a new context")
	}
	if Active(ctx) {
		t.Error("Active on untraced context")
	}
	if ID(ctx) != "" {
		t.Error("ID on untraced context != \"\"")
	}
	// Record on an untraced context must be a silent no-op too.
	Record(ctx, "x", time.Now(), time.Now())
}

// TestSpanTree drives a full trace with a fake clock and checks the
// recorded structure: parentage, durations, attributes, root-last
// ordering.
func TestSpanTree(t *testing.T) {
	col := NewCollector(4)
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	col.SetClock(fakeClock(base, time.Second))

	id := "0123456789abcdef0123456789abcdef"
	root := col.StartTrace(id, "http /api/data", Str("service", "test"))
	ctx := NewContext(context.Background(), root)

	if !Active(ctx) || ID(ctx) != id {
		t.Fatalf("context not carrying trace %s", id)
	}

	cctx, child := Start(ctx, "query.read", Str("dataset", "tn"))
	if child == nil {
		t.Fatal("Start returned nil span under an active trace")
	}
	child.SetAttr(Int("level", 3))
	_, grand := Start(cctx, "idx.read")
	grand.End()
	child.End()
	Record(ctx, "idx.fetch", base, base.Add(5*time.Second), Str("dataset", "tn"))
	RecordDuration(ctx, "idx.decode", base.Add(8*time.Second), 2*time.Second)
	root.End()

	data := root.Finished()
	if data == nil {
		t.Fatal("Finished() == nil after root End")
	}
	if data.TraceID != id {
		t.Fatalf("TraceID = %q, want %q", data.TraceID, id)
	}
	if len(data.Spans) != 5 {
		t.Fatalf("got %d spans, want 5: %+v", len(data.Spans), data.Spans)
	}
	// The root span completes last by construction.
	rootSD := data.Spans[len(data.Spans)-1]
	if rootSD.Name != "http /api/data" || rootSD.Parent != "" {
		t.Fatalf("last span is not the root: %+v", rootSD)
	}
	q := data.Span("query.read")
	if q == nil || q.Parent != rootSD.ID {
		t.Fatalf("query.read missing or mis-parented: %+v", q)
	}
	if q.Attrs["dataset"] != "tn" || q.Attrs["level"] != "3" {
		t.Fatalf("query.read attrs wrong: %+v", q.Attrs)
	}
	if q.Duration <= 0 {
		t.Fatalf("query.read duration = %v, want > 0", q.Duration)
	}
	g := data.Span("idx.read")
	if g == nil || g.Parent != q.ID {
		t.Fatalf("idx.read missing or not a child of query.read: %+v", g)
	}
	f := data.Span("idx.fetch")
	if f == nil || f.Duration != 5*time.Second || f.Parent != rootSD.ID {
		t.Fatalf("idx.fetch recorded wrong: %+v", f)
	}
	d := data.Span("idx.decode")
	if d == nil || d.Duration != 2*time.Second {
		t.Fatalf("idx.decode RecordDuration wrong: %+v", d)
	}
	if !data.HasAttr("dataset", "tn") {
		t.Error("HasAttr(dataset, tn) = false")
	}
	if data.HasAttr("dataset", "other") {
		t.Error("HasAttr matched a value never set")
	}
	// Double End must not re-publish or change the snapshot.
	root.End()
	if got := col.Total(); got != 1 {
		t.Fatalf("Total = %d after double End, want 1", got)
	}
}

// TestMaxSpansCap: a runaway request stops retaining spans at MaxSpans
// and counts the overflow instead of growing without bound.
func TestMaxSpansCap(t *testing.T) {
	col := NewCollector(2)
	root := col.StartTrace("", "big")
	ctx := NewContext(context.Background(), root)
	const extra = 40
	for i := 0; i < MaxSpans+extra; i++ {
		Record(ctx, "blk", time.Now(), time.Now())
	}
	root.End()
	data := root.Finished()
	// The root span itself also competes for a slot after the cap is hit.
	if len(data.Spans) != MaxSpans {
		t.Fatalf("retained %d spans, want %d", len(data.Spans), MaxSpans)
	}
	if data.DroppedSpans != extra+1 {
		t.Fatalf("DroppedSpans = %d, want %d", data.DroppedSpans, extra+1)
	}
}

// TestLateSpanDropped: spans recorded after the root ends must not
// mutate the published snapshot.
func TestLateSpanDropped(t *testing.T) {
	col := NewCollector(2)
	root := col.StartTrace("", "req")
	ctx := NewContext(context.Background(), root)
	root.End()
	before := len(root.Finished().Spans)
	Record(ctx, "late", time.Now(), time.Now())
	if got := len(root.Finished().Spans); got != before {
		t.Fatalf("late span mutated the finished trace: %d -> %d spans", before, got)
	}
}
