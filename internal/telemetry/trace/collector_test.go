package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRingEvictionConcurrent hammers one small collector from many
// goroutines and checks the ring's promise: every publish is counted,
// exactly capacity traces survive, and the survivors are the most
// recently published ones in newest-first order.
func TestRingEvictionConcurrent(t *testing.T) {
	const capacity = 8
	const writers = 8
	const perWriter = 25
	col := NewCollector(capacity)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				col.StartTrace("", "req").End()
			}
		}()
	}
	wg.Wait()

	total := writers * perWriter
	if got := col.Total(); got != uint64(total) {
		t.Fatalf("Total = %d, want %d", got, total)
	}
	snap := col.Snapshot()
	if len(snap) != capacity {
		t.Fatalf("Snapshot retained %d traces, want %d", len(snap), capacity)
	}
	for i, tr := range snap {
		// Newest first: strictly decreasing insertion sequence.
		if i > 0 && tr.seq >= snap[i-1].seq {
			t.Fatalf("snapshot not newest-first at %d: seq %d after %d", i, tr.seq, snap[i-1].seq)
		}
		// Only the last `capacity` publishes may survive eviction.
		if tr.seq < uint64(total-capacity) {
			t.Fatalf("evicted trace (seq %d of %d) still in snapshot", tr.seq, total)
		}
	}
}

// ringTestTrace publishes one trace with the given duration and dataset
// attribute through col's fake clock.
func ringTestTrace(col *Collector, id string, dur time.Duration, dataset string) {
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	ticks := []time.Time{base, base.Add(dur)}
	i := 0
	col.SetClock(func() time.Time { t := ticks[i%len(ticks)]; i++; return t })
	root := col.StartTrace(id, "http /api/data")
	ctx := NewContext(context.Background(), root)
	Record(ctx, "idx.read", base, base.Add(dur/2), Str("dataset", dataset))
	root.End()
}

func TestHandlerFilters(t *testing.T) {
	col := NewCollector(16)
	slowID := strings.Repeat("a", 32)
	fastID := strings.Repeat("b", 32)
	ringTestTrace(col, slowID, 2*time.Second, "tennessee")
	ringTestTrace(col, fastID, 10*time.Millisecond, "utah")
	h := col.Handler()

	get := func(query string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces"+query, nil))
		return rec
	}
	decode := func(rec *httptest.ResponseRecorder) []*TraceData {
		var out []*TraceData
		if err := json.NewDecoder(rec.Body).Decode(&out); err != nil {
			t.Fatalf("decode handler JSON: %v", err)
		}
		return out
	}

	if got := decode(get("?format=json")); len(got) != 2 {
		t.Fatalf("unfiltered: %d traces, want 2", len(got))
	}
	if got := decode(get("?format=json&min=1s")); len(got) != 1 || got[0].TraceID != slowID {
		t.Fatalf("min=1s kept %+v, want only the slow trace", got)
	}
	if got := decode(get("?format=json&dataset=utah")); len(got) != 1 || got[0].TraceID != fastID {
		t.Fatalf("dataset=utah kept %+v, want only the utah trace", got)
	}
	if got := decode(get("?format=json&limit=1")); len(got) != 1 || got[0].TraceID != fastID {
		t.Fatalf("limit=1 kept %+v, want only the newest trace", got)
	}
	if got := decode(get(fmt.Sprintf("?format=json&trace=%s", slowID))); len(got) != 1 || got[0].TraceID != slowID {
		t.Fatalf("trace=<id> lookup returned %+v", got)
	}
	if got := decode(get("?format=json&trace=" + strings.Repeat("c", 32))); len(got) != 0 {
		t.Fatalf("unknown trace id returned %+v, want empty", got)
	}
	if rec := get("?min=bogus"); rec.Code != 400 {
		t.Fatalf("bad min: status %d, want 400", rec.Code)
	}
	if rec := get("?limit=0"); rec.Code != 400 {
		t.Fatalf("bad limit: status %d, want 400", rec.Code)
	}

	text := get("?min=1s").Body.String()
	if !strings.Contains(text, "trace "+slowID) || !strings.Contains(text, "idx.read") {
		t.Fatalf("text rendering missing header or span tree:\n%s", text)
	}
	if !strings.Contains(text, "dataset=tennessee") {
		t.Fatalf("text rendering missing span attrs:\n%s", text)
	}
	if empty := get("?min=10m").Body.String(); !strings.Contains(empty, "no traces match") {
		t.Fatalf("empty text result missing placeholder:\n%s", empty)
	}
}
