// Package trace is the request-scoped tracing substrate of the NSDF
// serving stack: a zero-dependency, context-carried span tracer that
// follows one request across the dashboard → query → IDX → storage hops.
// The telemetry package's WithTracing middleware mints (or adopts) a
// trace ID per HTTP request and plants a root span in the request
// context; every layer below starts child spans off that context, so a
// completed trace reconstructs exactly where a slow read spent its time
// — plan vs block fetch vs decode vs assemble vs the object store.
//
// The package is deliberately tiny and stdlib-only. A span costs a
// handful of allocations and two clock reads; code running without an
// active trace in its context pays one context lookup and nothing else
// (Start returns a nil *Span whose methods all no-op). Completed traces
// land in a bounded ring buffer (Collector) exported at /debug/traces.
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// IDLen is the length of a trace ID: 16 random bytes, lowercase hex.
const IDLen = 32

// fallbackSeq de-duplicates fallback IDs minted when crypto/rand fails.
var fallbackSeq atomic.Uint64

// NewID returns a fresh 32-character lowercase-hex trace ID.
func NewID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; keep a
		// deterministic-but-unique fallback rather than panicking in the
		// serving path.
		binary.BigEndian.PutUint64(b[:8], uint64(time.Now().UnixNano()))
		binary.BigEndian.PutUint64(b[8:], fallbackSeq.Add(1))
	}
	return hex.EncodeToString(b[:])
}

// ValidID reports whether s is a well-formed trace ID: exactly 32
// lowercase hex characters. Inbound X-NSDF-Trace-Id headers that fail
// this check are rejected and replaced with a fresh ID.
func ValidID(s string) bool {
	if len(s) != IDLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Attr is one key/value annotation on a span. Values are rendered to
// strings at construction so snapshotting a span never chases live
// pointers.
type Attr struct {
	// Key names the attribute (e.g. "dataset", "blocks", "bytes").
	Key string
	// Value is the rendered attribute value.
	Value string
}

// Str builds a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(value, 10)}
}

// SpanData is the immutable snapshot of one completed span.
type SpanData struct {
	// Name identifies the operation (e.g. "idx.fetch", "storage.get").
	Name string `json:"name"`
	// ID is the span's trace-local identifier.
	ID string `json:"id"`
	// Parent is the parent span's ID; empty for the root span.
	Parent string `json:"parent,omitempty"`
	// Start is when the span began.
	Start time.Time `json:"start"`
	// Duration is the span's elapsed time in nanoseconds. For the
	// accumulated pipeline-stage spans (idx.fetch/decode/assemble) this is
	// busy time summed across workers, which can exceed the wall time of
	// the enclosing span on parallel fetches.
	Duration time.Duration `json:"duration_ns"`
	// Attrs carries the span's annotations.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// TraceData is the immutable snapshot of one completed trace.
type TraceData struct {
	// TraceID is the 32-hex-character request identifier.
	TraceID string `json:"trace_id"`
	// Node is the fleet-wide name of the process that recorded this
	// snapshot (Collector.SetNode); empty on unnamed collectors.
	// Federated assembly namespaces span IDs with it.
	Node string `json:"node,omitempty"`
	// Start is when the root span began.
	Start time.Time `json:"start"`
	// Duration is the root span's elapsed time.
	Duration time.Duration `json:"duration_ns"`
	// Spans lists every recorded span in completion order; the root span
	// is last (it completes last by construction).
	Spans []SpanData `json:"spans"`
	// DroppedSpans counts spans discarded after the per-trace cap
	// (MaxSpans) was reached.
	DroppedSpans int `json:"dropped_spans,omitempty"`

	// seq is the collector's insertion sequence, for eviction-order
	// snapshots.
	seq uint64
}

// Span finds the first recorded span with the given name, or nil.
func (t *TraceData) Span(name string) *SpanData {
	for i := range t.Spans {
		if t.Spans[i].Name == name {
			return &t.Spans[i]
		}
	}
	return nil
}

// HasAttr reports whether any span carries the attribute key=value.
func (t *TraceData) HasAttr(key, value string) bool {
	for i := range t.Spans {
		if t.Spans[i].Attrs[key] == value {
			return true
		}
	}
	return false
}

// MaxSpans bounds the spans retained per trace: a pathological request
// touching thousands of blocks must not turn its trace into an unbounded
// allocation. Spans past the cap are counted in DroppedSpans.
const MaxSpans = 512

// Trace accumulates the spans of one request until the root span ends.
// All methods are safe for concurrent use — the IDX fetch pool records
// spans from several goroutines at once.
type Trace struct {
	id    string
	col   *Collector
	now   func() time.Time
	start time.Time
	node  string

	mu       sync.Mutex
	spans    []SpanData
	dropped  int
	depth    int
	lastSpan uint64
	finished *TraceData
}

// record appends one completed span, honouring the per-trace cap.
func (t *Trace) record(sd SpanData) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished != nil {
		return // late span after the root ended; drop silently
	}
	if len(t.spans) >= MaxSpans {
		t.dropped++
		return
	}
	t.spans = append(t.spans, sd)
}

// nextSpanID allocates a trace-local span identifier.
func (t *Trace) nextSpanID() string {
	t.mu.Lock()
	t.lastSpan++
	n := t.lastSpan
	t.mu.Unlock()
	return strconv.FormatUint(n, 16)
}

// finish snapshots the trace and publishes it to the collector.
func (t *Trace) finish(end time.Time) *TraceData {
	t.mu.Lock()
	if t.finished != nil {
		d := t.finished
		t.mu.Unlock()
		return d
	}
	d := &TraceData{
		TraceID:      t.id,
		Node:         t.node,
		Start:        t.start,
		Duration:     end.Sub(t.start),
		Spans:        t.spans,
		DroppedSpans: t.dropped,
	}
	t.spans = nil
	t.finished = d
	t.mu.Unlock()
	if t.col != nil {
		t.col.publish(d)
	}
	return d
}

// Span is one in-flight operation within a trace. The zero of usefulness
// is a nil *Span: every method no-ops, so instrumented code needs no
// "is tracing on?" branches.
type Span struct {
	tr     *Trace
	name   string
	id     string
	parent string
	start  time.Time
	root   bool

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// SetAttr appends attributes to the span. Safe to call from the goroutine
// that owns the span at any point before End.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.mu.Unlock()
}

// TraceID returns the owning trace's ID, or "" on a nil span.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.tr.id
}

// ID returns the span's trace-local identifier, or "" on a nil span —
// the value Inject forwards so a peer can name its caller exactly.
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Node returns the owning collector's fleet-wide node name, or "".
func (s *Span) Node() string {
	if s == nil {
		return ""
	}
	return s.tr.node
}

// Depth returns the trace's peer-hop depth: 0 in the process that
// minted the trace, +1 per hop (set by SetRemoteParent on the root span
// of each downstream process).
func (s *Span) Depth() int {
	if s == nil {
		return 0
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.tr.depth
}

// SetRemoteParent marks the span's trace as a continuation of a remote
// span: the trace's hop depth becomes the caller's depth + 1 and the
// span is annotated with the caller's node-namespaced span reference,
// which federated assembly (Merge) uses to graft this process's spans
// under the exact remote span that issued the request. The tracing
// middleware calls this on the root span when an inbound request
// carries a valid ParentHeader.
func (s *Span) SetRemoteParent(p Parent) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.tr.depth = p.Depth + 1
	s.tr.mu.Unlock()
	s.SetAttr(Str("remote_parent", p.Ref()), Int("depth", int64(p.Depth+1)))
}

// End completes the span and records it into its trace. Ending the root
// span finalises the whole trace and publishes it to the collector.
// Calling End twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	attrs := s.attrs
	s.mu.Unlock()
	end := s.tr.now()
	s.tr.record(SpanData{
		Name:     s.name,
		ID:       s.id,
		Parent:   s.parent,
		Start:    s.start,
		Duration: end.Sub(s.start),
		Attrs:    attrMap(attrs),
	})
	if s.root {
		s.tr.finish(end)
	}
}

// Finished returns the completed trace snapshot after the root span has
// ended; nil before that, and nil on non-root spans. The tracing
// middleware uses this for slow-request summaries without re-querying
// the collector.
func (s *Span) Finished() *TraceData {
	if s == nil || !s.root {
		return nil
	}
	s.tr.mu.Lock()
	defer s.tr.mu.Unlock()
	return s.tr.finished
}

// attrMap renders an attribute list into the snapshot map form.
func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}
