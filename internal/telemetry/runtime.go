package telemetry

import (
	"runtime"
)

// RegisterRuntimeMetrics registers process-health series sampled lazily
// on each /metrics scrape — no background goroutine, no sampling loop:
//
//	nsdf_runtime_goroutines        live goroutine count (gauge)
//	nsdf_runtime_heap_bytes        bytes of allocated heap objects (gauge)
//	nsdf_runtime_gc_pause_seconds  cumulative stop-the-world pause time (counter)
//
// Each scrape triggers runtime.ReadMemStats, which briefly
// stops-the-world; at scrape cadence (seconds to minutes) that cost is
// noise, and it keeps the numbers exactly as fresh as the scrape. The
// funcs read into locals so concurrent scrapes (the registry renders
// under a read lock) stay race-free.
func RegisterRuntimeMetrics(reg *Registry) {
	reg.GaugeFunc("nsdf_runtime_goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	reg.GaugeFunc("nsdf_runtime_heap_bytes", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.HeapAlloc)
	})
	reg.CounterFunc("nsdf_runtime_gc_pause_seconds", func() float64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return float64(m.PauseTotalNs) / 1e9
	})
}
