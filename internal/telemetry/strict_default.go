//go:build !nsdfstrict

package telemetry

// strictDefault leaves new registries in logging mode: a misnamed
// metric is reported once via the standard logger but still registered,
// so production services never crash over a label. Build with
// -tags nsdfstrict (or call SetStrict) to panic instead.
const strictDefault = false
