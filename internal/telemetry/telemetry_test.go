package telemetry

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// newLenientRegistry returns a registry with strict naming off, so the
// mechanics tests below can keep their compact metric names under any
// build tag (-tags nsdfstrict flips the default to panic-on-bad-name).
// Naming enforcement itself is covered in strict_test.go.
func newLenientRegistry() *Registry {
	r := NewRegistry()
	r.SetStrict(false)
	return r
}

// TestConcurrentCounters hammers one counter, one gauge, and one
// histogram from many goroutines; run under -race this doubles as the
// data-race check for the whole hot path.
func TestConcurrentCounters(t *testing.T) {
	reg := newLenientRegistry()
	const goroutines = 16
	const perG = 2000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Resolve series inside the goroutine too: lookup must be
			// concurrency-safe, not just the increments.
			c := reg.Counter("ops_total", "op", "get")
			gg := reg.Gauge("in_flight")
			h := reg.Histogram("latency_seconds")
			for i := 0; i < perG; i++ {
				c.Inc()
				gg.Add(1)
				gg.Add(-1)
				h.Observe(0.003)
			}
		}()
	}
	wg.Wait()

	if got := reg.Counter("ops_total", "op", "get").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := reg.Gauge("in_flight").Value(); got != 0 {
		t.Errorf("gauge = %g, want 0", got)
	}
	snap := reg.Histogram("latency_seconds").Snapshot()
	if snap.Count != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", snap.Count, goroutines*perG)
	}
	wantSum := float64(goroutines*perG) * 0.003
	if math.Abs(snap.Sum-wantSum) > wantSum*1e-9 {
		t.Errorf("histogram sum = %g, want %g", snap.Sum, wantSum)
	}
}

// TestCounterMonotonic verifies negative deltas are dropped.
func TestCounterMonotonic(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5 (negative add must be ignored)", c.Value())
	}
}

// TestSameSeriesSameInstance checks that registry lookups are idempotent
// and that label order does not split a series.
func TestSameSeriesSameInstance(t *testing.T) {
	reg := newLenientRegistry()
	a := reg.Counter("x_total", "a", "1", "b", "2")
	b := reg.Counter("x_total", "b", "2", "a", "1")
	if a != b {
		t.Fatal("same name+labels in different order returned distinct counters")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("increments not shared")
	}
}

// TestHistogramPercentiles checks the interpolation against a known
// distribution: 100 observations spread uniformly within one bucket.
func TestHistogramPercentiles(t *testing.T) {
	h := newHistogram(nil)
	// 90 fast ops at ~2ms, 10 slow at ~80ms.
	for i := 0; i < 90; i++ {
		h.Observe(0.002)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.08)
	}
	s := h.Snapshot()
	// p50 must land in the (0.001, 0.0025] bucket, p95 and p99 in the
	// (0.05, 0.1] bucket.
	if s.P50 <= 0.001 || s.P50 > 0.0025 {
		t.Errorf("p50 = %g, want within (0.001, 0.0025]", s.P50)
	}
	if s.P95 <= 0.05 || s.P95 > 0.1 {
		t.Errorf("p95 = %g, want within (0.05, 0.1]", s.P95)
	}
	if s.P99 <= 0.05 || s.P99 > 0.1 {
		t.Errorf("p99 = %g, want within (0.05, 0.1]", s.P99)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 {
		t.Errorf("percentiles not monotone: p50=%g p95=%g p99=%g", s.P50, s.P95, s.P99)
	}
}

// TestExpositionGolden locks the text format: family ordering, label
// canonicalisation, cumulative buckets, sum/count, and quantile lines.
func TestExpositionGolden(t *testing.T) {
	reg := newLenientRegistry()
	reg.Counter("bb_ops_total", "op", "get").Add(7)
	reg.Counter("bb_ops_total", "op", "put").Add(3)
	reg.Gauge("aa_entries").Set(12.5)
	reg.GaugeFunc("cc_live", func() float64 { return 4 })
	h := reg.Histogram("dd_seconds")
	h.Observe(0.0002) // (0.0001, 0.00025] bucket
	h.Observe(0.0002)
	h.Observe(0.3) // (0.25, 0.5] bucket

	var b strings.Builder
	if err := reg.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# TYPE aa_entries gauge
aa_entries 12.5
# TYPE bb_ops_total counter
bb_ops_total{op="get"} 7
bb_ops_total{op="put"} 3
# TYPE cc_live gauge
cc_live 4
# TYPE dd_seconds histogram
dd_seconds_bucket{le="0.0001"} 0
dd_seconds_bucket{le="0.00025"} 2
dd_seconds_bucket{le="0.0005"} 2
dd_seconds_bucket{le="0.001"} 2
dd_seconds_bucket{le="0.0025"} 2
dd_seconds_bucket{le="0.005"} 2
dd_seconds_bucket{le="0.01"} 2
dd_seconds_bucket{le="0.025"} 2
dd_seconds_bucket{le="0.05"} 2
dd_seconds_bucket{le="0.1"} 2
dd_seconds_bucket{le="0.25"} 2
dd_seconds_bucket{le="0.5"} 3
dd_seconds_bucket{le="1"} 3
dd_seconds_bucket{le="2.5"} 3
dd_seconds_bucket{le="5"} 3
dd_seconds_bucket{le="10"} 3
dd_seconds_bucket{le="+Inf"} 3
dd_seconds_sum 0.3004
dd_seconds_count 3
`
	lines := strings.SplitAfter(got, "\n")
	if len(lines) < 4 {
		t.Fatalf("exposition too short:\n%s", got)
	}
	// The last three non-empty lines are the estimated quantiles, whose
	// interpolated values carry float noise — check those numerically.
	exact := strings.Join(lines[:len(lines)-4], "")
	if exact != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", exact, want)
	}
	for i, q := range []struct {
		label string
		want  float64
	}{
		{`dd_seconds{quantile="0.5"} `, 0.0002125}, // interpolated within (0.0001, 0.00025]
		{`dd_seconds{quantile="0.95"} `, 0.4625},   // interpolated within (0.25, 0.5]
		{`dd_seconds{quantile="0.99"} `, 0.4925},
	} {
		line := strings.TrimSuffix(lines[len(lines)-4+i], "\n")
		if !strings.HasPrefix(line, q.label) {
			t.Errorf("quantile line %d = %q, want prefix %q", i, line, q.label)
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimPrefix(line, q.label), 64)
		if err != nil {
			t.Errorf("quantile line %d value: %v", i, err)
			continue
		}
		if math.Abs(v-q.want) > 1e-9 {
			t.Errorf("quantile line %d = %g, want %g", i, v, q.want)
		}
	}
}

// TestHandlerServesExposition exercises the /metrics handler end to end.
func TestHandlerServesExposition(t *testing.T) {
	reg := newLenientRegistry()
	reg.Counter("up_total").Inc()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "up_total 1") {
		t.Errorf("exposition missing counter: %q", body)
	}
}

// TestHTTPMetricsWrap checks the middleware counts status classes and
// observes latency.
func TestHTTPMetricsWrap(t *testing.T) {
	reg := newLenientRegistry()
	m := NewHTTPMetrics(reg, "svc")
	ok := m.Wrap("/ok", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("hi"))
	})
	missing := m.Wrap("/missing", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	})
	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		ok(rec, httptest.NewRequest("GET", "/ok", nil))
	}
	rec := httptest.NewRecorder()
	missing(rec, httptest.NewRequest("GET", "/missing", nil))

	if got := reg.Counter("nsdf_http_requests_total", "service", "svc", "route", "/ok", "class", "2xx").Value(); got != 3 {
		t.Errorf("2xx count = %d, want 3", got)
	}
	if got := reg.Counter("nsdf_http_requests_total", "service", "svc", "route", "/missing", "class", "4xx").Value(); got != 1 {
		t.Errorf("4xx count = %d, want 1", got)
	}
	if snap := reg.Histogram("nsdf_http_request_seconds", "service", "svc").Snapshot(); snap.Count != 4 {
		t.Errorf("latency observations = %d, want 4", snap.Count)
	}
	if got := reg.Gauge("nsdf_http_in_flight", "service", "svc").Value(); got != 0 {
		t.Errorf("in-flight gauge = %g, want 0 after completion", got)
	}
}

// TestSumFamilyAndQuantiles covers the cmd-level summary helpers.
func TestSumFamilyAndQuantiles(t *testing.T) {
	reg := newLenientRegistry()
	reg.Counter("t_total", "k", "a").Add(2)
	reg.Counter("t_total", "k", "b").Add(5)
	if got := reg.SumFamily("t_total"); got != 7 {
		t.Errorf("SumFamily = %g, want 7", got)
	}
	if got := reg.SumFamily("absent"); got != 0 {
		t.Errorf("SumFamily(absent) = %g, want 0", got)
	}
	if _, _, _, ok := reg.FamilyQuantiles("t_total"); ok {
		t.Error("FamilyQuantiles over a counter family must report !ok")
	}
	h1 := reg.Histogram("lat_seconds", "k", "a")
	h2 := reg.Histogram("lat_seconds", "k", "b")
	for i := 0; i < 50; i++ {
		h1.Observe(0.002)
		h2.Observe(0.002)
	}
	p50, p95, p99, ok := reg.FamilyQuantiles("lat_seconds")
	if !ok {
		t.Fatal("FamilyQuantiles not ok with observations present")
	}
	for _, p := range []float64{p50, p95, p99} {
		if p <= 0.001 || p > 0.0025 {
			t.Errorf("merged quantile %g outside observation bucket (0.001, 0.0025]", p)
		}
	}
}

// TestObserveSince sanity-checks the time helper.
func TestObserveSince(t *testing.T) {
	h := newHistogram(nil)
	h.ObserveSince(time.Now().Add(-10 * time.Millisecond))
	s := h.Snapshot()
	if s.Count != 1 || s.Sum < 0.009 {
		t.Errorf("ObserveSince recorded count=%d sum=%g, want ~0.01s", s.Count, s.Sum)
	}
}
