package flight

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAndSnapshot(t *testing.T) {
	r := New(8)
	r.SetNode("store-a")
	base := time.Unix(1700000000, 0)
	r.SetClock(func() time.Time { return base })

	r.Record(KindHedgeFired, "aaaa", "get key=%s after=%s", "blocks/1", 30*time.Millisecond)
	r.Record(KindShed, "", "plain detail without args")

	events := r.Snapshot()
	if len(events) != 2 {
		t.Fatalf("snapshot has %d events, want 2", len(events))
	}
	ev := events[0]
	if ev.Seq != 1 || ev.Kind != KindHedgeFired || ev.Node != "store-a" || ev.TraceID != "aaaa" {
		t.Fatalf("first event = %+v", ev)
	}
	if ev.Detail != "get key=blocks/1 after=30ms" {
		t.Fatalf("detail %q", ev.Detail)
	}
	if !ev.Time.Equal(base) {
		t.Fatalf("time %v, want %v", ev.Time, base)
	}
	if events[1].Detail != "plain detail without args" {
		t.Fatalf("no-args detail %q", events[1].Detail)
	}
	if r.Total() != 2 {
		t.Fatalf("total %d, want 2", r.Total())
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := New(4)
	for i := 0; i < 10; i++ {
		r.Record(KindSlowRequest, "", "event %d", i)
	}
	events := r.Snapshot()
	if len(events) != 4 {
		t.Fatalf("snapshot has %d events, want capacity 4", len(events))
	}
	// The survivors are the most recent four, in order.
	for i, ev := range events {
		want := fmt.Sprintf("event %d", 6+i)
		if ev.Detail != want {
			t.Errorf("event[%d] = %q, want %q", i, ev.Detail, want)
		}
	}
	if r.Total() != 10 {
		t.Fatalf("total %d, want 10", r.Total())
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Record(KindShed, "id", "detail") // must not panic
	r.SetNode("x")
	r.Dump(nil)
	if r.Snapshot() != nil || r.Total() != 0 || r.Capacity() != 0 {
		t.Fatal("nil recorder must report empty state")
	}
}

func TestHandlerFiltersAndFormats(t *testing.T) {
	r := New(16)
	r.SetNode("store-b")
	r.Record(KindShed, "t1", "shed one")
	r.Record(KindHedgeFired, "t2", "hedge one")
	r.Record(KindShed, "t3", "shed two")

	get := func(query string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/flightrecorder"+query, nil))
		return rec
	}

	// Text view carries the header and every event.
	body := get("").Body.String()
	if !strings.Contains(body, "flightrecorder  events=3 recorded=3 capacity=16") {
		t.Fatalf("text header missing:\n%s", body)
	}
	for _, want := range []string{"shed one", "hedge one", "shed two", "node=store-b", "trace=t2"} {
		if !strings.Contains(body, want) {
			t.Errorf("text output missing %q:\n%s", want, body)
		}
	}

	// kind= filter.
	var events []Event
	if err := json.Unmarshal(get("?format=json&kind=shed").Body.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].Detail != "shed one" || events[1].Detail != "shed two" {
		t.Fatalf("kind=shed events = %+v", events)
	}

	// trace= filter.
	if err := json.Unmarshal(get("?format=json&trace=t2").Body.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Kind != KindHedgeFired {
		t.Fatalf("trace=t2 events = %+v", events)
	}
}

// TestConcurrentRecord exercises the wait-free ring from many
// goroutines — run under -race this is the recorder's memory-safety
// proof. Every snapshot taken mid-flight must be internally consistent
// (monotonic seqs, no torn events).
func TestConcurrentRecord(t *testing.T) {
	r := New(32)
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Record(KindFailover, "trace", "w%d-%d", w, i)
				if i%100 == 0 {
					for _, ev := range r.Snapshot() {
						if ev.Detail == "" || ev.Seq == 0 {
							t.Errorf("torn event: %+v", ev)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Total(); got != workers*perWorker {
		t.Fatalf("total %d, want %d", got, workers*perWorker)
	}
	events := r.Snapshot()
	if len(events) != 32 {
		t.Fatalf("final snapshot has %d events, want 32", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq <= events[i-1].Seq {
			t.Fatalf("snapshot seqs not monotonic: %d then %d", events[i-1].Seq, events[i].Seq)
		}
	}
}
