// Package flight is the anomaly flight recorder of the NSDF serving
// stack: a fixed-size, lock-free ring of the most recent anomalous
// events — shed requests, hedge fires, replica failovers, retry
// exhaustion, slow requests — each stamped with the trace ID it
// happened under. When something goes wrong in a classroom deployment
// the interesting history is almost always the last few hundred
// anomalies, not a full log: the ring is served at /debug/flightrecorder
// on every server and dumped to the log on graceful shutdown, so the
// evidence survives even when nobody was watching the metrics.
//
// The package is stdlib-only and imports nothing else in this module,
// so any layer can record into it. Recording is wait-free (one atomic
// add plus one atomic pointer store) and every method is safe on a nil
// *Recorder, so wiring is optional everywhere.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync/atomic"
	"time"
)

// Kind classifies an anomalous event.
type Kind string

// The event taxonomy. Producers across the stack agree on these so the
// ring can be filtered by kind (see Handler's kind= parameter).
const (
	// KindShed is a request rejected by admission control (429).
	KindShed Kind = "shed"
	// KindHedgeFired is a hedged read launched because the current
	// replica exceeded -hedge-after.
	KindHedgeFired Kind = "hedge_fired"
	// KindFailover is a replica lost mid-operation (read failover or a
	// degraded replicated write).
	KindFailover Kind = "replica_failover"
	// KindRetryExhausted is a storage operation that failed through its
	// whole retry budget.
	KindRetryExhausted Kind = "retry_exhausted"
	// KindSlowRequest is a request slower than the server's
	// -slow-request threshold.
	KindSlowRequest Kind = "slow_request"
	// KindAlert is a monitoring alert (the network monitor's
	// degradation detector).
	KindAlert Kind = "alert"
)

// Event is one recorded anomaly.
type Event struct {
	// Seq is the recorder-wide sequence number (1-based, monotonic).
	Seq uint64 `json:"seq"`
	// Time is when the event was recorded.
	Time time.Time `json:"time"`
	// Kind classifies the anomaly.
	Kind Kind `json:"kind"`
	// Node names the process that recorded the event (SetNode).
	Node string `json:"node,omitempty"`
	// TraceID links the event to its request trace, when one was
	// active — paste it into /debug/traces?federate=1 on the dashboard.
	TraceID string `json:"trace_id,omitempty"`
	// Detail is a one-line human-readable description.
	Detail string `json:"detail"`
}

// DefaultCapacity is the ring size used when New is given a
// non-positive capacity.
const DefaultCapacity = 256

// Recorder is the fixed-size event ring. Record is wait-free and safe
// for concurrent use; Snapshot is lock-free and may miss events racing
// with it, which is fine for a debugging aid. All methods no-op on nil.
type Recorder struct {
	slots []atomic.Pointer[Event]
	next  atomic.Uint64
	node  atomic.Pointer[string]
	clock func() time.Time
}

// New returns a recorder retaining the most recent capacity events
// (DefaultCapacity when capacity <= 0).
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{slots: make([]atomic.Pointer[Event], capacity), clock: time.Now}
}

// SetNode names the process; subsequent events carry it.
func (r *Recorder) SetNode(name string) {
	if r == nil {
		return
	}
	r.node.Store(&name)
}

// SetClock replaces the time source — tests drive deterministic event
// times through this. Call it before the recorder sees traffic.
func (r *Recorder) SetClock(now func() time.Time) {
	if r == nil {
		return
	}
	r.clock = now
}

// Record appends one event to the ring, overwriting the oldest once
// full. detailFormat/args render the Detail line fmt.Sprintf-style.
func (r *Recorder) Record(kind Kind, traceID, detailFormat string, args ...any) {
	if r == nil {
		return
	}
	detail := detailFormat
	if len(args) > 0 {
		detail = fmt.Sprintf(detailFormat, args...)
	}
	node := ""
	if p := r.node.Load(); p != nil {
		node = *p
	}
	ev := &Event{
		Seq:     r.next.Add(1),
		Time:    r.clock(),
		Kind:    kind,
		Node:    node,
		TraceID: traceID,
		Detail:  detail,
	}
	r.slots[(ev.Seq-1)%uint64(len(r.slots))].Store(ev)
}

// Total reports how many events have ever been recorded (including
// overwritten ones). Zero on nil.
func (r *Recorder) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.next.Load()
}

// Capacity reports the ring size. Zero on nil.
func (r *Recorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Snapshot returns the retained events, oldest first. Events being
// overwritten concurrently may be skipped. Nil recorders return nil.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	total := r.next.Load()
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if ev := r.slots[i].Load(); ev != nil && ev.Seq <= total {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// WriteText renders the ring human-readably, oldest first.
func (r *Recorder) WriteText(w io.Writer) {
	r.writeEvents(w, r.Snapshot())
}

// writeEvents renders the header line and one line per event.
func (r *Recorder) writeEvents(w io.Writer, events []Event) {
	fmt.Fprintf(w, "flightrecorder  events=%d recorded=%d capacity=%d\n",
		len(events), r.Total(), r.Capacity())
	for _, ev := range events {
		fmt.Fprintf(w, "%6d  %s  %-16s", ev.Seq, ev.Time.Format(time.RFC3339Nano), ev.Kind)
		if ev.Node != "" {
			fmt.Fprintf(w, "  node=%s", ev.Node)
		}
		if ev.TraceID != "" {
			fmt.Fprintf(w, "  trace=%s", ev.TraceID)
		}
		fmt.Fprintf(w, "  %s\n", ev.Detail)
	}
}

// Handler serves the ring at /debug/flightrecorder.
//
// Query parameters:
//
//	format=json|text  response encoding (default text)
//	kind=<kind>       keep only events of this kind
//	trace=<id>        keep only events of this trace
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query()
		events := r.Snapshot()
		if kind := q.Get("kind"); kind != "" {
			events = filter(events, func(ev Event) bool { return string(ev.Kind) == kind })
		}
		if id := q.Get("trace"); id != "" {
			events = filter(events, func(ev Event) bool { return ev.TraceID == id })
		}
		if q.Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(events)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.writeEvents(w, events)
	})
}

// filter keeps the events matching keep.
func filter(events []Event, keep func(Event) bool) []Event {
	out := events[:0]
	for _, ev := range events {
		if keep(ev) {
			out = append(out, ev)
		}
	}
	return out
}

// Dump writes the retained events to the logger, one structured record
// per event — the shutdown path, so a crash-looping or drained server
// leaves its anomaly history in the log.
func (r *Recorder) Dump(logger *slog.Logger) {
	if r == nil || r.Total() == 0 {
		return
	}
	if logger == nil {
		logger = slog.Default()
	}
	events := r.Snapshot()
	logger.Info("flight recorder dump",
		slog.Int("events", len(events)),
		slog.Uint64("recorded", r.Total()))
	for _, ev := range events {
		logger.Info("flight event",
			slog.Uint64("seq", ev.Seq),
			slog.Time("time", ev.Time),
			slog.String("kind", string(ev.Kind)),
			slog.String("trace", ev.TraceID),
			slog.String("detail", ev.Detail))
	}
}
