package telemetry

import (
	"bytes"
	"log"
	"strings"
	"testing"
)

// TestStrictRejectsBadMetricName proves the runtime counterpart of the
// metricname analyzer: a strict registry panics on a name outside
// ^nsdf_[a-z0-9_]+$, so dynamically assembled names cannot slip past
// the static pass.
func TestStrictRejectsBadMetricName(t *testing.T) {
	r := NewRegistry()
	r.SetStrict(true)

	defer func() {
		if recover() == nil {
			t.Fatal("strict registry accepted metric name outside the nsdf_ convention")
		}
	}()
	r.Counter("requests_total").Inc()
}

// TestStrictAcceptsConformingName checks strict mode does not get in
// the way of well-named metrics.
func TestStrictAcceptsConformingName(t *testing.T) {
	r := NewRegistry()
	r.SetStrict(true)
	r.Counter("nsdf_strict_ok_total").Inc()
	r.Gauge("nsdf_strict_live", "shard", "0").Set(3)
	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "nsdf_strict_ok_total 1") {
		t.Fatalf("conforming counter missing from exposition:\n%s", sb.String())
	}
}

// TestNonStrictLogsOnceAndStillRegisters checks non-strict mode: a bad
// name is reported on the standard logger exactly once per name, but
// the series still works so production callers never crash. SetStrict
// is forced off so the test also passes under -tags nsdfstrict, where
// the build-time default flips to strict.
func TestNonStrictLogsOnceAndStillRegisters(t *testing.T) {
	var buf bytes.Buffer
	old := log.Writer()
	log.SetOutput(&buf)
	defer log.SetOutput(old)

	r := NewRegistry()
	r.SetStrict(false)
	c := r.Counter("bad-name.total")
	c.Inc()
	c.Inc()
	r.Counter("bad-name.total").Inc() // same family and series: no second log line

	if got := c.Value(); got != 3 {
		t.Fatalf("misnamed counter value = %v, want 3", got)
	}
	logged := buf.String()
	if n := strings.Count(logged, "bad-name.total"); n != 1 {
		t.Fatalf("want exactly 1 warning for the misnamed family, got %d:\n%s", n, logged)
	}
	if !strings.Contains(logged, "nsdf_") {
		t.Fatalf("warning should cite the naming pattern:\n%s", logged)
	}
}
