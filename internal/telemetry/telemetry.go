// Package telemetry is the operational-metrics substrate of the NSDF
// serving stack. The paper's services are *operated* infrastructure: the
// dashboard and network-monitoring steps exist so that students can watch
// cache hit rates, transfer volumes, and latency while streaming IDX
// blocks (§III, Fig. 5–6). This package gives every layer — storage
// backends, the IDX block engine, the LRU cache, the catalog and
// dashboard HTTP services, and the network monitor — one dependency-free
// place to register counters, gauges, and latency histograms, and one
// Prometheus-style text endpoint to expose them from.
//
// All metric types are safe for concurrent use and allocation-free on the
// hot path: wrappers resolve their series once at construction and then
// touch only atomics.
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the exposition type of a metric family.
type Kind string

// Metric family kinds, matching the Prometheus text-format TYPE names.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default histogram upper bounds in seconds, spanning
// 100µs (in-memory block reads) to 10s (cross-country cold fetches).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Observations are in
// seconds; buckets are cumulative at exposition time, Prometheus-style.
// Each bucket additionally retains the most recent exemplar — the trace
// ID of the last observation that landed in it (ObserveExemplar) — so a
// suspicious latency bucket links directly to a fetchable trace.
type Histogram struct {
	bounds []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64
	ex     []atomic.Pointer[Exemplar] // most recent exemplar per bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// Exemplar links one observed value to the request trace that produced
// it.
type Exemplar struct {
	// Value is the observed value (seconds, for latency histograms).
	Value float64 `json:"value"`
	// TraceID names the trace active when the value was observed.
	TraceID string `json:"trace_id"`
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Int64, len(b)+1),
		ex:     make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// Observe records one value (seconds, for latency histograms).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveSince records the elapsed time since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// ObserveExemplar records one value and, when traceID is non-empty,
// swaps it in as the containing bucket's exemplar. The swap is a single
// lock-free atomic pointer store (last writer wins), so the hot path
// pays one extra allocation and one store over Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" || math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.ex[i].Store(&Exemplar{Value: v, TraceID: traceID})
}

// BucketExemplar pairs a bucket's rendered upper bound with its most
// recent exemplar.
type BucketExemplar struct {
	// LE is the bucket's upper bound rendered Prometheus-style
	// ("0.025", "+Inf").
	LE string `json:"le"`
	// Exemplar is the bucket's most recent exemplar.
	Exemplar Exemplar `json:"exemplar"`
}

// Exemplars snapshots the buckets that have an exemplar, in bound
// order.
func (h *Histogram) Exemplars() []BucketExemplar {
	var out []BucketExemplar
	for i := range h.ex {
		e := h.ex[i].Load()
		if e == nil {
			continue
		}
		le := "+Inf"
		if i < len(h.bounds) {
			le = strconv.FormatFloat(h.bounds[i], 'g', -1, 64)
		}
		out = append(out, BucketExemplar{LE: le, Exemplar: *e})
	}
	return out
}

// Snapshot is a consistent-enough view of a histogram for reporting:
// counts are read atomically per bucket, so a snapshot taken under
// concurrent writes may be mid-update, which is fine for monitoring.
type Snapshot struct {
	// Count is the number of observations.
	Count int64
	// Sum is the total of all observed values.
	Sum float64
	// P50, P95, P99 are estimated percentiles (linear interpolation
	// within the containing bucket).
	P50, P95, P99 float64
}

// Snapshot returns current totals and estimated percentiles.
func (h *Histogram) Snapshot() Snapshot {
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := Snapshot{Count: total, Sum: math.Float64frombits(h.sum.Load())}
	if total == 0 {
		return s
	}
	s.P50 = h.quantile(counts, total, 0.50)
	s.P95 = h.quantile(counts, total, 0.95)
	s.P99 = h.quantile(counts, total, 0.99)
	return s
}

// quantile estimates the q-quantile from bucket counts by interpolating
// linearly inside the containing bucket. Values in the +Inf bucket clamp
// to the largest finite bound.
func (h *Histogram) quantile(counts []int64, total int64, q float64) float64 {
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		if i == len(h.bounds) { // +Inf bucket: clamp
			return h.bounds[len(h.bounds)-1]
		}
		hi := h.bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// series is one labelled instance inside a family.
type series struct {
	labels string // canonical rendered form: {k="v",...} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	kind   Kind
	series map[string]*series
	order  []string // label signatures in registration order, sorted at expose
}

// MetricNamePattern is the naming convention every family must follow.
// The static metricname analyzer (internal/lint) enforces it on
// constant names at `make lint` time; the registry re-checks at first
// registration so dynamically assembled names cannot slip past the
// static pass.
var MetricNamePattern = regexp.MustCompile(`^nsdf_[a-z0-9_]+$`)

// Registry holds metric families and renders them as a text exposition.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string
	strict   bool
	warned   map[string]bool
}

// NewRegistry returns an empty registry. It is strict (invalid metric
// names panic instead of logging) when the build tag nsdfstrict is set;
// see SetStrict.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family), strict: strictDefault}
}

// SetStrict switches misnamed-metric handling between logging (false,
// the default) and panicking (true) — tests use strict registries so a
// dynamically built name that dodges the metricname analyzer still
// fails loudly. Call it before the registry sees traffic.
func (r *Registry) SetStrict(on bool) {
	r.mu.Lock()
	r.strict = on
	r.mu.Unlock()
}

// checkName validates a family name on first registration. Caller holds
// the write lock.
func (r *Registry) checkName(name string) {
	if MetricNamePattern.MatchString(name) {
		return
	}
	if r.strict {
		panic(fmt.Sprintf("telemetry: metric name %q does not match %s", name, MetricNamePattern))
	}
	if r.warned == nil {
		r.warned = make(map[string]bool)
	}
	if !r.warned[name] {
		r.warned[name] = true
		logWarn("metric name does not match pattern; fix the name or run nsdf-lint",
			"name", name, "pattern", MetricNamePattern.String())
	}
}

// labelSig renders labels (alternating key, value) canonically, sorted by
// key. Panics on an odd-length labels list — that is a programming error
// at wiring time, not a runtime condition.
func labelSig(labels []string) string {
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be key/value pairs")
	}
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns (creating if needed) the series for name+labels,
// enforcing kind consistency within a family.
func (r *Registry) lookup(name string, kind Kind, labels []string) *series {
	sig := labelSig(labels)
	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		if s, ok := f.series[sig]; ok && f.kind == kind {
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		r.checkName(name)
		f = &family{name: name, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		r.names = append(r.names, name)
		sort.Strings(r.names)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: sig}
		switch kind {
		case KindCounter:
			s.c = &Counter{}
		case KindGauge:
			s.g = &Gauge{}
		case KindHistogram:
			s.h = newHistogram(nil)
		}
		f.series[sig] = s
		f.order = append(f.order, sig)
		sort.Strings(f.order)
	}
	return s
}

// Counter returns the counter for name with the given key/value label
// pairs, creating it on first use. Repeated calls with the same name and
// labels return the same counter.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.lookup(name, KindCounter, labels).c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.lookup(name, KindGauge, labels).g
}

// Histogram returns the histogram for name+labels with the default
// latency buckets, creating it on first use.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.lookup(name, KindHistogram, labels).h
}

// CounterFunc registers a counter series whose value is computed at
// exposition time — the adapter shape for components that already keep
// their own counters (e.g. cache.LRU). Re-registering replaces fn.
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...string) {
	s := r.lookup(name, KindCounter, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge series computed at exposition time.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	s := r.lookup(name, KindGauge, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// SumFamily sums the current values of every counter/gauge series under
// name (0 when absent). For histogram families it sums observation
// counts. The cmd-level one-line summaries aggregate with this.
func (r *Registry) SumFamily(name string) float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.families[name]
	if !ok {
		return 0
	}
	var total float64
	for _, s := range f.series {
		switch {
		case s.fn != nil:
			total += s.fn()
		case s.c != nil:
			total += float64(s.c.Value())
		case s.g != nil:
			total += s.g.Value()
		case s.h != nil:
			total += float64(s.h.Snapshot().Count)
		}
	}
	return total
}

// FamilyQuantiles merges every histogram series under name and returns
// the estimated (p50, p95, p99). ok is false when the family is absent,
// not a histogram, or has no observations.
func (r *Registry) FamilyQuantiles(name string) (p50, p95, p99 float64, ok bool) {
	r.mu.RLock()
	f, present := r.families[name]
	if !present || f.kind != KindHistogram {
		r.mu.RUnlock()
		return 0, 0, 0, false
	}
	merged := newHistogram(nil)
	var total int64
	for _, s := range f.series {
		for i := range s.h.counts {
			n := s.h.counts[i].Load()
			merged.counts[i].Add(n)
			total += n
		}
	}
	r.mu.RUnlock()
	if total == 0 {
		return 0, 0, 0, false
	}
	counts := make([]int64, len(merged.counts))
	for i := range merged.counts {
		counts[i] = merged.counts[i].Load()
	}
	return merged.quantile(counts, total, 0.50),
		merged.quantile(counts, total, 0.95),
		merged.quantile(counts, total, 0.99), true
}
