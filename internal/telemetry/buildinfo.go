package telemetry

import (
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/debug"
	"time"
)

// processStart anchors the uptime every /healthz body and the
// nsdf_process_uptime_seconds gauge report. Package-init time is close
// enough to exec time for operational purposes.
var processStart = time.Now()

// RegisterBuildInfo registers the build-identity series every server
// exposes:
//
//	nsdf_build_info{go_version,os,arch[,version]}  constant 1
//	nsdf_process_uptime_seconds                    seconds since start
//
// The constant-1 gauge is the Prometheus convention for joining build
// labels onto other series; uptime is sampled lazily per scrape.
func RegisterBuildInfo(reg *Registry) {
	one := func() float64 { return 1 }
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		reg.GaugeFunc("nsdf_build_info", one,
			"go_version", runtime.Version(), "os", runtime.GOOS, "arch", runtime.GOARCH,
			"version", bi.Main.Version)
	} else {
		reg.GaugeFunc("nsdf_build_info", one,
			"go_version", runtime.Version(), "os", runtime.GOOS, "arch", runtime.GOARCH)
	}
	reg.GaugeFunc("nsdf_process_uptime_seconds", func() float64 {
		return time.Since(processStart).Seconds()
	})
}

// Health is the JSON body every server's /healthz answers with.
type Health struct {
	// Status is "ok" on a live server (a failing server does not answer).
	Status string `json:"status"`
	// Service names the answering server ("dashboard", "store", ...).
	Service string `json:"service"`
	// GoVersion is the toolchain the binary was built with.
	GoVersion string `json:"go_version"`
	// Start is when the process came up.
	Start time.Time `json:"start"`
	// UptimeSeconds is seconds since Start.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// WriteHealth answers a /healthz probe with the standard JSON body.
func WriteHealth(w http.ResponseWriter, service string) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(Health{
		Status:        "ok",
		Service:       service,
		GoVersion:     runtime.Version(),
		Start:         processStart,
		UptimeSeconds: time.Since(processStart).Seconds(),
	})
}
