package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// PprofMux returns a mux serving the standard net/http/pprof endpoints
// under /debug/pprof/. The cmd/ servers mount this on a separate,
// opt-in listener (-pprof-addr) rather than the serving mux: profiling
// handlers can hold the process busy for seconds (CPU profile, full
// goroutine dumps) and must never be reachable from the data-serving
// port a classroom points browsers at.
//
// Handlers are registered explicitly instead of importing pprof for its
// DefaultServeMux side effect, so nothing leaks onto the default mux.
func PprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
