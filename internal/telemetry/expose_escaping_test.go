package telemetry

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExpositionEscapesLabelValues checks the text exposition stays
// one-sample-per-line and parseable when label values carry newlines,
// quotes, and backslashes: each must appear escaped inside the quoted
// label value, never raw.
func TestExpositionEscapesLabelValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("nsdf_escape_total", "path", "a\nb").Inc()
	r.Counter("nsdf_escape_total", "path", `quote"d`).Inc()
	r.Counter("nsdf_escape_total", "path", `back\slash`).Inc()

	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		`nsdf_escape_total{path="a\nb"} 1`,
		`nsdf_escape_total{path="quote\"d"} 1`,
		`nsdf_escape_total{path="back\\slash"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing escaped series %s:\n%s", want, out)
		}
	}
	// A raw newline inside a label value would split a sample across
	// lines; every line must be a comment or end in a value.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "# ") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed exposition line (label value leaked a newline?): %q", line)
		}
	}
}

// TestExpositionOrdering pins the deterministic layout: families
// sorted by name regardless of registration order, series within a
// family sorted by label signature, each family preceded by exactly one
// TYPE comment.
func TestExpositionOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("nsdf_order_b_total").Inc()
	r.Gauge("nsdf_order_a_live", "shard", "1").Set(1)
	r.Gauge("nsdf_order_a_live", "shard", "0").Set(2)

	var sb strings.Builder
	if err := r.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	want := []string{
		"# TYPE nsdf_order_a_live gauge",
		`nsdf_order_a_live{shard="0"} 2`,
		`nsdf_order_a_live{shard="1"} 1`,
		"# TYPE nsdf_order_b_total counter",
		"nsdf_order_b_total 1",
	}
	if len(lines) != len(want) {
		t.Fatalf("exposition has %d lines, want %d:\n%s", len(lines), len(want), sb.String())
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

// TestStatusRecorderDefaults200 covers the implicit-200 contract: a
// handler that writes a body without ever calling WriteHeader must be
// recorded as 200, and an explicit WriteHeader must win.
func TestStatusRecorderDefaults200(t *testing.T) {
	rec := NewStatusRecorder(httptest.NewRecorder())
	if _, err := rec.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("implicit status = %d, want 200", rec.Code)
	}

	inner := httptest.NewRecorder()
	rec = NewStatusRecorder(inner)
	rec.WriteHeader(http.StatusNotFound)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("explicit status = %d, want 404", rec.Code)
	}
	if inner.Code != http.StatusNotFound {
		t.Fatalf("underlying writer saw %d, want 404", inner.Code)
	}
}

// TestWrapRecordsStatusClass ties the recorder into HTTPMetrics.Wrap: a
// 404 handler must land in the 4xx class and a plain-body handler in 2xx.
func TestWrapRecordsStatusClass(t *testing.T) {
	reg := NewRegistry()
	m := NewHTTPMetrics(reg, "test")

	notFound := m.Wrap("missing", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusNotFound)
	})
	plain := m.Wrap("plain", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("hi")) //lint:allow droppederr test handler
	})
	notFound(httptest.NewRecorder(), httptest.NewRequest("GET", "/missing", nil))
	plain(httptest.NewRecorder(), httptest.NewRequest("GET", "/plain", nil))

	var sb strings.Builder
	if err := reg.WriteExposition(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Label keys are sorted inside the rendered signature.
	for _, want := range []string{
		`nsdf_http_requests_total{class="4xx",route="missing",service="test"} 1`,
		`nsdf_http_requests_total{class="2xx",route="plain",service="test"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s:\n%s", want, out)
		}
	}
}
