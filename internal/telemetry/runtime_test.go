package telemetry

import (
	"strings"
	"sync"
	"testing"
)

// TestRuntimeMetricsExposed: the three process-health series render on
// scrape with live, plausible values.
func TestRuntimeMetricsExposed(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	var b strings.Builder
	if err := reg.WriteExposition(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE nsdf_runtime_goroutines gauge",
		"# TYPE nsdf_runtime_heap_bytes gauge",
		"# TYPE nsdf_runtime_gc_pause_seconds counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// A live process always has at least one goroutine and a non-empty
	// heap; the rendered values must not be zero.
	for _, name := range []string{"nsdf_runtime_goroutines ", "nsdf_runtime_heap_bytes "} {
		line := ""
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, name) {
				line = l
			}
		}
		if line == "" {
			t.Fatalf("no sample line for %s:\n%s", name, out)
		}
		if strings.HasSuffix(line, " 0") {
			t.Errorf("%s rendered as zero: %q", name, line)
		}
	}
}

// TestRuntimeMetricsConcurrentScrapes: the registry renders func metrics
// under a read lock, so concurrent scrapes run the sampling funcs in
// parallel — they must be race-free (this test exists for -race).
func TestRuntimeMetricsConcurrentScrapes(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				var b strings.Builder
				if err := reg.WriteExposition(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
