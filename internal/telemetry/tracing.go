package telemetry

import (
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"time"

	"nsdfgo/internal/telemetry/flight"
	"nsdfgo/internal/telemetry/trace"
)

// TraceIDHeader is the HTTP header carrying a request's trace ID, both
// inbound (a client or upstream service propagating its own ID) and
// outbound (the serving stack echoing the ID it used, so a student can
// paste it straight into /debug/traces?trace=). It now lives in the
// trace package (which also defines the cross-process ParentHeader);
// this alias keeps existing call sites compiling.
const TraceIDHeader = trace.TraceIDHeader

// TracingOptions configures WithTracing.
type TracingOptions struct {
	// Service labels the root span (e.g. "dashboard", "store").
	Service string
	// SlowRequest is the duration at or above which a completed request
	// emits a one-line structured summary of its worst spans. Zero
	// disables slow-request logging.
	SlowRequest time.Duration
	// Logger receives the slow-request summaries; nil uses slog.Default().
	Logger *slog.Logger
	// Flight, when non-nil, receives a KindSlowRequest event for every
	// request at or above SlowRequest.
	Flight *flight.Recorder
}

// WithTracing wraps next so every request runs under a root span: a
// well-formed inbound X-NSDF-Trace-Id is adopted (malformed or missing
// IDs are replaced with a fresh one), the effective ID is echoed on the
// response, and the completed trace is published to col. An inbound
// X-NSDF-Trace-Parent (a peer hop — see trace.Inject) marks the root
// span as the continuation of the remote caller's span, so federated
// assembly can stitch this process's spans under it. Requests slower
// than opts.SlowRequest additionally log a structured summary naming
// the worst spans — and book a flight-recorder event when opts.Flight
// is wired — so sweep logs point at the guilty stage without a
// /debug/traces round trip.
func WithTracing(next http.Handler, col *trace.Collector, opts TracingOptions) http.Handler {
	logger := opts.Logger
	if logger == nil {
		logger = slog.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(TraceIDHeader)
		if !trace.ValidID(id) {
			id = trace.NewID()
		}
		w.Header().Set(TraceIDHeader, id)
		root := col.StartTrace(id, "http "+r.URL.Path,
			trace.Str("service", opts.Service),
			trace.Str("method", r.Method))
		if parent, ok := trace.ParseParent(r.Header.Get(trace.ParentHeader)); ok {
			root.SetRemoteParent(parent)
		}
		rec := NewStatusRecorder(w)
		next.ServeHTTP(rec, r.WithContext(trace.NewContext(r.Context(), root)))
		root.SetAttr(trace.Int("status", int64(rec.Code)))
		root.End()
		if opts.SlowRequest <= 0 {
			return
		}
		if data := root.Finished(); data != nil && data.Duration >= opts.SlowRequest {
			logger.Warn("slow request",
				slog.String("trace", data.TraceID),
				slog.String("service", opts.Service),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.Code),
				slog.Duration("duration", data.Duration),
				slog.String("worst", WorstSpans(data, 3)))
			opts.Flight.Record(flight.KindSlowRequest, data.TraceID,
				"%s %s status=%d duration=%s worst=%s",
				r.Method, r.URL.Path, rec.Code, data.Duration, WorstSpans(data, 3))
		}
	})
}

// WorstSpans renders the n longest non-root spans of a trace as
// "name=duration" pairs — the payload of the slow-request log line.
func WorstSpans(data *trace.TraceData, n int) string {
	spans := make([]trace.SpanData, 0, len(data.Spans))
	for _, sp := range data.Spans {
		if sp.Parent != "" { // skip the root span: it is the request itself
			spans = append(spans, sp)
		}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Duration > spans[j].Duration })
	if len(spans) > n {
		spans = spans[:n]
	}
	var b strings.Builder
	for i, sp := range spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(sp.Name)
		b.WriteByte('=')
		b.WriteString(sp.Duration.String())
	}
	return b.String()
}
