package query

import (
	"context"
	"errors"
	"math"
	"testing"

	"nsdfgo/internal/dem"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/raster"
)

func newEngine(t *testing.T, w, h int, bitsPerBlock int) (*Engine, *raster.Grid) {
	t.Helper()
	meta, err := idx.NewMeta([]int{w, h}, []idx.Field{{Name: "elevation", Type: idx.Float32, Codec: "zlib"}})
	if err != nil {
		t.Fatal(err)
	}
	if bitsPerBlock > 0 {
		meta.BitsPerBlock = bitsPerBlock
	}
	ds, err := idx.Create(context.Background(), idx.NewMemBackend(), meta)
	if err != nil {
		t.Fatal(err)
	}
	g := dem.Scale(dem.FBM(w, h, 3, dem.DefaultFBM()), 0, 2000)
	if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		t.Fatal(err)
	}
	return New(ds, 1<<20), g
}

func TestReadFullResolution(t *testing.T) {
	e, g := newEngine(t, 64, 64, 10)
	res, err := e.Read(context.Background(), Request{Field: "elevation", Level: LevelFull})
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(g, res.Grid) {
		t.Error("full read mismatch")
	}
	if res.Level != e.Dataset().Meta.MaxLevel() {
		t.Errorf("level = %d", res.Level)
	}
	if res.TransferBytes != int64(64*64*4) {
		t.Errorf("TransferBytes = %d", res.TransferBytes)
	}
}

func TestReadDefaultsToFullBox(t *testing.T) {
	e, _ := newEngine(t, 32, 32, 8)
	res, err := e.Read(context.Background(), Request{Field: "elevation", Level: LevelFull})
	if err != nil {
		t.Fatal(err)
	}
	if res.Grid.W != 32 || res.Grid.H != 32 {
		t.Errorf("dims %dx%d", res.Grid.W, res.Grid.H)
	}
}

func TestMaxSamplesResolvesLevel(t *testing.T) {
	e, _ := newEngine(t, 256, 256, 12)
	res, err := e.Read(context.Background(), Request{Field: "elevation", Level: LevelAuto, MaxSamples: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Samples > 1000 {
		t.Errorf("delivered %d samples, budget 1000", res.Stats.Samples)
	}
	// The next finer level must exceed the budget.
	if res.Level < e.Dataset().Meta.MaxLevel() {
		next := SamplesAtLevel(e.Dataset(), e.Dataset().FullBox(), res.Level+1)
		if next <= 1000 {
			t.Errorf("level %d chosen but level %d has only %d samples", res.Level, res.Level+1, next)
		}
	}
}

func TestMaxSamplesUnboundedMeansFull(t *testing.T) {
	e, _ := newEngine(t, 64, 64, 8)
	res, err := e.Read(context.Background(), Request{Field: "elevation", Level: LevelAuto})
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != e.Dataset().Meta.MaxLevel() {
		t.Errorf("unbounded auto level = %d", res.Level)
	}
}

func TestRequestValidation(t *testing.T) {
	e, _ := newEngine(t, 32, 32, 8)
	if _, err := e.Read(context.Background(), Request{Field: "elevation", Level: 99}); err == nil {
		t.Error("excessive level accepted")
	}
	if _, err := e.Read(context.Background(), Request{Field: "elevation", Level: LevelFull, PrecisionBits: 40}); err == nil {
		t.Error("precision 40 accepted")
	}
	if _, err := e.Read(context.Background(), Request{Field: "elevation", Level: LevelFull, Box: idx.Box{X0: 50, Y0: 50, X1: 60, Y1: 60}}); err == nil {
		t.Error("out-of-range box accepted")
	}
	if _, err := e.Read(context.Background(), Request{Field: "nope", Level: LevelFull}); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestPrecisionReducesTransferAndAccuracy(t *testing.T) {
	e, g := newEngine(t, 64, 64, 10)
	full, err := e.Read(context.Background(), Request{Field: "elevation", Level: LevelFull})
	if err != nil {
		t.Fatal(err)
	}
	low, err := e.Read(context.Background(), Request{Field: "elevation", Level: LevelFull, PrecisionBits: 8})
	if err != nil {
		t.Fatal(err)
	}
	if low.TransferBytes*4 != full.TransferBytes {
		t.Errorf("8-bit transfer %d vs 32-bit %d", low.TransferBytes, full.TransferBytes)
	}
	// Quantized values stay within relative tolerance 2^-8.
	var maxRel float64
	for i := range g.Data {
		ref := float64(g.Data[i])
		got := float64(low.Grid.Data[i])
		if ref == 0 {
			continue
		}
		rel := math.Abs(got-ref) / math.Max(math.Abs(ref), 1e-9)
		if rel > maxRel {
			maxRel = rel
		}
	}
	if maxRel == 0 {
		t.Error("8-bit precision changed nothing")
	}
	if maxRel > 1.0/128 {
		t.Errorf("relative error %v too large for 8 significant bits", maxRel)
	}
}

func TestPrecision32IsExact(t *testing.T) {
	e, g := newEngine(t, 32, 32, 8)
	res, err := e.Read(context.Background(), Request{Field: "elevation", Level: LevelFull, PrecisionBits: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(g, res.Grid) {
		t.Error("32-bit precision altered data")
	}
}

func TestProgressiveRefinesToFull(t *testing.T) {
	e, g := newEngine(t, 128, 128, 10)
	var levels []int
	var lastGrid *raster.Grid
	err := e.Progressive(context.Background(), Request{Field: "elevation", Level: LevelFull}, 4, 2, func(r Result) error {
		levels = append(levels, r.Level)
		lastGrid = r.Grid
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) < 3 {
		t.Fatalf("only %d refinement steps", len(levels))
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] <= levels[i-1] {
			t.Fatalf("levels not increasing: %v", levels)
		}
	}
	if levels[len(levels)-1] != e.Dataset().Meta.MaxLevel() {
		t.Errorf("final level %d", levels[len(levels)-1])
	}
	if !raster.Equal(g, lastGrid) {
		t.Error("final progressive grid differs from source")
	}
}

func TestProgressiveEarlyStop(t *testing.T) {
	e, _ := newEngine(t, 128, 128, 10)
	stop := errors.New("enough")
	count := 0
	err := e.Progressive(context.Background(), Request{Field: "elevation", Level: LevelFull}, 0, 2, func(r Result) error {
		count++
		if count == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Errorf("err = %v", err)
	}
	if count != 2 {
		t.Errorf("callback ran %d times", count)
	}
}

func TestProgressiveCoarseLevelsCheapen(t *testing.T) {
	e, _ := newEngine(t, 256, 256, 12)
	var transfers []int64
	err := e.Progressive(context.Background(), Request{Field: "elevation", Level: LevelFull}, 2, 4, func(r Result) error {
		transfers = append(transfers, r.TransferBytes)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(transfers); i++ {
		if transfers[i] <= transfers[i-1] {
			t.Fatalf("transfer bytes not increasing with refinement: %v", transfers)
		}
	}
	if transfers[0]*100 > transfers[len(transfers)-1] {
		t.Errorf("first preview %d bytes vs full %d; expected >=100x gap", transfers[0], transfers[len(transfers)-1])
	}
}

func TestProgressiveSubregion(t *testing.T) {
	e, g := newEngine(t, 128, 128, 10)
	box := idx.Box{X0: 32, Y0: 48, X1: 96, Y1: 112}
	var last Result
	err := e.Progressive(context.Background(), Request{Field: "elevation", Box: box, Level: LevelFull}, 0, 3, func(r Result) error {
		last = r
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.Grid.W != 64 || last.Grid.H != 64 {
		t.Fatalf("final dims %dx%d", last.Grid.W, last.Grid.H)
	}
	want, _ := g.Crop(32, 48, 64, 64)
	if !raster.Equal(want, last.Grid) {
		t.Error("subregion progressive mismatch")
	}
}

func TestCacheWarmsAcrossReads(t *testing.T) {
	e, _ := newEngine(t, 64, 64, 8)
	r1, err := e.Read(context.Background(), Request{Field: "elevation", Level: LevelFull})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.BlocksRead == 0 {
		t.Error("cold read fetched nothing")
	}
	r2, err := e.Read(context.Background(), Request{Field: "elevation", Level: LevelFull})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.BlocksRead != 0 {
		t.Errorf("warm read still fetched %d blocks", r2.Stats.BlocksRead)
	}
	if e.CacheStats().Hits == 0 {
		t.Error("cache reported no hits")
	}
}

func TestProbePoint(t *testing.T) {
	meta, err := idx.NewMeta([]int{16, 16}, []idx.Field{{Name: "f", Type: idx.Float32}})
	if err != nil {
		t.Fatal(err)
	}
	meta.Timesteps = 4
	ds, err := idx.Create(context.Background(), idx.NewMemBackend(), meta)
	if err != nil {
		t.Fatal(err)
	}
	for ts := 0; ts < 4; ts++ {
		g := raster.New(16, 16)
		for i := range g.Data {
			g.Data[i] = float32(1000*ts + i)
		}
		if err := ds.WriteGrid(context.Background(), "f", ts, g); err != nil {
			t.Fatal(err)
		}
	}
	e := New(ds, 1<<20)
	values, err := e.ProbePoint(context.Background(), "f", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 4 {
		t.Fatalf("%d values", len(values))
	}
	for ts, v := range values {
		want := float32(1000*ts + 2*16 + 3)
		if v != want {
			t.Errorf("t=%d: %v, want %v", ts, v, want)
		}
	}
	if _, err := e.ProbePoint(context.Background(), "f", 99, 0); err == nil {
		t.Error("out-of-range probe accepted")
	}
	if _, err := e.ProbePoint(context.Background(), "nope", 0, 0); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestSamplesAtLevel(t *testing.T) {
	e, _ := newEngine(t, 64, 64, 8)
	ds := e.Dataset()
	if n := SamplesAtLevel(ds, ds.FullBox(), ds.Meta.MaxLevel()); n != 64*64 {
		t.Errorf("full level samples = %d", n)
	}
	if n := SamplesAtLevel(ds, ds.FullBox(), 0); n != 1 {
		t.Errorf("level 0 samples = %d", n)
	}
	if n := SamplesAtLevel(ds, idx.Box{X0: 1, Y0: 1, X1: 2, Y1: 2}, 0); n != 0 {
		t.Errorf("off-lattice box at level 0 = %d", n)
	}
}

func BenchmarkProgressiveFull256(b *testing.B) {
	meta, _ := idx.NewMeta([]int{256, 256}, []idx.Field{{Name: "elevation", Type: idx.Float32, Codec: "zlib"}})
	meta.BitsPerBlock = 12
	ds, _ := idx.Create(context.Background(), idx.NewMemBackend(), meta)
	g := dem.Scale(dem.FBM(256, 256, 1, dem.DefaultFBM()), 0, 2000)
	if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		b.Fatal(err)
	}
	e := New(ds, 1<<22)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := e.Progressive(context.Background(), Request{Field: "elevation", Level: LevelFull}, 4, 4, func(Result) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
	}
}
