// Package query implements the storage-oblivious query API the tutorial
// paper attributes to OpenVisus (§III-A): "query specific data based on
// parameters such as region of interest, level of resolution, numerical
// precision, and amount of data", abstracting away where and how the
// samples are stored. It combines an idx.Dataset, a block cache, and
// progressive (coarse-to-fine) delivery.
package query

import (
	"context"
	"fmt"
	"math"

	"nsdfgo/internal/cache"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/raster"
	"nsdfgo/internal/telemetry"
	"nsdfgo/internal/telemetry/trace"
)

// Request describes what the caller wants, independent of storage layout.
type Request struct {
	// Field names the dataset variable.
	Field string
	// Time selects the timestep (dashboard time slider).
	Time int
	// Box is the region of interest in full-resolution pixels. The zero
	// box means the dataset's full extent.
	Box idx.Box
	// Level is the resolution level; -1 (or LevelAuto) resolves the level
	// from MaxSamples, and LevelFull requests full resolution.
	Level int
	// MaxSamples bounds the "amount of data": when Level is LevelAuto the
	// engine picks the finest level whose sample count fits. Zero means
	// no bound (full resolution).
	MaxSamples int
	// PrecisionBits optionally reduces numerical precision: 0 or 32 keeps
	// float32; values in [1,31] round mantissas to that many significant
	// bits, modelling reduced-precision transfers.
	PrecisionBits int

	// noTrack marks engine-internal requests (prefetch) that must not
	// feed the access tracker.
	noTrack bool
}

// Sentinel values for Request.Level.
const (
	// LevelAuto picks the level from MaxSamples.
	LevelAuto = -1
	// LevelFull requests the dataset's finest level.
	LevelFull = -2
)

// Result carries one delivered resolution of a request.
type Result struct {
	// Level is the HZ resolution level of this result.
	Level int
	// Grid holds the samples.
	Grid *raster.Grid
	// Stats reports the I/O performed for this level.
	Stats idx.ReadStats
	// TransferBytes estimates payload bytes at the requested precision
	// (samples × precision bits / 8); the quantity a remote dashboard
	// session would move for this refinement.
	TransferBytes int64
}

// Engine evaluates Requests against one dataset.
type Engine struct {
	ds      *idx.Dataset
	cache   *cache.Tiered
	tracker *AccessTracker
	name    string
}

// New wraps a dataset with an in-memory block cache of cacheBytes (0
// disables caching). The cache coalesces concurrent fetches of one
// block; use NewWithCache to add a disk tier.
func New(ds *idx.Dataset, cacheBytes int64) *Engine {
	return NewWithCache(ds, cache.NewMemTiered(cacheBytes))
}

// NewWithCache wraps a dataset with a caller-built tiered cache, so
// servers can configure a disk tier or disable admission.
func NewWithCache(ds *idx.Dataset, c *cache.Tiered) *Engine {
	e := &Engine{ds: ds, cache: c}
	ds.SetCache(e.cache)
	return e
}

// Dataset returns the underlying dataset.
func (e *Engine) Dataset() *idx.Dataset { return e.ds }

// SetFetchParallelism bounds concurrent block fetches per request; see
// idx.Dataset.SetFetchParallelism. Raise it for high-latency remote
// stores.
func (e *Engine) SetFetchParallelism(n int) { e.ds.SetFetchParallelism(n) }

// SetFetchPressure attaches a load-pressure source that shrinks the
// per-request fetch fan-out under load; see
// idx.Dataset.SetFetchPressure. Servers wire it to their admission
// controller so backend concurrency contracts when the front door is
// saturated.
func (e *Engine) SetFetchPressure(fn func() float64) { e.ds.SetFetchPressure(fn) }

// CacheStats reports the engine's block-cache counters.
func (e *Engine) CacheStats() cache.Stats { return e.cache.Stats() }

// Instrument wires the engine's dataset and block cache into a telemetry
// registry, labelling both with the given dataset name. See
// idx.Dataset.SetTelemetry and cache.Tiered.Instrument for the series.
// The name also labels the spans the engine records into active request
// traces.
func (e *Engine) Instrument(reg *telemetry.Registry, name string) {
	e.name = name
	e.ds.SetTelemetry(reg, name)
	e.cache.Instrument(reg, name)
}

// normalize fills request defaults and resolves the effective level.
func (e *Engine) normalize(req Request) (Request, error) {
	if req.Box == (idx.Box{}) {
		req.Box = e.ds.FullBox()
	}
	req.Box = e.ds.Clip(req.Box)
	if req.Box.Empty() {
		return req, fmt.Errorf("query: empty region of interest")
	}
	switch {
	case req.Level == LevelFull:
		req.Level = e.ds.Meta.MaxLevel()
	case req.Level == LevelAuto:
		req.Level = e.resolveLevel(req.Box, req.MaxSamples)
	case req.Level < 0 || req.Level > e.ds.Meta.MaxLevel():
		return req, fmt.Errorf("query: level %d outside [0,%d]", req.Level, e.ds.Meta.MaxLevel())
	}
	if req.PrecisionBits < 0 || req.PrecisionBits > 32 {
		return req, fmt.Errorf("query: precision %d bits outside [0,32]", req.PrecisionBits)
	}
	return req, nil
}

// resolveLevel picks the finest level whose lattice inside box stays
// within maxSamples (0 = unbounded).
func (e *Engine) resolveLevel(box idx.Box, maxSamples int) int {
	maxLevel := e.ds.Meta.MaxLevel()
	if maxSamples <= 0 {
		return maxLevel
	}
	level := 0
	for l := 0; l <= maxLevel; l++ {
		if SamplesAtLevel(e.ds, box, l) <= maxSamples {
			level = l
		} else {
			break
		}
	}
	return level
}

// SamplesAtLevel returns the number of level-l lattice samples inside box.
func SamplesAtLevel(ds *idx.Dataset, box idx.Box, l int) int {
	s := ds.Meta.Bits.LevelStrides(l)
	nx := latticeCount(box.X0, box.X1, s[0])
	ny := latticeCount(box.Y0, box.Y1, s[1])
	return nx * ny
}

func latticeCount(lo, hi, stride int) int {
	first := (lo + stride - 1) / stride * stride
	if first >= hi {
		return 0
	}
	return (hi-1-first)/stride + 1
}

// Read evaluates the request at its resolved level. ctx bounds all block
// I/O the read performs; a cancelled request aborts mid-fetch and
// returns the context error.
func (e *Engine) Read(ctx context.Context, req Request) (Result, error) {
	req, err := e.normalize(req)
	if err != nil {
		return Result{}, err
	}
	ctx, span := trace.Start(ctx, "query.read",
		trace.Str("dataset", e.name),
		trace.Str("field", req.Field),
		trace.Int("level", int64(req.Level)))
	defer span.End()
	if e.tracker != nil && !req.noTrack {
		e.tracker.record(req.Box)
	}
	return e.readAtLevel(ctx, req, req.Level)
}

func (e *Engine) readAtLevel(ctx context.Context, req Request, level int) (Result, error) {
	g, stats, err := e.ds.ReadBox(ctx, req.Field, req.Time, req.Box, level)
	if err != nil {
		return Result{}, err
	}
	bits := req.PrecisionBits
	if bits == 0 {
		bits = 32
	}
	if bits < 32 {
		quantizeMantissa(g.Data, bits)
	}
	return Result{
		Level:         level,
		Grid:          g,
		Stats:         *stats,
		TransferBytes: int64(stats.Samples) * int64(bits) / 8,
	}, nil
}

// Progressive streams the request coarse-to-fine: it invokes fn once per
// delivered level, starting at startLevel (clamped to the first level
// with at least one sample in the box) and refining by step levels until
// the request's resolved level. Returning a non-nil error from fn stops
// the stream. This is the access pattern behind the dashboard's
// immediate-preview-then-refine behaviour. ctx is checked between levels
// as well as inside each level's block fetches, so a disconnected client
// stops the refinement loop before its next (and most expensive) level.
func (e *Engine) Progressive(ctx context.Context, req Request, startLevel, step int, fn func(Result) error) error {
	req, err := e.normalize(req)
	if err != nil {
		return err
	}
	ctx, span := trace.Start(ctx, "query.progressive",
		trace.Str("dataset", e.name),
		trace.Str("field", req.Field),
		trace.Int("level", int64(req.Level)))
	defer span.End()
	if step < 1 {
		step = 2
	}
	// Clamp the start to the coarsest level with samples in the box.
	first := startLevel
	if first < 0 {
		first = 0
	}
	for first < req.Level && SamplesAtLevel(e.ds, req.Box, first) == 0 {
		first++
	}
	for level := first; ; level += step {
		if err := ctx.Err(); err != nil {
			return err
		}
		if level > req.Level {
			level = req.Level
		}
		res, err := e.readAtLevel(ctx, req, level)
		if err != nil {
			return err
		}
		if err := fn(res); err != nil {
			return err
		}
		if level == req.Level {
			return nil
		}
	}
}

// ProbePoint returns the named field's value at pixel (x,y) for every
// timestep — the time-series probe behind the dashboard's "observe
// changes and trends over time". Reads go through the block cache, so a
// probe after a playback pass is free. ctx is checked per timestep.
func (e *Engine) ProbePoint(ctx context.Context, field string, x, y int) ([]float32, error) {
	meta := e.ds.Meta
	if len(meta.Dims) != 2 {
		return nil, fmt.Errorf("query: point probe requires a 2D dataset")
	}
	if x < 0 || y < 0 || x >= meta.Dims[0] || y >= meta.Dims[1] {
		return nil, fmt.Errorf("query: probe point (%d,%d) outside %dx%d", x, y, meta.Dims[0], meta.Dims[1])
	}
	ctx, span := trace.Start(ctx, "query.probe",
		trace.Str("dataset", e.name),
		trace.Str("field", field),
		trace.Int("timesteps", int64(meta.Timesteps)))
	defer span.End()
	out := make([]float32, meta.Timesteps)
	box := idx.Box{X0: x, Y0: y, X1: x + 1, Y1: y + 1}
	for t := 0; t < meta.Timesteps; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		g, _, err := e.ds.ReadBox(ctx, field, t, box, meta.MaxLevel())
		if err != nil {
			return nil, fmt.Errorf("query: probe t=%d: %w", t, err)
		}
		out[t] = g.Data[0]
	}
	return out, nil
}

// quantizeMantissa rounds each float32 to the given number of significant
// mantissa bits, modelling a reduced-precision transfer.
func quantizeMantissa(data []float32, bits int) {
	if bits >= 24 {
		return // float32 has 23 explicit mantissa bits; nothing to drop
	}
	drop := uint(24 - bits)
	mask := ^uint32(0) << drop
	half := uint32(1) << (drop - 1)
	for i, v := range data {
		b := math.Float32bits(v)
		if isNaNOrInf(b) {
			continue
		}
		rounded := (b + half) & mask
		data[i] = math.Float32frombits(rounded)
	}
}

func isNaNOrInf(b uint32) bool {
	return b&0x7F800000 == 0x7F800000
}
