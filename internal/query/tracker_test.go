package query

import (
	"context"
	"testing"

	"nsdfgo/internal/idx"
)

func TestTrackerOffByDefault(t *testing.T) {
	e, _ := newEngine(t, 64, 64, 8)
	if e.Tracker() != nil {
		t.Error("tracker on by default")
	}
	box, stats, err := e.Prefetch(context.Background(), "elevation", 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !box.Empty() || stats.BlocksRead != 0 {
		t.Error("prefetch without tracking did work")
	}
}

func TestTrackerRecordsRequests(t *testing.T) {
	e, _ := newEngine(t, 64, 64, 8)
	e.EnableTracking(16)
	for i := 0; i < 5; i++ {
		if _, err := e.Read(context.Background(), Request{Field: "elevation", Box: idx.Box{X0: 16, Y0: 16, X1: 32, Y1: 32}, Level: LevelFull}); err != nil {
			t.Fatal(err)
		}
	}
	if e.Tracker().Requests() != 5 {
		t.Errorf("Requests = %d", e.Tracker().Requests())
	}
}

func TestHotBoxFindsRevisitedRegion(t *testing.T) {
	e, _ := newEngine(t, 128, 128, 10)
	e.EnableTracking(32)
	// One full-extent overview, many revisits of the NE quadrant.
	if _, err := e.Read(context.Background(), Request{Field: "elevation", Level: 8}); err != nil {
		t.Fatal(err)
	}
	target := idx.Box{X0: 64, Y0: 0, X1: 128, Y1: 64}
	for i := 0; i < 10; i++ {
		if _, err := e.Read(context.Background(), Request{Field: "elevation", Box: target, Level: LevelFull}); err != nil {
			t.Fatal(err)
		}
	}
	hot, ok := e.Tracker().HotBox(0.5)
	if !ok {
		t.Fatal("no hot box")
	}
	// The hot box must sit inside (or equal) the revisited quadrant,
	// modulo one heat-grid cell (128/32 = 4 pixels).
	const slack = 4
	if hot.X0 < target.X0-slack || hot.Y1 > target.Y1+slack {
		t.Errorf("hot box %+v does not match revisited quadrant %+v", hot, target)
	}
	if hot.Empty() {
		t.Error("empty hot box")
	}
}

func TestHotBoxBeforeTraffic(t *testing.T) {
	e, _ := newEngine(t, 64, 64, 8)
	e.EnableTracking(8)
	if _, ok := e.Tracker().HotBox(0.5); ok {
		t.Error("hot box without traffic")
	}
}

func TestPrefetchWarmsCache(t *testing.T) {
	e, _ := newEngine(t, 128, 128, 8)
	e.EnableTracking(32)
	target := idx.Box{X0: 0, Y0: 64, X1: 64, Y1: 128}
	// Train the tracker with cheap coarse reads.
	for i := 0; i < 6; i++ {
		if _, err := e.Read(context.Background(), Request{Field: "elevation", Box: target, Level: 6}); err != nil {
			t.Fatal(err)
		}
	}
	// Prefetch the hot region at full resolution.
	hot, stats, err := e.Prefetch(context.Background(), "elevation", 0, e.Dataset().Meta.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	if hot.Empty() {
		t.Fatal("prefetch found no hot region")
	}
	if stats.BlocksRead == 0 {
		t.Fatal("prefetch fetched nothing")
	}
	// The user's next full-resolution read of the region is now cache-only.
	res, err := e.Read(context.Background(), Request{Field: "elevation", Box: target, Level: LevelFull})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BlocksRead != 0 {
		t.Errorf("read after prefetch still fetched %d blocks", res.Stats.BlocksRead)
	}
}

func TestPrefetchDoesNotFeedTracker(t *testing.T) {
	e, _ := newEngine(t, 64, 64, 8)
	e.EnableTracking(8)
	if _, err := e.Read(context.Background(), Request{Field: "elevation", Box: idx.Box{X0: 0, Y0: 0, X1: 8, Y1: 8}, Level: LevelFull}); err != nil {
		t.Fatal(err)
	}
	before := e.Tracker().Requests()
	if _, _, err := e.Prefetch(context.Background(), "elevation", 0, 8); err != nil {
		t.Fatal(err)
	}
	if e.Tracker().Requests() != before {
		t.Error("prefetch polluted the tracker")
	}
}

func TestEnableTrackingResets(t *testing.T) {
	e, _ := newEngine(t, 64, 64, 8)
	e.EnableTracking(8)
	e.Read(context.Background(), Request{Field: "elevation", Level: 4})
	e.EnableTracking(8)
	if e.Tracker().Requests() != 0 {
		t.Error("re-enable did not reset")
	}
}
