package query

import (
	"context"
	"errors"
	"testing"
)

// TestProgressiveStopsOnCancelBetweenLevels cancels the context from
// inside the first delivery callback: Progressive must not start the
// next refinement level, so the caller sees exactly one delivery and
// context.Canceled.
func TestProgressiveStopsOnCancelBetweenLevels(t *testing.T) {
	e, _ := newEngine(t, 64, 64, 10)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	deliveries := 0
	err := e.Progressive(ctx, Request{Field: "elevation", Level: LevelFull}, 4, 2, func(r Result) error {
		deliveries++
		cancel()
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Progressive returned %v, want context.Canceled", err)
	}
	if deliveries != 1 {
		t.Fatalf("got %d deliveries after in-callback cancel, want exactly 1", deliveries)
	}
}

// TestReadHonoursPreCancelledContext checks the non-progressive entry
// point: a Read issued with an already-dead context fails immediately
// with the context error rather than touching the store.
func TestReadHonoursPreCancelledContext(t *testing.T) {
	e, _ := newEngine(t, 64, 64, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Read(ctx, Request{Field: "elevation", Level: LevelFull}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Read returned %v, want context.Canceled", err)
	}
}
