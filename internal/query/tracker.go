package query

import (
	"context"
	"fmt"
	"sync"

	"nsdfgo/internal/idx"
	"nsdfgo/internal/telemetry/trace"
)

// AccessTracker implements the access-pattern analysis §III-A attributes
// to OpenVisus: "by continuously analyzing how data is accessed,
// OpenVisus can dynamically update the data layout to prioritize
// frequently accessed data". Requests deposit heat on a coarse grid over
// the dataset extent; the engine can then identify the hot region and
// prefetch its blocks into the cache before the user asks again.
type AccessTracker struct {
	mu   sync.Mutex
	res  int // heat grid is res x res
	heat []float64
	w, h int // dataset extent
	n    int64
}

// newAccessTracker builds a tracker over a w x h dataset with a res x res
// heat grid.
func newAccessTracker(w, h, res int) *AccessTracker {
	if res < 1 {
		res = 32
	}
	return &AccessTracker{res: res, heat: make([]float64, res*res), w: w, h: h}
}

// record deposits one unit of heat spread over the box's cells.
func (a *AccessTracker) record(box idx.Box) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.n++
	cx0 := box.X0 * a.res / a.w
	cy0 := box.Y0 * a.res / a.h
	cx1 := (box.X1 - 1) * a.res / a.w
	cy1 := (box.Y1 - 1) * a.res / a.h
	cells := float64((cx1 - cx0 + 1) * (cy1 - cy0 + 1))
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			a.heat[cy*a.res+cx] += 1 / cells
		}
	}
}

// Requests returns how many requests the tracker has recorded.
func (a *AccessTracker) Requests() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.n
}

// HotBox returns the bounding box (in dataset pixels) of the cells whose
// heat reaches threshold × the maximum heat. threshold in (0,1];
// ok=false before any requests.
func (a *AccessTracker) HotBox(threshold float64) (idx.Box, bool) {
	if threshold <= 0 || threshold > 1 {
		threshold = 0.5
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	maxHeat := 0.0
	for _, v := range a.heat {
		if v > maxHeat {
			maxHeat = v
		}
	}
	if maxHeat == 0 {
		return idx.Box{}, false
	}
	cut := threshold * maxHeat
	cx0, cy0, cx1, cy1 := a.res, a.res, -1, -1
	for cy := 0; cy < a.res; cy++ {
		for cx := 0; cx < a.res; cx++ {
			if a.heat[cy*a.res+cx] >= cut {
				if cx < cx0 {
					cx0 = cx
				}
				if cy < cy0 {
					cy0 = cy
				}
				if cx > cx1 {
					cx1 = cx
				}
				if cy > cy1 {
					cy1 = cy
				}
			}
		}
	}
	return idx.Box{
		X0: cx0 * a.w / a.res,
		Y0: cy0 * a.h / a.res,
		X1: (cx1 + 1) * a.w / a.res,
		Y1: (cy1 + 1) * a.h / a.res,
	}, true
}

// EnableTracking switches on access-pattern analysis with a heat grid of
// res x res cells (use 32 unless the dataset is tiny). Must be called
// before the requests you want analysed; calling it again resets the
// heat.
func (e *Engine) EnableTracking(res int) {
	dims := e.ds.Meta.Dims
	e.tracker = newAccessTracker(dims[0], dims[1], res)
}

// Tracker returns the engine's access tracker, or nil when tracking is
// off.
func (e *Engine) Tracker() *AccessTracker { return e.tracker }

// Prefetch reads the hot region (threshold 0.5) of the named field at the
// given level, purely to warm the block cache — the engine's answer to
// "prioritize frequently accessed data". It reports what was warmed.
// With tracking off or no traffic yet, Prefetch is a no-op.
func (e *Engine) Prefetch(ctx context.Context, field string, t, level int) (idx.Box, idx.ReadStats, error) {
	if e.tracker == nil {
		return idx.Box{}, idx.ReadStats{}, nil
	}
	hot, ok := e.tracker.HotBox(0.5)
	if !ok {
		return idx.Box{}, idx.ReadStats{}, nil
	}
	ctx, span := trace.Start(ctx, "query.prefetch",
		trace.Str("dataset", e.name),
		trace.Str("field", field),
		trace.Int("level", int64(level)))
	defer span.End()
	res, err := e.Read(ctx, Request{Field: field, Time: t, Box: hot, Level: level, noTrack: true})
	if err != nil {
		return hot, idx.ReadStats{}, fmt.Errorf("query: prefetch: %w", err)
	}
	return hot, res.Stats, nil
}
