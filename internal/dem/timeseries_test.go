package dem

import (
	"math"
	"testing"

	"nsdfgo/internal/raster"
)

func baseField(t *testing.T) *raster.Grid {
	t.Helper()
	return Scale(FBM(64, 64, 5, DefaultFBM()), 0.1, 0.5)
}

func TestTimeSeriesLengthAndDims(t *testing.T) {
	base := baseField(t)
	series := TimeSeries(base, 1, SeriesOptions{Steps: 12, SeasonalAmp: 0.15, NoiseAmp: 0.05})
	if len(series) != 12 {
		t.Fatalf("%d steps", len(series))
	}
	for i, g := range series {
		if g.W != base.W || g.H != base.H {
			t.Fatalf("step %d dims %dx%d", i, g.W, g.H)
		}
	}
}

func TestTimeSeriesDeterministic(t *testing.T) {
	base := baseField(t)
	o := SeriesOptions{Steps: 6, SeasonalAmp: 0.1, NoiseAmp: 0.05}
	a := TimeSeries(base, 9, o)
	b := TimeSeries(base, 9, o)
	for i := range a {
		if !raster.Equal(a[i], b[i]) {
			t.Fatalf("step %d differs across same-seed runs", i)
		}
	}
}

func TestTimeSeriesTemporalCoherence(t *testing.T) {
	// Adjacent steps must be far more similar than distant steps.
	base := baseField(t)
	series := TimeSeries(base, 3, SeriesOptions{Steps: 12, SeasonalAmp: 0.2, NoiseAmp: 0.05, Period: 12})
	// Step 3 is the seasonal peak, step 9 the trough; step 4 is adjacent.
	adjacent := meanAbsDiff(series[3], series[4])
	distant := meanAbsDiff(series[3], series[9])
	if adjacent >= distant {
		t.Errorf("adjacent diff %v not below opposite-season diff %v", adjacent, distant)
	}
}

func TestTimeSeriesSeasonalCycleReturns(t *testing.T) {
	// One full period later the seasonal term repeats; only noise differs.
	base := baseField(t)
	series := TimeSeries(base, 3, SeriesOptions{Steps: 24, SeasonalAmp: 0.2, NoiseAmp: 0.02, Period: 12})
	samePhase := meanAbsDiff(series[2], series[14])
	oppositePhase := meanAbsDiff(series[2], series[8])
	if samePhase >= oppositePhase {
		t.Errorf("same-phase diff %v not below opposite-phase diff %v", samePhase, oppositePhase)
	}
}

func TestTimeSeriesDegenerateOptions(t *testing.T) {
	base := baseField(t)
	series := TimeSeries(base, 1, SeriesOptions{})
	if len(series) != 1 {
		t.Fatalf("%d steps", len(series))
	}
	// Constant base (zero span) must not blow up.
	flat := raster.New(8, 8)
	series = TimeSeries(flat, 1, SeriesOptions{Steps: 3, SeasonalAmp: 0.1, NoiseAmp: 0.1})
	for _, g := range series {
		for _, v := range g.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatal("non-finite value in degenerate series")
			}
		}
	}
}

func meanAbsDiff(a, b *raster.Grid) float64 {
	var sum float64
	for i := range a.Data {
		sum += math.Abs(float64(a.Data[i] - b.Data[i]))
	}
	return sum / float64(len(a.Data))
}
