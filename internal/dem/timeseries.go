package dem

import (
	"math"

	"nsdfgo/internal/raster"
)

// SeriesOptions parameterises a synthetic time series over a base field.
type SeriesOptions struct {
	// Steps is the number of timesteps to generate (>= 1).
	Steps int
	// SeasonalAmp is the amplitude of the smooth seasonal cycle as a
	// fraction of the base field's dynamic range (e.g. 0.15).
	SeasonalAmp float64
	// NoiseAmp is the amplitude of per-step weather noise, as a fraction
	// of the dynamic range (e.g. 0.05).
	NoiseAmp float64
	// Period is the cycle length in steps (e.g. 12 for monthly data);
	// zero defaults to Steps.
	Period int
}

// TimeSeries synthesises a temporally coherent series from a base field:
// each step adds a spatially smooth seasonal oscillation (stronger where
// the base field is low, like moisture responding in valleys) plus
// low-amplitude smooth noise that evolves continuously across steps. The
// result feeds the dashboard's time slider and playback ("a comprehensive
// view of climate evolution").
func TimeSeries(base *raster.Grid, seed uint64, o SeriesOptions) []*raster.Grid {
	if o.Steps < 1 {
		o.Steps = 1
	}
	if o.Period <= 0 {
		o.Period = o.Steps
	}
	lo, hi, ok := base.MinMax()
	span := float64(hi - lo)
	if !ok || span <= 0 {
		span = 1
	}
	out := make([]*raster.Grid, o.Steps)
	for t := 0; t < o.Steps; t++ {
		phase := 2 * math.Pi * float64(t) / float64(o.Period)
		season := math.Sin(phase)
		g := base.Clone()
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W; x++ {
				v := float64(base.At(x, y))
				// Seasonal response weight: low-lying cells respond more.
				weight := 1 - (v-float64(lo))/span*0.7
				seasonal := o.SeasonalAmp * span * season * weight
				// Temporally continuous weather noise: 3D value noise with
				// time as a slow third axis, realised as two blended planes.
				tt := float64(t) * 0.35
				t0 := math.Floor(tt)
				frac := tt - t0
				n0 := valueNoise(float64(x)/24, float64(y)/24, seed+uint64(t0)*7919)
				n1 := valueNoise(float64(x)/24, float64(y)/24, seed+uint64(t0+1)*7919)
				noise := o.NoiseAmp * span * (n0*(1-frac) + n1*frac)
				g.Set(x, y, float32(v+seasonal+noise))
			}
		}
		out[t] = g
	}
	return out
}
