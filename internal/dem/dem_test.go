package dem

import (
	"math"
	"testing"
	"testing/quick"

	"nsdfgo/internal/raster"
)

func TestFBMDeterministic(t *testing.T) {
	a := FBM(64, 64, 42, DefaultFBM())
	b := FBM(64, 64, 42, DefaultFBM())
	if !raster.Equal(a, b) {
		t.Error("same seed produced different terrain")
	}
	c := FBM(64, 64, 43, DefaultFBM())
	if raster.Equal(a, c) {
		t.Error("different seeds produced identical terrain")
	}
}

func TestFBMRange(t *testing.T) {
	g := FBM(128, 128, 1, DefaultFBM())
	lo, hi, ok := g.MinMax()
	if !ok {
		t.Fatal("no finite samples")
	}
	if lo < 0 || hi > 1 {
		t.Errorf("FBM out of [0,1]: [%v,%v]", lo, hi)
	}
	if hi-lo < 0.1 {
		t.Errorf("FBM nearly constant: [%v,%v]", lo, hi)
	}
}

func TestFBMSmoothness(t *testing.T) {
	// Neighbouring samples must be close: the field is C1 noise, not white
	// noise. Compare adjacent-pixel delta with global range.
	g := FBM(128, 128, 7, DefaultFBM())
	var maxStep float64
	for y := 0; y < g.H; y++ {
		for x := 1; x < g.W; x++ {
			d := math.Abs(float64(g.At(x, y) - g.At(x-1, y)))
			if d > maxStep {
				maxStep = d
			}
		}
	}
	if maxStep > 0.25 {
		t.Errorf("max adjacent-pixel step %v; field looks like white noise", maxStep)
	}
}

func TestFBMRidgedDiffersFromSmooth(t *testing.T) {
	o := DefaultFBM()
	smooth := FBM(64, 64, 5, o)
	o.Ridged = true
	ridged := FBM(64, 64, 5, o)
	if raster.Equal(smooth, ridged) {
		t.Error("ridged flag has no effect")
	}
}

func TestFBMOctavesClamped(t *testing.T) {
	g := FBM(16, 16, 1, FBMOptions{Octaves: 0, Frequency: 1.0 / 8, Lacunarity: 2, Gain: 0.5})
	if _, _, ok := g.MinMax(); !ok {
		t.Error("zero-octave FBM produced no data")
	}
}

func TestDiamondSquareDeterministicAndBounded(t *testing.T) {
	a := DiamondSquare(100, 80, 9, 0.6)
	b := DiamondSquare(100, 80, 9, 0.6)
	if !raster.Equal(a, b) {
		t.Error("same seed produced different terrain")
	}
	lo, hi, _ := a.MinMax()
	if lo < 0 || hi > 1 {
		t.Errorf("diamond-square out of [0,1]: [%v,%v]", lo, hi)
	}
	if a.W != 100 || a.H != 80 {
		t.Errorf("dims %dx%d", a.W, a.H)
	}
}

func TestDiamondSquareRoughnessDefault(t *testing.T) {
	g := DiamondSquare(33, 33, 3, 0)
	if _, _, ok := g.MinMax(); !ok {
		t.Error("default roughness produced no data")
	}
}

func TestScale(t *testing.T) {
	g := raster.New(2, 1)
	g.Data = []float32{0, 1}
	Scale(g, 100, 500)
	if g.Data[0] != 100 || g.Data[1] != 500 {
		t.Errorf("Scale: %v", g.Data)
	}
}

func TestTennesseeScene(t *testing.T) {
	g := Tennessee(256, 64, 11)
	if g.Geo == nil {
		t.Fatal("no georeferencing")
	}
	// The eastern third must be significantly higher than the western third
	// (Appalachians vs Mississippi plain).
	west, _ := g.Crop(0, 0, 64, 64)
	east, _ := g.Crop(192, 0, 64, 64)
	ws, es := west.ComputeStats(), east.ComputeStats()
	if es.Mean < ws.Mean+100 {
		t.Errorf("east mean %.0f m not clearly above west mean %.0f m", es.Mean, ws.Mean)
	}
	if ws.Min < 0 {
		t.Errorf("negative elevation %v in plain", ws.Min)
	}
}

func TestCONUSScene(t *testing.T) {
	g := CONUS(512, 128, 13)
	if g.Geo == nil {
		t.Fatal("no georeferencing")
	}
	// Western cordillera must tower over the central plains.
	westIdx := 512 * 18 / 100
	centerIdx := 512 * 55 / 100
	west, _ := g.Crop(westIdx-32, 0, 64, 128)
	center, _ := g.Crop(centerIdx-32, 0, 64, 128)
	ws, cs := west.ComputeStats(), center.ComputeStats()
	if ws.Mean < cs.Mean+300 {
		t.Errorf("cordillera mean %.0f m not clearly above plains mean %.0f m", ws.Mean, cs.Mean)
	}
}

func TestSceneGeorefCoversBoundingBox(t *testing.T) {
	g := Tennessee(100, 40, 1)
	gx, _ := g.Geo.PixelToGeo(99, 0)
	if gx > -81.5 || gx < -82.5 {
		t.Errorf("east edge longitude %v not near -81.65", gx)
	}
}

func TestLatticeValueRangeProperty(t *testing.T) {
	f := func(ix, iy int32, seed uint64) bool {
		v := latticeValue(int64(ix), int64(iy), seed)
		return v >= -1 && v <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestValueNoiseContinuityProperty(t *testing.T) {
	// Noise sampled at nearby points must be nearby (Lipschitz-ish bound).
	f := func(xi, yi uint16) bool {
		x := float64(xi) / 100
		y := float64(yi) / 100
		a := valueNoise(x, y, 99)
		b := valueNoise(x+0.001, y, 99)
		return math.Abs(a-b) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFBM256(b *testing.B) {
	o := DefaultFBM()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = FBM(256, 256, uint64(i), o)
	}
}

func BenchmarkTennessee512(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Tennessee(512, 128, uint64(i))
	}
}
