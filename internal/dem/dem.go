// Package dem generates deterministic synthetic Digital Elevation Models.
//
// The NSDF tutorial's step 1 collects 30 m DEMs from the USGS and feeds
// them to GEOtiled. USGS downloads are a data gate for an offline
// reproduction, so this package synthesises statistically realistic
// terrain instead: fractional Brownian motion (value noise with octaves,
// whose power spectrum matches natural terrain), the classic
// diamond-square fractal, parametric landforms (ridges, hills, basins),
// and composite scenes standing in for the two geographies the tutorial
// visualises — the State of Tennessee (ridge-and-valley Appalachians into
// the Mississippi plain) and the Contiguous United States (CONUS).
//
// Every generator is a pure function of its seed, so experiments are
// exactly repeatable.
package dem

import (
	"math"

	"nsdfgo/internal/raster"
)

// rng is a small splitmix64 PRNG; math/rand would also do, but an explicit
// implementation keeps the noise lattice hashable by coordinates, which
// value noise needs (random access by (x,y,seed) without storing a lattice).
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// latticeValue returns a deterministic pseudo-random value in [-1,1] for
// integer lattice point (ix,iy) under the given seed.
func latticeValue(ix, iy int64, seed uint64) float64 {
	h := hash64(uint64(ix)*0xd6e8feb86659fd93 ^ uint64(iy)*0xca5a826395121157 ^ seed)
	return float64(int64(h)) / float64(math.MaxInt64)
}

// smoothstep is the C1 fade used for value-noise interpolation.
func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// valueNoise samples C1-continuous value noise at (x,y) for one octave.
func valueNoise(x, y float64, seed uint64) float64 {
	x0, y0 := math.Floor(x), math.Floor(y)
	ix, iy := int64(x0), int64(y0)
	fx, fy := x-x0, y-y0
	v00 := latticeValue(ix, iy, seed)
	v10 := latticeValue(ix+1, iy, seed)
	v01 := latticeValue(ix, iy+1, seed)
	v11 := latticeValue(ix+1, iy+1, seed)
	sx, sy := smoothstep(fx), smoothstep(fy)
	top := v00 + (v10-v00)*sx
	bot := v01 + (v11-v01)*sx
	return top + (bot-top)*sy
}

// FBMOptions parameterises fractional Brownian motion terrain.
type FBMOptions struct {
	// Octaves is the number of noise octaves to sum. Values of 6-10 give
	// realistic terrain. Must be >= 1.
	Octaves int
	// Frequency is the base spatial frequency in cycles per pixel; 1/256
	// puts the largest landforms at a 256-pixel wavelength.
	Frequency float64
	// Lacunarity is the per-octave frequency multiplier (typically 2).
	Lacunarity float64
	// Gain is the per-octave amplitude multiplier (typically 0.5).
	Gain float64
	// Ridged selects ridged multifractal terrain (sharp mountain crests)
	// instead of smooth rolling fBm.
	Ridged bool
}

// DefaultFBM returns the options used by the tutorial scenes: 8 octaves,
// 256-pixel base wavelength, standard lacunarity and gain.
func DefaultFBM() FBMOptions {
	return FBMOptions{Octaves: 8, Frequency: 1.0 / 256, Lacunarity: 2, Gain: 0.5}
}

// FBM synthesises a w x h elevation grid in [0,1] (approximately; the sum
// is renormalised) from fractional Brownian motion with the given seed.
func FBM(w, h int, seed uint64, o FBMOptions) *raster.Grid {
	if o.Octaves < 1 {
		o.Octaves = 1
	}
	g := raster.New(w, h)
	// Max possible amplitude for normalisation.
	maxAmp := 0.0
	amp := 1.0
	for i := 0; i < o.Octaves; i++ {
		maxAmp += amp
		amp *= o.Gain
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			sum := 0.0
			freq := o.Frequency
			amp := 1.0
			for oct := 0; oct < o.Octaves; oct++ {
				v := valueNoise(float64(x)*freq, float64(y)*freq, seed+uint64(oct)*0x9e3779b9)
				if o.Ridged {
					v = 1 - math.Abs(v) // crease at zero crossings
					v = v*2 - 1
				}
				sum += v * amp
				freq *= o.Lacunarity
				amp *= o.Gain
			}
			// Normalise from [-maxAmp,maxAmp] to [0,1].
			g.Set(x, y, float32(sum/(2*maxAmp)+0.5))
		}
	}
	return g
}

// DiamondSquare generates a (2^n+1)-sized fractal heightfield with the
// classic midpoint-displacement algorithm, then crops to w x h. roughness
// in (0,1] controls how fast displacement decays (higher = rougher).
func DiamondSquare(w, h int, seed uint64, roughness float64) *raster.Grid {
	if roughness <= 0 {
		roughness = 0.5
	}
	size := 1
	for size+1 < w || size+1 < h {
		size <<= 1
	}
	n := size + 1
	f := make([]float64, n*n)
	at := func(x, y int) float64 { return f[y*n+x] }
	set := func(x, y int, v float64) { f[y*n+x] = v }
	rnd := func(x, y int, step int) float64 {
		h := hash64(uint64(x)<<40 ^ uint64(y)<<16 ^ uint64(step) ^ seed)
		return float64(int64(h)) / float64(math.MaxInt64)
	}
	// Seed corners.
	set(0, 0, rnd(0, 0, 0))
	set(size, 0, rnd(size, 0, 0))
	set(0, size, rnd(0, size, 0))
	set(size, size, rnd(size, size, 0))
	scale := 1.0
	for step := size; step > 1; step /= 2 {
		half := step / 2
		// Diamond step.
		for y := half; y < n; y += step {
			for x := half; x < n; x += step {
				avg := (at(x-half, y-half) + at(x+half, y-half) + at(x-half, y+half) + at(x+half, y+half)) / 4
				set(x, y, avg+rnd(x, y, step)*scale)
			}
		}
		// Square step.
		for y := 0; y < n; y += half {
			x0 := half
			if (y/half)%2 == 1 {
				x0 = 0
			}
			for x := x0; x < n; x += step {
				sum, cnt := 0.0, 0.0
				if x >= half {
					sum += at(x-half, y)
					cnt++
				}
				if x+half < n {
					sum += at(x+half, y)
					cnt++
				}
				if y >= half {
					sum += at(x, y-half)
					cnt++
				}
				if y+half < n {
					sum += at(x, y+half)
					cnt++
				}
				set(x, y, sum/cnt+rnd(x, y, step+1)*scale)
			}
		}
		scale *= roughness
	}
	// Normalise to [0,1] and crop.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range f {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	g := raster.New(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g.Set(x, y, float32((at(x, y)-lo)/span))
		}
	}
	return g
}

// Scale linearly maps a [0,1]-normalised grid to elevations in metres
// between lo and hi, in place, and returns the grid.
func Scale(g *raster.Grid, lo, hi float32) *raster.Grid {
	for i, v := range g.Data {
		g.Data[i] = lo + v*(hi-lo)
	}
	return g
}

// Tennessee synthesises a scene standing in for the tutorial's Tennessee
// 30 m dataset: parallel ridge-and-valley structure in the east (the
// Appalachians strike roughly northeast-southwest), rolling hills in the
// middle, and low flat plain toward the Mississippi in the west. Elevation
// is in metres and the grid is georeferenced to Tennessee's bounding box.
func Tennessee(w, h int, seed uint64) *raster.Grid {
	g := raster.New(w, h)
	ridg := FBM(w, h, seed^0xA17, FBMOptions{Octaves: 6, Frequency: 1.0 / 180, Lacunarity: 2, Gain: 0.55, Ridged: true})
	roll := FBM(w, h, seed^0xB23, DefaultFBM())
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			// West (x=0) -> plain, east (x=w) -> mountains.
			t := float64(x) / float64(w-1+1)
			eastness := smoothstep(clamp01((t - 0.35) / 0.5))
			// Ridge-and-valley banding along a NE-SW strike.
			strike := math.Sin((float64(x)*0.55+float64(y)*0.85)*2*math.Pi/220.0)*0.5 + 0.5
			mountain := 200 + 1600*float64(ridg.At(x, y))*(0.55+0.45*strike)
			plain := 60 + 240*float64(roll.At(x, y))
			elev := plain*(1-eastness) + mountain*eastness
			g.Set(x, y, float32(elev))
		}
	}
	// Tennessee bounding box, 30 m-class pixels when w is large.
	g.Geo = &raster.Georef{
		OriginX: -90.31, OriginY: 36.68,
		PixelW: (90.31 - 81.65) / float64(w),
		PixelH: (36.68 - 34.98) / float64(h),
	}
	return g
}

// CONUS synthesises a scene standing in for the Contiguous United States:
// high western cordillera, central plains sloping to the Mississippi, and
// the older, lower Appalachians in the east. Elevation is in metres and
// the grid is georeferenced to the CONUS bounding box.
func CONUS(w, h int, seed uint64) *raster.Grid {
	g := raster.New(w, h)
	west := FBM(w, h, seed^0xC01, FBMOptions{Octaves: 7, Frequency: 1.0 / 300, Lacunarity: 2, Gain: 0.5, Ridged: true})
	east := FBM(w, h, seed^0xD02, FBMOptions{Octaves: 6, Frequency: 1.0 / 200, Lacunarity: 2, Gain: 0.5, Ridged: true})
	base := FBM(w, h, seed^0xE03, DefaultFBM())
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			t := float64(x) / float64(w)
			// Western cordillera: strong between t in [0.05,0.35].
			wWeight := gaussian(t, 0.18, 0.13)
			// Appalachians: moderate around t ~ 0.8.
			eWeight := 0.35 * gaussian(t, 0.80, 0.07)
			// Plains tilt: high plains in the west-center declining eastward.
			tilt := 1200 * math.Max(0, 0.45-t) / 0.45 * 0.35
			elev := 50 + 250*float64(base.At(x, y)) + tilt +
				3000*wWeight*float64(west.At(x, y)) +
				1300*eWeight*float64(east.At(x, y))
			g.Set(x, y, float32(elev))
		}
	}
	g.Geo = &raster.Georef{
		OriginX: -124.78, OriginY: 49.38,
		PixelW: (124.78 - 66.95) / float64(w),
		PixelH: (49.38 - 24.52) / float64(h),
	}
	return g
}

func gaussian(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-0.5 * d * d)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
