package compress

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// testPayloads returns a variety of byte payloads exercising compressible,
// incompressible, and degenerate inputs.
func testPayloads() map[string][]byte {
	r := rand.New(rand.NewSource(42))
	random := make([]byte, 4096)
	r.Read(random)
	runs := bytes.Repeat([]byte{7}, 10000)
	text := []byte(strings.Repeat("the national science data fabric democratizes data delivery. ", 100))
	ramp := make([]byte, 2048)
	for i := range ramp {
		ramp[i] = byte(i / 8)
	}
	return map[string][]byte{
		"empty":    {},
		"one":      {42},
		"tiny":     []byte("abc"),
		"random":   random,
		"runs":     runs,
		"text":     text,
		"ramp":     ramp,
		"min4":     []byte("abcd"),
		"boundary": bytes.Repeat([]byte("xy"), 8),
	}
}

func TestCodecsRoundTrip(t *testing.T) {
	for _, name := range Names() {
		if strings.HasPrefix(name, "zfp") {
			continue // lossy float codec; covered by the ZFP tests
		}
		codec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for pname, payload := range testPayloads() {
			enc, err := codec.Encode(payload)
			if err != nil {
				t.Fatalf("%s/%s: Encode: %v", name, pname, err)
			}
			dec, err := codec.Decode(enc, len(payload))
			if err != nil {
				t.Fatalf("%s/%s: Decode: %v", name, pname, err)
			}
			if !bytes.Equal(dec, payload) {
				t.Fatalf("%s/%s: round trip mismatch (%d bytes -> %d bytes)", name, pname, len(payload), len(dec))
			}
		}
	}
}

func TestCodecsDecodeWithoutSizeHint(t *testing.T) {
	for _, name := range Names() {
		if strings.HasPrefix(name, "zfp") {
			continue
		}
		codec, _ := Lookup(name)
		payload := []byte(strings.Repeat("progressive multiresolution access ", 50))
		enc, err := codec.Encode(payload)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := codec.Decode(enc, -1)
		if err != nil {
			t.Fatalf("%s: Decode without hint: %v", name, err)
		}
		if !bytes.Equal(dec, payload) {
			t.Fatalf("%s: round trip mismatch without hint", name)
		}
	}
}

func TestCodecsSizeMismatchDetected(t *testing.T) {
	for _, name := range Names() {
		if strings.HasPrefix(name, "zfp") {
			continue
		}
		codec, _ := Lookup(name)
		enc, err := codec.Encode([]byte("hello world hello world"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := codec.Decode(enc, 3); err == nil {
			t.Errorf("%s: Decode with wrong size hint succeeded", name)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("no-such-codec"); err == nil {
		t.Error("Lookup of unknown codec succeeded")
	}
}

func TestNamesContainsBuiltins(t *testing.T) {
	names := Names()
	for _, want := range []string{"raw", "zlib", "lz4"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Names() = %v missing %q", names, want)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(Raw{})
}

func TestZlibCompressesRepetitiveData(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 1000)
	enc, err := (Zlib{}).Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(payload)/4 {
		t.Errorf("zlib compressed %d -> %d; expected at least 4x on repetitive data", len(payload), len(enc))
	}
}

func TestLZ4CompressesRepetitiveData(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 1000)
	enc, err := (LZ4{}).Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(payload)/4 {
		t.Errorf("lz4 compressed %d -> %d; expected at least 4x on repetitive data", len(payload), len(enc))
	}
}

func TestLZ4OverlappingMatches(t *testing.T) {
	// Runs of a single byte force overlapping match copies.
	payload := bytes.Repeat([]byte{'z'}, 300)
	c := LZ4{}
	enc, err := c.Encode(payload)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := c.Decode(enc, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec, payload) {
		t.Fatal("overlapping match round trip failed")
	}
}

func TestLZ4RoundTripProperty(t *testing.T) {
	c := LZ4{}
	f := func(seed int64, n uint16) bool {
		r := rand.New(rand.NewSource(seed))
		// Mix of random and repeated segments to exercise both paths.
		payload := make([]byte, 0, int(n))
		for len(payload) < int(n) {
			if r.Intn(2) == 0 {
				seg := make([]byte, r.Intn(40)+1)
				r.Read(seg)
				payload = append(payload, seg...)
			} else {
				b := byte(r.Intn(8))
				payload = append(payload, bytes.Repeat([]byte{b}, r.Intn(60)+1)...)
			}
		}
		payload = payload[:n]
		enc, err := c.Encode(payload)
		if err != nil {
			return false
		}
		dec, err := c.Decode(enc, len(payload))
		if err != nil {
			return false
		}
		return bytes.Equal(dec, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLZ4DecodeRejectsCorrupt(t *testing.T) {
	c := LZ4{}
	cases := [][]byte{
		{0xF0},            // extended literal length, no run bytes
		{0x40, 'a'},       // claims 4 literals, provides 1
		{0x10, 'a', 0, 0}, // zero offset
		{0x10, 'a', 9, 0}, // offset beyond window
		{0x1F, 'a', 1, 0}, // extended match length, truncated
	}
	for i, src := range cases {
		if _, err := c.Decode(src, -1); err == nil {
			t.Errorf("case %d: corrupt input decoded without error", i)
		}
	}
}

func TestZFPLosslessRoundTrip(t *testing.T) {
	z := ZFPLike{Tolerance: 0}
	values := []float32{0, 1.5, -2.25, float32(math.Pi), 1e-20, 1e20, float32(math.NaN()), float32(math.Inf(1))}
	enc, err := z.EncodeFloat32(values)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := z.DecodeFloat32(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != len(values) {
		t.Fatalf("decoded %d values, want %d", len(dec), len(values))
	}
	for i := range values {
		if math.Float32bits(dec[i]) != math.Float32bits(values[i]) {
			t.Errorf("element %d: %v != %v", i, dec[i], values[i])
		}
	}
}

func TestZFPLossyBoundsError(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	values := make([]float32, 10000)
	// Smooth field: random walk, like elevation along a transect.
	v := float32(500)
	for i := range values {
		v += float32(r.NormFloat64())
		values[i] = v
	}
	for _, tol := range []float64{0.5, 0.01, 1e-4} {
		z := ZFPLike{Tolerance: tol}
		enc, err := z.EncodeFloat32(values)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := z.DecodeFloat32(enc)
		if err != nil {
			t.Fatal(err)
		}
		if got := MaxAbsError(values, dec); got > tol {
			t.Errorf("tolerance %g: max error %g exceeds bound", tol, got)
		}
	}
}

func TestZFPLossyCompressesSmoothData(t *testing.T) {
	values := make([]float32, 1<<16)
	for i := range values {
		values[i] = float32(math.Sin(float64(i) / 500.0 * math.Pi))
	}
	z := ZFPLike{Tolerance: 1e-3}
	enc, err := z.EncodeFloat32(values)
	if err != nil {
		t.Fatal(err)
	}
	rawBytes := 4 * len(values)
	if len(enc) > rawBytes/3 {
		t.Errorf("zfp-like compressed %d -> %d; expected at least 3x on smooth data", rawBytes, len(enc))
	}
}

func TestZFPPreservesNonFinite(t *testing.T) {
	values := []float32{1, 2, float32(math.NaN()), 4, float32(math.Inf(-1)), 6}
	z := ZFPLike{Tolerance: 0.1}
	enc, err := z.EncodeFloat32(values)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := z.DecodeFloat32(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(dec[2])) {
		t.Errorf("NaN not preserved: got %v", dec[2])
	}
	if !math.IsInf(float64(dec[4]), -1) {
		t.Errorf("-Inf not preserved: got %v", dec[4])
	}
	if math.Abs(float64(dec[3]-4)) > 0.1 {
		t.Errorf("finite neighbour of exception off by %v", dec[3]-4)
	}
}

func TestZFPNegativeToleranceRejected(t *testing.T) {
	if _, err := (ZFPLike{Tolerance: -1}).EncodeFloat32([]float32{1}); err == nil {
		t.Error("negative tolerance accepted")
	}
}

func TestZFPDecodeRejectsCorrupt(t *testing.T) {
	z := ZFPLike{Tolerance: 0.1}
	enc, err := z.EncodeFloat32([]float32{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"short":     enc[:10],
		"bad magic": append([]byte("XXXX"), enc[4:]...),
		"bad ver":   append(append([]byte{}, enc[:4]...), append([]byte{99}, enc[5:]...)...),
	}
	for name, src := range cases {
		if _, err := z.DecodeFloat32(src); err == nil {
			t.Errorf("%s: corrupt input decoded without error", name)
		}
	}
}

func TestZFPEmptyInput(t *testing.T) {
	z := ZFPLike{Tolerance: 0.5}
	enc, err := z.EncodeFloat32(nil)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := z.DecodeFloat32(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 0 {
		t.Errorf("decoded %d values from empty input", len(dec))
	}
}

func TestMaxAbsError(t *testing.T) {
	if e := MaxAbsError([]float32{1, 2}, []float32{1, 2.5}); e != 0.5 {
		t.Errorf("MaxAbsError = %v, want 0.5", e)
	}
	if e := MaxAbsError([]float32{1}, []float32{1, 2}); !math.IsInf(e, 1) {
		t.Errorf("length mismatch should yield +Inf, got %v", e)
	}
	nan := float32(math.NaN())
	if e := MaxAbsError([]float32{nan}, []float32{nan}); e != 0 {
		t.Errorf("matching NaNs should contribute 0, got %v", e)
	}
}

func BenchmarkZlibEncode(b *testing.B) {
	payload := smoothFieldBytes(1 << 16)
	c := Zlib{}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLZ4Encode(b *testing.B) {
	payload := smoothFieldBytes(1 << 16)
	c := LZ4{}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLZ4Decode(b *testing.B) {
	payload := smoothFieldBytes(1 << 16)
	c := LZ4{}
	enc, err := c.Encode(payload)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(enc, len(payload)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkZFPEncode(b *testing.B) {
	values := make([]float32, 1<<14)
	for i := range values {
		values[i] = float32(math.Sin(float64(i) / 100))
	}
	z := ZFPLike{Tolerance: 1e-3}
	b.SetBytes(int64(4 * len(values)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := z.EncodeFloat32(values); err != nil {
			b.Fatal(err)
		}
	}
}

// smoothFieldBytes builds a byte payload resembling serialized terrain data.
func smoothFieldBytes(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(128 + 100*math.Sin(float64(i)/300))
	}
	return out
}
