package compress

import (
	"fmt"
)

// ShuffleZlib is DEFLATE preceded by a byte-shuffle (byte transposition)
// filter: for fixed-size elements, byte 0 of every element is stored
// first, then byte 1 of every element, and so on. On smooth scientific
// fields the high-order bytes of neighbouring samples are nearly
// constant, so grouping them massively improves DEFLATE's ratio. This is
// the same filter HDF5 and IDX-class formats apply to floating-point
// blocks, and it is what makes the tutorial's "TIFF→IDX reduces size by
// ~20%" behaviour reproducible: baseline TIFF applies DEFLATE to raw
// sample bytes, while IDX blocks shuffle first.
type ShuffleZlib struct {
	// ElemSize is the element width in bytes (2, 4, or 8).
	ElemSize int
}

// Name implements Codec.
func (s ShuffleZlib) Name() string { return fmt.Sprintf("shuffle%d-zlib", s.ElemSize) }

func (s ShuffleZlib) validate() error {
	switch s.ElemSize {
	case 2, 4, 8:
		return nil
	}
	return fmt.Errorf("compress: shuffle element size %d; must be 2, 4, or 8", s.ElemSize)
}

// Encode implements Codec.
func (s ShuffleZlib) Encode(src []byte) ([]byte, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	return Zlib{}.Encode(Shuffle(src, s.ElemSize))
}

// Decode implements Codec.
func (s ShuffleZlib) Decode(src []byte, dstSize int) ([]byte, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	shuffled, err := (Zlib{}).Decode(src, dstSize)
	if err != nil {
		return nil, err
	}
	return Unshuffle(shuffled, s.ElemSize), nil
}

// Shuffle transposes src (a sequence of elemSize-byte elements) into
// byte-plane order. A trailing fragment shorter than one element is
// appended unshuffled, so any payload length is accepted.
func Shuffle(src []byte, elemSize int) []byte {
	n := len(src) / elemSize
	out := make([]byte, len(src))
	for b := 0; b < elemSize; b++ {
		plane := out[b*n : (b+1)*n]
		for i := 0; i < n; i++ {
			plane[i] = src[i*elemSize+b]
		}
	}
	copy(out[n*elemSize:], src[n*elemSize:])
	return out
}

// Unshuffle inverts Shuffle.
func Unshuffle(src []byte, elemSize int) []byte {
	n := len(src) / elemSize
	out := make([]byte, len(src))
	for b := 0; b < elemSize; b++ {
		plane := src[b*n : (b+1)*n]
		for i := 0; i < n; i++ {
			out[i*elemSize+b] = plane[i]
		}
	}
	copy(out[n*elemSize:], src[n*elemSize:])
	return out
}

func init() {
	Register(ShuffleZlib{ElemSize: 2})
	Register(ShuffleZlib{ElemSize: 4})
	Register(ShuffleZlib{ElemSize: 8})
}
