// Package compress provides the compression codecs supported by the IDX
// data format as described in the NSDF tutorial paper: lossless byte codecs
// (raw, zlib, an LZ4-style LZ77 codec implemented from scratch) and a
// ZFP-like lossy floating-point codec with a guaranteed absolute error
// bound.
//
// Byte codecs implement Codec and are identified by a stable name so that
// IDX metadata can record which codec each dataset uses. Lossy float
// compression is exposed separately through ZFPLike because its contract
// (bounded error, float32 payloads) differs from the lossless byte codecs.
package compress

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Codec is a lossless byte compressor. Implementations must be safe for
// concurrent use.
type Codec interface {
	// Name returns the codec's stable identifier (e.g. "zlib").
	Name() string
	// Encode compresses src and returns a fresh buffer.
	Encode(src []byte) ([]byte, error)
	// Decode decompresses src. dstSize, when >= 0, is the expected
	// decompressed size and is used to pre-allocate; a mismatch is an error.
	Decode(src []byte, dstSize int) ([]byte, error)
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Codec{}
)

// Register makes a codec available by name to Lookup. Registering a name
// twice panics; codec names are part of the on-disk IDX metadata and must
// be unambiguous.
func Register(c Codec) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[c.Name()]; dup {
		panic(fmt.Sprintf("compress: codec %q registered twice", c.Name()))
	}
	registry[c.Name()] = c
}

// Lookup returns the codec registered under name.
func Lookup(name string) (Codec, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
	return c, nil
}

// Names returns the sorted names of all registered codecs.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	Register(Raw{})
	Register(Zlib{Level: flate.DefaultCompression})
	Register(LZ4{})
}

// Raw is the identity codec: no compression.
type Raw struct{}

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// Encode implements Codec by copying src.
func (Raw) Encode(src []byte) ([]byte, error) {
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// Decode implements Codec by copying src.
func (Raw) Decode(src []byte, dstSize int) ([]byte, error) {
	if dstSize >= 0 && dstSize != len(src) {
		return nil, fmt.Errorf("compress: raw payload is %d bytes, expected %d", len(src), dstSize)
	}
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// Zlib compresses with DEFLATE (the industry-standard "zlib" option of the
// IDX format). The zero value uses the default compression level.
type Zlib struct {
	// Level is the flate compression level (flate.BestSpeed..flate.BestCompression).
	Level int
}

// Name implements Codec.
func (Zlib) Name() string { return "zlib" }

// Encode implements Codec.
func (z Zlib) Encode(src []byte) ([]byte, error) {
	level := z.Level
	if level == 0 {
		level = flate.DefaultCompression
	}
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, fmt.Errorf("compress: zlib: %w", err)
	}
	if _, err := w.Write(src); err != nil {
		return nil, fmt.Errorf("compress: zlib: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("compress: zlib: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode implements Codec.
func (Zlib) Decode(src []byte, dstSize int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	var out []byte
	if dstSize >= 0 {
		out = make([]byte, 0, dstSize)
	}
	buf := bytes.NewBuffer(out)
	if _, err := io.Copy(buf, r); err != nil {
		return nil, fmt.Errorf("compress: zlib: %w", err)
	}
	b := buf.Bytes()
	if dstSize >= 0 && len(b) != dstSize {
		return nil, fmt.Errorf("compress: zlib payload decoded to %d bytes, expected %d", len(b), dstSize)
	}
	return b, nil
}
