package compress

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"
)

// This file measures the block codecs the IDX format supports on a
// smooth float32 raster of the kind the tutorial's geospatial pipeline
// stores (DEM-derived fields), and writes BENCH_compression.json. The
// headline comparison mirrors the paper's TIFF-vs-IDX observation (the
// converted IDX dataset was ~20% smaller than the source TIFFs): the
// TIFF stand-in is plain zlib over the raw sample stream — DEFLATE is
// what compressed TIFFs carry — while the IDX path byte-shuffles
// float32 samples before the same DEFLATE, which is where the size win
// comes from.

// benchRasterSide is the square float32 raster measured; 512x512 is
// 1 MiB raw, large enough for stable codec ratios.
const benchRasterSide = 512

// benchRaster synthesises a smooth terrain-like field: a few low
// frequency sin/cos modes plus a mild deterministic ripple, in float32.
// Smoothness matters — it is the property both the byte-shuffle and the
// delta-coded lossy codec exploit, and real DEM rasters have it.
func benchRaster(side int) []float32 {
	values := make([]float32, side*side)
	for y := 0; y < side; y++ {
		fy := float64(y) / float64(side)
		for x := 0; x < side; x++ {
			fx := float64(x) / float64(side)
			v := 800*math.Sin(2*math.Pi*fx)*math.Cos(2*math.Pi*fy) +
				300*math.Sin(6*math.Pi*(fx+fy)) +
				40*math.Sin(40*math.Pi*fx)*math.Sin(40*math.Pi*fy) +
				1200*fy
			values[y*side+x] = float32(v)
		}
	}
	return values
}

// float32Bytes reinterprets samples as the little-endian byte payload a
// block codec sees.
func float32Bytes(values []float32) []byte {
	out := make([]byte, 4*len(values))
	for i, v := range values {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	return out
}

func bytesFloat32(src []byte) []float32 {
	out := make([]float32, len(src)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
	return out
}

// codecResult is one codec's row in BENCH_compression.json.
type codecResult struct {
	Codec         string  `json:"codec"`
	EncodedBytes  int     `json:"encoded_bytes"`
	Ratio         float64 `json:"ratio_vs_raw"`
	DecodeNsPerOp float64 `json:"decode_ns_per_op"`
	DecodeMsPerOp float64 `json:"decode_ms_per_op"`
	MaxAbsError   float64 `json:"max_abs_error"`
}

// TestBenchCompressionEmit measures the registered block codecs on the
// synthetic raster and writes BENCH_compression.json. Gated on
// NSDF_BENCH_COMPRESSION_ITERS (unset or 0 skips; 1 is the smoke run in
// `make check`, which writes to a temp file and skips the ratio gate);
// NSDF_BENCH_COMPRESSION_OUT overrides the output path.
func TestBenchCompressionEmit(t *testing.T) {
	iters, _ := strconv.Atoi(os.Getenv("NSDF_BENCH_COMPRESSION_ITERS"))
	if iters <= 0 {
		t.Skip("set NSDF_BENCH_COMPRESSION_ITERS>=1 to run the compression benchmark emitter")
	}
	outPath := os.Getenv("NSDF_BENCH_COMPRESSION_OUT")
	if outPath == "" {
		outPath = t.TempDir() + "/BENCH_compression.json"
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	values := benchRaster(benchRasterSide)
	raw := float32Bytes(values)

	codecNames := []string{"raw", "zlib", "shuffle4-zlib", "zfp-0.001", "zfp-0.1"}
	results := make([]codecResult, 0, len(codecNames))
	byName := map[string]codecResult{}
	for _, name := range codecNames {
		codec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := codec.Encode(raw)
		if err != nil {
			t.Fatalf("%s encode: %v", name, err)
		}
		dec, err := codec.Decode(enc, len(raw))
		if err != nil {
			t.Fatalf("%s decode: %v", name, err)
		}
		maxErr := MaxAbsError(values, bytesFloat32(dec))
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := codec.Decode(enc, len(raw)); err != nil {
				t.Fatal(err)
			}
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(iters)
		r := codecResult{
			Codec:         name,
			EncodedBytes:  len(enc),
			Ratio:         float64(len(enc)) / float64(len(raw)),
			DecodeNsPerOp: ns,
			DecodeMsPerOp: ns / 1e6,
			MaxAbsError:   maxErr,
		}
		results = append(results, r)
		byName[name] = r
	}

	// Lossless codecs must round-trip exactly; the lossy codec must honor
	// its advertised bound (Tolerance/2 quantization error, asserted at
	// the full Tolerance for slack-free headroom).
	for _, name := range []string{"raw", "zlib", "shuffle4-zlib"} {
		if e := byName[name].MaxAbsError; e != 0 {
			t.Errorf("%s: lossless codec produced max abs error %g", name, e)
		}
	}
	if e := byName["zfp-0.001"].MaxAbsError; e > 1e-3 {
		t.Errorf("zfp-0.001: max abs error %g exceeds tolerance", e)
	}
	if e := byName["zfp-0.1"].MaxAbsError; e > 1e-1 {
		t.Errorf("zfp-0.1: max abs error %g exceeds tolerance", e)
	}

	// The paper's headline: converting the tutorial TIFFs to IDX shrank
	// the dataset ~20%. TIFF stand-in = zlib over raw samples; IDX =
	// shuffle4-zlib.
	tiffBytes := byName["zlib"].EncodedBytes
	idxBytes := byName["shuffle4-zlib"].EncodedBytes
	reduction := 1 - float64(idxBytes)/float64(tiffBytes)

	doc := struct {
		Description        string        `json:"description"`
		Raster             string        `json:"raster"`
		RawBytes           int           `json:"raw_bytes"`
		Iters              int           `json:"iterations"`
		Codecs             []codecResult `json:"codecs"`
		TIFFToIDXReduction float64       `json:"tiff_to_idx_size_reduction"`
	}{
		Description:        "Block codecs on a smooth synthetic float32 terrain raster: encoded size, decode latency, max abs error. tiff_to_idx_size_reduction compares zlib (what compressed TIFFs carry) against shuffle4-zlib (the IDX block codec), mirroring the paper's ~20% TIFF-to-IDX shrink. Regenerate with `make bench-compression`.",
		Raster:             fmt.Sprintf("%dx%d float32 (sin/cos terrain modes + linear trend)", benchRasterSide, benchRasterSide),
		RawBytes:           len(raw),
		Iters:              iters,
		Codecs:             results,
		TIFFToIDXReduction: reduction,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		t.Logf("%-14s %8d bytes (%.3fx raw)  decode %.2fms  max abs err %g",
			r.Codec, r.EncodedBytes, r.Ratio, r.DecodeMsPerOp, r.MaxAbsError)
	}
	t.Logf("TIFF(zlib) -> IDX(shuffle4-zlib): %.1f%% smaller", 100*reduction)
	t.Logf("wrote %s", outPath)

	if iters > 1 { // smoke runs skip the ratio gate
		if reduction < 0.15 {
			t.Errorf("shuffle4-zlib is only %.1f%% smaller than zlib; want >= 15%% (paper reports ~20%%)", 100*reduction)
		}
	}
}
