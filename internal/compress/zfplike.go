package compress

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// ZFPLike is a lossy floating-point codec with a guaranteed absolute error
// bound, standing in for ZFP's fixed-accuracy mode among the codecs the
// IDX format supports.
//
// Values are uniformly quantized with step = Tolerance (so the
// reconstruction error is at most Tolerance/2), delta-coded to exploit the
// smoothness of scientific fields, zigzag/varint packed, and finally
// DEFLATE-compressed. Non-finite values (NaN, ±Inf) are preserved exactly
// through an exception list.
//
// A Tolerance of 0 selects a lossless path (raw bits + DEFLATE).
type ZFPLike struct {
	// Tolerance is the maximum permitted absolute reconstruction error.
	// Must be >= 0; 0 means lossless.
	Tolerance float64
}

const (
	zfpMagic    = "ZFPG"
	zfpVersion  = 1
	zfpLossless = 1 << 0
)

// EncodeFloat32 compresses values under the codec's error bound.
func (z ZFPLike) EncodeFloat32(values []float32) ([]byte, error) {
	if z.Tolerance < 0 {
		return nil, fmt.Errorf("compress: zfp: negative tolerance %g", z.Tolerance)
	}
	var header bytes.Buffer
	header.WriteString(zfpMagic)
	header.WriteByte(zfpVersion)
	flags := byte(0)
	if z.Tolerance == 0 {
		flags |= zfpLossless
	}
	header.WriteByte(flags)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(z.Tolerance))
	header.Write(b8[:])
	binary.LittleEndian.PutUint64(b8[:], uint64(len(values)))
	header.Write(b8[:])

	var payload bytes.Buffer
	if z.Tolerance == 0 {
		raw := make([]byte, 4*len(values))
		for i, v := range values {
			binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
		}
		payload.Write(raw)
	} else {
		step := z.Tolerance
		var exceptions []int
		var varint [binary.MaxVarintLen64]byte
		prev := int64(0)
		for i, v := range values {
			f := float64(v)
			var q int64
			if math.IsNaN(f) || math.IsInf(f, 0) {
				exceptions = append(exceptions, i)
				q = 0
			} else {
				q = int64(math.RoundToEven(f / step))
			}
			n := binary.PutVarint(varint[:], q-prev)
			payload.Write(varint[:n])
			prev = q
		}
		// Exception list: count, then (index delta varint, raw float bits).
		n := binary.PutUvarint(varint[:], uint64(len(exceptions)))
		payload.Write(varint[:n])
		prevIdx := 0
		for _, idx := range exceptions {
			n := binary.PutUvarint(varint[:], uint64(idx-prevIdx))
			payload.Write(varint[:n])
			var b4 [4]byte
			binary.LittleEndian.PutUint32(b4[:], math.Float32bits(values[idx]))
			payload.Write(b4[:])
			prevIdx = idx
		}
	}

	var out bytes.Buffer
	out.Write(header.Bytes())
	fw, err := flate.NewWriter(&out, flate.DefaultCompression)
	if err != nil {
		return nil, fmt.Errorf("compress: zfp: %w", err)
	}
	if _, err := fw.Write(payload.Bytes()); err != nil {
		return nil, fmt.Errorf("compress: zfp: %w", err)
	}
	if err := fw.Close(); err != nil {
		return nil, fmt.Errorf("compress: zfp: %w", err)
	}
	return out.Bytes(), nil
}

// DecodeFloat32 reverses EncodeFloat32. The returned slice has the length
// recorded at encode time.
func (ZFPLike) DecodeFloat32(src []byte) ([]float32, error) {
	const headerLen = 4 + 1 + 1 + 8 + 8
	if len(src) < headerLen {
		return nil, fmt.Errorf("compress: zfp: payload of %d bytes is shorter than header", len(src))
	}
	if string(src[:4]) != zfpMagic {
		return nil, fmt.Errorf("compress: zfp: bad magic %q", src[:4])
	}
	if src[4] != zfpVersion {
		return nil, fmt.Errorf("compress: zfp: unsupported version %d", src[4])
	}
	flags := src[5]
	tol := math.Float64frombits(binary.LittleEndian.Uint64(src[6:14]))
	count := binary.LittleEndian.Uint64(src[14:22])
	if count > 1<<40 {
		return nil, fmt.Errorf("compress: zfp: implausible element count %d", count)
	}

	fr := flate.NewReader(bytes.NewReader(src[headerLen:]))
	defer fr.Close()
	payload, err := io.ReadAll(fr)
	if err != nil {
		return nil, fmt.Errorf("compress: zfp: %w", err)
	}

	values := make([]float32, count)
	if flags&zfpLossless != 0 {
		if len(payload) != 4*int(count) {
			return nil, fmt.Errorf("compress: zfp: lossless payload is %d bytes, expected %d", len(payload), 4*count)
		}
		for i := range values {
			values[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:]))
		}
		return values, nil
	}

	r := bytes.NewReader(payload)
	prev := int64(0)
	for i := range values {
		d, err := binary.ReadVarint(r)
		if err != nil {
			return nil, fmt.Errorf("compress: zfp: quantized stream truncated at element %d: %w", i, err)
		}
		prev += d
		values[i] = float32(float64(prev) * tol)
	}
	nexc, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("compress: zfp: exception count: %w", err)
	}
	idx := 0
	for k := uint64(0); k < nexc; k++ {
		d, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, fmt.Errorf("compress: zfp: exception index: %w", err)
		}
		idx += int(d)
		if idx < 0 || idx >= len(values) {
			return nil, fmt.Errorf("compress: zfp: exception index %d out of range", idx)
		}
		var b4 [4]byte
		if _, err := io.ReadFull(r, b4[:]); err != nil {
			return nil, fmt.Errorf("compress: zfp: exception bits: %w", err)
		}
		values[idx] = math.Float32frombits(binary.LittleEndian.Uint32(b4[:]))
	}
	return values, nil
}

// Name returns the codec registry identifier for this tolerance, e.g.
// "zfp-0.001". Registered instances (see init) expose the lossy codec to
// IDX field descriptors for float32 fields.
func (z ZFPLike) Name() string {
	if z.Tolerance == 0 {
		return "zfp-lossless"
	}
	return fmt.Sprintf("zfp-%g", z.Tolerance)
}

// Encode implements Codec for float32 little-endian payloads: the byte
// slice is reinterpreted as float32 samples, compressed under the error
// bound, and framed. Payloads whose length is not a multiple of 4 are
// rejected — this codec is only valid for float32 fields.
func (z ZFPLike) Encode(src []byte) ([]byte, error) {
	if len(src)%4 != 0 {
		return nil, fmt.Errorf("compress: zfp: payload of %d bytes is not float32-aligned", len(src))
	}
	values := make([]float32, len(src)/4)
	for i := range values {
		values[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
	}
	return z.EncodeFloat32(values)
}

// Decode implements Codec.
func (z ZFPLike) Decode(src []byte, dstSize int) ([]byte, error) {
	values, err := z.DecodeFloat32(src)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 4*len(values))
	for i, v := range values {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(v))
	}
	if dstSize >= 0 && len(out) != dstSize {
		return nil, fmt.Errorf("compress: zfp payload decoded to %d bytes, expected %d", len(out), dstSize)
	}
	return out, nil
}

func init() {
	// Lossy block codecs for float32 IDX fields, by absolute tolerance.
	Register(ZFPLike{Tolerance: 1e-3})
	Register(ZFPLike{Tolerance: 1e-2})
	Register(ZFPLike{Tolerance: 1e-1})
	Register(ZFPLike{Tolerance: 1})
}

// MaxAbsError returns the largest absolute difference between a and b,
// ignoring pairs where both are NaN. It is the quantity ZFPLike bounds.
func MaxAbsError(a, b []float32) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	maxErr := 0.0
	for i := range a {
		fa, fb := float64(a[i]), float64(b[i])
		if math.IsNaN(fa) && math.IsNaN(fb) {
			continue
		}
		if d := math.Abs(fa - fb); d > maxErr {
			maxErr = d
		}
	}
	return maxErr
}
