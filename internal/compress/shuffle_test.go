package compress

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestShuffleUnshuffleRoundTrip(t *testing.T) {
	for _, elem := range []int{2, 4, 8} {
		for _, n := range []int{0, 1, 3, elem, elem + 1, 10 * elem, 10*elem + elem/2} {
			src := make([]byte, n)
			for i := range src {
				src[i] = byte(i * 7)
			}
			got := Unshuffle(Shuffle(src, elem), elem)
			if !bytes.Equal(got, src) {
				t.Errorf("elem=%d n=%d: round trip mismatch", elem, n)
			}
		}
	}
}

func TestShuffleKnownLayout(t *testing.T) {
	// Two 4-byte elements: planes group byte positions.
	src := []byte{0xA0, 0xA1, 0xA2, 0xA3, 0xB0, 0xB1, 0xB2, 0xB3}
	got := Shuffle(src, 4)
	want := []byte{0xA0, 0xB0, 0xA1, 0xB1, 0xA2, 0xB2, 0xA3, 0xB3}
	if !bytes.Equal(got, want) {
		t.Errorf("Shuffle = %x, want %x", got, want)
	}
}

func TestShuffleZlibCodecRegistered(t *testing.T) {
	for _, name := range []string{"shuffle2-zlib", "shuffle4-zlib", "shuffle8-zlib"} {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
}

func TestShuffleZlibValidatesElemSize(t *testing.T) {
	bad := ShuffleZlib{ElemSize: 3}
	if _, err := bad.Encode([]byte("xxxxxx")); err == nil {
		t.Error("elem size 3 accepted")
	}
	if _, err := bad.Decode([]byte("xxxxxx"), -1); err == nil {
		t.Error("elem size 3 accepted on decode")
	}
}

func TestShuffleZlibBeatsPlainZlibOnSmoothFloats(t *testing.T) {
	// The property behind the paper's ~20% TIFF->IDX claim.
	values := make([]byte, 4*(1<<14))
	for i := 0; i < 1<<14; i++ {
		v := float32(1500 + 400*math.Sin(float64(i)/180) + 30*math.Sin(float64(i)/7))
		binary.LittleEndian.PutUint32(values[4*i:], math.Float32bits(v))
	}
	plain, err := (Zlib{}).Encode(values)
	if err != nil {
		t.Fatal(err)
	}
	shuffled, err := (ShuffleZlib{ElemSize: 4}).Encode(values)
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(shuffled)) > 0.85*float64(len(plain)) {
		t.Errorf("shuffle gave %d bytes vs plain %d; want >=15%% reduction on smooth floats", len(shuffled), len(plain))
	}
}

func TestShuffleZlibRoundTripProperty(t *testing.T) {
	c := ShuffleZlib{ElemSize: 4}
	f := func(seed int64, n uint16) bool {
		r := rand.New(rand.NewSource(seed))
		src := make([]byte, int(n))
		r.Read(src)
		enc, err := c.Encode(src)
		if err != nil {
			return false
		}
		dec, err := c.Decode(enc, len(src))
		return err == nil && bytes.Equal(dec, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkShuffleZlibEncode(b *testing.B) {
	values := make([]byte, 4*(1<<14))
	for i := 0; i < 1<<14; i++ {
		binary.LittleEndian.PutUint32(values[4*i:], math.Float32bits(float32(math.Sin(float64(i)/100)*1000)))
	}
	c := ShuffleZlib{ElemSize: 4}
	b.SetBytes(int64(len(values)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(values); err != nil {
			b.Fatal(err)
		}
	}
}
