package compress

import (
	"encoding/binary"
	"fmt"
)

// LZ4 is a from-scratch LZ77 byte codec in the style of the LZ4 block
// format: a greedy hash-chain match finder and a token stream of
// (literal-run, match) pairs with 16-bit offsets. It favours speed over
// ratio, mirroring the role LZ4 plays among the codecs the IDX format
// supports.
//
// The block layout is LZ4-inspired but not wire-compatible with reference
// LZ4 (this repository is stdlib-only): each sequence is
//
//	token byte:  high nibble = literal length (15 = extended),
//	             low nibble  = match length - 4 (15 = extended)
//	[extended literal length bytes, 255-terminated run]
//	literal bytes
//	2-byte little-endian match offset (1..65535)
//	[extended match length bytes]
//
// The final sequence carries only literals and no offset.
type LZ4 struct{}

// Name implements Codec.
func (LZ4) Name() string { return "lz4" }

const (
	lz4MinMatch   = 4
	lz4HashLog    = 14
	lz4MaxOffset  = 65535
	lz4LastLits   = 5 // spec-style: last bytes must be literals
	lz4TokenLitEx = 15
	lz4TokenMatEx = 15
)

func lz4Hash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lz4HashLog)
}

// Encode implements Codec.
func (LZ4) Encode(src []byte) ([]byte, error) {
	out := make([]byte, 0, len(src)/2+16)
	n := len(src)
	if n < lz4MinMatch+lz4LastLits {
		return lz4EmitLast(out, src), nil
	}
	var table [1 << lz4HashLog]int32
	for i := range table {
		table[i] = -1
	}
	anchor := 0 // start of pending literals
	i := 0
	limit := n - lz4LastLits
	for i < limit {
		seq := binary.LittleEndian.Uint32(src[i:])
		h := lz4Hash(seq)
		cand := int(table[h])
		table[h] = int32(i)
		if cand < 0 || i-cand > lz4MaxOffset || binary.LittleEndian.Uint32(src[cand:]) != seq {
			i++
			continue
		}
		// Extend the match forward.
		mlen := lz4MinMatch
		for i+mlen < limit && src[cand+mlen] == src[i+mlen] {
			mlen++
		}
		// Extend backwards into pending literals.
		for i > anchor && cand > 0 && src[i-1] == src[cand-1] {
			i--
			cand--
			mlen++
		}
		out = lz4EmitSequence(out, src[anchor:i], i-cand, mlen)
		i += mlen
		anchor = i
	}
	return lz4EmitLast(out, src[anchor:]), nil
}

func lz4EmitSequence(out, lits []byte, offset, mlen int) []byte {
	litLen := len(lits)
	matToken := mlen - lz4MinMatch
	token := byte(0)
	if litLen >= lz4TokenLitEx {
		token = lz4TokenLitEx << 4
	} else {
		token = byte(litLen) << 4
	}
	if matToken >= lz4TokenMatEx {
		token |= lz4TokenMatEx
	} else {
		token |= byte(matToken)
	}
	out = append(out, token)
	if litLen >= lz4TokenLitEx {
		out = lz4EmitLen(out, litLen-lz4TokenLitEx)
	}
	out = append(out, lits...)
	out = append(out, byte(offset), byte(offset>>8))
	if matToken >= lz4TokenMatEx {
		out = lz4EmitLen(out, matToken-lz4TokenMatEx)
	}
	return out
}

// lz4EmitLast writes the trailing literal-only sequence.
func lz4EmitLast(out, lits []byte) []byte {
	litLen := len(lits)
	token := byte(0)
	if litLen >= lz4TokenLitEx {
		token = lz4TokenLitEx << 4
	} else {
		token = byte(litLen) << 4
	}
	out = append(out, token)
	if litLen >= lz4TokenLitEx {
		out = lz4EmitLen(out, litLen-lz4TokenLitEx)
	}
	return append(out, lits...)
}

func lz4EmitLen(out []byte, v int) []byte {
	for v >= 255 {
		out = append(out, 255)
		v -= 255
	}
	return append(out, byte(v))
}

// Decode implements Codec.
func (LZ4) Decode(src []byte, dstSize int) ([]byte, error) {
	capHint := dstSize
	if capHint < 0 {
		capHint = len(src) * 3
	}
	out := make([]byte, 0, capHint)
	i := 0
	for i < len(src) {
		token := src[i]
		i++
		litLen := int(token >> 4)
		if litLen == lz4TokenLitEx {
			ext, n, err := lz4ReadLen(src[i:])
			if err != nil {
				return nil, fmt.Errorf("compress: lz4: literal length: %w", err)
			}
			litLen += ext
			i += n
		}
		if i+litLen > len(src) {
			return nil, fmt.Errorf("compress: lz4: literal run of %d bytes overruns input", litLen)
		}
		out = append(out, src[i:i+litLen]...)
		i += litLen
		if i == len(src) {
			break // final literal-only sequence
		}
		if i+2 > len(src) {
			return nil, fmt.Errorf("compress: lz4: truncated match offset")
		}
		offset := int(src[i]) | int(src[i+1])<<8
		i += 2
		if offset == 0 || offset > len(out) {
			return nil, fmt.Errorf("compress: lz4: match offset %d outside window of %d bytes", offset, len(out))
		}
		mlen := int(token&0x0F) + lz4MinMatch
		if token&0x0F == lz4TokenMatEx {
			ext, n, err := lz4ReadLen(src[i:])
			if err != nil {
				return nil, fmt.Errorf("compress: lz4: match length: %w", err)
			}
			mlen += ext
			i += n
		}
		// Byte-at-a-time copy: matches may overlap their own output.
		pos := len(out) - offset
		for k := 0; k < mlen; k++ {
			out = append(out, out[pos+k])
		}
	}
	if dstSize >= 0 && len(out) != dstSize {
		return nil, fmt.Errorf("compress: lz4 payload decoded to %d bytes, expected %d", len(out), dstSize)
	}
	return out, nil
}

func lz4ReadLen(src []byte) (v, n int, err error) {
	for {
		if n >= len(src) {
			return 0, 0, fmt.Errorf("unterminated length run")
		}
		b := src[n]
		n++
		v += int(b)
		if b != 255 {
			return v, n, nil
		}
	}
}
