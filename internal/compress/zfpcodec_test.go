package compress

import (
	"encoding/binary"
	"math"
	"testing"
)

func TestZFPCodecRegistered(t *testing.T) {
	for _, name := range []string{"zfp-0.001", "zfp-0.01", "zfp-0.1", "zfp-1"} {
		c, err := Lookup(name)
		if err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
			continue
		}
		if c.Name() != name {
			t.Errorf("Name() = %q", c.Name())
		}
	}
}

func TestZFPCodecByteInterfaceBoundedError(t *testing.T) {
	// Through the generic Codec interface, float32 payloads round trip
	// within the tolerance.
	values := make([]float32, 1024)
	for i := range values {
		values[i] = float32(500 + 200*math.Sin(float64(i)/40))
	}
	src := make([]byte, 4*len(values))
	for i, v := range values {
		binary.LittleEndian.PutUint32(src[4*i:], math.Float32bits(v))
	}
	c, err := Lookup("zfp-0.01")
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c.Encode(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= len(src) {
		t.Errorf("lossy codec did not compress smooth data: %d -> %d", len(src), len(enc))
	}
	dec, err := c.Decode(enc, len(src))
	if err != nil {
		t.Fatal(err)
	}
	back := make([]float32, len(values))
	for i := range back {
		back[i] = math.Float32frombits(binary.LittleEndian.Uint32(dec[4*i:]))
	}
	if e := MaxAbsError(values, back); e > 0.01 {
		t.Errorf("max error %v exceeds tolerance 0.01", e)
	}
}

func TestZFPCodecRejectsUnalignedPayload(t *testing.T) {
	c, _ := Lookup("zfp-0.01")
	if _, err := c.Encode([]byte{1, 2, 3}); err == nil {
		t.Error("unaligned payload accepted")
	}
}

func TestZFPCodecSizeMismatch(t *testing.T) {
	c, _ := Lookup("zfp-0.01")
	enc, err := c.Encode(make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Decode(enc, 32); err == nil {
		t.Error("wrong size hint accepted")
	}
}

func TestZFPTighterToleranceCostsMoreBytes(t *testing.T) {
	values := make([]float32, 4096)
	for i := range values {
		values[i] = float32(1000 * math.Sin(float64(i)/100))
	}
	src := make([]byte, 4*len(values))
	for i, v := range values {
		binary.LittleEndian.PutUint32(src[4*i:], math.Float32bits(v))
	}
	var sizes []int
	for _, name := range []string{"zfp-1", "zfp-0.1", "zfp-0.01", "zfp-0.001"} {
		c, _ := Lookup(name)
		enc, err := c.Encode(src)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(enc))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Errorf("tolerance sweep sizes not increasing: %v", sizes)
		}
	}
}
