package core

import (
	"bytes"
	"context"
	"fmt"

	"nsdfgo/internal/catalog"
	"nsdfgo/internal/dem"
	"nsdfgo/internal/geotiled"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/netcdf"
	"nsdfgo/internal/query"
	"nsdfgo/internal/raster"
	"nsdfgo/internal/somospie"
	"nsdfgo/internal/storage"
)

// MoistureConfig parameterises the SOMOSPIE workflow: the Earth-science
// application the tutorial's intro motivates ("SOMOSPIE accesses,
// handles, and analyzes raw data ... into terrain and soil moisture data
// for precision agriculture, wildfire prevention, and hydrological
// ecosystems").
type MoistureConfig struct {
	// Width and Height are the region dimensions; zero defaults to 192x128.
	Width, Height int
	// Seed fixes the synthetic data.
	Seed uint64
	// Observations is the sparse station count; zero defaults to 1200.
	Observations int
	// TestFraction is the held-out share; zero defaults to 0.25.
	TestFraction float64
	// DatasetName names the published IDX product; empty defaults to
	// "soil_moisture".
	DatasetName string
}

func (c MoistureConfig) withDefaults() (MoistureConfig, error) {
	if c.Width == 0 {
		c.Width = 192
	}
	if c.Height == 0 {
		c.Height = 128
	}
	if c.Width < 16 || c.Height < 16 {
		return c, fmt.Errorf("core: moisture region %dx%d too small", c.Width, c.Height)
	}
	if c.Observations == 0 {
		c.Observations = 1200
	}
	if c.Observations < 50 {
		return c, fmt.Errorf("core: %d observations; need at least 50", c.Observations)
	}
	if c.Observations > c.Width*c.Height/2 {
		return c, fmt.Errorf("core: %d observations oversample the %dx%d region", c.Observations, c.Width, c.Height)
	}
	if c.TestFraction == 0 {
		c.TestFraction = 0.25
	}
	if c.TestFraction <= 0 || c.TestFraction >= 1 {
		return c, fmt.Errorf("core: test fraction %g outside (0,1)", c.TestFraction)
	}
	if c.DatasetName == "" {
		c.DatasetName = "soil_moisture"
	}
	return c, nil
}

// Blackboard keys published by the moisture workflow (in addition to the
// tutorial keys it shares: KeyDOI, KeyDataset, KeyEngine).
const (
	// KeyEvaluations holds []somospie.EvalReport for every model.
	KeyEvaluations = "evaluations"
	// KeyBestModel holds the winning model's name.
	KeyBestModel = "best_model"
	// KeyPrediction holds the *raster.Grid gridded product.
	KeyPrediction = "prediction"
	// KeyTruth holds the *raster.Grid synthetic ground truth.
	KeyTruth = "truth"
)

// MoistureWorkflow builds the SOMOSPIE pipeline on this fabric:
//
//	terrain    — GEOtiled covariates from a synthetic DEM
//	observe    — synthetic satellite truth + sparse station draw,
//	             published to Dataverse as NetCDF
//	train      — fit kNN/IDW/OLS, evaluate on held-out stations
//	downscale  — gridded prediction with the winner
//	publish    — prediction + truth as a 2-field IDX dataset on private
//	             storage, catalogued and served by a query engine
func (f *Fabric) MoistureWorkflow(cfg MoistureConfig) (*Workflow, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	w := NewWorkflow()
	w.Add(Step{Name: "terrain", Run: func(ctx context.Context, bb *Blackboard) error {
		elev := dem.Scale(dem.FBM(cfg.Width, cfg.Height, cfg.Seed, dem.DefaultFBM()), 100, 1800)
		slope, err := geotiled.ComputeTiled(elev, geotiled.Slope, geotiled.Options{})
		if err != nil {
			return err
		}
		aspect, err := geotiled.ComputeTiled(elev, geotiled.Aspect, geotiled.Options{})
		if err != nil {
			return err
		}
		bb.Put(KeyGrids, map[string]*raster.Grid{"elevation": elev, "slope": slope, "aspect": aspect})
		return nil
	}})
	w.Add(Step{Name: "observe", Needs: []string{"terrain"}, Run: func(ctx context.Context, bb *Blackboard) error {
		return f.moistureObserve(ctx, cfg, bb)
	}})
	w.Add(Step{Name: "train", Needs: []string{"observe"}, Run: func(ctx context.Context, bb *Blackboard) error {
		return f.moistureTrain(ctx, cfg, bb)
	}})
	w.Add(Step{Name: "downscale", Needs: []string{"train"}, Run: func(ctx context.Context, bb *Blackboard) error {
		return f.moistureDownscale(ctx, cfg, bb)
	}})
	w.Add(Step{Name: "publish", Needs: []string{"downscale"}, Run: func(ctx context.Context, bb *Blackboard) error {
		return f.moisturePublish(ctx, cfg, bb)
	}})
	return w, nil
}

// covariateList extracts the covariate grids in a stable order.
func covariateList(grids map[string]*raster.Grid) []*raster.Grid {
	return []*raster.Grid{grids["elevation"], grids["slope"], grids["aspect"]}
}

func (f *Fabric) moistureObserve(ctx context.Context, cfg MoistureConfig, bb *Blackboard) error {
	grids, err := Fetch[map[string]*raster.Grid](bb, KeyGrids)
	if err != nil {
		return err
	}
	truth, err := somospie.SyntheticTruth(grids["elevation"], grids["slope"], grids["aspect"], cfg.Seed)
	if err != nil {
		return err
	}
	bb.Put(KeyTruth, truth)
	samples, err := somospie.DrawSamples(truth, covariateList(grids), cfg.Observations, cfg.Seed)
	if err != nil {
		return err
	}
	bb.Put("samples", samples)

	// Publish the observation product to the public repository as NetCDF,
	// the container such satellite products actually ship in.
	nc, err := netcdf.FromGrid("soil_moisture", truth, "m3 m-3")
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := nc.Encode(&buf); err != nil {
		return err
	}
	doi, err := f.Dataverse.CreateDataset(storage.DatasetMeta{
		Title:       "Synthetic satellite soil moisture (SOMOSPIE reproduction)",
		Authors:     []string{"NSDF Moisture Workflow"},
		Description: "Gap-filled satellite-style soil moisture used as SOMOSPIE training truth",
		Subject:     "Earth and Environmental Sciences",
	})
	if err != nil {
		return err
	}
	if err := f.Dataverse.AddFile(ctx, doi, "soil_moisture.nc", buf.Bytes()); err != nil {
		return err
	}
	if _, err := f.Dataverse.Publish(ctx, doi); err != nil {
		return err
	}
	bb.Put(KeyDOI, doi)
	_, err = f.Catalog.Add(catalog.Record{
		Name: "soil_moisture.nc", Source: "dataverse", Type: "netcdf",
		Size: int64(buf.Len()), Location: doi + "/soil_moisture.nc",
		Keywords: []string{"soil", "moisture", "satellite"},
	})
	return err
}

func (f *Fabric) moistureTrain(ctx context.Context, cfg MoistureConfig, bb *Blackboard) error {
	samples, err := Fetch[[]somospie.Sample](bb, "samples")
	if err != nil {
		return err
	}
	train, test, err := somospie.Split(samples, cfg.TestFraction, cfg.Seed)
	if err != nil {
		return err
	}
	models := []somospie.Model{&somospie.KNN{K: 5}, &somospie.IDW{Power: 2}, &somospie.Linear{}}
	var reports []somospie.EvalReport
	var best somospie.Model
	bestRMSE := 0.0
	for _, m := range models {
		if err := m.Fit(train); err != nil {
			return fmt.Errorf("fit %s: %w", m.Name(), err)
		}
		rep, err := somospie.Evaluate(m, test)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
		if best == nil || rep.RMSE < bestRMSE {
			best, bestRMSE = m, rep.RMSE
		}
	}
	bb.Put(KeyEvaluations, reports)
	bb.Put(KeyBestModel, best.Name())
	bb.Put("model", best)
	return nil
}

func (f *Fabric) moistureDownscale(ctx context.Context, cfg MoistureConfig, bb *Blackboard) error {
	grids, err := Fetch[map[string]*raster.Grid](bb, KeyGrids)
	if err != nil {
		return err
	}
	model, err := Fetch[somospie.Model](bb, "model")
	if err != nil {
		return err
	}
	pred, err := somospie.PredictGrid(model, covariateList(grids))
	if err != nil {
		return err
	}
	bb.Put(KeyPrediction, pred)
	return nil
}

func (f *Fabric) moisturePublish(ctx context.Context, cfg MoistureConfig, bb *Blackboard) error {
	pred, err := Fetch[*raster.Grid](bb, KeyPrediction)
	if err != nil {
		return err
	}
	truth, err := Fetch[*raster.Grid](bb, KeyTruth)
	if err != nil {
		return err
	}
	meta, err := idx.NewMeta([]int{cfg.Width, cfg.Height}, []idx.Field{
		{Name: "soil_moisture_pred", Type: idx.Float32},
		{Name: "soil_moisture_truth", Type: idx.Float32},
	})
	if err != nil {
		return err
	}
	be := storage.NewIDXBackend(f.Private, "datasets/"+cfg.DatasetName)
	ds, err := idx.Create(ctx, be, meta)
	if err != nil {
		return err
	}
	if err := ds.WriteGrid(ctx, "soil_moisture_pred", 0, pred); err != nil {
		return err
	}
	if err := ds.WriteGrid(ctx, "soil_moisture_truth", 0, truth); err != nil {
		return err
	}
	size, err := ds.StoredBytes(ctx, "soil_moisture_pred", 0)
	if err != nil {
		return err
	}
	if _, err := f.Catalog.Add(catalog.Record{
		Name: cfg.DatasetName + ".idx", Source: "sealstorage", Type: "idx",
		Size: size, Location: "datasets/" + cfg.DatasetName,
		Keywords: []string{"soil", "moisture", "downscaled", "somospie"},
	}); err != nil {
		return err
	}
	bb.Put(KeyDataset, ds)
	bb.Put(KeyEngine, query.New(ds, f.CacheBytes))
	return nil
}
