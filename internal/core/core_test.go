package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"nsdfgo/internal/geotiled"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/metrics"
	"nsdfgo/internal/raster"
)

func TestBlackboard(t *testing.T) {
	bb := NewBlackboard()
	if _, ok := bb.Get("x"); ok {
		t.Error("empty blackboard hit")
	}
	bb.Put("x", 42)
	v, ok := bb.Get("x")
	if !ok || v.(int) != 42 {
		t.Errorf("Get = %v, %v", v, ok)
	}
	bb.Put("a", "s")
	keys := bb.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "x" {
		t.Errorf("Keys = %v", keys)
	}
}

func TestFetchTyped(t *testing.T) {
	bb := NewBlackboard()
	bb.Put("n", 7)
	n, err := Fetch[int](bb, "n")
	if err != nil || n != 7 {
		t.Errorf("Fetch = %d, %v", n, err)
	}
	if _, err := Fetch[string](bb, "n"); err == nil {
		t.Error("wrong type accepted")
	}
	if _, err := Fetch[int](bb, "missing"); err == nil {
		t.Error("missing key accepted")
	}
}

func TestWorkflowRunsInDependencyOrder(t *testing.T) {
	var order []string
	mk := func(name string, needs ...string) Step {
		return Step{Name: name, Needs: needs, Run: func(ctx context.Context, bb *Blackboard) error {
			order = append(order, name)
			return nil
		}}
	}
	w := NewWorkflow()
	// Added out of order on purpose.
	w.Add(mk("d", "b", "c"))
	w.Add(mk("b", "a"))
	w.Add(mk("c", "a"))
	w.Add(mk("a"))
	_, trail, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 || order[0] != "a" || order[3] != "d" {
		t.Errorf("order = %v", order)
	}
	if trail.Failed() {
		t.Error("trail reports failure")
	}
	if len(trail.Records) != 4 {
		t.Errorf("%d records", len(trail.Records))
	}
}

func TestWorkflowFailureSkipsDownstream(t *testing.T) {
	boom := errors.New("boom")
	w := NewWorkflow()
	w.Add(Step{Name: "one", Run: func(context.Context, *Blackboard) error { return nil }})
	w.Add(Step{Name: "two", Needs: []string{"one"}, Run: func(context.Context, *Blackboard) error { return boom }})
	ran := false
	w.Add(Step{Name: "three", Needs: []string{"two"}, Run: func(context.Context, *Blackboard) error {
		ran = true
		return nil
	}})
	_, trail, err := w.Run(context.Background())
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
	if ran {
		t.Error("downstream step ran after failure")
	}
	if !trail.Failed() {
		t.Error("trail does not report failure")
	}
	statuses := map[string]StepStatus{}
	for _, r := range trail.Records {
		statuses[r.Step] = r.Status
	}
	if statuses["one"] != StatusOK || statuses["two"] != StatusFailed || statuses["three"] != StatusSkipped {
		t.Errorf("statuses = %v", statuses)
	}
	if !strings.Contains(trail.String(), "boom") {
		t.Error("trail omits the error")
	}
}

func TestWorkflowValidation(t *testing.T) {
	run := func(context.Context, *Blackboard) error { return nil }
	cases := map[string]*Workflow{
		"duplicate": NewWorkflow().Add(Step{Name: "a", Run: run}).Add(Step{Name: "a", Run: run}),
		"unknown":   NewWorkflow().Add(Step{Name: "a", Needs: []string{"ghost"}, Run: run}),
		"cycle": NewWorkflow().
			Add(Step{Name: "a", Needs: []string{"b"}, Run: run}).
			Add(Step{Name: "b", Needs: []string{"a"}, Run: run}),
		"unnamed": NewWorkflow().Add(Step{Run: run}),
		"no-run":  NewWorkflow().Add(Step{Name: "a"}),
	}
	for name, w := range cases {
		if _, _, err := w.Run(context.Background()); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWorkflowHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	w := NewWorkflow()
	w.Add(Step{Name: "one", Run: func(context.Context, *Blackboard) error {
		cancel()
		return nil
	}})
	w.Add(Step{Name: "two", Needs: []string{"one"}, Run: func(context.Context, *Blackboard) error {
		t.Error("step two ran after cancellation")
		return nil
	}})
	_, trail, err := w.Run(ctx)
	if err == nil {
		t.Error("cancelled run succeeded")
	}
	if trail.Records[1].Status != StatusSkipped {
		t.Errorf("step two status %s", trail.Records[1].Status)
	}
}

func TestWorkflowArtifactsRecorded(t *testing.T) {
	w := NewWorkflow()
	w.Add(Step{Name: "produce", Run: func(_ context.Context, bb *Blackboard) error {
		bb.Put("artifact", 1)
		return nil
	}})
	_, trail, err := w.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(trail.Records[0].Artifacts) != 1 || trail.Records[0].Artifacts[0] != "artifact" {
		t.Errorf("artifacts = %v", trail.Records[0].Artifacts)
	}
}

func TestTutorialWorkflowEndToEnd(t *testing.T) {
	f := NewFabric()
	w, err := f.TutorialWorkflow(TutorialConfig{Width: 128, Height: 64, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Steps(); len(got) != 4 || got[0] != "generate" || got[3] != "visualize" {
		t.Fatalf("steps = %v", got)
	}
	bb, trail, err := w.Run(context.Background())
	if err != nil {
		t.Fatalf("workflow failed: %v\n%s", err, trail)
	}

	// Step 1 artifacts: grids, DOI, published files, catalog records.
	grids, err := Fetch[map[string]*raster.Grid](bb, KeyGrids)
	if err != nil || len(grids) != 4 {
		t.Fatalf("grids: %d, %v", len(grids), err)
	}
	doi, err := Fetch[string](bb, KeyDOI)
	if err != nil || !strings.HasPrefix(doi, "doi:") {
		t.Fatalf("doi: %q, %v", doi, err)
	}
	info, err := f.Dataverse.Info(doi)
	if err != nil || info.Version != 1 || len(info.Files) != 4 {
		t.Fatalf("dataverse info: %+v, %v", info, err)
	}

	// Step 2: IDX dataset on private storage with all four fields.
	ds, err := Fetch[*idx.Dataset](bb, KeyDataset)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Meta.Fields) != 4 || ds.Meta.Dims[0] != 128 {
		t.Fatalf("dataset meta: %+v", ds.Meta)
	}
	if ds.Meta.Geo == nil {
		t.Error("dataset lost georeferencing through the TIFF round trip")
	}

	// Step 3: validation identical for every field.
	reports, err := Fetch[map[string]metrics.Report](bb, KeyValidation)
	if err != nil || len(reports) != 4 {
		t.Fatalf("validation: %v, %v", reports, err)
	}
	for name, rep := range reports {
		if !rep.Identical {
			t.Errorf("%s: not identical: %s", name, rep)
		}
	}

	// Step 4: engine, dashboard, snip.
	snip, err := Fetch[[]byte](bb, KeySnip)
	if err != nil || len(snip) == 0 {
		t.Fatalf("snip: %d bytes, %v", len(snip), err)
	}

	// Catalog indexed 4 TIFFs + 4 IDX fields.
	if f.Catalog.Len() != 8 {
		t.Errorf("catalog has %d records, want 8", f.Catalog.Len())
	}

	// Provenance trail complete and ordered.
	if len(trail.Records) != 4 || trail.Failed() {
		t.Errorf("trail: %s", trail)
	}
}

func TestTutorialWorkflowCONUS(t *testing.T) {
	f := NewFabric()
	w, err := f.TutorialWorkflow(TutorialConfig{Region: "conus", Width: 96, Height: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, trail, err := w.Run(context.Background()); err != nil {
		t.Fatalf("%v\n%s", err, trail)
	}
}

func TestTutorialWorkflowSingleParam(t *testing.T) {
	f := NewFabric()
	w, err := f.TutorialWorkflow(TutorialConfig{Width: 64, Height: 32, Seed: 5, Params: []geotiled.Param{geotiled.Slope}})
	if err != nil {
		t.Fatal(err)
	}
	bb, trail, err := w.Run(context.Background())
	if err != nil {
		t.Fatalf("%v\n%s", err, trail)
	}
	reports, err := Fetch[map[string]metrics.Report](bb, KeyValidation)
	if err != nil || len(reports) != 1 {
		t.Fatalf("validation: %v, %v", reports, err)
	}
	if _, ok := reports["slope"]; !ok {
		t.Error("slope report missing")
	}
}

func TestTutorialConfigValidation(t *testing.T) {
	f := NewFabric()
	if _, err := f.TutorialWorkflow(TutorialConfig{Region: "mars"}); err == nil {
		t.Error("unknown region accepted")
	}
	if _, err := f.TutorialWorkflow(TutorialConfig{Width: 2, Height: 2}); err == nil {
		t.Error("tiny scene accepted")
	}
}

func TestTrailJSON(t *testing.T) {
	w := NewWorkflow()
	w.Add(Step{Name: "good", Run: func(_ context.Context, bb *Blackboard) error {
		bb.Put("artifact", 1)
		return nil
	}})
	w.Add(Step{Name: "bad", Needs: []string{"good"}, Run: func(context.Context, *Blackboard) error {
		return errors.New("kaput")
	}})
	_, trail, _ := w.Run(context.Background())
	data, err := json.Marshal(trail)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Failed  bool `json:"failed"`
		Records []struct {
			Step      string   `json:"step"`
			Status    string   `json:"status"`
			Error     string   `json:"error"`
			Artifacts []string `json:"artifacts"`
		} `json:"records"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Failed || len(out.Records) != 2 {
		t.Fatalf("json %s", data)
	}
	if out.Records[0].Status != "ok" || out.Records[0].Artifacts[0] != "artifact" {
		t.Errorf("record 0: %+v", out.Records[0])
	}
	if out.Records[1].Status != "failed" || out.Records[1].Error != "kaput" {
		t.Errorf("record 1: %+v", out.Records[1])
	}
}

func TestTrailStringRendersAllSteps(t *testing.T) {
	w := NewWorkflow()
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("s%d", i)
		w.Add(Step{Name: name, Run: func(context.Context, *Blackboard) error { return nil }})
	}
	_, trail, _ := w.Run(context.Background())
	s := trail.String()
	for i := 0; i < 3; i++ {
		if !strings.Contains(s, fmt.Sprintf("s%d", i)) {
			t.Errorf("trail missing s%d:\n%s", i, s)
		}
	}
}
