package core

import (
	"context"
	"strings"
	"testing"

	"nsdfgo/internal/catalog"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/query"
	"nsdfgo/internal/raster"
	"nsdfgo/internal/somospie"
	"nsdfgo/internal/storage"
)

func TestMoistureWorkflowEndToEnd(t *testing.T) {
	f := NewFabric()
	w, err := f.MoistureWorkflow(MoistureConfig{Width: 96, Height: 64, Seed: 7, Observations: 600})
	if err != nil {
		t.Fatal(err)
	}
	steps := w.Steps()
	want := []string{"terrain", "observe", "train", "downscale", "publish"}
	if len(steps) != len(want) {
		t.Fatalf("steps %v", steps)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("step %d = %s, want %s", i, steps[i], want[i])
		}
	}
	bb, trail, err := w.Run(context.Background())
	if err != nil {
		t.Fatalf("workflow failed: %v\n%s", err, trail)
	}

	// Models evaluated, winner chosen, all with genuine skill.
	reports, err := Fetch[[]somospie.EvalReport](bb, KeyEvaluations)
	if err != nil || len(reports) != 3 {
		t.Fatalf("evaluations: %v, %v", reports, err)
	}
	for _, rep := range reports {
		if rep.R2 <= 0 {
			t.Errorf("%s: R2 = %v", rep.Model, rep.R2)
		}
	}
	best, err := Fetch[string](bb, KeyBestModel)
	if err != nil || best == "" {
		t.Fatalf("best model: %q, %v", best, err)
	}

	// Prediction grid exists and correlates with truth.
	pred, err := Fetch[*raster.Grid](bb, KeyPrediction)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := Fetch[*raster.Grid](bb, KeyTruth)
	if err != nil {
		t.Fatal(err)
	}
	if pred.W != truth.W || pred.H != truth.H {
		t.Fatalf("prediction %dx%d vs truth %dx%d", pred.W, pred.H, truth.W, truth.H)
	}

	// NetCDF observation product published to Dataverse.
	doi, err := Fetch[string](bb, KeyDOI)
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.Dataverse.GetFile(context.Background(), doi, "soil_moisture.nc")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data[:3]), "CDF") {
		t.Error("published product is not NetCDF")
	}

	// IDX product with both fields readable via the workflow's engine.
	engine, err := Fetch[*query.Engine](bb, KeyEngine)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"soil_moisture_pred", "soil_moisture_truth"} {
		res, err := engine.Read(context.Background(), query.Request{Field: field, Level: query.LevelFull})
		if err != nil {
			t.Fatalf("%s: %v", field, err)
		}
		lo, hi, ok := res.Grid.MinMax()
		if !ok || lo < 0.0 || hi > 0.6 {
			t.Errorf("%s: range [%v,%v]", field, lo, hi)
		}
	}

	// Catalog knows both the NetCDF source and the IDX product.
	if got := f.Catalog.Search(catalog.Query{Terms: "moisture"}); len(got) != 2 {
		t.Errorf("catalog moisture records: %d", len(got))
	}
}

func TestMoistureWorkflowValidation(t *testing.T) {
	f := NewFabric()
	if _, err := f.MoistureWorkflow(MoistureConfig{Width: 4, Height: 4}); err == nil {
		t.Error("tiny region accepted")
	}
	if _, err := f.MoistureWorkflow(MoistureConfig{Observations: 10}); err == nil {
		t.Error("too few observations accepted")
	}
	if _, err := f.MoistureWorkflow(MoistureConfig{Width: 32, Height: 32, Observations: 600}); err == nil {
		t.Error("oversampled region accepted")
	}
	if _, err := f.MoistureWorkflow(MoistureConfig{TestFraction: 1.5}); err == nil {
		t.Error("bad test fraction accepted")
	}
}

func TestMoistureDatasetReopens(t *testing.T) {
	f := NewFabric()
	w, err := f.MoistureWorkflow(MoistureConfig{Width: 64, Height: 48, Seed: 3, Observations: 300})
	if err != nil {
		t.Fatal(err)
	}
	if _, trail, err := w.Run(context.Background()); err != nil {
		t.Fatalf("%v\n%s", err, trail)
	}
	// The product is on the fabric's private store, openable independently.
	ds, err := idx.Open(context.Background(), storage.NewIDXBackend(f.Private, "datasets/soil_moisture"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Meta.Fields) != 2 {
		t.Errorf("reopened dataset has %d fields", len(ds.Meta.Fields))
	}
}
