package core

import (
	"bytes"
	"context"
	"fmt"
	"strings"

	"nsdfgo/internal/catalog"
	"nsdfgo/internal/dashboard"
	"nsdfgo/internal/dem"
	"nsdfgo/internal/geotiled"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/metrics"
	"nsdfgo/internal/query"
	"nsdfgo/internal/raster"
	"nsdfgo/internal/storage"
	"nsdfgo/internal/tiff"
)

// Fabric bundles the NSDF services a workflow draws on: a public
// repository (Dataverse), a private object store (Seal Storage), the
// record catalog, and the dashboard's cache budget. Any field can be
// swapped for a remote-backed implementation (HTTP client, conditioned
// store) without touching workflow code — that substitution is exactly
// the modularity the tutorial teaches.
type Fabric struct {
	// PublicStore backs the Dataverse repository.
	PublicStore storage.Store
	// Dataverse is the public publication service (step 1 uploads).
	Dataverse *storage.Dataverse
	// Private is the Seal-Storage-style store holding IDX data (step 2).
	Private storage.Store
	// Catalog indexes every artifact the workflow produces.
	Catalog *catalog.Catalog
	// CacheBytes budgets the block cache of step 4's query engine.
	CacheBytes int64
}

// NewFabric assembles an all-in-memory fabric with a 64 MiB cache —
// the configuration the tutorial's local exercises use.
func NewFabric() *Fabric {
	public := storage.NewMemStore()
	return &Fabric{
		PublicStore: public,
		Dataverse:   storage.NewDataverse(public),
		Private:     storage.NewMemStore(),
		Catalog:     catalog.New(),
		CacheBytes:  64 << 20,
	}
}

// TutorialConfig parameterises the four-step tutorial workflow.
type TutorialConfig struct {
	// Region selects the scene: "tennessee" (default) or "conus".
	Region string
	// Width and Height are the synthesised DEM dimensions; zero defaults
	// to 512 x 256.
	Width, Height int
	// Seed fixes the synthetic data.
	Seed uint64
	// DatasetName names the IDX dataset on private storage; zero defaults
	// to "<region>_30m".
	DatasetName string
	// Params lists the terrain parameters to generate; nil means all four.
	Params []geotiled.Param
	// TileSize and Workers tune GEOtiled; zeros use its defaults.
	TileSize, Workers int
}

func (c TutorialConfig) withDefaults() (TutorialConfig, error) {
	if c.Region == "" {
		c.Region = "tennessee"
	}
	if c.Region != "tennessee" && c.Region != "conus" {
		return c, fmt.Errorf("core: unknown region %q", c.Region)
	}
	if c.Width == 0 {
		c.Width = 512
	}
	if c.Height == 0 {
		c.Height = 256
	}
	if c.Width < 8 || c.Height < 8 {
		return c, fmt.Errorf("core: scene %dx%d too small", c.Width, c.Height)
	}
	if c.DatasetName == "" {
		c.DatasetName = c.Region + "_30m"
	}
	if len(c.Params) == 0 {
		c.Params = geotiled.TutorialParams
	}
	return c, nil
}

// capitalize upper-cases the first ASCII letter of s.
func capitalize(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// Blackboard keys published by the tutorial workflow.
const (
	// KeyGrids holds map[string]*raster.Grid of generated parameters.
	KeyGrids = "grids"
	// KeyDOI holds the Dataverse persistent ID of the published TIFFs.
	KeyDOI = "doi"
	// KeyTIFFBytes holds map[string]int64 of encoded TIFF sizes.
	KeyTIFFBytes = "tiff_bytes"
	// KeyDataset holds the *idx.Dataset on private storage.
	KeyDataset = "dataset"
	// KeyIDXBytes holds map[string]int64 of stored IDX block sizes.
	KeyIDXBytes = "idx_bytes"
	// KeyValidation holds map[string]metrics.Report from step 3.
	KeyValidation = "validation"
	// KeyEngine holds the *query.Engine of step 4.
	KeyEngine = "engine"
	// KeyDashboard holds the *dashboard.Server of step 4.
	KeyDashboard = "dashboard"
	// KeySnip holds the step-4 demonstration snip as .npy bytes.
	KeySnip = "snip_npy"
)

// TutorialWorkflow builds the four-step workflow of Fig. 4 over this
// fabric. Run it with Workflow.Run; artifacts land on the blackboard
// under the Key* constants.
func (f *Fabric) TutorialWorkflow(cfg TutorialConfig) (*Workflow, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	w := NewWorkflow()
	w.Add(Step{Name: "generate", Run: func(ctx context.Context, bb *Blackboard) error {
		return f.stepGenerate(ctx, cfg, bb)
	}})
	w.Add(Step{Name: "convert", Needs: []string{"generate"}, Run: func(ctx context.Context, bb *Blackboard) error {
		return f.stepConvert(ctx, cfg, bb)
	}})
	w.Add(Step{Name: "validate", Needs: []string{"convert"}, Run: func(ctx context.Context, bb *Blackboard) error {
		return f.stepValidate(ctx, cfg, bb)
	}})
	w.Add(Step{Name: "visualize", Needs: []string{"validate"}, Run: func(ctx context.Context, bb *Blackboard) error {
		return f.stepVisualize(ctx, cfg, bb)
	}})
	return w, nil
}

// stepGenerate is tutorial step 1: synthesise the DEM (standing in for
// the USGS download), run GEOtiled, publish the TIFFs to Dataverse, and
// catalogue them.
func (f *Fabric) stepGenerate(ctx context.Context, cfg TutorialConfig, bb *Blackboard) error {
	var demGrid *raster.Grid
	switch cfg.Region {
	case "conus":
		demGrid = dem.CONUS(cfg.Width, cfg.Height, cfg.Seed)
	default:
		demGrid = dem.Tennessee(cfg.Width, cfg.Height, cfg.Seed)
	}
	opts := geotiled.Options{TileSize: cfg.TileSize, Workers: cfg.Workers}
	grids := make(map[string]*raster.Grid, len(cfg.Params))
	for _, p := range cfg.Params {
		g, err := geotiled.ComputeTiled(demGrid, p, opts)
		if err != nil {
			return fmt.Errorf("geotiled %s: %w", p, err)
		}
		grids[p.String()] = g
	}
	bb.Put(KeyGrids, grids)

	doi, err := f.Dataverse.CreateDataset(storage.DatasetMeta{
		Title:       fmt.Sprintf("%s terrain parameters (30 m, synthetic reproduction)", capitalize(cfg.Region)),
		Authors:     []string{"NSDF Tutorial Workflow"},
		Description: "GEOtiled-derived terrain parameters generated by the four-step NSDF tutorial workflow",
		Subject:     "Earth and Environmental Sciences",
	})
	if err != nil {
		return err
	}
	tiffBytes := make(map[string]int64, len(grids))
	for _, p := range cfg.Params {
		name := p.String()
		var buf bytes.Buffer
		if err := tiff.Encode(&buf, tiff.FromGrid(grids[name]), tiff.EncodeOptions{Compression: tiff.CompressionDeflate}); err != nil {
			return fmt.Errorf("encode %s.tif: %w", name, err)
		}
		fileName := name + ".tif"
		if err := f.Dataverse.AddFile(ctx, doi, fileName, buf.Bytes()); err != nil {
			return err
		}
		tiffBytes[name] = int64(buf.Len())
		if _, err := f.Catalog.Add(catalog.Record{
			Name: fmt.Sprintf("%s_%s.tif", cfg.Region, name), Source: "dataverse", Type: "tiff",
			Size: int64(buf.Len()), Location: doi + "/" + fileName,
			Keywords: []string{"terrain", name, cfg.Region},
		}); err != nil {
			return err
		}
	}
	if _, err := f.Dataverse.Publish(ctx, doi); err != nil {
		return err
	}
	bb.Put(KeyDOI, doi)
	bb.Put(KeyTIFFBytes, tiffBytes)
	return nil
}

// stepConvert is tutorial step 2: pull the published TIFFs back from
// Dataverse, convert them to one multi-field IDX dataset on the private
// store, and catalogue the result.
func (f *Fabric) stepConvert(ctx context.Context, cfg TutorialConfig, bb *Blackboard) error {
	doi, err := Fetch[string](bb, KeyDOI)
	if err != nil {
		return err
	}
	// Pull every published TIFF back from the repository first: the
	// conversion consumes the public artifacts, not in-memory state.
	images := make(map[string]*tiff.Image, len(cfg.Params))
	for _, p := range cfg.Params {
		name := p.String()
		data, err := f.Dataverse.GetFile(ctx, doi, name+".tif")
		if err != nil {
			return fmt.Errorf("fetch %s.tif: %w", name, err)
		}
		im, err := tiff.DecodeBytes(data)
		if err != nil {
			return fmt.Errorf("decode %s.tif: %w", name, err)
		}
		images[name] = im
	}
	fields := make([]idx.Field, 0, len(cfg.Params))
	for _, p := range cfg.Params {
		fields = append(fields, idx.Field{Name: p.String(), Type: idx.Float32})
	}
	meta, err := idx.NewMeta([]int{cfg.Width, cfg.Height}, fields)
	if err != nil {
		return err
	}
	meta.Geo = images[cfg.Params[0].String()].Geo
	be := storage.NewIDXBackend(f.Private, "datasets/"+cfg.DatasetName)
	ds, err := idx.Create(ctx, be, meta)
	if err != nil {
		return err
	}
	idxBytes := make(map[string]int64, len(cfg.Params))
	for _, p := range cfg.Params {
		name := p.String()
		if err := ds.WriteGrid(ctx, name, 0, images[name].Grid()); err != nil {
			return fmt.Errorf("write %s: %w", name, err)
		}
		n, err := ds.StoredBytes(ctx, name, 0)
		if err != nil {
			return err
		}
		idxBytes[name] = n
		if _, err := f.Catalog.Add(catalog.Record{
			Name: fmt.Sprintf("%s_%s.idx", cfg.Region, name), Source: "sealstorage", Type: "idx",
			Size: n, Location: "datasets/" + cfg.DatasetName,
			Keywords: []string{"terrain", name, cfg.Region, "multiresolution"},
		}); err != nil {
			return err
		}
	}
	bb.Put(KeyDataset, ds)
	bb.Put(KeyIDXBytes, idxBytes)
	return nil
}

// stepValidate is tutorial step 3: statically compare the IDX round trip
// against the original grids with scientific metrics; the lossless zlib
// path must be bit-for-bit identical.
func (f *Fabric) stepValidate(ctx context.Context, cfg TutorialConfig, bb *Blackboard) error {
	grids, err := Fetch[map[string]*raster.Grid](bb, KeyGrids)
	if err != nil {
		return err
	}
	ds, err := Fetch[*idx.Dataset](bb, KeyDataset)
	if err != nil {
		return err
	}
	reports := make(map[string]metrics.Report, len(cfg.Params))
	for _, p := range cfg.Params {
		name := p.String()
		got, _, err := ds.ReadFull(ctx, name, 0)
		if err != nil {
			return fmt.Errorf("read back %s: %w", name, err)
		}
		orig := grids[name]
		rep, err := metrics.Compare(orig.Data, got.Data, orig.W, orig.H)
		if err != nil {
			return err
		}
		if !rep.Identical {
			return fmt.Errorf("validation failed for %s: %s", name, rep)
		}
		reports[name] = rep
	}
	bb.Put(KeyValidation, reports)
	return nil
}

// stepVisualize is tutorial step 4: stand up the query engine and
// dashboard, exercise a progressive zoom, and produce a snip download.
func (f *Fabric) stepVisualize(ctx context.Context, cfg TutorialConfig, bb *Blackboard) error {
	ds, err := Fetch[*idx.Dataset](bb, KeyDataset)
	if err != nil {
		return err
	}
	engine := query.New(ds, f.CacheBytes)
	server := dashboard.NewServer()
	server.Register(cfg.DatasetName, engine)

	// Progressive preview of the full extent, coarse to fine.
	firstParam := cfg.Params[0].String()
	steps := 0
	err = engine.Progressive(ctx, query.Request{Field: firstParam, Level: query.LevelFull}, 4, 4, func(res query.Result) error {
		steps++
		return nil
	})
	if err != nil {
		return fmt.Errorf("progressive preview: %w", err)
	}
	if steps == 0 {
		return fmt.Errorf("progressive preview delivered nothing")
	}

	// Snip a central subregion and package it as the NumPy download.
	box := idx.Box{X0: cfg.Width / 4, Y0: cfg.Height / 4, X1: cfg.Width * 3 / 4, Y1: cfg.Height * 3 / 4}
	res, err := engine.Read(ctx, query.Request{Field: firstParam, Box: box, Level: query.LevelFull})
	if err != nil {
		return fmt.Errorf("snip: %w", err)
	}
	npy, err := dashboard.EncodeNPY(res.Grid)
	if err != nil {
		return err
	}
	bb.Put(KeyEngine, engine)
	bb.Put(KeyDashboard, server)
	bb.Put(KeySnip, npy)
	return nil
}
