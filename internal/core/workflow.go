// Package core is the paper's primary contribution as a library: the
// integration layer that lets users "combine their application components
// with NSDF services to create a modular workflow" (tutorial goal 1,
// Fig. 1). It provides a dependency-ordered workflow engine with
// provenance trails, a Fabric facade wiring the storage, catalog, cache,
// and query services together, and a prebuilt instance of the tutorial's
// four-step workflow (Fig. 4): data generation → conversion to IDX →
// static validation → interactive visualization.
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Step is one modular unit of a workflow.
type Step struct {
	// Name identifies the step; it must be unique within a workflow.
	Name string
	// Needs lists the names of steps that must complete first.
	Needs []string
	// Run executes the step. It receives the workflow's shared context
	// blackboard for exchanging artifacts with other steps.
	Run func(ctx context.Context, wc *Blackboard) error
}

// Blackboard is the typed key/value space steps use to pass artifacts
// (grids, datasets, DOIs) down the workflow. It is safe for concurrent
// use.
type Blackboard struct {
	mu     sync.RWMutex
	values map[string]any
}

// NewBlackboard returns an empty blackboard.
func NewBlackboard() *Blackboard {
	return &Blackboard{values: make(map[string]any)}
}

// Put stores value under key, replacing any previous value.
func (b *Blackboard) Put(key string, value any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.values[key] = value
}

// Get returns the value under key.
func (b *Blackboard) Get(key string) (any, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	v, ok := b.values[key]
	return v, ok
}

// Keys returns the stored keys, sorted; the provenance trail records them.
func (b *Blackboard) Keys() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.values))
	for k := range b.values {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Fetch retrieves a typed artifact from the blackboard.
func Fetch[T any](b *Blackboard, key string) (T, error) {
	var zero T
	v, ok := b.Get(key)
	if !ok {
		return zero, fmt.Errorf("core: workflow artifact %q missing", key)
	}
	t, ok := v.(T)
	if !ok {
		return zero, fmt.Errorf("core: workflow artifact %q has type %T, want %T", key, v, zero)
	}
	return t, nil
}

// StepStatus is the outcome of one step execution.
type StepStatus string

// Step outcomes recorded in the provenance trail.
const (
	StatusOK      StepStatus = "ok"
	StatusFailed  StepStatus = "failed"
	StatusSkipped StepStatus = "skipped"
)

// StepRecord is one provenance entry.
type StepRecord struct {
	// Step is the step name.
	Step string
	// Status is the outcome.
	Status StepStatus
	// Started and Elapsed time the execution.
	Started time.Time
	Elapsed time.Duration
	// Err holds the failure message for failed steps.
	Err string
	// Artifacts lists the blackboard keys present after the step,
	// recording data lineage through the workflow.
	Artifacts []string
}

// Trail is the workflow's provenance record ("record trails and data
// provenance" in the tutorial's companion work).
type Trail struct {
	// Records are per-step entries in execution order.
	Records []StepRecord
}

// String renders the trail as a fixed-width provenance table.
func (t *Trail) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %-8s %-12s %s\n", "step", "status", "elapsed", "artifacts")
	for _, r := range t.Records {
		fmt.Fprintf(&sb, "%-14s %-8s %-12s %s\n", r.Step, r.Status, r.Elapsed.Round(time.Microsecond), strings.Join(r.Artifacts, ","))
		if r.Err != "" {
			fmt.Fprintf(&sb, "  error: %s\n", r.Err)
		}
	}
	return sb.String()
}

// MarshalJSON renders the trail as a machine-readable provenance record
// suitable for archival next to the data products.
func (t *Trail) MarshalJSON() ([]byte, error) {
	type rec struct {
		Step      string   `json:"step"`
		Status    string   `json:"status"`
		Started   string   `json:"started,omitempty"`
		ElapsedMS float64  `json:"elapsed_ms"`
		Err       string   `json:"error,omitempty"`
		Artifacts []string `json:"artifacts,omitempty"`
	}
	out := make([]rec, len(t.Records))
	for i, r := range t.Records {
		out[i] = rec{
			Step:      r.Step,
			Status:    string(r.Status),
			ElapsedMS: float64(r.Elapsed) / 1e6,
			Err:       r.Err,
			Artifacts: r.Artifacts,
		}
		if !r.Started.IsZero() {
			out[i].Started = r.Started.UTC().Format(time.RFC3339Nano)
		}
	}
	return json.Marshal(map[string]any{"records": out, "failed": t.Failed()})
}

// Failed reports whether any step failed.
func (t *Trail) Failed() bool {
	for _, r := range t.Records {
		if r.Status == StatusFailed {
			return true
		}
	}
	return false
}

// Workflow is an ordered collection of steps with dependencies.
type Workflow struct {
	steps []Step
}

// NewWorkflow returns an empty workflow.
func NewWorkflow() *Workflow { return &Workflow{} }

// Add appends a step. Steps may be added in any order; Run resolves
// dependencies.
func (w *Workflow) Add(s Step) *Workflow {
	w.steps = append(w.steps, s)
	return w
}

// Steps returns the step names in insertion order.
func (w *Workflow) Steps() []string {
	out := make([]string, len(w.steps))
	for i, s := range w.steps {
		out[i] = s.Name
	}
	return out
}

// order topologically sorts the steps, preferring insertion order among
// ready steps so runs are deterministic. It rejects duplicate names,
// unknown dependencies, and cycles.
func (w *Workflow) order() ([]*Step, error) {
	byName := make(map[string]*Step, len(w.steps))
	for i := range w.steps {
		s := &w.steps[i]
		if s.Name == "" {
			return nil, fmt.Errorf("core: step %d has no name", i)
		}
		if s.Run == nil {
			return nil, fmt.Errorf("core: step %q has no Run function", s.Name)
		}
		if _, dup := byName[s.Name]; dup {
			return nil, fmt.Errorf("core: duplicate step %q", s.Name)
		}
		byName[s.Name] = s
	}
	indeg := make(map[string]int, len(w.steps))
	for _, s := range w.steps {
		for _, need := range s.Needs {
			if _, ok := byName[need]; !ok {
				return nil, fmt.Errorf("core: step %q needs unknown step %q", s.Name, need)
			}
			indeg[s.Name]++
		}
	}
	var out []*Step
	done := make(map[string]bool, len(w.steps))
	for len(out) < len(w.steps) {
		progressed := false
		for i := range w.steps {
			s := &w.steps[i]
			if done[s.Name] {
				continue
			}
			ready := true
			for _, need := range s.Needs {
				if !done[need] {
					ready = false
					break
				}
			}
			if ready {
				out = append(out, s)
				done[s.Name] = true
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("core: dependency cycle among steps")
		}
	}
	return out, nil
}

// Run executes the workflow steps in dependency order on a fresh
// blackboard, recording a provenance trail. The first failing step aborts
// the run; the remaining steps are recorded as skipped. The blackboard is
// returned for artifact inspection even on failure.
func (w *Workflow) Run(ctx context.Context) (*Blackboard, *Trail, error) {
	ordered, err := w.order()
	if err != nil {
		return nil, nil, err
	}
	bb := NewBlackboard()
	trail := &Trail{}
	var failure error
	for _, s := range ordered {
		if failure != nil {
			trail.Records = append(trail.Records, StepRecord{Step: s.Name, Status: StatusSkipped})
			continue
		}
		if err := ctx.Err(); err != nil {
			failure = err
			trail.Records = append(trail.Records, StepRecord{Step: s.Name, Status: StatusSkipped, Err: err.Error()})
			continue
		}
		rec := StepRecord{Step: s.Name, Started: time.Now()}
		err := s.Run(ctx, bb)
		rec.Elapsed = time.Since(rec.Started)
		rec.Artifacts = bb.Keys()
		if err != nil {
			rec.Status = StatusFailed
			rec.Err = err.Error()
			failure = fmt.Errorf("core: step %q: %w", s.Name, err)
		} else {
			rec.Status = StatusOK
		}
		trail.Records = append(trail.Records, rec)
	}
	return bb, trail, failure
}
