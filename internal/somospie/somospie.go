// Package somospie reimplements the modelling core of SOMOSPIE (SOil
// MOisture SPatial Inference Engine; Rorabaugh et al., eScience 2019), the
// Earth-science application motivating the NSDF tutorial: predicting
// fine-resolution soil moisture from sparse satellite observations and
// high-resolution terrain parameters. Like the original, the engine is
// modular: interchangeable data-driven models (k-nearest-neighbours,
// inverse-distance weighting, ordinary least squares) behind a single
// interface, with sampling, train/test splitting, gridded prediction, and
// evaluation utilities.
package somospie

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"nsdfgo/internal/raster"
)

// Sample is one soil-moisture observation with its terrain covariates.
type Sample struct {
	// X and Y locate the observation (pixel or geographic coordinates;
	// the engine only requires consistency).
	X, Y float64
	// Cov holds the terrain covariates (elevation, slope, aspect, ...).
	Cov []float64
	// Value is the observed soil moisture (volumetric fraction).
	Value float64
}

// Model is a trainable spatial-inference model.
type Model interface {
	// Name identifies the model in reports.
	Name() string
	// Fit trains on the samples. Implementations copy what they keep.
	Fit(samples []Sample) error
	// Predict estimates the value at a location with covariates cov.
	Predict(x, y float64, cov []float64) float64
}

// KNN predicts with the inverse-distance-weighted mean of the K nearest
// training samples in normalised covariate space — SOMOSPIE's primary
// model family.
type KNN struct {
	// K is the neighbour count; zero defaults to 5.
	K int

	samples []Sample
	mean    []float64
	std     []float64
}

// Name implements Model.
func (k *KNN) Name() string { return fmt.Sprintf("knn(k=%d)", k.k()) }

func (k *KNN) k() int {
	if k.K <= 0 {
		return 5
	}
	return k.K
}

// Fit implements Model: it stores the samples and the per-covariate
// normalisation so distances are scale-free.
func (k *KNN) Fit(samples []Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("somospie: knn needs at least one training sample")
	}
	dim := len(samples[0].Cov)
	for i, s := range samples {
		if len(s.Cov) != dim {
			return fmt.Errorf("somospie: sample %d has %d covariates, want %d", i, len(s.Cov), dim)
		}
	}
	k.samples = append([]Sample(nil), samples...)
	k.mean = make([]float64, dim)
	k.std = make([]float64, dim)
	for d := 0; d < dim; d++ {
		var sum, sumSq float64
		for _, s := range samples {
			sum += s.Cov[d]
			sumSq += s.Cov[d] * s.Cov[d]
		}
		n := float64(len(samples))
		k.mean[d] = sum / n
		v := sumSq/n - k.mean[d]*k.mean[d]
		if v < 1e-12 {
			v = 1
		}
		k.std[d] = math.Sqrt(v)
	}
	return nil
}

// Predict implements Model.
func (k *KNN) Predict(x, y float64, cov []float64) float64 {
	type cand struct {
		d2 float64
		v  float64
	}
	kk := k.k()
	if kk > len(k.samples) {
		kk = len(k.samples)
	}
	// Maintain the kk best candidates in a small slice (kk is tiny).
	best := make([]cand, 0, kk+1)
	for i := range k.samples {
		s := &k.samples[i]
		d2 := 0.0
		for d := range cov {
			z := (cov[d] - s.Cov[d]) / k.std[d]
			d2 += z * z
		}
		if len(best) < kk || d2 < best[len(best)-1].d2 {
			best = append(best, cand{d2: d2, v: s.Value})
			sort.Slice(best, func(a, b int) bool { return best[a].d2 < best[b].d2 })
			if len(best) > kk {
				best = best[:kk]
			}
		}
	}
	var num, den float64
	for _, c := range best {
		w := 1.0 / (math.Sqrt(c.d2) + 1e-9)
		num += w * c.v
		den += w
	}
	return num / den
}

// IDW predicts with inverse-distance weighting in *space*: nearby
// observations dominate, regardless of terrain similarity. It is the
// classical geostatistical baseline SOMOSPIE compares against.
type IDW struct {
	// Power is the distance exponent; zero defaults to 2.
	Power float64
	// MaxNeighbors bounds the neighbourhood; zero means all samples.
	MaxNeighbors int

	samples []Sample
}

// Name implements Model.
func (m *IDW) Name() string { return fmt.Sprintf("idw(p=%g)", m.power()) }

func (m *IDW) power() float64 {
	if m.Power <= 0 {
		return 2
	}
	return m.Power
}

// Fit implements Model.
func (m *IDW) Fit(samples []Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("somospie: idw needs at least one training sample")
	}
	m.samples = append([]Sample(nil), samples...)
	return nil
}

// Predict implements Model.
func (m *IDW) Predict(x, y float64, cov []float64) float64 {
	type cand struct {
		d2 float64
		v  float64
	}
	var cands []cand
	for i := range m.samples {
		s := &m.samples[i]
		dx, dy := s.X-x, s.Y-y
		d2 := dx*dx + dy*dy
		if d2 < 1e-18 {
			return s.Value // exact hit
		}
		cands = append(cands, cand{d2: d2, v: s.Value})
	}
	if m.MaxNeighbors > 0 && len(cands) > m.MaxNeighbors {
		sort.Slice(cands, func(a, b int) bool { return cands[a].d2 < cands[b].d2 })
		cands = cands[:m.MaxNeighbors]
	}
	p := m.power()
	var num, den float64
	for _, c := range cands {
		w := 1.0 / math.Pow(math.Sqrt(c.d2), p)
		num += w * c.v
		den += w
	}
	return num / den
}

// Linear is ordinary least squares on the covariates (with intercept),
// fitted by solving the normal equations with Gaussian elimination.
type Linear struct {
	coef []float64 // [intercept, b1..bd]
}

// Name implements Model.
func (m *Linear) Name() string { return "ols" }

// Fit implements Model.
func (m *Linear) Fit(samples []Sample) error {
	if len(samples) == 0 {
		return fmt.Errorf("somospie: ols needs at least one training sample")
	}
	dim := len(samples[0].Cov) + 1
	if len(samples) < dim {
		return fmt.Errorf("somospie: ols needs >= %d samples for %d coefficients, got %d", dim, dim, len(samples))
	}
	// Build X'X and X'y.
	xtx := make([][]float64, dim)
	for i := range xtx {
		xtx[i] = make([]float64, dim)
	}
	xty := make([]float64, dim)
	row := make([]float64, dim)
	for _, s := range samples {
		row[0] = 1
		copy(row[1:], s.Cov)
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				xtx[i][j] += row[i] * row[j]
			}
			xty[i] += row[i] * s.Value
		}
	}
	// Ridge-stabilise the diagonal slightly to keep degenerate designs solvable.
	for i := 0; i < dim; i++ {
		xtx[i][i] += 1e-9
	}
	coef, err := solveLinearSystem(xtx, xty)
	if err != nil {
		return fmt.Errorf("somospie: ols: %w", err)
	}
	m.coef = coef
	return nil
}

// Predict implements Model.
func (m *Linear) Predict(x, y float64, cov []float64) float64 {
	v := m.coef[0]
	for d := range cov {
		v += m.coef[d+1] * cov[d]
	}
	return v
}

// solveLinearSystem solves Ax=b in place with partial pivoting.
func solveLinearSystem(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-15 {
			return nil, fmt.Errorf("singular design matrix at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		v := b[r]
		for c := r + 1; c < n; c++ {
			v -= a[r][c] * x[c]
		}
		x[r] = v / a[r][r]
	}
	return x, nil
}

// covariateStack bundles aligned covariate grids.
func covariateStack(covs []*raster.Grid) (w, h int, err error) {
	if len(covs) == 0 {
		return 0, 0, fmt.Errorf("somospie: no covariate grids")
	}
	w, h = covs[0].W, covs[0].H
	for i, g := range covs {
		if g.W != w || g.H != h {
			return 0, 0, fmt.Errorf("somospie: covariate %d is %dx%d, want %dx%d", i, g.W, g.H, w, h)
		}
	}
	return w, h, nil
}

// SyntheticTruth generates a plausible ground-truth soil-moisture grid
// from terrain covariates: moisture declines with elevation (orographic
// drainage) and slope (runoff), is higher on north-facing aspects (less
// insolation in the northern hemisphere), plus smooth spatial noise. The
// output is clamped to the physical range [0.02, 0.55] (volumetric
// fraction). It stands in for the gap-filled ESA-CCI product SOMOSPIE
// downscales.
func SyntheticTruth(elev, slope, aspect *raster.Grid, seed uint64) (*raster.Grid, error) {
	w, h, err := covariateStack([]*raster.Grid{elev, slope, aspect})
	if err != nil {
		return nil, err
	}
	eStats := elev.ComputeStats()
	out := raster.New(w, h)
	rng := rand.New(rand.NewSource(int64(seed)))
	// Smooth spatial noise via a coarse lattice bilinearly interpolated.
	const lat = 16
	noise := make([]float64, (lat+1)*(lat+1))
	for i := range noise {
		noise[i] = rng.NormFloat64() * 0.03
	}
	sample := func(x, y int) float64 {
		fx := float64(x) / float64(w) * lat
		fy := float64(y) / float64(h) * lat
		ix, iy := int(fx), int(fy)
		tx, ty := fx-float64(ix), fy-float64(iy)
		n00 := noise[iy*(lat+1)+ix]
		n10 := noise[iy*(lat+1)+ix+1]
		n01 := noise[(iy+1)*(lat+1)+ix]
		n11 := noise[(iy+1)*(lat+1)+ix+1]
		return (n00*(1-tx)+n10*tx)*(1-ty) + (n01*(1-tx)+n11*tx)*ty
	}
	span := eStats.Max - eStats.Min
	if span <= 0 {
		span = 1
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			e := (float64(elev.At(x, y)) - eStats.Min) / span // 0..1
			s := float64(slope.At(x, y)) / 90                 // 0..1
			a := float64(aspect.At(x, y))
			northness := 0.0
			if a >= 0 {
				northness = math.Cos(a * math.Pi / 180) // 1 north, -1 south
			}
			m := 0.38 - 0.22*e - 0.18*s + 0.03*northness + sample(x, y)
			if m < 0.02 {
				m = 0.02
			}
			if m > 0.55 {
				m = 0.55
			}
			out.Set(x, y, float32(m))
		}
	}
	if elev.Geo != nil {
		geo := *elev.Geo
		out.Geo = &geo
	}
	return out, nil
}

// DrawSamples picks n distinct random pixels of truth and returns them as
// training/evaluation samples with covariates taken from covs.
func DrawSamples(truth *raster.Grid, covs []*raster.Grid, n int, seed uint64) ([]Sample, error) {
	w, h, err := covariateStack(append([]*raster.Grid{truth}, covs...))
	if err != nil {
		return nil, err
	}
	if n <= 0 || n > w*h {
		return nil, fmt.Errorf("somospie: cannot draw %d samples from %d pixels", n, w*h)
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	perm := rng.Perm(w * h)
	out := make([]Sample, 0, n)
	for _, idx := range perm {
		if len(out) == n {
			break
		}
		x, y := idx%w, idx/w
		v := truth.At(x, y)
		if math.IsNaN(float64(v)) {
			continue
		}
		cov := make([]float64, len(covs))
		skip := false
		for d, g := range covs {
			c := float64(g.At(x, y))
			if math.IsNaN(c) {
				skip = true
				break
			}
			cov[d] = c
		}
		if skip {
			continue
		}
		out = append(out, Sample{X: float64(x), Y: float64(y), Cov: cov, Value: float64(v)})
	}
	if len(out) < n {
		return nil, fmt.Errorf("somospie: only %d usable samples of %d requested (nodata)", len(out), n)
	}
	return out, nil
}

// Split partitions samples into train and test sets with the given test
// fraction, shuffled deterministically by seed.
func Split(samples []Sample, testFrac float64, seed uint64) (train, test []Sample, err error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, fmt.Errorf("somospie: test fraction %g outside (0,1)", testFrac)
	}
	rng := rand.New(rand.NewSource(int64(seed)))
	shuffled := append([]Sample(nil), samples...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	cut := int(float64(len(shuffled)) * testFrac)
	if cut == 0 || cut == len(shuffled) {
		return nil, nil, fmt.Errorf("somospie: split of %d samples at %g leaves an empty side", len(samples), testFrac)
	}
	return shuffled[cut:], shuffled[:cut], nil
}

// PredictGrid evaluates the model at every pixel, producing the
// fine-resolution soil-moisture product.
func PredictGrid(m Model, covs []*raster.Grid) (*raster.Grid, error) {
	w, h, err := covariateStack(covs)
	if err != nil {
		return nil, err
	}
	out := raster.New(w, h)
	cov := make([]float64, len(covs))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			nodata := false
			for d, g := range covs {
				c := float64(g.At(x, y))
				if math.IsNaN(c) {
					nodata = true
					break
				}
				cov[d] = c
			}
			if nodata {
				out.Set(x, y, float32(math.NaN()))
				continue
			}
			out.Set(x, y, float32(m.Predict(float64(x), float64(y), cov)))
		}
	}
	if covs[0].Geo != nil {
		geo := *covs[0].Geo
		out.Geo = &geo
	}
	return out, nil
}

// EvalReport summarises model accuracy on held-out samples.
type EvalReport struct {
	// Model is the evaluated model's name.
	Model string
	// N is the test sample count.
	N int
	// RMSE and MAE are the error metrics.
	RMSE, MAE float64
	// R2 is the coefficient of determination.
	R2 float64
}

// String renders the report row used by the experiment harness.
func (r EvalReport) String() string {
	return fmt.Sprintf("%-12s n=%d rmse=%.4f mae=%.4f r2=%.3f", r.Model, r.N, r.RMSE, r.MAE, r.R2)
}

// Evaluate fits nothing; it scores a fitted model on test samples.
func Evaluate(m Model, test []Sample) (EvalReport, error) {
	if len(test) == 0 {
		return EvalReport{}, fmt.Errorf("somospie: empty test set")
	}
	var sumSq, sumAbs, sumY, sumY2 float64
	for _, s := range test {
		pred := m.Predict(s.X, s.Y, s.Cov)
		d := pred - s.Value
		sumSq += d * d
		sumAbs += math.Abs(d)
		sumY += s.Value
		sumY2 += s.Value * s.Value
	}
	n := float64(len(test))
	meanY := sumY / n
	ssTot := sumY2 - n*meanY*meanY
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - sumSq/ssTot
	}
	return EvalReport{
		Model: m.Name(),
		N:     len(test),
		RMSE:  math.Sqrt(sumSq / n),
		MAE:   sumAbs / n,
		R2:    r2,
	}, nil
}
