package somospie

import (
	"math"
	"testing"
	"testing/quick"

	"nsdfgo/internal/dem"
	"nsdfgo/internal/geotiled"
	"nsdfgo/internal/raster"
)

// terrainFixture builds aligned elevation/slope/aspect grids and a
// synthetic truth field.
func terrainFixture(t *testing.T, w, h int, seed uint64) (elev, slope, aspect, truth *raster.Grid) {
	t.Helper()
	elev = dem.Scale(dem.FBM(w, h, seed, dem.DefaultFBM()), 100, 1800)
	var err error
	slope, err = geotiled.Compute(elev, geotiled.Slope, geotiled.Options{})
	if err != nil {
		t.Fatal(err)
	}
	aspect, err = geotiled.Compute(elev, geotiled.Aspect, geotiled.Options{})
	if err != nil {
		t.Fatal(err)
	}
	truth, err = SyntheticTruth(elev, slope, aspect, seed)
	if err != nil {
		t.Fatal(err)
	}
	return elev, slope, aspect, truth
}

func TestSyntheticTruthPhysicalRange(t *testing.T) {
	_, _, _, truth := terrainFixture(t, 64, 64, 1)
	lo, hi, ok := truth.MinMax()
	if !ok {
		t.Fatal("no data")
	}
	if lo < 0.02 || hi > 0.55 {
		t.Errorf("moisture range [%v,%v] outside physical bounds", lo, hi)
	}
}

func TestSyntheticTruthRespondsToTerrain(t *testing.T) {
	elev, slope, aspect, truth := terrainFixture(t, 96, 96, 2)
	_ = aspect
	// Correlation between moisture and elevation must be negative.
	corr := pearson(truth.Data, elev.Data)
	if corr >= -0.2 {
		t.Errorf("moisture-elevation correlation %v, want clearly negative", corr)
	}
	if c := pearson(truth.Data, slope.Data); c >= 0 {
		t.Errorf("moisture-slope correlation %v, want negative", c)
	}
}

func pearson(a, b []float32) float64 {
	n := float64(len(a))
	var sa, sb, saa, sbb, sab float64
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		sa += x
		sb += y
		saa += x * x
		sbb += y * y
		sab += x * y
	}
	cov := sab/n - sa/n*sb/n
	va := saa/n - sa/n*sa/n
	vb := sbb/n - sb/n*sb/n
	return cov / math.Sqrt(va*vb)
}

func TestDrawSamples(t *testing.T) {
	elev, slope, aspect, truth := terrainFixture(t, 48, 48, 3)
	samples, err := DrawSamples(truth, []*raster.Grid{elev, slope, aspect}, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 200 {
		t.Fatalf("drew %d", len(samples))
	}
	seen := map[[2]int]bool{}
	for _, s := range samples {
		key := [2]int{int(s.X), int(s.Y)}
		if seen[key] {
			t.Fatalf("duplicate sample at %v", key)
		}
		seen[key] = true
		if len(s.Cov) != 3 {
			t.Fatalf("covariates %d", len(s.Cov))
		}
		if s.Value != float64(truth.At(int(s.X), int(s.Y))) {
			t.Fatal("sample value does not match truth")
		}
	}
}

func TestDrawSamplesValidation(t *testing.T) {
	elev, slope, aspect, truth := terrainFixture(t, 8, 8, 3)
	covs := []*raster.Grid{elev, slope, aspect}
	if _, err := DrawSamples(truth, covs, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
	if _, err := DrawSamples(truth, covs, 65, 1); err == nil {
		t.Error("oversubscription accepted")
	}
	bad := raster.New(4, 4)
	if _, err := DrawSamples(truth, []*raster.Grid{bad}, 5, 1); err == nil {
		t.Error("misaligned covariates accepted")
	}
}

func TestSplit(t *testing.T) {
	samples := make([]Sample, 100)
	for i := range samples {
		samples[i].Value = float64(i)
	}
	train, test, err := Split(samples, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(test) != 20 || len(train) != 80 {
		t.Fatalf("split %d/%d", len(train), len(test))
	}
	// Deterministic by seed.
	train2, test2, _ := Split(samples, 0.2, 1)
	if train[0].Value != train2[0].Value || test[0].Value != test2[0].Value {
		t.Error("same-seed split differs")
	}
	if _, _, err := Split(samples, 0, 1); err == nil {
		t.Error("zero fraction accepted")
	}
	if _, _, err := Split(samples[:1], 0.2, 1); err == nil {
		t.Error("degenerate split accepted")
	}
}

func TestKNNExactOnTrainingPoints(t *testing.T) {
	// With K=1, predicting at a training covariate vector returns its value.
	samples := []Sample{
		{X: 0, Y: 0, Cov: []float64{100, 5, 90}, Value: 0.30},
		{X: 1, Y: 1, Cov: []float64{900, 30, 180}, Value: 0.10},
		{X: 2, Y: 2, Cov: []float64{400, 10, 0}, Value: 0.22},
	}
	m := &KNN{K: 1}
	if err := m.Fit(samples); err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if got := m.Predict(s.X, s.Y, s.Cov); math.Abs(got-s.Value) > 1e-9 {
			t.Errorf("predict at training point: %v, want %v", got, s.Value)
		}
	}
}

func TestKNNValidation(t *testing.T) {
	m := &KNN{}
	if err := m.Fit(nil); err == nil {
		t.Error("empty fit accepted")
	}
	bad := []Sample{{Cov: []float64{1}}, {Cov: []float64{1, 2}}}
	if err := m.Fit(bad); err == nil {
		t.Error("ragged covariates accepted")
	}
}

func TestIDWExactHitAndDistanceDecay(t *testing.T) {
	samples := []Sample{
		{X: 0, Y: 0, Value: 1},
		{X: 10, Y: 0, Value: 0},
	}
	m := &IDW{Power: 2}
	if err := m.Fit(samples); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(0, 0, nil); got != 1 {
		t.Errorf("exact hit = %v", got)
	}
	near := m.Predict(1, 0, nil)
	far := m.Predict(9, 0, nil)
	if near <= far {
		t.Errorf("IDW not decaying: near=%v far=%v", near, far)
	}
	if near < 0 || near > 1 {
		t.Errorf("IDW outside sample hull: %v", near)
	}
}

func TestLinearRecoversKnownCoefficients(t *testing.T) {
	// y = 2 + 3*c0 - 0.5*c1, exactly.
	var samples []Sample
	for i := 0; i < 50; i++ {
		c0 := float64(i % 7)
		c1 := float64(i % 11)
		samples = append(samples, Sample{Cov: []float64{c0, c1}, Value: 2 + 3*c0 - 0.5*c1})
	}
	m := &Linear{}
	if err := m.Fit(samples); err != nil {
		t.Fatal(err)
	}
	got := m.Predict(0, 0, []float64{4, 2})
	want := 2.0 + 12 - 1
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("ols predict = %v, want %v", got, want)
	}
}

func TestLinearValidation(t *testing.T) {
	m := &Linear{}
	if err := m.Fit(nil); err == nil {
		t.Error("empty fit accepted")
	}
	if err := m.Fit([]Sample{{Cov: []float64{1, 2}}}); err == nil {
		t.Error("underdetermined fit accepted")
	}
}

func TestSolveLinearSystem(t *testing.T) {
	a := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := solveLinearSystem(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("solution %v, want [1 3]", x)
	}
	if _, err := solveLinearSystem([][]float64{{0, 0}, {0, 0}}, []float64{1, 1}); err == nil {
		t.Error("singular system solved")
	}
}

func TestEndToEndInferenceBeatssMean(t *testing.T) {
	// The headline SOMOSPIE property: terrain-aware kNN beats the mean
	// predictor (R2 > 0) on held-out points.
	elev, slope, aspect, truth := terrainFixture(t, 96, 96, 11)
	covs := []*raster.Grid{elev, slope, aspect}
	samples, err := DrawSamples(truth, covs, 800, 5)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := Split(samples, 0.25, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Model{&KNN{K: 5}, &IDW{Power: 2}, &Linear{}} {
		if err := m.Fit(train); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		rep, err := Evaluate(m, test)
		if err != nil {
			t.Fatal(err)
		}
		if rep.R2 <= 0 {
			t.Errorf("%s: R2 = %v, no skill over the mean", m.Name(), rep.R2)
		}
		if rep.RMSE <= 0 || rep.RMSE > 0.2 {
			t.Errorf("%s: RMSE = %v outside plausible band", m.Name(), rep.RMSE)
		}
	}
}

func TestKNNOutperformsPureSpatialIDWOnTerrainDrivenField(t *testing.T) {
	// Moisture here is terrain-driven; covariate-space kNN should beat
	// spatial IDW — the comparison motivating SOMOSPIE's design.
	elev, slope, aspect, truth := terrainFixture(t, 96, 96, 21)
	covs := []*raster.Grid{elev, slope, aspect}
	samples, err := DrawSamples(truth, covs, 600, 6)
	if err != nil {
		t.Fatal(err)
	}
	train, test, err := Split(samples, 0.25, 4)
	if err != nil {
		t.Fatal(err)
	}
	knn := &KNN{K: 5}
	knn.Fit(train)
	idw := &IDW{Power: 2}
	idw.Fit(train)
	knnRep, _ := Evaluate(knn, test)
	idwRep, _ := Evaluate(idw, test)
	if knnRep.RMSE >= idwRep.RMSE {
		t.Errorf("kNN RMSE %v not below IDW RMSE %v on terrain-driven field", knnRep.RMSE, idwRep.RMSE)
	}
}

func TestPredictGrid(t *testing.T) {
	elev, slope, aspect, truth := terrainFixture(t, 48, 48, 31)
	covs := []*raster.Grid{elev, slope, aspect}
	samples, err := DrawSamples(truth, covs, 400, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := &KNN{K: 5}
	if err := m.Fit(samples); err != nil {
		t.Fatal(err)
	}
	pred, err := PredictGrid(m, covs)
	if err != nil {
		t.Fatal(err)
	}
	if pred.W != 48 || pred.H != 48 {
		t.Fatalf("prediction dims %dx%d", pred.W, pred.H)
	}
	// Gridded prediction must correlate strongly with truth.
	if c := pearson(pred.Data, truth.Data); c < 0.6 {
		t.Errorf("prediction-truth correlation %v", c)
	}
}

func TestPredictGridPropagatesNodata(t *testing.T) {
	elev, slope, aspect, truth := terrainFixture(t, 16, 16, 41)
	covs := []*raster.Grid{elev, slope, aspect}
	samples, _ := DrawSamples(truth, covs, 50, 2)
	m := &KNN{K: 3}
	m.Fit(samples)
	elev.Set(5, 5, float32(math.NaN()))
	pred, err := PredictGrid(m, covs)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(pred.At(5, 5))) {
		t.Error("nodata pixel predicted")
	}
}

func TestEvaluateValidation(t *testing.T) {
	m := &KNN{K: 1}
	m.Fit([]Sample{{Cov: []float64{1}, Value: 1}})
	if _, err := Evaluate(m, nil); err == nil {
		t.Error("empty test set accepted")
	}
}

func TestKNNPredictionWithinHullProperty(t *testing.T) {
	// A weighted mean of training values can never leave their range.
	samples := []Sample{
		{Cov: []float64{0, 0}, Value: 0.1},
		{Cov: []float64{1, 0}, Value: 0.2},
		{Cov: []float64{0, 1}, Value: 0.3},
		{Cov: []float64{1, 1}, Value: 0.4},
	}
	m := &KNN{K: 3}
	if err := m.Fit(samples); err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		v := m.Predict(0, 0, []float64{math.Mod(math.Abs(a), 2), math.Mod(math.Abs(b), 2)})
		return v >= 0.1-1e-9 && v <= 0.4+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKNNPredictGrid(b *testing.B) {
	elev := dem.Scale(dem.FBM(64, 64, 1, dem.DefaultFBM()), 100, 1800)
	slope, _ := geotiled.Compute(elev, geotiled.Slope, geotiled.Options{})
	aspect, _ := geotiled.Compute(elev, geotiled.Aspect, geotiled.Options{})
	truth, _ := SyntheticTruth(elev, slope, aspect, 1)
	covs := []*raster.Grid{elev, slope, aspect}
	samples, _ := DrawSamples(truth, covs, 300, 2)
	m := &KNN{K: 5}
	if err := m.Fit(samples); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PredictGrid(m, covs); err != nil {
			b.Fatal(err)
		}
	}
}
