package dashboard

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nsdfgo/internal/dem"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/query"
	"nsdfgo/internal/telemetry"
)

// TestMetricsEndpointBreadth drives the dashboard the way a tutorial
// session would — browse, render, re-render — then scrapes /metrics and
// checks the acceptance bar: at least 12 distinct series spanning idx
// block I/O, cache effectiveness, and HTTP latency with percentiles.
func TestMetricsEndpointBreadth(t *testing.T) {
	meta, err := idx.NewMeta([]int{64, 64}, []idx.Field{{Name: "elevation", Type: idx.Float32, Codec: "zlib"}})
	if err != nil {
		t.Fatal(err)
	}
	meta.BitsPerBlock = 8
	ds, err := idx.Create(context.Background(), idx.NewMemBackend(), meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteGrid(context.Background(), "elevation", 0, dem.Scale(dem.FBM(64, 64, 3, dem.DefaultFBM()), 0, 1000)); err != nil {
		t.Fatal(err)
	}

	s := NewServer()
	reg := telemetry.NewRegistry()
	s.EnableTelemetry(reg)
	s.Register("demo", query.New(ds, 1<<20))
	srv := httptest.NewServer(s)
	defer srv.Close()

	for _, path := range []string{
		"/api/datasets",
		"/api/render?dataset=demo&field=elevation", // cold read
		"/api/render?dataset=demo&field=elevation", // warm: cache hits
		"/api/missing", // 404: a second status class
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(body)

	series := 0
	for _, line := range strings.Split(exposition, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		series++
	}
	if series < 12 {
		t.Errorf("/metrics exposes %d series, acceptance bar is 12:\n%s", series, exposition)
	}

	// Spot-check each dimension the issue names.
	for _, want := range []string{
		`nsdf_idx_blocks_read_total{dataset="demo"}`,
		`nsdf_idx_blocks_cached_total{dataset="demo"}`,
		`nsdf_cache_hits_total{cache="demo"}`,
		`nsdf_cache_misses_total{cache="demo"}`,
		`nsdf_http_requests_total{class="2xx",route="/api/render",service="dashboard"} 2`,
		`nsdf_http_requests_total{class="4xx",route="other",service="dashboard"} 1`,
		`nsdf_http_request_seconds{service="dashboard",quantile="0.95"}`,
		`nsdf_idx_read_seconds{dataset="demo",quantile="0.99"}`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The warm render must have produced cache hits visible in the scrape.
	if reg.SumFamily("nsdf_cache_hits_total") == 0 {
		t.Error("no cache hits recorded after a repeated render")
	}
}
