package dashboard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"nsdfgo/internal/telemetry/flight"
	"nsdfgo/internal/telemetry/trace"
)

// DefaultFederateTimeout bounds each per-peer trace fetch during
// federated assembly when EnableFederation is given a non-positive
// timeout. A dead peer costs at most this long and degrades the answer
// instead of failing it.
const DefaultFederateTimeout = 2 * time.Second

// EnableFederation teaches /debug/traces?federate=1 to assemble
// cluster-wide traces: the handler fans a trace-ID lookup out to every
// peer's /debug/traces endpoint, merges the span sets it gets back with
// the dashboard's own retained trace, and renders one stitched tree.
//
// peers maps node name -> debug base URL (scheme://host:port, no
// trailing path); timeout bounds each per-peer fetch
// (DefaultFederateTimeout if <= 0). Peers that fail to answer within
// the timeout are reported in the response's failed list rather than
// failing the assembly.
func (s *Server) EnableFederation(peers map[string]string, timeout time.Duration) {
	if timeout <= 0 {
		timeout = DefaultFederateTimeout
	}
	cp := make(map[string]string, len(peers))
	for name, base := range peers {
		cp[name] = base
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peers = cp
	s.fedTimeout = timeout
	s.fedClient = &http.Client{}
}

// EnableFlightRecorder serves fl's anomaly ring at
// /debug/flightrecorder.
func (s *Server) EnableFlightRecorder(fl *flight.Recorder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flight = fl
}

// FederatedTrace is the JSON envelope /debug/traces?federate=1 answers
// with: the merged trace plus the assembly's provenance, so a partial
// answer (dead peer, evicted trace) is visibly partial.
type FederatedTrace struct {
	// Trace is the merged cluster-wide trace (trace.Merge).
	Trace *trace.TraceData `json:"trace"`
	// Nodes lists the nodes whose spans made it into the merge.
	Nodes []string `json:"nodes"`
	// Failed lists peers that did not answer within the per-node
	// timeout, with the reason.
	Failed map[string]string `json:"failed,omitempty"`
}

// AssembleTrace gathers every node's view of trace id — the dashboard's
// own collector plus all federation peers, fetched concurrently with
// the per-node timeout — and merges them into one tree. Peers that
// fail are recorded in Failed; the merge proceeds with whatever
// arrived. Returns nil when no node retains the trace.
func (s *Server) AssembleTrace(ctx context.Context, id string) *FederatedTrace {
	s.mu.RLock()
	traces, peers, timeout, client := s.traces, s.peers, s.fedTimeout, s.fedClient
	s.mu.RUnlock()

	out := &FederatedTrace{Failed: make(map[string]string)}
	var parts []trace.NodeTrace
	if traces != nil {
		if t := traces.Find(id); t != nil {
			parts = append(parts, trace.NodeTrace{Node: t.Node, Data: t})
		}
	}

	type peerResult struct {
		node string
		data *trace.TraceData
		err  error
	}
	results := make(chan peerResult, len(peers))
	var wg sync.WaitGroup
	for name, base := range peers {
		wg.Add(1)
		go func(name, base string) {
			defer wg.Done()
			data, err := fetchPeerTrace(ctx, client, base, id, timeout)
			results <- peerResult{node: name, data: data, err: err}
		}(name, base)
	}
	wg.Wait()
	close(results)
	for res := range results {
		switch {
		case res.err != nil:
			out.Failed[res.node] = res.err.Error()
		case res.data != nil:
			parts = append(parts, trace.NodeTrace{Node: res.node, Data: res.data})
		}
	}
	if len(parts) == 0 {
		return nil
	}
	out.Trace = trace.Merge(id, parts)
	for _, p := range parts {
		node := p.Node
		if node == "" && p.Data != nil {
			node = p.Data.Node
		}
		out.Nodes = append(out.Nodes, node)
	}
	sort.Strings(out.Nodes)
	return out
}

// fetchPeerTrace asks one peer's /debug/traces for a single trace ID,
// bounded by timeout. A peer that does not retain the trace returns
// (nil, nil): absence is normal — the request may never have touched
// that node — and must not count as a failed peer.
func fetchPeerTrace(ctx context.Context, client *http.Client, base, id string, timeout time.Duration) (*trace.TraceData, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	u := base + "/debug/traces?format=json&trace=" + url.QueryEscape(id)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var traces []*trace.TraceData
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		return nil, fmt.Errorf("decode: %w", err)
	}
	if len(traces) == 0 {
		return nil, nil
	}
	return traces[0], nil
}

// handleFederatedTrace answers /debug/traces?federate=1&trace=<id>.
func (s *Server) handleFederatedTrace(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id := q.Get("trace")
	if id == "" {
		id = q.Get("id")
	}
	if id == "" {
		http.Error(w, "dashboard: federate=1 needs trace=<id>", http.StatusBadRequest)
		return
	}
	fed := s.AssembleTrace(r.Context(), id)
	if fed == nil {
		http.Error(w, "dashboard: trace not found on any node", http.StatusNotFound)
		return
	}
	if q.Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(fed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	trace.WriteText(w, fed.Trace)
	fmt.Fprintf(w, "assembled from %d node(s): %v\n", len(fed.Nodes), fed.Nodes)
	for node, reason := range fed.Failed {
		fmt.Fprintf(w, "peer %s failed: %s\n", node, reason)
	}
}
