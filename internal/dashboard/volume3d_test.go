package dashboard

import (
	"context"
	"encoding/json"
	"image/png"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nsdfgo/internal/idx"
	"nsdfgo/internal/query"
)

// newVolumeServer serves one 32x16x8 3D dataset whose value encodes its
// coordinates (x + 100y + 10000z).
func newVolumeServer(t *testing.T) *httptest.Server {
	t.Helper()
	meta, err := idx.NewMeta([]int{32, 16, 8}, []idx.Field{{Name: "density", Type: idx.Float32}})
	if err != nil {
		t.Fatal(err)
	}
	meta.BitsPerBlock = 8
	ds, err := idx.Create(context.Background(), idx.NewMemBackend(), meta)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float32, 32*16*8)
	for z := 0; z < 8; z++ {
		for y := 0; y < 16; y++ {
			for x := 0; x < 32; x++ {
				data[(z*16+y)*32+x] = float32(x + 100*y + 10000*z)
			}
		}
	}
	if err := ds.WriteVolume(context.Background(), "density", 0, data); err != nil {
		t.Fatal(err)
	}
	s := NewServer()
	s.Register("vol", query.New(ds, 1<<20))
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return srv
}

func TestVolumeDatasetMetadataReportsDepth(t *testing.T) {
	srv := newVolumeServer(t)
	resp, body := get(t, srv.URL+"/api/datasets")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var infos []DatasetInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if infos[0].Depth != 8 || infos[0].Width != 32 || infos[0].Height != 16 {
		t.Errorf("info %+v", infos[0])
	}
}

func TestVolumeRenderSlice(t *testing.T) {
	srv := newVolumeServer(t)
	resp, body := get(t, srv.URL+"/api/render?dataset=vol&z=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", resp.Status, body)
	}
	img, err := png.Decode(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 32 || img.Bounds().Dy() != 16 {
		t.Errorf("slice image %v", img.Bounds())
	}
}

func TestVolumeDataSliceValues(t *testing.T) {
	srv := newVolumeServer(t)
	resp, body := get(t, srv.URL+"/api/data?dataset=vol&z=5&x0=2&y0=3&x1=10&y1=7")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", resp.Status, body)
	}
	g, err := DecodeNPY(body)
	if err != nil {
		t.Fatal(err)
	}
	if g.W != 8 || g.H != 4 {
		t.Fatalf("region %dx%d", g.W, g.H)
	}
	// Value encodes coordinates: (x=2,y=3,z=5) -> 2 + 300 + 50000.
	if g.At(0, 0) != 50302 {
		t.Errorf("value %v, want 50302", g.At(0, 0))
	}
}

func TestVolumeStatsPerSliceDiffer(t *testing.T) {
	srv := newVolumeServer(t)
	mean := func(z string) float64 {
		resp, body := get(t, srv.URL+"/api/stats?dataset=vol&z="+z)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %s", resp.Status)
		}
		var out map[string]float64
		json.Unmarshal(body, &out)
		return out["mean"]
	}
	if m0, m7 := mean("0"), mean("7"); m7-m0 != 70000 {
		t.Errorf("slice means %v and %v; want exactly 70000 apart", m0, m7)
	}
}

func TestVolumeZValidation(t *testing.T) {
	srv := newVolumeServer(t)
	for _, bad := range []string{"z=-1", "z=8", "z=x"} {
		resp, _ := get(t, srv.URL+"/api/render?dataset=vol&"+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s", bad, resp.Status)
		}
	}
	// Default z=0 works.
	resp, _ := get(t, srv.URL+"/api/render?dataset=vol")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("default z status %s", resp.Status)
	}
}

func TestVolumeCoarseLevelSlice(t *testing.T) {
	srv := newVolumeServer(t)
	resp, body := get(t, srv.URL+"/api/render?dataset=vol&z=4&level=8")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", resp.Status, body)
	}
	img, err := png.Decode(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() >= 32 {
		t.Errorf("coarse slice %v; expected subsampled", img.Bounds())
	}
}

func TestVolumeExportTIFF(t *testing.T) {
	srv := newVolumeServer(t)
	resp, _ := get(t, srv.URL+"/api/export.tif?dataset=vol&z=2")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("3D TIFF export status %s", resp.Status)
	}
}

func Test2DDatasetsIgnoreZ(t *testing.T) {
	_, srv := newTestServer(t)
	resp, _ := get(t, srv.URL+"/api/render?dataset=tennessee_30m&z=999")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("2D render with z param status %s", resp.Status)
	}
}
