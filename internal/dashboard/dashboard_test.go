package dashboard

import (
	"context"
	"encoding/json"
	"image/png"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"nsdfgo/internal/colormap"
	"nsdfgo/internal/dem"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/query"
	"nsdfgo/internal/raster"
)

// newTestServer builds a dashboard over one 64x64 two-field, 3-timestep
// dataset.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	meta, err := idx.NewMeta([]int{64, 64}, []idx.Field{
		{Name: "elevation", Type: idx.Float32, Codec: "zlib"},
		{Name: "hillshade", Type: idx.Float32, Codec: "zlib"},
	})
	if err != nil {
		t.Fatal(err)
	}
	meta.Timesteps = 3
	meta.BitsPerBlock = 8
	ds, err := idx.Create(context.Background(), idx.NewMemBackend(), meta)
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range []string{"elevation", "hillshade"} {
		for ts := 0; ts < 3; ts++ {
			g := dem.Scale(dem.FBM(64, 64, uint64(100*fi+ts+1), dem.DefaultFBM()), 0, 1000)
			if err := ds.WriteGrid(context.Background(), f, ts, g); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := NewServer()
	s.Register("tennessee_30m", query.New(ds, 1<<20))
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestDatasetsEndpoint(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/api/datasets")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var infos []DatasetInfo
	if err := json.Unmarshal(body, &infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 {
		t.Fatalf("%d datasets", len(infos))
	}
	d := infos[0]
	if d.Name != "tennessee_30m" || d.Width != 64 || d.Timesteps != 3 {
		t.Errorf("info %+v", d)
	}
	if len(d.Fields) != 2 || len(d.Palettes) == 0 {
		t.Errorf("fields %v palettes %v", d.Fields, d.Palettes)
	}
}

func TestRenderReturnsPNG(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/api/render?dataset=tennessee_30m&field=elevation&t=0&palette=terrain")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", resp.Status, body)
	}
	img, err := png.Decode(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 64 || img.Bounds().Dy() != 64 {
		t.Errorf("image %v", img.Bounds())
	}
	if resp.Header.Get("X-NSDF-Level") == "" {
		t.Error("no level header")
	}
}

func TestRenderCoarseLevelShrinksImage(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/api/render?dataset=tennessee_30m&level=6")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", resp.Status, body)
	}
	img, err := png.Decode(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() >= 64 {
		t.Errorf("coarse render is %v; expected subsampled", img.Bounds())
	}
}

func TestRenderSubregionAndManualRange(t *testing.T) {
	_, srv := newTestServer(t)
	resp, _ := get(t, srv.URL+"/api/render?dataset=tennessee_30m&x0=10&y0=10&x1=30&y1=20&min=0&max=1000")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
}

func TestRenderValidation(t *testing.T) {
	_, srv := newTestServer(t)
	cases := []string{
		"/api/render?dataset=nope",
		"/api/render?dataset=tennessee_30m&palette=nope",
		"/api/render?dataset=tennessee_30m&t=99",
		"/api/render?dataset=tennessee_30m&level=99",
		"/api/render?dataset=tennessee_30m&x0=abc",
		"/api/render?dataset=tennessee_30m&min=1&max=x",
	}
	for _, c := range cases {
		resp, _ := get(t, srv.URL+c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s, want 400", c, resp.Status)
		}
	}
}

func TestDataEndpointServesNPY(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/api/data?dataset=tennessee_30m&field=elevation&x0=8&y0=8&x1=24&y1=16")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	g, err := DecodeNPY(body)
	if err != nil {
		t.Fatal(err)
	}
	if g.W != 16 || g.H != 8 {
		t.Errorf("region %dx%d, want 16x8", g.W, g.H)
	}
}

func TestScriptEndpoint(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/api/script?dataset=tennessee_30m&field=elevation&x0=1&y0=2&x1=3&y1=4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	s := string(body)
	for _, want := range []string{"import numpy", "x0=1", "y1=4", "/api/data"} {
		if !strings.Contains(s, want) {
			t.Errorf("script missing %q:\n%s", want, s)
		}
	}
}

func TestSliceEndpoints(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/api/slice?dataset=tennessee_30m&axis=h&index=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", resp.Status, body)
	}
	var out struct {
		Axis   string    `json:"axis"`
		Values []float32 `json:"values"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Axis != "h" || len(out.Values) != 64 {
		t.Errorf("h slice %s with %d values", out.Axis, len(out.Values))
	}
	resp, body = get(t, srv.URL+"/api/slice?dataset=tennessee_30m&axis=v&index=63")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("v slice status %s", resp.Status)
	}
	json.Unmarshal(body, &out)
	if len(out.Values) != 64 {
		t.Errorf("v slice %d values", len(out.Values))
	}
	// Validation.
	for _, bad := range []string{"axis=z&index=0", "axis=h&index=64", "axis=v&index=-1", "axis=h&index=x"} {
		resp, _ := get(t, srv.URL+"/api/slice?dataset=tennessee_30m&"+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s", bad, resp.Status)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/api/stats?dataset=tennessee_30m&x0=0&y0=0&x1=32&y1=32")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var out map[string]float64
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out["n"] != 32*32 {
		t.Errorf("n = %v", out["n"])
	}
	if out["min"] > out["mean"] || out["mean"] > out["max"] {
		t.Errorf("stat ordering: %+v", out)
	}
}

func TestPlaybackEndpoint(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/api/playback?dataset=tennessee_30m&fps=4")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	var out struct {
		IntervalMs int      `json:"interval_ms"`
		Frames     []string `json:"frames"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.IntervalMs != 250 {
		t.Errorf("interval %d", out.IntervalMs)
	}
	if len(out.Frames) != 3 {
		t.Errorf("%d frames", len(out.Frames))
	}
	// Frames must be fetchable.
	resp, _ = get(t, srv.URL+out.Frames[2])
	if resp.StatusCode != http.StatusOK {
		t.Errorf("frame fetch status %s", resp.Status)
	}
	// Speed control validation.
	resp, _ = get(t, srv.URL+"/api/playback?dataset=tennessee_30m&fps=0")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("fps=0 status %s", resp.Status)
	}
}

func TestIndexServesUI(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	s := string(body)
	for _, want := range []string{"NSDF Dashboard", "dataset", "palette", "Resolution", "Play"} {
		if !strings.Contains(s, want) {
			t.Errorf("UI missing %q", want)
		}
	}
}

func TestUnknownPath404(t *testing.T) {
	_, srv := newTestServer(t)
	resp, _ := get(t, srv.URL+"/api/unknown")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %s", resp.Status)
	}
}

func TestNPYRoundTrip(t *testing.T) {
	g := raster.New(7, 3)
	for i := range g.Data {
		g.Data[i] = float32(i) * 1.25
	}
	g.Data[5] = float32(math.NaN())
	payload, err := EncodeNPY(g)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload[:6]) != "\x93NUMPY" {
		t.Error("bad magic")
	}
	// Header block must be 64-byte aligned.
	if (10+int(payload[8])+int(payload[9])<<8)%64 != 0 {
		t.Error("npy header not 64-byte aligned")
	}
	back, err := DecodeNPY(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(g, back) {
		t.Error("npy round trip mismatch")
	}
}

func TestNPYValidation(t *testing.T) {
	if _, err := EncodeNPY(&raster.Grid{W: 2, H: 2, Data: make([]float32, 3)}); err == nil {
		t.Error("malformed grid accepted")
	}
	if _, err := DecodeNPY([]byte("junk")); err == nil {
		t.Error("junk decoded")
	}
	g := raster.New(2, 2)
	payload, _ := EncodeNPY(g)
	payload[6] = 2 // version
	if _, err := DecodeNPY(payload); err == nil {
		t.Error("future version accepted")
	}
}

func TestRenderImageNaNTransparent(t *testing.T) {
	g := raster.New(2, 1)
	g.Data[0] = 0.5
	g.Data[1] = float32(math.NaN())
	pal, _ := colormap.Lookup("viridis")
	img := RenderImage(g, pal, colormap.Range{Min: 0, Max: 1})
	if _, _, _, a := img.At(1, 0).RGBA(); a != 0 {
		t.Error("NaN pixel not transparent")
	}
	if _, _, _, a := img.At(0, 0).RGBA(); a == 0 {
		t.Error("finite pixel transparent")
	}
}

func BenchmarkRenderTile(b *testing.B) {
	meta, _ := idx.NewMeta([]int{256, 256}, []idx.Field{{Name: "elevation", Type: idx.Float32, Codec: "zlib"}})
	meta.BitsPerBlock = 12
	ds, _ := idx.Create(context.Background(), idx.NewMemBackend(), meta)
	g := dem.Scale(dem.FBM(256, 256, 1, dem.DefaultFBM()), 0, 1000)
	if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		b.Fatal(err)
	}
	s := NewServer()
	s.Register("bench", query.New(ds, 1<<22))
	srv := httptest.NewServer(s)
	defer srv.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(srv.URL + "/api/render?dataset=bench&x0=64&y0=64&x1=192&y1=192")
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %s", resp.Status)
		}
	}
}
