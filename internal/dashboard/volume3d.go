package dashboard

import (
	"fmt"
	"net/http"
	"strconv"

	"nsdfgo/internal/idx"
	"nsdfgo/internal/query"
	"nsdfgo/internal/raster"
)

// The dashboard serves 3D datasets by slicing: every 2D endpoint
// (render, data, stats, export) accepts a `z` query parameter selecting
// the XY plane. 2D datasets ignore `z`.

// readRegion evaluates a request against a 2D or 3D dataset, returning a
// 2D grid either way. For 3D datasets the request's box is interpreted in
// the XY plane of slice z (clamped to the dataset depth and aligned to
// the level's Z lattice). The HTTP request's context bounds all block
// I/O: when the client disconnects, in-flight fetches abort.
func (s *Server) readRegion(e *query.Engine, req query.Request, r *http.Request) (*raster.Grid, query.Result, error) {
	ds := e.Dataset()
	if len(ds.Meta.Dims) == 2 {
		res, err := e.Read(r.Context(), req)
		if err != nil {
			return nil, query.Result{}, err
		}
		return res.Grid, res, nil
	}
	// 3D: slice at z.
	z := 0
	if zs := r.URL.Query().Get("z"); zs != "" {
		v, err := strconv.Atoi(zs)
		if err != nil {
			return nil, query.Result{}, fmt.Errorf("dashboard: bad z=%q", zs)
		}
		z = v
	}
	depth := ds.Meta.Dims[2]
	if z < 0 || z >= depth {
		return nil, query.Result{}, fmt.Errorf("dashboard: slice z=%d outside [0,%d)", z, depth)
	}
	level := req.Level
	switch level {
	case query.LevelFull, query.LevelAuto:
		level = ds.Meta.MaxLevel()
	}
	if level < 0 || level > ds.Meta.MaxLevel() {
		return nil, query.Result{}, fmt.Errorf("dashboard: level %d outside [0,%d]", level, ds.Meta.MaxLevel())
	}
	// Align z down to the level's Z lattice so the slice is non-empty.
	strides := ds.Meta.Bits.LevelStrides(level)
	za := z / strides[2] * strides[2]
	box := idx.Box3{
		X0: req.Box.X0, Y0: req.Box.Y0, Z0: za,
		X1: req.Box.X1, Y1: req.Box.Y1, Z1: za + 1,
	}
	if box.X1 == 0 && box.Y1 == 0 { // zero box means full XY extent
		box.X1, box.Y1 = ds.Meta.Dims[0], ds.Meta.Dims[1]
	}
	vol, stats, err := ds.ReadBox3D(r.Context(), req.Field, req.Time, ds.Clip3(box), level)
	if err != nil {
		return nil, query.Result{}, err
	}
	g := raster.New(vol.Dims[0], vol.Dims[1])
	copy(g.Data, vol.Data)
	res := query.Result{Level: level, Grid: g, Stats: *stats,
		TransferBytes: int64(stats.Samples) * 4}
	return g, res, nil
}
