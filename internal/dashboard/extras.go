package dashboard

import (
	"image"
	"image/png"
	"math"
	"net/http"
	"strconv"

	"nsdfgo/internal/colormap"
	"nsdfgo/internal/metrics"
	"nsdfgo/internal/tiff"
)

// extraRoutes dispatches the secondary dashboard endpoints. Returns false
// when the path is not handled here.
func (s *Server) extraRoutes(w http.ResponseWriter, r *http.Request) bool {
	switch r.URL.Path {
	case "/api/legend":
		s.handleLegend(w, r)
	case "/api/export.tif":
		s.handleExportTIFF(w, r)
	case "/api/compare":
		s.handleCompare(w, r)
	case "/api/probe":
		s.handleProbe(w, r)
	case "/api/histogram":
		s.handleHistogram(w, r)
	default:
		return false
	}
	return true
}

// handleHistogram serves a fixed-bin histogram of the selected region —
// the distributional view behind "ad hoc analysis on selected
// subregions". Non-finite samples land in a separate nodata counter.
func (s *Server) handleHistogram(w http.ResponseWriter, r *http.Request) {
	e, req, err := s.regionRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	bins := 32
	if bs := r.URL.Query().Get("bins"); bs != "" {
		v, err := strconv.Atoi(bs)
		if err != nil || v < 2 || v > 1024 {
			http.Error(w, "dashboard: bins outside [2,1024]", http.StatusBadRequest)
			return
		}
		bins = v
	}
	grid, res, err := s.readRegion(e, req, r)
	if err != nil {
		readError(w, err)
		return
	}
	lo, hi, ok := grid.MinMax()
	counts := make([]int, bins)
	nodata := 0
	if ok && hi > lo {
		scale := float64(bins) / float64(hi-lo)
		for _, v := range grid.Data {
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				nodata++
				continue
			}
			idx := int((f - float64(lo)) * scale)
			if idx >= bins {
				idx = bins - 1
			}
			counts[idx]++
		}
	} else {
		for _, v := range grid.Data {
			f := float64(v)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				nodata++
			} else {
				counts[0]++
			}
		}
		hi = lo + 1
	}
	writeJSON(w, map[string]any{
		"level": res.Level, "bins": bins,
		"min": lo, "max": hi,
		"counts": counts, "nodata": nodata,
	})
}

// handleProbe serves one pixel's value across every timestep — "the time
// slider is a critical tool for navigating through temporal data,
// enabling users to observe changes and trends over time".
func (s *Server) handleProbe(w http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	e, err := s.engine(qv.Get("dataset"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	meta := e.Dataset().Meta
	field := qv.Get("field")
	if field == "" && len(meta.Fields) > 0 {
		field = meta.Fields[0].Name
	}
	x, errX := strconv.Atoi(qv.Get("x"))
	y, errY := strconv.Atoi(qv.Get("y"))
	if errX != nil || errY != nil {
		http.Error(w, "dashboard: probe needs integer x and y", http.StatusBadRequest)
		return
	}
	values, err := e.ProbePoint(r.Context(), field, x, y)
	if err != nil {
		readError(w, err)
		return
	}
	writeJSON(w, map[string]any{"field": field, "x": x, "y": y, "values": values})
}

// handleLegend serves a horizontal colorbar PNG for a palette, used by
// the UI to label the colormap range.
func (s *Server) handleLegend(w http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	name := qv.Get("palette")
	if name == "" {
		name = "viridis"
	}
	palette, err := colormap.Lookup(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	width := 256
	if ws := qv.Get("width"); ws != "" {
		v, err := strconv.Atoi(ws)
		if err != nil || v < 8 || v > 4096 {
			http.Error(w, "dashboard: legend width outside [8,4096]", http.StatusBadRequest)
			return
		}
		width = v
	}
	const height = 24
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	for x := 0; x < width; x++ {
		c := palette.At(float64(x) / float64(width-1))
		for y := 0; y < height; y++ {
			img.SetRGBA(x, y, c)
		}
	}
	w.Header().Set("Content-Type", "image/png")
	png.Encode(w, img)
}

// handleExportTIFF serves the selected region as a GeoTIFF — the
// "download for further analysis" path for users whose tooling speaks
// TIFF rather than NumPy.
func (s *Server) handleExportTIFF(w http.ResponseWriter, r *http.Request) {
	e, req, err := s.regionRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	grid, _, err := s.readRegion(e, req, r)
	if err != nil {
		readError(w, err)
		return
	}
	w.Header().Set("Content-Type", "image/tiff")
	w.Header().Set("Content-Disposition", `attachment; filename="nsdf_selection.tif"`)
	if err := tiff.Encode(w, tiff.FromGrid(grid), tiff.EncodeOptions{Compression: tiff.CompressionDeflate}); err != nil {
		// Headers are sent; nothing more to do than drop the connection.
		return
	}
}

// handleCompare serves side-by-side metrics of two fields over the same
// region — the ad-hoc analysis behind "explore multiple datasets
// simultaneously" (e.g. prediction vs truth in the SOMOSPIE scenario).
func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	e, req, err := s.regionRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fieldB := r.URL.Query().Get("field_b")
	if fieldB == "" {
		http.Error(w, "dashboard: compare needs field_b", http.StatusBadRequest)
		return
	}
	gridA, resA, err := s.readRegion(e, req, r)
	if err != nil {
		readError(w, err)
		return
	}
	reqB := req
	reqB.Field = fieldB
	reqB.Level = resA.Level // identical lattice
	gridB, _, err := s.readRegion(e, reqB, r)
	if err != nil {
		readError(w, err)
		return
	}
	rep, err := metrics.Compare(gridA.Data, gridB.Data, gridA.W, gridA.H)
	if err != nil {
		s.internalError(w, r, err)
		return
	}
	writeJSON(w, map[string]any{
		"field_a": req.Field, "field_b": fieldB, "level": resA.Level,
		"n": rep.N, "rmse": rep.RMSE, "mae": rep.MAE, "max": rep.MaxAbs,
		"psnr": jsonSafe(rep.PSNR), "ssim": rep.SSIM, "identical": rep.Identical,
	})
}

// jsonSafe maps ±Inf (e.g. PSNR of identical rasters) to a large
// sentinel, since JSON has no Inf.
func jsonSafe(v float64) float64 {
	const bound = 1e9
	if v > bound {
		return bound
	}
	if v < -bound {
		return -bound
	}
	return v
}
