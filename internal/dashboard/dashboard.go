// Package dashboard implements the NSDF dashboard service of tutorial
// step 4 (Fig. 7): interactive, progressive visualization and analysis of
// IDX datasets over HTTP. It provides the features the paper enumerates —
// a dataset dropdown, per-dataset variable switching, a time slider,
// resolution sliders, horizontal/vertical slices, a snipping tool that
// returns a NumPy array or a Python extraction script, selectable color
// palettes with manual or dynamic ranges, and playback metadata for
// automated walkthroughs.
package dashboard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"image"
	"image/png"
	"log/slog"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"nsdfgo/internal/colormap"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/query"
	"nsdfgo/internal/raster"
	"nsdfgo/internal/telemetry"
	"nsdfgo/internal/telemetry/flight"
	"nsdfgo/internal/telemetry/trace"
)

// Server is the dashboard HTTP service. Register datasets, then serve.
type Server struct {
	mu      sync.RWMutex
	engines map[string]*query.Engine
	reg     *telemetry.Registry
	tel     *telemetry.HTTPMetrics
	traces  *trace.Collector
	logger  *slog.Logger
	flight  *flight.Recorder

	// Federation state (EnableFederation): peer debug endpoints the
	// dashboard pulls remote spans from when /debug/traces?federate=1
	// assembles a cluster-wide trace.
	peers      map[string]string
	fedTimeout time.Duration
	fedClient  *http.Client
}

// NewServer returns an empty dashboard.
func NewServer() *Server {
	return &Server{engines: make(map[string]*query.Engine)}
}

// EnableTelemetry attaches a metrics registry: requests are counted per
// route and status class, timed into a latency histogram, and the
// registry's exposition is served at /metrics. Datasets registered after
// this call are instrumented automatically (block I/O and cache series
// labelled with the dataset name).
func (s *Server) EnableTelemetry(reg *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = reg
	s.tel = telemetry.NewHTTPMetrics(reg, "dashboard")
	for name, e := range s.engines {
		e.Instrument(reg, name)
	}
}

// SetLogger routes the server's own log records (internal server
// errors, with their trace IDs) to l; nil keeps slog.Default().
func (s *Server) SetLogger(l *slog.Logger) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logger = l
}

// log returns the configured logger, defaulting to slog.Default().
func (s *Server) log() *slog.Logger {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.logger != nil {
		return s.logger
	}
	return slog.Default()
}

// EnableTracing serves the collector's retained request traces at
// /debug/traces. The collector itself is wired into requests by the
// telemetry.WithTracing middleware the cmd server wraps around this
// handler; the dashboard only exposes the viewing endpoint.
func (s *Server) EnableTracing(col *trace.Collector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traces = col
}

// Register adds a dataset under the given display name (the dropdown
// entry). Registering a duplicate name replaces the entry.
func (s *Server) Register(name string, engine *query.Engine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.engines[name] = engine
	if s.reg != nil {
		engine.Instrument(s.reg, name)
	}
}

// engine resolves a dataset name.
func (s *Server) engine(name string) (*query.Engine, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.engines[name]
	if !ok {
		return nil, fmt.Errorf("dashboard: unknown dataset %q", name)
	}
	return e, nil
}

// DatasetInfo is the dropdown metadata for one dataset.
type DatasetInfo struct {
	// Name is the registered display name.
	Name string `json:"name"`
	// Fields lists the selectable variables.
	Fields []string `json:"fields"`
	// Width and Height are the full-resolution dimensions.
	Width  int `json:"width"`
	Height int `json:"height"`
	// Depth is the Z extent of 3D datasets (0 for 2D rasters); 3D
	// datasets are served as XY slices selected with the z parameter.
	Depth int `json:"depth,omitempty"`
	// Timesteps is the time-slider extent.
	Timesteps int `json:"timesteps"`
	// MaxLevel is the resolution-slider extent.
	MaxLevel int `json:"max_level"`
	// Palettes lists the available colormaps.
	Palettes []string `json:"palettes"`
}

// Datasets returns dropdown metadata for every registered dataset.
func (s *Server) Datasets() []DatasetInfo {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.engines))
	for n := range s.engines {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]DatasetInfo, 0, len(names))
	for _, n := range names {
		meta := s.engines[n].Dataset().Meta
		info := DatasetInfo{
			Name:      n,
			Width:     meta.Dims[0],
			Height:    meta.Dims[1],
			Timesteps: meta.Timesteps,
			MaxLevel:  meta.MaxLevel(),
			Palettes:  colormap.Names(),
		}
		if len(meta.Dims) == 3 {
			info.Depth = meta.Dims[2]
		}
		for _, f := range meta.Fields {
			info.Fields = append(info.Fields, f.Name)
		}
		out = append(out, info)
	}
	return out
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	reg, tel, traces, fl, peers := s.reg, s.tel, s.traces, s.flight, s.peers
	s.mu.RUnlock()
	if traces != nil && r.URL.Path == "/debug/traces" {
		if peers != nil && r.URL.Query().Get("federate") == "1" {
			s.handleFederatedTrace(w, r)
			return
		}
		traces.Handler().ServeHTTP(w, r)
		return
	}
	if fl != nil && r.URL.Path == "/debug/flightrecorder" {
		fl.Handler().ServeHTTP(w, r)
		return
	}
	if tel == nil {
		s.route(w, r)
		return
	}
	if r.URL.Path == "/metrics" {
		reg.Handler().ServeHTTP(w, r)
		return
	}
	rec := telemetry.NewStatusRecorder(w)
	start := time.Now()
	handled := s.route(rec, r)
	route := r.URL.Path
	if !handled {
		route = "other"
	}
	tel.ObserveTraced(route, rec.Code, time.Since(start), trace.ID(r.Context()))
}

// route dispatches to the endpoint handlers, reporting whether the path
// named a known route (used to bound telemetry label cardinality).
func (s *Server) route(w http.ResponseWriter, r *http.Request) bool {
	switch r.URL.Path {
	case "/healthz":
		telemetry.WriteHealth(w, "dashboard")
	case "/api/datasets":
		writeJSON(w, s.Datasets())
	case "/api/render":
		s.handleRender(w, r)
	case "/api/data":
		s.handleData(w, r)
	case "/api/script":
		s.handleScript(w, r)
	case "/api/slice":
		s.handleSlice(w, r)
	case "/api/stats":
		s.handleStats(w, r)
	case "/api/playback":
		s.handlePlayback(w, r)
	case "/":
		s.handleIndex(w, r)
	default:
		if !s.extraRoutes(w, r) {
			http.NotFound(w, r)
			return false
		}
	}
	return true
}

// regionRequest parses the shared dataset/field/time/box/level params.
func (s *Server) regionRequest(r *http.Request) (*query.Engine, query.Request, error) {
	qv := r.URL.Query()
	e, err := s.engine(qv.Get("dataset"))
	if err != nil {
		return nil, query.Request{}, err
	}
	meta := e.Dataset().Meta
	req := query.Request{Field: qv.Get("field"), Level: query.LevelFull}
	if req.Field == "" && len(meta.Fields) > 0 {
		req.Field = meta.Fields[0].Name
	}
	geti := func(name string, def int) (int, error) {
		v := qv.Get(name)
		if v == "" {
			return def, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil {
			return 0, fmt.Errorf("dashboard: bad %s=%q", name, v)
		}
		return n, nil
	}
	if req.Time, err = geti("t", 0); err != nil {
		return nil, req, err
	}
	box := idx.Box{X1: meta.Dims[0], Y1: meta.Dims[1]}
	if box.X0, err = geti("x0", 0); err != nil {
		return nil, req, err
	}
	if box.Y0, err = geti("y0", 0); err != nil {
		return nil, req, err
	}
	if box.X1, err = geti("x1", meta.Dims[0]); err != nil {
		return nil, req, err
	}
	if box.Y1, err = geti("y1", meta.Dims[1]); err != nil {
		return nil, req, err
	}
	req.Box = box
	level, err := geti("level", meta.MaxLevel())
	if err != nil {
		return nil, req, err
	}
	req.Level = level
	if req.MaxSamples, err = geti("max_samples", 0); err != nil {
		return nil, req, err
	}
	if req.MaxSamples > 0 {
		req.Level = query.LevelAuto
	}
	return e, req, nil
}

// handleRender serves a PNG of the requested region ("the resolution
// sliders enable users to adjust the granularity of the data").
func (s *Server) handleRender(w http.ResponseWriter, r *http.Request) {
	e, req, err := s.regionRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	qv := r.URL.Query()
	paletteName := qv.Get("palette")
	if paletteName == "" {
		paletteName = "viridis"
	}
	palette, err := colormap.Lookup(paletteName)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	grid, res, err := s.readRegion(e, req, r)
	if err != nil {
		readError(w, err)
		return
	}
	// Manual colormap range, or dynamic from the delivered data.
	rng := colormap.DynamicRange(grid.Data)
	if minS, maxS := qv.Get("min"), qv.Get("max"); minS != "" && maxS != "" {
		lo, err1 := strconv.ParseFloat(minS, 64)
		hi, err2 := strconv.ParseFloat(maxS, 64)
		if err1 != nil || err2 != nil {
			http.Error(w, "dashboard: bad min/max", http.StatusBadRequest)
			return
		}
		rng = colormap.Range{Min: lo, Max: hi}
	}
	img := RenderImage(grid, palette, rng)
	w.Header().Set("Content-Type", "image/png")
	w.Header().Set("X-NSDF-Level", strconv.Itoa(res.Level))
	w.Header().Set("X-NSDF-Samples", strconv.Itoa(res.Stats.Samples))
	png.Encode(w, img)
}

// RenderImage maps a grid through a palette into an RGBA image. NaN
// samples render transparent.
func RenderImage(g *raster.Grid, palette colormap.Map, rng colormap.Range) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, g.W, g.H))
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			img.SetRGBA(x, y, palette.At(rng.Normalize(float64(g.At(x, y)))))
		}
	}
	return img
}

// handleData serves the snipping tool's NumPy array download.
func (s *Server) handleData(w http.ResponseWriter, r *http.Request) {
	e, req, err := s.regionRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	grid, _, err := s.readRegion(e, req, r)
	if err != nil {
		readError(w, err)
		return
	}
	payload, err := EncodeNPY(grid)
	if err != nil {
		s.internalError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", `attachment; filename="nsdf_selection.npy"`)
	w.Write(payload)
}

// handleScript serves the snipping tool's generated Python script.
func (s *Server) handleScript(w http.ResponseWriter, r *http.Request) {
	_, req, err := s.regionRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	qv := r.URL.Query()
	base := "http://" + r.Host
	script := PythonScript(base, qv.Get("dataset"), req.Field, req.Time,
		req.Box.X0, req.Box.Y0, req.Box.X1, req.Box.Y1, req.Level)
	w.Header().Set("Content-Type", "text/x-python")
	fmt.Fprint(w, script)
}

// handleSlice serves 1D cross-sections ("tools for taking horizontal and
// vertical slices of the data").
func (s *Server) handleSlice(w http.ResponseWriter, r *http.Request) {
	e, req, err := s.regionRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	qv := r.URL.Query()
	axis := qv.Get("axis")
	indexS := qv.Get("index")
	index, err := strconv.Atoi(indexS)
	if err != nil {
		http.Error(w, "dashboard: bad index", http.StatusBadRequest)
		return
	}
	meta := e.Dataset().Meta
	switch axis {
	case "h": // horizontal slice: fixed row
		if index < 0 || index >= meta.Dims[1] {
			http.Error(w, "dashboard: row outside dataset", http.StatusBadRequest)
			return
		}
		req.Box = idx.Box{X0: 0, Y0: index, X1: meta.Dims[0], Y1: index + 1}
	case "v": // vertical slice: fixed column
		if index < 0 || index >= meta.Dims[0] {
			http.Error(w, "dashboard: column outside dataset", http.StatusBadRequest)
			return
		}
		req.Box = idx.Box{X0: index, Y0: 0, X1: index + 1, Y1: meta.Dims[1]}
	default:
		http.Error(w, "dashboard: axis must be h or v", http.StatusBadRequest)
		return
	}
	req.Level = query.LevelFull
	res, err := e.Read(r.Context(), req)
	if err != nil {
		readError(w, err)
		return
	}
	writeJSON(w, map[string]any{
		"axis":   axis,
		"index":  index,
		"values": res.Grid.Data,
	})
}

// handleStats serves summary statistics for ad-hoc analysis of a region.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	e, req, err := s.regionRequest(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	_, res, err := s.readRegion(e, req, r)
	if err != nil {
		readError(w, err)
		return
	}
	st := res.Grid.ComputeStats()
	writeJSON(w, map[string]any{
		"level": res.Level, "n": st.N, "nodata": st.Nodata,
		"min": st.Min, "max": st.Max, "mean": st.Mean, "std": st.Std,
	})
}

// handlePlayback serves the automated-walkthrough plan: one render URL
// per timestep plus the frame interval from the speed control.
func (s *Server) handlePlayback(w http.ResponseWriter, r *http.Request) {
	qv := r.URL.Query()
	name := qv.Get("dataset")
	e, err := s.engine(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fps := 2.0
	if f := qv.Get("fps"); f != "" {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil || v <= 0 || v > 60 {
			http.Error(w, "dashboard: fps outside (0,60]", http.StatusBadRequest)
			return
		}
		fps = v
	}
	meta := e.Dataset().Meta
	field := qv.Get("field")
	if field == "" {
		field = meta.Fields[0].Name
	}
	frames := make([]string, meta.Timesteps)
	for t := 0; t < meta.Timesteps; t++ {
		frames[t] = fmt.Sprintf("/api/render?dataset=%s&field=%s&t=%d", name, field, t)
	}
	writeJSON(w, map[string]any{
		"interval_ms": int(math.Round(1000 / fps)),
		"frames":      frames,
	})
}

// handleIndex serves a minimal HTML UI exposing the dashboard controls.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// internalError answers a server-side failure without echoing the
// error to the client: internal error strings name backends, paths, and
// dataset internals — reconnaissance material, not a user-actionable
// message. The real error is logged with the request's trace ID so an
// operator can join the 500 the client reported to its /debug/traces
// entry.
func (s *Server) internalError(w http.ResponseWriter, r *http.Request, err error) {
	s.log().Error("internal error",
		slog.String("trace", trace.ID(r.Context())),
		slog.String("path", r.URL.Path),
		slog.String("error", err.Error()))
	http.Error(w, "dashboard: internal error", http.StatusInternalServerError)
}

// readError reports a failed region read. A cancelled request context
// means the client is gone — there is nobody to write an error to, so
// the handler just returns (the status recorder still books a 499-style
// abandonment as the default 200 with zero body). A deadline expiry maps
// to 504; everything else is treated as a bad request.
func readError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled):
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "dashboard: request deadline exceeded", http.StatusGatewayTimeout)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

const indexHTML = `<!DOCTYPE html>
<html>
<head><title>NSDF Dashboard</title>
<style>
body { font-family: sans-serif; margin: 2em; }
.controls { margin-bottom: 1em; }
label { margin-right: 1em; }
img { border: 1px solid #888; image-rendering: pixelated; max-width: 90vw; }
</style>
</head>
<body>
<h1>NSDF Dashboard</h1>
<div class="controls">
  <label>Dataset <select id="dataset"></select></label>
  <label>Variable <select id="field"></select></label>
  <label>Palette <select id="palette"></select></label>
  <label>Time <input id="time" type="range" min="0" max="0" value="0"></label>
  <label>Resolution <input id="level" type="range" min="0" max="0" value="0"></label>
  <button id="play">Play</button>
</div>
<img id="view" alt="rendered region">
<script>
async function init() {
  const datasets = await (await fetch('/api/datasets')).json();
  const dsSel = document.getElementById('dataset');
  for (const d of datasets) dsSel.add(new Option(d.name));
  dsSel.onchange = () => configure(datasets.find(d => d.name === dsSel.value));
  if (datasets.length) configure(datasets[0]);
}
function configure(d) {
  const fieldSel = document.getElementById('field');
  fieldSel.innerHTML = '';
  for (const f of d.fields) fieldSel.add(new Option(f));
  const palSel = document.getElementById('palette');
  palSel.innerHTML = '';
  for (const p of d.palettes) palSel.add(new Option(p));
  const time = document.getElementById('time');
  time.max = d.timesteps - 1;
  const level = document.getElementById('level');
  level.max = d.max_level;
  level.value = d.max_level;
  for (const el of [fieldSel, palSel, time, level]) el.oninput = render;
  render();
}
function render() {
  const v = id => document.getElementById(id).value;
  document.getElementById('view').src = '/api/render?dataset=' + encodeURIComponent(v('dataset')) +
    '&field=' + v('field') + '&t=' + v('time') + '&level=' + v('level') + '&palette=' + v('palette');
}
document.getElementById('play').onclick = async () => {
  const v = id => document.getElementById(id).value;
  const plan = await (await fetch('/api/playback?dataset=' + encodeURIComponent(v('dataset')) + '&field=' + v('field'))).json();
  let i = 0;
  const timer = setInterval(() => {
    if (i >= plan.frames.length) { clearInterval(timer); return; }
    document.getElementById('view').src = plan.frames[i++] + '&palette=' + v('palette');
  }, plan.interval_ms);
};
init();
</script>
</body>
</html>
`
