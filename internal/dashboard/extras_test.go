package dashboard

import (
	"encoding/json"
	"image/png"
	"net/http"
	"strings"
	"testing"

	"nsdfgo/internal/tiff"
)

func TestLegendEndpoint(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/api/legend?palette=terrain&width=128")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	img, err := png.Decode(strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 128 || img.Bounds().Dy() != 24 {
		t.Errorf("legend %v", img.Bounds())
	}
	// Left and right ends must differ (it is a ramp).
	l := img.At(0, 12)
	r := img.At(127, 12)
	if l == r {
		t.Error("legend is constant")
	}
}

func TestLegendValidation(t *testing.T) {
	_, srv := newTestServer(t)
	for _, bad := range []string{"palette=nope", "width=2", "width=99999", "width=x"} {
		resp, _ := get(t, srv.URL+"/api/legend?"+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s", bad, resp.Status)
		}
	}
	// Default palette works.
	resp, _ := get(t, srv.URL+"/api/legend")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("default legend status %s", resp.Status)
	}
}

func TestExportTIFFEndpoint(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/api/export.tif?dataset=tennessee_30m&field=elevation&x0=4&y0=8&x1=36&y1=24")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", resp.Status, body)
	}
	im, err := tiff.DecodeBytes(body)
	if err != nil {
		t.Fatal(err)
	}
	if im.Width != 32 || im.Height != 16 {
		t.Errorf("exported %dx%d, want 32x16", im.Width, im.Height)
	}
	if im.Type != tiff.Float32 {
		t.Errorf("exported type %v", im.Type)
	}
}

func TestExportTIFFValidation(t *testing.T) {
	_, srv := newTestServer(t)
	resp, _ := get(t, srv.URL+"/api/export.tif?dataset=nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status %s", resp.Status)
	}
}

func TestCompareEndpoint(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/api/compare?dataset=tennessee_30m&field=elevation&field_b=hillshade")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", resp.Status, body)
	}
	var out map[string]any
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out["field_a"] != "elevation" || out["field_b"] != "hillshade" {
		t.Errorf("fields %v", out)
	}
	if out["identical"] != false {
		t.Error("different fields reported identical")
	}
	if out["rmse"].(float64) <= 0 {
		t.Errorf("rmse %v", out["rmse"])
	}

	// Self-comparison is identical with finite (sentinel) PSNR in JSON.
	resp, body = get(t, srv.URL+"/api/compare?dataset=tennessee_30m&field=elevation&field_b=elevation")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("self-compare status %s", resp.Status)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("self-compare not valid JSON: %v", err)
	}
	if out["identical"] != true {
		t.Error("self-compare not identical")
	}
}

func TestHistogramEndpoint(t *testing.T) {
	_, srv := newTestServer(t)
	resp, body := get(t, srv.URL+"/api/histogram?dataset=tennessee_30m&field=elevation&bins=16")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", resp.Status, body)
	}
	var out struct {
		Bins   int     `json:"bins"`
		Min    float64 `json:"min"`
		Max    float64 `json:"max"`
		Counts []int   `json:"counts"`
		Nodata int     `json:"nodata"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Bins != 16 || len(out.Counts) != 16 {
		t.Fatalf("histogram %+v", out)
	}
	total := out.Nodata
	for _, c := range out.Counts {
		total += c
	}
	if total != 64*64 {
		t.Errorf("histogram covers %d samples, want %d", total, 64*64)
	}
	if out.Min >= out.Max {
		t.Errorf("range [%v,%v]", out.Min, out.Max)
	}
	// Validation.
	for _, bad := range []string{"bins=1", "bins=9999", "bins=x"} {
		resp, _ := get(t, srv.URL+"/api/histogram?dataset=tennessee_30m&"+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %s", bad, resp.Status)
		}
	}
}

func TestProbeEndpoint(t *testing.T) {
	_, srv := newTestServer(t) // 3 timesteps
	resp, body := get(t, srv.URL+"/api/probe?dataset=tennessee_30m&field=elevation&x=10&y=20")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s: %s", resp.Status, body)
	}
	var out struct {
		Field  string    `json:"field"`
		Values []float32 `json:"values"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Field != "elevation" || len(out.Values) != 3 {
		t.Errorf("probe %+v", out)
	}
	// Different timesteps hold different fields in the fixture.
	if out.Values[0] == out.Values[1] && out.Values[1] == out.Values[2] {
		t.Error("probe values constant across timesteps; fixture varies them")
	}
	// Validation.
	for _, bad := range []string{"x=999&y=0", "x=0", "x=a&y=b", ""} {
		resp, _ := get(t, srv.URL+"/api/probe?dataset=tennessee_30m&"+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%q: status %s", bad, resp.Status)
		}
	}
}

func TestCompareValidation(t *testing.T) {
	_, srv := newTestServer(t)
	resp, _ := get(t, srv.URL+"/api/compare?dataset=tennessee_30m&field=elevation")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing field_b status %s", resp.Status)
	}
	resp, _ = get(t, srv.URL+"/api/compare?dataset=tennessee_30m&field=elevation&field_b=nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field_b status %s", resp.Status)
	}
}
