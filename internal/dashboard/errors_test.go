package dashboard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nsdfgo/internal/admission"
	"nsdfgo/internal/dem"
	"nsdfgo/internal/idx"
	"nsdfgo/internal/query"
)

// faultBackend wraps a MemBackend and, once armed, fails every block
// Get with the injected error (the descriptor stays readable so Open
// keeps working). It also counts block Gets, which the shed tests use
// to prove a 429 never reached the fetch path.
type faultBackend struct {
	*idx.MemBackend
	mu      sync.Mutex
	err     error
	gets    atomic.Int64
	blockCh chan struct{} // non-nil: block Gets park here until closed
}

func (b *faultBackend) Get(ctx context.Context, name string) ([]byte, error) {
	if name == idx.MetaObjectName {
		return b.MemBackend.Get(ctx, name)
	}
	b.gets.Add(1)
	b.mu.Lock()
	err := b.err
	ch := b.blockCh
	b.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("backend: %w", err)
	}
	if ch != nil {
		select {
		case <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return b.MemBackend.Get(ctx, name)
}

func (b *faultBackend) fail(err error) {
	b.mu.Lock()
	b.err = err
	b.mu.Unlock()
}

// newFaultServer builds a dashboard over a 64x64 two-field, 2-timestep
// dataset on a faultBackend, with caching disabled so every read
// reaches the backend.
func newFaultServer(t *testing.T) (*Server, *query.Engine, *faultBackend, *httptest.Server) {
	t.Helper()
	meta, err := idx.NewMeta([]int{64, 64}, []idx.Field{
		{Name: "elevation", Type: idx.Float32},
		{Name: "hillshade", Type: idx.Float32},
	})
	if err != nil {
		t.Fatal(err)
	}
	meta.Timesteps = 2
	meta.BitsPerBlock = 8
	be := &faultBackend{MemBackend: idx.NewMemBackend()}
	ds, err := idx.Create(context.Background(), be, meta)
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range []string{"elevation", "hillshade"} {
		for ts := 0; ts < 2; ts++ {
			g := dem.Scale(dem.FBM(64, 64, uint64(10*fi+ts+1), dem.DefaultFBM()), 0, 100)
			if err := ds.WriteGrid(context.Background(), f, ts, g); err != nil {
				t.Fatal(err)
			}
		}
	}
	e := query.New(ds, 0) // no cache: reads always hit the backend
	s := NewServer()
	s.Register("faulty", e)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	be.gets.Store(0)
	return s, e, be, srv
}

// extrasReadPaths enumerates every extras.go handler that performs a
// region/probe read and therefore routes failures through readError.
var extrasReadPaths = []string{
	"/api/histogram?dataset=faulty&field=elevation",
	"/api/probe?dataset=faulty&x=3&y=4",
	"/api/compare?dataset=faulty&field=elevation&field_b=hillshade",
	"/api/export.tif?dataset=faulty&field=elevation",
}

func TestExtrasHandlersMapDeadlineTo504(t *testing.T) {
	_, _, be, srv := newFaultServer(t)
	be.fail(context.DeadlineExceeded)
	for _, path := range extrasReadPaths {
		resp, body := get(t, srv.URL+path)
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Errorf("%s: status %d (%s), want 504", path, resp.StatusCode, body)
		}
	}
}

func TestExtrasHandlersSilenceCanceled(t *testing.T) {
	_, _, be, srv := newFaultServer(t)
	be.fail(context.Canceled)
	for _, path := range extrasReadPaths {
		resp, body := get(t, srv.URL+path)
		// readError writes nothing for a cancelled read (the client is
		// gone); through a live HTTP server that surfaces as the default
		// 200 with an empty body.
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d, want silent 200", path, resp.StatusCode)
		}
		if len(body) != 0 {
			t.Errorf("%s: body %q, want empty", path, body)
		}
	}
}

func TestExtrasHandlersMapOtherErrorsTo400(t *testing.T) {
	_, _, be, srv := newFaultServer(t)
	be.fail(errors.New("disk on fire at /srv/objects/blk0004"))
	for _, path := range extrasReadPaths {
		resp, _ := get(t, srv.URL+path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, resp.StatusCode)
		}
	}
}

// TestInternalErrorDoesNotLeakDetails pins the error-leak fix: the 500
// body is generic, while the real error and the request's trace ID land
// in the structured log for the operator.
func TestInternalErrorDoesNotLeakDetails(t *testing.T) {
	var buf bytes.Buffer
	s := NewServer()
	s.SetLogger(slog.New(slog.NewTextHandler(&buf, nil)))
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/api/data", nil)
	secret := "open /var/lib/nsdf/secrets/blocks.db: permission denied"
	s.internalError(rec, req, errors.New(secret))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if body := rec.Body.String(); strings.Contains(body, "permission denied") || strings.Contains(body, "/var/lib") {
		t.Errorf("500 body leaks internals: %q", body)
	}
	if !strings.Contains(buf.String(), secret) {
		t.Errorf("log is missing the real error: %q", buf.String())
	}
	if !strings.Contains(buf.String(), "trace=") {
		t.Errorf("log is missing the trace attribute: %q", buf.String())
	}
}

// TestShedRequestNeverTouchesCacheOrFetchPool proves the admission
// fast-fail contract: a shed request is answered 429 + Retry-After at
// the front door, before the dashboard router, the block cache, or the
// idx fetch pool see it.
func TestShedRequestNeverTouchesCacheOrFetchPool(t *testing.T) {
	_, e, be, _ := newFaultServer(t)
	s := NewServer()
	s.Register("faulty", e)
	ctrl := admission.NewController(admission.Options{MaxConcurrent: 1, MaxQueue: 0})
	srv := httptest.NewServer(ctrl.Middleware(s))
	defer srv.Close()

	// Park one admitted request inside a backend Get so the single
	// concurrency slot stays occupied.
	be.mu.Lock()
	be.blockCh = make(chan struct{})
	be.mu.Unlock()
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		resp, err := http.Get(srv.URL + "/api/stats?dataset=faulty&field=elevation")
		if err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for be.gets.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slot-occupying request never reached the backend")
		}
		time.Sleep(time.Millisecond)
	}

	getsBefore := be.gets.Load()
	statsBefore := e.CacheStats()
	resp, _ := get(t, srv.URL+"/api/render?dataset=faulty&field=elevation")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	if got := be.gets.Load(); got != getsBefore {
		t.Errorf("shed request reached the fetch pool: %d backend gets, had %d", got, getsBefore)
	}
	statsAfter := e.CacheStats()
	if statsAfter != statsBefore {
		t.Errorf("shed request touched the cache: %+v -> %+v", statsBefore, statsAfter)
	}

	be.mu.Lock()
	close(be.blockCh)
	be.blockCh = nil
	be.mu.Unlock()
	<-slowDone
}
