package lint

import (
	"go/ast"
	"go/types"
)

// LockCopyAnalyzer catches the two classic sync mistakes: passing or
// returning by value a struct that (transitively) contains a
// sync.Mutex or sync.RWMutex — the copy and the original then guard
// different state — and calling Lock/RLock in a function that never
// pairs it with the matching Unlock/RUnlock on the same receiver
// (directly or via defer).
var LockCopyAnalyzer = &Analyzer{
	Name: "lockcopy",
	Doc:  "no mutex-holding structs by value; every Lock pairs with an Unlock in the same function",
	Run:  runLockCopy,
}

func runLockCopy(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkSignatureCopies(pass, fd)
			if fd.Body != nil {
				checkLockPairing(pass, fd)
			}
		}
	}
}

// checkSignatureCopies flags receiver, parameter, and result variables
// whose by-value type contains a mutex.
func checkSignatureCopies(pass *Pass, fd *ast.FuncDecl) {
	fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	sig := fn.Type().(*types.Signature)
	report := func(v *types.Var, role string) {
		if v == nil || !containsLock(v.Type(), make(map[types.Type]bool)) {
			return
		}
		name := v.Name()
		if name == "" {
			name = types.TypeString(v.Type(), types.RelativeTo(pass.Pkg.Types))
		}
		pass.Reportf(v.Pos(), "%s %q of %s carries a sync.Mutex by value; pass a pointer instead", role, name, fd.Name.Name)
	}
	report(sig.Recv(), "receiver")
	for i := 0; i < sig.Params().Len(); i++ {
		report(sig.Params().At(i), "parameter")
	}
	for i := 0; i < sig.Results().Len(); i++ {
		report(sig.Results().At(i), "result")
	}
}

// containsLock reports whether t, traversed by value (structs and
// arrays; pointers, slices, maps, channels, and interfaces are
// indirections and stop the walk), embeds a sync.Mutex or RWMutex.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch tt := t.(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
		return containsLock(tt.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if containsLock(tt.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(tt.Elem(), seen)
	}
	return false
}

// lockMethods maps sync lock methods to the unlock method that balances
// them.
var lockMethods = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

// checkLockPairing flags Lock/RLock calls on sync mutexes with no
// matching Unlock/RUnlock on the same receiver expression anywhere in
// the same function (including defers and deferred closures).
func checkLockPairing(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	type lockCall struct {
		pos  ast.Node
		recv string
		want string // balancing method name
	}
	var locks []lockCall
	unlocks := map[string]bool{} // "recv\x00method"

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		recv := types.ExprString(sel.X)
		if want, isLock := lockMethods[fn.Name()]; isLock {
			locks = append(locks, lockCall{pos: call, recv: recv, want: want})
		} else {
			unlocks[recv+"\x00"+fn.Name()] = true
		}
		return true
	})
	for _, lk := range locks {
		if !unlocks[lk.recv+"\x00"+lk.want] {
			pass.Reportf(lk.pos.Pos(), "%s.%s has no matching %s in %s; unlock on every exit path (prefer defer)",
				lk.recv, lockMethodName(lk.want), lk.want, fd.Name.Name)
		}
	}
}

// lockMethodName maps a balancing unlock method back to the lock name
// for the diagnostic.
func lockMethodName(unlock string) string {
	if unlock == "RUnlock" {
		return "RLock"
	}
	return "Lock"
}
