package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxHTTPAnalyzer polices outbound-request context threading, the
// tracing plane's transport: http.NewRequest builds a request with no
// context, so a peer call made with it ignores the caller's deadline
// and cancellation AND drops out of the trace — trace.Inject has no
// active span to read, and the remote span tree silently loses a
// branch. Library code must use http.NewRequestWithContext with the
// caller's context. Package main (an entry point may legitimately own
// a root request) and _test.go files are exempt; anything else needs
// an explicit //lint:allow ctxhttp with a reason.
var CtxHTTPAnalyzer = &Analyzer{
	Name: "ctxhttp",
	Doc:  "outbound requests must carry the caller's context: use http.NewRequestWithContext, not http.NewRequest",
	Run:  runCtxHTTP,
}

func runCtxHTTP(pass *Pass) {
	if pass.Pkg.Types.Name() == "main" {
		return
	}
	for _, file := range pass.Pkg.Files {
		pos := pass.Pkg.Fset.Position(file.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "net/http" {
				return true
			}
			if fn.Name() == "NewRequest" {
				pass.Reportf(call.Pos(), "http.NewRequest builds a context-free request that escapes deadlines and tracing: use http.NewRequestWithContext with the caller's context")
			}
			return true
		})
	}
}
