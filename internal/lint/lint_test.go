package lint

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the analyzer golden files")

// moduleRoot locates the repository root from the test's working
// directory (internal/lint).
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	return root
}

// loadFixture type-checks one fixture package under testdata/src.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	root := moduleRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(root, "internal", "lint", "testdata", "src", name))
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no Go files", name)
	}
	return pkg
}

// analyzerByName fetches one analyzer from the registered suite, so the
// tests exercise exactly what the driver runs.
func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

// fixtureConfig returns the default config, pointing hotalloc at the
// fixture package instead of the real hot-path packages.
func fixtureConfig(pkg *Package) *Config {
	cfg := DefaultConfig()
	if strings.HasSuffix(pkg.Path, "/hotalloc") {
		cfg.HotPackages = []string{pkg.Path}
	}
	return cfg
}

// renderFindings formats findings with fixture-relative paths, one per
// line, matching the .golden files.
func renderFindings(pkg *Package, findings []Finding) string {
	var b strings.Builder
	for _, f := range findings {
		file := filepath.Base(f.Pos.Filename)
		fmt.Fprintf(&b, "%s:%d:%d: %s: %s\n", file, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	}
	return b.String()
}

// TestAnalyzerGoldens runs each analyzer over its fixture package and
// compares the surviving findings against the committed golden file.
// The fixtures contain both firing cases and //lint:allow-suppressed
// cases, so a matching golden proves the analyzer fires where it must
// and stays quiet where the escape hatch is used.
func TestAnalyzerGoldens(t *testing.T) {
	for _, name := range []string{"metricname", "droppederr", "hotalloc", "lockcopy", "goleak", "ctxbackground", "ctxhttp", "spanend", "refcount", "lockorder", "ctxleak"} {
		t.Run(name, func(t *testing.T) {
			pkg := loadFixture(t, name)
			a := analyzerByName(t, name)
			findings := Run([]*Package{pkg}, []*Analyzer{a}, fixtureConfig(pkg))
			if len(findings) == 0 {
				t.Fatalf("analyzer %s produced no findings on its fixture", name)
			}
			got := renderFindings(pkg, findings)
			goldenPath := filepath.Join("testdata", "src", name, "expect.golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, string(want))
			}
		})
	}
}

// TestAllowCommentSuppresses asserts, independently of the goldens,
// that no finding lands on a line covered by a //lint:allow comment
// (same line or the line below it) in any fixture.
func TestAllowCommentSuppresses(t *testing.T) {
	for _, name := range []string{"metricname", "droppederr", "hotalloc", "lockcopy", "goleak", "ctxbackground", "ctxhttp", "spanend", "refcount", "lockorder", "ctxleak"} {
		pkg := loadFixture(t, name)
		a := analyzerByName(t, name)
		findings := Run([]*Package{pkg}, []*Analyzer{a}, fixtureConfig(pkg))

		src, err := os.ReadFile(filepath.Join(pkg.Dir, name+".go"))
		if err != nil {
			t.Fatal(err)
		}
		allowLines := map[int]bool{}
		for i, line := range strings.Split(string(src), "\n") {
			if strings.Contains(line, "//lint:allow") {
				allowLines[i+1] = true
			}
		}
		if len(allowLines) == 0 {
			t.Fatalf("fixture %s has no //lint:allow case", name)
		}
		for _, f := range findings {
			if allowLines[f.Pos.Line] || allowLines[f.Pos.Line-1] {
				t.Errorf("%s: finding on allow-suppressed line: %s", name, f)
			}
		}
	}
}

// TestMetricNameKindConflictAcrossPackages checks that kind tracking
// spans packages within one Run: the same metric name registered as a
// counter in one package and a gauge in another is a conflict even
// though each package is internally consistent.
func TestMetricNameKindConflictAcrossPackages(t *testing.T) {
	root := moduleRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, name := range []string{"kinda", "kindb"} {
		pkg, err := loader.LoadDir(filepath.Join(root, "internal", "lint", "testdata", "src", "kindconflict", name))
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	findings := Run(pkgs, []*Analyzer{analyzerByName(t, "metricname")}, DefaultConfig())
	if len(findings) != 1 {
		t.Fatalf("want exactly 1 cross-package kind conflict, got %d: %v", len(findings), findings)
	}
	if !strings.Contains(findings[0].Message, "registered as gauge here but as counter") {
		t.Errorf("unexpected conflict message: %s", findings[0].Message)
	}
}

// TestRepoIsFlowLintClean runs just the three flow-sensitive analyzers
// over the real module, separately from the full-suite gate, so a CFG
// or dataflow regression is attributed to this layer directly. Internal
// analyzer errors (a CFG that failed to build, a fixpoint that did not
// converge) fail the test too, via RunAll.
func TestRepoIsFlowLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check is not short")
	}
	root := moduleRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	flow := []*Analyzer{
		analyzerByName(t, "refcount"),
		analyzerByName(t, "lockorder"),
		analyzerByName(t, "ctxleak"),
	}
	findings, errs := RunAll(pkgs, flow, DefaultConfig())
	for _, e := range errs {
		t.Errorf("internal error: %v", e)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestRunAllReportsInternalErrors proves a malfunctioning analyzer can
// never pass as a clean run: both a panic and an InternalErrorf call
// surface as errors naming the analyzer and the package.
func TestRunAllReportsInternalErrors(t *testing.T) {
	pkg := loadFixture(t, "refcount")
	panicky := &Analyzer{
		Name: "panicky",
		Doc:  "test analyzer that always panics",
		Run:  func(p *Pass) { panic("kaboom") },
	}
	erroring := &Analyzer{
		Name: "erroring",
		Doc:  "test analyzer that records an internal error",
		Run:  func(p *Pass) { p.InternalErrorf("cfg exploded") },
	}
	findings, errs := RunAll([]*Package{pkg}, []*Analyzer{panicky, erroring}, DefaultConfig())
	if len(findings) != 0 {
		t.Errorf("unexpected findings: %v", findings)
	}
	if len(errs) != 2 {
		t.Fatalf("want 2 internal errors, got %d: %v", len(errs), errs)
	}
	for _, e := range errs {
		if !strings.Contains(e.Error(), pkg.Path) {
			t.Errorf("error does not name the failing package %q: %v", pkg.Path, e)
		}
	}
	if !strings.Contains(errs[0].Error(), "panicky") || !strings.Contains(errs[0].Error(), "kaboom") {
		t.Errorf("panic not attributed: %v", errs[0])
	}
	if !strings.Contains(errs[1].Error(), "erroring") || !strings.Contains(errs[1].Error(), "cfg exploded") {
		t.Errorf("InternalErrorf not attributed: %v", errs[1])
	}

	defer func() {
		if recover() == nil {
			t.Error("Run did not panic on internal errors")
		}
	}()
	Run([]*Package{pkg}, []*Analyzer{panicky}, DefaultConfig())
}

// TestRepoIsLintClean runs the full suite over the real module — the
// same gate as `make lint` — so a regression in any enforced invariant
// fails the ordinary test run too.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type check is not short")
	}
	root := moduleRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; pattern expansion looks broken", len(pkgs))
	}
	findings := Run(pkgs, Analyzers(), DefaultConfig())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
