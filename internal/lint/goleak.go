package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeakAnalyzer looks at worker-pool spawns — `go func` literals
// launched inside a loop — and demands a visible abort path: receiving
// a context.Context, selecting, receiving from a channel (including
// range-over-channel), or polling a sync/atomic abort flag. A worker
// with none of these runs until process exit no matter what the rest of
// the pool decides, which is exactly the early-abort bug the write path
// used to have.
var GoLeakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc:  "worker goroutines spawned in loops need an abort path (context, select, channel receive, or atomic flag)",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inspectWithLoopDepth(fd.Body, func(n ast.Node, depth int) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok || depth == 0 {
					return true
				}
				lit, ok := gs.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				if !hasAbortPath(pass, lit) {
					pass.Reportf(gs.Pos(), "goroutine spawned in a loop has no abort path: give it a context.Context, a select/channel receive, or an atomic abort flag")
				}
				return true
			})
		}
	}
}

// hasAbortPath scans a goroutine body for any recognised termination or
// abort mechanism.
func hasAbortPath(pass *Pass, lit *ast.FuncLit) bool {
	info := pass.Pkg.Info
	found := false
	ast.Inspect(lit, func(n ast.Node) bool {
		if found {
			return false
		}
		switch e := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[e.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				obj = info.Defs[e]
			}
			if obj != nil && isContextType(obj.Type()) {
				found = true
			}
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[e.Sel].(*types.Func); ok && fn.Pkg() != nil &&
				fn.Pkg().Path() == "sync/atomic" && fn.Name() == "Load" {
				found = true
			}
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
