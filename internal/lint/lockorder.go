package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"nsdfgo/internal/lint/cfg"
)

// LockOrderAnalyzer checks mutex discipline flow-sensitively and builds
// a whole-repo lock-acquisition graph. Per function, over the CFG, it
// tracks which named mutexes are held on each path and flags:
//
//   - a path that can reach a return while a Lock has neither been
//     Unlocked nor discharged by `defer mu.Unlock()`;
//   - re-locking a mutex already held on the same path (a guaranteed
//     self-deadlock with sync.Mutex);
//   - an explicit Unlock while a deferred Unlock for the same mutex is
//     pending (the deferred one will then unlock an unlocked mutex).
//
// Mutexes are named by their owner: a receiver field lock is classed as
// "pkg.Type.field", a package-level lock as "pkg.var". Acquisitions
// made while another class is held become edges in a repo-wide graph,
// extended through calls: when f calls g while holding A, every lock g
// (transitively) takes is ordered after A. After all packages are
// analyzed, a Finish pass condenses the graph with Tarjan's SCC and
// reports every cycle — the classic AB/BA inversion that deadlocks two
// goroutines — once, with the full cycle path. Paths that exit by
// panicking are not flagged: the deferred unlocks run during the
// unwind, and a process dying with a mutex held has bigger problems.
var LockOrderAnalyzer = &Analyzer{
	Name:   "lockorder",
	Doc:    "no path exits holding a mutex; no lock-order cycles across the repo",
	Run:    runLockOrder,
	Finish: finishLockOrder,
}

// lockFact is the per-mutex flow fact.
type lockFact struct {
	class    string // "pkg.Type.field" / "pkg.var", "" for locals
	deferred bool   // a deferred Unlock discharges it at exit
	rlock    bool   // held in read mode (RLock)
	pos      token.Pos
	name     string // source rendering of the mutex expression
}

// lockFacts maps a mutex key (the rendered receiver expression, e.g.
// "c.mu") to its held-state. Absence means not held on this path.
type lockFacts map[string]lockFact

func (f lockFacts) clone() lockFacts {
	out := make(lockFacts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// lockEdge is one ordered pair in the whole-repo acquisition graph:
// while `from` was held, `to` was acquired (directly or via a call).
type lockEdge struct {
	from, to string
	pos      token.Position // eagerly resolved: Finish has no Fset
	via      string         // "" for a direct acquire, else the called function
}

// lockSummary is what one function contributes to the global graph.
type lockSummary struct {
	// acquires lists classes this function locks directly with an empty
	// held-set (its baseline acquisitions).
	acquires []string
	// edges are direct held→acquired orderings observed in the body.
	edges []lockEdge
	// calls records callees invoked while classed locks were held.
	calls []lockCall
}

type lockCall struct {
	callee *types.Func
	held   []string
	pos    token.Position
}

// lockState is the cross-package accumulator kept in Pass.State.
type lockState struct {
	summaries map[*types.Func]*lockSummary
}

const lockStateKey = "lockorder.state"

func getLockState(pass *Pass) *lockState {
	if s, ok := pass.State[lockStateKey].(*lockState); ok {
		return s
	}
	s := &lockState{summaries: map[*types.Func]*lockSummary{}}
	pass.State[lockStateKey] = s
	return s
}

// lockMethodPairs maps sync acquire methods to their release and mode.
var lockMethodPairs = map[string]struct {
	unlock string
	rlock  bool
}{
	"Lock":  {"Unlock", false},
	"RLock": {"RUnlock", true},
}

func runLockOrder(pass *Pass) {
	state := getLockState(pass)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body == nil {
					return true
				}
				var fnObj *types.Func
				if obj, ok := pass.Pkg.Info.Defs[fn.Name].(*types.Func); ok {
					fnObj = obj
				}
				checkLockOrder(pass, state, fn.Body, fnObj)
			case *ast.FuncLit:
				// Function literals get the path checks but contribute no
				// summary: their call sites are not resolvable by name.
				checkLockOrder(pass, state, fn.Body, nil)
			}
			return true
		})
	}
}

// loAnalysis implements cfg.Analysis over lockFacts.
type loAnalysis struct {
	pass     *Pass
	report   bool
	reported map[string]bool
	// summary, when non-nil, accumulates graph contributions.
	summary *lockSummary
}

func (a *loAnalysis) Entry() lockFacts { return lockFacts{} }

func (a *loAnalysis) Equal(x, y lockFacts) bool {
	if len(x) != len(y) {
		return false
	}
	for k, v := range x {
		if y[k] != v {
			return false
		}
	}
	return true
}

// Join intersects: a mutex is held at a merge only when held on both
// paths. A mixed deferred bit degrades to non-deferred (the obligation
// is only safe if every path deferred it).
func (a *loAnalysis) Join(x, y lockFacts) lockFacts {
	out := make(lockFacts)
	for k, vx := range x {
		vy, ok := y[k]
		if !ok {
			continue
		}
		vx.deferred = vx.deferred && vy.deferred
		out[k] = vx
	}
	return out
}

func (a *loAnalysis) Refine(f lockFacts, cond ast.Expr, branch bool) lockFacts {
	return f
}

func (a *loAnalysis) reportf(pos token.Pos, format string, args ...any) {
	if !a.report {
		return
	}
	p := a.pass.Pkg.Fset.Position(pos)
	key := p.String() + format
	if a.reported[key] {
		return
	}
	a.reported[key] = true
	a.pass.Reportf(pos, format, args...)
}

// syncMethod resolves call to a sync.Mutex/RWMutex (or wrapper with the
// same method set, e.g. sync.Locker) method invocation and returns the
// receiver expression, method name, and whether the receiver type is
// from package sync.
func syncMethod(pass *Pass, call *ast.CallExpr) (recv ast.Expr, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || len(call.Args) != 0 {
		return nil, "", false
	}
	fn, isFn := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return nil, "", false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return sel.X, fn.Name(), true
	}
	return nil, "", false
}

// lockClass names the lock for the global graph: receiver/struct field
// locks as "pkgpath.Type.field", package-level locks as "pkgpath.var".
// Locals and unclassifiable receivers return "".
func lockClass(pass *Pass, recv ast.Expr) string {
	info := pass.Pkg.Info
	switch e := ast.Unparen(recv).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			return ""
		}
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && !v.IsField() {
			// Package-level var (its parent scope is the package scope).
			if v.Parent() == v.Pkg().Scope() {
				return v.Pkg().Path() + "." + v.Name()
			}
		}
		return ""
	case *ast.SelectorExpr:
		sel, ok := info.Selections[e]
		if !ok {
			// Possibly pkg.var through an import.
			if id, isID := e.X.(*ast.Ident); isID {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					if v, isVar := info.Uses[e.Sel].(*types.Var); isVar && v.Pkg() != nil {
						return v.Pkg().Path() + "." + v.Name()
					}
				}
			}
			return ""
		}
		field, ok := sel.Obj().(*types.Var)
		if !ok || !field.IsField() {
			return ""
		}
		// Walk to the named type owning the field via the receiver
		// expression's type.
		t := sel.Recv()
		for {
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
				continue
			}
			break
		}
		named, ok := t.(*types.Named)
		if !ok {
			return ""
		}
		obj := named.Obj()
		if obj.Pkg() == nil {
			return ""
		}
		return obj.Pkg().Path() + "." + obj.Name() + "." + field.Name()
	}
	return ""
}

// Transfer flows lock state through one node.
func (a *loAnalysis) Transfer(f lockFacts, n ast.Node) lockFacts {
	switch s := n.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			return a.callStmt(f, call, false)
		}
	case *ast.DeferStmt:
		return a.deferStmt(f, s)
	case ast.Expr:
		if call, ok := ast.Unparen(s).(*ast.CallExpr); ok {
			return a.callStmt(f, call, false)
		}
	case *ast.AssignStmt:
		out := f
		for _, rhs := range s.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				out = a.callStmt(out, call, false)
			}
		}
		return out
	case *ast.GoStmt:
		// The spawned goroutine has its own stack; the go statement
		// itself acquires nothing here.
		return f
	}
	return f
}

// callStmt handles one call: a sync method mutates the held set; any
// other named call while locks are held becomes a call-graph record.
func (a *loAnalysis) callStmt(f lockFacts, call *ast.CallExpr, inDefer bool) lockFacts {
	if recv, method, ok := syncMethod(a.pass, call); ok {
		key := types.ExprString(recv)
		_, isAcquire := lockMethodPairs[method]
		if isAcquire {
			return a.acquire(f, call, recv, key, method == "RLock", inDefer)
		}
		// Unlock / RUnlock.
		fact, held := f[key]
		if !held {
			return f // unlock of a lock taken on another path/level: not our call
		}
		if fact.deferred && !inDefer {
			a.reportf(call.Pos(), "%s is unlocked explicitly while a deferred unlock is pending: the deferred %s will unlock an unlocked mutex",
				key, unlockName(fact.rlock))
		}
		out := f.clone()
		delete(out, key)
		return out
	}
	// A named call while classed locks are held: record for the global
	// graph so transitive acquisitions order after the held locks.
	if a.summary != nil {
		if callee := staticCallee(a.pass, call); callee != nil {
			held := heldClasses(f)
			if len(held) > 0 {
				a.summary.calls = append(a.summary.calls, lockCall{
					callee: callee,
					held:   held,
					pos:    a.pass.Pkg.Fset.Position(call.Pos()),
				})
			}
		}
	}
	return f
}

func unlockName(rlock bool) string {
	if rlock {
		return "RUnlock"
	}
	return "Unlock"
}

// acquire records a Lock/RLock.
func (a *loAnalysis) acquire(f lockFacts, call *ast.CallExpr, recv ast.Expr, key string, rlock, inDefer bool) lockFacts {
	if prior, held := f[key]; held {
		if !prior.rlock || !rlock {
			// Write-write, read-write, or write-read on the same mutex on
			// the same path: sync.Mutex self-deadlocks, sync.RWMutex may.
			a.reportf(call.Pos(), "%s is locked again while already held (locked at line %d): self-deadlock",
				key, a.pass.Pkg.Fset.Position(prior.pos).Line)
		}
		// Recursive RLock is legal; keep the original fact either way.
		return f
	}
	class := lockClass(a.pass, recv)
	if a.summary != nil && class != "" {
		for _, heldKey := range sortedKeys(f) {
			hf := f[heldKey]
			if hf.class != "" && hf.class != class {
				a.summary.edges = append(a.summary.edges, lockEdge{
					from: hf.class, to: class,
					pos: a.pass.Pkg.Fset.Position(call.Pos()),
				})
			}
		}
		a.summary.acquires = append(a.summary.acquires, class)
	}
	out := f.clone()
	out[key] = lockFact{class: class, rlock: rlock, deferred: inDefer, pos: call.Pos(), name: key}
	return out
}

func sortedKeys(f lockFacts) []string {
	keys := make([]string, 0, len(f))
	for k := range f {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func heldClasses(f lockFacts) []string {
	var out []string
	for _, k := range sortedKeys(f) {
		if c := f[k].class; c != "" {
			out = append(out, c)
		}
	}
	return out
}

// deferStmt handles `defer mu.Unlock()` (marks the lock discharged at
// exit) and deferred closures containing unlocks.
func (a *loAnalysis) deferStmt(f lockFacts, s *ast.DeferStmt) lockFacts {
	if recv, method, ok := syncMethod(a.pass, s.Call); ok {
		key := types.ExprString(recv)
		if _, isAcquire := lockMethodPairs[method]; isAcquire {
			// `defer mu.Lock()` — bizarre; treat as no-op for flow purposes.
			_ = recv
			return f
		}
		fact, held := f[key]
		if !held {
			return f
		}
		if fact.deferred {
			a.reportf(s.Call.Pos(), "%s already has a deferred unlock: double unlock at exit", key)
			return f
		}
		out := f.clone()
		fact.deferred = true
		out[key] = fact
		return out
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		out := f
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, method, ok := syncMethod(a.pass, call)
			if !ok {
				return true
			}
			if _, isAcquire := lockMethodPairs[method]; isAcquire {
				return true
			}
			key := types.ExprString(recv)
			if fact, held := out[key]; held && !fact.deferred {
				if equalLockFacts(out, f) {
					out = out.clone()
				}
				fact.deferred = true
				out[key] = fact
			}
			return true
		})
		return out
	}
	return f
}

func equalLockFacts(x, y lockFacts) bool {
	if len(x) != len(y) {
		return false
	}
	for k, v := range x {
		if y[k] != v {
			return false
		}
	}
	return true
}

// staticCallee resolves the statically-known callee of a call, if any.
func staticCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.Pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// checkLockOrder runs the per-function analysis and records the global
// summary (fnObj may be nil for function literals).
func checkLockOrder(pass *Pass, state *lockState, body *ast.BlockStmt, fnObj *types.Func) {
	// Cheap pre-filter: no sync method mention, no analysis.
	if !mentionsSyncLock(pass, body) {
		return
	}
	g, err := cfg.Build(body)
	if err != nil {
		pass.InternalErrorf("lockorder: %v", err)
		return
	}
	an := &loAnalysis{pass: pass, reported: map[string]bool{}}
	if fnObj != nil {
		an.summary = &lockSummary{}
	}
	res, err := cfg.Forward[lockFacts](g, an)
	if err != nil {
		pass.InternalErrorf("lockorder: %v", err)
		return
	}
	if fnObj != nil && an.summary != nil {
		// Re-run transfers once more for summary edges? No: edges were
		// accumulated during the fixpoint, possibly duplicated. Dedupe.
		an.summary.edges = dedupeEdges(an.summary.edges)
		an.summary.calls = dedupeCalls(an.summary.calls)
		an.summary.acquires = dedupeStrings(an.summary.acquires)
		state.summaries[fnObj] = an.summary
	}
	// Reporting pass over the converged facts.
	an.report = true
	an.summary = nil // don't double-record during the replay
	for _, b := range g.Blocks {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		f := in
		for _, n := range b.Nodes {
			f = an.Transfer(f, n)
		}
	}
	// Exit check: a return edge with a non-deferred lock still held.
	type leak struct {
		fact lockFact
		key  string
	}
	leaks := map[string]leak{}
	for _, e := range g.Exit.Preds {
		if e.Kind != cfg.Return {
			continue
		}
		f, ok := res.EdgeFact(e)
		if !ok {
			continue
		}
		for key, fact := range f {
			if fact.deferred {
				continue
			}
			if _, seen := leaks[key]; !seen {
				leaks[key] = leak{fact: fact, key: key}
			}
		}
	}
	keys := make([]string, 0, len(leaks))
	for k := range leaks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		l := leaks[k]
		pass.Reportf(l.fact.pos, "%s is locked here but a path can reach return without %s", l.key, unlockName(l.fact.rlock))
	}
}

func mentionsSyncLock(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "Unlock", "RUnlock":
			if fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func dedupeEdges(edges []lockEdge) []lockEdge {
	seen := map[string]bool{}
	out := edges[:0]
	for _, e := range edges {
		k := e.from + "\x00" + e.to
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	return out
}

func dedupeCalls(calls []lockCall) []lockCall {
	seen := map[string]bool{}
	out := calls[:0]
	for _, c := range calls {
		k := c.callee.FullName() + "\x00" + strings.Join(c.held, ",")
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c)
	}
	return out
}

func dedupeStrings(in []string) []string {
	seen := map[string]bool{}
	out := in[:0]
	for _, s := range in {
		if seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}

// edgeInfo is the witness carried on one global-graph edge.
type edgeInfo struct {
	pos token.Position
	via string
}

// finishLockOrder assembles the whole-repo acquisition graph from the
// per-function summaries and reports every cycle.
func finishLockOrder(pass *Pass) {
	state := getLockState(pass)

	// Transitive acquires per function: fixpoint over the call graph.
	trans := map[*types.Func]map[string]bool{}
	for fn, sum := range state.summaries {
		set := map[string]bool{}
		for _, c := range sum.acquires {
			set[c] = true
		}
		trans[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for fn, sum := range state.summaries {
			set := trans[fn]
			for _, call := range sum.calls {
				calleeSet, ok := trans[call.callee]
				if !ok {
					continue
				}
				for c := range calleeSet {
					if !set[c] {
						set[c] = true
						changed = true
					}
				}
			}
		}
	}

	// Edge set: direct edges plus held-at-call × transitive-acquires.
	edges := map[string]map[string]edgeInfo{} // from → to → witness
	addEdge := func(from, to string, pos token.Position, via string) {
		if from == to {
			return
		}
		m := edges[from]
		if m == nil {
			m = map[string]edgeInfo{}
			edges[from] = m
		}
		if prev, ok := m[to]; !ok || less(pos, prev.pos) {
			m[to] = edgeInfo{pos: pos, via: via}
		}
	}
	fns := make([]*types.Func, 0, len(state.summaries))
	for fn := range state.summaries {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	for _, fn := range fns {
		sum := state.summaries[fn]
		for _, e := range sum.edges {
			addEdge(e.from, e.to, e.pos, "")
		}
		for _, call := range sum.calls {
			calleeSet, ok := trans[call.callee]
			if !ok {
				continue
			}
			acquired := make([]string, 0, len(calleeSet))
			for c := range calleeSet {
				acquired = append(acquired, c)
			}
			sort.Strings(acquired)
			for _, held := range call.held {
				for _, to := range acquired {
					if held == to {
						// Holding A and calling a function that (transitively)
						// locks A: self-deadlock through the call graph.
						pass.ReportAt(call.pos, "call to %s while holding %s, which it locks again (transitively): self-deadlock",
							call.callee.Name(), held)
						continue
					}
					addEdge(held, to, call.pos, call.callee.Name())
				}
			}
		}
	}

	reportLockCycles(pass, edges)
}

func less(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// reportLockCycles condenses the graph with Tarjan's SCC algorithm and
// reports one finding per non-trivial component, with a concrete cycle
// path as the witness.
func reportLockCycles(pass *Pass, edges map[string]map[string]edgeInfo) {
	nodes := make([]string, 0, len(edges))
	nodeSet := map[string]bool{}
	for from, tos := range edges {
		if !nodeSet[from] {
			nodeSet[from] = true
			nodes = append(nodes, from)
		}
		for to := range tos {
			if !nodeSet[to] {
				nodeSet[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Strings(nodes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		tos := make([]string, 0, len(edges[v]))
		for to := range edges[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] {
				if index[w] < low[v] {
					low[v] = index[w]
				}
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			if len(comp) > 1 {
				sccs = append(sccs, comp)
			}
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	for _, comp := range sccs {
		sort.Strings(comp)
		inComp := map[string]bool{}
		for _, n := range comp {
			inComp[n] = true
		}
		// Find a concrete cycle path starting from the lexicographically
		// first node, greedy by sorted successor order within the SCC.
		start := comp[0]
		path := []string{start}
		visited := map[string]bool{start: true}
		cur := start
		for {
			tos := make([]string, 0, len(edges[cur]))
			for to := range edges[cur] {
				if inComp[to] {
					tos = append(tos, to)
				}
			}
			sort.Strings(tos)
			if len(tos) == 0 {
				break
			}
			nextNode := tos[0]
			// Prefer closing the cycle back to start.
			for _, t := range tos {
				if t == start {
					nextNode = t
					break
				}
			}
			path = append(path, nextNode)
			if nextNode == start || visited[nextNode] {
				break
			}
			visited[nextNode] = true
			cur = nextNode
		}
		// Witness position: the earliest edge position in the component.
		var witness token.Position
		haveWitness := false
		for _, from := range comp {
			for to, info := range edges[from] {
				if !inComp[to] {
					continue
				}
				if !haveWitness || less(info.pos, witness) {
					witness = info.pos
					haveWitness = true
				}
			}
		}
		if !haveWitness {
			continue
		}
		pass.ReportAt(witness, "lock-order cycle: %s — two goroutines taking these locks in different orders will deadlock", strings.Join(path, " -> "))
	}
}
