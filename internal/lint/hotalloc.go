package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// HotAllocAnalyzer polices the declared hot-path packages (internal/idx,
// internal/hz, internal/cache by default): inside loops it flags
// fmt.Sprintf/Sprint/Sprintln, string concatenation, and append to a
// slice declared without capacity — the allocation patterns whose
// removal bought the read path its 13.5x allocation win. The Sprintf
// check is interprocedural one level deep: calling a package-local
// function that itself formats with fmt (a key builder like BlockKey)
// from inside a loop is the same per-iteration allocation wearing a
// helper's name, and is flagged the same way. Code outside loops, and
// loops in other packages, are not the hot path and pass.
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "no Sprintf (direct or via a local formatting helper), string concatenation, or unpreallocated append inside hot-path loops",
	Run:  runHotAlloc,
}

// fmtAllocFuncs are the fmt formatters that always allocate their result.
var fmtAllocFuncs = map[string]bool{"Sprintf": true, "Sprint": true, "Sprintln": true}

func runHotAlloc(pass *Pass) {
	hot := false
	for _, p := range pass.Config.HotPackages {
		if pass.Pkg.Path == p {
			hot = true
		}
	}
	if !hot {
		return
	}
	info := pass.Pkg.Info
	formatters := localFormatters(pass)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			inspectWithLoopDepth(fd.Body, func(n ast.Node, depth int) bool {
				if depth == 0 {
					return true
				}
				switch e := n.(type) {
				case *ast.CallExpr:
					if fn := calleeFunc(info, e); fn != nil {
						if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && fmtAllocFuncs[fn.Name()] {
							pass.Reportf(e.Pos(), "fmt.%s inside a loop allocates per iteration; format outside the loop or write into a reused buffer", fn.Name())
						}
						if formatters[fn] {
							pass.Reportf(e.Pos(), "%s formats with fmt and allocates per iteration inside a loop; precompute the strings outside the loop", fn.Name())
						}
					}
					if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
						if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" {
							checkLoopAppend(pass, fd, e)
						}
					}
				case *ast.BinaryExpr:
					if e.Op == token.ADD && isStringExpr(info, e) && !isConstExpr(info, e) {
						pass.Reportf(e.OpPos, "string concatenation inside a loop allocates per iteration; use strings.Builder or preformat outside the loop")
					}
				case *ast.AssignStmt:
					if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && isStringExpr(info, e.Lhs[0]) {
						pass.Reportf(e.TokPos, "string += inside a loop allocates per iteration; use strings.Builder")
					}
				}
				return true
			})
		}
	}
}

// localFormatters collects the package's functions and methods whose
// bodies call fmt.Sprintf/Sprint/Sprintln directly — one-level-deep
// formatting helpers whose every call allocates the formatted string.
func localFormatters(pass *Pass) map[*types.Func]bool {
	info := pass.Pkg.Info
	out := map[*types.Func]bool{}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			def, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "fmt" && fmtAllocFuncs[fn.Name()] {
					out[def] = true
				}
				return true
			})
		}
	}
	return out
}

// checkLoopAppend flags append calls in loops whose destination slice
// was declared in the same function with no capacity (var s []T,
// s := []T{}, or make([]T, 0)). Slices made with a capacity, function
// parameters, and non-local destinations are assumed preallocated or
// deliberate.
func checkLoopAppend(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	dest, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.Pkg.Info.Uses[dest]
	if obj == nil {
		obj = pass.Pkg.Info.Defs[dest]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return
	}
	if declaredWithoutCapacity(pass, fd, v) {
		pass.Reportf(call.Pos(), "append inside a loop to %q, declared without capacity; preallocate with make(T, 0, n)", dest.Name)
	}
}

// declaredWithoutCapacity locates v's declaration inside fd and reports
// whether it pins the slice to zero capacity.
func declaredWithoutCapacity(pass *Pass, fd *ast.FuncDecl, v *types.Var) bool {
	info := pass.Pkg.Info
	zeroCap := false
	ast.Inspect(fd, func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.ValueSpec:
			for i, name := range d.Names {
				if info.Defs[name] != v {
					continue
				}
				if len(d.Values) == 0 {
					zeroCap = true // var s []T
				} else if i < len(d.Values) {
					zeroCap = zeroCapExpr(info, d.Values[i])
				}
			}
		case *ast.AssignStmt:
			if d.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range d.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || info.Defs[id] != v {
					continue
				}
				if len(d.Rhs) == len(d.Lhs) {
					zeroCap = zeroCapExpr(info, d.Rhs[i])
				}
			}
		}
		return true
	})
	return zeroCap
}

// zeroCapExpr reports whether expr evaluates to a slice that certainly
// has capacity zero: a nil literal, an empty composite literal, or
// make([]T, 0) with no capacity argument.
func zeroCapExpr(info *types.Info, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		if _, ok := info.Types[e].Type.Underlying().(*types.Slice); ok {
			return len(e.Elts) == 0
		}
	case *ast.CallExpr:
		id, ok := ast.Unparen(e.Fun).(*ast.Ident)
		if !ok || id.Name != "make" {
			return false
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			return false
		}
		if len(e.Args) != 2 {
			return false // 3-arg make states a capacity
		}
		tv, ok := info.Types[e.Args[1]]
		return ok && tv.Value != nil && tv.Value.Kind() == constant.Int &&
			constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
	}
	return false
}

// isStringExpr reports whether expr has string type.
func isStringExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// isConstExpr reports whether expr folds to a compile-time constant.
func isConstExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.Value != nil
}
