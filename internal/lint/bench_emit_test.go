package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"
)

// This file is the lint acceptance harness: it measures what the
// analyzer suite costs — module load/type-check time, per-analyzer
// wall time over every package (with the slowest packages broken out),
// and the findings count — and writes BENCH_lint.json, so lint runtime
// joins the repo's perf trajectory alongside the read-path, cache, and
// shard benchmarks. The flow-sensitive analyzers (refcount, lockorder,
// ctxleak) build a CFG and run a dataflow fixpoint per function, so
// their cost is the one to watch as the codebase grows.

type benchAnalyzer struct {
	Name       string  `json:"name"`
	TotalMs    float64 `json:"total_ms"`
	Findings   int     `json:"findings"`
	SlowestPkg []struct {
		Pkg string  `json:"pkg"`
		Ms  float64 `json:"ms"`
	} `json:"slowest_packages"`
}

func TestBenchLintEmit(t *testing.T) {
	iters, _ := strconv.Atoi(os.Getenv("NSDF_BENCH_LINT_ITERS"))
	if iters <= 0 {
		t.Skip("set NSDF_BENCH_LINT_ITERS>=1 to run the lint benchmark emitter")
	}
	outPath := os.Getenv("NSDF_BENCH_LINT_OUT")
	if outPath == "" {
		outPath = filepath.Join(t.TempDir(), "BENCH_lint.json")
	}

	root := moduleRoot(t)
	loadStart := time.Now()
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	loadMs := float64(time.Since(loadStart).Microseconds()) / 1000

	cfg := DefaultConfig()
	totalFindings := 0
	var analyzers []benchAnalyzer
	for _, a := range Analyzers() {
		// Per (analyzer, package) wall time: minimum over iterations, so
		// a GC pause in one round doesn't smear the numbers.
		perPkg := make([]float64, len(pkgs))
		for i := range perPkg {
			perPkg[i] = -1
		}
		findings := 0
		for it := 0; it < iters; it++ {
			var fs []Finding
			var errs []error
			state := make(map[string]any)
			for i, pkg := range pkgs {
				pass := &Pass{Analyzer: a, Pkg: pkg, Config: cfg, State: state, findings: &fs, errs: &errs}
				t0 := time.Now()
				a.Run(pass)
				ms := float64(time.Since(t0).Microseconds()) / 1000
				if perPkg[i] < 0 || ms < perPkg[i] {
					perPkg[i] = ms
				}
			}
			if a.Finish != nil {
				pass := &Pass{Analyzer: a, Config: cfg, State: state, findings: &fs, errs: &errs}
				a.Finish(pass)
			}
			if len(errs) > 0 {
				t.Fatalf("analyzer %s internal error: %v", a.Name, errs[0])
			}
			findings = len(fs)
		}
		total := 0.0
		type pkgMs struct {
			pkg string
			ms  float64
		}
		ranked := make([]pkgMs, len(pkgs))
		for i, pkg := range pkgs {
			total += perPkg[i]
			ranked[i] = pkgMs{pkg: pkg.Path, ms: perPkg[i]}
		}
		sort.Slice(ranked, func(i, j int) bool { return ranked[i].ms > ranked[j].ms })
		ba := benchAnalyzer{Name: a.Name, TotalMs: round2(total), Findings: findings}
		for _, r := range ranked[:min(5, len(ranked))] {
			ba.SlowestPkg = append(ba.SlowestPkg, struct {
				Pkg string  `json:"pkg"`
				Ms  float64 `json:"ms"`
			}{Pkg: r.pkg, Ms: round2(r.ms)})
		}
		analyzers = append(analyzers, ba)
		totalFindings += findings
	}

	out := struct {
		Description   string          `json:"description"`
		GoMaxProcs    int             `json:"gomaxprocs"`
		Iterations    int             `json:"iterations"`
		Packages      int             `json:"packages"`
		LoadMs        float64         `json:"load_and_typecheck_ms"`
		TotalFindings int             `json:"total_findings"`
		Analyzers     []benchAnalyzer `json:"analyzers"`
	}{
		Description: "nsdf-lint analyzer suite over the whole module: load/type-check cost, " +
			"per-analyzer wall time (min over iterations) with the slowest packages broken out, and " +
			"pre-suppression findings count. The flow-sensitive analyzers (refcount, lockorder, " +
			"ctxleak) build a CFG and run a dataflow fixpoint per function. Regenerate with `make bench-lint`.",
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Iterations:    iters,
		Packages:      len(pkgs),
		LoadMs:        round2(loadMs),
		TotalFindings: totalFindings,
		Analyzers:     analyzers,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d packages, %d analyzers, load %.1fms", outPath, len(pkgs), len(analyzers), loadMs)
}

func round2(f float64) float64 {
	return float64(int(f*100+0.5)) / 100
}
