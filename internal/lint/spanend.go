package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SpanEndAnalyzer enforces the tracing contract /debug/traces depends
// on: every span minted by a Start-prefixed function of the trace
// package (trace.Start, Collector.StartTrace, ...) must be ended in the
// function that started it — a `defer span.End()`, or a same-block
// End() with no early return between Start and End. A span that is
// never ended never reaches the collector, so the request it measured
// silently vanishes from /debug/traces and from the slow-request log.
//
// A span that escapes the function (returned, stored, or handed to
// another call) transfers the obligation to the receiver and is not
// reported. Discarding the span result (`_` or an expression statement)
// is reported: an un-endable span is always a leak.
var SpanEndAnalyzer = &Analyzer{
	Name: "spanend",
	Doc:  "every trace Start* call must have a deferred or all-paths End() in the starting function",
	Run:  runSpanEnd,
}

func runSpanEnd(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkSpanEnds(pass, fn.Body)
				}
				return false
			case *ast.FuncLit:
				checkSpanEnds(pass, fn.Body)
				return false
			}
			return true
		})
	}
}

// checkSpanEnds inspects one function body, skipping nested function
// literals — each is its own scope for the start/end pairing and is
// visited separately by runSpanEnd.
func checkSpanEnds(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isTraceStart(pass, call) {
					continue
				}
				obj := spanResultObj(pass, s)
				if obj == nil {
					pass.Reportf(call.Pos(), "span from %s is discarded: assign it and call End()", startCallName(call))
					continue
				}
				if !spanIsEnded(pass, body, obj) {
					pass.Reportf(call.Pos(), "span %q is started but never ended on all paths: add `defer %s.End()`", obj.Name(), obj.Name())
				}
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isTraceStart(pass, call) {
				pass.Reportf(call.Pos(), "span from %s is discarded: assign it and call End()", startCallName(call))
			}
		}
		return true
	})
}

// isTraceStart reports whether call invokes a Start-prefixed function or
// method declared in the configured trace package that yields a span.
func isTraceStart(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != pass.Config.TracePackage {
		return false
	}
	if !strings.HasPrefix(fn.Name(), "Start") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isSpanType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

// isSpanType reports whether t is *trace.Span (or trace.Span).
func isSpanType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Span"
}

// startCallName renders the Start call for a diagnostic ("trace.Start").
func startCallName(call *ast.CallExpr) string {
	sel := call.Fun.(*ast.SelectorExpr)
	if x, ok := sel.X.(*ast.Ident); ok {
		return x.Name + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}

// spanResultObj returns the object bound to the span result of the
// assignment, or nil when the span lands in the blank identifier.
func spanResultObj(pass *Pass, s *ast.AssignStmt) types.Object {
	for _, lhs := range s.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		obj := pass.Pkg.Info.Defs[id]
		if obj == nil {
			obj = pass.Pkg.Info.Uses[id]
		}
		if obj != nil && isSpanType(obj.Type()) {
			return obj
		}
	}
	return nil
}

// spanIsEnded reports whether the span object is provably ended or
// escapes the function. Accepted as ended: a `defer span.End()`
// anywhere in the body (including inside a deferred closure), or a
// non-deferred span.End() statement with no return statement lexically
// between the span's definition and the End call. Accepted as escaping:
// the span used as a call argument, returned, stored into a composite,
// struct field, map, slice, or channel.
func spanIsEnded(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	ended := false
	escaped := false
	sawReturnSinceDef := false
	inDef := false
	ast.Inspect(body, func(n ast.Node) bool {
		if ended || escaped {
			return false
		}
		switch s := n.(type) {
		case *ast.Ident:
			if pass.Pkg.Info.Defs[s] == obj {
				inDef = true
				sawReturnSinceDef = false
			}
		case *ast.ReturnStmt:
			if inDef {
				sawReturnSinceDef = true
			}
			// A returned span escapes to the caller.
			for _, res := range s.Results {
				if usesObj(pass, res, obj) {
					escaped = true
				}
			}
		case *ast.DeferStmt:
			if isEndCall(pass, s.Call, obj) {
				ended = true
				return false
			}
			// defer func() { ... span.End() ... }() also discharges it.
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && containsEndCall(pass, lit.Body, obj) {
				ended = true
				return false
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isEndCall(pass, call, obj) {
				if !sawReturnSinceDef {
					ended = true
				}
				return false
			}
		case *ast.CallExpr:
			// The span passed as an argument escapes; a method call on the
			// span itself (span.SetAttr, span.End) does not.
			for _, arg := range s.Args {
				if usesObj(pass, arg, obj) {
					escaped = true
				}
			}
		case *ast.KeyValueExpr:
			if usesObj(pass, s.Value, obj) {
				escaped = true
			}
		case *ast.SendStmt:
			if usesObj(pass, s.Value, obj) {
				escaped = true
			}
		case *ast.AssignStmt:
			// Re-assigning the span elsewhere (struct field, map entry,
			// another variable) hands the obligation on — but `_ = span`
			// discards it and discharges nothing.
			for i, rhs := range s.Rhs {
				id, ok := rhs.(*ast.Ident)
				if !ok || !identIs(pass, id, obj) {
					continue
				}
				if i < len(s.Lhs) {
					if lhs, ok := s.Lhs[i].(*ast.Ident); ok && lhs.Name == "_" {
						continue
					}
				}
				escaped = true
			}
		}
		return true
	})
	return ended || escaped
}

// isEndCall reports whether call is obj.End().
func isEndCall(pass *Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && identIs(pass, id, obj)
}

// containsEndCall reports whether the block calls obj.End() anywhere.
func containsEndCall(pass *Pass, block *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(block, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isEndCall(pass, call, obj) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// identIs reports whether id resolves to obj.
func identIs(pass *Pass, id *ast.Ident, obj types.Object) bool {
	if use := pass.Pkg.Info.Uses[id]; use == obj {
		return true
	}
	return pass.Pkg.Info.Defs[id] == obj
}

// usesObj reports whether the expression mentions obj directly (not
// through a selector on it).
func usesObj(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			// span.End / span.SetAttr as a method value is still "the span
			// itself escaping" only when the selector target is not obj's
			// method; keep it simple: do not descend into selectors whose X
			// is exactly the obj ident (method access, not escape).
			if id, ok := sel.X.(*ast.Ident); ok && identIs(pass, id, obj) {
				return false
			}
		}
		if id, ok := n.(*ast.Ident); ok && identIs(pass, id, obj) {
			found = true
			return false
		}
		return !found
	})
	return found
}
