// Package lint is the repo's own static-analysis suite: eleven
// analyzers that machine-check the conventions the serving stack
// depends on — nsdf_-prefixed constant metric names, no silently
// dropped storage/IDX errors, an allocation-free hot path, sound mutex
// usage, abortable worker goroutines, caller-threaded contexts (no
// context.Background() in library code, no context-free
// http.NewRequest in outbound calls), and spans that are always ended
// (spanend).
// Three of them are flow-sensitive, built on the control-flow-graph and
// dataflow framework in internal/lint/cfg: refcount (cache.Block
// references released exactly once on every path), lockorder (no
// lock-order cycles across the repo, no path that exits holding a
// mutex), and ctxleak (derived contexts cancelled on every path).
// It is built only on go/ast, go/parser, go/types,
// and go/importer, so `make lint` needs nothing beyond the Go toolchain.
//
// A finding can be suppressed — sparingly, with a reason — by an allow
// comment on the same line or the line above:
//
//	//lint:allow droppederr best-effort cleanup on shutdown
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	// Analyzer names the rule that fired.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message explains the violation.
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Config carries the project-specific knobs the analyzers consult.
// DefaultConfig returns the values matching this repository; tests point
// them at fixture packages instead.
type Config struct {
	// TelemetryPackage is the import path of the metrics registry whose
	// constructor names metricname inspects.
	TelemetryPackage string
	// MetricMethods maps telemetry.Registry method names to the metric
	// kind they register.
	MetricMethods map[string]string
	// ErrScopePackages lists import paths whose error returns must never
	// be dropped (droppederr), in addition to io.Closer-shaped methods
	// and os.Remove/RemoveAll.
	ErrScopePackages []string
	// HotPackages lists import paths whose loops hotalloc polices.
	HotPackages []string
	// TracePackage is the import path of the span tracer whose Start*
	// results spanend requires to be ended.
	TracePackage string
	// CachePackage is the import path of the block cache whose
	// ref-counted Block type refcount tracks: any call with a *Block
	// result is an acquisition whose reference must be released,
	// deferred, or transferred on every path.
	CachePackage string
}

// DefaultConfig returns the configuration for this repository.
func DefaultConfig() *Config {
	return &Config{
		TelemetryPackage: "nsdfgo/internal/telemetry",
		MetricMethods: map[string]string{
			"Counter":     "counter",
			"Gauge":       "gauge",
			"Histogram":   "histogram",
			"CounterFunc": "counter",
			"GaugeFunc":   "gauge",
		},
		ErrScopePackages: []string{"nsdfgo/internal/storage", "nsdfgo/internal/idx"},
		// The testdata path keeps the hotalloc fixture demonstrable from
		// the driver: `nsdf-lint ./internal/lint/testdata/src/hotalloc`
		// must exit 1 like every other fixture. testdata is never part of
		// a ./... load, so it costs nothing on normal runs.
		HotPackages: []string{
			"nsdfgo/internal/idx", "nsdfgo/internal/hz", "nsdfgo/internal/cache",
			"nsdfgo/internal/lint/testdata/src/hotalloc",
		},
		TracePackage: "nsdfgo/internal/telemetry/trace",
		CachePackage: "nsdfgo/internal/cache",
	}
}

// Pass is the per-package unit of work handed to an analyzer.
type Pass struct {
	// Analyzer is the rule being run.
	Analyzer *Analyzer
	// Pkg is the package under analysis.
	Pkg *Package
	// Config is the shared project configuration.
	Config *Config
	// State persists across the packages of one Run for this analyzer,
	// so cross-package rules (metric kind conflicts, the whole-repo lock
	// graph) can accumulate.
	State map[string]any

	findings *[]Finding
	errs     *[]error
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportAt records a finding at an already-resolved position. Finish
// hooks use it: they run after the per-package passes, so positions must
// have been resolved while the owning package was in hand.
func (p *Pass) ReportAt(pos token.Position, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InternalErrorf records an analyzer malfunction (not a finding): a CFG
// that failed to build, a dataflow fixpoint that did not converge. The
// driver treats any internal error as a failed run (exit 2), so a
// broken analyzer can never make CI pass by producing zero findings.
func (p *Pass) InternalErrorf(format string, args ...any) {
	pkg := "(finish)"
	if p.Pkg != nil {
		pkg = p.Pkg.Path
	}
	*p.errs = append(*p.errs, fmt.Errorf("analyzer %s: package %s: %s", p.Analyzer.Name, pkg, fmt.Sprintf(format, args...)))
}

// Analyzer is one lint rule.
type Analyzer struct {
	// Name is the rule identifier used in output and allow comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run analyzes one package.
	Run func(*Pass)
	// Finish, when non-nil, runs once after every package has been
	// analyzed, with a Pass whose Pkg is nil. Whole-program rules (the
	// lockorder cycle check) accumulate in State during Run and report
	// here via ReportAt.
	Finish func(*Pass)
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		MetricNameAnalyzer,
		DroppedErrAnalyzer,
		HotAllocAnalyzer,
		LockCopyAnalyzer,
		GoLeakAnalyzer,
		CtxBackgroundAnalyzer,
		CtxHTTPAnalyzer,
		SpanEndAnalyzer,
		RefCountAnalyzer,
		LockOrderAnalyzer,
		CtxLeakAnalyzer,
	}
}

// Run executes the analyzers over the packages and returns the findings
// that survive allow-comment suppression, sorted by position. An
// analyzer internal error (see RunAll) panics: tests and callers that
// use Run treat a malfunctioning analyzer as a hard failure, never as a
// clean result.
func Run(pkgs []*Package, analyzers []*Analyzer, cfg *Config) []Finding {
	findings, errs := RunAll(pkgs, analyzers, cfg)
	if len(errs) > 0 {
		panic(fmt.Sprintf("lint: %d internal analyzer error(s), first: %v", len(errs), errs[0]))
	}
	return findings
}

// RunAll executes the analyzers over the packages and returns the
// findings that survive allow-comment suppression, sorted by position,
// along with any internal analyzer errors. A panicking analyzer is
// recovered into an error naming the analyzer and the package it was
// visiting, so the driver can exit non-zero with a useful message
// instead of crashing or — worse — silently reporting a clean run.
func RunAll(pkgs []*Package, analyzers []*Analyzer, cfg *Config) ([]Finding, []error) {
	var findings []Finding
	var errs []error
	for _, a := range analyzers {
		state := make(map[string]any)
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Pkg: pkg, Config: cfg, State: state, findings: &findings, errs: &errs}
			if err := runRecovering(a.Run, pass); err != nil {
				errs = append(errs, err)
			}
		}
		if a.Finish != nil {
			pass := &Pass{Analyzer: a, Config: cfg, State: state, findings: &findings, errs: &errs}
			if err := runRecovering(a.Finish, pass); err != nil {
				errs = append(errs, err)
			}
		}
	}
	allow := buildAllowIndex(pkgs)
	kept := findings[:0]
	for _, f := range findings {
		if !allow.suppresses(f) {
			kept = append(kept, f)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, errs
}

// runRecovering invokes fn(pass), converting a panic into an internal
// error naming the analyzer and package.
func runRecovering(fn func(*Pass), pass *Pass) (err error) {
	defer func() {
		if r := recover(); r != nil {
			pkg := "(finish)"
			if pass.Pkg != nil {
				pkg = pass.Pkg.Path
			}
			err = fmt.Errorf("analyzer %s: package %s: panic: %v", pass.Analyzer.Name, pkg, r)
		}
	}()
	fn(pass)
	return nil
}

// allowIndex records, per file and line, which analyzers an
// //lint:allow comment switches off.
type allowIndex map[string]map[int]map[string]bool

// buildAllowIndex scans every comment in every file for allow
// directives. A directive names one analyzer or a comma-separated list:
//
//	//lint:allow hotalloc
//	//lint:allow droppederr,goleak best-effort shutdown path
func buildAllowIndex(pkgs []*Package) allowIndex {
	idx := make(allowIndex)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					rest, ok := strings.CutPrefix(text, "lint:allow")
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					byLine := idx[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						idx[pos.Filename] = byLine
					}
					names := byLine[pos.Line]
					if names == nil {
						names = make(map[string]bool)
						byLine[pos.Line] = names
					}
					for _, name := range strings.Split(fields[0], ",") {
						names[strings.TrimSpace(name)] = true
					}
				}
			}
		}
	}
	return idx
}

// suppresses reports whether an allow comment on the finding's line or
// the line above names its analyzer.
func (idx allowIndex) suppresses(f Finding) bool {
	byLine := idx[f.Pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range [...]int{f.Pos.Line, f.Pos.Line - 1} {
		if byLine[line][f.Analyzer] {
			return true
		}
	}
	return false
}

// inspectWithLoopDepth walks the subtree rooted at n, calling fn with
// the number of enclosing for/range statements whose *body* (or
// post/cond clauses) contains the node. Function literals reset the
// depth: a closure defined in a loop body is not itself "in a loop"
// unless it contains one.
func inspectWithLoopDepth(root ast.Node, fn func(n ast.Node, depth int) bool) {
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if n == nil {
			return
		}
		if !fn(n, depth) {
			return
		}
		switch s := n.(type) {
		case *ast.ForStmt:
			walk(s.Init, depth)
			walk(s.Cond, depth+1)
			walk(s.Post, depth+1)
			walk(s.Body, depth+1)
			return
		case *ast.RangeStmt:
			walk(s.Key, depth)
			walk(s.Value, depth)
			walk(s.X, depth)
			walk(s.Body, depth+1)
			return
		case *ast.FuncLit:
			walk(s.Type, 0)
			walk(s.Body, 0)
			return
		}
		ast.Inspect(n, func(child ast.Node) bool {
			if child == nil || child == n {
				return child == n
			}
			walk(child, depth)
			return false
		})
	}
	walk(root, 0)
}
