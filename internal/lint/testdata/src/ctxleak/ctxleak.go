// Package ctxleak is a lint fixture: every violation below is asserted
// by internal/lint's golden-file tests. It exercises the flow-sensitive
// derived-context analyzer: cancel skipped on a branch, discarded
// cancel funcs, and the defer/transfer shapes that must stay quiet.
package ctxleak

import (
	"context"
	"errors"
	"time"
)

// leakOnErrReturn derives a context but returns on the error branch
// before the cancel is deferred — must fire.
func leakOnErrReturn(ctx context.Context, check func() error) error {
	cctx, cancel := context.WithCancel(ctx) // want: cancel not called on every path
	if err := check(); err != nil {
		return err // cancel never runs here: the child goroutine leaks
	}
	defer cancel()
	return work(cctx)
}

// timeoutLeak arms a timer and abandons the cancel entirely — must
// fire.
func timeoutLeak(ctx context.Context) error {
	tctx, cancel := context.WithTimeout(ctx, time.Second) // want: cancel never called
	if err := work(tctx); err != nil {
		return err
	}
	_ = cancel
	return nil
}

// discardedCancel throws the cancel away at the call site — must fire.
func discardedCancel(ctx context.Context) context.Context {
	cctx, _ := context.WithCancel(ctx) // want: cancel discarded
	return cctx
}

// deferClean is the canonical correct shape: nothing to report.
func deferClean(ctx context.Context) error {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	return work(cctx)
}

// branchClean calls cancel explicitly on every path: nothing to report.
func branchClean(ctx context.Context, fail bool) error {
	cctx, cancel := context.WithTimeout(ctx, time.Second)
	if fail {
		cancel()
		return errors.New("boom")
	}
	err := work(cctx)
	cancel()
	return err
}

// deferClosureClean cancels inside a deferred closure: nothing to
// report.
func deferClosureClean(ctx context.Context) error {
	cctx, cancel := context.WithCancel(ctx)
	defer func() {
		cancel()
	}()
	return work(cctx)
}

// transferClean hands the cancel to the caller, who owns it now:
// nothing to report.
func transferClean(ctx context.Context) (context.Context, context.CancelFunc) {
	cctx, cancel := context.WithCancel(ctx)
	return cctx, cancel
}

// registryClean stores the cancel for a shutdown sweep: ownership moves
// into the slice, nothing to report.
func registryClean(ctx context.Context, cancels []context.CancelFunc) ([]context.Context, []context.CancelFunc) {
	cctx, cancel := context.WithCancel(ctx)
	cancels = append(cancels, cancel)
	return []context.Context{cctx}, cancels
}

// goroutineClean passes cancel into the goroutine that will call it:
// the closure capture transfers ownership, nothing to report.
func goroutineClean(ctx context.Context, done <-chan struct{}) context.Context {
	cctx, cancel := context.WithCancel(ctx)
	go func() {
		<-done
		cancel()
	}()
	return cctx
}

// escapeHatch shows the suppression path for a cancel intentionally
// left to the process lifetime.
func escapeHatch(ctx context.Context) context.Context {
	//lint:allow ctxleak cancelled implicitly at process shutdown
	cctx, cancel := context.WithCancel(ctx)
	_ = cancel
	return cctx
}

func work(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(time.Millisecond):
		return nil
	}
}
