// Package lockcopy is a lint fixture: every violation below is asserted
// by internal/lint's golden-file tests.
package lockcopy

import "sync"

// Guarded carries a mutex, so it must never travel by value.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// RW carries a read-write mutex through an embedded struct.
type RW struct {
	inner Guarded
	rw    sync.RWMutex
	v     int
}

func byValueParam(g Guarded) int { // want: parameter carries the mutex
	return g.n
}

func (g Guarded) byValueRecv() int { // want: receiver carries the mutex
	return g.n
}

func byValueResult() RW { // want: result carries the mutex
	return RW{}
}

func lockNoUnlock(g *Guarded) {
	g.mu.Lock() // want: no matching Unlock in this function
	g.n++
}

func rlockNoRUnlock(r *RW) int {
	r.rw.RLock() // want: no matching RUnlock in this function
	return r.v
}

func balanced(g *Guarded) {
	g.mu.Lock() // ok: deferred unlock on the same receiver
	defer g.mu.Unlock()
	g.n++
}

func balancedRead(r *RW) int {
	r.rw.RLock() // ok: explicit RUnlock
	v := r.v
	r.rw.RUnlock()
	return v
}

func allowedHandoff(g *Guarded) {
	//lint:allow lockcopy unlocked by the caller once the handoff completes
	g.mu.Lock() // suppressed by the allow comment
	g.n++
}
