// Package kindb is the second half of the cross-package kind-conflict
// fixture; see package kinda.
package kindb

import "nsdfgo/internal/telemetry"

func register(reg *telemetry.Registry) {
	reg.Gauge("nsdf_kindconflict_value").Set(1)
}
