// Package kinda registers nsdf_kindconflict_value as a counter; the
// sibling package kindb registers the same name as a gauge. The
// metricname analyzer must flag the pair even though each package is
// internally consistent.
package kinda

import "nsdfgo/internal/telemetry"

func register(reg *telemetry.Registry) {
	reg.Counter("nsdf_kindconflict_value").Inc()
}
