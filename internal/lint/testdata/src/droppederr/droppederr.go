// Package droppederr is a lint fixture: every violation below is
// asserted by internal/lint's golden-file tests.
package droppederr

import (
	"context"
	"os"

	"nsdfgo/internal/idx"
)

func violations(ctx context.Context, be *idx.MemBackend, f *os.File, path string) []byte {
	be.Put(ctx, "obj", nil)       // want: bare call into the idx scope
	_ = be.Put(ctx, "obj2", nil)  // want: error assigned to _
	f.Close()                     // want: bare io.Closer call
	os.Remove(path)               // want: bare os.Remove
	data, _ := be.Get(ctx, "obj") // want: error result blanked
	return data
}

func handled(ctx context.Context, be *idx.MemBackend, f *os.File) error {
	if err := be.Put(ctx, "obj", nil); err != nil { // ok: error checked
		return err
	}
	defer f.Close() // ok: deferred cleanup is exempt
	//lint:allow droppederr fixture demonstrates the escape hatch
	be.Put(ctx, "ignored", nil) // suppressed by the allow comment
	return nil
}
