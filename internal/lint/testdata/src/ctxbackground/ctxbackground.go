// Package ctxbackground is a lint fixture: every violation below is
// asserted by internal/lint's golden-file tests.
package ctxbackground

import "context"

// fetch mints root contexts instead of accepting one — both spellings
// must fire.
func fetch() error {
	ctx := context.Background() // want: root context in library code
	_ = ctx
	todo := context.TODO() // want: TODO is just as detached
	_ = todo
	return nil
}

// threaded accepts the caller's context: nothing to report.
func threaded(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx) // ok: derives from the caller
	defer cancel()
	<-sub.Done()
	return sub.Err()
}

// escapeHatch shows the suppression path for the rare legitimate root
// (e.g. a long-lived janitor detached from any request).
func escapeHatch() context.Context {
	//lint:allow ctxbackground detached janitor lifetime is intentional
	return context.Background()
}
