// Package refcount is a lint fixture: every violation below is asserted
// by internal/lint's golden-file tests. It exercises the flow-sensitive
// cache.Block ownership analyzer over branches, loops, defers, and
// ownership transfers.
package refcount

import (
	"context"
	"errors"

	"nsdfgo/internal/cache"
)

// leakOnBranch releases on the happy path but returns early without
// releasing on the error branch — must fire (leak-on-branch).
func leakOnBranch(c *cache.Tiered, key string, fail bool) ([]byte, error) {
	blk, ok := c.Get(key) // want: can reach return without Release
	if !ok {
		return nil, errors.New("miss")
	}
	if fail {
		return nil, errors.New("boom") // blk still owned here
	}
	out := append([]byte(nil), blk.Bytes()...)
	blk.Release()
	return out, nil
}

// doubleRelease releases the same reference twice — must fire.
func doubleRelease(c *cache.Tiered, key string) {
	blk, ok := c.Get(key)
	if !ok {
		return
	}
	blk.Release()
	blk.Release() // want: released twice
}

// useAfterRelease touches the payload after giving the buffer back to
// the pool — must fire.
func useAfterRelease(c *cache.Tiered, key string) int {
	blk, ok := c.Get(key)
	if !ok {
		return 0
	}
	blk.Release()
	return blk.Len() // want: use after Release
}

// discarded drops the only reference on the floor — must fire.
func discarded(c *cache.Tiered, key string, data []byte) {
	c.Put(key, data) // want: discarded
}

// releaseAfterDefer releases explicitly with a deferred Release already
// pending, so the deferred one double-frees at exit — must fire.
func releaseAfterDefer(c *cache.Tiered, key string) []byte {
	blk, ok := c.Get(key)
	if !ok {
		return nil
	}
	defer blk.Release()
	out := append([]byte(nil), blk.Bytes()...)
	blk.Release() // want: deferred Release pending
	return out
}

// deferClean is the canonical correct shape: nothing to report.
func deferClean(c *cache.Tiered, key string) []byte {
	blk, ok := c.Get(key)
	if !ok {
		return nil
	}
	defer blk.Release()
	return append([]byte(nil), blk.Bytes()...)
}

// deferClosureClean discharges through a deferred closure: nothing to
// report.
func deferClosureClean(c *cache.Tiered, key string) int {
	blk, ok := c.Get(key)
	if !ok {
		return 0
	}
	defer func() { blk.Release() }()
	return blk.Len()
}

// errGuardClean follows the GetOrFill error-guard idiom: the block is
// owned only where err is nil, and that path releases. Nothing to
// report.
func errGuardClean(ctx context.Context, c *cache.Tiered, key string, fill func(context.Context) ([]byte, error)) (int, error) {
	blk, _, err := c.GetOrFill(ctx, key, fill)
	if err != nil {
		return 0, err
	}
	n := blk.Len()
	blk.Release()
	return n, nil
}

// nilGuardClean releases under an explicit nil check: nothing to
// report.
func nilGuardClean(c *cache.Tiered, key string) {
	blk, _ := c.Get(key)
	if blk != nil {
		blk.Release()
	}
}

// transferClean hands the reference to the store, which adopts it:
// nothing to report (ownership transferred at the call).
func transferClean(l *cache.LRU, c *cache.Tiered, key string) {
	blk, ok := c.Get(key)
	if !ok {
		return
	}
	l.PutBlock(key, blk)
}

// returnClean transfers the reference to the caller: nothing to report.
func returnClean(c *cache.Tiered, key string) *cache.Block {
	blk, ok := c.Get(key)
	if !ok {
		return nil
	}
	return blk
}

// loopClean acquires and releases once per iteration: the back edge
// carries no obligation, nothing to report.
func loopClean(c *cache.Tiered, keys []string) int {
	total := 0
	for _, key := range keys {
		blk, ok := c.Get(key)
		if !ok {
			continue
		}
		total += blk.Len()
		blk.Release()
	}
	return total
}

// immediateClean releases the call result in the same statement chain:
// nothing to report (no variable ever holds the obligation — the call
// result is the receiver of Release directly).
func immediateClean(c *cache.Tiered, key string, data []byte) {
	c.Put(key, data).Release()
}

// workerSelectClean mirrors the idx fetch worker: each block is either
// sent onward (ownership moves to the receiver) or released when the
// context dies mid-send. Nothing to report.
func workerSelectClean(ctx context.Context, c *cache.Tiered, keys []string, results chan<- *cache.Block) {
	for _, key := range keys {
		blk, ok := c.Get(key)
		if !ok {
			continue
		}
		select {
		case results <- blk:
		case <-ctx.Done():
			if blk != nil {
				blk.Release()
			}
			return
		}
	}
}

// mapStoreClean mirrors the volume reader: blocks collected into a map
// are owned by it, and a deferred closure sweeps the map at exit.
// Nothing to report.
func mapStoreClean(c *cache.Tiered, keys []string) int {
	blocks := make(map[int]*cache.Block, len(keys))
	defer func() {
		for _, blk := range blocks {
			blk.Release()
		}
	}()
	for i, key := range keys {
		blk, ok := c.Get(key)
		if !ok {
			continue
		}
		blocks[i] = blk
	}
	total := 0
	for _, blk := range blocks {
		total += blk.Len()
	}
	return total
}

// escapeHatch shows the suppression path: without the allow comment the
// analyzer would flag blk as leaked, since `_ = blk` neither releases
// nor transfers it.
func escapeHatch(c *cache.Tiered, key string) {
	//lint:allow refcount released by an async completion callback
	blk, ok := c.Get(key)
	_ = ok
	_ = blk
}
