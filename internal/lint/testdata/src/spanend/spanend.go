// Package spanend is a lint fixture: every violation below is asserted
// by internal/lint's golden-file tests.
package spanend

import (
	"context"

	"nsdfgo/internal/telemetry/trace"
)

// leaky starts a span and forgets it entirely — must fire.
func leaky(ctx context.Context) context.Context {
	ctx, span := trace.Start(ctx, "leaky") // want: span never ended
	_ = span
	return ctx
}

// discarded throws the span away at the call site — must fire.
func discarded(ctx context.Context) {
	ctx, _ = trace.Start(ctx, "discarded") // want: span discarded
	_ = ctx
}

// branchOnly ends the span on one path but returns early on the other —
// must fire (End is not on all paths and is not deferred).
func branchOnly(ctx context.Context, fail bool) error {
	_, span := trace.Start(ctx, "branch") // want: early return skips End
	if fail {
		return context.Canceled
	}
	span.End()
	return nil
}

// deferred is the canonical correct shape: nothing to report.
func deferred(ctx context.Context) {
	_, span := trace.Start(ctx, "ok")
	defer span.End()
	span.SetAttr(trace.Str("k", "v"))
}

// straightLine ends the span in the same block with no early return:
// nothing to report.
func straightLine(ctx context.Context) {
	_, span := trace.Start(ctx, "ok2")
	span.SetAttr(trace.Int("n", 1))
	span.End()
}

// collectorRoot covers the Collector.StartTrace spelling with a
// deferred closure ending the root: nothing to report.
func collectorRoot(col *trace.Collector) {
	root := col.StartTrace(trace.NewID(), "root")
	defer func() { root.End() }()
}

// handedOff transfers the obligation to the callee: nothing to report.
func handedOff(ctx context.Context) {
	_, span := trace.Start(ctx, "handoff")
	finish(span)
}

func finish(s *trace.Span) { s.End() }

// escapeHatch shows the suppression path for a span intentionally ended
// elsewhere (e.g. completion is signalled from another goroutine).
func escapeHatch(ctx context.Context) {
	//lint:allow spanend ended by the completion callback
	_, span := trace.Start(ctx, "async")
	_ = span
}
