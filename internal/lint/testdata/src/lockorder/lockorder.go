// Package lockorder is a lint fixture: every violation below is
// asserted by internal/lint's golden-file tests. It exercises the
// flow-sensitive mutex analyzer: exit-while-held, self-deadlock,
// unlock-with-defer-pending, and the whole-package lock-order cycle
// built from per-function summaries.
package lockorder

import (
	"errors"
	"sync"
)

// store pairs two named mutexes so functions below can order them
// inconsistently.
type store struct {
	mu    sync.Mutex
	bk    sync.Mutex
	state int
}

// leakOnReturn can return holding mu: the error branch exits before the
// Unlock — must fire.
func (s *store) leakOnReturn(fail bool) error {
	s.mu.Lock() // want: path can reach return without Unlock
	if fail {
		return errors.New("boom")
	}
	s.state++
	s.mu.Unlock()
	return nil
}

// selfDeadlock locks the same mutex twice on one path — must fire.
func (s *store) selfDeadlock() {
	s.mu.Lock()
	s.mu.Lock() // want: locked again while already held
	s.state++
	s.mu.Unlock()
	s.mu.Unlock()
}

// unlockWithDeferPending unlocks explicitly while the deferred unlock
// is still registered, so the defer double-unlocks at exit — must fire.
func (s *store) unlockWithDeferPending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.state
	s.mu.Unlock() // want: deferred unlock pending
	return v
}

// abOrder takes mu then bk — together with baOrder this is the classic
// cycle; the Finish pass must report it once.
func (s *store) abOrder() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bk.Lock() // want: cycle witness (mu -> bk edge)
	s.state++
	s.bk.Unlock()
}

// baOrder takes bk then mu: the inverted order closing the cycle.
func (s *store) baOrder() {
	s.bk.Lock()
	defer s.bk.Unlock()
	s.mu.Lock()
	s.state--
	s.mu.Unlock()
}

// relock is a helper that takes mu; calling it while holding mu is an
// interprocedural self-deadlock the call-graph pass must catch.
func (s *store) relock() {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
}

// callsWhileHeld calls relock with mu held — must fire (transitive
// self-deadlock through the call graph).
func (s *store) callsWhileHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.relock() // want: callee locks mu again
}

// deferClean is the canonical correct shape: nothing to report.
func (s *store) deferClean() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// branchClean unlocks on every path explicitly: nothing to report.
func (s *store) branchClean(fail bool) error {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return errors.New("boom")
	}
	s.state++
	s.mu.Unlock()
	return nil
}

// rwClean uses a read lock with a deferred release: nothing to report.
type table struct {
	rw sync.RWMutex
	m  map[string]int
}

func (t *table) get(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.m[k]
}

// unlockRelockClean mirrors the singleflight pattern: unlock to wait,
// relock afterwards, with an early-unlock-and-return branch. Nothing to
// report.
func (s *store) unlockRelockClean(ready <-chan struct{}) int {
	s.mu.Lock()
	if s.state > 0 {
		v := s.state
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	<-ready
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// escapeHatch shows the suppression path for a lock handed to a helper
// that unlocks it (a pattern the analyzer cannot follow).
func (s *store) escapeHatch() {
	//lint:allow lockorder unlocked by finish() on every path
	s.mu.Lock()
	s.finish()
}

func (s *store) finish() {
	s.state++
	s.mu.Unlock()
}
