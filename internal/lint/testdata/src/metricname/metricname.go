// Package metricname is a lint fixture: every violation below is
// asserted by internal/lint's golden-file tests. It is excluded from
// normal builds by the testdata path.
package metricname

import "nsdfgo/internal/telemetry"

const goodName = "nsdf_fixture_ops_total"

func register(reg *telemetry.Registry, service string, labels []string) {
	reg.Counter(goodName, "service", service).Inc() // ok: constant name, constant key, dynamic value

	reg.Counter("fixture_ops_total").Inc() // want: missing nsdf_ prefix
	reg.Counter("nsdf_Fixture_Ops").Inc()  // want: uppercase

	name := "nsdf_" + service
	reg.Gauge(name).Set(1) // want: dynamically built name

	reg.Histogram("nsdf_fixture_latency_seconds", service, "route").Observe(0) // want: dynamic label key

	reg.Gauge("nsdf_fixture_ops_total").Set(1) // want: kind conflict with the counter above

	reg.GaugeFunc("nsdf_fixture_live", func() float64 { return 0 }, labels...) // want: dynamic label slice

	//lint:allow metricname legacy family kept for the fixture
	reg.Counter("legacy_requests_total").Inc() // suppressed by the allow comment
}
