// Package hotalloc is a lint fixture: every violation below is asserted
// by internal/lint's golden-file tests, which point Config.HotPackages
// at this package.
package hotalloc

import "fmt"

func violations(items []int, base string) string {
	out := ""
	for _, it := range items {
		out += fmt.Sprintf("%d,", it) // want: += and Sprintf in a loop
	}
	var parts []string
	for range items {
		parts = append(parts, base+"!") // want: append without capacity, concat
	}
	if len(parts) > 0 {
		out = parts[0]
	}
	return out
}

// blockName is a formatting helper: it calls fmt.Sprintf, so calling it
// from a loop allocates per iteration just like an inline Sprintf.
func blockName(b int) string {
	return fmt.Sprintf("b%08d", b)
}

func hiddenFormatter(items []int) []string {
	names := make([]string, 0, len(items))
	for i := range items {
		names = append(names, blockName(i)) // want: formatter helper in a loop
	}
	return names
}

func hoistedFormatter(items []int) string {
	name := blockName(len(items)) // ok: outside any loop
	for range items {
		_ = name
	}
	return name
}

func preallocated(items []int) []string {
	keys := make([]string, 0, len(items)) // ok: capacity stated up front
	for range items {
		keys = append(keys, "k")
	}
	return keys
}

func allowed(items []int) []int {
	var lazy []int
	for i := range items {
		//lint:allow hotalloc cold path, size unknown and tiny
		lazy = append(lazy, i) // suppressed by the allow comment
	}
	return lazy
}
