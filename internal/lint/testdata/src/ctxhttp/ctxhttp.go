// Package ctxhttp is a lint fixture: every violation below is asserted
// by internal/lint's golden-file tests.
package ctxhttp

import (
	"context"
	"net/http"
)

// fetch builds a context-free request — the trace and the caller's
// deadline both stop here. Must fire.
func fetch(url string) (*http.Request, error) {
	return http.NewRequest(http.MethodGet, url, nil) // want: context-free outbound request
}

// fetchThreaded carries the caller's context: nothing to report.
func fetchThreaded(ctx context.Context, url string) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, http.MethodGet, url, nil) // ok
}

// escapeHatch shows the suppression path for the rare legitimate
// context-free request (e.g. a fire-and-forget startup probe).
func escapeHatch(url string) (*http.Request, error) {
	//lint:allow ctxhttp startup probe predates any request context
	return http.NewRequest(http.MethodGet, url, nil)
}
