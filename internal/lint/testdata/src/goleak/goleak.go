// Package goleak is a lint fixture: every violation below is asserted
// by internal/lint's golden-file tests.
package goleak

import (
	"context"
	"sync"
	"sync/atomic"
)

func leakyPool(jobs []int, results chan<- int) {
	for _, j := range jobs {
		go func() { // want: no abort path at all
			results <- j * 2
		}()
	}
}

func withContext(ctx context.Context, jobs []int, results chan<- int) {
	for _, j := range jobs {
		go func() { // ok: selects on ctx.Done
			select {
			case results <- j:
			case <-ctx.Done():
			}
		}()
	}
}

func withChannelReceive(work chan int, out chan<- int) {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { // ok: terminates when work is drained and closed
			defer wg.Done()
			for j := range work {
				out <- j
			}
		}()
	}
	wg.Wait()
}

func withAbortFlag(n int, fn func(int)) {
	var aborted atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() { // ok: polls the pool's atomic abort flag
			defer wg.Done()
			for {
				if aborted.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func allowedFireAndForget(hooks []func()) {
	for _, h := range hooks {
		//lint:allow goleak fire-and-forget notification hooks
		go func() { // suppressed by the allow comment
			h()
		}()
	}
}
