package cfg

import (
	"fmt"
	"go/ast"
)

// Analysis is a forward dataflow problem over a Graph. F is the fact
// type flowing along edges; it must behave as a value (Transfer, Refine,
// and Join must not mutate their inputs). The lattice must be finite in
// height for the fixpoint to converge; Forward enforces a step budget as
// a backstop and reports non-convergence as an error instead of looping.
type Analysis[F any] interface {
	// Entry is the fact at function entry.
	Entry() F
	// Transfer flows a fact through one block node (a simple statement
	// or an atomic condition expression).
	Transfer(fact F, n ast.Node) F
	// Refine specialises a fact along a conditional edge: cond is the
	// atomic branch condition and branch the value it takes on the edge.
	// Analyses with no branch sensitivity return fact unchanged.
	Refine(fact F, cond ast.Expr, branch bool) F
	// Join merges the facts of two incoming edges at a merge point.
	Join(a, b F) F
	// Equal reports whether two facts are equal (fixpoint detection).
	Equal(a, b F) bool
}

// Result holds the converged facts of one Forward run.
type Result[F any] struct {
	a Analysis[F]
	// In and Out are the facts at block entry and exit; only blocks
	// reachable from Entry are present.
	In, Out map[*Block]F
}

// Reached reports whether the block is reachable from the entry.
func (r *Result[F]) Reached(b *Block) bool {
	_, ok := r.In[b]
	return ok
}

// EdgeFact returns the fact flowing along e: the source block's out-fact
// refined by the edge condition. ok is false when the source block is
// unreachable.
func (r *Result[F]) EdgeFact(e *Edge) (F, bool) {
	out, ok := r.Out[e.From]
	if !ok {
		var zero F
		return zero, false
	}
	if e.Kind == Cond {
		out = r.a.Refine(out, e.Cond, e.Branch)
	}
	return out, true
}

// Forward runs the analysis to fixpoint with a worklist, joining facts
// at merge points and iterating loops until stable. The step budget
// scales with graph size; exceeding it means the analysis lattice is
// not converging (an analyzer bug), reported as an error so the driver
// can fail loudly instead of hanging.
func Forward[F any](g *Graph, a Analysis[F]) (*Result[F], error) {
	r := &Result[F]{a: a, In: make(map[*Block]F), Out: make(map[*Block]F)}
	r.In[g.Entry] = a.Entry()
	queue := []*Block{g.Entry}
	queued := map[*Block]bool{g.Entry: true}
	budget := (len(g.Blocks) + 1) * 64
	for steps := 0; len(queue) > 0; steps++ {
		if steps > budget {
			return nil, fmt.Errorf("cfg: dataflow did not converge within %d steps over %d blocks", budget, len(g.Blocks))
		}
		b := queue[0]
		queue = queue[1:]
		queued[b] = false

		out := r.In[b]
		for _, n := range b.Nodes {
			out = a.Transfer(out, n)
		}
		if prev, ok := r.Out[b]; ok && a.Equal(prev, out) {
			continue
		}
		r.Out[b] = out
		for _, e := range b.Succs {
			f := out
			if e.Kind == Cond {
				f = a.Refine(f, e.Cond, e.Branch)
			}
			in, seen := r.In[e.To]
			if seen {
				joined := a.Join(in, f)
				if a.Equal(joined, in) {
					continue
				}
				r.In[e.To] = joined
			} else {
				r.In[e.To] = f
			}
			if !queued[e.To] {
				queued[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	return r, nil
}
