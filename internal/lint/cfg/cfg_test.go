package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of a function and returns it.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return file.Decls[0].(*ast.FuncDecl).Body
}

func build(t *testing.T, body string) *Graph {
	t.Helper()
	g, err := Build(parseBody(t, body))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// exitEdges counts the exit block's incoming edges by kind.
func exitEdges(g *Graph) map[EdgeKind]int {
	out := map[EdgeKind]int{}
	for _, e := range g.Exit.Preds {
		out[e.Kind]++
	}
	return out
}

// reachable returns the blocks reachable from the entry.
func reachable(g *Graph) map[*Block]bool {
	seen := map[*Block]bool{g.Entry: true}
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range b.Succs {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// condEdges collects every Cond edge reachable from the entry, rendered
// as "expr=branch".
func condEdges(g *Graph) []string {
	var out []string
	for b := range reachable(g) {
		for _, e := range b.Succs {
			if e.Kind == Cond {
				out = append(out, fmt.Sprintf("%s=%v", exprString(e.Cond), e.Branch))
			}
		}
	}
	return out
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.BinaryExpr:
		return exprString(x.X) + x.Op.String() + exprString(x.Y)
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	}
	return fmt.Sprintf("%T", e)
}

func TestIfElseDiamond(t *testing.T) {
	g := build(t, `
	x := 1
	if cond {
		x = 2
	} else {
		x = 3
	}
	use(x)`)
	edges := condEdges(g)
	if len(edges) != 2 {
		t.Fatalf("want 2 cond edges, got %v", edges)
	}
	want := map[string]bool{"cond=true": true, "cond=false": true}
	for _, e := range edges {
		if !want[e] {
			t.Errorf("unexpected cond edge %q", e)
		}
	}
	// Exactly one implicit return.
	if k := exitEdges(g); k[Return] != 1 || k[Panic] != 0 {
		t.Errorf("exit edges = %v, want one Return", k)
	}
}

// TestShortCircuitAnd proves `a && b` is decomposed: b is only
// evaluated on a's true edge, and both atoms emit their own polarity
// pair.
func TestShortCircuitAnd(t *testing.T) {
	g := build(t, `
	if a && b {
		use(1)
	}
	use(2)`)
	edges := condEdges(g)
	want := map[string]bool{"a=true": true, "a=false": true, "b=true": true, "b=false": true}
	if len(edges) != 4 {
		t.Fatalf("want 4 cond edges for a && b, got %v", edges)
	}
	for _, e := range edges {
		if !want[e] {
			t.Errorf("unexpected cond edge %q", e)
		}
	}
	// The b-block must be reachable only via a=true.
	var bBlock *Block
	for blk := range reachable(g) {
		for _, n := range blk.Nodes {
			if id, ok := n.(*ast.Ident); ok && id.Name == "b" {
				bBlock = blk
			}
		}
	}
	if bBlock == nil {
		t.Fatal("no block evaluates b")
	}
	for _, e := range bBlock.Preds {
		if e.Kind != Cond || exprString(e.Cond) != "a" || !e.Branch {
			t.Errorf("b's predecessor edge is %s %s=%v, want cond a=true", e.Kind, exprString(e.Cond), e.Branch)
		}
	}
}

// TestShortCircuitOrNot proves `!a || b` routes correctly: ! swaps the
// polarity, so b evaluates only when a is true.
func TestShortCircuitOrNot(t *testing.T) {
	g := build(t, `
	if !a || b {
		use(1)
	}`)
	var bBlock *Block
	for blk := range reachable(g) {
		for _, n := range blk.Nodes {
			if id, ok := n.(*ast.Ident); ok && id.Name == "b" {
				bBlock = blk
			}
		}
	}
	if bBlock == nil {
		t.Fatal("no block evaluates b")
	}
	for _, e := range bBlock.Preds {
		if e.Kind != Cond || exprString(e.Cond) != "a" || !e.Branch {
			t.Errorf("b's predecessor edge is %s=%v of %s, want a=true (|| tries b when !a is false)",
				e.Kind, e.Branch, exprString(e.Cond))
		}
	}
}

// TestForLoopBackEdge proves a for loop has a back edge to its head and
// that continue/break target post and done respectively.
func TestForLoopBackEdge(t *testing.T) {
	g := build(t, `
	for i := 0; i < n; i++ {
		if skip {
			continue
		}
		if stop {
			break
		}
		use(i)
	}
	use(0)`)
	// Find the head: the block whose last node is the condition i<n.
	var head *Block
	for blk := range reachable(g) {
		for _, n := range blk.Nodes {
			if be, ok := n.(*ast.BinaryExpr); ok && exprString(be) == "i<n" {
				head = blk
			}
		}
	}
	if head == nil {
		t.Fatal("no condition block for i < n")
	}
	// The head must be on a cycle: some path from its true-successor
	// leads back to it.
	onCycle := false
	var walk func(b *Block, seen map[*Block]bool)
	walk = func(b *Block, seen map[*Block]bool) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, e := range b.Succs {
			if e.To == head {
				onCycle = true
				return
			}
			walk(e.To, seen)
		}
	}
	for _, e := range head.Succs {
		if e.Kind == Cond && e.Branch {
			walk(e.To, map[*Block]bool{})
		}
	}
	if !onCycle {
		t.Error("loop body has no back edge to the condition head")
	}
	if k := exitEdges(g); k[Return] != 1 {
		t.Errorf("exit edges = %v, want exactly one implicit Return", k)
	}
}

// TestRangeLoop proves the range statement lands in its head block with
// both an enter and a skip edge, and the body loops back.
func TestRangeLoop(t *testing.T) {
	g := build(t, `
	for _, v := range xs {
		use(v)
	}
	use(0)`)
	var head *Block
	for blk := range reachable(g) {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.RangeStmt); ok {
				head = blk
			}
		}
	}
	if head == nil {
		t.Fatal("range statement not in any reachable block")
	}
	if len(head.Succs) != 2 {
		t.Fatalf("range head has %d successors, want 2 (enter, skip)", len(head.Succs))
	}
	backEdge := false
	for _, e := range head.Succs {
		for _, e2 := range e.To.Succs {
			if e2.To == head {
				backEdge = true
			}
		}
	}
	if !backEdge {
		t.Error("range body has no back edge to the head")
	}
}

// TestReturnAndPanicEdges proves returns and explicit panics produce
// distinct edge kinds into the exit block.
func TestReturnAndPanicEdges(t *testing.T) {
	g := build(t, `
	if bad {
		panic("bad")
	}
	if done {
		return
	}
	use(1)`)
	k := exitEdges(g)
	// One explicit return, one implicit (fall off the end), one panic.
	if k[Panic] != 1 {
		t.Errorf("want 1 Panic exit edge, got %d", k[Panic])
	}
	if k[Return] != 2 {
		t.Errorf("want 2 Return exit edges (explicit + implicit), got %d", k[Return])
	}
}

// TestDeferCollection proves defer statements are collected in source
// order and stay in their blocks as ordinary nodes.
func TestDeferCollection(t *testing.T) {
	g := build(t, `
	defer use(1)
	if cond {
		defer use(2)
	}
	use(3)`)
	if len(g.Defers) != 2 {
		t.Fatalf("want 2 defers collected, got %d", len(g.Defers))
	}
	if g.Defers[0].Pos() > g.Defers[1].Pos() {
		t.Error("defers not in source order")
	}
	found := 0
	for blk := range reachable(g) {
		for _, n := range blk.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				found++
			}
		}
	}
	if found != 2 {
		t.Errorf("want both defers as block nodes, found %d", found)
	}
}

// TestUnreachableAfterReturn proves code after a return lands in a
// dangling block with no predecessors rather than being lost.
func TestUnreachableAfterReturn(t *testing.T) {
	g := build(t, `
	return
	use(1)`)
	r := reachable(g)
	found := false
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok && exprString(call.Fun) == "use" {
					found = true
					if r[blk] {
						t.Error("statement after return is reachable")
					}
					if len(blk.Preds) != 0 {
						t.Error("unreachable block has predecessors")
					}
				}
			}
		}
	}
	if !found {
		t.Error("statement after return missing from the graph")
	}
}

// TestGotoAndLabels proves goto edges resolve to their labels and that
// an unresolved goto is a build error, not a panic.
func TestGotoAndLabels(t *testing.T) {
	g := build(t, `
	i := 0
loop:
	i++
	if i < n {
		goto loop
	}
	use(i)`)
	// The labelled block must have at least two predecessors: fall-in
	// and the goto.
	var labelBlock *Block
	for blk := range reachable(g) {
		for _, n := range blk.Nodes {
			if inc, ok := n.(*ast.IncDecStmt); ok && exprString(inc.X) == "i" {
				labelBlock = blk
			}
		}
	}
	if labelBlock == nil {
		t.Fatal("labelled statement not found")
	}
	if len(labelBlock.Preds) < 2 {
		t.Errorf("label block has %d preds, want >= 2 (fall-in + goto)", len(labelBlock.Preds))
	}

	if _, err := Build(parseBody(t, "goto nowhere")); err == nil {
		t.Error("unresolved goto did not error")
	} else if !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("error does not name the label: %v", err)
	}
}

// TestSwitchWithFallthrough proves value-switch cases connect to the
// dispatch point, fallthrough links consecutive bodies, and a missing
// default adds a skip edge.
func TestSwitchWithFallthrough(t *testing.T) {
	g := build(t, `
	switch x {
	case 1:
		use(1)
		fallthrough
	case 2:
		use(2)
	}
	use(3)`)
	var case1, case2 *Block
	for blk := range reachable(g) {
		for _, n := range blk.Nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue
			}
			if lit, ok := call.Args[0].(*ast.BasicLit); ok {
				switch lit.Value {
				case "1":
					case1 = blk
				case "2":
					case2 = blk
				}
			}
		}
	}
	if case1 == nil || case2 == nil {
		t.Fatal("case bodies not found")
	}
	linked := false
	for _, e := range case1.Succs {
		if e.To == case2 {
			linked = true
		}
	}
	if !linked {
		t.Error("fallthrough does not link case 1 to case 2")
	}
}

// parityAnalysis is a minimal dataflow client: it tracks whether
// variable x is "set" (assigned a value) and exercises Join at merges,
// Refine on branches, and fixpoint over loops.
type parityAnalysis struct{}

// parityFact: 0 unknown, 1 set, 2 maybe (merge of set/unset).
type parityFact int

func (parityAnalysis) Entry() parityFact { return 0 }
func (parityAnalysis) Transfer(f parityFact, n ast.Node) parityFact {
	if as, ok := n.(*ast.AssignStmt); ok {
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "x" {
			return 1
		}
	}
	return f
}
func (parityAnalysis) Refine(f parityFact, cond ast.Expr, branch bool) parityFact { return f }
func (parityAnalysis) Join(a, b parityFact) parityFact {
	if a == b {
		return a
	}
	return 2
}
func (parityAnalysis) Equal(a, b parityFact) bool { return a == b }

// TestForwardFixpoint proves Forward joins at merges and converges over
// a loop: x is assigned only on one branch, so the merged exit fact is
// "maybe".
func TestForwardFixpoint(t *testing.T) {
	g := build(t, `
	for i := 0; i < n; i++ {
		if cond {
			x := 1
			use(x)
		}
	}
	use(0)`)
	res, err := Forward[parityFact](g, parityAnalysis{})
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	if !res.Reached(g.Exit) {
		t.Fatal("exit not reached")
	}
	if got := res.In[g.Exit]; got != 2 {
		t.Errorf("exit fact = %d, want 2 (maybe: set on one path only)", got)
	}
}

// TestForwardEdgeFact proves EdgeFact refines along the requested cond
// edge.
type refineAnalysis struct{}

func (refineAnalysis) Entry() parityFact                              { return 0 }
func (refineAnalysis) Transfer(f parityFact, n ast.Node) parityFact   { return f }
func (refineAnalysis) Join(a, b parityFact) parityFact                { return max(a, b) }
func (refineAnalysis) Equal(a, b parityFact) bool                     { return a == b }
func (refineAnalysis) Refine(f parityFact, c ast.Expr, br bool) parityFact {
	if id, ok := c.(*ast.Ident); ok && id.Name == "ok" && br {
		return 1
	}
	return f
}

func TestForwardEdgeFact(t *testing.T) {
	g := build(t, `
	if ok {
		use(1)
	}`)
	res, err := Forward[parityFact](g, refineAnalysis{})
	if err != nil {
		t.Fatalf("Forward: %v", err)
	}
	checked := false
	for blk := range reachable(g) {
		for _, e := range blk.Succs {
			if e.Kind == Cond && e.Branch {
				f, ok := res.EdgeFact(e)
				if !ok {
					t.Fatal("EdgeFact on reachable edge returned !ok")
				}
				if f != 1 {
					t.Errorf("EdgeFact on ok=true edge = %d, want refined 1", f)
				}
				checked = true
			}
		}
	}
	if !checked {
		t.Fatal("no cond edge found")
	}
}
