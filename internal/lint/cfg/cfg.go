// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and runs forward dataflow analyses over them (see
// dataflow.go). It is the foundation of the flow-sensitive analyzers in
// internal/lint (refcount, lockorder, ctxleak): where the original
// AST-walk analyzers could only ask "does an End() appear somewhere in
// this function", a CFG-based analyzer asks "is the obligation
// discharged on *every* path", with branches, short-circuit
// conditionals, loops, defer, and panic/return edges all modelled.
//
// The builder is pure syntax (go/ast only); analyzers bring their own
// go/types information when interpreting the nodes. Compound statements
// are decomposed so that a basic block's Nodes list contains only
// simple statements and atomic branch conditions:
//
//   - if/for conditions are split at && and || (short-circuit): each
//     atomic condition becomes the last node of its own block, and the
//     two outgoing edges carry the condition expression and the branch
//     polarity, so analyses can refine facts per branch (`if ok`,
//     `if err != nil`, `if blk == nil`).
//   - a range statement appears as a single node in its head block
//     (analyses interpret Key/Value/X and must ignore its Body, which
//     is built into successor blocks).
//   - switch/type-switch tags and case expressions appear as expression
//     nodes; select communication clauses start their case blocks.
//   - return statements produce Return edges into the exit block,
//     explicit panic(...) calls produce Panic edges, and falling off
//     the end of the body produces a Return edge, so "can this function
//     exit while still owing a Release/Unlock/cancel" is a question
//     about the exit block's predecessor edges.
//   - defer statements stay in their block (ordinary nodes) and are
//     additionally collected in Graph.Defers.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
)

// EdgeKind classifies a control-flow edge.
type EdgeKind int

const (
	// Flow is an unconditional transfer (fallthrough, jump, loop back
	// edge, or the nondeterministic enter/skip pair of a range loop or
	// select).
	Flow EdgeKind = iota
	// Cond is a conditional transfer: Edge.Cond is the atomic condition
	// and Edge.Branch the value it takes along this edge.
	Cond
	// Return enters the exit block via a return statement or by falling
	// off the end of the function body.
	Return
	// Panic enters the exit block via an explicit panic(...) statement.
	Panic
)

// String names the edge kind for tests and diagnostics.
func (k EdgeKind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Cond:
		return "cond"
	case Return:
		return "return"
	case Panic:
		return "panic"
	}
	return "unknown"
}

// Edge is one directed control-flow edge.
type Edge struct {
	From, To *Block
	Kind     EdgeKind
	// Cond is the atomic branch condition (Kind == Cond only).
	Cond ast.Expr
	// Branch is the value Cond takes along this edge.
	Branch bool
}

// Block is a basic block: a maximal run of simple statements and atomic
// condition expressions with a single entry and branching only at the
// end.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable, useful for
	// deterministic iteration and debugging).
	Index int
	// Nodes are the simple statements and atomic condition expressions
	// of the block, in execution order.
	Nodes []ast.Node
	// Succs and Preds are the outgoing and incoming edges.
	Succs []*Edge
	Preds []*Edge
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters first.
	Entry *Block
	// Exit is the synthetic exit block: every Return and Panic edge
	// lands here. It has no nodes and no successors.
	Exit *Block
	// Blocks lists every block, Entry first; Exit is included.
	Blocks []*Block
	// Defers collects the defer statements of the body in source order
	// (they also appear as ordinary nodes in their blocks).
	Defers []*ast.DeferStmt
}

// Build constructs the control-flow graph of one function body. Nested
// function literals are not descended into: a FuncLit is an ordinary
// expression here, and callers analyze its body as a separate graph.
func Build(body *ast.BlockStmt) (*Graph, error) {
	b := &builder{
		g:      &Graph{},
		labels: make(map[string]*Block),
	}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmt(body)
	// Falling off the end of the body is an implicit return.
	b.edge(b.g.Exit, Return, nil, false)
	for _, pg := range b.gotos {
		target, ok := b.labels[pg.label]
		if !ok {
			return nil, fmt.Errorf("cfg: goto %s has no label", pg.label)
		}
		b.connect(pg.from, target, Flow, nil, false)
	}
	if b.err != nil {
		return nil, b.err
	}
	return b.g, nil
}

// frame is one enclosing breakable construct (loop, switch, or select).
type frame struct {
	label string
	brk   *Block
	cont  *Block // non-nil only for loops
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g   *Graph
	cur *Block // nil while the current point is unreachable

	frames []*frame
	labels map[string]*Block
	gotos  []pendingGoto
	// pendingLabel is the label of the LabeledStmt being built, consumed
	// by the next loop/switch/select so `break L` / `continue L` resolve.
	pendingLabel string
	// fallthroughTo is the body block of the next switch case while a
	// case body is being built.
	fallthroughTo *Block

	err error
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// connect adds an edge between two specific blocks.
func (b *builder) connect(from, to *Block, kind EdgeKind, cond ast.Expr, branch bool) {
	e := &Edge{From: from, To: to, Kind: kind, Cond: cond, Branch: branch}
	from.Succs = append(from.Succs, e)
	to.Preds = append(to.Preds, e)
}

// edge adds an edge from the current block; a nil current block means
// the point is unreachable and the edge is dropped.
func (b *builder) edge(to *Block, kind EdgeKind, cond ast.Expr, branch bool) {
	if b.cur == nil {
		return
	}
	b.connect(b.cur, to, kind, cond, branch)
}

// add appends a node to the current block, materialising an unreachable
// block if needed so every statement exists somewhere in the graph.
func (b *builder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable code after return/panic/branch
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// takeLabel consumes the pending label for the construct being built.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) pushFrame(label string, brk, cont *Block) {
	b.frames = append(b.frames, &frame{label: label, brk: brk, cont: cont})
}

func (b *builder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

// findBreak resolves the target of a break statement.
func (b *builder) findBreak(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if label == "" || f.label == label {
			return f.brk
		}
	}
	return nil
}

// findContinue resolves the target of a continue statement.
func (b *builder) findContinue(label string) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if f.cont != nil && (label == "" || f.label == label) {
			return f.cont
		}
	}
	return nil
}

// cond lowers a branch condition into the graph, splitting short-circuit
// operators so every Cond edge carries an atomic condition.
func (b *builder) cond(e ast.Expr, t, f *Block) {
	switch ex := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if ex.Op == token.NOT {
			b.cond(ex.X, f, t)
			return
		}
	case *ast.BinaryExpr:
		switch ex.Op {
		case token.LAND: // X && Y: Y evaluates only when X is true
			mid := b.newBlock()
			b.cond(ex.X, mid, f)
			b.cur = mid
			b.cond(ex.Y, t, f)
			return
		case token.LOR: // X || Y: Y evaluates only when X is false
			mid := b.newBlock()
			b.cond(ex.X, t, mid)
			b.cur = mid
			b.cond(ex.Y, t, f)
			return
		}
	}
	e = ast.Unparen(e)
	b.add(e)
	b.edge(t, Cond, e, true)
	b.edge(f, Cond, e, false)
	b.cur = nil
}

// isPanicCall recognises an explicit call to the panic builtin. This is
// syntactic: a local function named panic would be misclassified, which
// this repository does not do.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}
	case *ast.IfStmt:
		b.stmt(s.Init)
		then := b.newBlock()
		done := b.newBlock()
		els := done
		if s.Else != nil {
			els = b.newBlock()
		}
		b.cond(s.Cond, then, els)
		b.cur = then
		b.stmt(s.Body)
		b.edge(done, Flow, nil, false)
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else)
			b.edge(done, Flow, nil, false)
		}
		b.cur = done
	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		head := b.newBlock()
		body := b.newBlock()
		done := b.newBlock()
		b.edge(head, Flow, nil, false)
		b.cur = head
		if s.Cond != nil {
			b.cond(s.Cond, body, done)
		} else {
			b.edge(body, Flow, nil, false)
			b.cur = nil
		}
		cont := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			cont = post
		}
		b.pushFrame(label, done, cont)
		b.cur = body
		b.stmt(s.Body)
		b.edge(cont, Flow, nil, false)
		b.popFrame()
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(head, Flow, nil, false)
		}
		b.cur = done
	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		body := b.newBlock()
		done := b.newBlock()
		b.edge(head, Flow, nil, false)
		b.cur = head
		b.add(s) // analyses interpret Key/Value/X only; Body is below
		b.edge(body, Flow, nil, false)
		b.edge(done, Flow, nil, false)
		b.pushFrame(label, done, head)
		b.cur = body
		b.stmt(s.Body)
		b.edge(head, Flow, nil, false)
		b.popFrame()
		b.cur = done
	case *ast.SwitchStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(label, s.Body.List, true)
	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		b.add(s.Assign)
		b.switchClauses(label, s.Body.List, false)
	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		if head == nil {
			head = b.newBlock()
			b.cur = head
		}
		done := b.newBlock()
		b.pushFrame(label, done, nil)
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			cb := b.newBlock()
			b.connect(head, cb, Flow, nil, false)
			b.cur = cb
			b.stmt(comm.Comm) // nil for default
			for _, st := range comm.Body {
				b.stmt(st)
			}
			b.edge(done, Flow, nil, false)
		}
		b.popFrame()
		if len(s.Body.List) == 0 {
			b.cur = nil // empty select blocks forever
		} else {
			b.cur = done
		}
	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.g.Exit, Return, nil, false)
		b.cur = nil
	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if to := b.findBreak(label); to != nil {
				b.edge(to, Flow, nil, false)
			} else if b.err == nil {
				b.err = fmt.Errorf("cfg: break outside breakable construct at offset %d", s.Pos())
			}
			b.cur = nil
		case token.CONTINUE:
			if to := b.findContinue(label); to != nil {
				b.edge(to, Flow, nil, false)
			} else if b.err == nil {
				b.err = fmt.Errorf("cfg: continue outside loop at offset %d", s.Pos())
			}
			b.cur = nil
		case token.GOTO:
			if b.cur != nil {
				b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: label})
			}
			b.cur = nil
		case token.FALLTHROUGH:
			if b.fallthroughTo != nil {
				b.edge(b.fallthroughTo, Flow, nil, false)
			}
			b.cur = nil
		}
	case *ast.LabeledStmt:
		lb, ok := b.labels[s.Label.Name]
		if !ok {
			lb = b.newBlock()
			b.labels[s.Label.Name] = lb
		}
		b.edge(lb, Flow, nil, false)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.add(s)
	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.edge(b.g.Exit, Panic, nil, false)
			b.cur = nil
		}
	default:
		// Assignments, declarations, go/send/incdec statements, and
		// anything else without internal control flow.
		b.add(s)
	}
}

// switchClauses lowers the case clauses of a (type) switch: each clause
// body is its own block reachable from the dispatch point, with
// fallthrough edges between consecutive value-switch cases and a skip
// edge to the join when no default clause exists.
func (b *builder) switchClauses(label string, clauses []ast.Stmt, allowFallthrough bool) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	done := b.newBlock()
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		bodies[i] = b.newBlock()
		if len(cl.(*ast.CaseClause).List) == 0 {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.connect(head, done, Flow, nil, false)
	}
	b.pushFrame(label, done, nil)
	savedFT := b.fallthroughTo
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		b.connect(head, bodies[i], Flow, nil, false)
		b.cur = bodies[i]
		for _, e := range cc.List {
			b.add(e) // case expressions are evaluated (uses, not branches)
		}
		if allowFallthrough && i+1 < len(clauses) {
			b.fallthroughTo = bodies[i+1]
		} else {
			b.fallthroughTo = nil
		}
		for _, st := range cc.Body {
			b.stmt(st)
		}
		b.edge(done, Flow, nil, false)
	}
	b.fallthroughTo = savedFT
	b.popFrame()
	b.cur = done
}
