package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module under analysis.
type Package struct {
	// Path is the package's import path (module path + relative dir).
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Files are the parsed non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the expression/type maps filled during checking.
	Info *types.Info
	// Fset is the file set shared by every package of one Loader.
	Fset *token.FileSet
}

// Loader parses and type-checks packages of a single Go module using
// only the standard library: module-internal imports are resolved from
// source, everything else through the compiler's export data. Analyzer
// fixture packages under testdata/ load the same way, so the analyzers
// see identical type information in production runs and in tests.
type Loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package
	loading    map[string]bool
}

// NewLoader returns a loader rooted at the directory containing go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: read go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", moduleRoot)
	}
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	return &Loader{
		fset:       token.NewFileSet(),
		moduleRoot: abs,
		modulePath: modPath,
		std:        importer.Default(),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modulePath }

// Load resolves the given patterns to package directories, loads and
// type-checks each, and returns them sorted by import path. Supported
// patterns: "./..." (whole module), "./dir/..." (subtree), "./dir" or
// "dir" (single package). testdata, hidden, and underscore-prefixed
// directories are skipped during "..." expansion.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		rel := strings.TrimPrefix(pat, "./")
		switch {
		case rel == "..." || rel == "":
			if err := l.walkPackages(l.moduleRoot, dirs); err != nil {
				return nil, err
			}
		case strings.HasSuffix(rel, "/..."):
			root := filepath.Join(l.moduleRoot, filepath.FromSlash(strings.TrimSuffix(rel, "/...")))
			if err := l.walkPackages(root, dirs); err != nil {
				return nil, err
			}
		default:
			dirs[filepath.Join(l.moduleRoot, filepath.FromSlash(rel))] = true
		}
	}
	var out []*Package
	for dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// walkPackages collects every directory under root that contains
// buildable Go files, honouring the go tool's skip conventions.
func (l *Loader) walkPackages(root string, dirs map[string]bool) error {
	return filepath.WalkDir(root, func(p string, de os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !de.IsDir() {
			return nil
		}
		name := de.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if bp, err := build.ImportDir(p, 0); err == nil && len(bp.GoFiles) > 0 {
			dirs[p] = true
		}
		return nil
	})
}

// importPathFor maps an absolute package directory to its import path
// within the module.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.moduleRoot)
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir loads and type-checks the package in one directory (absolute
// path inside the module). Directories with no buildable Go files load
// as nil without error.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.loadPath(path, dir)
}

func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(path, l.modulePath)
	rel = strings.TrimPrefix(rel, "/")
	return filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
}

func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, noGo := err.(*build.NoGoError); noGo {
			return nil, nil
		}
		return nil, fmt.Errorf("lint: scan %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-check %s: %v", path, typeErrs[0])
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info, Fset: l.fset}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-internal paths load from
// source; everything else (the standard library) comes from compiler
// export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.loadPath(path, l.dirFor(path))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}
