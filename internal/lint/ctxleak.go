package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"nsdfgo/internal/lint/cfg"
)

// CtxLeakAnalyzer flags derived contexts whose cancel function is not
// called on every path. context.WithCancel/WithTimeout/WithDeadline
// each start a goroutine (or arm a timer) that only stops when the
// returned CancelFunc runs; a path that returns without calling it —
// typically an early error return between the derivation and the
// `defer cancel()` — leaks that goroutine on every request. This is
// exactly the bug class the hedged-read path in internal/shard invites:
// a per-attempt WithCancel whose cancel is skipped when the winning
// response returns early.
//
// The analyzer tracks the CancelFunc variable through the CFG: calling
// it (directly or in a deferred closure) or deferring it discharges the
// obligation; passing it to a call, returning it, storing it into a
// structure, or capturing it in a function literal transfers ownership
// and ends the tracking. Paths that exit by panicking are not flagged.
var CtxLeakAnalyzer = &Analyzer{
	Name: "ctxleak",
	Doc:  "cancel functions of derived contexts are called on every path",
	Run:  runCtxLeak,
}

func runCtxLeak(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && mentionsCtxDerive(pass, fn.Body) {
					checkCtxLeak(pass, fn.Body)
				}
			case *ast.FuncLit:
				if mentionsCtxDerive(pass, fn.Body) {
					checkCtxLeak(pass, fn.Body)
				}
			}
			return true
		})
	}
}

// ctxDeriveCall reports whether call derives a cancellable context and
// names the deriving function.
func ctxDeriveCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	switch fn.Name() {
	case "WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause", "WithTimeoutCause", "WithDeadlineCause":
		return "context." + fn.Name(), true
	}
	return "", false
}

func mentionsCtxDerive(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if _, derive := ctxDeriveCall(pass, call); derive {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// clState is the per-cancel-variable state.
type clState uint8

const (
	clOwned    clState = iota + 1 // cancel owed on this path
	clDeferred                    // defer cancel() discharges it
	clCalled                      // cancel has run on this path
	clEscaped                     // cancel transferred out; no obligation
	clTop                         // incompatible merge; tracking abandoned
)

type clFact struct {
	state clState
	pos   token.Pos
	src   string // the deriving call, e.g. "context.WithCancel"
}

type clFacts map[types.Object]clFact

func (f clFacts) clone() clFacts {
	out := make(clFacts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

type clAnalysis struct {
	pass     *Pass
	report   bool
	reported map[string]bool
}

func (a *clAnalysis) Entry() clFacts { return clFacts{} }

func (a *clAnalysis) Equal(x, y clFacts) bool {
	if len(x) != len(y) {
		return false
	}
	for k, v := range x {
		if y[k] != v {
			return false
		}
	}
	return true
}

func (a *clAnalysis) Join(x, y clFacts) clFacts {
	out := make(clFacts, len(x))
	for k, vx := range x {
		if vy, ok := y[k]; ok {
			out[k] = joinCl(vx, vy)
		} else {
			out[k] = vx
		}
	}
	for k, vy := range y {
		if _, ok := x[k]; !ok {
			out[k] = vy
		}
	}
	return out
}

func joinCl(x, y clFact) clFact {
	if x.state == y.state {
		return x
	}
	hi, lo := x, y
	if hi.state < lo.state {
		hi, lo = lo, hi
	}
	switch {
	case hi.state == clTop || hi.state == clEscaped:
		return hi
	case lo.state == clOwned && (hi.state == clCalled || hi.state == clDeferred):
		// Called on one path, still owed on the other: keep the
		// obligation so the owed path is flagged at exit.
		return lo
	default:
		lo.state = clTop
		return lo
	}
}

func (a *clAnalysis) Refine(f clFacts, cond ast.Expr, branch bool) clFacts { return f }

func (a *clAnalysis) reportf(pos token.Pos, format string, args ...any) {
	if !a.report {
		return
	}
	p := a.pass.Pkg.Fset.Position(pos)
	key := p.String() + format
	if a.reported[key] {
		return
	}
	a.reported[key] = true
	a.pass.Reportf(pos, format, args...)
}

func (a *clAnalysis) obj(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := a.pass.Pkg.Info.Uses[id]
	if obj == nil {
		obj = a.pass.Pkg.Info.Defs[id]
	}
	return obj
}

func (a *clAnalysis) Transfer(f clFacts, n ast.Node) clFacts {
	switch s := n.(type) {
	case *ast.AssignStmt:
		return a.assign(f, s)
	case *ast.DeferStmt:
		return a.deferStmt(f, s)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			f = a.scan(f, res, true)
		}
		return f
	case *ast.ExprStmt:
		return a.scan(f, s.X, false)
	case *ast.GoStmt:
		return a.scan(f, s.Call, false)
	case *ast.SendStmt:
		return a.scan(f, s.Value, true)
	case ast.Expr:
		return a.scan(f, s, false)
	}
	return f
}

// assign tracks `ctx, cancel := context.WithCancel(parent)` bindings
// and kills overwritten variables.
func (a *clAnalysis) assign(f clFacts, s *ast.AssignStmt) clFacts {
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if src, derive := ctxDeriveCall(a.pass, call); derive {
				out := f.clone()
				bound := false
				for _, lhs := range s.Lhs {
					id, isID := ast.Unparen(lhs).(*ast.Ident)
					if !isID || id.Name == "_" {
						continue
					}
					obj := a.pass.Pkg.Info.Defs[id]
					if obj == nil {
						obj = a.pass.Pkg.Info.Uses[id]
					}
					if obj == nil || !isCancelFunc(obj.Type()) {
						continue
					}
					if old, tracked := out[obj]; tracked && old.state == clOwned {
						a.reportf(id.Pos(), "%q is reassigned while the previous cancel from %s was never called", id.Name, old.src)
					}
					out[obj] = clFact{state: clOwned, pos: call.Pos(), src: src}
					bound = true
				}
				if !bound {
					a.reportf(call.Pos(), "cancel function from %s is discarded: the derived context can never be cancelled", src)
				}
				return out
			}
		}
	}
	out := f
	for i, rhs := range s.Rhs {
		// `_ = cancel` is vet-silencing, not cancelling: the obligation
		// stays (suppress deliberately with //lint:allow ctxleak).
		if len(s.Lhs) == len(s.Rhs) {
			if id, ok := ast.Unparen(s.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
				if obj := a.obj(rhs); obj != nil {
					if _, tracked := out[obj]; tracked {
						continue
					}
				}
			}
		}
		out = a.scan(out, rhs, true)
	}
	for _, lhs := range s.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			obj := a.pass.Pkg.Info.Defs[id]
			if obj == nil {
				obj = a.pass.Pkg.Info.Uses[id]
			}
			if obj != nil {
				if fact, tracked := out[obj]; tracked {
					if fact.state == clOwned {
						a.reportf(id.Pos(), "%q is overwritten while the cancel from %s was never called", id.Name, fact.src)
					}
					if equalCl(out, f) {
						out = out.clone()
					}
					delete(out, obj)
				}
			}
		}
	}
	return out
}

func equalCl(x, y clFacts) bool {
	if len(x) != len(y) {
		return false
	}
	for k, v := range x {
		if y[k] != v {
			return false
		}
	}
	return true
}

// isCancelFunc matches context.CancelFunc and context.CancelCauseFunc
// (or any func type assigned from one — the Defs type is what matters).
func isCancelFunc(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "context" &&
			(obj.Name() == "CancelFunc" || obj.Name() == "CancelCauseFunc") {
			return true
		}
		t = named.Underlying()
	}
	// A plain func()/func(error) bound from a derive call also counts;
	// the binding site already guarantees provenance.
	sig, ok := t.(*types.Signature)
	return ok && sig.Params().Len() <= 1 && sig.Results().Len() == 0
}

// deferStmt discharges `defer cancel()` and deferred closures that call
// cancel; other deferred captures escape.
func (a *clAnalysis) deferStmt(f clFacts, s *ast.DeferStmt) clFacts {
	if obj := a.cancelCallee(f, s.Call); obj != nil {
		out := f.clone()
		fact := out[obj]
		if fact.state == clDeferred {
			a.reportf(s.Call.Pos(), "%q is deferred twice", objName(obj))
		}
		fact.state = clDeferred
		out[obj] = fact
		return out
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		out := f
		called := map[types.Object]bool{}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if obj := a.cancelCallee(f, call); obj != nil {
					called[obj] = true
				}
			}
			return true
		})
		for obj := range called {
			if equalCl(out, f) {
				out = out.clone()
			}
			fact := out[obj]
			fact.state = clDeferred
			out[obj] = fact
		}
		return a.escapeCaptured(out, lit, called)
	}
	return a.scan(f, s.Call, false)
}

// cancelCallee reports whether call invokes a tracked cancel variable.
func (a *clAnalysis) cancelCallee(f clFacts, call *ast.CallExpr) types.Object {
	obj := a.obj(call.Fun)
	if obj == nil {
		return nil
	}
	if _, tracked := f[obj]; !tracked {
		return nil
	}
	return obj
}

// scan walks an expression for calls to and escapes of tracked cancel
// variables.
func (a *clAnalysis) scan(f clFacts, e ast.Expr, escapeCtx bool) clFacts {
	if e == nil {
		return f
	}
	switch ex := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := a.obj(ex)
		if obj == nil {
			return f
		}
		if _, tracked := f[obj]; !tracked || !escapeCtx {
			return f
		}
		out := f.clone()
		fact := out[obj]
		fact.state = clEscaped
		out[obj] = fact
		return out
	case *ast.CallExpr:
		if obj := a.cancelCallee(f, ex); obj != nil {
			out := f.clone()
			fact := out[obj]
			fact.state = clCalled
			out[obj] = fact
			return out
		}
		f = a.scan(f, ex.Fun, false)
		for _, arg := range ex.Args {
			f = a.scan(f, arg, true)
		}
		return f
	case *ast.FuncLit:
		return a.escapeCaptured(f, ex, nil)
	case *ast.UnaryExpr:
		return a.scan(f, ex.X, escapeCtx)
	case *ast.BinaryExpr:
		f = a.scan(f, ex.X, false)
		return a.scan(f, ex.Y, false)
	case *ast.CompositeLit:
		for _, el := range ex.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				f = a.scan(f, kv.Value, true)
				continue
			}
			f = a.scan(f, el, true)
		}
		return f
	case *ast.IndexExpr:
		f = a.scan(f, ex.X, false)
		return a.scan(f, ex.Index, false)
	case *ast.SelectorExpr:
		return a.scan(f, ex.X, false)
	}
	return f
}

// escapeCaptured escapes tracked cancel vars referenced by a function
// literal (the closure may call them later), except those in skip.
func (a *clAnalysis) escapeCaptured(f clFacts, lit *ast.FuncLit, skip map[types.Object]bool) clFacts {
	out := f
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := a.pass.Pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		fact, tracked := out[obj]
		if !tracked || skip[obj] || fact.state == clEscaped || fact.state == clTop {
			return true
		}
		if equalCl(out, f) {
			out = out.clone()
		}
		fact.state = clEscaped
		out[obj] = fact
		return true
	})
	return out
}

// checkCtxLeak runs the analysis over one function body.
func checkCtxLeak(pass *Pass, body *ast.BlockStmt) {
	g, err := cfg.Build(body)
	if err != nil {
		pass.InternalErrorf("ctxleak: %v", err)
		return
	}
	an := &clAnalysis{pass: pass, reported: map[string]bool{}}
	res, err := cfg.Forward[clFacts](g, an)
	if err != nil {
		pass.InternalErrorf("ctxleak: %v", err)
		return
	}
	an.report = true
	for _, b := range g.Blocks {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		f := in
		for _, n := range b.Nodes {
			f = an.Transfer(f, n)
		}
	}
	type leak struct {
		fact clFact
		obj  types.Object
	}
	leaks := map[types.Object]leak{}
	for _, e := range g.Exit.Preds {
		if e.Kind != cfg.Return {
			continue
		}
		f, ok := res.EdgeFact(e)
		if !ok {
			continue
		}
		for obj, fact := range f {
			if fact.state != clOwned {
				continue
			}
			if _, seen := leaks[obj]; !seen {
				leaks[obj] = leak{fact: fact, obj: obj}
			}
		}
	}
	ordered := make([]leak, 0, len(leaks))
	for _, l := range leaks {
		ordered = append(ordered, l)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].fact.pos < ordered[j].fact.pos })
	for _, l := range ordered {
		pass.Reportf(l.fact.pos, "context derived by %s can reach return without %s being called: goroutine/timer leak",
			l.fact.src, objName(l.obj))
	}
}
