package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"

	"nsdfgo/internal/lint/cfg"
)

// RefCountAnalyzer enforces the cache.Block ownership contract
// (DESIGN.md §11) flow-sensitively: every *cache.Block obtained from a
// call (cache Get/Peek/GetOrFill/Put, NewBlock, or any wrapper that
// returns one) carries one reference the caller must discharge on every
// path — by calling Release, deferring it, or transferring ownership
// (returning the block, passing it to a call such as PutBlock, storing
// it into a structure, or capturing it in a function literal). On top
// of the control-flow graph it tracks, per local variable:
//
//   - leaks: a path that reaches a return while the reference is still
//     owed (a missed Release exhausts the buffer pool);
//   - double releases: Release on an already-released block, or an
//     explicit Release with a deferred Release pending (a use-after-free
//     against the pool);
//   - use after release: a method call on, or escape of, a released
//     block, whose Bytes are by then recycled shared memory.
//
// Branch conditions refine the tracking: after `blk, ok := c.Get(k)`
// the block is owned only on the ok branch, after `blk, _, err :=
// GetOrFill(...)` only on the err == nil branch, and a `blk != nil`
// test narrows accordingly — so the idiomatic miss-handling paths in
// the idx read pipeline need no annotations. x.Acquire() puts the
// variable (back) into the owned state. Paths that exit via panic are
// not leak-checked: the process is unwinding. Merges that mix
// incompatible states (owned on one path, released on another) stop
// the tracking rather than guess.
var RefCountAnalyzer = &Analyzer{
	Name: "refcount",
	Doc:  "every acquired cache.Block reference is released exactly once (or transferred) on every path",
	Run:  runRefCount,
}

func runRefCount(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && mentionsBlock(pass, fn.Body) {
					checkRefCounts(pass, fn.Body, namedResultObjs(pass, fn.Type))
				}
			case *ast.FuncLit:
				if mentionsBlock(pass, fn.Body) {
					checkRefCounts(pass, fn.Body, namedResultObjs(pass, fn.Type))
				}
			}
			return true
		})
	}
}

// mentionsBlock cheaply pre-filters: a body with no expression of type
// *cache.Block (outside nested function literals, which get their own
// visit) needs no CFG.
func mentionsBlock(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok {
			if tv, ok := pass.Pkg.Info.Types[e]; ok && isBlockPtr(pass, tv.Type) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// namedResultObjs collects the objects of named results, so a bare
// `return` is known to transfer them out.
func namedResultObjs(pass *Pass, ft *ast.FuncType) map[types.Object]bool {
	out := map[types.Object]bool{}
	if ft.Results == nil {
		return out
	}
	for _, field := range ft.Results.List {
		for _, name := range field.Names {
			if obj := pass.Pkg.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// isBlockPtr reports whether t is *Block of the configured cache
// package.
func isBlockPtr(pass *Pass, t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Block" && obj.Pkg() != nil && obj.Pkg().Path() == pass.Config.CachePackage
}

// rcState is the per-variable ownership state.
type rcState uint8

const (
	rcOwned    rcState = iota + 1 // reference owed unconditionally
	rcMaybe                       // owed iff the acquire's ok/err guard indicates success
	rcDeferred                    // a deferred Release discharges it at exit
	rcReleased                    // released; further use is use-after-free
	rcEscaped                     // ownership transferred; no obligation, uses allowed
	rcTop                         // incompatible paths merged; tracking abandoned
)

// rcFact is the dataflow fact for one tracked variable. Facts are
// values: transfer and join copy the map before writing.
type rcFact struct {
	state rcState
	// okGuard, when set, is a bool variable bound in the same acquiring
	// assignment: the block is owned only where the guard is true.
	okGuard types.Object
	// errGuard, when set, is an error variable bound alongside: the
	// block is owned only where the guard is nil.
	errGuard types.Object
	// pos and src locate and name the acquiring call for diagnostics.
	pos token.Pos
	src string
}

type rcFacts map[types.Object]rcFact

func (f rcFacts) clone() rcFacts {
	out := make(rcFacts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// rcAnalysis implements cfg.Analysis over rcFacts. Reports are only
// emitted when report is true: the fixpoint runs silently, then one
// final pass over the converged facts reports, so diagnostics reflect
// the stable states rather than a transient mid-iteration view.
type rcAnalysis struct {
	pass         *Pass
	namedResults map[types.Object]bool
	report       bool
	reported     map[string]bool
}

func (a *rcAnalysis) Entry() rcFacts { return rcFacts{} }

func (a *rcAnalysis) Equal(x, y rcFacts) bool {
	if len(x) != len(y) {
		return false
	}
	for k, v := range x {
		if y[k] != v {
			return false
		}
	}
	return true
}

func (a *rcAnalysis) Join(x, y rcFacts) rcFacts {
	out := make(rcFacts, len(x))
	for k, vx := range x {
		if vy, ok := y[k]; ok {
			out[k] = joinFact(vx, vy)
		} else {
			out[k] = vx // untracked on the other path: obligation wins
		}
	}
	for k, vy := range y {
		if _, ok := x[k]; !ok {
			out[k] = vy
		}
	}
	return out
}

// joinFact merges two states of one variable. Escape dominates
// (transfers discharge conservatively), matching states keep, and
// incompatible mixes (owned/released, deferred/released) go to rcTop,
// which silences further reports for the variable instead of guessing.
func joinFact(x, y rcFact) rcFact {
	if x.state == y.state {
		if x.okGuard != y.okGuard {
			x.okGuard = nil
		}
		if x.errGuard != y.errGuard {
			x.errGuard = nil
		}
		return x
	}
	hi, lo := x, y
	if hi.state < lo.state {
		hi, lo = lo, hi
	}
	switch {
	case hi.state == rcTop:
		return hi
	case hi.state == rcEscaped:
		return hi // transfer on one path discharges; keep uses legal
	case lo.state == rcOwned && hi.state == rcMaybe:
		return hi // both owe; keep the guarded view
	default:
		// owned/maybe vs released/deferred, released vs deferred: the
		// paths disagree about whether the reference is live.
		lo.state = rcTop
		return lo
	}
}

// Refine narrows facts along a conditional edge. Three shapes matter:
// a bare bool guard (`if ok`), a nil test on an error guard
// (`if err != nil`), and a nil test on the block itself.
func (a *rcAnalysis) Refine(f rcFacts, cond ast.Expr, branch bool) rcFacts {
	info := a.pass.Pkg.Info
	if id, ok := ast.Unparen(cond).(*ast.Ident); ok {
		guard := info.Uses[id]
		if guard == nil {
			return f
		}
		return a.refineGuard(f, guard, branch, false)
	}
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return f
	}
	operand, isNil := nilComparand(bin)
	if operand == nil {
		return f
	}
	id, ok := ast.Unparen(operand).(*ast.Ident)
	if !ok || !isNil {
		return f
	}
	obj := info.Uses[id]
	if obj == nil {
		return f
	}
	// have = the branch where the compared value is non-nil.
	have := branch == (bin.Op == token.NEQ)
	if fact, tracked := f[obj]; tracked && (fact.state == rcMaybe || fact.state == rcOwned) {
		// Nil test on the block variable itself.
		out := f.clone()
		if have {
			fact.state = rcOwned
			fact.okGuard, fact.errGuard = nil, nil
			out[obj] = fact
		} else {
			delete(out, obj)
		}
		return out
	}
	// Nil test on an error guard: err == nil means the block is owned.
	return a.refineGuard(f, obj, have, true)
}

// refineGuard applies a guard outcome: for an ok-guard, success means
// the guard is true; for an err-guard, success means the err is non-nil
// on the failure branch (success = !errNonNil).
func (a *rcAnalysis) refineGuard(f rcFacts, guard types.Object, branchVal bool, isErr bool) rcFacts {
	var out rcFacts
	for obj, fact := range f {
		if fact.state != rcMaybe {
			continue
		}
		match := (!isErr && fact.okGuard == guard) || (isErr && fact.errGuard == guard)
		if !match {
			continue
		}
		success := branchVal
		if isErr {
			success = !branchVal // err non-nil on this branch = acquire failed
		}
		if out == nil {
			out = f.clone()
		}
		if success {
			fact.state = rcOwned
			fact.okGuard, fact.errGuard = nil, nil
			out[obj] = fact
		} else {
			delete(out, obj)
		}
	}
	if out == nil {
		return f
	}
	return out
}

// nilComparand returns the non-nil side of an x == nil / x != nil
// comparison, or nil when the expression is not a nil test.
func nilComparand(bin *ast.BinaryExpr) (ast.Expr, bool) {
	if isNilIdent(bin.Y) {
		return bin.X, true
	}
	if isNilIdent(bin.X) {
		return bin.Y, true
	}
	return nil, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

func (a *rcAnalysis) reportf(pos token.Pos, format string, args ...any) {
	if !a.report {
		return
	}
	p := a.pass.Pkg.Fset.Position(pos)
	key := p.String() + format
	if a.reported[key] {
		return
	}
	a.reported[key] = true
	a.pass.Reportf(pos, format, args...)
}

// isAcquireCall reports whether call yields one or more *cache.Block
// results (directly or in a tuple). Conversions are excluded.
func (a *rcAnalysis) isAcquireCall(call *ast.CallExpr) bool {
	info := a.pass.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return false
	}
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isBlockPtr(a.pass, t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isBlockPtr(a.pass, tv.Type)
	}
}

// callName renders the acquiring call for diagnostics.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

// trackedIdent resolves e to a tracked variable's object, or nil.
func (a *rcAnalysis) trackedIdent(f rcFacts, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := a.pass.Pkg.Info.Uses[id]
	if obj == nil {
		obj = a.pass.Pkg.Info.Defs[id]
	}
	if obj == nil {
		return nil
	}
	if _, tracked := f[obj]; tracked {
		return obj
	}
	return nil
}

// Transfer flows facts through one CFG node.
func (a *rcAnalysis) Transfer(f rcFacts, n ast.Node) rcFacts {
	switch s := n.(type) {
	case *ast.AssignStmt:
		return a.assign(f, s)
	case *ast.DeferStmt:
		return a.deferStmt(f, s)
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			f = a.scan(f, res, true)
		}
		if len(s.Results) == 0 {
			// Bare return: named results transfer to the caller.
			out := f
			for obj := range a.namedResults {
				if fact, ok := f[obj]; ok && fact.state != rcEscaped {
					if out == nil || equalFacts(out, f) {
						out = f.clone()
					}
					fact.state = rcEscaped
					out[obj] = fact
				}
			}
			return out
		}
		return f
	case *ast.RangeStmt:
		f = a.scan(f, s.X, false)
		f = a.kill(f, s.Key, "range")
		f = a.kill(f, s.Value, "range")
		return f
	case *ast.SendStmt:
		f = a.scan(f, s.Chan, false)
		return a.scan(f, s.Value, true)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && a.isAcquireCall(call) {
			a.reportf(call.Pos(), "ref-counted Block from %s is discarded: release it or hand it on", callName(call))
			// Still scan the call's arguments.
		}
		return a.scan(f, s.X, false)
	case *ast.GoStmt:
		return a.scan(f, s.Call, false)
	case *ast.IncDecStmt:
		return a.scan(f, s.X, false)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						f = a.scan(f, v, false)
					}
				}
			}
		}
		return f
	case ast.Expr:
		// Atomic branch conditions, switch tags, case expressions.
		return a.scan(f, s, false)
	}
	return f
}

func equalFacts(x, y rcFacts) bool {
	if len(x) != len(y) {
		return false
	}
	for k, v := range x {
		if y[k] != v {
			return false
		}
	}
	return true
}

// kill removes the fact of an overwritten variable, reporting when the
// overwrite drops a still-owned reference.
func (a *rcAnalysis) kill(f rcFacts, lhs ast.Expr, how string) rcFacts {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return f
	}
	obj := a.pass.Pkg.Info.Defs[id]
	if obj == nil {
		obj = a.pass.Pkg.Info.Uses[id]
	}
	if obj == nil {
		return f
	}
	fact, tracked := f[obj]
	if !tracked {
		return f
	}
	if fact.state == rcOwned {
		a.reportf(id.Pos(), "%q is overwritten (%s) while still holding an unreleased Block acquired from %s", id.Name, how, fact.src)
	}
	out := f.clone()
	delete(out, obj)
	return out
}

// assign handles acquisitions, alias moves, stores, and kills.
func (a *rcAnalysis) assign(f rcFacts, s *ast.AssignStmt) rcFacts {
	info := a.pass.Pkg.Info
	// Acquiring form: one call on the RHS yielding *Block result(s).
	if len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok && a.isAcquireCall(call) {
			f = a.scan(f, call, false) // uses/escapes inside the call's args
			out := f.clone()
			// First pass: guards bound in the same assignment.
			var okGuard, errGuard types.Object
			for _, lhs := range s.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				switch t := obj.Type().(type) {
				case *types.Basic:
					if t.Kind() == types.Bool || t.Kind() == types.UntypedBool {
						okGuard = obj
					}
				case *types.Named:
					if t.Obj().Name() == "error" && t.Obj().Pkg() == nil {
						errGuard = obj
					}
				}
			}
			bound := false
			for _, lhs := range s.Lhs {
				id, isIdent := ast.Unparen(lhs).(*ast.Ident)
				if !isIdent {
					continue // block lands in a field/index: owned by the structure
				}
				if id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil || !isBlockPtr(a.pass, obj.Type()) {
					continue
				}
				if old, tracked := out[obj]; tracked && old.state == rcOwned {
					a.reportf(id.Pos(), "%q is reassigned while still holding an unreleased Block acquired from %s", id.Name, old.src)
				}
				state := rcOwned
				if okGuard != nil || errGuard != nil {
					state = rcMaybe
				}
				out[obj] = rcFact{state: state, okGuard: okGuard, errGuard: errGuard, pos: call.Pos(), src: callName(call)}
				bound = true
			}
			if !bound {
				// `_ = c.Put(...)` or `_, ok := ...`: the reference has no
				// holder at all.
				allBlank := true
				for _, lhs := range s.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
						if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
							allBlank = false
						}
					}
				}
				hasBlank := false
				for i, lhs := range s.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
						if blockResultAt(a.pass, call, i, len(s.Lhs)) {
							hasBlank = true
						}
					}
				}
				if hasBlank && allBlank {
					a.reportf(call.Pos(), "ref-counted Block from %s is discarded into _: release it or hand it on", callName(call))
				}
			}
			return out
		}
	}
	// General assignment: pair up sides where possible.
	out := f
	ensure := func() {
		if equalFacts(out, f) {
			out = f.clone()
		}
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, rhs := range s.Rhs {
			lhs := s.Lhs[i]
			if srcObj := a.trackedIdent(out, rhs); srcObj != nil {
				fact := out[srcObj]
				if lhsID, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if lhsID.Name == "_" {
						continue // _ = blk neither discharges nor uses
					}
					dstObj := info.Defs[lhsID]
					if dstObj == nil {
						dstObj = info.Uses[lhsID]
					}
					if dstObj != nil && isBlockPtr(a.pass, dstObj.Type()) {
						// Alias move: the obligation follows the new name.
						ensure()
						out = a.kill(out, lhsID, "alias")
						if equalFacts(out, f) {
							out = out.clone()
						}
						out[dstObj] = fact
						moved := out[srcObj]
						moved.state = rcEscaped
						out[srcObj] = moved
						continue
					}
				}
				// Stored into a field, map, slice, or interface: transfer.
				if fact.state == rcReleased {
					a.reportf(rhs.Pos(), "released Block %q is stored here: use after Release", identName(rhs))
				}
				ensure()
				fact.state = rcEscaped
				out[srcObj] = fact
				continue
			}
			out = a.scan(out, rhs, false)
			out = a.kill(out, lhs, "assignment")
			out = a.scanLHS(out, lhs)
		}
		return out
	}
	for _, rhs := range s.Rhs {
		out = a.scan(out, rhs, false)
	}
	for _, lhs := range s.Lhs {
		out = a.kill(out, lhs, "assignment")
		out = a.scanLHS(out, lhs)
	}
	return out
}

// scanLHS walks a non-trivial assignment target (index/field exprs) for
// uses of tracked variables, e.g. m[blk] or arr[i].f.
func (a *rcAnalysis) scanLHS(f rcFacts, lhs ast.Expr) rcFacts {
	if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		return f
	}
	return a.scan(f, lhs, false)
}

func identName(e ast.Expr) string {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id.Name
	}
	return "block"
}

// blockResultAt reports whether result i of the call (with n results
// destructured) has type *Block.
func blockResultAt(pass *Pass, call *ast.CallExpr, i, n int) bool {
	tv, ok := pass.Pkg.Info.Types[call]
	if !ok {
		return false
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		return i < tup.Len() && isBlockPtr(pass, tup.At(i).Type())
	}
	return n == 1 && isBlockPtr(pass, tv.Type)
}

// deferStmt handles deferred discharges: `defer blk.Release()` and a
// deferred closure that releases the block both mark it discharged at
// exit; any other deferred reference to a tracked block escapes it.
func (a *rcAnalysis) deferStmt(f rcFacts, s *ast.DeferStmt) rcFacts {
	if obj, isRelease := a.releaseTarget(f, s.Call); isRelease {
		return a.applyDeferredRelease(f, obj, s.Call.Pos())
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		out := f
		released := map[types.Object]bool{}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if obj, isRel := a.releaseTarget(f, call); isRel {
					released[obj] = true
				}
			}
			return true
		})
		for obj := range released {
			out = a.applyDeferredRelease(out, obj, s.Call.Pos())
		}
		// Other tracked blocks captured by the deferred closure escape.
		out = a.escapeCaptured(out, lit, released)
		return out
	}
	return a.scan(f, s.Call, false)
}

func (a *rcAnalysis) applyDeferredRelease(f rcFacts, obj types.Object, pos token.Pos) rcFacts {
	fact := f[obj]
	switch fact.state {
	case rcReleased:
		a.reportf(pos, "deferred Release of %q runs after it was already released: double release", objName(obj))
	case rcDeferred:
		a.reportf(pos, "%q already has a deferred Release: double release at exit", objName(obj))
	}
	out := f.clone()
	fact.state = rcDeferred
	out[obj] = fact
	return out
}

// releaseTarget reports whether call is x.Release() on a tracked x.
func (a *rcAnalysis) releaseTarget(f rcFacts, call *ast.CallExpr) (types.Object, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" || len(call.Args) != 0 {
		return nil, false
	}
	obj := a.trackedIdent(f, sel.X)
	if obj == nil {
		return nil, false
	}
	return obj, true
}

func objName(obj types.Object) string { return obj.Name() }

// scan walks an expression, applying use and escape rules to tracked
// variables. escapeCtx marks value-flow positions (call arguments,
// composite literal elements, channel sends, return results) where a
// tracked identifier transfers its ownership.
func (a *rcAnalysis) scan(f rcFacts, e ast.Expr, escapeCtx bool) rcFacts {
	if e == nil {
		return f
	}
	switch ex := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := a.trackedIdent(f, ex)
		if obj == nil {
			return f
		}
		fact := f[obj]
		if !escapeCtx {
			return f // nil comparisons, len() of other vars, etc: no-op
		}
		if fact.state == rcReleased {
			a.reportf(ex.Pos(), "released Block %q escapes here: use after Release", ex.Name)
		}
		if fact.state == rcEscaped || fact.state == rcTop {
			return f
		}
		out := f.clone()
		fact.state = rcEscaped
		out[obj] = fact
		return out
	case *ast.CallExpr:
		return a.call(f, ex)
	case *ast.UnaryExpr:
		if ex.Op == token.AND {
			return a.scan(f, ex.X, true) // &blk aliases: treat as escape
		}
		return a.scan(f, ex.X, escapeCtx)
	case *ast.StarExpr:
		return a.scan(f, ex.X, escapeCtx)
	case *ast.SelectorExpr:
		if obj := a.trackedIdent(f, ex.X); obj != nil {
			if f[obj].state == rcReleased {
				a.reportf(ex.Pos(), "field or method of released Block %q: use after Release", objName(obj))
			}
			return f
		}
		return a.scan(f, ex.X, false)
	case *ast.BinaryExpr:
		f = a.scan(f, ex.X, false)
		return a.scan(f, ex.Y, false)
	case *ast.IndexExpr:
		f = a.scan(f, ex.X, false)
		return a.scan(f, ex.Index, false)
	case *ast.SliceExpr:
		f = a.scan(f, ex.X, false)
		f = a.scan(f, ex.Low, false)
		f = a.scan(f, ex.High, false)
		return a.scan(f, ex.Max, false)
	case *ast.TypeAssertExpr:
		return a.scan(f, ex.X, escapeCtx)
	case *ast.CompositeLit:
		for _, el := range ex.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				f = a.scan(f, kv.Value, true)
				continue
			}
			f = a.scan(f, el, true)
		}
		return f
	case *ast.KeyValueExpr:
		return a.scan(f, ex.Value, true)
	case *ast.FuncLit:
		return a.escapeCaptured(f, ex, nil)
	}
	return f
}

// call applies the Block method and argument rules to one call.
func (a *rcAnalysis) call(f rcFacts, call *ast.CallExpr) rcFacts {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if obj := a.trackedIdent(f, sel.X); obj != nil {
			fact := f[obj]
			switch sel.Sel.Name {
			case "Release":
				out := f.clone()
				switch fact.state {
				case rcReleased:
					a.reportf(call.Pos(), "%q is released twice (Block acquired from %s at line %d)",
						objName(obj), fact.src, a.pass.Pkg.Fset.Position(fact.pos).Line)
				case rcDeferred:
					a.reportf(call.Pos(), "%q is released explicitly while a deferred Release is pending: double release at exit", objName(obj))
				default:
					fact.state = rcReleased
					out[obj] = fact
				}
				if fact.state == rcReleased || fact.state == rcDeferred {
					fact.state = rcReleased
					out[obj] = fact
				}
				for _, arg := range call.Args {
					out = a.scan(out, arg, true)
				}
				return out
			case "Acquire":
				out := f.clone()
				fact.state = rcOwned
				fact.okGuard, fact.errGuard = nil, nil
				if fact.pos == token.NoPos {
					fact.pos = call.Pos()
				}
				if fact.src == "" {
					fact.src = "Acquire"
				}
				out[obj] = fact
				return out
			default:
				if fact.state == rcReleased {
					a.reportf(call.Pos(), "method %s called on released Block %q: use after Release", sel.Sel.Name, objName(obj))
				}
				for _, arg := range call.Args {
					f = a.scan(f, arg, true)
				}
				return f
			}
		}
	}
	// x.Acquire() on an untracked variable starts an obligation: the
	// caller now holds a fresh reference it must discharge.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Acquire" && len(call.Args) == 0 {
		if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID {
			obj := a.pass.Pkg.Info.Uses[id]
			if obj == nil {
				obj = a.pass.Pkg.Info.Defs[id]
			}
			if obj != nil && isBlockPtr(a.pass, obj.Type()) {
				out := f.clone()
				out[obj] = rcFact{state: rcOwned, pos: call.Pos(), src: id.Name + ".Acquire"}
				return out
			}
		}
	}
	f = a.scan(f, call.Fun, false)
	for _, arg := range call.Args {
		f = a.scan(f, arg, true)
	}
	return f
}

// escapeCaptured escapes every tracked variable a function literal
// captures (except those in skip): the closure may run at any time, so
// the obligation moves with it.
func (a *rcAnalysis) escapeCaptured(f rcFacts, lit *ast.FuncLit, skip map[types.Object]bool) rcFacts {
	out := f
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := a.pass.Pkg.Info.Uses[id]
		if obj == nil {
			return true
		}
		fact, tracked := out[obj]
		if !tracked || skip[obj] || fact.state == rcEscaped || fact.state == rcTop {
			return true
		}
		if equalFacts(out, f) {
			out = out.clone()
		}
		fact.state = rcEscaped
		out[obj] = fact
		return true
	})
	return out
}

// checkRefCounts runs the analysis over one function body: build the
// CFG, converge the facts, replay one reporting pass, then leak-check
// every return edge.
func checkRefCounts(pass *Pass, body *ast.BlockStmt, namedResults map[types.Object]bool) {
	g, err := cfg.Build(body)
	if err != nil {
		pass.InternalErrorf("refcount: %v", err)
		return
	}
	an := &rcAnalysis{pass: pass, namedResults: namedResults, reported: map[string]bool{}}
	res, err := cfg.Forward[rcFacts](g, an)
	if err != nil {
		pass.InternalErrorf("refcount: %v", err)
		return
	}
	// Reporting pass over the converged facts.
	an.report = true
	for _, b := range g.Blocks {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		f := in
		for _, n := range b.Nodes {
			f = an.Transfer(f, n)
		}
	}
	// Leak check: a return edge reached while a reference is still owed.
	type leak struct {
		fact rcFact
		obj  types.Object
		line int
	}
	leaks := map[types.Object]leak{}
	for _, e := range g.Exit.Preds {
		if e.Kind != cfg.Return {
			continue
		}
		f, ok := res.EdgeFact(e)
		if !ok {
			continue
		}
		for obj, fact := range f {
			if fact.state != rcOwned && fact.state != rcMaybe {
				continue
			}
			line := 0
			if len(e.From.Nodes) > 0 {
				line = pass.Pkg.Fset.Position(e.From.Nodes[len(e.From.Nodes)-1].Pos()).Line
			}
			if prev, seen := leaks[obj]; !seen || line < prev.line {
				leaks[obj] = leak{fact: fact, obj: obj, line: line}
			}
		}
	}
	ordered := make([]leak, 0, len(leaks))
	for _, l := range leaks {
		ordered = append(ordered, l)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].fact.pos < ordered[j].fact.pos })
	for _, l := range ordered {
		where := "a return"
		if l.line > 0 {
			where = "the return at line " + strconv.Itoa(l.line)
		}
		pass.Reportf(l.fact.pos, "Block %q acquired from %s can reach %s without Release: leaked reference", objName(l.obj), l.fact.src, where)
	}
}
