package lint

import (
	"go/ast"
	"go/types"
)

// DroppedErrAnalyzer flags discarded error returns from the storage and
// IDX layers, io.Closer-shaped Close methods, and os.Remove/RemoveAll:
// a bare call statement, or an assignment sending every error result to
// the blank identifier, silently loses a failure the serving stack is
// supposed to surface. Deferred calls are exempt — `defer f.Close()` on
// a read path is the accepted cleanup idiom here — as is test code.
var DroppedErrAnalyzer = &Analyzer{
	Name: "droppederr",
	Doc:  "storage/idx/Closer error returns must not be discarded",
	Run:  runDroppedErr,
}

func runDroppedErr(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := stmt.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := scopedErrCallee(pass, call); fn != nil {
					pass.Reportf(call.Pos(), "error returned by %s is dropped (bare call)", calleeLabel(fn))
				}
			case *ast.AssignStmt:
				if len(stmt.Rhs) != 1 {
					return true
				}
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := scopedErrCallee(pass, call)
				if fn == nil {
					return true
				}
				if allErrorsBlanked(info, stmt, call) {
					pass.Reportf(call.Pos(), "error returned by %s is dropped (assigned to _)", calleeLabel(fn))
				}
			}
			return true
		})
	}
}

// scopedErrCallee returns the called function when the call both returns
// an error and falls inside the droppederr scope; nil otherwise.
func scopedErrCallee(pass *Pass, call *ast.CallExpr) *types.Func {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || !returnsError(fn) {
		return nil
	}
	if fn.Pkg() != nil {
		path := fn.Pkg().Path()
		for _, scope := range pass.Config.ErrScopePackages {
			if path == scope {
				return fn
			}
		}
		if path == "os" && (fn.Name() == "Remove" || fn.Name() == "RemoveAll") {
			return fn
		}
	}
	if isCloserShaped(fn) {
		return fn
	}
	return nil
}

// returnsError reports whether any result of fn is the error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// isCloserShaped reports whether fn is a method named Close with no
// parameters and a single error result — the io.Closer shape.
func isCloserShaped(fn *types.Func) bool {
	if fn.Name() != "Close" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
		isErrorType(sig.Results().At(0).Type())
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// allErrorsBlanked reports whether every error result of call lands in
// the blank identifier in stmt.
func allErrorsBlanked(info *types.Info, stmt *ast.AssignStmt, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	var resultTypes []types.Type
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			resultTypes = append(resultTypes, tuple.At(i).Type())
		}
	} else {
		resultTypes = []types.Type{tv.Type}
	}
	if len(stmt.Lhs) != len(resultTypes) {
		return false
	}
	sawError := false
	for i, t := range resultTypes {
		if !isErrorType(t) {
			continue
		}
		sawError = true
		id, ok := stmt.Lhs[i].(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return sawError
}

// calleeLabel renders a function as pkg.Func or (pkg.Type).Method for
// diagnostics.
func calleeLabel(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
