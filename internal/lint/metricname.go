package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
)

// metricNamePattern is the naming convention every registered metric
// family must satisfy (mirrored at runtime by telemetry.Registry).
var metricNamePattern = regexp.MustCompile(`^nsdf_[a-z0-9_]+$`)

// labelKeyPattern constrains label keys to the Prometheus identifier
// grammar.
var labelKeyPattern = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// metricUse records where a metric name was first registered and as
// which kind, for cross-package conflict detection.
type metricUse struct {
	kind string
	pos  token.Position
}

// MetricNameAnalyzer enforces the telemetry naming contract: every name
// reaching Registry.Counter/Gauge/Histogram/CounterFunc/GaugeFunc must
// be a string constant matching ^nsdf_[a-z0-9_]+$, label keys must be
// constant identifiers, labels may not be spliced in as a dynamic
// slice, and a name must keep one kind across the whole module.
var MetricNameAnalyzer = &Analyzer{
	Name: "metricname",
	Doc:  "telemetry metric names must be nsdf_-prefixed string constants with one kind module-wide",
	Run:  runMetricName,
}

func runMetricName(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			kind, ok := pass.Config.MetricMethods[fn.Name()]
			if !ok || !isRegistryMethod(fn, pass.Config.TelemetryPackage) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			nameArg := call.Args[0]
			name, isConst := constString(info, nameArg)
			switch {
			case !isConst:
				pass.Reportf(nameArg.Pos(),
					"metric name passed to %s must be a string constant, not a dynamically built value", fn.Name())
			case !metricNamePattern.MatchString(name):
				pass.Reportf(nameArg.Pos(),
					"metric name %q does not match ^nsdf_[a-z0-9_]+$", name)
			default:
				key := "name:" + name
				if prev, seen := pass.State[key].(metricUse); seen {
					if prev.kind != kind {
						pass.Reportf(nameArg.Pos(),
							"metric %q registered as %s here but as %s at %s:%d", name, kind, prev.kind,
							filepath.Base(prev.pos.Filename), prev.pos.Line)
					}
				} else {
					pass.State[key] = metricUse{kind: kind, pos: pass.Pkg.Fset.Position(nameArg.Pos())}
				}
			}

			labelStart := 1
			if fn.Name() == "CounterFunc" || fn.Name() == "GaugeFunc" {
				labelStart = 2
			}
			if len(call.Args) <= labelStart {
				return true
			}
			if call.Ellipsis.IsValid() {
				pass.Reportf(call.Args[len(call.Args)-1].Pos(),
					"labels passed to %s as a dynamic slice; spell out constant key/value pairs", fn.Name())
				return true
			}
			for i, arg := range call.Args[labelStart:] {
				if i%2 != 0 {
					continue // label values may be dynamic
				}
				key, isConst := constString(info, arg)
				switch {
				case !isConst:
					pass.Reportf(arg.Pos(), "label key passed to %s must be a string constant", fn.Name())
				case !labelKeyPattern.MatchString(key):
					pass.Reportf(arg.Pos(), "label key %q is not a valid identifier", key)
				}
			}
			return true
		})
	}
}

// isRegistryMethod reports whether fn is a method on the telemetry
// registry type (by pointer or value receiver).
func isRegistryMethod(fn *types.Func, telemetryPkg string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == telemetryPkg && named.Obj().Name() == "Registry"
}

// calleeFunc resolves the called function or method, or nil when the
// callee is not a named function (e.g. a function value).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// constString returns the compile-time string value of expr, if any.
func constString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
