package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxBackgroundAnalyzer polices the end-to-end context threading the
// serving path depends on: library packages must accept a caller's
// context.Context, not mint fresh roots with context.Background() or
// context.TODO(). A Background() deep in a library silently detaches
// everything below it from the caller's deadline and cancellation —
// exactly the bug class that let a disconnected dashboard client keep
// a worker pool fetching blocks. Package main (process entry points own
// the root context) and _test.go files are exempt; anything else needs
// an explicit //lint:allow ctxbackground with a reason.
var CtxBackgroundAnalyzer = &Analyzer{
	Name: "ctxbackground",
	Doc:  "library code must thread the caller's context, not call context.Background()/context.TODO()",
	Run:  runCtxBackground,
}

func runCtxBackground(pass *Pass) {
	if pass.Pkg.Types.Name() == "main" {
		return
	}
	for _, file := range pass.Pkg.Files {
		pos := pass.Pkg.Fset.Position(file.Pos())
		if strings.HasSuffix(pos.Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			switch fn.Name() {
			case "Background", "TODO":
				pass.Reportf(call.Pos(), "context.%s() mints a root context in library code: accept a context.Context from the caller instead", fn.Name())
			}
			return true
		})
	}
}
