// Package metrics implements the scientific image-comparison metrics used
// in step 3 of the NSDF tutorial workflow (static visualization &
// validation): participants compare the original TIFF-based rasters with
// the IDX-derived rasters "using scientific metrics" to confirm that the
// conversion preserved data accuracy. The metrics provided are RMSE, MAE,
// maximum absolute error, PSNR, and SSIM.
package metrics

import (
	"fmt"
	"math"
)

// Report bundles every comparison metric for a pair of rasters.
type Report struct {
	// N is the number of finite sample pairs compared.
	N int
	// RMSE is the root-mean-square error.
	RMSE float64
	// MAE is the mean absolute error.
	MAE float64
	// MaxAbs is the maximum absolute error.
	MaxAbs float64
	// PSNR is the peak signal-to-noise ratio in dB, computed against the
	// dynamic range of the reference raster. +Inf for identical rasters.
	PSNR float64
	// SSIM is the mean structural similarity index over 8x8 windows.
	SSIM float64
	// Identical reports whether every compared pair matched bit-for-bit.
	Identical bool
}

// String renders the report in the one-line form used by the experiment
// harness.
func (r Report) String() string {
	return fmt.Sprintf("n=%d rmse=%.6g mae=%.6g max=%.6g psnr=%.4gdB ssim=%.6f identical=%v",
		r.N, r.RMSE, r.MAE, r.MaxAbs, r.PSNR, r.SSIM, r.Identical)
}

// Compare computes all metrics between a reference raster and a test
// raster of identical dimensions (width w, height h, row-major). Sample
// pairs where either side is non-finite are excluded from the error sums
// (matching how nodata pixels are treated in the tutorial's validation
// notebooks), except that a finite/non-finite mismatch breaks Identical.
func Compare(ref, test []float32, w, h int) (Report, error) {
	if w <= 0 || h <= 0 {
		return Report{}, fmt.Errorf("metrics: invalid dimensions %dx%d", w, h)
	}
	if len(ref) != w*h || len(test) != w*h {
		return Report{}, fmt.Errorf("metrics: raster sizes %d and %d do not match %dx%d", len(ref), len(test), w, h)
	}
	var (
		sumSq, sumAbs, maxAbs float64
		n                     int
		lo                    = math.Inf(1)
		hi                    = math.Inf(-1)
		identical             = true
	)
	for i := range ref {
		a, b := float64(ref[i]), float64(test[i])
		aFin, bFin := !math.IsNaN(a) && !math.IsInf(a, 0), !math.IsNaN(b) && !math.IsInf(b, 0)
		if math.Float32bits(ref[i]) != math.Float32bits(test[i]) {
			identical = false
		}
		if !aFin || !bFin {
			if aFin != bFin {
				identical = false
			}
			continue
		}
		d := math.Abs(a - b)
		sumSq += d * d
		sumAbs += d
		if d > maxAbs {
			maxAbs = d
		}
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
		n++
	}
	rep := Report{N: n, MaxAbs: maxAbs, Identical: identical}
	if n > 0 {
		rep.RMSE = math.Sqrt(sumSq / float64(n))
		rep.MAE = sumAbs / float64(n)
		rng := hi - lo
		switch {
		case rep.RMSE == 0:
			rep.PSNR = math.Inf(1)
		case rng == 0:
			rep.PSNR = 0
		default:
			rep.PSNR = 20 * math.Log10(rng/rep.RMSE)
		}
	}
	rep.SSIM = ssim(ref, test, w, h)
	return rep, nil
}

// RMSE computes only the root-mean-square error between two equal-length
// slices, ignoring non-finite pairs.
func RMSE(a, b []float32) float64 {
	if len(a) != len(b) {
		return math.NaN()
	}
	var sum float64
	n := 0
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
			continue
		}
		d := x - y
		sum += d * d
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// ssim computes the mean SSIM over non-overlapping 8x8 windows, using the
// dynamic range of ref for the stabilising constants. Windows containing
// non-finite samples are skipped. Returns 1 for degenerate inputs with no
// usable windows (nothing contradicts similarity).
func ssim(ref, test []float32, w, h int) float64 {
	const win = 8
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range ref {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	dynRange := hi - lo
	if dynRange <= 0 || math.IsInf(dynRange, 0) {
		dynRange = 1
	}
	c1 := (0.01 * dynRange) * (0.01 * dynRange)
	c2 := (0.03 * dynRange) * (0.03 * dynRange)

	var total float64
	windows := 0
	for y0 := 0; y0+win <= h || (y0 == 0 && h < win); y0 += win {
		bh := win
		if y0+bh > h {
			bh = h - y0
		}
		for x0 := 0; x0+win <= w || (x0 == 0 && w < win); x0 += win {
			bw := win
			if x0+bw > w {
				bw = w - x0
			}
			v, ok := ssimWindow(ref, test, w, x0, y0, bw, bh, c1, c2)
			if ok {
				total += v
				windows++
			}
		}
	}
	if windows == 0 {
		return 1
	}
	return total / float64(windows)
}

func ssimWindow(ref, test []float32, stride, x0, y0, bw, bh int, c1, c2 float64) (float64, bool) {
	var muA, muB float64
	n := float64(bw * bh)
	for y := y0; y < y0+bh; y++ {
		for x := x0; x < x0+bw; x++ {
			a, b := float64(ref[y*stride+x]), float64(test[y*stride+x])
			if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
				return 0, false
			}
			muA += a
			muB += b
		}
	}
	muA /= n
	muB /= n
	var varA, varB, cov float64
	for y := y0; y < y0+bh; y++ {
		for x := x0; x < x0+bw; x++ {
			da := float64(ref[y*stride+x]) - muA
			db := float64(test[y*stride+x]) - muB
			varA += da * da
			varB += db * db
			cov += da * db
		}
	}
	varA /= n
	varB /= n
	cov /= n
	num := (2*muA*muB + c1) * (2*cov + c2)
	den := (muA*muA + muB*muB + c1) * (varA + varB + c2)
	return num / den, true
}
