package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func ramp(w, h int) []float32 {
	out := make([]float32, w*h)
	for i := range out {
		out[i] = float32(i)
	}
	return out
}

func TestCompareIdentical(t *testing.T) {
	a := ramp(16, 16)
	rep, err := Compare(a, a, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical {
		t.Error("identical rasters not reported Identical")
	}
	if rep.RMSE != 0 || rep.MAE != 0 || rep.MaxAbs != 0 {
		t.Errorf("nonzero errors on identical rasters: %+v", rep)
	}
	if !math.IsInf(rep.PSNR, 1) {
		t.Errorf("PSNR = %v, want +Inf", rep.PSNR)
	}
	if math.Abs(rep.SSIM-1) > 1e-12 {
		t.Errorf("SSIM = %v, want 1", rep.SSIM)
	}
	if rep.N != 256 {
		t.Errorf("N = %d, want 256", rep.N)
	}
}

func TestCompareKnownError(t *testing.T) {
	a := []float32{0, 0, 0, 0}
	b := []float32{1, -1, 1, -1}
	rep, err := Compare(a, b, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RMSE != 1 {
		t.Errorf("RMSE = %v, want 1", rep.RMSE)
	}
	if rep.MAE != 1 {
		t.Errorf("MAE = %v, want 1", rep.MAE)
	}
	if rep.MaxAbs != 1 {
		t.Errorf("MaxAbs = %v, want 1", rep.MaxAbs)
	}
	if rep.Identical {
		t.Error("different rasters reported Identical")
	}
}

func TestCompareDimensionValidation(t *testing.T) {
	a := ramp(4, 4)
	if _, err := Compare(a, a, 0, 4); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Compare(a, a[:8], 4, 4); err == nil {
		t.Error("mismatched sizes accepted")
	}
}

func TestCompareNaNHandling(t *testing.T) {
	nan := float32(math.NaN())
	a := []float32{1, 2, nan, 4}
	b := []float32{1, 2, nan, 4}
	rep, err := Compare(a, b, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.N != 3 {
		t.Errorf("N = %d, want 3 (NaN pair excluded)", rep.N)
	}
	if !rep.Identical {
		t.Error("bitwise-equal rasters with NaN not Identical")
	}
	// Finite vs NaN must break Identical but not poison errors.
	c := []float32{1, 2, 3, 4}
	rep, err = Compare(a, c, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Identical {
		t.Error("NaN vs finite reported Identical")
	}
	if rep.RMSE != 0 {
		t.Errorf("RMSE = %v, want 0 (mismatched-finite pair skipped)", rep.RMSE)
	}
}

func TestComparePSNRScalesWithError(t *testing.T) {
	a := ramp(32, 32)
	small := make([]float32, len(a))
	big := make([]float32, len(a))
	for i := range a {
		small[i] = a[i] + 0.1
		big[i] = a[i] + 10
	}
	rs, _ := Compare(a, small, 32, 32)
	rb, _ := Compare(a, big, 32, 32)
	if rs.PSNR <= rb.PSNR {
		t.Errorf("PSNR should fall with error: small=%v big=%v", rs.PSNR, rb.PSNR)
	}
}

func TestSSIMDropsWithStructuralChange(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a := make([]float32, 64*64)
	for i := range a {
		a[i] = float32(math.Sin(float64(i%64)/10) * 100)
	}
	shuffled := make([]float32, len(a))
	copy(shuffled, a)
	r.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	ra, _ := Compare(a, a, 64, 64)
	rs, _ := Compare(a, shuffled, 64, 64)
	if rs.SSIM >= ra.SSIM {
		t.Errorf("SSIM should drop when structure destroyed: same=%v shuffled=%v", ra.SSIM, rs.SSIM)
	}
	if rs.SSIM > 0.5 {
		t.Errorf("SSIM of shuffled raster = %v, want < 0.5", rs.SSIM)
	}
}

func TestCompareSmallRaster(t *testing.T) {
	// Rasters smaller than the SSIM window must still work.
	a := []float32{1, 2, 3, 4, 5, 6}
	rep, err := Compare(a, a, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SSIM < 0.99 {
		t.Errorf("SSIM on tiny identical raster = %v", rep.SSIM)
	}
}

func TestCompareConstantRaster(t *testing.T) {
	a := make([]float32, 64)
	for i := range a {
		a[i] = 7
	}
	rep, err := Compare(a, a, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Identical || rep.RMSE != 0 {
		t.Errorf("constant raster self-compare: %+v", rep)
	}
}

func TestRMSE(t *testing.T) {
	if v := RMSE([]float32{0, 0}, []float32{3, 4}); math.Abs(v-math.Sqrt(12.5)) > 1e-9 {
		t.Errorf("RMSE = %v, want sqrt(12.5)", v)
	}
	if v := RMSE([]float32{1}, []float32{1, 2}); !math.IsNaN(v) {
		t.Errorf("length mismatch should give NaN, got %v", v)
	}
	if v := RMSE(nil, nil); v != 0 {
		t.Errorf("empty RMSE = %v, want 0", v)
	}
}

func TestCompareSymmetryOfErrorProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 16
		a := make([]float32, n*n)
		b := make([]float32, n*n)
		for i := range a {
			a[i] = float32(r.NormFloat64() * 10)
			b[i] = a[i] + float32(r.NormFloat64())
		}
		ra, err1 := Compare(a, b, n, n)
		rb, err2 := Compare(b, a, n, n)
		if err1 != nil || err2 != nil {
			return false
		}
		// RMSE/MAE/MaxAbs are symmetric; PSNR/SSIM need not be (reference range).
		return math.Abs(ra.RMSE-rb.RMSE) < 1e-9 &&
			math.Abs(ra.MAE-rb.MAE) < 1e-9 &&
			math.Abs(ra.MaxAbs-rb.MaxAbs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReportString(t *testing.T) {
	rep := Report{N: 4, RMSE: 0.5, Identical: false}
	s := rep.String()
	if s == "" {
		t.Error("empty report string")
	}
}

func BenchmarkCompare1M(b *testing.B) {
	const n = 1024
	a := ramp(n, n)
	c := make([]float32, len(a))
	copy(c, a)
	b.SetBytes(int64(8 * len(a)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Compare(a, c, n, n); err != nil {
			b.Fatal(err)
		}
	}
}
