package idx

import (
	"context"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"nsdfgo/internal/cache"
	"nsdfgo/internal/dem"
	"nsdfgo/internal/raster"
)

func float32Fields() []Field {
	return []Field{{Name: "elevation", Type: Float32, Codec: "zlib"}}
}

func newTestDataset(t *testing.T, w, h int, fields []Field) (*Dataset, *MemBackend) {
	t.Helper()
	meta, err := NewMeta([]int{w, h}, fields)
	if err != nil {
		t.Fatal(err)
	}
	be := NewMemBackend()
	ds, err := Create(context.Background(), be, meta)
	if err != nil {
		t.Fatal(err)
	}
	return ds, be
}

func rampGrid(w, h int) *raster.Grid {
	g := raster.New(w, h)
	for i := range g.Data {
		g.Data[i] = float32(i)
	}
	return g
}

func TestDTypeRoundTrip(t *testing.T) {
	buf := make([]byte, 8)
	cases := []struct {
		d DType
		v float32
	}{
		{Float32, 3.25}, {Float64, -17.5}, {Uint8, 200}, {Uint16, 60000},
		{Int16, -300}, {Uint32, 100000},
	}
	for _, c := range cases {
		c.d.putSample(buf, c.v)
		if got := c.d.getSample(buf); got != c.v {
			t.Errorf("%v: %v -> %v", c.d, c.v, got)
		}
	}
}

func TestDTypeClamping(t *testing.T) {
	buf := make([]byte, 8)
	Uint8.putSample(buf, 300)
	if got := Uint8.getSample(buf); got != 255 {
		t.Errorf("uint8 clamp high: %v", got)
	}
	Uint8.putSample(buf, -5)
	if got := Uint8.getSample(buf); got != 0 {
		t.Errorf("uint8 clamp low: %v", got)
	}
	Int16.putSample(buf, float32(math.NaN()))
	if got := Int16.getSample(buf); got != 0 {
		t.Errorf("int16 NaN: %v", got)
	}
}

func TestParseDType(t *testing.T) {
	for _, d := range []DType{Float32, Float64, Uint8, Uint16, Int16, Uint32} {
		got, err := ParseDType(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDType(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDType("complex128"); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestMetaMarshalRoundTrip(t *testing.T) {
	meta, err := NewMeta([]int{300, 200}, []Field{
		{Name: "elevation", Type: Float32, Codec: "zlib", Fill: -1},
		{Name: "hillshade", Type: Uint8, Codec: "lz4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	meta.Timesteps = 5
	meta.Geo = &raster.Georef{OriginX: -90.31, OriginY: 36.68, PixelW: 0.0003, PixelH: 0.0004}
	text, err := meta.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	var back Meta
	if err := back.UnmarshalText(text); err != nil {
		t.Fatalf("UnmarshalText: %v\n%s", err, text)
	}
	if back.Dims[0] != 300 || back.Dims[1] != 200 {
		t.Errorf("dims %v", back.Dims)
	}
	if back.Bits.String() != meta.Bits.String() {
		t.Errorf("bits %s != %s", back.Bits, meta.Bits)
	}
	if back.Timesteps != 5 {
		t.Errorf("timesteps %d", back.Timesteps)
	}
	if len(back.Fields) != 2 || back.Fields[0].Fill != -1 || back.Fields[1].Codec != "lz4" {
		t.Errorf("fields %+v", back.Fields)
	}
	if back.Geo == nil || back.Geo.OriginY != 36.68 {
		t.Errorf("geo %+v", back.Geo)
	}
}

func TestMetaValidation(t *testing.T) {
	if _, err := NewMeta(nil, float32Fields()); err == nil {
		t.Error("no dims accepted")
	}
	if _, err := NewMeta([]int{0, 5}, float32Fields()); err == nil {
		t.Error("zero dim accepted")
	}
	if _, err := NewMeta([]int{4, 4}, nil); err == nil {
		t.Error("no fields accepted")
	}
	if _, err := NewMeta([]int{4, 4}, []Field{{Name: "bad name!", Type: Float32, Codec: "zlib"}}); err == nil {
		t.Error("invalid field name accepted")
	}
	if _, err := NewMeta([]int{4, 4}, []Field{
		{Name: "a", Type: Float32, Codec: "zlib"},
		{Name: "a", Type: Float32, Codec: "zlib"},
	}); err == nil {
		t.Error("duplicate field accepted")
	}
	if _, err := NewMeta([]int{4, 4}, []Field{{Name: "a", Type: Float32, Codec: "snappy"}}); err == nil {
		t.Error("unknown codec accepted")
	}
}

func TestMetaUnmarshalRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"idx(2)\nbox 0 3 0 3\nbits V0101\nbitsperblock 4\ntimesteps 1\nfield a float32 zlib",
		"idx(1)\nbox 0 3\nbits V0101\nbitsperblock 4\ntimesteps 1\nfield a float32 zlib",
		"idx(1)\nbox 0 3 0 3\nbits V0101\nbitsperblock 99\ntimesteps 1\nfield a float32 zlib",
		"idx(1)\nbox 0 3 0 3\nbits V0101\nbitsperblock 4\ntimesteps 0\nfield a float32 zlib",
		"idx(1)\nbox 0 3 0 3\nbits V0101\nbitsperblock 4\ntimesteps 1\nnonsense x",
	}
	for i, text := range cases {
		var m Meta
		if err := m.UnmarshalText([]byte(text)); err == nil {
			t.Errorf("case %d: accepted", i)
		}
	}
}

func TestMetaCommentsAndBlanksIgnored(t *testing.T) {
	text := "# a comment\nidx(1)\n\nbox 0 3 0 3\nbits V0101\nbitsperblock 4\ntimesteps 1\nfield a float32 zlib fill=0\n"
	var m Meta
	if err := m.UnmarshalText([]byte(text)); err != nil {
		t.Fatal(err)
	}
}

func TestNumBlocks(t *testing.T) {
	meta, _ := NewMeta([]int{256, 256}, float32Fields())
	// 16 bits total... 256x256 = 2^16 samples, default bitsperblock 16 -> 1 block.
	if meta.NumBlocks() != 1 {
		t.Errorf("NumBlocks = %d, want 1", meta.NumBlocks())
	}
	meta.BitsPerBlock = 12
	if meta.NumBlocks() != 16 {
		t.Errorf("NumBlocks = %d, want 16", meta.NumBlocks())
	}
}

func TestWriteReadFullResolution(t *testing.T) {
	const w, h = 100, 60
	ds, _ := newTestDataset(t, w, h, float32Fields())
	g := rampGrid(w, h)
	if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		t.Fatal(err)
	}
	out, stats, err := ds.ReadFull(context.Background(), "elevation", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(g, out) {
		t.Error("full-resolution round trip mismatch")
	}
	if stats.Samples != w*h {
		t.Errorf("stats.Samples = %d", stats.Samples)
	}
	if stats.BlocksRead == 0 {
		t.Error("no blocks read")
	}
}

func TestReadBoxSubregion(t *testing.T) {
	const w, h = 64, 64
	ds, _ := newTestDataset(t, w, h, float32Fields())
	g := rampGrid(w, h)
	if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		t.Fatal(err)
	}
	out, _, err := ds.ReadBox(context.Background(), "elevation", 0, Box{10, 20, 30, 25}, ds.Meta.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	if out.W != 20 || out.H != 5 {
		t.Fatalf("subregion dims %dx%d, want 20x5", out.W, out.H)
	}
	for y := 0; y < 5; y++ {
		for x := 0; x < 20; x++ {
			want := g.At(10+x, 20+y)
			if got := out.At(x, y); got != want {
				t.Fatalf("(%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
}

func TestReadBoxCoarseLevels(t *testing.T) {
	const w, h = 64, 64
	ds, _ := newTestDataset(t, w, h, float32Fields())
	g := rampGrid(w, h)
	if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		t.Fatal(err)
	}
	mask := ds.Meta.Bits
	for level := 0; level <= ds.Meta.MaxLevel(); level++ {
		out, _, err := ds.ReadBox(context.Background(), "elevation", 0, ds.FullBox(), level)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		s := mask.LevelStrides(level)
		wantW := (w + s[0] - 1) / s[0]
		wantH := (h + s[1] - 1) / s[1]
		if out.W != wantW || out.H != wantH {
			t.Fatalf("level %d: dims %dx%d, want %dx%d", level, out.W, out.H, wantW, wantH)
		}
		// Every returned sample must equal the grid at the lattice point.
		for oy := 0; oy < out.H; oy++ {
			for ox := 0; ox < out.W; ox++ {
				want := g.At(ox*s[0], oy*s[1])
				if got := out.At(ox, oy); got != want {
					t.Fatalf("level %d: (%d,%d) = %v, want %v", level, ox, oy, got, want)
				}
			}
		}
	}
}

func TestCoarseLevelsReadFewerBytes(t *testing.T) {
	// The core progressive-streaming property: coarse levels touch far
	// fewer blocks/bytes than full resolution.
	const w, h = 512, 512
	meta, err := NewMeta([]int{w, h}, float32Fields())
	if err != nil {
		t.Fatal(err)
	}
	meta.BitsPerBlock = 12
	be := NewMemBackend()
	ds, err := Create(context.Background(), be, meta)
	if err != nil {
		t.Fatal(err)
	}
	g := dem.Scale(dem.FBM(w, h, 1, dem.DefaultFBM()), 0, 2000)
	if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		t.Fatal(err)
	}
	_, coarse, err := ds.ReadBox(context.Background(), "elevation", 0, ds.FullBox(), 6)
	if err != nil {
		t.Fatal(err)
	}
	_, fine, err := ds.ReadBox(context.Background(), "elevation", 0, ds.FullBox(), ds.Meta.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	if coarse.BytesRead*10 > fine.BytesRead {
		t.Errorf("coarse read %d bytes vs fine %d; expected >=10x reduction", coarse.BytesRead, fine.BytesRead)
	}
	if coarse.BlocksRead >= fine.BlocksRead {
		t.Errorf("coarse blocks %d >= fine blocks %d", coarse.BlocksRead, fine.BlocksRead)
	}
}

func TestReadBoxSmallBoxTouchesFewBlocks(t *testing.T) {
	const w, h = 512, 512
	meta, _ := NewMeta([]int{w, h}, float32Fields())
	meta.BitsPerBlock = 10
	be := NewMemBackend()
	ds, _ := Create(context.Background(), be, meta)
	if err := ds.WriteGrid(context.Background(), "elevation", 0, rampGrid(w, h)); err != nil {
		t.Fatal(err)
	}
	_, small, err := ds.ReadBox(context.Background(), "elevation", 0, Box{100, 100, 116, 116}, ds.Meta.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	total := ds.Meta.NumBlocks()
	if small.BlocksRead*4 > total {
		t.Errorf("16x16 box read %d of %d blocks", small.BlocksRead, total)
	}
}

func TestMultipleFieldsAndTimesteps(t *testing.T) {
	meta, _ := NewMeta([]int{32, 32}, []Field{
		{Name: "elevation", Type: Float32, Codec: "zlib"},
		{Name: "slope", Type: Float32, Codec: "lz4"},
	})
	meta.Timesteps = 3
	be := NewMemBackend()
	ds, err := Create(context.Background(), be, meta)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"elevation", "slope"} {
		for ts := 0; ts < 3; ts++ {
			g := rampGrid(32, 32)
			for i := range g.Data {
				g.Data[i] += float32(1000*ts) + float32(len(f))
			}
			if err := ds.WriteGrid(context.Background(), f, ts, g); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, f := range []string{"elevation", "slope"} {
		for ts := 0; ts < 3; ts++ {
			out, _, err := ds.ReadFull(context.Background(), f, ts)
			if err != nil {
				t.Fatal(err)
			}
			want := float32(1000*ts) + float32(len(f))
			if out.Data[0] != want {
				t.Errorf("%s t%d: [0] = %v, want %v", f, ts, out.Data[0], want)
			}
		}
	}
}

func TestOpenExistingDataset(t *testing.T) {
	ds, be := newTestDataset(t, 48, 32, float32Fields())
	if err := ds.WriteGrid(context.Background(), "elevation", 0, rampGrid(48, 32)); err != nil {
		t.Fatal(err)
	}
	ds2, err := Open(context.Background(), be)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := ds2.ReadFull(context.Background(), "elevation", 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(5, 5) != float32(5*48+5) {
		t.Errorf("reopened dataset read wrong value %v", out.At(5, 5))
	}
}

func TestOpenMissingDescriptor(t *testing.T) {
	if _, err := Open(context.Background(), NewMemBackend()); err == nil {
		t.Error("Open on empty backend succeeded")
	}
}

func TestWriteGridValidation(t *testing.T) {
	ds, _ := newTestDataset(t, 16, 16, float32Fields())
	if err := ds.WriteGrid(context.Background(), "nope", 0, rampGrid(16, 16)); err == nil {
		t.Error("unknown field accepted")
	}
	if err := ds.WriteGrid(context.Background(), "elevation", 9, rampGrid(16, 16)); err == nil {
		t.Error("bad timestep accepted")
	}
	if err := ds.WriteGrid(context.Background(), "elevation", 0, rampGrid(8, 8)); err == nil {
		t.Error("mismatched grid accepted")
	}
}

func TestReadBoxValidation(t *testing.T) {
	ds, _ := newTestDataset(t, 16, 16, float32Fields())
	if err := ds.WriteGrid(context.Background(), "elevation", 0, rampGrid(16, 16)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ds.ReadBox(context.Background(), "nope", 0, ds.FullBox(), 1); err == nil {
		t.Error("unknown field accepted")
	}
	if _, _, err := ds.ReadBox(context.Background(), "elevation", 0, ds.FullBox(), -1); err == nil {
		t.Error("negative level accepted")
	}
	if _, _, err := ds.ReadBox(context.Background(), "elevation", 0, ds.FullBox(), 99); err == nil {
		t.Error("excessive level accepted")
	}
	if _, _, err := ds.ReadBox(context.Background(), "elevation", 0, Box{5, 5, 5, 9}, 8); err == nil {
		t.Error("empty box accepted")
	}
	if _, _, err := ds.ReadBox(context.Background(), "elevation", 0, Box{-10, -10, -5, -5}, 8); err == nil {
		t.Error("fully outside box accepted")
	}
}

func TestReadBoxClipsToDataset(t *testing.T) {
	ds, _ := newTestDataset(t, 16, 16, float32Fields())
	g := rampGrid(16, 16)
	if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		t.Fatal(err)
	}
	out, _, err := ds.ReadBox(context.Background(), "elevation", 0, Box{-5, -5, 100, 100}, ds.Meta.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	if out.W != 16 || out.H != 16 {
		t.Errorf("clipped dims %dx%d", out.W, out.H)
	}
}

func TestNaNSurvivesRoundTrip(t *testing.T) {
	ds, _ := newTestDataset(t, 8, 8, float32Fields())
	g := rampGrid(8, 8)
	g.Set(3, 3, float32(math.NaN()))
	if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		t.Fatal(err)
	}
	out, _, err := ds.ReadFull(context.Background(), "elevation", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(out.At(3, 3))) {
		t.Errorf("NaN lost: %v", out.At(3, 3))
	}
}

func TestGeorefAdjustedForBoxAndLevel(t *testing.T) {
	meta, _ := NewMeta([]int{64, 64}, float32Fields())
	meta.Geo = &raster.Georef{OriginX: -90, OriginY: 36, PixelW: 0.01, PixelH: 0.01}
	be := NewMemBackend()
	ds, _ := Create(context.Background(), be, meta)
	if err := ds.WriteGrid(context.Background(), "elevation", 0, rampGrid(64, 64)); err != nil {
		t.Fatal(err)
	}
	out, _, err := ds.ReadBox(context.Background(), "elevation", 0, Box{32, 16, 64, 64}, ds.Meta.MaxLevel()-2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Geo == nil {
		t.Fatal("no georef on result")
	}
	if out.Geo.OriginX <= -90 || out.Geo.PixelW <= 0.01 {
		t.Errorf("georef not adjusted: %+v", out.Geo)
	}
}

func TestUint8FieldRoundTrip(t *testing.T) {
	meta, _ := NewMeta([]int{32, 32}, []Field{{Name: "hillshade", Type: Uint8, Codec: "zlib"}})
	be := NewMemBackend()
	ds, _ := Create(context.Background(), be, meta)
	g := raster.New(32, 32)
	for i := range g.Data {
		g.Data[i] = float32(i % 256)
	}
	if err := ds.WriteGrid(context.Background(), "hillshade", 0, g); err != nil {
		t.Fatal(err)
	}
	out, _, err := ds.ReadFull(context.Background(), "hillshade", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(g, out) {
		t.Error("uint8 round trip mismatch")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, wRaw, hRaw uint8) bool {
		w := int(wRaw%50) + 2
		h := int(hRaw%50) + 2
		meta, err := NewMeta([]int{w, h}, float32Fields())
		if err != nil {
			return false
		}
		meta.BitsPerBlock = 6
		if meta.BitsPerBlock > meta.Bits.Bits() {
			meta.BitsPerBlock = meta.Bits.Bits()
		}
		be := NewMemBackend()
		ds, err := Create(context.Background(), be, meta)
		if err != nil {
			return false
		}
		g := dem.Scale(dem.FBM(w, h, uint64(seed), dem.DefaultFBM()), -100, 3000)
		if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
			return false
		}
		out, _, err := ds.ReadFull(context.Background(), "elevation", 0)
		if err != nil {
			return false
		}
		return raster.Equal(g, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStoredBytes(t *testing.T) {
	ds, be := newTestDataset(t, 64, 64, float32Fields())
	if err := ds.WriteGrid(context.Background(), "elevation", 0, rampGrid(64, 64)); err != nil {
		t.Fatal(err)
	}
	n, err := ds.StoredBytes(context.Background(), "elevation", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Errorf("StoredBytes = %d", n)
	}
	meta, _ := be.Get(context.Background(), MetaObjectName)
	if be.TotalBytes() != n+int64(len(meta)) {
		t.Errorf("backend holds %d bytes, blocks %d + meta %d", be.TotalBytes(), n, len(meta))
	}
}

// countingCache wraps a map to observe cache traffic.
type countingCache struct {
	m          map[string]*cache.Block
	gets, hits int
}

func (c *countingCache) Get(key string) (*cache.Block, bool) {
	c.gets++
	blk, ok := c.m[key]
	if ok {
		c.hits++
		blk.Acquire()
	}
	return blk, ok
}

func (c *countingCache) Put(key string, data []byte) *cache.Block {
	blk := cache.NewBlock(data)
	blk.Acquire() // the map's reference
	if old, ok := c.m[key]; ok {
		old.Release()
	}
	c.m[key] = blk
	return blk
}

func TestBlockCacheUsed(t *testing.T) {
	ds, _ := newTestDataset(t, 64, 64, float32Fields())
	if err := ds.WriteGrid(context.Background(), "elevation", 0, rampGrid(64, 64)); err != nil {
		t.Fatal(err)
	}
	c := &countingCache{m: map[string]*cache.Block{}}
	ds.SetCache(c)
	if _, stats, err := ds.ReadFull(context.Background(), "elevation", 0); err != nil {
		t.Fatal(err)
	} else if stats.BlocksCached != 0 {
		t.Errorf("cold read reported %d cached blocks", stats.BlocksCached)
	}
	_, stats, err := ds.ReadFull(context.Background(), "elevation", 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlocksRead != 0 {
		t.Errorf("warm read fetched %d blocks from backend", stats.BlocksRead)
	}
	if stats.BlocksCached == 0 {
		t.Error("warm read hit no cached blocks")
	}
}

func TestDirBackend(t *testing.T) {
	dir := t.TempDir()
	be, err := NewDirBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := be.Put(context.Background(), "a/b/c.bin", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	data, err := be.Get(context.Background(), "a/b/c.bin")
	if err != nil || string(data) != "hello" {
		t.Fatalf("Get: %q, %v", data, err)
	}
	if _, err := be.Get(context.Background(), "missing"); !IsNotExist(err) {
		t.Errorf("missing object error = %v", err)
	}
	names, err := be.List(context.Background(), "a/")
	if err != nil || len(names) != 1 || names[0] != "a/b/c.bin" {
		t.Errorf("List = %v, %v", names, err)
	}
	if _, err := be.Get(context.Background(), "../escape"); err == nil {
		t.Error("path escape accepted")
	}
}

func TestDirBackendDataset(t *testing.T) {
	be, err := NewDirBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	meta, _ := NewMeta([]int{40, 24}, float32Fields())
	ds, err := Create(context.Background(), be, meta)
	if err != nil {
		t.Fatal(err)
	}
	g := rampGrid(40, 24)
	if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		t.Fatal(err)
	}
	ds2, err := Open(context.Background(), be)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := ds2.ReadFull(context.Background(), "elevation", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(g, out) {
		t.Error("disk round trip mismatch")
	}
}

func TestMemBackendIsolation(t *testing.T) {
	be := NewMemBackend()
	data := []byte{1, 2, 3}
	be.Put(context.Background(), "k", data)
	data[0] = 99
	got, _ := be.Get(context.Background(), "k")
	if got[0] != 1 {
		t.Error("Put did not copy")
	}
	got[1] = 99
	got2, _ := be.Get(context.Background(), "k")
	if got2[1] != 2 {
		t.Error("Get did not copy")
	}
}

func TestMetaDescriptorIsHumanReadable(t *testing.T) {
	meta, _ := NewMeta([]int{100, 50}, float32Fields())
	text, _ := meta.MarshalText()
	for _, want := range []string{"idx(1)", "box 0 99 0 49", "bitsperblock", "field elevation float32 zlib"} {
		if !strings.Contains(string(text), want) {
			t.Errorf("descriptor missing %q:\n%s", want, text)
		}
	}
}

func BenchmarkWriteGrid256(b *testing.B) {
	meta, _ := NewMeta([]int{256, 256}, float32Fields())
	meta.BitsPerBlock = 14
	g := dem.Scale(dem.FBM(256, 256, 1, dem.DefaultFBM()), 0, 2000)
	b.SetBytes(int64(4 * 256 * 256))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ds, _ := Create(context.Background(), NewMemBackend(), meta)
		if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFull256(b *testing.B) {
	meta, _ := NewMeta([]int{256, 256}, float32Fields())
	meta.BitsPerBlock = 14
	ds, _ := Create(context.Background(), NewMemBackend(), meta)
	g := dem.Scale(dem.FBM(256, 256, 1, dem.DefaultFBM()), 0, 2000)
	if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(4 * 256 * 256))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ds.ReadFull(context.Background(), "elevation", 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadCoarseLevel(b *testing.B) {
	meta, _ := NewMeta([]int{512, 512}, float32Fields())
	meta.BitsPerBlock = 12
	ds, _ := Create(context.Background(), NewMemBackend(), meta)
	g := dem.Scale(dem.FBM(512, 512, 1, dem.DefaultFBM()), 0, 2000)
	if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ds.ReadBox(context.Background(), "elevation", 0, ds.FullBox(), 8); err != nil {
			b.Fatal(err)
		}
	}
}
