package idx

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"nsdfgo/internal/raster"
)

// slowCountingBackend wraps MemBackend and tracks the peak number of
// concurrent Get calls.
type slowCountingBackend struct {
	*MemBackend
	mu      sync.Mutex
	current int
	peak    int
}

func (s *slowCountingBackend) Get(ctx context.Context, name string) ([]byte, error) {
	s.mu.Lock()
	s.current++
	if s.current > s.peak {
		s.peak = s.current
	}
	s.mu.Unlock()
	// Simulate remote latency so concurrent fetches actually overlap even
	// on a single-core test machine.
	time.Sleep(2 * time.Millisecond)
	defer func() {
		s.mu.Lock()
		s.current--
		s.mu.Unlock()
	}()
	return s.MemBackend.Get(ctx, name)
}

func (s *slowCountingBackend) Peak() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.peak
}

func newParallelDataset(t *testing.T) (*Dataset, *slowCountingBackend, *raster.Grid) {
	t.Helper()
	meta, err := NewMeta([]int{128, 128}, []Field{{Name: "elevation", Type: Float32}})
	if err != nil {
		t.Fatal(err)
	}
	meta.BitsPerBlock = 8 // 64 blocks: plenty of fetch parallelism available
	be := &slowCountingBackend{MemBackend: NewMemBackend()}
	ds, err := Create(context.Background(), be, meta)
	if err != nil {
		t.Fatal(err)
	}
	g := rampGrid(128, 128)
	if err := ds.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		t.Fatal(err)
	}
	return ds, be, g
}

func TestParallelFetchMatchesSerial(t *testing.T) {
	ds, _, g := newParallelDataset(t)
	serial, _, err := ds.ReadFull(context.Background(), "elevation", 0)
	if err != nil {
		t.Fatal(err)
	}
	ds.SetFetchParallelism(8)
	parallel, stats, err := ds.ReadFull(context.Background(), "elevation", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(serial, parallel) {
		t.Error("parallel fetch produced different data")
	}
	if !raster.Equal(g, parallel) {
		t.Error("parallel fetch diverged from source grid")
	}
	if stats.BlocksRead == 0 {
		t.Error("no blocks read")
	}
}

func TestParallelFetchActuallyConcurrent(t *testing.T) {
	ds, be, _ := newParallelDataset(t)
	ds.SetFetchParallelism(8)
	if _, _, err := ds.ReadFull(context.Background(), "elevation", 0); err != nil {
		t.Fatal(err)
	}
	// With 8 workers over 64+ blocks, at least 2 Gets must have
	// overlapped (scheduling can rarely serialise more, but not all).
	if be.Peak() < 2 {
		t.Errorf("peak concurrent Gets = %d; fetch did not parallelise", be.Peak())
	}
}

func TestParallelismClampedAndIdempotent(t *testing.T) {
	ds, _, g := newParallelDataset(t)
	ds.SetFetchParallelism(-3) // clamps to 1
	out, _, err := ds.ReadFull(context.Background(), "elevation", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(g, out) {
		t.Error("clamped parallelism broke reads")
	}
	ds.SetFetchParallelism(1000) // more workers than blocks
	out, _, err = ds.ReadFull(context.Background(), "elevation", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(g, out) {
		t.Error("oversubscribed parallelism broke reads")
	}
}

// TestFetchPressureShrinksParallelism pins the backpressure contract:
// fetchParallelism scales linearly from the configured worker count at
// pressure 0 down to exactly 1 at pressure >= 1, and a read under full
// pressure really does fetch serially.
func TestFetchPressureShrinksParallelism(t *testing.T) {
	ds, be, g := newParallelDataset(t)
	ds.SetFetchParallelism(8)

	pressure := 0.0
	ds.SetFetchPressure(func() float64 { return pressure })
	for _, tc := range []struct {
		pressure float64
		want     int
	}{
		{0, 8}, {0.5, 4} /* 8 - round(0.5*7) = 4 */, {1, 1}, {2.5, 1}, {-1, 8},
	} {
		pressure = tc.pressure
		if got := ds.fetchParallelism(); got != tc.want {
			t.Errorf("pressure %.2f: workers = %d, want %d", tc.pressure, got, tc.want)
		}
	}

	// Under full pressure the read must not overlap backend Gets.
	pressure = 1
	out, _, err := ds.ReadFull(context.Background(), "elevation", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(g, out) {
		t.Error("pressured read produced different data")
	}
	if be.Peak() != 1 {
		t.Errorf("peak concurrent Gets = %d under full pressure, want 1", be.Peak())
	}

	// Dropping the hook restores the configured parallelism.
	ds.SetFetchPressure(nil)
	if got := ds.fetchParallelism(); got != 8 {
		t.Errorf("workers after clearing pressure = %d, want 8", got)
	}
}

// failingBackend fails Gets for selected block keys.
type failingBackend struct {
	*MemBackend
	failKey string
}

func (f *failingBackend) Get(ctx context.Context, name string) ([]byte, error) {
	if name == f.failKey {
		return nil, fmt.Errorf("injected backend failure for %s", name)
	}
	return f.MemBackend.Get(ctx, name)
}

func TestParallelFetchSurfacesErrors(t *testing.T) {
	meta, _ := NewMeta([]int{64, 64}, []Field{{Name: "elevation", Type: Float32}})
	meta.BitsPerBlock = 8
	inner := NewMemBackend()
	ds, err := Create(context.Background(), inner, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteGrid(context.Background(), "elevation", 0, rampGrid(64, 64)); err != nil {
		t.Fatal(err)
	}
	fail := &failingBackend{MemBackend: inner, failKey: ds.BlockKey("elevation", 0, 3)}
	ds2 := &Dataset{Meta: ds.Meta, be: fail}
	ds2.SetFetchParallelism(4)
	if _, _, err := ds2.ReadFull(context.Background(), "elevation", 0); err == nil {
		t.Error("injected failure not surfaced by parallel fetch")
	}
}

func TestSerialFetchSurfacesErrors(t *testing.T) {
	meta, _ := NewMeta([]int{64, 64}, []Field{{Name: "elevation", Type: Float32}})
	meta.BitsPerBlock = 8
	inner := NewMemBackend()
	ds, err := Create(context.Background(), inner, meta)
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.WriteGrid(context.Background(), "elevation", 0, rampGrid(64, 64)); err != nil {
		t.Fatal(err)
	}
	fail := &failingBackend{MemBackend: inner, failKey: ds.BlockKey("elevation", 0, 0)}
	ds2 := &Dataset{Meta: ds.Meta, be: fail}
	if _, _, err := ds2.ReadFull(context.Background(), "elevation", 0); err == nil {
		t.Error("injected failure not surfaced by serial fetch")
	}
}
