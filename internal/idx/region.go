package idx

import (
	"context"
	"fmt"
	"time"

	"nsdfgo/internal/compress"
	"nsdfgo/internal/hz"
	"nsdfgo/internal/raster"
	"nsdfgo/internal/telemetry/trace"
)

// WriteRegion updates the rectangular region anchored at (x0,y0) with the
// samples of g, leaving the rest of the field untouched. Only the blocks
// intersecting the region are read, modified, and rewritten, which makes
// out-of-core ingestion possible: a tile producer (GEOtiled) can stream
// tiles of a 100TB-scale mosaic into IDX without ever materialising the
// whole grid. Blocks not yet present are initialised with the field's
// fill value.
//
// Concurrent WriteRegion calls on the same dataset are safe only when
// their regions touch disjoint block sets (block read-modify-write is not
// transactional); tile writers should partition work accordingly or
// serialise.
func (d *Dataset) WriteRegion(ctx context.Context, field string, t int, x0, y0 int, g *raster.Grid) error {
	f, err := d.checkFieldTime(field, t)
	if err != nil {
		return err
	}
	if len(d.Meta.Dims) != 2 {
		return fmt.Errorf("idx: WriteRegion requires a 2D dataset")
	}
	w, h := d.Meta.Dims[0], d.Meta.Dims[1]
	if x0 < 0 || y0 < 0 || x0+g.W > w || y0+g.H > h {
		return fmt.Errorf("idx: region %dx%d at (%d,%d) outside dataset %dx%d", g.W, g.H, x0, y0, w, h)
	}
	if g.W <= 0 || g.H <= 0 {
		return fmt.Errorf("idx: empty region")
	}
	codec, err := compress.Lookup(f.Codec)
	if err != nil {
		return err
	}
	ctx, span := trace.Start(ctx, "idx.write_region",
		trace.Str("dataset", d.name),
		trace.Str("field", field))
	defer span.End()
	sc := d.newStageClock(span != nil)
	mask := d.Meta.Bits
	blockSamples := d.Meta.BlockSamples()
	sz := f.Type.Size()
	rawBlockLen := blockSamples * sz

	// Plan: decompose the region into HZ runs grouped by block, so each
	// block update is a handful of bulk encodeFrom gathers instead of a
	// per-sample PointHZ + putSample walk through map-backed sample lists.
	runs, spans := d.planRuns(hz.RunQuery{
		X0: x0, Y0: y0, NX: g.W, NY: g.H, Level: mask.Bits(), OutW: g.W,
	})
	keys := d.blockKeys(field, t)
	blockKey := func(b int) string {
		if keys != nil {
			return keys[b]
		}
		return d.BlockKey(field, t, b)
	}

	// Read-modify-write each touched block, in ascending block order.
	// Checking ctx once per span keeps a cancelled tile writer from
	// walking the rest of its plan.
	for _, sp := range spans {
		if err := ctx.Err(); err != nil {
			return err
		}
		b := sp.block
		key := blockKey(b)
		var raw []byte
		// The RMW read is served from the cache when possible: cached
		// blocks are immutable shared memory, so the modify step works on
		// a private copy instead of mutating what other readers hold.
		if d.cache != nil {
			if blk, ok := d.cachePeek(key); ok {
				raw = make([]byte, blk.Len())
				copy(raw, blk.Bytes())
				blk.Release()
			}
		}
		if raw == nil {
			var getStart time.Time
			if sc != nil {
				getStart = time.Now()
			}
			enc, err := d.be.Get(ctx, key)
			if sc != nil {
				getEnd := time.Now()
				sc.fetchNS.Add(int64(getEnd.Sub(getStart)))
				if sc.traced {
					trace.Record(ctx, "storage.get", getStart, getEnd,
						trace.Str("dataset", d.name),
						trace.Int("block", int64(b)))
				}
			}
			switch {
			case err == nil:
				raw, err = codec.Decode(enc, rawBlockLen)
				if err != nil {
					return fmt.Errorf("idx: decode block %d: %w", b, err)
				}
			case IsNotExist(err):
				// Initialise a fresh block: every slot (written-region samples,
				// not-yet-written samples, and pow2 padding) starts at the
				// field's fill value.
				raw = make([]byte, rawBlockLen)
				f.Type.putSample(raw, f.Fill)
				for i := 1; i < blockSamples; i++ {
					copy(raw[i*sz:(i+1)*sz], raw[:sz])
				}
			default:
				return fmt.Errorf("idx: read block %d: %w", b, err)
			}
		}
		for _, r := range runs[sp.lo:sp.hi] {
			off := int(r.HZ&uint64(blockSamples-1)) * sz
			f.Type.encodeFrom(raw[off:], g.Data[r.Out:], int(r.OutStep), int(r.N))
		}
		encOut, err := codec.Encode(raw)
		if err != nil {
			return fmt.Errorf("idx: encode block %d: %w", b, err)
		}
		var putStart time.Time
		if sc != nil {
			putStart = time.Now()
		}
		if err := d.be.Put(ctx, key, encOut); err != nil {
			return fmt.Errorf("idx: store block %d: %w", b, err)
		}
		if sc != nil {
			putEnd := time.Now()
			sc.storeNS.Add(int64(putEnd.Sub(putStart)))
			if sc.traced {
				trace.Record(ctx, "storage.put", putStart, putEnd,
					trace.Str("dataset", d.name),
					trace.Int("block", int64(b)),
					trace.Int("bytes", int64(len(encOut))))
			}
		}
		if d.cache != nil {
			// Invalidate every tier first (a disk tier may hold the old
			// payload, and a refresh rejected by admission must not leave
			// it there), then refresh. Put adopts raw, which this
			// iteration no longer writes to.
			if r, ok := d.cache.(cacheRemover); ok {
				r.Remove(key)
			}
			d.cache.Put(key, raw).Release()
		}
	}
	return nil
}
