package idx

import (
	"sync/atomic"
	"time"
)

// stageClock accumulates per-stage busy time for one ReadBox or
// WriteGrid call. The fetch/decode/assemble (read) and encode/store
// (write) stages interleave freely across the worker pools, so each
// worker adds its elapsed nanoseconds into atomic accumulators and the
// entry point books the totals once — into the
// nsdf_idx_stage_seconds{stage,dataset} histograms and, when the
// request is traced, into per-stage spans. Because the accumulators sum
// busy time across workers, a stage's duration can exceed the wall time
// of the enclosing call on parallel fetches; that is the point — it
// shows where the worker pool actually spent its cycles.
//
// A nil *stageClock disables all accumulation, so untraced,
// untelemetered calls pay nothing.
type stageClock struct {
	// traced gates the per-block trace records (storage.get/storage.put):
	// they allocate attribute slices, which pure-telemetry calls skip.
	traced bool

	fetchNS    atomic.Int64
	decodeNS   atomic.Int64
	assembleNS atomic.Int64
	encodeNS   atomic.Int64
	storeNS    atomic.Int64
}

// newStageClock returns a clock when either telemetry or tracing wants
// stage timing, nil otherwise.
func (d *Dataset) newStageClock(traced bool) *stageClock {
	if d.tel == nil && !traced {
		return nil
	}
	return &stageClock{traced: traced}
}

func (sc *stageClock) fetch() time.Duration    { return time.Duration(sc.fetchNS.Load()) }
func (sc *stageClock) decode() time.Duration   { return time.Duration(sc.decodeNS.Load()) }
func (sc *stageClock) assemble() time.Duration { return time.Duration(sc.assembleNS.Load()) }
func (sc *stageClock) encode() time.Duration   { return time.Duration(sc.encodeNS.Load()) }
func (sc *stageClock) store() time.Duration    { return time.Duration(sc.storeNS.Load()) }
