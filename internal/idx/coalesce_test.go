package idx

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"nsdfgo/internal/cache"
	"nsdfgo/internal/raster"
)

// perKeyCountingBackend wraps MemBackend and counts Gets per object name.
type perKeyCountingBackend struct {
	*MemBackend
	mu     sync.Mutex
	counts map[string]int
}

func (p *perKeyCountingBackend) Get(ctx context.Context, name string) ([]byte, error) {
	p.mu.Lock()
	if p.counts == nil {
		p.counts = map[string]int{}
	}
	p.counts[name]++
	p.mu.Unlock()
	// Hold the fetch open long enough for concurrent readers to pile onto
	// the same in-flight key.
	time.Sleep(2 * time.Millisecond)
	return p.MemBackend.Get(ctx, name)
}

// TestConcurrentReadBoxCoalescesFetches is the end-to-end duplicate-fetch
// regression test: N readers racing over a cold cache must trigger at most
// one backend Get per block key, with the rest coalesced onto the leader's
// flight.
func TestConcurrentReadBoxCoalescesFetches(t *testing.T) {
	meta, err := NewMeta([]int{128, 128}, []Field{{Name: "elevation", Type: Float32}})
	if err != nil {
		t.Fatal(err)
	}
	meta.BitsPerBlock = 8 // 64 blocks
	be := &perKeyCountingBackend{MemBackend: NewMemBackend()}
	ds, err := Create(context.Background(), be, meta)
	if err != nil {
		t.Fatal(err)
	}
	want := rampGrid(128, 128)
	if err := ds.WriteGrid(context.Background(), "elevation", 0, want); err != nil {
		t.Fatal(err)
	}
	c := cache.NewMemTiered(64 << 20)
	ds.SetCache(c)
	be.mu.Lock()
	be.counts = map[string]int{} // discard writer-side traffic
	be.mu.Unlock()

	const readers = 8
	var wg sync.WaitGroup
	results := make([]*raster.Grid, readers)
	errs := make([]error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = ds.ReadBox(context.Background(), "elevation", 0,
				Box{X1: 128, Y1: 128}, meta.MaxLevel())
		}(i)
	}
	wg.Wait()
	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if !raster.Equal(results[i], want) {
			t.Fatalf("reader %d got wrong data", i)
		}
	}
	be.mu.Lock()
	defer be.mu.Unlock()
	for name, n := range be.counts {
		if !strings.HasPrefix(name, "fields/") {
			continue
		}
		if n != 1 {
			t.Errorf("block %s fetched %d times, want 1 (duplicate fetch not coalesced)", name, n)
		}
	}
	s := c.Stats()
	if s.Coalesced == 0 && s.Hits == 0 {
		t.Error("no reader was served from the shared flight or the cache")
	}
}
