package idx

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"nsdfgo/internal/cache"
	"nsdfgo/internal/compress"
	"nsdfgo/internal/hz"
	"nsdfgo/internal/raster"
)

// This file measures the run-based HZ kernels against the pre-kernel
// per-sample path. readBoxPerSample and writeGridPerSample below are
// faithful copies of the implementations this PR replaced (PointHZ per
// output sample, map-backed block sets, HZToZ+Deinterleave per block
// slot) so the before/after comparison stays runnable as both paths
// evolve. Benchmarks run warm-cache: that isolates the addressing and
// assembly work the kernels rewrite — the interactive dashboard
// scenario — from backend and codec costs common to both paths.

// readBoxPerSample is the pre-kernel ReadBox (PR 1 vintage).
func readBoxPerSample(d *Dataset, field string, t int, box Box, level int) (*raster.Grid, *ReadStats, error) {
	f, err := d.checkFieldTime(field, t)
	if err != nil {
		return nil, nil, err
	}
	codec, err := compress.Lookup(f.Codec)
	if err != nil {
		return nil, nil, err
	}
	mask := d.Meta.Bits
	strides := mask.LevelStrides(level)
	sx, sy := strides[0], strides[1]
	ax0 := (box.X0 + sx - 1) / sx * sx
	ay0 := (box.Y0 + sy - 1) / sy * sy
	ow := (box.X1-1-ax0)/sx + 1
	oh := (box.Y1-1-ay0)/sy + 1

	out := raster.New(ow, oh)
	stats := &ReadStats{Samples: ow * oh}
	blockSamples := d.Meta.BlockSamples()
	sz := f.Type.Size()
	rawBlockLen := blockSamples * sz

	addrs := make([]uint64, ow*oh)
	needSet := map[int]bool{}
	p := make([]int, 2)
	for oy := 0; oy < oh; oy++ {
		p[1] = ay0 + oy*sy
		for ox := 0; ox < ow; ox++ {
			p[0] = ax0 + ox*sx
			hzAddr := mask.PointHZ(p)
			addrs[oy*ow+ox] = hzAddr
			needSet[int(hzAddr>>d.Meta.BitsPerBlock)] = true
		}
	}

	blocks := make(map[int][]byte, len(needSet))
	var held []*cache.Block
	defer func() {
		for _, blk := range held {
			blk.Release()
		}
	}()
	var misses []int
	for b := range needSet {
		if d.cache != nil {
			if blk, ok := d.cache.Get(d.BlockKey(field, t, b)); ok {
				stats.BlocksCached++
				held = append(held, blk)
				blocks[b] = blk.Bytes()
				continue
			}
		}
		misses = append(misses, b)
	}
	sort.Ints(misses)
	for _, b := range misses {
		blk, n, _, err := d.fetchBlockKey(context.Background(), d.BlockKey(field, t, b), b, codec, rawBlockLen, nil)
		if err != nil {
			return nil, nil, err
		}
		stats.BlocksRead++
		stats.BytesRead += n
		held = append(held, blk)
		blocks[b] = blk.Bytes()
	}

	for i, hzAddr := range addrs {
		raw := blocks[int(hzAddr>>d.Meta.BitsPerBlock)]
		off := int(hzAddr&uint64(blockSamples-1)) * sz
		out.Data[i] = f.Type.getSample(raw[off:])
	}
	return out, stats, nil
}

// writeGridPerSample is the pre-kernel WriteGrid (PR 1 vintage).
func writeGridPerSample(d *Dataset, field string, t int, g *raster.Grid) error {
	f, err := d.checkFieldTime(field, t)
	if err != nil {
		return err
	}
	codec, err := compress.Lookup(f.Codec)
	if err != nil {
		return err
	}
	mask := d.Meta.Bits
	m := mask.Bits()
	blockSamples := d.Meta.BlockSamples()
	numBlocks := d.Meta.NumBlocks()
	sz := f.Type.Size()
	w, h := g.W, g.H

	workers := d.writeWorkers(numBlocks)
	errCh := make(chan error, workers)
	var next int
	var mu sync.Mutex
	takeBlock := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= numBlocks {
			return -1
		}
		b := next
		next++
		return b
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := make([]int, mask.Dims())
			buf := make([]byte, blockSamples*sz)
			for {
				b := takeBlock()
				if b < 0 {
					return
				}
				hz0 := uint64(b) << d.Meta.BitsPerBlock
				for i := 0; i < blockSamples; i++ {
					hzAddr := hz0 + uint64(i)
					v := f.Fill
					if hzAddr < uint64(1)<<m {
						mask.Deinterleave(hz.HZToZ(hzAddr, m), p)
						if p[0] < w && p[1] < h {
							v = g.Data[p[1]*w+p[0]]
						}
					}
					f.Type.putSample(buf[i*sz:], v)
				}
				enc, err := codec.Encode(buf)
				if err != nil {
					errCh <- err
					return
				}
				if err := d.be.Put(context.Background(), d.BlockKey(field, t, b), enc); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	return nil
}

// benchSide is the dataset geometry the acceptance criteria name:
// 2048x2048 float32, raw codec, default 2^16-sample blocks.
const benchSide = 2048

// newKernelBenchDataset builds the benchmark dataset with a warm block
// cache (one full-resolution read populates it).
func newKernelBenchDataset(tb testing.TB) (*Dataset, *raster.Grid) {
	tb.Helper()
	meta, err := NewMeta([]int{benchSide, benchSide},
		[]Field{{Name: "v", Type: Float32, Codec: "raw"}})
	if err != nil {
		tb.Fatal(err)
	}
	ds, err := Create(context.Background(), NewMemBackend(), meta)
	if err != nil {
		tb.Fatal(err)
	}
	g := rampGrid(benchSide, benchSide)
	if err := ds.WriteGrid(context.Background(), "v", 0, g); err != nil {
		tb.Fatal(err)
	}
	ds.SetCache(cache.NewLRU(64 << 20))
	if _, _, err := ds.ReadFull(context.Background(), "v", 0); err != nil {
		tb.Fatal(err)
	}
	return ds, g
}

// verifyKernelAgreement cross-checks the two read paths sample for
// sample before timing them.
func verifyKernelAgreement(tb testing.TB, ds *Dataset) {
	tb.Helper()
	for _, level := range []int{ds.Meta.MaxLevel(), ds.Meta.MaxLevel() - 3, 5} {
		want, _, err := readBoxPerSample(ds, "v", 0, ds.FullBox(), level)
		if err != nil {
			tb.Fatal(err)
		}
		got, _, err := ds.ReadBox(context.Background(), "v", 0, ds.FullBox(), level)
		if err != nil {
			tb.Fatal(err)
		}
		if len(want.Data) != len(got.Data) {
			tb.Fatalf("level %d: kernel read %d samples, per-sample read %d", level, len(got.Data), len(want.Data))
		}
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				tb.Fatalf("level %d sample %d: kernel %v, per-sample %v", level, i, got.Data[i], want.Data[i])
			}
		}
	}
}

// BenchmarkReadBoxKernel compares the run-based streaming ReadBox
// against the per-sample reference on a warm cache.
func BenchmarkReadBoxKernel(b *testing.B) {
	ds, _ := newKernelBenchDataset(b)
	verifyKernelAgreement(b, ds)
	box := ds.FullBox()
	level := ds.Meta.MaxLevel()
	b.Run("kernel", func(b *testing.B) {
		b.SetBytes(int64(benchSide * benchSide * 4))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := ds.ReadBox(context.Background(), "v", 0, box, level); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("persample", func(b *testing.B) {
		b.SetBytes(int64(benchSide * benchSide * 4))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := readBoxPerSample(ds, "v", 0, box, level); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWriteGridKernel compares the run-based WriteGrid against the
// per-sample reference.
func BenchmarkWriteGridKernel(b *testing.B) {
	ds, g := newKernelBenchDataset(b)
	b.Run("kernel", func(b *testing.B) {
		b.SetBytes(int64(benchSide * benchSide * 4))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := ds.WriteGrid(context.Background(), "v", 0, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("persample", func(b *testing.B) {
		b.SetBytes(int64(benchSide * benchSide * 4))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := writeGridPerSample(ds, "v", 0, g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// runConcurrently starts n goroutines behind a barrier, runs fn(i) in
// each, and returns the per-goroutine elapsed times.
func runConcurrently(n int, fn func(i int)) []time.Duration {
	elapsed := make([]time.Duration, n)
	var start, wg sync.WaitGroup
	start.Add(1)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			start.Wait()
			t0 := time.Now()
			fn(i)
			elapsed[i] = time.Since(t0)
		}(i)
	}
	start.Done()
	wg.Wait()
	return elapsed
}

// meanNsPerOp averages per-goroutine latency per operation.
func meanNsPerOp(elapsed []time.Duration, opsEach int) float64 {
	var total float64
	for _, e := range elapsed {
		total += float64(e.Nanoseconds()) / float64(opsEach)
	}
	return total / float64(len(elapsed))
}

// benchSample is one measured configuration in BENCH_readpath.json.
type benchSample struct {
	NsPerOp     float64 `json:"ns_per_op"`
	MsPerOp     float64 `json:"ms_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchComparison pairs the kernel and per-sample variants of one path.
type benchComparison struct {
	Kernel       benchSample `json:"kernel"`
	PerSample    benchSample `json:"per_sample"`
	Speedup      float64     `json:"speedup"`
	AllocsFactor float64     `json:"allocs_reduction_factor"`
}

// TestBenchReadpathEmit measures both paths and writes BENCH_readpath.json.
// It is gated on NSDF_BENCH_READPATH_ITERS (iteration count; unset or 0
// skips) so plain `go test ./...` stays fast; NSDF_BENCH_READPATH_OUT
// overrides the output path (default: a throwaway temp file, making the
// 1-iteration smoke run in `make check` side-effect free).
func TestBenchReadpathEmit(t *testing.T) {
	iters, _ := strconv.Atoi(os.Getenv("NSDF_BENCH_READPATH_ITERS"))
	if iters <= 0 {
		t.Skip("set NSDF_BENCH_READPATH_ITERS>=1 to run the readpath benchmark emitter")
	}
	outPath := os.Getenv("NSDF_BENCH_READPATH_OUT")
	if outPath == "" {
		outPath = t.TempDir() + "/BENCH_readpath.json"
	}
	ds, g := newKernelBenchDataset(t)
	verifyKernelAgreement(t, ds)
	box := ds.FullBox()
	level := ds.Meta.MaxLevel()

	measure := func(fn func()) benchSample {
		fn() // warm-up: key caches, page faults, cache population
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		ns := float64(elapsed.Nanoseconds()) / float64(iters)
		return benchSample{
			NsPerOp:     ns,
			MsPerOp:     ns / 1e6,
			AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(iters),
		}
	}
	compare := func(kernel, perSample func()) benchComparison {
		k := measure(kernel)
		p := measure(perSample)
		c := benchComparison{Kernel: k, PerSample: p}
		if k.NsPerOp > 0 {
			c.Speedup = p.NsPerOp / k.NsPerOp
		}
		if k.AllocsPerOp > 0 {
			c.AllocsFactor = p.AllocsPerOp / k.AllocsPerOp
		}
		return c
	}

	read := compare(
		func() {
			if _, _, err := ds.ReadBox(context.Background(), "v", 0, box, level); err != nil {
				t.Fatal(err)
			}
		},
		func() {
			if _, _, err := readBoxPerSample(ds, "v", 0, box, level); err != nil {
				t.Fatal(err)
			}
		},
	)
	write := compare(
		func() {
			if err := ds.WriteGrid(context.Background(), "v", 0, g); err != nil {
				t.Fatal(err)
			}
		},
		func() {
			if err := writeGridPerSample(ds, "v", 0, g); err != nil {
				t.Fatal(err)
			}
		},
	)

	// --- Concurrent mixed workload at GOMAXPROCS=4. The single-threaded
	// comparisons above are contention-blind (ROADMAP calls this out), so
	// this section measures the kernel path the way the dashboard runs
	// it: 4 readers racing mixed-resolution ReadBoxes on a shared warm
	// cache, then 3 readers racing a concurrent writer on a second
	// field. The single-threaded numbers stay in the JSON alongside for
	// trajectory. ---
	prevProcs := runtime.GOMAXPROCS(4)
	concMeta, err := NewMeta([]int{benchSide, benchSide},
		[]Field{{Name: "v", Type: Float32, Codec: "raw"}, {Name: "w", Type: Float32, Codec: "raw"}})
	if err != nil {
		t.Fatal(err)
	}
	concDS, err := Create(context.Background(), NewMemBackend(), concMeta)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"v", "w"} {
		if err := concDS.WriteGrid(context.Background(), field, 0, g); err != nil {
			t.Fatal(err)
		}
		if _, _, err := concDS.ReadFull(context.Background(), field, 0); err != nil {
			t.Fatal(err)
		}
	}
	concDS.SetCache(cache.NewLRU(128 << 20))
	if _, _, err := concDS.ReadFull(context.Background(), "v", 0); err != nil { // warm the cache
		t.Fatal(err)
	}
	if _, _, err := concDS.ReadFull(context.Background(), "w", 0); err != nil {
		t.Fatal(err)
	}

	maxLevel := concDS.Meta.MaxLevel()
	mixLevels := []int{maxLevel, maxLevel - 2, maxLevel - 4}
	mixOpsEach := 3 * iters
	mixElapsed := runConcurrently(4, func(int) {
		for i := 0; i < mixOpsEach; i++ {
			level := mixLevels[i%len(mixLevels)]
			if _, _, err := concDS.ReadBox(context.Background(), "v", 0, concDS.FullBox(), level); err != nil {
				t.Error(err)
				return
			}
		}
	})
	mixReadNs := meanNsPerOp(mixElapsed, mixOpsEach)
	var mixWall time.Duration
	for _, e := range mixElapsed {
		if e > mixWall {
			mixWall = e
		}
	}

	rwReadOps, rwWriteOps := 3*iters, iters
	rwElapsed := runConcurrently(4, func(i int) {
		if i == 3 { // one writer refreshes the second field
			for j := 0; j < rwWriteOps; j++ {
				if err := concDS.WriteGrid(context.Background(), "w", 0, g); err != nil {
					t.Error(err)
					return
				}
			}
			return
		}
		for j := 0; j < rwReadOps; j++ {
			if _, _, err := concDS.ReadBox(context.Background(), "v", 0, concDS.FullBox(), maxLevel); err != nil {
				t.Error(err)
				return
			}
		}
	})
	rwReadNs := meanNsPerOp(rwElapsed[:3], rwReadOps)
	rwWriteNs := float64(rwElapsed[3].Nanoseconds()) / float64(rwWriteOps)
	concProcs := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(prevProcs)

	type concMixed struct {
		Readers         int     `json:"readers"`
		OpsPerReader    int     `json:"ops_per_reader"`
		Levels          string  `json:"levels"`
		ReadNsPerOp     float64 `json:"read_ns_per_op"`
		ReadMsPerOp     float64 `json:"read_ms_per_op"`
		AggregateMBPerS float64 `json:"aggregate_mb_per_s"`
	}
	type concRW struct {
		Readers      int     `json:"readers"`
		Writers      int     `json:"writers"`
		ReadNsPerOp  float64 `json:"read_ns_per_op"`
		ReadMsPerOp  float64 `json:"read_ms_per_op"`
		WriteNsPerOp float64 `json:"write_ns_per_op"`
		WriteMsPerOp float64 `json:"write_ms_per_op"`
	}
	// Mixed levels read full grids at strides 1, 2, 4: bytes per round of
	// 3 ops = full + 1/4 + 1/16 of the full-resolution payload.
	mixBytesPerReader := float64(benchSide*benchSide*4) * (1 + 0.25 + 0.0625) * float64(iters)
	mixAggMBPerS := 4 * mixBytesPerReader / (1 << 20) / mixWall.Seconds()

	doc := struct {
		Description string          `json:"description"`
		Dataset     string          `json:"dataset"`
		Iters       int             `json:"iterations"`
		GOMAXPROCS  int             `json:"gomaxprocs"`
		ReadBox     benchComparison `json:"read_box"`
		WriteGrid   benchComparison `json:"write_grid"`
		Concurrent  struct {
			GOMAXPROCS int       `json:"gomaxprocs"`
			MixedRead  concMixed `json:"mixed_read"`
			ReadWrite  concRW    `json:"read_write_mix"`
		} `json:"concurrent"`
	}{
		Description: "Run-based HZ kernels vs the per-sample reference path (single-threaded, kept for trajectory), plus a concurrent mixed workload at GOMAXPROCS=4: 4 readers over mixed levels, and 3 readers racing 1 writer. Warm block cache, raw codec. Regenerate with `make bench-readpath`.",
		Dataset:     fmt.Sprintf("%dx%d float32, 2^%d-sample blocks", benchSide, benchSide, ds.Meta.BitsPerBlock),
		Iters:       iters,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		ReadBox:     read,
		WriteGrid:   write,
	}
	doc.Concurrent.GOMAXPROCS = concProcs
	doc.Concurrent.MixedRead = concMixed{
		Readers:         4,
		OpsPerReader:    mixOpsEach,
		Levels:          fmt.Sprintf("%d,%d,%d", mixLevels[0], mixLevels[1], mixLevels[2]),
		ReadNsPerOp:     mixReadNs,
		ReadMsPerOp:     mixReadNs / 1e6,
		AggregateMBPerS: mixAggMBPerS,
	}
	doc.Concurrent.ReadWrite = concRW{
		Readers:      3,
		Writers:      1,
		ReadNsPerOp:  rwReadNs,
		ReadMsPerOp:  rwReadNs / 1e6,
		WriteNsPerOp: rwWriteNs,
		WriteMsPerOp: rwWriteNs / 1e6,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("ReadBox: kernel %.1fms / %.0f allocs, per-sample %.1fms / %.0f allocs (%.1fx faster, %.1fx fewer allocs)",
		read.Kernel.MsPerOp, read.Kernel.AllocsPerOp, read.PerSample.MsPerOp, read.PerSample.AllocsPerOp,
		read.Speedup, read.AllocsFactor)
	t.Logf("WriteGrid: kernel %.1fms, per-sample %.1fms (%.1fx faster)",
		write.Kernel.MsPerOp, write.PerSample.MsPerOp, write.Speedup)
	t.Logf("wrote %s", outPath)
}
