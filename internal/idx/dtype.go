package idx

import (
	"encoding/binary"
	"fmt"
	"math"
)

// DType enumerates the sample types an IDX field can store. The IDX format
// is type-generic; the tutorial's terrain fields are float32, hillshade
// renders naturally as uint8, and soil-moisture products use float64.
type DType int

// Supported field sample types.
const (
	Float32 DType = iota
	Float64
	Uint8
	Uint16
	Int16
	Uint32
)

// Size returns the sample size in bytes.
func (d DType) Size() int {
	switch d {
	case Uint8:
		return 1
	case Uint16, Int16:
		return 2
	case Float32, Uint32:
		return 4
	case Float64:
		return 8
	}
	panic(fmt.Sprintf("idx: invalid DType %d", int(d)))
}

// String returns the type name used in IDX metadata.
func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Float64:
		return "float64"
	case Uint8:
		return "uint8"
	case Uint16:
		return "uint16"
	case Int16:
		return "int16"
	case Uint32:
		return "uint32"
	}
	return fmt.Sprintf("DType(%d)", int(d))
}

// ParseDType converts a metadata type name to a DType.
func ParseDType(s string) (DType, error) {
	for _, d := range []DType{Float32, Float64, Uint8, Uint16, Int16, Uint32} {
		//lint:allow hotalloc cold metadata parse; String only formats on the unknown fallback
		if d.String() == s {
			return d, nil
		}
	}
	return 0, fmt.Errorf("idx: unknown sample type %q", s)
}

// putSample encodes float32 v as dtype d at dst (little-endian). Values are
// clamped to the integer type's range; NaN stores as zero for integer types.
func (d DType) putSample(dst []byte, v float32) {
	switch d {
	case Float32:
		binary.LittleEndian.PutUint32(dst, math.Float32bits(v))
	case Float64:
		binary.LittleEndian.PutUint64(dst, math.Float64bits(float64(v)))
	case Uint8:
		dst[0] = uint8(clampInt(v, 0, math.MaxUint8))
	case Uint16:
		binary.LittleEndian.PutUint16(dst, uint16(clampInt(v, 0, math.MaxUint16)))
	case Int16:
		binary.LittleEndian.PutUint16(dst, uint16(int16(clampInt(v, math.MinInt16, math.MaxInt16))))
	case Uint32:
		binary.LittleEndian.PutUint32(dst, uint32(clampInt(v, 0, math.MaxUint32)))
	}
}

// getSample decodes a dtype-d sample at src into float32.
func (d DType) getSample(src []byte) float32 {
	switch d {
	case Float32:
		return math.Float32frombits(binary.LittleEndian.Uint32(src))
	case Float64:
		return float32(math.Float64frombits(binary.LittleEndian.Uint64(src)))
	case Uint8:
		return float32(src[0])
	case Uint16:
		return float32(binary.LittleEndian.Uint16(src))
	case Int16:
		return float32(int16(binary.LittleEndian.Uint16(src)))
	case Uint32:
		return float32(binary.LittleEndian.Uint32(src))
	}
	return 0
}

// decodeInto bulk-decodes n consecutive dtype-d samples from src into
// dst[0], dst[step], ..., dst[(n-1)*step]. It is the run-wise scatter
// primitive of the streaming read path: the type switch is hoisted out
// of the inner loop, and the common float32/step-1 case reduces to a
// straight word copy. Semantics match getSample exactly.
func (d DType) decodeInto(dst []float32, step int, src []byte, n int) {
	switch d {
	case Float32:
		if step == 1 {
			for i := 0; i < n; i++ {
				dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
			}
			return
		}
		o := 0
		for i := 0; i < n; i++ {
			dst[o] = math.Float32frombits(binary.LittleEndian.Uint32(src[4*i:]))
			o += step
		}
	case Float64:
		o := 0
		for i := 0; i < n; i++ {
			dst[o] = float32(math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:])))
			o += step
		}
	case Uint8:
		o := 0
		for i := 0; i < n; i++ {
			dst[o] = float32(src[i])
			o += step
		}
	case Uint16:
		o := 0
		for i := 0; i < n; i++ {
			dst[o] = float32(binary.LittleEndian.Uint16(src[2*i:]))
			o += step
		}
	case Int16:
		o := 0
		for i := 0; i < n; i++ {
			dst[o] = float32(int16(binary.LittleEndian.Uint16(src[2*i:])))
			o += step
		}
	case Uint32:
		o := 0
		for i := 0; i < n; i++ {
			dst[o] = float32(binary.LittleEndian.Uint32(src[4*i:]))
			o += step
		}
	}
}

// encodeFrom bulk-encodes n samples gathered from src[0], src[step], ...
// as n consecutive dtype-d samples at dst — the write-path mirror of
// decodeInto. Semantics (clamping, NaN handling, endianness) match
// putSample exactly, so blocks written through either path are
// byte-identical.
func (d DType) encodeFrom(dst []byte, src []float32, step, n int) {
	switch d {
	case Float32:
		if step == 1 {
			for i := 0; i < n; i++ {
				binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(src[i]))
			}
			return
		}
		o := 0
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(dst[4*i:], math.Float32bits(src[o]))
			o += step
		}
	case Float64:
		o := 0
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(dst[8*i:], math.Float64bits(float64(src[o])))
			o += step
		}
	case Uint8:
		o := 0
		for i := 0; i < n; i++ {
			dst[i] = uint8(clampInt(src[o], 0, math.MaxUint8))
			o += step
		}
	case Uint16:
		o := 0
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint16(dst[2*i:], uint16(clampInt(src[o], 0, math.MaxUint16)))
			o += step
		}
	case Int16:
		o := 0
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint16(dst[2*i:], uint16(int16(clampInt(src[o], math.MinInt16, math.MaxInt16))))
			o += step
		}
	case Uint32:
		o := 0
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(dst[4*i:], uint32(clampInt(src[o], 0, math.MaxUint32)))
			o += step
		}
	}
}

// decodeBlock decodes a whole raw block payload into dst.
func (d DType) decodeBlock(dst []float32, src []byte) { d.decodeInto(dst, 1, src, len(dst)) }

// encodeBlock encodes a whole block of samples into the raw payload dst.
func (d DType) encodeBlock(dst []byte, src []float32) { d.encodeFrom(dst, src, 1, len(src)) }

func clampInt(v float32, lo, hi int64) int64 {
	f := float64(v)
	if math.IsNaN(f) {
		return 0
	}
	if f < float64(lo) {
		return lo
	}
	if f > float64(hi) {
		return hi
	}
	return int64(math.RoundToEven(f))
}
