package idx

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nsdfgo/internal/cache"
	"nsdfgo/internal/compress"
	"nsdfgo/internal/hz"
	"nsdfgo/internal/telemetry/trace"
)

// The IDX format is n-dimensional; OpenVisus routinely serves 3D and 4D
// simulation volumes. This file adds the volumetric API: WriteVolume and
// ReadBox3D over datasets whose Meta has three dimensions. Samples are
// addressed (x, y, z) with x fastest-varying in the flat slice, i.e.
// index = (z*H + y)*W + x.

// Box3 is a half-open 3D region.
type Box3 struct {
	// X0, Y0, Z0 are the inclusive lower corner.
	X0, Y0, Z0 int
	// X1, Y1, Z1 are the exclusive upper corner.
	X1, Y1, Z1 int
}

// Empty reports whether the box contains no voxels.
func (b Box3) Empty() bool { return b.X1 <= b.X0 || b.Y1 <= b.Y0 || b.Z1 <= b.Z0 }

// FullBox3 returns the dataset's entire 3D extent.
func (d *Dataset) FullBox3() Box3 {
	return Box3{X1: d.Meta.Dims[0], Y1: d.Meta.Dims[1], Z1: d.Meta.Dims[2]}
}

// Clip3 intersects the box with the dataset's logical extent.
func (d *Dataset) Clip3(b Box3) Box3 {
	clamp := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	b.X0, b.X1 = clamp(b.X0, d.Meta.Dims[0]), clamp(b.X1, d.Meta.Dims[0])
	b.Y0, b.Y1 = clamp(b.Y0, d.Meta.Dims[1]), clamp(b.Y1, d.Meta.Dims[1])
	b.Z0, b.Z1 = clamp(b.Z0, d.Meta.Dims[2]), clamp(b.Z1, d.Meta.Dims[2])
	return b
}

// WriteVolume stores a full-resolution 3D volume as timestep t of the
// named field. data must hold Dims[0]*Dims[1]*Dims[2] samples, x fastest.
// Cancelling ctx aborts the worker pool at its next block claim.
func (d *Dataset) WriteVolume(ctx context.Context, field string, t int, data []float32) error {
	f, err := d.checkFieldTime(field, t)
	if err != nil {
		return err
	}
	if len(d.Meta.Dims) != 3 {
		return fmt.Errorf("idx: WriteVolume requires a 3D dataset; this one has %d dims", len(d.Meta.Dims))
	}
	w, h, depth := d.Meta.Dims[0], d.Meta.Dims[1], d.Meta.Dims[2]
	if len(data) != w*h*depth {
		return fmt.Errorf("idx: volume holds %d samples, want %d for %dx%dx%d", len(data), w*h*depth, w, h, depth)
	}
	codec, err := compress.Lookup(f.Codec)
	if err != nil {
		return err
	}
	mask := d.Meta.Bits
	m := mask.Bits()
	blockSamples := d.Meta.BlockSamples()
	numBlocks := d.Meta.NumBlocks()
	sz := f.Type.Size()

	start := time.Now()
	defer func() {
		if d.tel != nil {
			d.tel.writeSeconds.ObserveSince(start)
		}
	}()
	ctx, span := trace.Start(ctx, "idx.write3d",
		trace.Str("dataset", d.name),
		trace.Str("field", field),
		trace.Int("blocks", int64(numBlocks)))
	defer span.End()
	sc := d.newStageClock(span != nil)

	keys := d.blockKeys(field, t)
	blockKey := func(b int) string {
		if keys != nil {
			return keys[b]
		}
		return d.BlockKey(field, t, b)
	}

	// The aborted flag mirrors WriteGrid's early abort: one worker's
	// encode/store failure stops the others at their next block claim.
	workers := d.writeWorkers(numBlocks)
	errCh := make(chan error, workers)
	var aborted atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := make([]int, 3)
			buf := make([]byte, blockSamples*sz)
			for {
				if aborted.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					aborted.Store(true)
					errCh <- err
					return
				}
				b := int(next.Add(1)) - 1
				if b >= numBlocks {
					return
				}
				var encStart time.Time
				if sc != nil {
					encStart = time.Now()
				}
				hz0 := uint64(b) << d.Meta.BitsPerBlock
				for i := 0; i < blockSamples; i++ {
					hzAddr := hz0 + uint64(i)
					v := f.Fill
					if hzAddr < uint64(1)<<m {
						mask.Deinterleave(hz.HZToZ(hzAddr, m), p)
						if p[0] < w && p[1] < h && p[2] < depth {
							v = data[(p[2]*h+p[1])*w+p[0]]
						}
					}
					f.Type.putSample(buf[i*sz:], v)
				}
				enc, err := codec.Encode(buf)
				if err != nil {
					aborted.Store(true)
					errCh <- fmt.Errorf("idx: encode block %d: %w", b, err)
					return
				}
				var putStart time.Time
				if sc != nil {
					putStart = time.Now()
					sc.encodeNS.Add(int64(putStart.Sub(encStart)))
				}
				if err := d.be.Put(ctx, blockKey(b), enc); err != nil {
					aborted.Store(true)
					errCh <- fmt.Errorf("idx: store block %d: %w", b, err)
					return
				}
				if sc != nil {
					putEnd := time.Now()
					sc.storeNS.Add(int64(putEnd.Sub(putStart)))
					if sc.traced {
						trace.Record(ctx, "storage.put", putStart, putEnd,
							trace.Str("dataset", d.name),
							trace.Int("block", int64(b)),
							trace.Int("bytes", int64(len(enc))))
					}
				}
				d.recordBlockWrite(len(enc))
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	if sc != nil {
		d.observeWriteStages(sc)
		if sc.traced {
			end := time.Now()
			trace.RecordDuration(ctx, "idx.encode", end, sc.encode(),
				trace.Str("dataset", d.name))
			trace.RecordDuration(ctx, "idx.store", end, sc.store(),
				trace.Str("dataset", d.name))
		}
	}
	return nil
}

// Volume3 is a dense 3D query result: Data holds Dims[0]*Dims[1]*Dims[2]
// samples, x fastest-varying.
type Volume3 struct {
	// Dims are the result extents (x, y, z).
	Dims [3]int
	// Data holds the samples.
	Data []float32
	// Offset is the full-resolution coordinate of the result's first
	// sample; Stride is the sampling stride per axis at the read level.
	Offset, Stride [3]int
}

// At returns the sample at result coordinates (x,y,z).
func (v *Volume3) At(x, y, z int) float32 {
	return v.Data[(z*v.Dims[1]+y)*v.Dims[0]+x]
}

// ReadBox3D extracts the level-L lattice samples within box from a 3D
// dataset, using the same cached block fetching as the 2D path. ctx
// bounds every block fetch; cancellation returns the context error.
func (d *Dataset) ReadBox3D(ctx context.Context, field string, t int, box Box3, level int) (*Volume3, *ReadStats, error) {
	start := time.Now()
	f, err := d.checkFieldTime(field, t)
	if err != nil {
		return nil, nil, err
	}
	if len(d.Meta.Dims) != 3 {
		return nil, nil, fmt.Errorf("idx: ReadBox3D requires a 3D dataset")
	}
	if level < 0 || level > d.Meta.MaxLevel() {
		return nil, nil, fmt.Errorf("idx: level %d outside [0,%d]", level, d.Meta.MaxLevel())
	}
	box = d.Clip3(box)
	if box.Empty() {
		return nil, nil, fmt.Errorf("idx: empty query box")
	}
	codec, err := compress.Lookup(f.Codec)
	if err != nil {
		return nil, nil, err
	}
	ctx, span := trace.Start(ctx, "idx.read3d",
		trace.Str("dataset", d.name),
		trace.Str("field", field),
		trace.Int("level", int64(level)))
	defer span.End()
	sc := d.newStageClock(span != nil)
	mask := d.Meta.Bits
	strides := mask.LevelStrides(level)
	align := func(lo, stride int) int { return (lo + stride - 1) / stride * stride }
	a := [3]int{align(box.X0, strides[0]), align(box.Y0, strides[1]), align(box.Z0, strides[2])}
	hiBound := [3]int{box.X1, box.Y1, box.Z1}
	var dims [3]int
	for ax := 0; ax < 3; ax++ {
		if a[ax] >= hiBound[ax] {
			return nil, nil, fmt.Errorf("idx: box contains no level-%d lattice samples on axis %d", level, ax)
		}
		dims[ax] = (hiBound[ax]-1-a[ax])/strides[ax] + 1
	}

	total := dims[0] * dims[1] * dims[2]
	out := &Volume3{Dims: dims, Data: make([]float32, total),
		Offset: a, Stride: [3]int{strides[0], strides[1], strides[2]}}
	stats := &ReadStats{Samples: total}
	blockSamples := d.Meta.BlockSamples()
	sz := f.Type.Size()
	rawBlockLen := blockSamples * sz

	// Plan: interleave each x-row incrementally (InterleaveRow's masked
	// increments) instead of re-interleaving every sample, then convert
	// to HZ. The block set stays map-backed — 3D reads are not yet on the
	// run-based streaming pipeline — but consecutive duplicates are
	// skipped before touching the map.
	var planStart time.Time
	if sc != nil {
		planStart = time.Now()
	}
	addrs := make([]uint64, total)
	rowZ := make([]uint64, dims[0])
	needSet := map[int]bool{}
	m := mask.Bits()
	p := make([]int, 3)
	i := 0
	lastB := -1
	for oz := 0; oz < dims[2]; oz++ {
		p[2] = a[2] + oz*strides[2]
		for oy := 0; oy < dims[1]; oy++ {
			p[1] = a[1] + oy*strides[1]
			p[0] = a[0]
			mask.InterleaveRow(rowZ, p, 0, strides[0])
			for ox := 0; ox < dims[0]; ox++ {
				hzAddr := hz.ZToHZ(rowZ[ox], m)
				addrs[i] = hzAddr
				if b := int(hzAddr >> d.Meta.BitsPerBlock); b != lastB {
					needSet[b] = true
					lastB = b
				}
				i++
			}
		}
	}

	if sc != nil {
		planEnd := time.Now()
		d.observePlan(planEnd.Sub(planStart))
		if sc.traced {
			trace.Record(ctx, "idx.plan", planStart, planEnd,
				trace.Str("dataset", d.name),
				trace.Int("blocks", int64(len(needSet))))
		}
	}

	// Fetch (cache first, then backend; serial is fine here — the 2D path
	// demonstrates the parallel fetch, and both share fetchBlockKey).
	// Block names come from the precomputed blockKeys table, not a
	// per-block Sprintf in the hot loop.
	keys := d.blockKeys(field, t)
	blockKey := func(b int) string {
		if keys != nil {
			return keys[b]
		}
		return d.BlockKey(field, t, b)
	}
	blocks := make(map[int]*cache.Block, len(needSet))
	defer func() {
		for _, blk := range blocks {
			blk.Release()
		}
	}()
	misses := make([]int, 0, len(needSet))
	for b := range needSet {
		if d.cache != nil {
			if blk, ok := d.cachePeek(blockKey(b)); ok {
				stats.BlocksCached++
				blocks[b] = blk
				continue
			}
		}
		misses = append(misses, b)
	}
	sort.Ints(misses)
	for _, b := range misses {
		if err := ctx.Err(); err != nil {
			return nil, nil, d.readErr(err)
		}
		blk, n, cached, err := d.fetchBlockKey(ctx, blockKey(b), b, codec, rawBlockLen, sc)
		if err != nil {
			return nil, nil, d.readErr(err)
		}
		if cached {
			stats.BlocksCached++
		} else {
			stats.BlocksRead++
			stats.BytesRead += n
		}
		blocks[b] = blk
	}

	// Assemble.
	var asmStart time.Time
	if sc != nil {
		asmStart = time.Now()
	}
	for i, hzAddr := range addrs {
		raw := blocks[int(hzAddr>>d.Meta.BitsPerBlock)].Bytes()
		off := int(hzAddr&uint64(blockSamples-1)) * sz
		out.Data[i] = f.Type.getSample(raw[off:])
	}
	if sc != nil {
		sc.assembleNS.Add(int64(time.Since(asmStart)))
		d.observeReadStages(sc)
		if sc.traced {
			end := time.Now()
			trace.RecordDuration(ctx, "idx.fetch", end, sc.fetch(),
				trace.Str("dataset", d.name),
				trace.Int("blocks", int64(stats.BlocksRead)),
				trace.Int("bytes", stats.BytesRead))
			trace.RecordDuration(ctx, "idx.decode", end, sc.decode(),
				trace.Str("dataset", d.name))
			trace.RecordDuration(ctx, "idx.assemble", end, sc.assemble(),
				trace.Str("dataset", d.name))
		}
	}
	d.recordRead(stats)
	if d.tel != nil {
		d.tel.readSeconds.ObserveSince(start)
	}
	return out, stats, nil
}

// ReadSliceZ extracts one full-resolution XY slice at depth z — the 3D
// analogue of the dashboard's slicing tools.
func (d *Dataset) ReadSliceZ(ctx context.Context, field string, t, z int) (*Volume3, *ReadStats, error) {
	if len(d.Meta.Dims) != 3 {
		return nil, nil, fmt.Errorf("idx: ReadSliceZ requires a 3D dataset")
	}
	if z < 0 || z >= d.Meta.Dims[2] {
		return nil, nil, fmt.Errorf("idx: slice depth %d outside [0,%d)", z, d.Meta.Dims[2])
	}
	box := d.FullBox3()
	box.Z0, box.Z1 = z, z+1
	return d.ReadBox3D(ctx, field, t, box, d.Meta.MaxLevel())
}
