package idx

import (
	"context"
	"math"
	"testing"

	"nsdfgo/internal/cache"
	"nsdfgo/internal/raster"
)

func TestWriteRegionTilesEqualWholeGrid(t *testing.T) {
	// Streaming a grid tile-by-tile must produce the same dataset as one
	// WriteGrid call (the key out-of-core property).
	const w, h = 96, 64
	g := rampGrid(w, h)

	whole, _ := newTestDataset(t, w, h, float32Fields())
	if err := whole.WriteGrid(context.Background(), "elevation", 0, g); err != nil {
		t.Fatal(err)
	}
	tiled, _ := newTestDataset(t, w, h, float32Fields())
	const tile = 24
	for y0 := 0; y0 < h; y0 += tile {
		for x0 := 0; x0 < w; x0 += tile {
			tw, th := tile, tile
			if x0+tw > w {
				tw = w - x0
			}
			if y0+th > h {
				th = h - y0
			}
			sub, err := g.Crop(x0, y0, tw, th)
			if err != nil {
				t.Fatal(err)
			}
			if err := tiled.WriteRegion(context.Background(), "elevation", 0, x0, y0, sub); err != nil {
				t.Fatal(err)
			}
		}
	}
	a, _, err := whole.ReadFull(context.Background(), "elevation", 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := tiled.ReadFull(context.Background(), "elevation", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !raster.Equal(a, b) {
		t.Fatal("tile-streamed dataset differs from whole-grid dataset")
	}
}

func TestWriteRegionPartialUpdate(t *testing.T) {
	ds, _ := newTestDataset(t, 32, 32, float32Fields())
	if err := ds.WriteGrid(context.Background(), "elevation", 0, rampGrid(32, 32)); err != nil {
		t.Fatal(err)
	}
	patch := raster.New(8, 4)
	for i := range patch.Data {
		patch.Data[i] = -999
	}
	if err := ds.WriteRegion(context.Background(), "elevation", 0, 10, 20, patch); err != nil {
		t.Fatal(err)
	}
	out, _, err := ds.ReadFull(context.Background(), "elevation", 0)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			inside := x >= 10 && x < 18 && y >= 20 && y < 24
			want := float32(y*32 + x)
			if inside {
				want = -999
			}
			if got := out.At(x, y); got != want {
				t.Fatalf("(%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
}

func TestWriteRegionIntoEmptyDatasetUsesFill(t *testing.T) {
	meta, err := NewMeta([]int{16, 16}, []Field{{Name: "f", Type: Float32, Fill: float32(math.Inf(-1))}})
	if err != nil {
		t.Fatal(err)
	}
	meta.BitsPerBlock = 4
	ds, err := Create(context.Background(), NewMemBackend(), meta)
	if err != nil {
		t.Fatal(err)
	}
	patch := raster.New(4, 4)
	for i := range patch.Data {
		patch.Data[i] = 7
	}
	if err := ds.WriteRegion(context.Background(), "f", 0, 0, 0, patch); err != nil {
		t.Fatal(err)
	}
	// Reading the written corner works; untouched blocks are absent, so a
	// full read fails cleanly (sparse dataset).
	got, _, err := ds.ReadBox(context.Background(), "f", 0, Box{X1: 4, Y1: 4}, meta.MaxLevel())
	if err != nil {
		t.Fatal(err)
	}
	if got.At(2, 2) != 7 {
		t.Errorf("written sample %v", got.At(2, 2))
	}
	// Samples inside written blocks but outside the patch carry the fill.
	wider, _, err := ds.ReadBox(context.Background(), "f", 0, Box{X1: 8, Y1: 2}, meta.MaxLevel())
	if err == nil {
		// Depending on block geometry this read may touch only written
		// blocks; then fill must appear outside the patch.
		found := false
		for _, v := range wider.Data {
			if math.IsInf(float64(v), -1) {
				found = true
			}
		}
		if !found && wider.W > 4 {
			t.Error("no fill value visible outside the written patch")
		}
	}
}

func TestWriteRegionValidation(t *testing.T) {
	ds, _ := newTestDataset(t, 16, 16, float32Fields())
	patch := raster.New(4, 4)
	if err := ds.WriteRegion(context.Background(), "nope", 0, 0, 0, patch); err == nil {
		t.Error("unknown field accepted")
	}
	if err := ds.WriteRegion(context.Background(), "elevation", 0, 14, 0, patch); err == nil {
		t.Error("overflow region accepted")
	}
	if err := ds.WriteRegion(context.Background(), "elevation", 0, -1, 0, patch); err == nil {
		t.Error("negative anchor accepted")
	}
	if err := ds.WriteRegion(context.Background(), "elevation", 0, 0, 0, raster.New(0, 0)); err == nil {
		t.Error("empty region accepted")
	}
}

func TestWriteRegionRefreshesCache(t *testing.T) {
	ds, _ := newTestDataset(t, 32, 32, float32Fields())
	if err := ds.WriteGrid(context.Background(), "elevation", 0, rampGrid(32, 32)); err != nil {
		t.Fatal(err)
	}
	c := &countingCache{m: map[string]*cache.Block{}}
	ds.SetCache(c)
	if _, _, err := ds.ReadFull(context.Background(), "elevation", 0); err != nil { // warm
		t.Fatal(err)
	}
	patch := raster.New(2, 2)
	patch.Data = []float32{1, 2, 3, 4}
	if err := ds.WriteRegion(context.Background(), "elevation", 0, 0, 0, patch); err != nil {
		t.Fatal(err)
	}
	out, _, err := ds.ReadFull(context.Background(), "elevation", 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0) != 1 || out.At(1, 1) != 4 {
		t.Error("stale cache served after WriteRegion")
	}
}

func BenchmarkWriteRegionTile(b *testing.B) {
	meta, _ := NewMeta([]int{512, 512}, []Field{{Name: "f", Type: Float32}})
	meta.BitsPerBlock = 12
	ds, _ := Create(context.Background(), NewMemBackend(), meta)
	if err := ds.WriteGrid(context.Background(), "f", 0, rampGrid(512, 512)); err != nil {
		b.Fatal(err)
	}
	patch := rampGrid(64, 64)
	b.SetBytes(int64(4 * len(patch.Data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ds.WriteRegion(context.Background(), "f", 0, (i%7)*64, (i%7)*64, patch); err != nil {
			b.Fatal(err)
		}
	}
}
