package idx

import (
	"slices"

	"nsdfgo/internal/hz"
)

// This file builds the block plan behind the streaming ReadBox/WriteGrid
// paths: the query box is decomposed into HZ runs (see hz.HZRuns), the
// runs are grouped by storage block, and each block's slice of the plan
// is described by a blockSpan. Grouping uses a counting scatter keyed on
// block id — runs of a large read number in the millions, and a
// comparison sort at that size would eat most of the kernel's win.

// blockSpan is one storage block's slice of a grouped run plan.
type blockSpan struct {
	// block is the block index (HZ address >> BitsPerBlock).
	block int
	// lo, hi bound the block's runs in the plan slice, half-open.
	lo, hi int
}

// runBlock returns the block id owning run r. HZRuns is invoked with
// SplitShift = BitsPerBlock, so a run never straddles two blocks.
func (d *Dataset) runBlock(r hz.Run) int {
	return int(r.HZ >> d.Meta.BitsPerBlock)
}

// planRuns decomposes the query into HZ runs grouped by ascending block
// id and returns the grouped runs plus one span per touched block. The
// plan phase performs no per-sample work: its cost is proportional to
// the number of runs, not the number of samples.
func (d *Dataset) planRuns(q hz.RunQuery) ([]hz.Run, []blockSpan) {
	q.SplitShift = d.Meta.BitsPerBlock
	// Worst-case run count is one per sample, but even fully alternating
	// masks (the worst realistic case: every other exact level decomposes
	// into runs of 1) stay under 3/4 of the sample count.
	est := q.NX*q.NY/4*3 + 16
	runs := d.Meta.Bits.HZRuns(make([]hz.Run, 0, est), q)
	if len(runs) == 0 {
		return runs, nil
	}

	minB, maxB := d.runBlock(runs[0]), d.runBlock(runs[0])
	for i := 1; i < len(runs); i++ {
		b := d.runBlock(runs[i])
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	width := maxB - minB + 1
	if width > 2*len(runs)+1024 {
		// Pathologically sparse block range: fall back to a comparison
		// sort rather than allocating a huge counting table.
		slices.SortFunc(runs, func(a, b hz.Run) int {
			switch {
			case a.HZ < b.HZ:
				return -1
			case a.HZ > b.HZ:
				return 1
			}
			return 0
		})
		return runs, spansOfGrouped(runs, d.Meta.BitsPerBlock)
	}

	// Counting scatter: bucket counts, prefix sums, then a stable scatter
	// into a second slice. Two linear passes, no comparisons.
	counts := make([]int, width+1)
	blocks := 0
	for _, r := range runs {
		i := d.runBlock(r) - minB
		if counts[i+1] == 0 {
			blocks++
		}
		counts[i+1]++
	}
	for i := 1; i <= width; i++ {
		counts[i] += counts[i-1]
	}
	spans := make([]blockSpan, 0, blocks)
	for i := 0; i < width; i++ {
		if counts[i+1] > counts[i] {
			spans = append(spans, blockSpan{block: minB + i, lo: counts[i], hi: counts[i+1]})
		}
	}
	grouped := make([]hz.Run, len(runs))
	for _, r := range runs {
		i := d.runBlock(r) - minB
		grouped[counts[i]] = r
		counts[i]++
	}
	return grouped, spans
}

// spansOfGrouped derives block spans from an already block-grouped run
// slice.
func spansOfGrouped(runs []hz.Run, bpb int) []blockSpan {
	nspans, prev := 0, -1
	for i := range runs {
		if b := int(runs[i].HZ >> bpb); b != prev {
			nspans++
			prev = b
		}
	}
	spans := make([]blockSpan, 0, nspans)
	for i := 0; i < len(runs); {
		b := int(runs[i].HZ >> bpb)
		j := i + 1
		for j < len(runs) && int(runs[j].HZ>>bpb) == b {
			j++
		}
		spans = append(spans, blockSpan{block: b, lo: i, hi: j})
		i = j
	}
	return spans
}

// maxKeyCacheBlocks bounds the per-(field,timestep) block-key cache: key
// strings are only precomputed for datasets small enough that the table
// stays a few hundred KB.
const maxKeyCacheBlocks = 4096

type keyCacheID struct {
	field string
	t     int
}

// blockKeys returns the cached object names of every block of one
// field/timestep, building them on first use. Formatting a block key
// costs several allocations (fmt.Sprintf), which used to dominate the
// warm-cache read path; amortising it once per dataset makes repeated
// dashboard reads allocation-free in the plan and assembly phases. For
// datasets above maxKeyCacheBlocks blocks it returns nil and callers
// fall back to formatting on demand.
func (d *Dataset) blockKeys(field string, t int) []string {
	n := d.Meta.NumBlocks()
	if n > maxKeyCacheBlocks {
		return nil
	}
	id := keyCacheID{field: field, t: t}
	d.keyMu.Lock()
	defer d.keyMu.Unlock()
	if keys, ok := d.keyCache[id]; ok {
		return keys
	}
	keys := make([]string, n)
	for b := 0; b < n; b++ {
		//lint:allow hotalloc this loop is the precompute: it formats every key once per (field,t)
		keys[b] = d.BlockKey(field, t, b)
	}
	if d.keyCache == nil {
		d.keyCache = make(map[keyCacheID][]string)
	}
	d.keyCache[id] = keys
	return keys
}
